GO ?= go

.PHONY: build test vet race check alloc-guard bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The call-path packages carry the concurrency-heavy code (connection
# pools, hedges, breakers, admission queues, fault injection, lease
# heartbeats); run them under the race detector.
race:
	$(GO) test -race ./internal/rpc/... ./internal/transport/... ./internal/rest/... ./internal/lb/... ./internal/core/... ./internal/controlplane/... ./internal/loadgen/... ./internal/fault/... ./internal/registry/... ./internal/coalesce/... ./internal/svcutil/... ./internal/docstore/... ./internal/kv/...

# Alloc-regression guard: the rpc frame encode/decode hot path has a pinned
# allocation budget (0 allocs/op encode, frame+payload only on decode); any
# regression fails TestFrameAllocGuard.
alloc-guard:
	$(GO) test -run TestFrameAllocGuard -count=1 ./internal/rpc/

check: vet race build test alloc-guard

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One pass over the live-stack benchmarks only — the quick signal that the
# real service path (transport, lb, control plane) still behaves, without
# re-deriving every simulator figure.
bench-smoke:
	$(GO) test -bench='QueryDiversity|RPCvsREST|SlowServerResilience|AutoscaleLive|ChaosRecovery|HotKeyStampede' -benchtime=1x .
