GO ?= go

.PHONY: build test vet race check alloc-guard shard-balance bench bench-smoke codecgen codecgen-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The call-path packages carry the concurrency-heavy code (connection
# pools, hedges, breakers, admission queues, fault injection, lease
# heartbeats, broker leases and consumer groups, and the stream
# send/recv/credit machinery); run them under the race detector, along
# with the codec the stream frames ride on, the applications refactored
# onto the sharded live-stack wiring, and the broker-backed async paths.
race:
	$(GO) test -race ./internal/rpc/... ./internal/transport/... ./internal/rest/... ./internal/lb/... ./internal/core/... ./internal/controlplane/... ./internal/loadgen/... ./internal/fault/... ./internal/registry/... ./internal/coalesce/... ./internal/svcutil/... ./internal/docstore/... ./internal/kv/... ./internal/codec/... ./internal/shard/... ./internal/mq/... ./internal/services/media/... ./internal/services/ecommerce/... ./internal/services/banking/... ./internal/services/swarm/... ./internal/services/socialnetwork/...

# Regenerate the fast-path marshalers (wire_gen.go) from the registered
# message types; codecgen-check fails if any are stale against the source
# structs, so hand edits to a message type can't silently fall back to the
# reflect plans (or worse, desync the generated encoding).
codecgen:
	$(GO) run ./cmd/codecgen

codecgen-check:
	$(GO) run ./cmd/codecgen -check

# Alloc-regression guards for the wire hot path: frame encode/decode has a
# pinned budget (0 allocs/op encode, frame+payload only on decode), a full
# echo round trip over the in-memory network must allocate at most the
# server-side request context, and WAL appends must reuse their encode
# scratch instead of re-marshaling per record.
alloc-guard:
	$(GO) test -run 'TestFrameAllocGuard|TestEchoAllocGuard' -count=1 ./internal/rpc/
	$(GO) test -run TestWALAppendBufferReuse -count=1 ./internal/docstore/

# Ring-imbalance guard: at the default 128 vnodes, the consistent-hash
# ring must spread keys over 8 shards within +/-15% of even; a hash or
# vnode regression that skews placement fails TestRingBalanceGuard.
shard-balance:
	$(GO) test -run TestRingBalanceGuard -count=1 ./internal/shard/

check: vet race build test alloc-guard shard-balance codecgen-check

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One pass over the live-stack benchmarks only — the quick signal that the
# real service path (transport, lb, control plane) still behaves, without
# re-deriving every simulator figure.
bench-smoke:
	$(GO) test -bench='QueryDiversity|RPCvsREST|SlowServerResilience|AutoscaleLive|ChaosRecovery|HotKeyStampede|TailAtScale|ClusterParity|AsyncFanout' -benchtime=1x .
	$(GO) test -run 'TestClusterParityShape|TestAsyncFanoutShape|TestBrokerCrashShape|TestPushShape' -count=1 ./internal/experiments/
