GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The call-path packages carry the concurrency-heavy code (connection
# pools, hedges, breakers); run them under the race detector.
race:
	$(GO) test -race ./internal/rpc/... ./internal/transport/... ./internal/rest/... ./internal/lb/... ./internal/core/...

check: vet race build test

bench:
	$(GO) test -bench=. -benchtime=1x ./...
