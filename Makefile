GO ?= go

.PHONY: build test vet race check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The call-path packages carry the concurrency-heavy code (connection
# pools, hedges, breakers, admission queues, fault injection, lease
# heartbeats); run them under the race detector.
race:
	$(GO) test -race ./internal/rpc/... ./internal/transport/... ./internal/rest/... ./internal/lb/... ./internal/core/... ./internal/controlplane/... ./internal/loadgen/... ./internal/fault/... ./internal/registry/...

check: vet race build test

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One pass over the live-stack benchmarks only — the quick signal that the
# real service path (transport, lb, control plane) still behaves, without
# re-deriving every simulator figure.
bench-smoke:
	$(GO) test -bench='QueryDiversity|RPCvsREST|SlowServerResilience|AutoscaleLive|ChaosRecovery' -benchtime=1x .
