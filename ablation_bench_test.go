package dsb_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// hand-rolled wire codec vs stdlib encoders, connection pooling, load
// balancing policies, tracing overhead on the live stack, and the
// simulator's provisioning (balanced vs naive).

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/core"
	"dsb/internal/graph"
	"dsb/internal/lb"
	"dsb/internal/rpc"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/sim"
)

type wirePayload struct {
	ID      uint64
	Author  string
	Text    string
	Tags    []string
	Scores  map[string]int64
	Blob    []byte
	Created int64
}

func samplePayload() wirePayload {
	return wirePayload{
		ID:     42,
		Author: "ablation-user",
		Text:   "a post body of realistic length for the social network benchmark suite",
		Tags:   []string{"bench", "codec", "ablation"},
		Scores: map[string]int64{"likes": 10, "reposts": 2},
		Blob:   bytes.Repeat([]byte{0xCD}, 512),
	}
}

// BenchmarkAblationCodec compares the suite's wire codec against stdlib
// gob and JSON for the round trip every RPC pays.
func BenchmarkAblationCodec(b *testing.B) {
	in := samplePayload()
	b.Run("codec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := codec.Marshal(in)
			if err != nil {
				b.Fatal(err)
			}
			var out wirePayload
			if err := codec.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(in); err != nil {
				b.Fatal(err)
			}
			var out wirePayload
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(in)
			if err != nil {
				b.Fatal(err)
			}
			var out wirePayload
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func startEchoServer(b *testing.B, network rpc.Network) string {
	b.Helper()
	s := rpc.NewServer("echo")
	s.Handle("Echo", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) { return payload, nil })
	addr, err := s.Start(network, "echo:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return addr
}

// BenchmarkAblationConnPool measures the effect of the client connection
// pool size under concurrent callers.
func BenchmarkAblationConnPool(b *testing.B) {
	for _, pool := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			n := rpc.NewMem()
			addr := startEchoServer(b, n)
			c := rpc.NewClient(n, "echo", addr, rpc.WithPoolSize(pool))
			defer c.Close()
			payload := samplePayload()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					var out wirePayload
					if err := c.Call(context.Background(), "Echo", payload, &out); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationLBPolicy compares balancing policies over 4 backends.
func BenchmarkAblationLBPolicy(b *testing.B) {
	policies := map[string]func() lb.Policy{
		"roundrobin": func() lb.Policy { return &lb.RoundRobin{} },
		"leastconn":  func() lb.Policy { return lb.LeastConn{} },
		"p2c":        func() lb.Policy { return lb.NewPowerOfTwo(1) },
	}
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			n := rpc.NewMem()
			addrs := make([]string, 4)
			for i := range addrs {
				s := rpc.NewServer("echo")
				s.Handle("Echo", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) { return payload, nil })
				addr, err := s.Start(n, fmt.Sprintf("echo-%s-%d:0", name, i))
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { s.Close() })
				addrs[i] = addr
			}
			bal := lb.New(n, "echo", addrs, mk())
			defer bal.Close()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := bal.Call(context.Background(), "Echo", int64(1), new(int64)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationTracing measures the distributed tracer's overhead on a
// real composePost path; the paper reports <0.1% on end-to-end latency for
// its out-of-band collector (ours is in-process, so some overhead shows).
func BenchmarkAblationTracing(b *testing.B) {
	for _, tracing := range []bool{false, true} {
		name := "off"
		if tracing {
			name = "on"
		}
		b.Run("tracing-"+name, func(b *testing.B) {
			app := core.NewApp("ablation", core.Options{DisableTracing: !tracing, TraceBuffer: 1 << 16})
			defer app.Close()
			sn, err := socialnetwork.New(app, socialnetwork.Config{})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "u", Password: "p"}, nil); err != nil {
				b.Fatal(err)
			}
			var login socialnetwork.LoginResp
			if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: "u", Password: "p"}, &login); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
					Token: login.Token, Text: "tracing ablation post",
				}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProvisioning contrasts naive profile-sized worker pools
// with the paper's Section 3.8 balanced provisioning at equal total load.
func BenchmarkAblationProvisioning(b *testing.B) {
	run := func(balanced bool) sim.Result {
		d, err := sim.NewDeployment(sim.New(), sim.Config{App: graph.SocialNetwork(), WorkerScale: 0.25, Seed: 99})
		if err != nil {
			b.Fatal(err)
		}
		if balanced {
			d.BalanceWorkers(400, 1.3)
		}
		return d.RunOpenLoop(350, 2*time.Second)
	}
	for _, balanced := range []bool{false, true} {
		name := "naive"
		if balanced {
			name = "balanced"
		}
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = run(balanced)
			}
			b.ReportMetric(float64(res.E2E.P99)/1e6, "p99-ms")
			b.ReportMetric(res.NetFrac*100, "net-%")
		})
	}
}

// BenchmarkAblationNICQueues shows why the simulator models the kernel/NIC
// as a finite station: with ample NIC workers the Fig 15 high-load network
// share never materializes.
func BenchmarkAblationNICQueues(b *testing.B) {
	run := func(extraNIC bool) sim.Result {
		d, err := sim.NewDeployment(sim.New(), sim.Config{App: graph.SocialNetwork(), WorkerScale: 0.25, Seed: 98})
		if err != nil {
			b.Fatal(err)
		}
		if extraNIC {
			for _, svc := range d.Services() {
				for _, in := range d.Service(svc).Instances {
					in.NIC.SetWorkers(64)
				}
			}
		}
		return d.RunOpenLoop(750, 2*time.Second)
	}
	for _, extra := range []bool{false, true} {
		name := "nic2"
		if extra {
			name = "nic64"
		}
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = run(extra)
			}
			b.ReportMetric(res.NetFrac*100, "net-%")
			b.ReportMetric(float64(res.E2E.P99)/1e6, "p99-ms")
		})
	}
}
