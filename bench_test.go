package dsb_test

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment driver (internal/experiments) once per
// iteration and reports key scalar results as custom benchmark metrics, so
// `go test -bench=. -benchmem` regenerates every result. The rendered
// tables land in benchmark logs via b.Log at -v.
//
// Run a single experiment: go test -bench=BenchmarkFig9 -benchtime=1x
// Print its table:         go run ./cmd/dsbench fig9

import (
	"testing"

	"dsb/internal/experiments"
)

// runExperiment executes the driver once per b.N and logs the final table.
func runExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = exp.Run()
	}
	b.StopTimer()
	if rep == nil || len(rep.Rows) == 0 {
		b.Fatalf("%s: empty report", id)
	}
	b.Log("\n" + rep.String())
	return rep
}

func BenchmarkTable1SuiteComposition(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkFig3NetworkVsApplication(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkFig9SwarmEdgeVsCloud(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10CycleBreakdownIPC(b *testing.B)   { runExperiment(b, "fig10") }
func BenchmarkFig11L1iMPKI(b *testing.B)             { runExperiment(b, "fig11") }

func BenchmarkFig12FrequencyTailLatency(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13BrawnyVsWimpy(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkFig14OSBreakdown(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15NetworkProcessing(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkFig16FPGAAcceleration(b *testing.B)     { runExperiment(b, "fig16") }

func BenchmarkFig17Backpressure(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18DependencyGraphs(b *testing.B)   { runExperiment(b, "fig18") }
func BenchmarkFig19CascadingQoS(b *testing.B)       { runExperiment(b, "fig19") }
func BenchmarkFig20RecoveryVsMonolith(b *testing.B) { runExperiment(b, "fig20") }
func BenchmarkFig21Serverless(b *testing.B)         { runExperiment(b, "fig21") }

func BenchmarkFig22aLargeScaleCascade(b *testing.B) { runExperiment(b, "fig22a") }
func BenchmarkFig22bRequestSkew(b *testing.B)       { runExperiment(b, "fig22b") }
func BenchmarkFig22cSlowServers(b *testing.B)       { runExperiment(b, "fig22c") }

func BenchmarkQueryDiversity(b *testing.B) { runExperiment(b, "querydiv") }
func BenchmarkRPCvsREST(b *testing.B)      { runExperiment(b, "rpcrest") }

func BenchmarkSlowServerResilience(b *testing.B) { runExperiment(b, "resilience") }

func BenchmarkAutoscaleLive(b *testing.B) { runExperiment(b, "autoscale-live") }

func BenchmarkChaosRecovery(b *testing.B) { runExperiment(b, "chaos") }

// BenchmarkHotKeyStampede and BenchmarkWriteFanout both run the hotpath
// driver; the report carries the coalesced-vs-uncoalesced fetch counts and
// the pooled-vs-sequential append latencies side by side.
func BenchmarkHotKeyStampede(b *testing.B) { runExperiment(b, "hotpath") }

func BenchmarkWriteFanout(b *testing.B) { runExperiment(b, "hotpath") }

// BenchmarkTailAtScale runs the sharded stateful tier through both
// tail-at-scale regimes: Zipf skew over 1 vs 8 shards at equal offered
// load, then a slow replica on the hot shard with and without protection.
func BenchmarkTailAtScale(b *testing.B) { runExperiment(b, "tailatscale") }

// BenchmarkClusterParity boots all five applications on one registry with
// a shared machine budget and runs the mixed-tenant flash-crowd isolation
// experiment, with and without the control plane.
func BenchmarkClusterParity(b *testing.B) { runExperiment(b, "clusterparity") }

// BenchmarkAsyncFanout walks the sync, pipelined, and broker-backed async
// write-path layouts (single, capacity-capped, and partitioned broker
// tiers) up an offered-load ladder at a fixed p99 QoS target — the async
// backbone's headline contrast — then runs the broker-crash arms:
// replicated vs unreplicated partitioned tiers under a mid-fanout kill.
func BenchmarkAsyncFanout(b *testing.B) {
	runExperiment(b, "asyncfanout")
	runExperiment(b, "brokercrash")
}
