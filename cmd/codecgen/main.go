// Command codecgen regenerates the wire_gen.go fast-path marshalers for the
// hot message types across the repo. Run from the module root:
//
//	go run ./cmd/codecgen          # rewrite every wire_gen.go
//	go run ./cmd/codecgen -check   # exit 1 if any on-disk file is stale
//
// The manifest below lists the root types per package; the emitter closes
// over nested same-package structs automatically, so adding a new request
// type with nested payload structs only needs the root here.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/mq"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/media"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/services/swarm"
)

type target struct {
	dir     string // relative to module root
	pkgName string
	roots   []any // zero values of the root message types, in output order
}

var targets = []target{
	{
		dir: "internal/kv", pkgName: "kv",
		roots: []any{
			kv.GetReq{}, kv.GetResp{}, kv.SetReq{}, kv.DeleteReq{}, kv.DeleteResp{},
			kv.MGetReq{}, kv.MGetResp{}, kv.IncrReq{}, kv.IncrResp{},
		},
	},
	{
		dir: "internal/docstore", pkgName: "docstore",
		roots: []any{
			docstore.Doc{}, docstore.PutReq{}, docstore.GetReq{}, docstore.GetResp{},
			docstore.FindReq{}, docstore.FindRangeReq{}, docstore.FindResp{},
			docstore.DeleteReq{}, docstore.DeleteResp{},
			docstore.ListPrependReq{}, docstore.ListPrependResp{}, docstore.WALRecord{},
		},
	},
	{
		dir: "internal/mq", pkgName: "mq",
		roots: []any{
			mq.Message{}, mq.PublishReq{}, mq.MirrorReq{}, mq.MirrorResp{}, mq.PublishResp{},
			mq.SubscribeReq{}, mq.ConsumeReq{}, mq.ConsumeResp{}, mq.PushReq{},
			mq.AckReq{}, mq.AckResp{}, mq.StatsReq{}, mq.StatsResp{},
			mq.PeekReq{}, mq.PeekResp{}, mq.RedriveReq{}, mq.RedriveResp{},
		},
	},
	{
		dir: "internal/services/socialnetwork", pkgName: "socialnetwork",
		roots: []any{
			socialnetwork.ComposePostReq{}, socialnetwork.ComposePostResp{},
			socialnetwork.StorePostReq{}, socialnetwork.ReadPostReq{}, socialnetwork.ReadPostResp{},
			socialnetwork.ReadPostsReq{}, socialnetwork.ReadPostsResp{},
			socialnetwork.AppendTimelineReq{}, socialnetwork.ReadTimelineReq{}, socialnetwork.ReadTimelineResp{},
			socialnetwork.FanoutEvent{},
			socialnetwork.UploadMediaReq{}, socialnetwork.UploadMediaResp{},
			socialnetwork.GetMediaReq{}, socialnetwork.GetMediaResp{},
			socialnetwork.TextProcessReq{}, socialnetwork.TextProcessResp{},
			socialnetwork.InfoReq{}, socialnetwork.InfoResp{},
			socialnetwork.AdsReq{}, socialnetwork.AdsResp{},
		},
	},
	{
		dir: "internal/services/media", pkgName: "media",
		roots: []any{
			media.AddMovieReq{}, media.GetMovieReq{}, media.GetMovieResp{}, media.MoviesResp{},
			media.CastReq{}, media.CastResp{}, media.Review{}, media.Rental{},
		},
	},
	{
		dir: "internal/services/ecommerce", pkgName: "ecommerce",
		roots: []any{
			ecommerce.CartAddReq{}, ecommerce.CartReq{}, ecommerce.CartResp{},
			ecommerce.AddItemReq{}, ecommerce.GetItemReq{}, ecommerce.GetItemResp{}, ecommerce.ItemsResp{},
			ecommerce.PlaceOrderReq{}, ecommerce.PlaceOrderResp{},
			ecommerce.GetOrderReq{}, ecommerce.GetOrderResp{}, ecommerce.OrdersResp{},
			ecommerce.InvoiceReq{}, ecommerce.InvoiceResp{},
			ecommerce.DiscountReq{}, ecommerce.DiscountResp{},
		},
	},
	{
		dir: "internal/services/banking", pkgName: "banking",
		roots: []any{
			banking.CustomerReq{}, banking.CustomerResp{}, banking.PutCustomerReq{},
			banking.OpenAccountReq{}, banking.OpenAccountResp{},
			banking.AccountReq{}, banking.AccountResp{}, banking.AccountsResp{},
			banking.TransferReq{}, banking.TransferResp{},
			banking.LedgerReq{}, banking.LedgerResp{},
		},
	},
	{
		dir: "internal/services/swarm", pkgName: "swarm",
		roots: []any{
			swarm.RouteReq{}, swarm.RouteResp{}, swarm.AvoidReq{}, swarm.AvoidResp{},
			swarm.RecognizeReq{}, swarm.RecognizeResp{}, swarm.SensorReport{},
			swarm.StoreFrameReq{}, swarm.TelemetryOpen{}, swarm.TelemetryItem{},
			swarm.LogReq{}, swarm.LogTailReq{}, swarm.LogTailResp{},
		},
	},
}

func main() {
	check := flag.Bool("check", false, "verify generated files are up to date instead of writing")
	flag.Parse()

	stale := 0
	for _, t := range targets {
		roots := make([]reflect.Type, len(t.roots))
		for i, r := range t.roots {
			roots[i] = reflect.TypeOf(r)
		}
		pkgPath := "dsb/" + t.dir
		src, err := generate(t.pkgName, pkgPath, roots)
		if err != nil {
			fmt.Fprintf(os.Stderr, "codecgen: %s: %v\n", t.dir, err)
			os.Exit(1)
		}
		out := filepath.Join(t.dir, "wire_gen.go")
		if *check {
			have, err := os.ReadFile(out)
			if err != nil || !bytes.Equal(have, src) {
				fmt.Fprintf(os.Stderr, "codecgen: %s is stale; run `make codecgen`\n", out)
				stale++
			}
			continue
		}
		if err := os.WriteFile(out, src, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "codecgen: write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if stale > 0 {
		os.Exit(1)
	}
}
