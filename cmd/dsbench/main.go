// Command dsbench runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	dsbench list           # enumerate experiments
//	dsbench all            # run everything, in paper order
//	dsbench fig9 fig13 …   # run a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dsb/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dsbench [list|all|<id>...]\n\nexperiments:\n")
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}
	var ids []string
	if args[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	exitCode := 0
	for _, id := range ids {
		exp, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dsbench: unknown experiment %q (try 'dsbench list')\n", id)
			exitCode = 1
			continue
		}
		start := time.Now()
		rep := exp.Run()
		fmt.Println(rep)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
