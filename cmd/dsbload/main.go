// Command dsbload boots an application on the live in-process stack and
// drives it with the open-loop workload generator, printing a latency
// report — the suite's equivalent of running its client machines.
//
// Usage:
//
//	dsbload -app social -qps 200 -duration 10s
//	dsbload -app ecommerce -qps 50 -duration 5s -closed -workers 16
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dsb/internal/core"
	"dsb/internal/loadgen"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/socialnetwork"
)

func main() {
	var (
		appName  = flag.String("app", "social", "application: social | ecommerce | banking")
		qps      = flag.Float64("qps", 100, "open-loop arrival rate")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		closed   = flag.Bool("closed", false, "closed-loop instead of open-loop")
		workers  = flag.Int("workers", 8, "closed-loop worker count")
		users    = flag.Int("users", 50, "seeded user count")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	do, cleanup, err := buildWorkload(*appName, *users, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsbload:", err)
		os.Exit(1)
	}
	defer cleanup()

	fmt.Printf("driving %s: qps=%.0f duration=%v closed=%v\n", *appName, *qps, *duration, *closed)
	var res loadgen.Result
	if *closed {
		res = loadgen.RunClosedLoop(context.Background(), *workers, *duration, do)
	} else {
		res = loadgen.RunOpenLoop(context.Background(), loadgen.NewPoisson(*qps, *seed), *duration, do)
	}
	fmt.Printf("issued=%d completed=%d errors=%d throughput=%.1f req/s\n",
		res.Issued, res.Completed, res.Errors, res.Throughput())
	fmt.Printf("latency: %v\n", res.Latency)
}

// buildWorkload boots the app and returns a request generator mixing the
// app's dominant query classes.
func buildWorkload(name string, users int, seed uint64) (func(ctx context.Context) error, func(), error) {
	app := core.NewApp("dsbload", core.Options{DisableTracing: true})
	cleanup := func() { app.Close() }
	// The request generators returned below run concurrently under the
	// open-loop driver; loadgen.Source is the mutex-guarded seeded stream.
	rng := loadgen.NewSource(seed)
	ctx := context.Background()

	switch name {
	case "social":
		sn, err := socialnetwork.New(app, socialnetwork.Config{})
		if err != nil {
			return nil, cleanup, err
		}
		tokens := make([]string, users)
		names := make([]string, users)
		for i := range tokens {
			names[i] = fmt.Sprintf("user%d", i)
			if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: names[i], Password: "pw"}, nil); err != nil {
				return nil, cleanup, err
			}
			var lr socialnetwork.LoginResp
			if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: names[i], Password: "pw"}, &lr); err != nil {
				return nil, cleanup, err
			}
			tokens[i] = lr.Token
		}
		// Zipf-popular accounts get followed more.
		zipf := loadgen.NewZipf(users, 1.0, seed)
		for i := 0; i < users*4; i++ {
			a, b := rng.IntN(users), zipf.Draw()
			if a != b {
				sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: names[a], Followee: names[b]}, nil) //nolint:errcheck
			}
		}
		picker := loadgen.NewSkewedUsers(users, 30, seed)
		return func(ctx context.Context) error {
			u := picker.Draw()
			if rng.Float64() < 0.3 {
				return sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
					Token: tokens[u], Text: fmt.Sprintf("post %d from %s", rng.IntN(1000), names[u]),
				}, nil)
			}
			return sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: names[u], Limit: 10}, nil)
		}, cleanup, nil

	case "ecommerce":
		ec, err := ecommerce.New(app, ecommerce.Config{})
		if err != nil {
			return nil, cleanup, err
		}
		oldCleanup := cleanup
		cleanup = func() { ec.Close(); oldCleanup() }
		var items []ecommerce.Item
		for i := 0; i < 50; i++ {
			items = append(items, ecommerce.Item{
				ID: fmt.Sprintf("item-%d", i), Name: fmt.Sprintf("Item %d", i),
				Tags: []string{"general"}, PriceCents: int64(100 + i*37), WeightGram: 200, Stock: 1 << 40,
			})
		}
		if err := ec.SeedItems(items); err != nil {
			return nil, cleanup, err
		}
		tokens := make([]string, users)
		names := make([]string, users)
		for i := range tokens {
			names[i] = fmt.Sprintf("buyer%d", i)
			if err := ec.User.Call(ctx, "Register", ecommerce.RegisterUserReq{Username: names[i], Password: "pw", BalanceCents: 1 << 40}, nil); err != nil {
				return nil, cleanup, err
			}
			var lr ecommerce.LoginResp
			if err := ec.User.Call(ctx, "Login", ecommerce.LoginReq{Username: names[i], Password: "pw"}, &lr); err != nil {
				return nil, cleanup, err
			}
			tokens[i] = lr.Token
		}
		return func(ctx context.Context) error {
			u := rng.IntN(users)
			if rng.Float64() < 0.85 {
				return ec.Catalogue.Call(ctx, "List", ecommerce.ListItemsReq{Limit: 20}, nil)
			}
			item := items[rng.IntN(len(items))].ID
			if err := ec.Cart.Call(ctx, "Add", ecommerce.CartAddReq{Username: names[u], ItemID: item, Quantity: 1}, nil); err != nil {
				return err
			}
			return ec.Orders.Call(ctx, "Place", ecommerce.PlaceOrderReq{Token: tokens[u], Shipping: "standard"}, nil)
		}, cleanup, nil

	case "banking":
		b, err := banking.New(app, banking.Config{})
		if err != nil {
			return nil, cleanup, err
		}
		tokens := make([]string, users)
		accounts := make([]string, users)
		for i := range tokens {
			tokens[i], accounts[i], err = b.Onboard(fmt.Sprintf("cust%d", i), 80000_00, 1<<30)
			if err != nil {
				return nil, cleanup, err
			}
		}
		return func(ctx context.Context) error {
			from := rng.IntN(users)
			to := rng.IntN(users)
			if to == from {
				to = (to + 1) % users
			}
			return b.Payments.Call(ctx, "Pay", banking.PaymentReq{
				Token: tokens[from], From: accounts[from], To: accounts[to],
				AmountCents: int64(1 + rng.IntN(500)),
			}, nil)
		}, cleanup, nil
	}
	return nil, cleanup, fmt.Errorf("unknown app %q (social | ecommerce | banking)", name)
}
