// Command dsbtrace boots the Social Network with tracing enabled, runs a
// short mixed workload, and inspects the trace store: per-service latency
// aggregation, a sample request tree, and the critical path — the
// suite's Zipkin-style trace browser.
//
// Usage:
//
//	dsbtrace -requests 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsb/internal/core"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/trace"
)

func main() {
	requests := flag.Int("requests", 100, "requests to trace")
	flag.Parse()

	app := core.NewApp("dsbtrace", core.Options{})
	defer app.Close()
	sn, err := socialnetwork.New(app, socialnetwork.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsbtrace:", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "tracer", Password: "pw"}, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dsbtrace:", err)
		os.Exit(1)
	}
	var login socialnetwork.LoginResp
	if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: "tracer", Password: "pw"}, &login); err != nil {
		fmt.Fprintln(os.Stderr, "dsbtrace:", err)
		os.Exit(1)
	}
	for i := 0; i < *requests; i++ {
		if i%3 == 0 {
			sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: "tracer", Limit: 10}, nil) //nolint:errcheck
		} else {
			sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{ //nolint:errcheck
				Token: login.Token, Text: fmt.Sprintf("traced post %d", i),
			}, nil)
		}
	}
	app.FlushTraces()

	store := app.Traces
	fmt.Printf("traces collected: %d\n\n", store.Len())

	fmt.Println("per-service latency (server spans):")
	lats := store.ServiceLatencies()
	names := make([]string, 0, len(lats))
	for n := range lats {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		s := lats[n].Snapshot()
		fmt.Printf("  %-28s n=%-5d p50=%-10v p99=%v\n", n, s.Count,
			time.Duration(s.P50).Round(time.Microsecond), time.Duration(s.P99).Round(time.Microsecond))
	}

	// Show the tree and critical path of the last compose trace.
	ids := store.TraceIDs()
	if len(ids) == 0 {
		return
	}
	id := ids[len(ids)-1]
	fmt.Printf("\nrequest tree for trace %x:\n", uint64(id))
	printTree(store.Tree(id), 1)
	fmt.Println("\ncritical path:")
	for _, span := range store.CriticalPath(id) {
		fmt.Printf("  %-28s %-24s %v\n", span.Service, span.Operation, span.Duration.Round(time.Microsecond))
	}
}

func printTree(n *trace.Node, depth int) {
	if n == nil {
		return
	}
	fmt.Printf("%s%s %s (%v)\n", strings.Repeat("  ", depth), n.Span.Service, n.Span.Operation,
		n.Span.Duration.Round(time.Microsecond))
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
