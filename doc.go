// Package dsb is a pure-Go reproduction of DeathStarBench (Gan et al.,
// ASPLOS 2019): five end-to-end microservice applications — a social
// network, a media service, an e-commerce site, a banking system, and an
// IoT swarm-coordination service — built on a from-scratch RPC/REST stack,
// distributed tracing, and storage substrates (cache, document store,
// relational store, blob store, message queue), together with a
// discrete-event cluster and hardware simulator that regenerates every
// table and figure in the paper's evaluation.
//
// The applications run in two modes that share the same topology
// definitions:
//
//   - Live mode: every microservice is a real server (goroutine) reachable
//     over TCP or an in-memory transport, with handlers operating on real
//     data stores. See the examples/ directory.
//   - Sim mode: internal/sim executes the same dependency graphs as
//     queueing networks over modeled machines, which makes the paper's
//     cluster-scale and hardware experiments reproducible in seconds on a
//     laptop. See internal/experiments and bench_test.go.
//
// Use the facade in this package to boot an application, or import the
// subsystem packages directly.
package dsb
