// The e-commerce example walks the full Sockshop-style checkout the paper's
// Figure 6 describes: browse the catalogue, search, fill a cart, and place
// an order that flows through shipping quotes, discounts, payment
// authorization, transaction IDs, invoicing, and the queueMaster's
// serialized commit — then shows the recommender reacting to the purchase.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dsb/internal/core"
	"dsb/internal/services/ecommerce"
)

func main() {
	app := core.NewApp("ecommerce-example", core.Options{})
	ec, err := ecommerce.New(app, ecommerce.Config{})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer func() { ec.Close(); app.Close() }()

	if err := ec.SeedItems([]ecommerce.Item{
		{ID: "sock-wool", Name: "Wool Hiking Sock", Tags: []string{"socks", "outdoor"}, PriceCents: 1299, WeightGram: 140, Stock: 40},
		{ID: "sock-run", Name: "Running Sock", Tags: []string{"socks", "sale"}, PriceCents: 899, WeightGram: 90, Stock: 25},
		{ID: "boot-trail", Name: "Trail Boot", Tags: []string{"shoes", "outdoor"}, PriceCents: 15999, WeightGram: 1500, Stock: 12},
		{ID: "bottle", Name: "Steel Bottle", Tags: []string{"outdoor", "clearance"}, PriceCents: 2499, WeightGram: 350, Stock: 30},
	}); err != nil {
		log.Fatalf("seed: %v", err)
	}

	ctx := context.Background()
	fe := ec.Frontend

	if err := fe.Do(ctx, "POST", "/register", ecommerce.CredentialsBody{Username: "hiker", Password: "pw"}, nil); err != nil {
		log.Fatalf("register: %v", err)
	}
	var login ecommerce.LoginResp
	if err := fe.Do(ctx, "POST", "/login", ecommerce.CredentialsBody{Username: "hiker", Password: "pw"}, &login); err != nil {
		log.Fatalf("login: %v", err)
	}

	var items []ecommerce.Item
	if err := fe.Do(ctx, "GET", "/catalogue?tag=outdoor", nil, &items); err != nil {
		log.Fatalf("catalogue: %v", err)
	}
	fmt.Printf("outdoor catalogue (%d items):\n", len(items))
	for _, it := range items {
		fmt.Printf("  %-12s $%-8.2f stock=%d tags=%v\n", it.ID, float64(it.PriceCents)/100, it.Stock, it.Tags)
	}

	var found []ecommerce.Item
	if err := fe.Do(ctx, "GET", "/search?q=sock", nil, &found); err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("\nsearch \"sock\": %d hits\n", len(found))

	for _, line := range []ecommerce.CartBody{
		{Token: login.Token, ItemID: "sock-wool", Quantity: 2},
		{Token: login.Token, ItemID: "boot-trail", Quantity: 1},
	} {
		if err := fe.Do(ctx, "POST", "/cart", line, nil); err != nil {
			log.Fatalf("cart: %v", err)
		}
	}

	var opts []ecommerce.ShippingOption
	if err := fe.Do(ctx, "GET", "/shipping?weight=1780", nil, &opts); err != nil {
		log.Fatalf("shipping: %v", err)
	}
	fmt.Println("\nshipping quotes for the cart:")
	for _, o := range opts {
		fmt.Printf("  %-10s $%-7.2f %d day(s)\n", o.Method, float64(o.CostCents)/100, o.Days)
	}

	var order ecommerce.Order
	if err := fe.Do(ctx, "POST", "/orders", ecommerce.OrderBody{Token: login.Token, Shipping: "express"}, &order); err != nil {
		log.Fatalf("order: %v", err)
	}
	fmt.Printf("\norder %s placed:\n", order.ID)
	fmt.Printf("  items     $%.2f\n  discount -$%.2f\n  shipping  $%.2f\n  TOTAL     $%.2f\n",
		float64(order.ItemsCents)/100, float64(order.DiscountCents)/100,
		float64(order.ShippingCents)/100, float64(order.TotalCents)/100)
	fmt.Printf("  txn=%s invoice=%s status=%s\n", order.TransactionID, order.InvoiceID, order.Status)

	final, err := ec.WaitForOrder(order.ID, 5*time.Second)
	if err != nil {
		log.Fatalf("commit: %v", err)
	}
	fmt.Printf("  queueMaster committed it: status=%s\n", final.Status)

	var item ecommerce.Item
	if err := fe.Do(ctx, "GET", "/catalogue/sock-wool", nil, &item); err != nil {
		log.Fatalf("stock check: %v", err)
	}
	fmt.Printf("  sock-wool stock is now %d (was 40)\n", item.Stock)

	var recs ecommerce.RecommendationsBody
	if err := fe.Do(ctx, "GET", "/recommend?token="+login.Token, nil, &recs); err != nil {
		log.Fatalf("recommend: %v", err)
	}
	fmt.Println("\nrecommended after this purchase:")
	if recs.Degraded {
		fmt.Println("  (recommender degraded — empty list served)")
	}
	for _, it := range recs.Items {
		fmt.Printf("  %-12s %s\n", it.ID, it.Name)
	}
}
