// Quickstart boots the entire Social Network — thirty-odd microservices,
// caches, and document stores — inside one process on the in-memory
// transport, exercises it through the REST front door, and prints what the
// distributed tracer saw. No ports, no containers; everything is real code
// paths end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dsb/internal/core"
	"dsb/internal/services/socialnetwork"
)

func main() {
	app := core.NewApp("quickstart", core.Options{})
	defer app.Close()

	sn, err := socialnetwork.New(app, socialnetwork.Config{})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	fmt.Printf("booted Social Network with %d microservices\n\n", len(app.Registry.Services()))

	ctx := context.Background()
	fe := sn.Frontend

	// Register and log in two users over REST.
	for _, user := range []string{"ada", "grace"} {
		if err := fe.Do(ctx, "POST", "/register", socialnetwork.CredentialsBody{Username: user, Password: "pw-" + user}, nil); err != nil {
			log.Fatalf("register %s: %v", user, err)
		}
	}
	var ada socialnetwork.LoginResp
	if err := fe.Do(ctx, "POST", "/login", socialnetwork.CredentialsBody{Username: "ada", Password: "pw-ada"}, &ada); err != nil {
		log.Fatalf("login: %v", err)
	}
	var grace socialnetwork.LoginResp
	if err := fe.Do(ctx, "POST", "/login", socialnetwork.CredentialsBody{Username: "grace", Password: "pw-grace"}, &grace); err != nil {
		log.Fatalf("login: %v", err)
	}

	// grace follows ada; ada posts; grace reads her timeline.
	if err := fe.Do(ctx, "POST", "/follow", socialnetwork.FollowBody{Token: grace.Token, Followee: "ada"}, nil); err != nil {
		log.Fatalf("follow: %v", err)
	}
	var post socialnetwork.Post
	if err := fe.Do(ctx, "POST", "/posts", socialnetwork.PostBody{
		Token: ada.Token,
		Text:  "hello @grace — analytical engines at https://example.com/engines are underrated",
	}, &post); err != nil {
		log.Fatalf("post: %v", err)
	}
	fmt.Printf("ada posted %s\n  text:     %s\n  mentions: %v\n  urls:     %v\n\n",
		post.ID, post.Text, post.Mentions, post.URLs)

	var timeline []socialnetwork.Post
	if err := fe.Do(ctx, "GET", "/timeline/grace", nil, &timeline); err != nil {
		log.Fatalf("timeline: %v", err)
	}
	fmt.Printf("grace's timeline has %d post(s); newest: %q\n\n", len(timeline), timeline[0].Text)

	var hits []socialnetwork.SearchHit
	if err := fe.Do(ctx, "GET", "/search?q=analytical+engines", nil, &hits); err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("search for \"analytical engines\": %d hit(s)\n\n", len(hits))

	// What did the tracer see for the compose request?
	app.FlushTraces()
	fmt.Printf("tracer collected %d end-to-end traces; per-service latencies:\n", app.Traces.Len())
	app.FlushTraces()
	for svc, h := range app.Traces.ServiceLatencies() {
		s := h.Snapshot()
		if s.Count >= 2 {
			fmt.Printf("  %-26s n=%-3d p50=%v\n", svc, s.Count, time.Duration(s.P50).Round(time.Microsecond))
		}
	}
}
