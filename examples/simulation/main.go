// The simulation example uses the discrete-event cluster simulator as a
// library: it deploys the Social Network topology, sweeps offered load to
// find the saturation knee, then reproduces a miniature cascading-QoS
// experiment with the cluster monitor and autoscaler — the machinery every
// figure-reproduction bench is built from.
package main

import (
	"fmt"
	"log"
	"time"

	"dsb/internal/cluster"
	"dsb/internal/graph"
	"dsb/internal/sim"
)

func main() {
	app := graph.SocialNetwork()
	fmt.Printf("topology %q: %d services, %d edges, depth %d, %d invocations per request\n\n",
		app.Name, len(app.Services()), len(app.Edges()), app.Depth(), app.TotalCalls())

	// Load sweep: watch tail latency grow to the knee.
	fmt.Println("load sweep (WorkerScale=0.25):")
	fmt.Printf("  %-8s %-12s %-12s %s\n", "qps", "p50", "p99", "net share")
	for _, qps := range []float64{25, 100, 400, 800, 1200} {
		d, err := sim.NewDeployment(sim.New(), sim.Config{App: app, WorkerScale: 0.25, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		res := d.RunOpenLoop(qps, 2*time.Second)
		fmt.Printf("  %-8.0f %-12v %-12v %.1f%%\n", qps,
			time.Duration(res.E2E.P50).Round(time.Microsecond),
			time.Duration(res.E2E.P99).Round(time.Microsecond),
			res.NetFrac*100)
	}

	// A 60-second cascading-QoS timeline: slow the database mid-run and let
	// the autoscaler react.
	fmt.Println("\ncascade timeline: mongodb slows 20x at t=20s, autoscaler active")
	d, err := sim.NewDeployment(sim.New(), sim.Config{App: app, WorkerScale: 0.25, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	mon := cluster.NewMonitor(d, time.Second)
	as := cluster.NewAutoscaler(d)
	as.Interval = 3 * time.Second
	as.StartupDelay = 6 * time.Second
	const dur = 60 * time.Second
	mon.Start(dur)
	as.Start(dur)
	d.Sim.After(20*time.Second, func() {
		if err := d.SetSlow("mongodb", 0, 20); err != nil {
			log.Fatal(err)
		}
	})
	d.RunOpenLoop(250, dur)

	fmt.Printf("  e2e p99 timeline (ms): %s\n", mon.E2EP99.Sparkline(50))
	fmt.Printf("  peak e2e p99: %.2fms (baseline %.2fms)\n", mon.E2EP99.Max(), mon.E2EP99.At(15*time.Second))
	fmt.Printf("  autoscaler actions: %d\n", len(as.Events))
	for _, e := range as.Events {
		fmt.Printf("    t=%-4v scaled %-22s to %d instances\n", e.At.Round(time.Second), e.Service, e.Instances)
	}
	q := cluster.QoS{TargetMs: 2 * mon.E2EP99.At(15*time.Second)}
	if at, ok := q.ViolationAt(mon.E2EP99); ok {
		fmt.Printf("  QoS violated at t=%v", at.Round(time.Second))
		if rec, ok := q.RecoveryAfter(mon.E2EP99, at, 3); ok {
			fmt.Printf(", recovered at t=%v\n", rec.Round(time.Second))
		} else {
			fmt.Println(", never recovered inside the run")
		}
	}
}
