// The swarm example flies the same drone mission twice — once with the
// compute on the drones (Swarm-Edge) and once in the cloud (Swarm-Cloud,
// every decision crossing a simulated wifi hop) — and compares mission
// time, exactly the trade-off Figure 8 of the paper explores. It also
// injects a mid-flight obstacle to show avoidance and replanning.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dsb/internal/core"
	"dsb/internal/services/swarm"
)

func main() {
	ctx := context.Background()
	for _, placement := range []swarm.Placement{swarm.Edge, swarm.Cloud} {
		app := core.NewApp("swarm-"+placement.String(), core.Options{DisableTracing: true})
		sw, err := swarm.New(app, swarm.Config{
			Placement: placement,
			Drones:    3,
			WorldSize: 28,
			Seed:      42,
			WifiRTT:   4 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("boot: %v", err)
		}

		// Pick a labeled target.
		var target swarm.Point
		var label string
		for p, l := range sw.World.Targets {
			target, label = p, l
			break
		}
		fmt.Printf("=== %s placement: photograph %q at (%d,%d) ===\n", placement, label, target.X, target.Y)

		for i, drone := range sw.Drones {
			// The second drone hits a surprise obstacle mid-flight.
			if i == 1 {
				injected := false
				drone.OnTick = func(pos swarm.Point, remaining []swarm.Point) {
					if injected || len(remaining) < 3 {
						return
					}
					if _, isTarget := sw.World.Targets[remaining[0]]; isTarget {
						return
					}
					sw.PlaceObstacle(remaining[0])
					injected = true
				}
			}
			res, err := drone.FlyTo(ctx, target)
			if err != nil {
				log.Fatalf("%s: mission: %v", drone.ID, err)
			}
			fmt.Printf("  %s: %d steps, %d replans, recognized %q (confident=%v) in %v\n",
				drone.ID, res.Steps, res.Replans, res.Label, res.Confident, res.Elapsed.Round(time.Millisecond))
		}
		locations, err := sw.ArchivedSamples(ctx, "location")
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		frames, err := sw.ArchivedSamples(ctx, "images")
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		fmt.Printf("  telemetry archived: %d location samples, %d frames\n\n", locations, frames)
		app.Close()
	}
	fmt.Println("note: the cloud placement pays the wifi hop on every avoidance check —")
	fmt.Println("the latency-critical trade-off Figure 9 of the paper quantifies.")
}
