module dsb

go 1.24
