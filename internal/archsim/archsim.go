// Package archsim models the hardware the paper measures: per-service
// cycle breakdowns and IPC (the vTune top-down analysis of Fig 10),
// instruction-cache miss rates (Fig 11), big (Xeon) vs wimpy (ThunderX)
// cores and frequency scaling (Figs 12–13), kernel TCP processing costs
// per message, and the FPGA RPC-offload of Fig 16.
//
// These are calibrated analytical models, not cycle-accurate simulators:
// they reproduce the shapes the paper reports (front-end-stall-dominated
// breakdowns, low microservice i-cache pressure vs high monolith pressure,
// search's high IPC and ML inference's low IPC) from the service profiles
// in internal/graph. DESIGN.md records this substitution.
package archsim

import (
	"math"

	"dsb/internal/graph"
)

// CoreType selects the microarchitecture.
type CoreType int

// Core types.
const (
	// Xeon models the E5-2660v3/E5-2699v4 class out-of-order server core.
	Xeon CoreType = iota
	// ThunderX models the Cavium 48-core in-order core.
	ThunderX
)

func (c CoreType) String() string {
	if c == ThunderX {
		return "thunderx"
	}
	return "xeon"
}

// Platform is a server configuration.
type Platform struct {
	Core    CoreType
	FreqGHz float64
	Cores   int
}

// Standard platforms from the paper's testbed.
var (
	// XeonPlatform is the local-cluster server at nominal frequency.
	XeonPlatform = Platform{Core: Xeon, FreqGHz: 2.4, Cores: 40}
	// XeonLowFreq is the Xeon clocked down to the ThunderX frequency.
	XeonLowFreq = Platform{Core: Xeon, FreqGHz: 1.8, Cores: 40}
	// ThunderXPlatform is the two-socket Cavium board.
	ThunderXPlatform = Platform{Core: ThunderX, FreqGHz: 1.8, Cores: 96}
)

// maxMPKI anchors the i-cache model: the largest monolithic footprints
// approach this L1i MPKI, matching Fig 11's monolith bars.
const maxMPKI = 72.0

// L1iMPKI models instruction-cache pressure as a saturating function of
// code footprint beyond the 24KB that fits in a 32KB L1i alongside the
// kernel's hot paths.
func L1iMPKI(p graph.Profile) float64 {
	excess := p.CodeKB - 24
	if excess < 0 {
		excess = 0
	}
	return maxMPKI * (1 - math.Exp(-excess/500))
}

// Breakdown is the top-down cycle decomposition of one service.
type Breakdown struct {
	FrontendPct float64
	BadSpecPct  float64
	BackendPct  float64
	RetiringPct float64
	IPC         float64
	MPKI        float64
}

// retireShare returns the fraction of non-stalled issue slots that retire,
// by language family unless the profile overrides it.
func retireShare(p graph.Profile) float64 {
	if p.RetireShare > 0 {
		return p.RetireShare
	}
	switch p.Language {
	case "C":
		return 0.46
	case "C++":
		return 0.50
	case "Java", "Go":
		return 0.45
	case "Scala":
		return 0.30
	case "node.js", "Javascript":
		return 0.36
	case "PHP", "Ruby":
		return 0.40
	default:
		return 0.42
	}
}

// CycleBreakdown computes the Fig 10 decomposition for a service on a Xeon
// core: front-end stalls grow with i-cache pressure, bad speculation is a
// small slice, and the remainder splits between back-end stalls and
// retiring according to the service's retire share.
func CycleBreakdown(p graph.Profile) Breakdown {
	mpki := L1iMPKI(p)
	fe := 0.30 + 0.38*(mpki/maxMPKI)
	bs := 0.06 - 0.02*(mpki/maxMPKI)
	remaining := 1 - fe - bs
	retiring := remaining * retireShare(p)
	backend := remaining - retiring
	return Breakdown{
		FrontendPct: fe * 100,
		BadSpecPct:  bs * 100,
		BackendPct:  backend * 100,
		RetiringPct: retiring * 100,
		IPC:         IPC(p, Xeon),
		MPKI:        mpki,
	}
}

// IPC estimates instructions per cycle: issue width times the retiring
// fraction, derated for the in-order ThunderX, whose inability to hide
// misses compounds the penalty.
func IPC(p graph.Profile, core CoreType) float64 {
	mpki := L1iMPKI(p)
	fe := 0.30 + 0.38*(mpki/maxMPKI)
	bs := 0.06 - 0.02*(mpki/maxMPKI)
	retiring := (1 - fe - bs) * retireShare(p)
	switch core {
	case ThunderX:
		return 2 * retiring * 0.62
	default:
		return 4 * retiring * 0.85
	}
}

// ServiceTimeNs returns the per-request processing time of a service on a
// platform: the frequency-scalable cycles (adjusted for core IPC relative
// to the Xeon the profiles were calibrated on) plus the fixed memory/IO
// time that no frequency or core change removes.
func ServiceTimeNs(p graph.Profile, work float64, plat Platform) float64 {
	cycles := p.Cycles * work
	ipcRatio := IPC(p, Xeon) / IPC(p, plat.Core)
	return cycles*ipcRatio/plat.FreqGHz + p.FixedNs*work
}

// Network models kernel TCP processing. Costs are cycles, so they scale
// with frequency like any other kernel code; the FPGA offload divides them.
type Network struct {
	// PerMsgCycles is the fixed per-message kernel cost (syscall, softirq,
	// TCP state machine).
	PerMsgCycles float64
	// PerByteCycles covers copies and checksums.
	PerByteCycles float64
	// AccelFactor divides processing when the bump-in-the-wire FPGA
	// terminates TCP (1 = native kernel stack).
	AccelFactor float64
}

// DefaultNetwork is the native Linux TCP stack model.
var DefaultNetwork = Network{PerMsgCycles: 12e3, PerByteCycles: 2.5, AccelFactor: 1}

// ProcNs returns one side's processing time for a message of size bytes at
// the given frequency.
func (n Network) ProcNs(bytes int, freqGHz float64) float64 {
	cycles := (n.PerMsgCycles + n.PerByteCycles*float64(bytes)) / n.AccelFactor
	return cycles / freqGHz
}

// FPGAAccelFactor returns the network-processing speedup the FPGA offload
// achieves for an application, in the paper's 10–68x band: larger payloads
// amortize the PCIe/command overhead better and benefit more.
func FPGAAccelFactor(avgMsgBytes float64) float64 {
	kb := avgMsgBytes / 1024
	f := 10 + 58*(1-math.Exp(-kb/8))
	if f < 10 {
		f = 10
	}
	if f > 68 {
		f = 68
	}
	return f
}

// Accelerated returns the network model with the FPGA offload engaged.
func (n Network) Accelerated(factor float64) Network {
	out := n
	out.AccelFactor = factor
	return out
}

// OSBreakdown aggregates the Fig 14 kernel/user/library split for an app:
// application cycles split per profile, and every network message adds
// pure kernel cycles.
type OSBreakdown struct {
	KernelPct, UserPct, LibPct float64
}

// AppOSBreakdown walks the workflow, weighting each invoked service's
// split by the cycles it spends, plus kernel cycles for each message hop.
func AppOSBreakdown(app *graph.App, net Network) OSBreakdown {
	var kernel, user, lib float64
	var walk func(node *graph.Node, mult float64)
	walk = func(node *graph.Node, mult float64) {
		p := app.Profiles[node.Service]
		cycles := p.Cycles * node.Work * mult
		kernel += cycles * p.KernelFrac
		lib += cycles * p.LibFrac
		user += cycles * (1 - p.KernelFrac - p.LibFrac)
		for _, c := range node.Calls {
			// Four message-processing events per call (send/recv × req/resp),
			// all kernel cycles.
			msgCycles := 4 * (net.PerMsgCycles + net.PerByteCycles*float64(app.Profiles[c.Node.Service].MsgBytes)) / net.AccelFactor
			kernel += msgCycles * mult * float64(c.Count)
			walk(c.Node, mult*float64(c.Count))
		}
	}
	walk(app.Root, 1)
	total := kernel + user + lib
	if total == 0 {
		return OSBreakdown{}
	}
	return OSBreakdown{
		KernelPct: kernel / total * 100,
		UserPct:   user / total * 100,
		LibPct:    lib / total * 100,
	}
}
