package archsim

import (
	"testing"
	"testing/quick"

	"dsb/internal/graph"
)

func TestL1iMPKIShape(t *testing.T) {
	tiny := graph.Profile{CodeKB: 20}
	if got := L1iMPKI(tiny); got != 0 {
		t.Fatalf("tiny footprint MPKI = %f", got)
	}
	micro := graph.Profile{CodeKB: 120}
	mc := graph.Profile{CodeKB: 420}
	mono := graph.Profile{CodeKB: 2600}
	m1, m2, m3 := L1iMPKI(micro), L1iMPKI(mc), L1iMPKI(mono)
	if !(m1 < m2 && m2 < m3) {
		t.Fatalf("MPKI not monotone: %f %f %f", m1, m2, m3)
	}
	// Paper shapes: microservices low (<20), memcached/monolith high (>35).
	if m1 > 20 {
		t.Fatalf("microservice MPKI = %f, want < 20", m1)
	}
	if m2 < 30 || m3 < 60 {
		t.Fatalf("memcached/monolith MPKI = %f/%f", m2, m3)
	}
}

func TestCycleBreakdownSumsTo100(t *testing.T) {
	f := func(codeKB uint16, lang uint8) bool {
		langs := []string{"C", "C++", "Java", "Scala", "node.js", "PHP", "Go", "??"}
		p := graph.Profile{CodeKB: float64(codeKB%4000) + 1, Language: langs[int(lang)%len(langs)]}
		b := CycleBreakdown(p)
		sum := b.FrontendPct + b.BadSpecPct + b.BackendPct + b.RetiringPct
		return sum > 99.99 && sum < 100.01 &&
			b.FrontendPct > 0 && b.RetiringPct > 0 && b.IPC > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPaperShapeConstraints(t *testing.T) {
	social := graph.SocialNetwork()
	// Front-end stalls are the largest single component for typical tiers.
	b := CycleBreakdown(social.Profiles["memcached"])
	if b.FrontendPct < b.RetiringPct || b.FrontendPct < b.BadSpecPct {
		t.Fatalf("memcached breakdown not frontend-dominated: %+v", b)
	}
	// Search has high IPC; recommender (ML) the lowest.
	searchIPC := CycleBreakdown(social.Profiles["search"]).IPC
	recIPC := CycleBreakdown(social.Profiles["recommender"]).IPC
	nginxIPC := CycleBreakdown(social.Profiles["nginx"]).IPC
	if !(searchIPC > nginxIPC && nginxIPC > recIPC) {
		t.Fatalf("IPC ordering: search=%f nginx=%f recommender=%f", searchIPC, nginxIPC, recIPC)
	}
	// Monolith retires slightly more than the memcached-class services but
	// carries the most i-cache pressure.
	mono := graph.SocialNetworkMonolith().Profiles["monolith"]
	if L1iMPKI(mono) < L1iMPKI(social.Profiles["nginx"]) {
		t.Fatal("monolith MPKI below nginx")
	}
}

func TestThunderXSlower(t *testing.T) {
	p := graph.SocialNetwork().Profiles["composePost"]
	xeon := ServiceTimeNs(p, 1, XeonPlatform)
	lowfreq := ServiceTimeNs(p, 1, XeonLowFreq)
	tx := ServiceTimeNs(p, 1, ThunderXPlatform)
	if !(xeon < lowfreq && lowfreq < tx) {
		t.Fatalf("service times: xeon=%f xeon@1.8=%f thunderx=%f", xeon, lowfreq, tx)
	}
	// The in-order penalty exceeds the pure frequency effect.
	if tx/xeon < 2 {
		t.Fatalf("thunderx only %fx slower", tx/xeon)
	}
}

func TestFixedTimeInsensitiveToFrequency(t *testing.T) {
	// An I/O-bound profile (mongodb-like) barely changes with frequency.
	p := graph.MongoDB().Profiles["mongodb"]
	fast := ServiceTimeNs(p, 1, Platform{Core: Xeon, FreqGHz: 2.4})
	slow := ServiceTimeNs(p, 1, Platform{Core: Xeon, FreqGHz: 1.0})
	ratio := slow / fast
	// Compute-bound baseline for contrast.
	x := graph.Xapian().Profiles["xapian"]
	xfast := ServiceTimeNs(x, 1, Platform{Core: Xeon, FreqGHz: 2.4})
	xslow := ServiceTimeNs(x, 1, Platform{Core: Xeon, FreqGHz: 1.0})
	xratio := xslow / xfast
	if ratio >= xratio {
		t.Fatalf("mongodb freq sensitivity %f >= xapian %f", ratio, xratio)
	}
	if xratio < 2.0 {
		t.Fatalf("xapian should scale ~linearly with frequency: %f", xratio)
	}
}

func TestNetworkProcScaling(t *testing.T) {
	n := DefaultNetwork
	small := n.ProcNs(128, 2.4)
	big := n.ProcNs(65536, 2.4)
	if big <= small {
		t.Fatal("bigger messages must cost more")
	}
	slowFreq := n.ProcNs(128, 1.2)
	if slowFreq <= small {
		t.Fatal("lower frequency must cost more")
	}
	acc := n.Accelerated(40)
	if got := acc.ProcNs(128, 2.4); got >= small/30 {
		t.Fatalf("acceleration too weak: %f vs %f", got, small)
	}
}

func TestFPGAAccelBand(t *testing.T) {
	for _, bytes := range []float64{64, 1024, 32768, 1 << 20} {
		f := FPGAAccelFactor(bytes)
		if f < 10 || f > 68 {
			t.Fatalf("accel factor for %f bytes = %f", bytes, f)
		}
	}
	if FPGAAccelFactor(1<<20) <= FPGAAccelFactor(256) {
		t.Fatal("large payloads should accelerate more")
	}
}

func TestAppOSBreakdown(t *testing.T) {
	for _, app := range graph.EndToEndApps() {
		b := AppOSBreakdown(app, DefaultNetwork)
		sum := b.KernelPct + b.UserPct + b.LibPct
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("%s: OS breakdown sums to %f", app.Name, sum)
		}
		if b.KernelPct < 15 {
			t.Fatalf("%s: kernel share %f implausibly low", app.Name, b.KernelPct)
		}
	}
	// Social Network is more kernel-heavy than Banking (Fig 14).
	social := AppOSBreakdown(graph.SocialNetwork(), DefaultNetwork)
	banking := AppOSBreakdown(graph.Banking(), DefaultNetwork)
	if social.KernelPct <= banking.KernelPct {
		t.Fatalf("kernel: social=%f banking=%f", social.KernelPct, banking.KernelPct)
	}
	// The FPGA strips kernel cycles.
	accel := AppOSBreakdown(graph.SocialNetwork(), DefaultNetwork.Accelerated(40))
	if accel.KernelPct >= social.KernelPct {
		t.Fatal("acceleration did not reduce kernel share")
	}
}
