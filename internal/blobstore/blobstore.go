// Package blobstore implements the suite's bulk file storage — the role
// NFS plays for movie files in the Media service. Blobs are stored as
// fixed-size chunks so readers can stream ranges without loading whole
// files, which is how the nginx-hls streaming tier serves HTTP live
// streaming segments. The store keeps chunks in memory by default and can
// spill to a directory for the cmd/ tools.
package blobstore

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dsb/internal/rpc"
)

// DefaultChunkSize matches common HLS segment sizing at our synthetic
// bitrates; tests override it to exercise chunk boundaries.
const DefaultChunkSize = 256 << 10

// Meta describes a stored blob.
type Meta struct {
	Name     string
	Size     int64
	Chunks   int
	Checksum uint32 // CRC-32 (IEEE) of the full content
}

// Store is a chunked blob store.
type Store struct {
	chunkSize int64
	dir       string // "" = memory only

	mu    sync.RWMutex
	metas map[string]Meta
	data  map[string][][]byte // name -> chunks (memory mode)
}

// Option configures a Store.
type Option func(*Store)

// WithChunkSize overrides the chunk size.
func WithChunkSize(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.chunkSize = n
		}
	}
}

// WithDir spills chunks to files under dir instead of memory.
func WithDir(dir string) Option {
	return func(s *Store) { s.dir = dir }
}

// New creates a blob store.
func New(opts ...Option) *Store {
	s := &Store{
		chunkSize: DefaultChunkSize,
		metas:     make(map[string]Meta),
		data:      make(map[string][][]byte),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Put stores content under name, replacing any existing blob.
func (s *Store) Put(name string, content []byte) (Meta, error) {
	if name == "" {
		return Meta{}, rpc.Errorf(rpc.CodeBadRequest, "blobstore: empty name")
	}
	nChunks := int((int64(len(content)) + s.chunkSize - 1) / s.chunkSize)
	meta := Meta{
		Name:     name,
		Size:     int64(len(content)),
		Chunks:   nChunks,
		Checksum: crc32.ChecksumIEEE(content),
	}
	chunks := make([][]byte, 0, nChunks)
	for off := int64(0); off < int64(len(content)); off += s.chunkSize {
		end := off + s.chunkSize
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		chunk := make([]byte, end-off)
		copy(chunk, content[off:end])
		chunks = append(chunks, chunk)
	}
	if s.dir != "" {
		for i, chunk := range chunks {
			if err := os.WriteFile(s.chunkPath(name, i), chunk, 0o644); err != nil {
				return Meta{}, err
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metas[name] = meta
	if s.dir == "" {
		s.data[name] = chunks
	}
	return meta, nil
}

func (s *Store) chunkPath(name string, i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08x-%d.chunk", crc32.ChecksumIEEE([]byte(name)), i))
}

// Stat returns a blob's metadata.
func (s *Store) Stat(name string) (Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.metas[name]
	if !ok {
		return Meta{}, rpc.NotFoundf("blobstore: no blob %q", name)
	}
	return m, nil
}

// Chunk returns the i-th chunk of a blob — one "HLS segment".
func (s *Store) Chunk(name string, i int) ([]byte, error) {
	m, err := s.Stat(name)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= m.Chunks {
		return nil, rpc.Errorf(rpc.CodeBadRequest, "blobstore: %s: chunk %d out of %d", name, i, m.Chunks)
	}
	if s.dir != "" {
		return os.ReadFile(s.chunkPath(name, i))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	chunk := s.data[name][i]
	out := make([]byte, len(chunk))
	copy(out, chunk)
	return out, nil
}

// ReadAt fills p from the blob at offset off, with io.ReaderAt semantics.
func (s *Store) ReadAt(name string, p []byte, off int64) (int, error) {
	m, err := s.Stat(name)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, rpc.Errorf(rpc.CodeBadRequest, "blobstore: negative offset")
	}
	n := 0
	for n < len(p) && off < m.Size {
		ci := int(off / s.chunkSize)
		chunk, err := s.Chunk(name, ci)
		if err != nil {
			return n, err
		}
		inner := off % s.chunkSize
		c := copy(p[n:], chunk[inner:])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Open returns a streaming reader over the blob.
func (s *Store) Open(name string) (io.Reader, error) {
	if _, err := s.Stat(name); err != nil {
		return nil, err
	}
	return &reader{store: s, name: name}, nil
}

type reader struct {
	store *Store
	name  string
	off   int64
}

func (r *reader) Read(p []byte) (int, error) {
	m, err := r.store.Stat(r.name)
	if err != nil {
		return 0, err
	}
	if r.off >= m.Size {
		return 0, io.EOF
	}
	n, err := r.store.ReadAt(r.name, p, r.off)
	r.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Delete removes a blob, reporting whether it existed.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	m, ok := s.metas[name]
	delete(s.metas, name)
	delete(s.data, name)
	s.mu.Unlock()
	if ok && s.dir != "" {
		for i := 0; i < m.Chunks; i++ {
			os.Remove(s.chunkPath(name, i)) //nolint:errcheck // best-effort cleanup
		}
	}
	return ok
}

// List returns blob names, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.metas))
	for n := range s.metas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
