package blobstore

import (
	"bytes"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dsb/internal/rpc"
)

func randomBytes(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 99))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestPutStatChunk(t *testing.T) {
	s := New(WithChunkSize(100))
	content := randomBytes(250, 1)
	m, err := s.Put("movie.mp4", content)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 250 || m.Chunks != 3 || m.Checksum != crc32.ChecksumIEEE(content) {
		t.Fatalf("meta = %+v", m)
	}
	got, err := s.Stat("movie.mp4")
	if err != nil || got != m {
		t.Fatalf("Stat = %+v, %v", got, err)
	}
	c2, err := s.Chunk("movie.mp4", 2)
	if err != nil || len(c2) != 50 {
		t.Fatalf("Chunk(2) len = %d, %v", len(c2), err)
	}
	if !bytes.Equal(c2, content[200:]) {
		t.Fatal("chunk content mismatch")
	}
	if _, err := s.Chunk("movie.mp4", 3); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("out-of-range chunk: %v", err)
	}
	if _, err := s.Stat("ghost"); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("missing blob: %v", err)
	}
	if _, err := s.Put("", nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("empty name: %v", err)
	}
}

func TestChunkReturnsCopy(t *testing.T) {
	s := New(WithChunkSize(10))
	s.Put("b", []byte("0123456789")) //nolint:errcheck
	c, _ := s.Chunk("b", 0)
	c[0] = 'X'
	again, _ := s.Chunk("b", 0)
	if again[0] != '0' {
		t.Fatal("Chunk leaked internal buffer")
	}
}

func TestStreamingReaderIntegrity(t *testing.T) {
	s := New(WithChunkSize(64))
	content := randomBytes(1000, 2)
	s.Put("stream", content) //nolint:errcheck
	r, err := s.Open("stream")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("streamed bytes differ from stored content")
	}
	if _, err := s.Open("ghost"); err == nil {
		t.Fatal("Open missing blob succeeded")
	}
}

func TestReadAtSemantics(t *testing.T) {
	s := New(WithChunkSize(16))
	content := []byte("abcdefghijklmnopqrstuvwxyz")
	s.Put("b", content) //nolint:errcheck
	p := make([]byte, 10)
	n, err := s.ReadAt("b", p, 5)
	if err != nil || n != 10 || string(p) != "fghijklmno" {
		t.Fatalf("ReadAt = %q, %d, %v", p, n, err)
	}
	// Read past the end returns io.EOF with partial data.
	n, err = s.ReadAt("b", p, 20)
	if err != io.EOF || n != 6 || string(p[:n]) != "uvwxyz" {
		t.Fatalf("ReadAt tail = %q, %d, %v", p[:n], n, err)
	}
	if _, err := s.ReadAt("b", p, -1); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestDeleteAndList(t *testing.T) {
	s := New()
	s.Put("b", []byte("x")) //nolint:errcheck
	s.Put("a", []byte("y")) //nolint:errcheck
	if got := s.List(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("List = %v", got)
	}
	if !s.Delete("a") {
		t.Fatal("Delete existing = false")
	}
	if s.Delete("a") {
		t.Fatal("Delete missing = true")
	}
	if got := s.List(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("List after delete = %v", got)
	}
}

func TestDirBackedStore(t *testing.T) {
	dir := t.TempDir()
	s := New(WithDir(dir), WithChunkSize(32))
	content := randomBytes(100, 3)
	if _, err := s.Put("file", content); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open("file")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, content) {
		t.Fatal("dir-backed content mismatch")
	}
	s.Delete("file")
	if _, err := s.Chunk("file", 0); err == nil {
		t.Fatal("deleted chunk readable")
	}
}

// Property: any content round-trips through Put + sequential chunk reads,
// for any chunk size.
func TestChunkingRoundTripProperty(t *testing.T) {
	f := func(content []byte, chunkSize uint8) bool {
		cs := int64(chunkSize%63) + 1
		s := New(WithChunkSize(cs))
		m, err := s.Put("blob", content)
		if err != nil {
			return false
		}
		var got []byte
		for i := 0; i < m.Chunks; i++ {
			c, err := s.Chunk("blob", i)
			if err != nil {
				return false
			}
			got = append(got, c...)
		}
		return bytes.Equal(got, content) && m.Checksum == crc32.ChecksumIEEE(content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyBlob(t *testing.T) {
	s := New()
	m, err := s.Put("empty", nil)
	if err != nil || m.Size != 0 || m.Chunks != 0 {
		t.Fatalf("empty put: %+v, %v", m, err)
	}
	r, err := s.Open("empty")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(r); len(got) != 0 {
		t.Fatal("empty blob read returned data")
	}
}

func BenchmarkStreamRead(b *testing.B) {
	s := New()
	content := randomBytes(4<<20, 7)
	s.Put("movie", content) //nolint:errcheck
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.Open("movie")
		for {
			_, err := r.Read(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
