// Package cluster implements cluster management over the simulator: a
// timeline monitor that samples per-service tail latency and utilization
// (the data behind Figs 17, 19, 20, 22a), a utilization-threshold
// autoscaler with instance start-up delay (the mechanism the paper shows
// falling short under backpressure), and QoS violation/recovery detection.
package cluster

import (
	"sort"
	"time"

	"dsb/internal/metrics"
	"dsb/internal/sim"
)

// Monitor samples a deployment on a fixed interval of virtual time,
// accumulating per-service and end-to-end timelines.
type Monitor struct {
	d        *sim.Deployment
	interval time.Duration

	// E2EP99 is the end-to-end p99 per window, in milliseconds.
	E2EP99 *metrics.Series
	// Lat and Util are per-service: windowed p99 (ms) and worker
	// utilization (0..1).
	Lat  map[string]*metrics.Series
	Util map[string]*metrics.Series
}

// NewMonitor attaches a monitor; sampling begins when Start is called.
func NewMonitor(d *sim.Deployment, interval time.Duration) *Monitor {
	m := &Monitor{
		d:        d,
		interval: interval,
		E2EP99:   metrics.NewSeries("e2e-p99-ms"),
		Lat:      make(map[string]*metrics.Series),
		Util:     make(map[string]*metrics.Series),
	}
	for _, svc := range d.Services() {
		m.Lat[svc] = metrics.NewSeries(svc + "-p99-ms")
		m.Util[svc] = metrics.NewSeries(svc + "-util")
	}
	return m
}

// Start begins periodic sampling until the stop time.
func (m *Monitor) Start(until time.Duration) {
	m.d.SampleReset()
	var tick func()
	tick = func() {
		now := m.d.Sim.Now()
		m.E2EP99.Add(now, float64(m.d.WindowE2E.Percentile(99))/1e6)
		for _, svc := range m.d.Services() {
			s := m.d.Service(svc)
			m.Lat[svc].Add(now, float64(s.Window.Percentile(99))/1e6)
			m.Util[svc].Add(now, s.Utilization())
		}
		m.d.SampleReset()
		if now+m.interval <= until {
			m.d.Sim.After(m.interval, tick)
		}
	}
	m.d.Sim.After(m.interval, tick)
}

// ScaleEvent records one autoscaling action.
type ScaleEvent struct {
	At      time.Duration
	Service string
	// Instances is the count after the action completes.
	Instances int
}

// Autoscaler scales a service out when its windowed utilization exceeds
// the threshold, after a start-up delay — the reactive, utilization-driven
// policy cloud providers ship (the paper uses 70%).
type Autoscaler struct {
	d             *sim.Deployment
	Threshold     float64
	Interval      time.Duration
	StartupDelay  time.Duration
	MaxPerService int
	// TopK, when positive, limits each round to the K most-utilized
	// services over threshold — the constrained, utilization-greedy policy
	// that makes the autoscaler upsize busy-looking victims before finding
	// the culprit (Fig 20b). 0 scales every service over threshold.
	TopK int

	Events  []ScaleEvent
	pending map[string]int
}

// NewAutoscaler builds an autoscaler with the paper's defaults: 70%
// threshold, instance start-up measured in tens of seconds.
func NewAutoscaler(d *sim.Deployment) *Autoscaler {
	return &Autoscaler{
		d:             d,
		Threshold:     0.70,
		Interval:      5 * time.Second,
		StartupDelay:  20 * time.Second,
		MaxPerService: 16,
		pending:       make(map[string]int),
	}
}

// Start begins periodic evaluation until the stop time. It must be started
// after the Monitor (which resets sampling windows) or given its own
// utilization source; here it reads the same windows the Monitor samples,
// so co-scheduling on the same interval keeps readings consistent.
func (a *Autoscaler) Start(until time.Duration) {
	var tick func()
	tick = func() {
		type cand struct {
			svc  string
			util float64
		}
		var cands []cand
		for _, svc := range a.d.Services() {
			s := a.d.Service(svc)
			util := s.Utilization()
			if util < a.Threshold {
				continue
			}
			if len(s.Instances)+a.pending[svc] >= a.MaxPerService {
				continue
			}
			cands = append(cands, cand{svc, util})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].util > cands[j].util })
		if a.TopK > 0 && len(cands) > a.TopK {
			cands = cands[:a.TopK]
		}
		for _, c := range cands {
			svc := c.svc
			a.pending[svc]++
			a.d.Sim.After(a.StartupDelay, func() {
				a.pending[svc]--
				a.d.AddInstance(svc)
				a.Events = append(a.Events, ScaleEvent{
					At:        a.d.Sim.Now(),
					Service:   svc,
					Instances: len(a.d.Service(svc).Instances),
				})
			})
		}
		if a.d.Sim.Now()+a.Interval <= until {
			a.d.Sim.After(a.Interval, tick)
		}
	}
	a.d.Sim.After(a.Interval, tick)
}

// QoS analyzes an end-to-end p99 timeline against a target.
type QoS struct {
	TargetMs float64
}

// ViolationAt returns the first time the series exceeds the target, and
// whether it ever did.
func (q QoS) ViolationAt(s *metrics.Series) (time.Duration, bool) {
	for _, p := range s.Points {
		if p.V > q.TargetMs {
			return p.T, true
		}
	}
	return 0, false
}

// RecoveryAfter returns the first time at or after from where the series
// returns below the target and stays there for at least hold samples.
func (q QoS) RecoveryAfter(s *metrics.Series, from time.Duration, hold int) (time.Duration, bool) {
	if hold < 1 {
		hold = 1
	}
	run := 0
	for _, p := range s.Points {
		if p.T < from {
			continue
		}
		if p.V <= q.TargetMs {
			run++
			if run >= hold {
				return p.T, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// MaxGoodput sweeps offered load and returns the highest QPS whose p99
// stays within the QoS target — "max QPS under QoS", the y-axis of
// Fig 22b/c. The probe runs each level on a fresh deployment produced by
// build, for dur of virtual time.
func MaxGoodput(build func() *sim.Deployment, levels []float64, dur time.Duration, target time.Duration) float64 {
	return MaxGoodputP(build, levels, dur, target, 99)
}

// PerRequestGoodput sweeps offered load and returns the highest rate of
// individually-QoS-meeting requests per second — Fig 22c's goodput, which
// degrades gracefully when only a fixed fraction of requests are slow and
// collapses when a slow instance backpressures the whole graph.
func PerRequestGoodput(build func() *sim.Deployment, levels []float64, dur time.Duration, target time.Duration) float64 {
	best := 0.0
	for _, qps := range levels {
		d := build()
		d.GoodTarget = target
		d.RunOpenLoop(qps, dur)
		if g := float64(d.GoodCount) / dur.Seconds(); g > best {
			best = g
		}
	}
	return best
}

// MaxGoodputP is MaxGoodput with a configurable tail percentile.
func MaxGoodputP(build func() *sim.Deployment, levels []float64, dur time.Duration, target time.Duration, pctile float64) float64 {
	best := 0.0
	for _, qps := range levels {
		d := build()
		res := d.RunOpenLoop(qps, dur)
		if res.Completed == 0 {
			break
		}
		if d.E2E.PercentileDuration(pctile) <= target {
			if thr := res.Goodput(dur); thr > best {
				best = thr
			}
		} else {
			break
		}
	}
	return best
}
