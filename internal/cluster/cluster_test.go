package cluster

import (
	"testing"
	"time"

	"dsb/internal/graph"
	"dsb/internal/metrics"
	"dsb/internal/sim"
)

func newDeployment(t *testing.T, cfg sim.Config) *sim.Deployment {
	t.Helper()
	s := sim.New()
	if cfg.App == nil {
		cfg.App = graph.SocialNetwork()
	}
	d, err := sim.NewDeployment(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMonitorTimelines(t *testing.T) {
	d := newDeployment(t, sim.Config{Seed: 1, WorkerScale: 0.25})
	m := NewMonitor(d, time.Second)
	m.Start(10 * time.Second)
	d.RunOpenLoop(100, 10*time.Second)
	if len(m.E2EP99.Points) < 9 {
		t.Fatalf("samples = %d", len(m.E2EP99.Points))
	}
	if m.E2EP99.Max() <= 0 {
		t.Fatal("no latency recorded")
	}
	nginx := m.Util["nginx"]
	if nginx == nil || nginx.Max() <= 0 || nginx.Max() > 1 {
		t.Fatalf("nginx util series = %+v", nginx)
	}
}

func TestAutoscalerScalesSaturatedService(t *testing.T) {
	d := newDeployment(t, sim.Config{Seed: 2, WorkerScale: 0.125})
	a := NewAutoscaler(d)
	a.Interval = 2 * time.Second
	a.StartupDelay = 4 * time.Second
	d.SampleReset()
	a.Start(40 * time.Second)
	d.RunOpenLoop(700, 40*time.Second) // well into saturation
	if len(a.Events) == 0 {
		t.Fatal("autoscaler never scaled")
	}
	// The saturated front tier must have grown.
	grew := false
	for _, e := range a.Events {
		if e.Service == "nginx" || e.Service == "composePost" {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("front tiers never scaled: %+v", a.Events)
	}
	// Cap respected.
	counts := map[string]int{}
	for _, e := range a.Events {
		if e.Instances > counts[e.Service] {
			counts[e.Service] = e.Instances
		}
	}
	for svc, n := range counts {
		if n > a.MaxPerService {
			t.Fatalf("%s scaled to %d > cap", svc, n)
		}
	}
}

func TestAutoscalerIdleNoScale(t *testing.T) {
	d := newDeployment(t, sim.Config{Seed: 3})
	a := NewAutoscaler(d)
	a.Interval = 2 * time.Second
	d.SampleReset()
	a.Start(20 * time.Second)
	d.RunOpenLoop(5, 20*time.Second)
	if len(a.Events) != 0 {
		t.Fatalf("idle cluster scaled: %+v", a.Events)
	}
}

func TestQoSDetection(t *testing.T) {
	q := QoS{TargetMs: 10}
	s := newSeries([]float64{1, 2, 15, 20, 8, 5, 4, 3})
	at, ok := q.ViolationAt(s)
	if !ok || at != 2*time.Second {
		t.Fatalf("violation = %v, %v", at, ok)
	}
	rec, ok := q.RecoveryAfter(s, at, 2)
	if !ok || rec != 5*time.Second {
		t.Fatalf("recovery = %v, %v", rec, ok)
	}
	if _, ok := q.RecoveryAfter(s, at, 10); ok {
		t.Fatal("impossible hold satisfied")
	}
	if _, ok := (QoS{TargetMs: 100}).ViolationAt(s); ok {
		t.Fatal("phantom violation")
	}
}

func newSeries(vals []float64) *seriesT {
	s := &seriesT{}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

// seriesT aliases metrics.Series through the package import in cluster.go.
type seriesT = seriesAlias

func TestMaxGoodputFindsKnee(t *testing.T) {
	build := func() *sim.Deployment {
		return newDeployment(t, sim.Config{Seed: 4, WorkerScale: 0.125})
	}
	levels := []float64{50, 100, 200, 400, 800, 1600}
	got := MaxGoodput(build, levels, 2*time.Second, 20*time.Millisecond)
	if got < 50 {
		t.Fatalf("goodput = %f", got)
	}
	// An impossible target yields zero.
	if MaxGoodput(build, levels, 2*time.Second, time.Microsecond) != 0 {
		t.Fatal("impossible QoS target produced goodput")
	}
}

func TestSlowBackendPropagatesUpstream(t *testing.T) {
	// Fig 19's mechanism: degrade the back-end and watch the front-end's
	// windowed p99 blow up, while mid-tier utilization stays misleading.
	d := newDeployment(t, sim.Config{Seed: 5, WorkerScale: 0.25})
	m := NewMonitor(d, time.Second)
	m.Start(30 * time.Second)
	d.Sim.After(10*time.Second, func() {
		d.SetSlow("mongodb", 0, 20) //nolint:errcheck
	})
	d.RunOpenLoop(250, 30*time.Second)

	front := m.Lat["nginx"]
	before := front.At(9 * time.Second)
	after := front.Max()
	if after < before*2 {
		t.Fatalf("front-end tail did not degrade: before=%f after-max=%f", before, after)
	}
}

// seriesAlias keeps the test file self-contained.
type seriesAlias = metrics.Series
