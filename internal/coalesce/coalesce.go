// Package coalesce implements singleflight-style miss coalescing for the
// hot read paths: when N callers concurrently need the same key and none of
// them can be served from cache, one of them performs the backing-store
// fetch and the other N-1 wait for that result instead of issuing N-1
// duplicate fetches. This is the standard production defense against hot-key
// stampedes — the paper's tail-at-scale chapter shows Zipf-skewed traffic
// concentrating on a handful of keys, and without coalescing every cache
// expiry or invalidation of such a key turns into a thundering herd against
// the backing store.
//
// Unlike golang.org/x/sync/singleflight, results are typed, waiters can
// abandon a flight when their own context dies (without canceling the
// shared fetch), and errors are never cached: a failed flight is forgotten
// the moment it completes, so the next caller retries the fetch.
package coalesce

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// call is one in-flight fetch; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group coalesces concurrent fetches per key. The zero value is ready to
// use. A Group is typically owned by one read path (one key namespace).
type Group[V any] struct {
	mu       sync.Mutex
	inflight map[string]*call[V]

	fetches atomic.Int64
	shared  atomic.Int64
}

// Stats counts flight outcomes since the group was created.
type Stats struct {
	// Fetches is the number of times a caller actually ran the fetch
	// function (one per flight).
	Fetches int64
	// Shared is the number of callers that piggybacked on another caller's
	// flight instead of fetching themselves.
	Shared int64
}

// Stats returns a snapshot of the group's counters.
func (g *Group[V]) Stats() Stats {
	return Stats{Fetches: g.fetches.Load(), Shared: g.shared.Load()}
}

// Inflight returns the number of keys with a fetch currently in flight.
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.inflight)
}

// Do returns the result of running fn for key, coalescing concurrent calls:
// while a flight for key is in progress, additional callers wait for its
// result instead of invoking fn. The winner runs fn with its own context;
// a waiter whose context dies stops waiting and returns its context error,
// but the flight itself continues for the remaining waiters. Errors (and
// panics, which are rethrown in the winner and surfaced as errors to the
// waiters) propagate to every caller of the flight and are never cached —
// the next Do after a failed flight runs fn again.
//
// The result value is shared across all callers of one flight; callers must
// treat reference types (slices, maps) as read-only.
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*call[V])
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		g.shared.Add(1)
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	g.fetches.Add(1)
	normal := false
	defer func() {
		if !normal {
			// fn panicked: fail the flight so waiters are not stranded,
			// then let the panic continue unwinding the winner.
			c.err = fmt.Errorf("coalesce: fetch for %q panicked", key)
		}
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn(ctx)
	normal = true
	return c.val, c.err
}

// Forget drops any in-flight record for key so the next Do starts a fresh
// flight instead of joining the current one. The current flight still
// completes and delivers to its existing waiters.
func (g *Group[V]) Forget(key string) {
	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
}
