package coalesce

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentMissCollapse is the package's reason to exist: N goroutines
// missing on one key perform exactly one backend fetch.
func TestConcurrentMissCollapse(t *testing.T) {
	var g Group[string]
	var fetches atomic.Int64
	const n = 32

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var wg sync.WaitGroup
	results := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Do(context.Background(), "hot", func(context.Context) (string, error) {
				fetches.Add(1)
				select {
				case entered <- struct{}{}:
				default:
				}
				<-gate // hold the flight open until every caller has joined
				return "value", nil
			})
		}(i)
	}
	<-entered
	// Wait until all other callers are registered as waiters on the flight.
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Shared < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers joined the flight", g.Stats().Shared, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "value" {
			t.Fatalf("caller %d = %q, %v", i, results[i], errs[i])
		}
	}
	st := g.Stats()
	if st.Fetches != 1 || st.Shared != n-1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d after completion", g.Inflight())
	}
}

// TestErrorPropagatesAndIsNotCached: every waiter of a failed flight sees
// the error, and the next call retries the fetch instead of replaying it.
func TestErrorPropagatesAndIsNotCached(t *testing.T) {
	var g Group[int]
	boom := errors.New("backend down")
	var fetches atomic.Int64

	gate := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				fetches.Add(1)
				<-gate
				return 0, boom
			})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Shared+g.Stats().Fetches < n {
		if time.Now().After(deadline) {
			t.Fatal("callers never converged on one flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if fetches.Load() != 1 {
		t.Fatalf("fetches = %d, want 1", fetches.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d err = %v, want %v", i, err, boom)
		}
	}

	// The failure is not cached: a later call fetches again and can succeed.
	v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		fetches.Add(1)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if fetches.Load() != 2 {
		t.Fatalf("fetches = %d, want 2 (error must not be cached)", fetches.Load())
	}
}

// TestWaiterContextCancel: a waiter whose context dies leaves the flight
// without killing it; the remaining waiters still get the result.
func TestWaiterContextCancel(t *testing.T) {
	var g Group[string]
	gate := make(chan struct{})
	started := make(chan struct{})

	go g.Do(context.Background(), "k", func(context.Context) (string, error) { //nolint:errcheck
		close(started)
		<-gate
		return "late", nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() {
		_, err := g.Do(ctx, "k", func(context.Context) (string, error) {
			t.Error("waiter must not fetch")
			return "", nil
		})
		canceled <- err
	}()
	for g.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-canceled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}

	// A patient waiter still gets the flight's result.
	patient := make(chan string, 1)
	go func() {
		v, _ := g.Do(context.Background(), "k", func(context.Context) (string, error) {
			return "fresh", nil
		})
		patient <- v
	}()
	for g.Stats().Shared < 2 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if v := <-patient; v != "late" {
		t.Fatalf("patient waiter got %q, want the flight result", v)
	}
}

// TestDistinctKeysDoNotCoalesce: flights are per key.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[int]
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), string(rune('a'+i)), func(context.Context) (int, error) { //nolint:errcheck
				fetches.Add(1)
				return i, nil
			})
		}(i)
	}
	wg.Wait()
	if fetches.Load() != 4 {
		t.Fatalf("fetches = %d, want 4", fetches.Load())
	}
}

// TestPanicFailsWaitersAndRethrows: a panicking fetch must not strand
// waiters, and the panic still unwinds the winner.
func TestPanicFailsWaitersAndRethrows(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	started := make(chan struct{})
	winnerPanicked := make(chan any, 1)
	go func() {
		defer func() { winnerPanicked <- recover() }()
		g.Do(context.Background(), "k", func(context.Context) (int, error) { //nolint:errcheck
			close(started)
			<-gate
			panic("fetch exploded")
		})
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, err := g.Do(context.Background(), "k", func(context.Context) (int, error) { return 0, nil })
		waiterErr <- err
	}()
	for g.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if r := <-winnerPanicked; r == nil {
		t.Fatal("panic swallowed in winner")
	}
	select {
	case err := <-waiterErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after fetch panic")
	}
	// The group remains usable.
	if v, err := g.Do(context.Background(), "k", func(context.Context) (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("post-panic Do = %d, %v", v, err)
	}
}
