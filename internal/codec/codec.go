// Package codec implements the suite's compact binary wire format, playing
// the role of the code Thrift would generate for every RPC message type.
// Encoding is positional: both sides must agree on the Go struct definition,
// exactly as both sides of a Thrift RPC share the IDL. Integers use
// zigzag/varint encoding, strings and slices are length-prefixed, pointers
// carry a nil flag.
//
// Marshal compiles a per-type plan of field encoders on first use and caches
// it, so steady-state encoding does no reflection-based type dispatch.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// ErrShortBuffer is returned when decoding runs out of input bytes.
var ErrShortBuffer = errors.New("codec: short buffer")

// ErrTrailingBytes is returned by Unmarshal when input remains after the
// value is fully decoded, which indicates a sender/receiver type mismatch.
var ErrTrailingBytes = errors.New("codec: trailing bytes after value")

// maxLen bounds decoded string/slice/map lengths to guard against corrupt
// or hostile input blowing up allocation.
const maxLen = 1 << 26 // 64M elements

// maxEagerLen bounds how many slice elements / map buckets a decoder will
// allocate up front on the strength of a length header alone; anything
// larger must earn its allocation element by element. Honest RPC payloads
// sit far below this, so the fast path is unchanged.
const maxEagerLen = 1 << 10

// Marshal encodes v into a new byte slice.
func Marshal(v any) ([]byte, error) {
	return AppendMarshal(nil, v)
}

// AppendMarshal encodes v, appending to buf, and returns the extended
// slice. Registered fast-path types (see Message and Register) dispatch to
// their generated marshaler; a pointer implementing Message encodes its
// pointee with no reflection at all. Everything else goes through the
// reflect plans.
func AppendMarshal(buf []byte, v any) ([]byte, error) {
	if out, done, err := fastAppend(buf, v); done {
		return out, err
	}
	return appendMarshalReflect(buf, v)
}

// MarshalReflect encodes v through the reflect plans unconditionally,
// bypassing any registered fast path. The wire bytes are identical for a
// correct registration — the differential fuzz harness pins that — so this
// exists for that harness and for experiments that want the reflect
// baseline as a control arm.
func MarshalReflect(v any) ([]byte, error) {
	return appendMarshalReflect(nil, v)
}

func appendMarshalReflect(buf []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return nil, errors.New("codec: cannot marshal nil interface")
	}
	p, err := planFor(rv.Type())
	if err != nil {
		return nil, err
	}
	return p.enc(buf, rv)
}

// Unmarshal decodes data into v, which must be a non-nil pointer. The whole
// input must be consumed. A target implementing Message decodes through its
// generated unmarshaler instead of the reflect plans.
func Unmarshal(data []byte, v any) error {
	if m, ok := v.(Message); ok {
		rest, err := m.DecodeFrom(data)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return ErrTrailingBytes
		}
		return nil
	}
	return UnmarshalReflect(data, v)
}

// UnmarshalReflect decodes through the reflect plans unconditionally,
// bypassing any registered fast path — the decode-side twin of
// MarshalReflect.
func UnmarshalReflect(data []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errors.New("codec: Unmarshal target must be a non-nil pointer")
	}
	elem := rv.Elem()
	p, err := planFor(elem.Type())
	if err != nil {
		return err
	}
	rest, err := p.dec(data, elem)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrTrailingBytes
	}
	return nil
}

type encFunc func(buf []byte, v reflect.Value) ([]byte, error)
type decFunc func(data []byte, v reflect.Value) (rest []byte, err error)

type plan struct {
	enc encFunc
	dec decFunc
}

// Plan caching: completed plans live in a lock-free read-mostly map; builds
// run under a mutex with a per-build session map that resolves recursive
// types to an in-progress placeholder. Placeholders are filled in before
// the build publishes anything, so readers never observe a partial plan.
var (
	planCache sync.Map // reflect.Type -> *plan (fully built only)
	buildMu   sync.Mutex
)

func planFor(t reflect.Type) (*plan, error) {
	if p, ok := planCache.Load(t); ok {
		return p.(*plan), nil
	}
	buildMu.Lock()
	defer buildMu.Unlock()
	if p, ok := planCache.Load(t); ok {
		return p.(*plan), nil
	}
	session := make(map[reflect.Type]*plan)
	p, err := buildLocked(t, session)
	if err != nil {
		return nil, err
	}
	for ty, pl := range session {
		planCache.Store(ty, pl)
	}
	return p, nil
}

func buildLocked(t reflect.Type, session map[reflect.Type]*plan) (*plan, error) {
	if p, ok := planCache.Load(t); ok {
		return p.(*plan), nil
	}
	if p, ok := session[t]; ok {
		return p, nil // recursive reference to an in-progress plan
	}
	placeholder := &plan{}
	session[t] = placeholder
	built, err := buildPlan(t, session)
	if err != nil {
		delete(session, t)
		return nil, err
	}
	*placeholder = built
	return placeholder, nil
}

func buildPlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	switch t.Kind() {
	case reflect.Bool:
		return plan{encBool, decBool}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return plan{encInt, decInt}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return plan{encUint, decUint}, nil
	case reflect.Float32, reflect.Float64:
		return plan{encFloat, decFloat}, nil
	case reflect.String:
		return plan{encString, decString}, nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return plan{encBytes, decBytes}, nil
		}
		return buildSlicePlan(t, session)
	case reflect.Array:
		return buildArrayPlan(t, session)
	case reflect.Map:
		return buildMapPlan(t, session)
	case reflect.Struct:
		return buildStructPlan(t, session)
	case reflect.Pointer:
		return buildPtrPlan(t, session)
	default:
		return plan{}, fmt.Errorf("codec: unsupported type %s", t)
	}
}

func encBool(buf []byte, v reflect.Value) ([]byte, error) {
	if v.Bool() {
		return append(buf, 1), nil
	}
	return append(buf, 0), nil
}

func decBool(data []byte, v reflect.Value) ([]byte, error) {
	if len(data) < 1 {
		return nil, ErrShortBuffer
	}
	v.SetBool(data[0] != 0)
	return data[1:], nil
}

func encInt(buf []byte, v reflect.Value) ([]byte, error) {
	return binary.AppendVarint(buf, v.Int()), nil
}

func decInt(data []byte, v reflect.Value) ([]byte, error) {
	x, n := binary.Varint(data)
	if n <= 0 {
		return nil, ErrShortBuffer
	}
	if v.OverflowInt(x) {
		return nil, fmt.Errorf("codec: value %d overflows %s", x, v.Type())
	}
	v.SetInt(x)
	return data[n:], nil
}

func encUint(buf []byte, v reflect.Value) ([]byte, error) {
	return binary.AppendUvarint(buf, v.Uint()), nil
}

func decUint(data []byte, v reflect.Value) ([]byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, ErrShortBuffer
	}
	if v.OverflowUint(x) {
		return nil, fmt.Errorf("codec: value %d overflows %s", x, v.Type())
	}
	v.SetUint(x)
	return data[n:], nil
}

func encFloat(buf []byte, v reflect.Value) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
}

func decFloat(data []byte, v reflect.Value) ([]byte, error) {
	if len(data) < 8 {
		return nil, ErrShortBuffer
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(data))
	if v.OverflowFloat(f) {
		return nil, fmt.Errorf("codec: value %g overflows %s", f, v.Type())
	}
	v.SetFloat(f)
	return data[8:], nil
}

func encString(buf []byte, v reflect.Value) ([]byte, error) {
	s := v.String()
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...), nil
}

func decLen(data []byte) (int, []byte, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, ErrShortBuffer
	}
	if n > maxLen {
		return 0, nil, fmt.Errorf("codec: length %d exceeds limit", n)
	}
	return int(n), data[w:], nil
}

func decString(data []byte, v reflect.Value) ([]byte, error) {
	n, rest, err := decLen(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < n {
		return nil, ErrShortBuffer
	}
	v.SetString(string(rest[:n]))
	return rest[n:], nil
}

func encBytes(buf []byte, v reflect.Value) ([]byte, error) {
	b := v.Bytes()
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...), nil
}

func decBytes(data []byte, v reflect.Value) ([]byte, error) {
	n, rest, err := decLen(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < n {
		return nil, ErrShortBuffer
	}
	b := make([]byte, n)
	copy(b, rest[:n])
	v.SetBytes(b)
	return rest[n:], nil
}

func buildSlicePlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	elem, err := buildLocked(t.Elem(), session)
	if err != nil {
		return plan{}, err
	}
	enc := func(buf []byte, v reflect.Value) ([]byte, error) {
		n := v.Len()
		buf = binary.AppendUvarint(buf, uint64(n))
		for i := 0; i < n; i++ {
			var err error
			buf, err = elem.enc(buf, v.Index(i))
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	dec := func(data []byte, v reflect.Value) ([]byte, error) {
		n, rest, err := decLen(data)
		if err != nil {
			return nil, err
		}
		// Don't size the allocation from the claimed length alone: a corrupt
		// three-byte header can claim 64M elements. Start at a bounded size
		// and grow only as elements actually decode.
		size := n
		if size > maxEagerLen {
			size = maxEagerLen
		}
		s := reflect.MakeSlice(t, size, size)
		for i := 0; i < n; i++ {
			if i == s.Len() {
				grow := s.Len() * 2
				if grow > n {
					grow = n
				}
				ns := reflect.MakeSlice(t, grow, grow)
				reflect.Copy(ns, s)
				s = ns
			}
			rest, err = elem.dec(rest, s.Index(i))
			if err != nil {
				return nil, err
			}
		}
		v.Set(s)
		return rest, nil
	}
	return plan{enc, dec}, nil
}

func buildArrayPlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	elem, err := buildLocked(t.Elem(), session)
	if err != nil {
		return plan{}, err
	}
	n := t.Len()
	enc := func(buf []byte, v reflect.Value) ([]byte, error) {
		var err error
		for i := 0; i < n; i++ {
			buf, err = elem.enc(buf, v.Index(i))
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	dec := func(data []byte, v reflect.Value) ([]byte, error) {
		var err error
		for i := 0; i < n; i++ {
			data, err = elem.dec(data, v.Index(i))
			if err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return plan{enc, dec}, nil
}

func buildMapPlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	keyPlan, err := buildLocked(t.Key(), session)
	if err != nil {
		return plan{}, err
	}
	valPlan, err := buildLocked(t.Elem(), session)
	if err != nil {
		return plan{}, err
	}
	enc := func(buf []byte, v reflect.Value) ([]byte, error) {
		buf = binary.AppendUvarint(buf, uint64(v.Len()))
		// Iterate in sorted-key order when keys are strings or ints so the
		// encoding is deterministic; determinism keeps benches and golden
		// tests stable.
		keys := v.MapKeys()
		sortKeys(keys)
		var err error
		for _, k := range keys {
			buf, err = keyPlan.enc(buf, k)
			if err != nil {
				return nil, err
			}
			buf, err = valPlan.enc(buf, v.MapIndex(k))
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	dec := func(data []byte, v reflect.Value) ([]byte, error) {
		n, rest, err := decLen(data)
		if err != nil {
			return nil, err
		}
		hint := n
		if hint > maxEagerLen {
			hint = maxEagerLen
		}
		m := reflect.MakeMapWithSize(t, hint)
		for i := 0; i < n; i++ {
			k := reflect.New(t.Key()).Elem()
			rest, err = keyPlan.dec(rest, k)
			if err != nil {
				return nil, err
			}
			val := reflect.New(t.Elem()).Elem()
			rest, err = valPlan.dec(rest, val)
			if err != nil {
				return nil, err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
		return rest, nil
	}
	return plan{enc, dec}, nil
}

func sortKeys(keys []reflect.Value) {
	if len(keys) < 2 {
		return
	}
	switch keys[0].Kind() {
	case reflect.String:
		sortSlice(keys, func(a, b reflect.Value) bool { return a.String() < b.String() })
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		sortSlice(keys, func(a, b reflect.Value) bool { return a.Int() < b.Int() })
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		sortSlice(keys, func(a, b reflect.Value) bool { return a.Uint() < b.Uint() })
	}
}

// sortSlice is an insertion sort: key sets in RPC messages are small, and
// this avoids pulling in sort for reflect.Value comparators.
func sortSlice(keys []reflect.Value, less func(a, b reflect.Value) bool) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func buildStructPlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	type fieldPlan struct {
		idx  int
		plan *plan
	}
	var fields []fieldPlan
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if f.Tag.Get("codec") == "-" {
			continue
		}
		p, err := buildLocked(f.Type, session)
		if err != nil {
			return plan{}, fmt.Errorf("%s.%s: %w", t, f.Name, err)
		}
		fields = append(fields, fieldPlan{i, p})
	}
	enc := func(buf []byte, v reflect.Value) ([]byte, error) {
		var err error
		for _, f := range fields {
			buf, err = f.plan.enc(buf, v.Field(f.idx))
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	dec := func(data []byte, v reflect.Value) ([]byte, error) {
		var err error
		for _, f := range fields {
			data, err = f.plan.dec(data, v.Field(f.idx))
			if err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return plan{enc, dec}, nil
}

func buildPtrPlan(t reflect.Type, session map[reflect.Type]*plan) (plan, error) {
	elem, err := buildLocked(t.Elem(), session)
	if err != nil {
		return plan{}, err
	}
	enc := func(buf []byte, v reflect.Value) ([]byte, error) {
		if v.IsNil() {
			return append(buf, 0), nil
		}
		return elem.enc(append(buf, 1), v.Elem())
	}
	dec := func(data []byte, v reflect.Value) ([]byte, error) {
		if len(data) < 1 {
			return nil, ErrShortBuffer
		}
		present := data[0] != 0
		data = data[1:]
		if !present {
			v.SetZero()
			return data, nil
		}
		p := reflect.New(t.Elem())
		data, err := elem.dec(data, p.Elem())
		if err != nil {
			return nil, err
		}
		v.Set(p)
		return data, nil
	}
	return plan{enc, dec}, nil
}
