package codec

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

type inner struct {
	Name  string
	Score float64
}

type message struct {
	ID       uint64
	Kind     int32
	Text     string
	Media    []byte
	Tags     []string
	Ratings  map[string]int64
	Nested   inner
	Pointer  *inner
	Flags    [3]bool
	When     int64 // nanoseconds; time is carried as int64 on the wire
	private  int   // unexported: skipped
	Excluded int   `codec:"-"`
}

func roundTrip(t *testing.T, in, out any) {
	t.Helper()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := Unmarshal(data, out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
}

func TestRoundTripMessage(t *testing.T) {
	in := message{
		ID:       42,
		Kind:     -7,
		Text:     "hello µservices",
		Media:    []byte{0, 1, 2, 255},
		Tags:     []string{"a", "", "c"},
		Ratings:  map[string]int64{"x": -1, "y": 2},
		Nested:   inner{Name: "n", Score: 3.5},
		Pointer:  &inner{Name: "p", Score: -0.25},
		Flags:    [3]bool{true, false, true},
		When:     time.Now().UnixNano(),
		private:  9,
		Excluded: 8,
	}
	var out message
	roundTrip(t, in, &out)
	// private and Excluded are not carried.
	in.private = 0
	in.Excluded = 0
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRoundTripNilPointer(t *testing.T) {
	in := message{Pointer: nil}
	var out message
	out.Pointer = &inner{Name: "stale"} // must be cleared by decode
	roundTrip(t, in, &out)
	if out.Pointer != nil {
		t.Fatalf("nil pointer decoded as %+v", out.Pointer)
	}
}

func TestRoundTripEmptyCollections(t *testing.T) {
	in := message{Tags: []string{}, Ratings: map[string]int64{}, Media: []byte{}}
	var out message
	roundTrip(t, in, &out)
	if len(out.Tags) != 0 || len(out.Ratings) != 0 || len(out.Media) != 0 {
		t.Fatalf("expected empty collections, got %+v", out)
	}
}

func TestScalars(t *testing.T) {
	type scalars struct {
		B   bool
		I8  int8
		I16 int16
		I32 int32
		I64 int64
		U8  uint8
		U16 uint16
		U32 uint32
		U64 uint64
		F32 float32
		F64 float64
		S   string
	}
	in := scalars{true, -128, -32768, math.MinInt32, math.MinInt64,
		255, 65535, math.MaxUint32, math.MaxUint64,
		-1.5, math.Pi, "s"}
	var out scalars
	roundTrip(t, in, &out)
	if in != out {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

func TestDeterministicMapEncoding(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
	first, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var m message
	if err := Unmarshal(nil, &m); err == nil {
		t.Error("want error for empty input")
	}
	if err := Unmarshal([]byte{1, 2, 3}, m); err == nil {
		t.Error("want error for non-pointer target")
	}
	var p *message
	if err := Unmarshal([]byte{1}, p); err == nil {
		t.Error("want error for nil pointer target")
	}
	// Trailing garbage must be rejected.
	data, _ := Marshal(int64(5))
	var x int64
	if err := Unmarshal(append(data, 0xFF), &x); err != ErrTrailingBytes {
		t.Errorf("want ErrTrailingBytes, got %v", err)
	}
}

func TestUnsupportedType(t *testing.T) {
	type bad struct{ Ch chan int }
	if _, err := Marshal(bad{}); err == nil {
		t.Error("want error for chan field")
	}
	if _, err := Marshal(func() {}); err == nil {
		t.Error("want error for func")
	}
	if _, err := Marshal(nil); err == nil {
		t.Error("want error for nil interface")
	}
}

func TestTruncatedInput(t *testing.T) {
	in := message{Text: "some text long enough to truncate", Tags: []string{"a", "b"}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(data); i++ {
		var out message
		if err := Unmarshal(data[:i], &out); err == nil {
			t.Fatalf("truncated to %d bytes decoded without error", i)
		}
	}
}

func TestCorruptLength(t *testing.T) {
	// A huge declared length must be rejected before allocation.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	var s string
	if err := Unmarshal(data, &s); err == nil {
		t.Fatal("want error for oversized length")
	}
}

func TestRecursiveType(t *testing.T) {
	type node struct {
		Val  int
		Next *node
	}
	in := node{1, &node{2, &node{3, nil}}}
	var out node
	roundTrip(t, in, &out)
	if out.Val != 1 || out.Next.Val != 2 || out.Next.Next.Val != 3 || out.Next.Next.Next != nil {
		t.Fatalf("recursive decode mismatch: %+v", out)
	}
}

// Property: arbitrary instances of a representative struct round-trip.
func TestRoundTripProperty(t *testing.T) {
	type prop struct {
		A int64
		B uint32
		C string
		D []byte
		E []int16
		F map[string]uint8
		G *string
		H float64
		I bool
	}
	f := func(in prop) bool {
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out prop
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		// nil and empty collections are equivalent on the wire.
		norm := func(p *prop) {
			if len(p.D) == 0 {
				p.D = nil
			}
			if len(p.E) == 0 {
				p.E = nil
			}
			if len(p.F) == 0 {
				p.F = nil
			}
		}
		norm(&in)
		norm(&out)
		if in.H != out.H && !(math.IsNaN(in.H) && math.IsNaN(out.H)) {
			return false
		}
		in.H, out.H = 0, 0
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeFuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		var m message
		_ = Unmarshal(data, &m) // error or success, must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAppendMarshal(t *testing.T) {
	prefix := []byte("hdr")
	out, err := AppendMarshal(prefix, int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, []byte("hdr")) {
		t.Fatal("AppendMarshal did not preserve prefix")
	}
	var x int64
	if err := Unmarshal(out[3:], &x); err != nil || x != 7 {
		t.Fatalf("decode after prefix: %v, x=%d", err, x)
	}
}

func BenchmarkMarshalMessage(b *testing.B) {
	in := message{
		ID: 42, Kind: -7, Text: "hello microservices benchmark payload",
		Media:   bytes.Repeat([]byte{0xAB}, 256),
		Tags:    []string{"social", "post", "media"},
		Ratings: map[string]int64{"a": 1, "b": 2},
		Nested:  inner{"n", 2.5},
	}
	b.ReportAllocs()
	buf := make([]byte, 0, 1024)
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendMarshal(buf[:0], in)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalMessage(b *testing.B) {
	in := message{
		ID: 42, Kind: -7, Text: "hello microservices benchmark payload",
		Media: bytes.Repeat([]byte{0xAB}, 256),
		Tags:  []string{"social", "post", "media"},
	}
	data, err := Marshal(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out message
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
