package codec_test

// Differential harness over every REGISTERED generated marshaler: blank
// imports pull in the wire_gen.go init()s from kv, docstore, mq, and all
// five apps, then a reflection-based filler conjures random values of each
// registered type and holds the generated fast path to the reflect plan —
// identical bytes out of Marshal, and either arm decodes the other's
// encoding back to an equal value. This is the backstop that lets
// cmd/codecgen evolve: any drift between the emitter and the plan builders
// fails here, naming the type.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dsb/internal/codec"

	_ "dsb/internal/docstore"
	_ "dsb/internal/kv"
	_ "dsb/internal/mq"
	_ "dsb/internal/services/banking"
	_ "dsb/internal/services/ecommerce"
	_ "dsb/internal/services/media"
	_ "dsb/internal/services/socialnetwork"
	_ "dsb/internal/services/swarm"
)

// fill populates v (an addressable reflect.Value) with pseudo-random
// content. Floats stay finite so decoded values stay DeepEqual-comparable;
// sizes stay small so a full sweep over all registered types is cheap.
func fill(v reflect.Value, rng *rand.Rand, depth int) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := rng.Int63() - rng.Int63()
		switch v.Kind() {
		case reflect.Int8:
			n = int64(int8(n))
		case reflect.Int16:
			n = int64(int16(n))
		case reflect.Int32:
			n = int64(int32(n))
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n := rng.Uint64()
		switch v.Kind() {
		case reflect.Uint8:
			n = uint64(uint8(n))
		case reflect.Uint16:
			n = uint64(uint16(n))
		case reflect.Uint32:
			n = uint64(uint32(n))
		}
		v.SetUint(n)
	case reflect.Float32:
		v.SetFloat(float64(float32(rng.NormFloat64() * 1e3)))
	case reflect.Float64:
		v.SetFloat(rng.NormFloat64() * 1e6)
	case reflect.String:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		v.SetString(string(b))
	case reflect.Slice:
		n := rng.Intn(4)
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fill(s.Index(i), rng, depth+1)
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fill(v.Index(i), rng, depth+1)
		}
	case reflect.Map:
		n := rng.Intn(4)
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fill(k, rng, depth+1)
			e := reflect.New(v.Type().Elem()).Elem()
			fill(e, rng, depth+1)
			m.SetMapIndex(k, e)
		}
		v.Set(m)
	case reflect.Pointer:
		if depth > 3 || rng.Intn(2) == 0 {
			v.SetZero()
			return
		}
		p := reflect.New(v.Type().Elem())
		fill(p.Elem(), rng, depth+1)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fill(v.Field(i), rng, depth+1)
			}
		}
	}
}

// checkOne runs the four-way differential for one value: fast encode ==
// reflect encode, and fast/reflect decodes of those bytes agree with each
// other.
func checkOne(t *testing.T, typ reflect.Type, val any) {
	t.Helper()
	fast, err := codec.Marshal(val)
	if err != nil {
		t.Fatalf("%s: fast marshal: %v", typ, err)
	}
	refl, err := codec.MarshalReflect(val)
	if err != nil {
		t.Fatalf("%s: reflect marshal: %v", typ, err)
	}
	if !bytes.Equal(fast, refl) {
		t.Fatalf("%s: generated marshaler diverges from reflect plan:\n   fast = %x\nreflect = %x\nvalue: %+v",
			typ, fast, refl, val)
	}
	viaFast := reflect.New(typ)
	if err := codec.Unmarshal(refl, viaFast.Interface()); err != nil {
		t.Fatalf("%s: fast decode of reflect encoding: %v", typ, err)
	}
	viaRefl := reflect.New(typ)
	if err := codec.UnmarshalReflect(fast, viaRefl.Interface()); err != nil {
		t.Fatalf("%s: reflect decode of fast encoding: %v", typ, err)
	}
	if !reflect.DeepEqual(viaFast.Elem().Interface(), viaRefl.Elem().Interface()) {
		t.Fatalf("%s: decode arms disagree:\n   fast = %+v\nreflect = %+v",
			typ, viaFast.Elem().Interface(), viaRefl.Elem().Interface())
	}
}

// TestRegisteredMarshalersMatchReflect sweeps every registered type with a
// deterministic seed battery, so plain `go test` already exercises the full
// differential (the fuzz target below widens the seed space).
func TestRegisteredMarshalersMatchReflect(t *testing.T) {
	types := codec.RegisteredTypes()
	if len(types) < 50 {
		t.Fatalf("expected the generated packages to register at least 50 types, got %d", len(types))
	}
	for _, typ := range types {
		// Zero value first: nil maps, nil slices, nil pointers.
		checkOne(t, typ, reflect.New(typ).Elem().Interface())
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(seed * 7919))
			pv := reflect.New(typ)
			fill(pv.Elem(), rng, 0)
			checkOne(t, typ, pv.Elem().Interface())
		}
	}
}

// FuzzRegisteredFastPaths lets the fuzzer drive the filler's seed across
// all registered types.
func FuzzRegisteredFastPaths(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(-99991))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for _, typ := range codec.RegisteredTypes() {
			pv := reflect.New(typ)
			fill(pv.Elem(), rng, 0)
			checkOne(t, typ, pv.Elem().Interface())
		}
	})
}
