package codec

// Fast path: pre-registered message types bypass the reflect plans
// entirely. A type opts in by carrying pointer-receiver AppendTo/DecodeFrom
// methods — normally emitted by cmd/codecgen, occasionally hand-written —
// that produce byte-for-byte the same wire encoding the reflect plan would
// (the differential fuzz harness holds them to that). Marshal and Unmarshal
// route through the fast path automatically:
//
//   - a pointer argument that implements Message dispatches directly, with
//     no reflection and no allocation beyond what the marshaler itself does;
//   - a value argument of a Register-ed type dispatches through a stored
//     closure that re-materializes the pointer receiver on the stack;
//   - everything else falls back to the reflect plans, so unregistered
//     types keep working unchanged.
//
// MarshalReflect/UnmarshalReflect expose the plan path directly for
// differential testing and for experiments that want the pre-fast-path
// baseline as a control arm.

import (
	"errors"
	"reflect"
	"sort"
	"sync"
)

// ErrNilMessage is returned by generated marshalers invoked on a nil
// receiver: a nil typed pointer has no value to encode, and on decode no
// struct to fill.
var ErrNilMessage = errors.New("codec: nil message")

// Message is the fast-path contract. AppendTo appends the receiver's wire
// encoding to b and returns the extended slice; DecodeFrom consumes the
// receiver's encoding from the front of b and returns the remainder.
// Implementations must be wire-compatible with the reflect plan for the
// same struct: same field order, same primitive encodings, sorted map keys.
// DecodeFrom must not alias its input — decoded strings, byte slices, and
// the like are copies — so callers may recycle the input buffer the moment
// it returns.
type Message interface {
	AppendTo(b []byte) ([]byte, error)
	DecodeFrom(b []byte) (rest []byte, err error)
}

// fastFuncs is the registry entry for one value type T: a closure that
// encodes an `any` holding a T without reflection.
type fastFuncs struct {
	appendVal func(buf []byte, v any) ([]byte, error)
}

var (
	fastReg   sync.Map // reflect.Type (the value type T) -> *fastFuncs
	fastMu    sync.Mutex
	fastTypes []reflect.Type
)

// Register records T's generated marshaler so that Marshal of a plain T
// value (not just a *T) takes the fast path. The PT constraint pins *T to
// implement Message, which lets the type argument be inferred:
//
//	codec.Register[GetReq]()
//
// Registration is idempotent; generated wire_gen.go files call it from
// init().
func Register[T any, PT interface {
	Message
	*T
}]() {
	t := reflect.TypeOf((*T)(nil)).Elem()
	fns := &fastFuncs{
		appendVal: func(buf []byte, v any) ([]byte, error) {
			// The type assertion copies T onto the stack; PT(&x) is the
			// pointer receiver the generated marshaler wants. No reflection,
			// and no allocation unless the marshaler itself allocates.
			x := v.(T)
			return PT(&x).AppendTo(buf)
		},
	}
	if _, loaded := fastReg.Swap(t, fns); !loaded {
		fastMu.Lock()
		fastTypes = append(fastTypes, t)
		fastMu.Unlock()
	}
}

// RegisteredTypes returns the value types registered so far, sorted by
// package path and name. The differential fuzz harness iterates it to hold
// every generated marshaler to the reflect plan's encoding.
func RegisteredTypes() []reflect.Type {
	fastMu.Lock()
	out := make([]reflect.Type, len(fastTypes))
	copy(out, fastTypes)
	fastMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath() != out[j].PkgPath() {
			return out[i].PkgPath() < out[j].PkgPath()
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// fastAppend dispatches v through the fast path if possible, reporting
// whether it did.
func fastAppend(buf []byte, v any) ([]byte, bool, error) {
	if m, ok := v.(Message); ok {
		out, err := m.AppendTo(buf)
		return out, true, err
	}
	if v != nil {
		if fns, ok := fastReg.Load(reflect.TypeOf(v)); ok {
			out, err := fns.(*fastFuncs).appendVal(buf, v)
			return out, true, err
		}
	}
	return buf, false, nil
}
