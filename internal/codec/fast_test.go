package codec

// Hand-written fast-path marshalers for the fuzz types, in the exact style
// cmd/codecgen emits. Registering them from a test init means the package's
// own fuzz and round-trip targets exercise the fast path dispatch (Marshal
// and Unmarshal route through AppendTo/DecodeFrom) while MarshalReflect and
// UnmarshalReflect keep the plan path reachable for differential checks in
// fuzz_test.go.

func init() {
	Register[fuzzInner]()
	Register[fuzzMsg]()
}

func (m *fuzzInner) AppendTo(b []byte) ([]byte, error) {
	if m == nil {
		return nil, ErrNilMessage
	}
	b = AppendString(b, m.Name)
	b = AppendFloat64(b, m.Score)
	b = AppendLen(b, len(m.Tags))
	for i := range m.Tags {
		b = AppendString(b, m.Tags[i])
	}
	return b, nil
}

func (m *fuzzInner) DecodeFrom(b []byte) ([]byte, error) {
	if m == nil {
		return nil, ErrNilMessage
	}
	var err error
	if m.Name, b, err = DecString(b); err != nil {
		return nil, err
	}
	if m.Score, b, err = DecFloat64(b); err != nil {
		return nil, err
	}
	n, b, err := DecLen(b)
	if err != nil {
		return nil, err
	}
	tags := make([]string, 0, EagerLen(n))
	for i := 0; i < n; i++ {
		var s string
		if s, b, err = DecString(b); err != nil {
			return nil, err
		}
		tags = append(tags, s)
	}
	m.Tags = tags
	return b, nil
}

func (m *fuzzMsg) AppendTo(b []byte) ([]byte, error) {
	if m == nil {
		return nil, ErrNilMessage
	}
	var err error
	b = AppendBool(b, m.Flag)
	b = AppendInt(b, int64(m.Small))
	b = AppendInt(b, m.Wide)
	b = AppendUint(b, uint64(m.Count))
	b = AppendFloat32(b, m.Ratio)
	b = AppendString(b, m.Label)
	b = AppendBytes(b, m.Raw)
	for i := 0; i < 3; i++ {
		b = AppendInt(b, int64(m.Triple[i]))
	}
	b = AppendLen(b, len(m.Items))
	for i := range m.Items {
		if b, err = m.Items[i].AppendTo(b); err != nil {
			return nil, err
		}
	}
	b = AppendLen(b, len(m.ByName))
	if len(m.ByName) > 0 {
		keys := make([]string, 0, len(m.ByName))
		for k := range m.ByName {
			keys = append(keys, k)
		}
		insertionSortStrings(keys)
		for _, k := range keys {
			b = AppendString(b, k)
			v := m.ByName[k]
			if b, err = v.AppendTo(b); err != nil {
				return nil, err
			}
		}
	}
	b = AppendLen(b, len(m.ByID))
	if len(m.ByID) > 0 {
		ids := make([]int64, 0, len(m.ByID))
		for k := range m.ByID {
			ids = append(ids, k)
		}
		insertionSortInt64s(ids)
		for _, k := range ids {
			b = AppendInt(b, k)
			b = AppendString(b, m.ByID[k])
		}
	}
	if m.Opt == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		if b, err = m.Opt.AppendTo(b); err != nil {
			return nil, err
		}
	}
	if m.Link == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		if b, err = m.Link.AppendTo(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (m *fuzzMsg) DecodeFrom(b []byte) ([]byte, error) {
	if m == nil {
		return nil, ErrNilMessage
	}
	var err error
	if m.Flag, b, err = DecBool(b); err != nil {
		return nil, err
	}
	if m.Small, b, err = DecInt8(b); err != nil {
		return nil, err
	}
	if m.Wide, b, err = DecInt(b); err != nil {
		return nil, err
	}
	if m.Count, b, err = DecUint32(b); err != nil {
		return nil, err
	}
	if m.Ratio, b, err = DecFloat32(b); err != nil {
		return nil, err
	}
	if m.Label, b, err = DecString(b); err != nil {
		return nil, err
	}
	if m.Raw, b, err = DecBytes(b); err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		if m.Triple[i], b, err = DecInt32(b); err != nil {
			return nil, err
		}
	}
	n, b, err := DecLen(b)
	if err != nil {
		return nil, err
	}
	items := make([]fuzzInner, 0, EagerLen(n))
	for i := 0; i < n; i++ {
		var e fuzzInner
		if b, err = e.DecodeFrom(b); err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	m.Items = items
	if n, b, err = DecLen(b); err != nil {
		return nil, err
	}
	byName := make(map[string]fuzzInner, EagerLen(n))
	for i := 0; i < n; i++ {
		var k string
		if k, b, err = DecString(b); err != nil {
			return nil, err
		}
		var v fuzzInner
		if b, err = v.DecodeFrom(b); err != nil {
			return nil, err
		}
		byName[k] = v
	}
	m.ByName = byName
	if n, b, err = DecLen(b); err != nil {
		return nil, err
	}
	byID := make(map[int64]string, EagerLen(n))
	for i := 0; i < n; i++ {
		var k int64
		if k, b, err = DecInt(b); err != nil {
			return nil, err
		}
		var v string
		if v, b, err = DecString(b); err != nil {
			return nil, err
		}
		byID[k] = v
	}
	m.ByID = byID
	if len(b) < 1 {
		return nil, ErrShortBuffer
	}
	optSet := b[0] != 0
	b = b[1:]
	if !optSet {
		m.Opt = nil
	} else {
		p := new(fuzzInner)
		if b, err = p.DecodeFrom(b); err != nil {
			return nil, err
		}
		m.Opt = p
	}
	if len(b) < 1 {
		return nil, ErrShortBuffer
	}
	linkSet := b[0] != 0
	b = b[1:]
	if !linkSet {
		m.Link = nil
	} else {
		p := new(fuzzMsg)
		if b, err = p.DecodeFrom(b); err != nil {
			return nil, err
		}
		m.Link = p
	}
	return b, nil
}

func insertionSortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func insertionSortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
