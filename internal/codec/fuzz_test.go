package codec

// Fuzz harness for the wire format: throw arbitrary bytes at the decoder
// for a type that exercises every plan kind (scalars, string, []byte,
// slice, array, map with string and int keys, nested struct, pointer) and
// hold the codec to two properties. First, the decoder never panics and
// never lets a corrupt length header buy a giant allocation. Second, any
// input the decoder accepts canonicalizes: re-encoding the decoded value
// and decoding it again must reproduce the same bytes, byte for byte —
// the determinism the golden tests and the frame cache both lean on.
//
// Run with: go test -fuzz=FuzzCodecRoundTrip ./internal/codec/

import (
	"bytes"
	"math"
	"testing"
)

type fuzzInner struct {
	Name  string
	Score float64
	Tags  []string
}

type fuzzMsg struct {
	Flag   bool
	Small  int8
	Wide   int64
	Count  uint32
	Ratio  float32
	Label  string
	Raw    []byte
	Triple [3]int32
	Items  []fuzzInner
	ByName map[string]fuzzInner
	ByID   map[int64]string
	Opt    *fuzzInner
	Link   *fuzzMsg
}

func FuzzCodecRoundTrip(f *testing.F) {
	seeds := []fuzzMsg{
		{}, // zero value: nil maps, nil pointers, empty everything
		{
			Flag: true, Small: -8, Wide: math.MaxInt64, Count: 7,
			Ratio: 2.5, Label: "seed", Raw: []byte{0, 1, 2},
			Triple: [3]int32{-1, 0, 1},
			Items:  []fuzzInner{{Name: "a", Score: 0.5, Tags: []string{"x", "y"}}, {}},
			ByName: map[string]fuzzInner{"k": {Name: "v"}, "": {}},
			ByID:   map[int64]string{-3: "neg", 9: "pos"},
			Opt:    &fuzzInner{Name: "opt"},
		},
		{
			Wide: math.MinInt64, Ratio: float32(math.Inf(-1)),
			Link: &fuzzMsg{Label: "nested", Opt: &fuzzInner{Score: -0.0}},
		},
	}
	for _, s := range seeds {
		b, err := Marshal(s)
		if err != nil {
			f.Fatalf("marshal seed: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // hostile length header

	f.Fuzz(func(t *testing.T, data []byte) {
		var v1 fuzzMsg
		if err := Unmarshal(data, &v1); err != nil {
			return // rejection is fine; panics and runaway allocation are not
		}
		b1, err := Marshal(v1) // fast path: fuzzMsg is registered in fast_test.go
		if err != nil {
			t.Fatalf("re-marshal of accepted value failed: %v", err)
		}
		var v2 fuzzMsg
		if err := Unmarshal(b1, &v2); err != nil {
			t.Fatalf("canonical encoding did not decode: %v", err)
		}
		b2, err := Marshal(v2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encoding is not canonical:\n first = %x\nsecond = %x", b1, b2)
		}
		// Differential: the hand-written fast-path marshaler must agree with
		// the reflect plan byte for byte, and each must decode the other's
		// output. Values are compared through a re-encode (not DeepEqual) so
		// NaN payloads, which compare unequal to themselves, still verify.
		br, err := MarshalReflect(v1)
		if err != nil {
			t.Fatalf("reflect marshal of accepted value failed: %v", err)
		}
		if !bytes.Equal(b1, br) {
			t.Fatalf("fast path and reflect plan disagree:\n   fast = %x\nreflect = %x", b1, br)
		}
		var vr fuzzMsg
		if err := UnmarshalReflect(b1, &vr); err != nil {
			t.Fatalf("reflect decode rejected fast-path encoding: %v", err)
		}
		brr, err := Marshal(vr)
		if err != nil {
			t.Fatalf("fast re-marshal of reflect-decoded value failed: %v", err)
		}
		if !bytes.Equal(brr, b1) {
			t.Fatalf("cross-decoded value re-encodes differently:\ncross = %x\n fast = %x", brr, b1)
		}
	})
}

// TestHostileLengthHeaderBounded pins the allocation guard the fuzz target
// relies on: a tiny input claiming a near-maxLen collection must fail on
// the missing bytes without first allocating the claimed length.
func TestHostileLengthHeaderBounded(t *testing.T) {
	// Uvarint for 1<<25 elements, then nothing behind it.
	hostile := []byte{0x80, 0x80, 0x80, 0x10}
	var sl []fuzzInner
	if err := Unmarshal(hostile, &sl); err == nil {
		t.Fatal("slice decode accepted a 32M-element claim backed by no bytes")
	}
	var m map[int64]string
	if err := Unmarshal(hostile, &m); err == nil {
		t.Fatal("map decode accepted a 32M-element claim backed by no bytes")
	}
	// The guard must not disturb honest large-ish collections.
	big := make([]int64, 5000)
	for i := range big {
		big[i] = int64(i * i)
	}
	b, err := Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	var back []int64
	if err := Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(big) || back[4999] != big[4999] {
		t.Fatalf("grown decode corrupted the slice: len=%d", len(back))
	}
}
