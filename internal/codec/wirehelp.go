package codec

// Exported primitive encoders/decoders for generated marshalers. Each is
// the hand-rolled twin of one reflect-plan encoder in codec.go and must
// stay byte-for-byte compatible with it: ints are zigzag varints, uints are
// uvarints, floats are always 8-byte little-endian float64 bits (float32
// widens), strings/bytes/collections carry a uvarint length, and decode
// enforces the same maxLen bound and narrow-integer overflow checks the
// plans do. Decoders never alias their input: strings and byte slices are
// copied out, so the caller may recycle the buffer as soon as decode
// returns.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendInt appends v as a zigzag varint.
func AppendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendUint appends v as a uvarint.
func AppendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendFloat64 appends v as 8 little-endian bytes of its IEEE-754 bits.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendFloat32 appends v widened to float64 — the wire format carries all
// floats at 8 bytes, exactly as the reflect plan does.
func AppendFloat32(b []byte, v float32) []byte {
	return AppendFloat64(b, float64(v))
}

// AppendString appends a uvarint length followed by the bytes of s.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length followed by v.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendLen appends a collection length prefix (slice, map).
func AppendLen(b []byte, n int) []byte {
	return binary.AppendUvarint(b, uint64(n))
}

// DecBool consumes one byte.
func DecBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrShortBuffer
	}
	return b[0] != 0, b[1:], nil
}

// DecInt consumes a zigzag varint.
func DecInt(b []byte) (int64, []byte, error) {
	x, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return x, b[n:], nil
}

// DecInt8 consumes a zigzag varint and range-checks it into int8.
func DecInt8(b []byte) (int8, []byte, error) {
	x, rest, err := DecInt(b)
	if err != nil {
		return 0, nil, err
	}
	if x < math.MinInt8 || x > math.MaxInt8 {
		return 0, nil, fmt.Errorf("codec: value %d overflows int8", x)
	}
	return int8(x), rest, nil
}

// DecInt16 consumes a zigzag varint and range-checks it into int16.
func DecInt16(b []byte) (int16, []byte, error) {
	x, rest, err := DecInt(b)
	if err != nil {
		return 0, nil, err
	}
	if x < math.MinInt16 || x > math.MaxInt16 {
		return 0, nil, fmt.Errorf("codec: value %d overflows int16", x)
	}
	return int16(x), rest, nil
}

// DecInt32 consumes a zigzag varint and range-checks it into int32.
func DecInt32(b []byte) (int32, []byte, error) {
	x, rest, err := DecInt(b)
	if err != nil {
		return 0, nil, err
	}
	if x < math.MinInt32 || x > math.MaxInt32 {
		return 0, nil, fmt.Errorf("codec: value %d overflows int32", x)
	}
	return int32(x), rest, nil
}

// DecUint consumes a uvarint.
func DecUint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return x, b[n:], nil
}

// DecUint8 consumes a uvarint and range-checks it into uint8.
func DecUint8(b []byte) (uint8, []byte, error) {
	x, rest, err := DecUint(b)
	if err != nil {
		return 0, nil, err
	}
	if x > math.MaxUint8 {
		return 0, nil, fmt.Errorf("codec: value %d overflows uint8", x)
	}
	return uint8(x), rest, nil
}

// DecUint16 consumes a uvarint and range-checks it into uint16.
func DecUint16(b []byte) (uint16, []byte, error) {
	x, rest, err := DecUint(b)
	if err != nil {
		return 0, nil, err
	}
	if x > math.MaxUint16 {
		return 0, nil, fmt.Errorf("codec: value %d overflows uint16", x)
	}
	return uint16(x), rest, nil
}

// DecUint32 consumes a uvarint and range-checks it into uint32.
func DecUint32(b []byte) (uint32, []byte, error) {
	x, rest, err := DecUint(b)
	if err != nil {
		return 0, nil, err
	}
	if x > math.MaxUint32 {
		return 0, nil, fmt.Errorf("codec: value %d overflows uint32", x)
	}
	return uint32(x), rest, nil
}

// DecFloat64 consumes 8 little-endian bytes of IEEE-754 bits.
func DecFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortBuffer
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// DecFloat32 consumes a wire float64 and narrows it, rejecting magnitudes
// that overflow float32 exactly as reflect's OverflowFloat does (infinities
// pass; finite values beyond MaxFloat32 do not).
func DecFloat32(b []byte) (float32, []byte, error) {
	f, rest, err := DecFloat64(b)
	if err != nil {
		return 0, nil, err
	}
	a := f
	if a < 0 {
		a = -a
	}
	if math.MaxFloat32 < a && a <= math.MaxFloat64 {
		return 0, nil, fmt.Errorf("codec: value %g overflows float32", f)
	}
	return float32(f), rest, nil
}

// DecString consumes a length-prefixed string, copying it out of b.
func DecString(b []byte) (string, []byte, error) {
	n, rest, err := DecLen(b)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < n {
		return "", nil, ErrShortBuffer
	}
	return string(rest[:n]), rest[n:], nil
}

// DecBytes consumes a length-prefixed byte slice, copying it out of b. A
// zero length decodes to a non-nil empty slice, matching the reflect plan.
func DecBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := DecLen(b)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) < n {
		return nil, nil, ErrShortBuffer
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// DecLen consumes a collection length prefix, enforcing the same bound the
// reflect plans apply against hostile headers.
func DecLen(b []byte) (int, []byte, error) {
	return decLen(b)
}

// EagerLen caps an up-front allocation hint from a decoded length header:
// anything beyond the bound must earn its space element by element, so a
// corrupt three-byte header cannot buy a giant allocation.
func EagerLen(n int) int {
	if n > maxEagerLen {
		return maxEagerLen
	}
	return n
}
