package controlplane

import (
	"context"
	"math"
	"sync"
	"time"

	"dsb/internal/metrics"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// AdmissionConfig tunes one replica's admission controller. The zero value
// gets sane defaults from NewAdmission.
type AdmissionConfig struct {
	// MaxConcurrent bounds requests executing simultaneously — the
	// replica's worker pool. Zero means unlimited (admission then only
	// sheds on queue bound, CoDel, and deadline budget).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a worker; arrivals beyond it
	// are shed immediately (default 256). An unbounded queue is how the
	// paper's Fig 17 backpressure collapse happens: every queued request
	// eventually times out client-side but still burns a worker when its
	// turn comes.
	MaxQueue int
	// CoDelTarget is the acceptable standing queueing delay (default 5ms);
	// CoDelInterval is how long delay must stay above target before
	// shedding starts (default 100ms). Zero CoDelTarget disables CoDel.
	CoDelTarget   time.Duration
	CoDelInterval time.Duration
	// MinBudget sheds requests whose remaining deadline is below the
	// expected service time (EWMA of observed handler latency, floored at
	// MinBudget). The work would be wasted: the client gives up before the
	// reply. Default 1ms; negative disables budget shedding.
	MinBudget time.Duration
	// Window sizes the sliding windows behind the load report (default 1s).
	Window time.Duration

	now func() time.Time // test hook
}

func (cfg AdmissionConfig) withDefaults() AdmissionConfig {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.CoDelTarget == 0 {
		cfg.CoDelTarget = 5 * time.Millisecond
	}
	if cfg.CoDelInterval <= 0 {
		cfg.CoDelInterval = 100 * time.Millisecond
	}
	if cfg.MinBudget == 0 {
		cfg.MinBudget = time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

// Admission is one replica's server-side overload guard. Protocol adapters
// (Interceptor for rpc, RESTInterceptor for rest) wrap handlers in
// Admit/release; Report snapshots the windowed load view the controller
// aggregates.
type Admission struct {
	cfg AdmissionConfig
	sem chan struct{} // nil when MaxConcurrent == 0

	queued   metrics.Gauge
	inFlight metrics.Gauge

	admitted  metrics.Counter
	shedQueue metrics.Counter // queue bound exceeded
	shedCoDel metrics.Counter // standing queue delay above target
	shedOver  metrics.Counter // deadline budget below expected service time

	doneRate *metrics.Meter // completions/s
	shedRate *metrics.Meter // sheds/s
	busyNs   *metrics.Meter // handler-occupancy ns/s → utilization
	sojourn  *metrics.Windowed
	wait     *metrics.Windowed

	// lagFn, when set, reports the consumer-group backlog this replica
	// drains; Report copies it into LoadReport.Lag. Async consumers need
	// it because their pending work lives in the broker, not in the
	// admission queue this controller can see.
	lagFn func() int64

	mu         sync.Mutex
	ewmaNs     float64   // EWMA of handler service time
	firstAbove time.Time // CoDel: when delay first exceeded target
	dropNext   time.Time // CoDel: next scheduled drop while dropping
	dropCount  int       // CoDel: drops in the current dropping episode
	dropping   bool
}

// NewAdmission builds an admission controller for one replica.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	a := &Admission{
		cfg:      cfg,
		doneRate: metrics.NewMeter(cfg.Window, 10, cfg.now),
		shedRate: metrics.NewMeter(cfg.Window, 10, cfg.now),
		busyNs:   metrics.NewMeter(cfg.Window, 10, cfg.now),
		sojourn:  metrics.NewWindowed(cfg.Window, 5, cfg.now),
		wait:     metrics.NewWindowed(cfg.Window, 5, cfg.now),
	}
	if cfg.MaxConcurrent > 0 {
		a.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return a
}

func overloadErr(why string) error {
	return transport.Errorf(transport.CodeOverloaded, "admission: %s", why)
}

// Admit gates one request. On acceptance it returns a release func the
// caller MUST invoke when the handler finishes; on shed it returns a
// CodeOverloaded error (or the context error if the caller gave up while
// queued). The queue is the set of goroutines blocked on the worker
// semaphore; its length is bounded before blocking.
func (a *Admission) Admit(ctx context.Context) (release func(), err error) {
	enq := a.cfg.now()
	if int(a.queued.Value()) >= a.cfg.MaxQueue {
		a.shed(&a.shedQueue)
		return nil, overloadErr("queue full")
	}
	a.queued.Add(1)
	if a.sem != nil {
		select {
		case a.sem <- struct{}{}:
		case <-ctx.Done():
			a.queued.Add(-1)
			// The client departed while we queued; not a shed (the queue
			// was survivable), but the work must not run.
			return nil, transport.WrapCode(transport.CodeDeadline, ctx.Err(),
				"admission: caller gave up in queue after %v", a.cfg.now().Sub(enq))
		}
	}
	a.queued.Add(-1)
	start := a.cfg.now()
	waited := start.Sub(enq)

	reject := func(counter *metrics.Counter, why string) (func(), error) {
		if a.sem != nil {
			<-a.sem
		}
		a.shed(counter)
		return nil, overloadErr(why)
	}
	// CoDel on queueing delay: persistent standing queues mean arrival
	// rate exceeds service rate; shedding early keeps the queue short
	// enough that admitted requests still meet their deadlines.
	if a.codelDrop(waited, start) {
		return reject(&a.shedCoDel, "standing queue above target")
	}
	// Deadline budget: running a request whose client will time out before
	// the reply wastes exactly the capacity an overloaded tier lacks.
	if a.cfg.MinBudget >= 0 {
		if dl, ok := ctx.Deadline(); ok {
			need := a.expectedServiceTime()
			if remaining := dl.Sub(a.cfg.now()); remaining < need {
				return reject(&a.shedOver, "deadline budget spent")
			}
		}
	}

	a.inFlight.Add(1)
	a.wait.RecordDuration(waited)
	var once sync.Once
	return func() {
		once.Do(func() {
			end := a.cfg.now()
			dur := end.Sub(start)
			a.inFlight.Add(-1)
			if a.sem != nil {
				<-a.sem
			}
			a.admitted.Inc()
			a.doneRate.Mark(1)
			a.busyNs.Mark(int64(dur))
			a.sojourn.RecordDuration(end.Sub(enq))
			a.observeServiceTime(dur)
		})
	}, nil
}

func (a *Admission) shed(counter *metrics.Counter) {
	counter.Inc()
	a.shedRate.Mark(1)
}

// expectedServiceTime is the EWMA of observed handler latency, floored at
// MinBudget so a cold replica does not reject everything or nothing.
func (a *Admission) expectedServiceTime() time.Duration {
	a.mu.Lock()
	ewma := a.ewmaNs
	a.mu.Unlock()
	need := time.Duration(ewma)
	if need < a.cfg.MinBudget {
		need = a.cfg.MinBudget
	}
	return need
}

func (a *Admission) observeServiceTime(dur time.Duration) {
	a.mu.Lock()
	if a.ewmaNs == 0 {
		a.ewmaNs = float64(dur)
	} else {
		const alpha = 0.2
		a.ewmaNs = (1-alpha)*a.ewmaNs + alpha*float64(dur)
	}
	a.mu.Unlock()
}

// codelDrop implements the CoDel state machine on observed queueing delay:
// once delay has stayed above target for a full interval the controller
// enters a dropping episode, shedding at a rate that grows with the square
// root of the drop count (the CoDel control law) until delay dips below
// target.
func (a *Admission) codelDrop(waited time.Duration, now time.Time) bool {
	if a.cfg.CoDelTarget <= 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if waited < a.cfg.CoDelTarget {
		a.firstAbove = time.Time{}
		a.dropping = false
		return false
	}
	if a.firstAbove.IsZero() {
		a.firstAbove = now
		return false
	}
	if !a.dropping {
		if now.Sub(a.firstAbove) < a.cfg.CoDelInterval {
			return false
		}
		a.dropping = true
		a.dropCount = 1
		a.dropNext = now.Add(a.nextDropGap())
		return true
	}
	if now.Before(a.dropNext) {
		return false
	}
	a.dropCount++
	a.dropNext = now.Add(a.nextDropGap())
	return true
}

func (a *Admission) nextDropGap() time.Duration {
	return time.Duration(float64(a.cfg.CoDelInterval) / math.Sqrt(float64(a.dropCount)))
}

// SetLagProbe attaches the backlog source an async-consumer replica reports
// through LoadReport.Lag (typically a broker Stats call for its consumer
// group). Call before the replica starts serving load probes.
func (a *Admission) SetLagProbe(fn func() int64) {
	a.mu.Lock()
	a.lagFn = fn
	a.mu.Unlock()
}

// Report snapshots the replica's windowed load view.
func (a *Admission) Report() LoadReport {
	s := a.sojourn.Snapshot()
	w := a.wait.Snapshot()
	a.mu.Lock()
	lagFn := a.lagFn
	a.mu.Unlock()
	r := LoadReport{
		Workers:       a.cfg.MaxConcurrent,
		QueueDepth:    a.queued.Value(),
		InFlight:      a.inFlight.Value(),
		RatePerSec:    a.doneRate.Rate(),
		ShedPerSec:    a.shedRate.Rate(),
		P50Ns:         s.P50,
		P99Ns:         s.P99,
		QueueP99Ns:    w.P99,
		ServiceEWMANs: int64(a.expectedServiceTime()),
		Admitted:      a.admitted.Value(),
		Shed:          a.shedQueue.Value() + a.shedCoDel.Value() + a.shedOver.Value(),
	}
	if a.cfg.MaxConcurrent > 0 {
		// busyNs is handler-occupancy per second; across MaxConcurrent
		// workers full saturation marks MaxConcurrent seconds per second.
		r.Utilization = a.busyNs.Rate() / (float64(a.cfg.MaxConcurrent) * float64(time.Second))
		if r.Utilization > 1 {
			r.Utilization = 1
		}
	}
	if lagFn != nil {
		r.Lag = lagFn()
	}
	return r
}

// Interceptor adapts the admission controller to an rpc.Server. Install it
// after tracing so sheds are visible in spans. The reserved load-report
// method bypasses admission: the control plane must be able to observe an
// overloaded replica, and a report that could be shed would blind the
// controller exactly when it matters.
func Interceptor(a *Admission) rpc.ServerInterceptor {
	return func(ctx *rpc.Ctx, payload []byte, next rpc.Handler) ([]byte, error) {
		if ctx.Method == LoadMethod {
			return next(ctx, payload)
		}
		release, err := a.Admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return next(ctx, payload)
	}
}

// RESTInterceptor adapts the admission controller to a rest.Server; the
// reserved report path bypasses admission like the RPC report method.
func RESTInterceptor(a *Admission) rest.Interceptor {
	return func(ctx *rest.Ctx, body []byte, next rest.Handler) (any, error) {
		if ctx.Request.URL.Path == LoadPath {
			return next(ctx, body)
		}
		release, err := a.Admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return next(ctx, body)
	}
}
