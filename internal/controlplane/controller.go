package controlplane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dsb/internal/registry"
	"dsb/internal/rpc"
)

// Spawner starts and stops live replicas of a service. core-based apps use
// AppSpawner; tests use fakes. Spawn must register the new replica in the
// registry before returning (AppSpawner does via core.App), and Stop must
// deregister before draining, so balancers follow within one watch.
type Spawner interface {
	Spawn(service string) (addr string, err error)
	Stop(service, addr string) error
}

// ManagedService is one tier the controller reconciles, with its replica
// bounds.
type ManagedService struct {
	Name string
	Min  int // floor (default 1)
	Max  int // ceiling (default 16)
}

func (m ManagedService) bounds() (int, int) {
	lo, hi := m.Min, m.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = 16
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

// ControllerConfig wires a Controller.
type ControllerConfig struct {
	Registry *registry.Registry
	Network  rpc.Network
	Spawner  Spawner
	Policy   Policy
	Services []ManagedService
	// Interval is the reconcile period (default 250ms).
	Interval time.Duration
	// FetchTimeout bounds each replica report probe (default 50ms).
	FetchTimeout time.Duration

	// fetch overrides the report probe in tests.
	fetch func(ctx context.Context, service, addr string) (LoadReport, error)
}

// Decision records one reconcile action (or deliberate hold) for a service.
type Decision struct {
	Service string
	From    int
	To      int
	Reason  string
}

// Controller is the reconcile loop: each tick it polls every managed
// service's replicas for load reports, aggregates them, asks the policy for
// a desired count, and closes the gap through the Spawner. Replica
// membership changes flow through the registry, so balancers re-resolve on
// their own.
type Controller struct {
	cfg ControllerConfig

	mu      sync.Mutex
	clients map[string]*rpc.Client // report probes, keyed service+addr
	history map[string][]int       // replica count per tick, per service

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewController builds a controller; Start begins reconciling.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 50 * time.Millisecond
	}
	c := &Controller{
		cfg:     cfg,
		clients: make(map[string]*rpc.Client),
		history: make(map[string][]int),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if c.cfg.fetch == nil {
		c.cfg.fetch = c.fetchReport
	}
	return c
}

// Start launches the reconcile loop in its own goroutine.
func (c *Controller) Start() {
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the loop and waits for the in-flight tick to finish, then
// closes the report-probe clients. Replicas keep running: shutting the
// deployment down is the app's job, not the autoscaler's.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.mu.Lock()
		for _, cl := range c.clients {
			cl.Close() //nolint:errcheck // best-effort teardown
		}
		c.clients = make(map[string]*rpc.Client)
		c.mu.Unlock()
	})
}

// Tick runs one reconcile pass over every managed service and returns the
// decisions taken. Exported so experiments and tests can drive reconciling
// deterministically instead of racing the wall-clock loop.
func (c *Controller) Tick() []Decision {
	ctx := context.Background()
	decisions := make([]Decision, 0, len(c.cfg.Services))
	for _, ms := range c.cfg.Services {
		decisions = append(decisions, c.reconcile(ctx, ms))
	}
	return decisions
}

func (c *Controller) reconcile(ctx context.Context, ms ManagedService) Decision {
	addrs := c.cfg.Registry.Lookup(ms.Name)
	have := len(addrs)
	c.recordHistory(ms.Name, have)

	reports := make([]LoadReport, 0, len(addrs))
	for _, addr := range addrs {
		r, err := c.cfg.fetch(ctx, ms.Name, addr)
		if err != nil {
			continue // a mute replica contributes no signal this pass
		}
		r.Service, r.Addr = ms.Name, addr
		reports = append(reports, r)
	}

	agg := AggregateReports(ms.Name, have, reports)
	want := c.cfg.Policy.Desired(agg)
	lo, hi := ms.bounds()
	if want < lo {
		want = lo
	}
	if want > hi {
		want = hi
	}
	if have == 0 {
		// Nothing registered: the tier isn't controller-spawned yet (or was
		// torn down). Spawning from zero without a template is not ours to
		// guess; hold and report.
		return Decision{Service: ms.Name, From: 0, To: 0, Reason: "no live replicas"}
	}
	if want == have {
		return Decision{Service: ms.Name, From: have, To: have, Reason: "steady"}
	}

	if want > have {
		for i := have; i < want; i++ {
			if _, err := c.cfg.Spawner.Spawn(ms.Name); err != nil {
				return Decision{Service: ms.Name, From: have, To: i,
					Reason: fmt.Sprintf("scale-up stopped: %v", err)}
			}
		}
		return Decision{Service: ms.Name, From: have, To: want,
			Reason: fmt.Sprintf("%s: scale up", c.cfg.Policy.Name())}
	}

	// Scale down: stop the highest-sorted addresses — newest first under
	// the app's sequential instance naming — so the tier's founding
	// replicas (whose clients other tiers may have cached outside the
	// balancer) go last.
	victims := append([]string(nil), addrs...)
	sort.Sort(sort.Reverse(sort.StringSlice(victims)))
	for _, addr := range victims[:have-want] {
		if err := c.cfg.Spawner.Stop(ms.Name, addr); err != nil {
			return Decision{Service: ms.Name, From: have, To: have,
				Reason: fmt.Sprintf("scale-down stopped: %v", err)}
		}
		c.dropClient(ms.Name, addr)
	}
	return Decision{Service: ms.Name, From: have, To: want,
		Reason: fmt.Sprintf("%s: scale down", c.cfg.Policy.Name())}
}

// fetchReport probes one replica over a cached direct client.
func (c *Controller) fetchReport(ctx context.Context, service, addr string) (LoadReport, error) {
	key := service + "|" + addr
	c.mu.Lock()
	cl, ok := c.clients[key]
	if !ok {
		cl = rpc.NewClient(c.cfg.Network, service, addr, rpc.WithPoolSize(1))
		c.clients[key] = cl
	}
	c.mu.Unlock()
	return FetchReport(ctx, cl, c.cfg.FetchTimeout)
}

func (c *Controller) dropClient(service, addr string) {
	key := service + "|" + addr
	c.mu.Lock()
	if cl, ok := c.clients[key]; ok {
		delete(c.clients, key)
		cl.Close() //nolint:errcheck
	}
	c.mu.Unlock()
}

func (c *Controller) recordHistory(service string, replicas int) {
	c.mu.Lock()
	c.history[service] = append(c.history[service], replicas)
	c.mu.Unlock()
}

// History returns the replica count observed at each tick for a service —
// the experiment's scaling timeline.
func (c *Controller) History(service string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.history[service]...)
}
