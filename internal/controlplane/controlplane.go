// Package controlplane is the cluster manager for the live service stack —
// the layer the paper's cluster-management findings (Figs 17–19) need a
// real system to study: admission control at every replica, windowed load
// reporting from replica to controller, and a reconciler that scales tiers
// by starting and stopping live replicas through a Spawner.
//
// The three pieces compose but stand alone:
//
//   - Admission guards one replica: a bounded queue in front of the
//     handler pool, CoDel-style shedding when queueing delay stays above
//     target, and rejection of requests whose remaining deadline budget
//     cannot cover the tier's expected service time. Sheds return
//     transport.CodeOverloaded, which the client stack treats as
//     retry-elsewhere-for-free and never as a breaker failure.
//   - LoadReport is the replica's windowed self-description (utilization,
//     queue depth, rates, recent percentiles), exported on the same RPC
//     server via a reserved method (or a reserved path on REST servers).
//   - Controller polls reports per managed service, aggregates them, asks
//     a Policy for the desired replica count, and reconciles through the
//     Spawner + registry so balancers follow within one watch
//     notification.
//
// Plane bundles them for core.App: install its hooks via
// core.Options.RPCServerHook/RESTServerHook and every replica the app
// starts gets admission control and a report endpoint automatically.
package controlplane
