package controlplane

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/registry"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// fakeClock is a manually-advanced clock shared by admission tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionQueueBoundSheds(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 2, CoDelTarget: -1, MinBudget: -1})
	ctx := context.Background()

	// Occupy the single worker.
	release, err := a.Admit(ctx)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}

	// Fill the queue with two blocked admits.
	var wg sync.WaitGroup
	queued := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queued <- struct{}{}
			rel, err := a.Admit(ctx)
			if err != nil {
				t.Errorf("queued admit: %v", err)
				return
			}
			rel()
		}()
	}
	<-queued
	<-queued
	// Queued gauge is incremented inside Admit; poll briefly until both
	// goroutines are parked on the semaphore.
	for i := 0; i < 1000 && a.queued.Value() < 2; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	if a.queued.Value() != 2 {
		t.Fatalf("queued = %d, want 2", a.queued.Value())
	}

	// The queue is full: the next arrival is shed without blocking.
	if _, err := a.Admit(ctx); !transport.IsCode(err, transport.CodeOverloaded) {
		t.Fatalf("overfull admit err = %v, want CodeOverloaded", err)
	}
	if got := a.shedQueue.Value(); got != 1 {
		t.Fatalf("shedQueue = %d, want 1", got)
	}

	release()
	wg.Wait()
	r := a.Report()
	if r.Admitted != 3 {
		t.Fatalf("Admitted = %d, want 3", r.Admitted)
	}
	if r.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", r.Shed)
	}
	if r.InFlight != 0 || r.QueueDepth != 0 {
		t.Fatalf("InFlight/QueueDepth = %d/%d, want 0/0", r.InFlight, r.QueueDepth)
	}
}

func TestAdmissionDeadlineBudgetSheds(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{CoDelTarget: -1, MinBudget: time.Millisecond, now: clk.now})

	// Teach the EWMA a ~10ms service time.
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	clk.advance(10 * time.Millisecond)
	rel()
	if est := a.expectedServiceTime(); est != 10*time.Millisecond {
		t.Fatalf("expectedServiceTime = %v, want 10ms", est)
	}

	// 3ms of budget < 10ms expected service time: shed.
	ctx, cancel := context.WithDeadline(context.Background(), clk.now().Add(3*time.Millisecond))
	defer cancel()
	if _, err := a.Admit(ctx); !transport.IsCode(err, transport.CodeOverloaded) {
		t.Fatalf("short-budget admit err = %v, want CodeOverloaded", err)
	}
	if got := a.shedOver.Value(); got != 1 {
		t.Fatalf("shedOver = %d, want 1", got)
	}

	// Ample budget is admitted.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.now().Add(time.Second))
	defer cancel2()
	rel2, err := a.Admit(ctx2)
	if err != nil {
		t.Fatalf("ample-budget admit: %v", err)
	}
	rel2()

	// A deadline-less request is never budget-shed.
	rel3, err := a.Admit(context.Background())
	if err != nil {
		t.Fatalf("no-deadline admit: %v", err)
	}
	rel3()
}

func TestCoDelStateMachine(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		CoDelTarget:   5 * time.Millisecond,
		CoDelInterval: 100 * time.Millisecond,
	})
	over := 20 * time.Millisecond
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

	if a.codelDrop(over, now) {
		t.Fatal("first over-target wait must only arm, not drop")
	}
	if a.codelDrop(over, now.Add(50*time.Millisecond)) {
		t.Fatal("over-target within the interval must not drop yet")
	}
	now = now.Add(110 * time.Millisecond) // a full interval above target
	if !a.codelDrop(over, now) {
		t.Fatal("a full interval above target must start dropping")
	}
	// While dropping, drops are paced: the next is scheduled
	// interval/sqrt(dropCount) later, not immediate.
	if a.codelDrop(over, now.Add(10*time.Millisecond)) {
		t.Fatal("drop before the scheduled gap")
	}
	if !a.codelDrop(over, now.Add(110*time.Millisecond)) {
		t.Fatal("second drop after the gap")
	}
	// A single below-target wait ends the episode and disarms.
	if a.codelDrop(time.Millisecond, now.Add(120*time.Millisecond)) {
		t.Fatal("below-target wait must not drop")
	}
	if a.codelDrop(over, now.Add(130*time.Millisecond)) {
		t.Fatal("after reset, an over-target wait must re-arm, not drop")
	}
}

func TestAdmissionCoDelShedsThroughAdmit(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{
		MaxConcurrent: 1,
		CoDelTarget:   5 * time.Millisecond,
		CoDelInterval: 100 * time.Millisecond,
		MinBudget:     -1,
		now:           clk.now,
	})
	// Hold the worker so a queued request accumulates over-target wait.
	// (Admitted first: its own zero wait would otherwise reset the episode
	// installed below — exactly the disarm-on-low-delay rule CoDel wants.)
	hold, err := a.Admit(context.Background())
	if err != nil {
		t.Fatalf("hold admit: %v", err)
	}
	// Place the state machine mid-episode with the next drop due, as a
	// sustained standing queue would have.
	a.mu.Lock()
	a.dropping = true
	a.firstAbove = clk.now().Add(-time.Second)
	a.dropNext = clk.now()
	a.dropCount = 1
	a.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		rel, err := a.Admit(context.Background())
		if err == nil {
			rel()
		}
		done <- err
	}()
	for i := 0; i < 1000 && a.queued.Value() < 1; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	clk.advance(20 * time.Millisecond)
	hold()
	if err := <-done; !transport.IsCode(err, transport.CodeOverloaded) {
		t.Fatalf("standing-queue admit err = %v, want CodeOverloaded", err)
	}
	if got := a.shedCoDel.Value(); got != 1 {
		t.Fatalf("shedCoDel = %d, want 1", got)
	}
}

func TestAdmissionUtilizationReport(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, CoDelTarget: -1, MinBudget: -1,
		Window: time.Second, now: clk.now})

	// One worker busy 500ms within the 1s window across 2 workers = 0.25.
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	clk.advance(500 * time.Millisecond)
	rel()
	clk.advance(100 * time.Millisecond) // land the busy slot inside the window
	r := a.Report()
	if r.Utilization < 0.2 || r.Utilization > 0.3 {
		t.Fatalf("Utilization = %v, want ~0.25", r.Utilization)
	}
	if r.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", r.Workers)
	}
	if r.P99Ns <= 0 || r.ServiceEWMANs <= 0 {
		t.Fatalf("P99Ns/ServiceEWMANs = %d/%d, want > 0", r.P99Ns, r.ServiceEWMANs)
	}
}

func TestReportRoundTripOverRPC(t *testing.T) {
	n := rpc.NewMem()
	srv := rpc.NewServer("svc")
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 4})
	srv.Use(Interceptor(a))
	RegisterReport(srv, a)
	addr, err := srv.Start(n, "svc:1")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	rel()

	cl := rpc.NewClient(n, "svc", addr)
	defer cl.Close()
	r, err := FetchReport(context.Background(), cl, time.Second)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if r.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", r.Workers)
	}
	if r.Admitted != 1 {
		t.Fatalf("Admitted = %d, want 1 (report method itself must bypass admission)", r.Admitted)
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := UtilizationThreshold{Up: 0.75, Down: 0.2}
	base := Aggregate{Replicas: 2, Reporting: 2, Workers: 4}

	hot := base
	hot.Utilization = 0.9
	if got := p.Desired(hot); got != 3 {
		t.Fatalf("hot desired = %d, want 3", got)
	}
	cold := base
	cold.Utilization = 0.1
	if got := p.Desired(cold); got != 1 {
		t.Fatalf("cold desired = %d, want 1", got)
	}
	mid := base
	mid.Utilization = 0.5
	if got := p.Desired(mid); got != 2 {
		t.Fatalf("mid desired = %d, want 2", got)
	}
	if got := p.Desired(Aggregate{Replicas: 2}); got != 2 {
		t.Fatalf("no-report desired = %d, want hold at 2", got)
	}
}

// TestFig18UpstreamMisScaling reproduces the paper's Fig 18 trap in
// miniature: an upstream tier whose workers are saturated because they are
// BLOCKED on a slow downstream — high utilization, long sojourn, but no
// local queue and no sheds. The utilization-threshold policy mis-scales it;
// the latency-aware policy holds, and instead scales the genuinely
// backlogged downstream tier.
func TestFig18UpstreamMisScaling(t *testing.T) {
	upstream := Aggregate{
		Service: "upstream", Replicas: 2, Reporting: 2,
		Workers:     4,
		Utilization: 0.95,                   // workers occupied...
		P99:         80 * time.Millisecond,  // ...with slow calls...
		QueueP99:    200 * time.Microsecond, // ...but nothing waits locally
		QueueDepth:  0,
		ShedPerSec:  0,
		RatePerSec:  50,
		ServiceTime: 80 * time.Millisecond, // inflated by downstream wait
	}
	downstream := Aggregate{
		Service: "downstream", Replicas: 2, Reporting: 2,
		Workers:     4,
		Utilization: 0.97,
		P99:         60 * time.Millisecond,
		QueueP99:    30 * time.Millisecond, // real local backlog
		QueueDepth:  40,
		ShedPerSec:  25, // refusing work it cannot serve
		RatePerSec:  90,
		ServiceTime: 8 * time.Millisecond,
	}

	threshold := UtilizationThreshold{Up: 0.75, Down: 0.2}
	if got := threshold.Desired(upstream); got <= upstream.Replicas {
		t.Fatalf("threshold on upstream = %d; expected mis-scale above %d (the Fig 18 failure this test documents)",
			got, upstream.Replicas)
	}

	latency := LatencyAware{QoS: 100 * time.Millisecond}
	if got := latency.Desired(upstream); got != upstream.Replicas {
		t.Fatalf("latency-aware on upstream = %d, want hold at %d (no local congestion)",
			got, upstream.Replicas)
	}
	if got := latency.Desired(downstream); got <= downstream.Replicas {
		t.Fatalf("latency-aware on downstream = %d, want > %d (sheds + queue wait demand capacity)",
			got, downstream.Replicas)
	}
}

func TestLatencyAwareScaleDownGuards(t *testing.T) {
	p := LatencyAware{QoS: 100 * time.Millisecond}
	idle := Aggregate{
		Replicas: 4, Reporting: 4, Workers: 4,
		Utilization: 0.05, RatePerSec: 10,
		P99: 5 * time.Millisecond, ServiceTime: 2 * time.Millisecond,
	}
	if got := p.Desired(idle); got != 3 {
		t.Fatalf("idle desired = %d, want 3 (one step down)", got)
	}
	// Same tier but p99 near QoS: hold even though idle.
	risky := idle
	risky.P99 = 90 * time.Millisecond
	if got := p.Desired(risky); got != 4 {
		t.Fatalf("latency-risky desired = %d, want hold at 4", got)
	}
	// Unbounded workers: never scaled.
	if got := p.Desired(Aggregate{Replicas: 2, Reporting: 2}); got != 2 {
		t.Fatalf("unbounded desired = %d, want 2", got)
	}
}

// fakeSpawner tracks spawn/stop calls and keeps the registry in sync the
// way a real spawner (core.App) would.
type fakeSpawner struct {
	reg  *registry.Registry
	mu   sync.Mutex
	next int
	ops  []string
}

func (f *fakeSpawner) Spawn(service string) (string, error) {
	f.mu.Lock()
	f.next++
	addr := fmt.Sprintf("%s:%02d", service, f.next)
	f.ops = append(f.ops, "spawn "+addr)
	f.mu.Unlock()
	f.reg.Register(service, addr)
	return addr, nil
}

func (f *fakeSpawner) Stop(service, addr string) error {
	f.mu.Lock()
	f.ops = append(f.ops, "stop "+addr)
	f.mu.Unlock()
	f.reg.Deregister(service, addr)
	return nil
}

func TestControllerTickReconciles(t *testing.T) {
	reg := registry.New()
	sp := &fakeSpawner{reg: reg}
	if _, err := sp.Spawn("tier"); err != nil {
		t.Fatal(err)
	}

	// Reports the controller "fetches": mutable so phases can shift load.
	var mu sync.Mutex
	report := LoadReport{Workers: 4, Utilization: 0.9}
	c := NewController(ControllerConfig{
		Registry: reg,
		Spawner:  sp,
		Policy:   UtilizationThreshold{Up: 0.75, Down: 0.2},
		Services: []ManagedService{{Name: "tier", Min: 1, Max: 3}},
		fetch: func(ctx context.Context, service, addr string) (LoadReport, error) {
			mu.Lock()
			defer mu.Unlock()
			return report, nil
		},
	})

	// Hot: one replica added per tick until Max.
	for i, want := range []int{2, 3, 3} {
		d := c.Tick()[0]
		if d.To != want {
			t.Fatalf("tick %d: To = %d (%s), want %d", i, d.To, d.Reason, want)
		}
	}
	if got := len(reg.Lookup("tier")); got != 3 {
		t.Fatalf("live replicas = %d, want 3 (clamped at Max)", got)
	}

	// Cold: drains back to Min one per tick, stopping newest first.
	mu.Lock()
	report.Utilization = 0.05
	mu.Unlock()
	for i, want := range []int{2, 1, 1} {
		d := c.Tick()[0]
		if d.To != want {
			t.Fatalf("cold tick %d: To = %d (%s), want %d", i, d.To, d.Reason, want)
		}
	}
	addrs := reg.Lookup("tier")
	if len(addrs) != 1 || addrs[0] != "tier:01" {
		t.Fatalf("survivors = %v, want the founding replica tier:01", addrs)
	}
	if h := c.History("tier"); len(h) != 6 || h[0] != 1 || h[2] != 3 {
		t.Fatalf("history = %v, want [1 2 3 3 3 2]", h)
	}

	sp.mu.Lock()
	ops := strings.Join(sp.ops, ", ")
	sp.mu.Unlock()
	want := "spawn tier:01, spawn tier:02, spawn tier:03, stop tier:03, stop tier:02"
	if ops != want {
		t.Fatalf("ops = %q, want %q", ops, want)
	}
}

func TestControllerHoldsOnMuteReplicas(t *testing.T) {
	reg := registry.New()
	sp := &fakeSpawner{reg: reg}
	if _, err := sp.Spawn("tier"); err != nil {
		t.Fatal(err)
	}
	c := NewController(ControllerConfig{
		Registry: reg,
		Spawner:  sp,
		Policy:   UtilizationThreshold{},
		Services: []ManagedService{{Name: "tier", Min: 1, Max: 3}},
		fetch: func(ctx context.Context, service, addr string) (LoadReport, error) {
			return LoadReport{}, fmt.Errorf("probe timeout")
		},
	})
	d := c.Tick()[0]
	if d.From != 1 || d.To != 1 {
		t.Fatalf("decision = %+v, want hold at 1 when no replica reports", d)
	}
}

// TestOverloadRoundTripOverREST mirrors the rpc-side overload tests across
// the REST boundary: a shed from the admission adapter leaves the server as
// HTTP 429, and the client must decode it back to CodeOverloaded so the
// resilience stack treats it as a healthy shed — retried without consuming
// the retry budget, and invisible to the breaker's failure count.
func TestOverloadRoundTripOverREST(t *testing.T) {
	n := rpc.NewMem()
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, CoDelTarget: -1, MinBudget: -1})
	srv := rest.NewServer("svc")
	srv.Use(RESTInterceptor(a))
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	srv.Handle("GET /slow", func(ctx *rest.Ctx, body []byte) (any, error) {
		entered <- struct{}{}
		<-release
		return nil, nil
	})
	addr, err := srv.Start(n, "svc:1")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	var stats transport.Stats
	breakerMW, probe := transport.BreakerWithProbe(transport.BreakerConfig{Failures: 1})
	cl := rest.NewClient(n, "svc", addr, rest.WithMiddleware(
		transport.Retry(transport.RetryConfig{Attempts: 3, Stats: &stats}),
		breakerMW,
	))
	defer cl.Close()

	ctx := context.Background()
	var held sync.WaitGroup
	// Occupy the single worker, then the single queue slot.
	held.Add(1)
	go func() {
		defer held.Done()
		if err := cl.Do(ctx, "GET", "/slow", nil, nil); err != nil {
			t.Errorf("held request: %v", err)
		}
	}()
	<-entered
	held.Add(1)
	go func() {
		defer held.Done()
		if err := cl.Do(ctx, "GET", "/slow", nil, nil); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Report().QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Every further request sheds. Fire enough that, were overload charged
	// to the retry budget, the default burst of 10 would drain and
	// RetryBudgetExhausted would fire.
	const shedCalls = 8
	for i := 0; i < shedCalls; i++ {
		err := cl.Do(ctx, "GET", "/slow", nil, nil)
		if !transport.IsCode(err, transport.CodeOverloaded) {
			t.Fatalf("shed request error = %v, want CodeOverloaded round-tripped via 429", err)
		}
		if !transport.Retryable(err) {
			t.Fatalf("decoded shed %v not retryable — lb failover would skip healthy replicas", err)
		}
	}

	// Each shed call burned all three attempts, exempt from the budget...
	if got, want := stats.Retries.Value(), int64(shedCalls*2); got != want {
		t.Fatalf("Retries = %d, want %d (overload retried without budget tokens)", got, want)
	}
	if got := stats.RetryBudgetExhausted.Value(); got != 0 {
		t.Fatalf("RetryBudgetExhausted = %d, want 0 (overload is budget-exempt)", got)
	}
	// ...and none of them counted as a breaker failure (Failures: 1 would
	// have tripped on the first one).
	if state := probe(); state != "closed" {
		t.Fatalf("breaker %s after %d sheds, want closed (sheds are healthy)", state, shedCalls)
	}

	close(release)
	held.Wait()
	if got := a.Report().Shed; got < shedCalls {
		t.Fatalf("server recorded %d sheds, want >= %d", got, shedCalls)
	}
}

func TestLagAwarePolicy(t *testing.T) {
	p := LagAware{TargetPerReplica: 32}
	cases := []struct {
		agg  Aggregate
		want int
	}{
		// Backlog of 100 against a 32/replica target: jump straight to 4.
		{Aggregate{Replicas: 1, Reporting: 1, Lag: 100}, 4},
		// Backlog within the current tier's target: hold.
		{Aggregate{Replicas: 4, Reporting: 4, Lag: 120}, 4},
		// Fully drained: release one replica per pass, never below 1.
		{Aggregate{Replicas: 4, Reporting: 4, Lag: 0}, 3},
		{Aggregate{Replicas: 1, Reporting: 1, Lag: 0}, 1},
		// No reports: hold, lag unknown is not lag zero.
		{Aggregate{Replicas: 3, Reporting: 0, Lag: 0}, 3},
	}
	for i, c := range cases {
		if got := p.Desired(c.agg); got != c.want {
			t.Errorf("case %d: Desired(%+v) = %d, want %d", i, c.agg, got, c.want)
		}
	}
}

func TestAggregateLagIsMaxNotSum(t *testing.T) {
	// Three members of one consumer group each report the same shared
	// backlog; summing would triple-count it and over-scale 3x.
	agg := AggregateReports("consumers", 3, []LoadReport{
		{Lag: 40}, {Lag: 40}, {Lag: 38},
	})
	if agg.Lag != 40 {
		t.Fatalf("Aggregate.Lag = %d, want 40 (max)", agg.Lag)
	}
}

// TestLagDrivenAutoscaleUp is the acceptance test for lag-driven
// autoscaling: a consumer tier whose broker backlog grows must be scaled up
// by the controller on lag alone — its request-side signals (utilization,
// queue depth) stay idle because async consumers pull work — and released
// again once the group drains.
func TestLagDrivenAutoscaleUp(t *testing.T) {
	reg := registry.New()
	sp := &fakeSpawner{reg: reg}
	if _, err := sp.Spawn("fanout"); err != nil {
		t.Fatal(err)
	}

	// The shared group backlog every replica reports: it shrinks as the
	// tier grows, the way real consumers eat a fixed backlog.
	var mu sync.Mutex
	lag := int64(100)
	c := NewController(ControllerConfig{
		Registry: reg,
		Spawner:  sp,
		Policy:   LagAware{TargetPerReplica: 25},
		Services: []ManagedService{{Name: "fanout", Min: 1, Max: 8}},
		fetch: func(ctx context.Context, service, addr string) (LoadReport, error) {
			mu.Lock()
			defer mu.Unlock()
			// Request-side signals idle: lag is the only thing moving.
			return LoadReport{Workers: 2, Utilization: 0.01, Lag: lag}, nil
		},
	})

	// Backlog 100 @ 25/replica: one tick jumps 1 -> 4, no per-tick creep.
	d := c.Tick()[0]
	if d.From != 1 || d.To != 4 {
		t.Fatalf("scale-up tick: %d -> %d (%s), want 1 -> 4", d.From, d.To, d.Reason)
	}
	if got := len(reg.Lookup("fanout")); got != 4 {
		t.Fatalf("live replicas = %d, want 4", got)
	}

	// The grown tier eats the backlog; a partially-drained group holds.
	mu.Lock()
	lag = 60
	mu.Unlock()
	if d := c.Tick()[0]; d.To != 4 {
		t.Fatalf("draining tick: To = %d (%s), want hold at 4", d.To, d.Reason)
	}

	// Drained: release one per tick back toward Min.
	mu.Lock()
	lag = 0
	mu.Unlock()
	for i, want := range []int{3, 2, 1, 1} {
		if d := c.Tick()[0]; d.To != want {
			t.Fatalf("drain tick %d: To = %d (%s), want %d", i, d.To, d.Reason, want)
		}
	}
}

func TestLagProbeFlowsThroughReport(t *testing.T) {
	p := NewPlane(PlaneConfig{})
	srv := rpc.NewServer("consumer")
	p.HookRPC("consumer", srv)
	// Probe attached AFTER the replica started: must reach it anyway.
	var lag atomic.Int64
	lag.Store(17)
	p.SetLagProbe("consumer", lag.Load)
	r := p.Admissions("consumer")[0].Report()
	if r.Lag != 17 {
		t.Fatalf("Report.Lag = %d, want 17", r.Lag)
	}
	// Replicas added after the probe inherit it.
	srv2 := rpc.NewServer("consumer")
	p.HookRPC("consumer", srv2)
	if r := p.Admissions("consumer")[1].Report(); r.Lag != 17 {
		t.Fatalf("late replica Report.Lag = %d, want 17", r.Lag)
	}
}
