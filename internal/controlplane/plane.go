package controlplane

import (
	"fmt"
	"sync"

	"dsb/internal/core"
	"dsb/internal/rest"
	"dsb/internal/rpc"
)

// PlaneConfig configures per-service admission control for a Plane.
type PlaneConfig struct {
	// Default is the admission config for services without an entry in
	// PerService. A zero Default still bounds queues and sheds on CoDel and
	// deadline budget (worker pools stay unbounded unless set).
	Default AdmissionConfig
	// PerService overrides Default by service name.
	PerService map[string]AdmissionConfig
}

// Plane installs the replica-side control plane on every server a core.App
// starts: wire its HookRPC/HookREST into core.Options.RPCServerHook /
// RESTServerHook and each replica gets an admission controller plus a
// load-report endpoint. The plane keeps the per-replica Admission handles
// so tests and experiments can inspect shed counters directly.
type Plane struct {
	cfg PlaneConfig

	mu         sync.Mutex
	admissions map[string][]*Admission // by service, in start order
	lagProbes  map[string]func() int64 // by service; attached to every replica
}

// NewPlane builds a Plane.
func NewPlane(cfg PlaneConfig) *Plane {
	return &Plane{
		cfg:        cfg,
		admissions: make(map[string][]*Admission),
		lagProbes:  make(map[string]func() int64),
	}
}

func (p *Plane) admissionFor(service string) *Admission {
	cfg := p.cfg.Default
	if c, ok := p.cfg.PerService[service]; ok {
		cfg = c
	}
	a := NewAdmission(cfg)
	p.mu.Lock()
	p.admissions[service] = append(p.admissions[service], a)
	probe := p.lagProbes[service]
	p.mu.Unlock()
	if probe != nil {
		a.SetLagProbe(probe)
	}
	return a
}

// SetLagProbe attaches a consumer-backlog source to every replica of an
// async-consumer service — those already started and those spawned later —
// so their load reports carry the lag a LagAware policy scales on. Every
// replica of the service shares the probe: group backlog is a per-group
// fact, not a per-replica one, and the aggregator takes the max.
func (p *Plane) SetLagProbe(service string, fn func() int64) {
	p.mu.Lock()
	p.lagProbes[service] = fn
	existing := append([]*Admission(nil), p.admissions[service]...)
	p.mu.Unlock()
	for _, a := range existing {
		a.SetLagProbe(fn)
	}
}

// HookRPC matches core.Options.RPCServerHook: it guards the replica with a
// fresh Admission and registers its load-report method.
func (p *Plane) HookRPC(service string, srv *rpc.Server) {
	a := p.admissionFor(service)
	srv.Use(Interceptor(a))
	RegisterReport(srv, a)
}

// HookREST matches core.Options.RESTServerHook.
func (p *Plane) HookREST(service string, srv *rest.Server) {
	a := p.admissionFor(service)
	srv.Use(RESTInterceptor(a))
	RegisterRESTReport(srv, a)
}

// Admissions returns the admission controllers created for a service so
// far, one per replica in start order.
func (p *Plane) Admissions(service string) []*Admission {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Admission(nil), p.admissions[service]...)
}

// AppSpawner adapts a core.App into the controller's Spawner: services are
// made scalable by registering their handler-install function once, after
// which Spawn starts a live replica through the app (picking up the app's
// server hooks, registry entry, and tracing) and Stop deregisters and
// drains it.
type AppSpawner struct {
	app *core.App

	mu        sync.Mutex
	templates map[string]func(*rpc.Server)
	instances map[string]map[string]*core.Instance // service → addr → handle
}

// NewAppSpawner wraps an app.
func NewAppSpawner(app *core.App) *AppSpawner {
	return &AppSpawner{
		app:       app,
		templates: make(map[string]func(*rpc.Server)),
		instances: make(map[string]map[string]*core.Instance),
	}
}

// Define registers the handler-install template Spawn uses for a service.
// Only stateless tiers should be defined: every spawned replica runs the
// same registration.
func (s *AppSpawner) Define(service string, register func(*rpc.Server)) {
	s.mu.Lock()
	s.templates[service] = register
	s.mu.Unlock()
}

// Spawn implements Spawner.
func (s *AppSpawner) Spawn(service string) (string, error) {
	s.mu.Lock()
	register, ok := s.templates[service]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("controlplane: no template for %q", service)
	}
	inst, err := s.app.StartRPCInstance(service, register)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	byAddr, ok := s.instances[service]
	if !ok {
		byAddr = make(map[string]*core.Instance)
		s.instances[service] = byAddr
	}
	byAddr[inst.Addr] = inst
	s.mu.Unlock()
	return inst.Addr, nil
}

// Stop implements Spawner: deregister first (balancers stop routing), then
// drain and close. Only replicas this spawner started can be stopped — the
// controller's Min floor should cover the statically-started ones.
func (s *AppSpawner) Stop(service, addr string) error {
	s.mu.Lock()
	inst := s.instances[service][addr]
	if inst != nil {
		delete(s.instances[service], addr)
	}
	s.mu.Unlock()
	if inst == nil {
		return fmt.Errorf("controlplane: %s replica %s not spawner-managed", service, addr)
	}
	return inst.Stop()
}
