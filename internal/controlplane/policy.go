package controlplane

import (
	"math"
	"time"
)

// Aggregate is the per-service view the controller hands a Policy: the
// replica reports of one tier folded together.
type Aggregate struct {
	Service string
	// Replicas is the registry's current instance count; Reporting is how
	// many answered the report probe this pass.
	Replicas  int
	Reporting int
	// Workers is the mean per-replica worker-pool size (0 = unbounded).
	Workers float64
	// Utilization is the mean worker utilization across reporting replicas.
	Utilization float64
	// QueueDepth and InFlight are summed across replicas.
	QueueDepth int64
	InFlight   int64
	// RatePerSec and ShedPerSec are summed: completed demand and refused
	// demand. Their sum approximates offered load on the tier.
	RatePerSec float64
	ShedPerSec float64
	// P99 is the worst replica sojourn p99; QueueP99 the worst queue-wait
	// p99 — congestion at THIS tier, downstream time excluded.
	P99      time.Duration
	QueueP99 time.Duration
	// ServiceTime is the mean expected per-request service time.
	ServiceTime time.Duration
	// Lag is the worst consumer-group backlog any replica reports. Max, not
	// sum: every member of a consumer group reports the same shared group
	// backlog, so summing would multiply it by the replica count.
	Lag int64
}

// AggregateReports folds replica reports into the policy input.
func AggregateReports(service string, replicas int, reports []LoadReport) Aggregate {
	agg := Aggregate{Service: service, Replicas: replicas, Reporting: len(reports)}
	if len(reports) == 0 {
		return agg
	}
	var workers, util, svc float64
	for _, r := range reports {
		workers += float64(r.Workers)
		util += r.Utilization
		svc += float64(r.ServiceEWMANs)
		agg.QueueDepth += r.QueueDepth
		agg.InFlight += r.InFlight
		agg.RatePerSec += r.RatePerSec
		agg.ShedPerSec += r.ShedPerSec
		if p := time.Duration(r.P99Ns); p > agg.P99 {
			agg.P99 = p
		}
		if p := time.Duration(r.QueueP99Ns); p > agg.QueueP99 {
			agg.QueueP99 = p
		}
		if r.Lag > agg.Lag {
			agg.Lag = r.Lag
		}
	}
	n := float64(len(reports))
	agg.Workers = workers / n
	agg.Utilization = util / n
	agg.ServiceTime = time.Duration(svc / n)
	return agg
}

// Policy maps an aggregate load view to a desired replica count. The
// controller clamps the answer to the service's Min/Max.
type Policy interface {
	Name() string
	Desired(agg Aggregate) int
}

// UtilizationThreshold is the autoscaler of the paper's cluster-management
// study: scale up when mean worker utilization crosses Up, down when it
// falls below Down. Simple and widely deployed — and exactly the policy
// that mis-scales in Fig 18, because utilization cannot distinguish a tier
// doing work from a tier whose workers are blocked on a slow downstream.
type UtilizationThreshold struct {
	Up   float64 // default 0.75
	Down float64 // default 0.20
	Step int     // replicas added per trigger (default 1)
}

// Name implements Policy.
func (p UtilizationThreshold) Name() string { return "threshold" }

// Desired implements Policy.
func (p UtilizationThreshold) Desired(agg Aggregate) int {
	up, down, step := p.Up, p.Down, p.Step
	if up <= 0 {
		up = 0.75
	}
	if down <= 0 {
		down = 0.20
	}
	if step <= 0 {
		step = 1
	}
	if agg.Reporting == 0 || agg.Workers <= 0 {
		return agg.Replicas // no signal, or unbounded workers: hold
	}
	if agg.Utilization >= up {
		return agg.Replicas + step
	}
	if agg.Utilization <= down {
		return agg.Replicas - 1
	}
	return agg.Replicas
}

// LagAware autoscales async consumer tiers on their reported broker
// backlog. Request-side policies are blind here: an async consumer's
// admission queue is always near-empty (it pulls work at its own pace) and
// its utilization says nothing about how far behind the group has fallen.
// Lag — messages the broker holds that no one has processed — is the
// backlog itself, so the policy sizes the tier directly from it: enough
// replicas that each one's share of the backlog is at most
// TargetPerReplica. Scale-up jumps straight to that size; scale-down
// releases one replica per pass only once the group is fully drained, so a
// bursty producer doesn't flap the tier.
type LagAware struct {
	// TargetPerReplica is the backlog one replica is expected to absorb
	// (default 32 messages).
	TargetPerReplica int
}

// Name implements Policy.
func (p LagAware) Name() string { return "lag-aware" }

// Desired implements Policy.
func (p LagAware) Desired(agg Aggregate) int {
	target := p.TargetPerReplica
	if target <= 0 {
		target = 32
	}
	if agg.Reporting == 0 {
		return agg.Replicas // no signal: hold
	}
	needed := int(math.Ceil(float64(agg.Lag) / float64(target)))
	if needed > agg.Replicas {
		return needed // jump to the backlog-implied size, no one-step creep
	}
	if agg.Lag == 0 && agg.Replicas > 1 {
		return agg.Replicas - 1
	}
	return agg.Replicas
}

// LatencyAware scales on the tier's own congestion signals — queue wait,
// sheds, backlog — and sizes the jump from demand (completed + shed load)
// against measured per-replica capacity, Little's-law style. Utilization
// never triggers a scale-up on its own: a tier whose workers are blocked
// on a slow downstream shows high utilization but an empty local queue and
// no sheds, and adding replicas there (Fig 18's mistake) burns machines
// without moving the bottleneck.
type LatencyAware struct {
	// QoS is the end-to-end latency target used for the scale-down guard.
	QoS time.Duration
	// Headroom over-provisions above measured demand (default 1.25).
	Headroom float64
	// CongestWait is the queue-wait p99 above which the tier counts as
	// congested (default 2ms).
	CongestWait time.Duration
	// DownUtil is the utilization below which an uncongested tier may
	// release one replica per pass (default 0.35).
	DownUtil float64
}

// Name implements Policy.
func (p LatencyAware) Name() string { return "latency-aware" }

// Desired implements Policy.
func (p LatencyAware) Desired(agg Aggregate) int {
	headroom, congestWait, downUtil := p.Headroom, p.CongestWait, p.DownUtil
	if headroom <= 1 {
		headroom = 1.25
	}
	if congestWait <= 0 {
		congestWait = 2 * time.Millisecond
	}
	if downUtil <= 0 {
		downUtil = 0.35
	}
	if agg.Reporting == 0 || agg.Workers <= 0 || agg.ServiceTime <= 0 {
		return agg.Replicas // unbounded or signal-less tiers are never the bottleneck we can fix
	}

	// Per-replica capacity from its own measurements: workers / service
	// time. The EWMA service time includes downstream waits, so capacity
	// shrinks when downstream slows — conservative in the right direction.
	perReplica := agg.Workers / agg.ServiceTime.Seconds()
	if perReplica <= 0 {
		return agg.Replicas
	}
	// Demand = what we completed + what we refused: sheds are demand the
	// tier failed to serve, the exact gap scaling should close.
	demand := agg.RatePerSec + agg.ShedPerSec
	needed := int(math.Ceil(demand * headroom / perReplica))
	// Extra capacity to drain the standing backlog within ~one report
	// window rather than just keeping pace with arrivals.
	if agg.QueueDepth > 0 {
		needed += int(math.Ceil(float64(agg.QueueDepth) / math.Max(agg.Workers, 1)))
	}

	congested := agg.ShedPerSec > 0 ||
		agg.QueueP99 > congestWait ||
		float64(agg.QueueDepth) > agg.Workers*float64(agg.Replicas)

	if needed > agg.Replicas {
		if congested {
			return needed // jump straight to demand, no one-step creep
		}
		// High estimated demand but no local congestion: the tier is
		// keeping up (the estimate is inflated by downstream time, or
		// headroom). Holding here is what avoids Fig 18's upstream
		// mis-scale.
		return agg.Replicas
	}
	// Scale down one step at a time, only when comfortably idle AND
	// latency-safe, so release never causes a shed storm it must undo.
	if needed < agg.Replicas && !congested && agg.Utilization < downUtil &&
		(p.QoS <= 0 || agg.P99 < p.QoS/2) {
		return agg.Replicas - 1
	}
	return agg.Replicas
}
