package controlplane

import (
	"context"
	"time"

	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// LoadMethod is the reserved RPC method every admission-guarded replica
// answers with its LoadReport; it bypasses admission control.
const LoadMethod = "controlplane.Load"

// LoadPath is the REST equivalent of LoadMethod.
const LoadPath = "/-/controlplane/load"

// LoadReport is one replica's windowed self-description, the raw input the
// controller aggregates per service. All latencies are nanoseconds so the
// report codecs stay integer-only.
type LoadReport struct {
	// Service and Addr identify the replica; the controller fills them
	// from the registry entry it queried, so replicas need not know their
	// own public address.
	Service string
	Addr    string

	// Workers is the replica's worker-pool size (0 = unbounded).
	Workers int
	// Utilization is the fraction of worker time spent in handlers over
	// the window, in [0,1]; meaningless (0) for unbounded replicas.
	Utilization float64
	// QueueDepth and InFlight are instantaneous.
	QueueDepth int64
	InFlight   int64
	// RatePerSec counts completed requests over the window; ShedPerSec
	// counts admission rejections.
	RatePerSec float64
	ShedPerSec float64
	// P50Ns/P99Ns summarize sojourn time (queue wait + service) over the
	// window. QueueP99Ns is wait alone — the signal that distinguishes a
	// genuinely backlogged tier from an upstream tier whose handlers are
	// merely blocked on a slow downstream (Fig 18's mis-scaling trap).
	P50Ns      int64
	P99Ns      int64
	QueueP99Ns int64
	// ServiceEWMANs is the replica's expected per-request service time.
	ServiceEWMANs int64
	// Admitted and Shed are lifetime totals.
	Admitted int64
	Shed     int64
	// Lag is the consumer backlog this replica works against (queued +
	// in-flight messages in its consumer group), filled by a lag probe when
	// the replica is an async consumer. It measures work accepted by a
	// broker but not yet processed — invisible to request-side signals like
	// queue depth or utilization, because an async producer's publish
	// returns at broker ack. Zero for ordinary request-serving replicas.
	Lag int64
}

// RegisterReport installs the load-report method on an RPC server.
func RegisterReport(srv *rpc.Server, a *Admission) {
	svcutil.Handle(srv, LoadMethod, func(ctx *rpc.Ctx, req *struct{}) (*LoadReport, error) {
		r := a.Report()
		return &r, nil
	})
}

// RegisterRESTReport installs the load-report path on a REST server.
func RegisterRESTReport(srv *rest.Server, a *Admission) {
	srv.Handle("GET "+LoadPath, func(ctx *rest.Ctx, body []byte) (any, error) {
		return a.Report(), nil
	})
}

// FetchReport queries one replica's load report over a short deadline; the
// controller calls it per registry entry each reconcile pass.
func FetchReport(ctx context.Context, client svcutil.Caller, timeout time.Duration) (LoadReport, error) {
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var r LoadReport
	err := client.Call(ctx, LoadMethod, struct{}{}, &r)
	return r, err
}
