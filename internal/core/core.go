// Package core is the composition root for live-mode applications: it
// boots microservice servers on a shared transport, registers them for
// discovery, wires load-balanced clients between tiers, and threads the
// distributed tracer through every hop. Each end-to-end application in
// internal/services builds itself on top of an App.
package core

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/lb"
	"dsb/internal/registry"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/shard"
	"dsb/internal/trace"
	"dsb/internal/transport"
)

// App owns the shared infrastructure of one running application: network,
// registry, tracer, and every server and client started through it.
type App struct {
	Name     string
	Net      rpc.Network
	Registry *registry.Registry
	Tracer   *trace.Tracer
	Traces   *trace.Store
	// Resilience, when non-nil, is the tail-tolerance bundle installed on
	// every load-balanced client the app wires (see Options.Resilience).
	Resilience *transport.ResilienceConfig
	// Transport exposes the resilience middleware counters (retries, hedge
	// wins, breaker trips) when Resilience is enabled.
	Transport *transport.Stats

	collector *trace.Collector
	instance  atomic.Uint64
	clientMW  []transport.Middleware
	rpcHook   func(service string, srv *rpc.Server)
	restHook  func(service string, srv *rest.Server)
	leaseTTL  time.Duration

	mu        sync.Mutex
	closers   []io.Closer
	servers   []*rpc.Server
	rests     []*rest.Server
	instances map[string][]*Instance
	closed    bool
}

// Options configure an App.
type Options struct {
	// Network overrides the transport; nil means a fresh in-memory network.
	Network rpc.Network
	// DisableTracing turns off span collection.
	DisableTracing bool
	// TraceBuffer sizes the collector channel (0 = default).
	TraceBuffer int
	// Resilience, when non-nil, installs the deadline-budget → retry →
	// hedge stack on every load-balanced client the app wires, plus one
	// circuit breaker per backend replica. Use transport.NewResilience()
	// for the all-defaults bundle.
	Resilience *transport.ResilienceConfig
	// ClientMiddleware is appended to every client the app wires, between
	// tracing and the resilience stack (fault injection hooks in here).
	ClientMiddleware []transport.Middleware
	// RPCServerHook, when set, runs for every RPC server instance the app
	// starts — after handlers are registered, before it begins listening.
	// The control plane installs admission control and the load-report
	// endpoint here, so every replica of every tier gets them uniformly.
	RPCServerHook func(service string, srv *rpc.Server)
	// RESTServerHook is RPCServerHook for REST servers.
	RESTServerHook func(service string, srv *rest.Server)
	// LeaseTTL, when positive, registers every instance under a health
	// lease renewed by a background heartbeat (every TTL/3). A replica that
	// stops heartbeating — Instance.Kill, or a wedged process — is evicted
	// from the registry within one TTL and balancers drop it via Changed.
	// Zero keeps plain registrations that only explicit deregistration
	// removes.
	LeaseTTL time.Duration
}

// NewApp creates an application named name.
func NewApp(name string, opts Options) *App {
	a := &App{
		Name: name, Net: opts.Network, Registry: registry.New(),
		clientMW: opts.ClientMiddleware,
		rpcHook:  opts.RPCServerHook, restHook: opts.RESTServerHook,
		leaseTTL:  opts.LeaseTTL,
		instances: make(map[string][]*Instance),
	}
	if a.Net == nil {
		a.Net = rpc.NewMem()
	}
	if !opts.DisableTracing {
		a.Traces = trace.NewStore()
		a.collector = trace.NewCollector(a.Traces, opts.TraceBuffer)
		a.Tracer = trace.NewTracer(a.collector)
	}
	if opts.Resilience != nil {
		a.Resilience = opts.Resilience
		if a.Resilience.Stats == nil {
			a.Resilience.Stats = &transport.Stats{}
		}
		if a.Resilience.Annotate == nil && a.Tracer != nil {
			a.Resilience.Annotate = trace.Annotate
		}
		a.Transport = a.Resilience.Stats
	}
	return a
}

// StartRPC boots one instance of an RPC microservice: register is called to
// install handlers, then the server starts listening and is entered into
// the registry. It returns the instance address.
func (a *App) StartRPC(service string, register func(*rpc.Server)) (string, error) {
	inst, err := a.StartRPCInstance(service, register)
	if err != nil {
		return "", err
	}
	return inst.Addr, nil
}

// Instance is a handle to one running replica started through the app. Stop
// deregisters it (so balancers stop routing to it) and then drains and
// closes the server — the shutdown order the control plane's scale-down
// path depends on. Kill simulates a crash: the replica stops heartbeating
// and goes silent while its registration lingers until lease expiry (or
// forever, without leases) — the failure mode the chaos experiment drives.
type Instance struct {
	Service string
	Addr    string

	app  *App
	srv  *rpc.Server
	meta map[string]string
	once sync.Once

	mu      sync.Mutex
	stopHB  func()
	release func()
}

// Stop removes the replica from discovery, then closes its server, waiting
// for in-flight requests. Safe to call more than once; the app's Close also
// closes the underlying server idempotently.
func (i *Instance) Stop() error {
	var err error
	i.once.Do(func() {
		i.mu.Lock()
		release := i.release
		i.mu.Unlock()
		release()
		err = i.srv.Close()
	})
	return err
}

// Kill crashes the replica without the courtesies of Stop: the heartbeat
// halts and the server hangs — connections stay up, requests are read and
// dropped, nothing deregisters. Only a health-lease expiry (Options.
// LeaseTTL) or a manual Deregister gets the corpse out of the serving set.
func (i *Instance) Kill() {
	i.mu.Lock()
	stop := i.stopHB
	i.mu.Unlock()
	stop()
	i.srv.Hang()
}

// Revive restarts a killed replica in place: dispatch resumes and the
// instance re-enrolls in discovery — with its original metadata, so a
// revived shard replica rejoins the same replica set — under a fresh lease
// and heartbeat.
func (i *Instance) Revive() {
	i.srv.Resume()
	stopHB, release := i.app.enroll(i.Service, i.Addr, i.meta)
	i.mu.Lock()
	i.stopHB, i.release = stopHB, release
	i.mu.Unlock()
}

// StartRPCShard boots one replica of a sharded stateful service: like
// StartRPC, but the instance registers with its shard index as metadata
// (shard.MetaShard) so routing clients can group the service's replicas
// into replica sets. Every replica of every shard shares the one service
// name; only the metadata tells them apart.
func (a *App) StartRPCShard(service string, shardIdx int, register func(*rpc.Server)) (string, error) {
	inst, err := a.StartRPCShardInstance(service, shardIdx, register)
	if err != nil {
		return "", err
	}
	return inst.Addr, nil
}

// StartRPCShardInstance is StartRPCShard returning the replica handle.
func (a *App) StartRPCShardInstance(service string, shardIdx int, register func(*rpc.Server)) (*Instance, error) {
	meta := map[string]string{shard.MetaShard: strconv.Itoa(shardIdx)}
	return a.startRPCInstance(service, meta, register)
}

// StartRPCInstance is StartRPC returning a handle that can stop the replica
// individually — the Spawner primitive the control plane scales with.
func (a *App) StartRPCInstance(service string, register func(*rpc.Server)) (*Instance, error) {
	return a.startRPCInstance(service, nil, register)
}

func (a *App) startRPCInstance(service string, meta map[string]string, register func(*rpc.Server)) (*Instance, error) {
	srv := rpc.NewServer(service)
	if a.Tracer != nil {
		srv.Use(trace.ServerInterceptor(a.Tracer))
	}
	register(srv)
	if a.rpcHook != nil {
		a.rpcHook(service, srv)
	}
	addr, err := srv.Start(a.Net, a.instanceAddr(service))
	if err != nil {
		return nil, fmt.Errorf("start %s: %w", service, err)
	}
	inst := &Instance{Service: service, Addr: addr, app: a, srv: srv, meta: meta}
	inst.stopHB, inst.release = a.enroll(service, addr, meta)
	a.mu.Lock()
	a.servers = append(a.servers, srv)
	a.instances[service] = append(a.instances[service], inst)
	a.mu.Unlock()
	// App.Close tears servers down directly; releasing here too stops the
	// heartbeat goroutine of instances nobody Stop()ed individually.
	a.track(closerFunc(func() error {
		inst.mu.Lock()
		release := inst.release
		inst.mu.Unlock()
		release()
		return nil
	}))
	return inst, nil
}

// Instances returns the replica handles started for a service, in start
// order (stopped ones included — callers pick by Addr against the registry).
func (a *App) Instances(service string) []*Instance {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Instance, len(a.instances[service]))
	copy(out, a.instances[service])
	return out
}

// enroll places an address into discovery, carrying instance metadata when
// the replica has any (shard indices). With LeaseTTL set it registers under
// a lease kept alive by a heartbeat goroutine; stopHB halts the heartbeat
// without deregistering (the crash path — eviction is the registry's job
// now), release additionally removes the address (the clean path). Without
// leases, stopHB is a no-op and release deregisters.
func (a *App) enroll(service, addr string, meta map[string]string) (stopHB, release func()) {
	if a.leaseTTL <= 0 {
		a.Registry.RegisterInstance(service, addr, meta)
		return func() {}, func() { a.Registry.Deregister(service, addr) }
	}
	lease := a.Registry.RegisterLeaseMeta(service, addr, a.leaseTTL, meta)
	stop := make(chan struct{})
	var once sync.Once
	stopHB = func() { once.Do(func() { close(stop) }) }
	interval := a.leaseTTL / 3
	if interval <= 0 {
		interval = a.leaseTTL
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !lease.Renew() {
					return // evicted; only Revive brings the replica back
				}
			}
		}
	}()
	return stopHB, func() {
		stopHB()
		lease.Release()
	}
}

// StartREST boots one instance of a REST microservice, mirroring StartRPC.
func (a *App) StartREST(service string, register func(*rest.Server)) (string, error) {
	srv := rest.NewServer(service)
	if a.Tracer != nil {
		srv.Use(trace.RESTServerInterceptor(a.Tracer))
	}
	register(srv)
	if a.restHook != nil {
		a.restHook(service, srv)
	}
	addr, err := srv.Start(a.Net, a.instanceAddr(service))
	if err != nil {
		return "", fmt.Errorf("start %s: %w", service, err)
	}
	_, release := a.enroll(service, addr, nil)
	a.mu.Lock()
	a.rests = append(a.rests, srv)
	a.mu.Unlock()
	a.track(closerFunc(func() error { release(); return nil }))
	return addr, nil
}

// instanceAddr generates a unique listen address. The in-memory transport
// accepts any string; TCP callers should pass a Network that listens on
// 127.0.0.1 and would instead use port 0 — the Mem convention keeps
// addresses readable in traces and registry dumps.
func (a *App) instanceAddr(service string) string {
	// See through wrapping transports (the fault layer) to the concrete one.
	net := a.Net
	for {
		if _, isMem := net.(*rpc.Mem); isMem {
			// host:port shape keeps the address usable inside http URLs.
			return fmt.Sprintf("%s:%d", service, a.instance.Add(1))
		}
		u, ok := net.(interface{ Unwrap() rpc.Network })
		if !ok {
			return "127.0.0.1:0"
		}
		net = u.Unwrap()
	}
}

// clientNet returns the network clients of the named caller should dial
// through. A fault-injecting network (anything exposing Bind) is stamped
// with the caller's identity so directional rules — asymmetric partitions,
// per-pair resets — can tell who is dialing.
func (a *App) clientNet(caller string) rpc.Network {
	if b, ok := a.Net.(interface{ Bind(string) rpc.Network }); ok {
		return b.Bind(caller)
	}
	return a.Net
}

// faultMW returns the network's call-level fault middleware for the caller,
// when the app runs on a fault-injecting network.
func (a *App) faultMW(caller string) []transport.Middleware {
	if f, ok := a.Net.(interface {
		CallMiddleware(string) transport.Middleware
	}); ok {
		return []transport.Middleware{f.CallMiddleware(caller)}
	}
	return nil
}

// RPC returns a load-balanced, traced client from caller to every live
// instance of target. The backend set follows registry changes, so scaling
// target out or in — or losing a replica to lease expiry — redirects
// traffic without rewiring. The client's middleware chain composes,
// outermost first: tracing, app-wide client middleware, fault injection
// (when the network carries it), extra (per-wire middleware from the
// service config), and — when Options.Resilience is set — the
// deadline-budget → retry → hedge stack, with a circuit breaker per backend
// replica underneath.
func (a *App) RPC(caller, target string, extra ...transport.Middleware) (*lb.Balanced, error) {
	addrs, err := a.Registry.MustLookup(target)
	if err != nil {
		return nil, err
	}
	var mws []transport.Middleware
	if a.Tracer != nil {
		mws = append(mws, trace.ClientMiddleware(a.Tracer, caller))
	}
	mws = append(mws, a.clientMW...)
	mws = append(mws, a.faultMW(caller)...)
	mws = append(mws, extra...)
	opts := []lb.Option{}
	if a.Resilience != nil {
		mws = append(mws, a.Resilience.Stack()...)
		// The instrumented factory is BackendFactory plus a breaker-state
		// probe, so Balanced.Stats reports per-replica ejection state.
		opts = append(opts, lb.WithBackendInstrument(a.Resilience.InstrumentedBackendFactory()))
	}
	if len(mws) > 0 {
		opts = append(opts, lb.WithMiddleware(mws...))
	}
	bal := lb.New(a.clientNet(caller), target, addrs, &lb.RoundRobin{}, opts...)
	stop := make(chan struct{})
	go bal.FollowRegistry(a.Registry, stop)
	a.track(closerFunc(func() error {
		close(stop)
		return bal.Close()
	}))
	return bal, nil
}

// ShardedRPC returns a shard router from caller to the sharded service
// target, for tiers whose replicas were started with StartRPCShard. It is
// the stateful-tier sibling of RPC: the same middleware composition, but
// routing is by key rather than round-robin, and two layers move to
// per-replica positions. The circuit breaker (from Options.Resilience)
// instruments each replica individually, exactly as on the balanced path;
// fault injection moves *inside* the breaker — on a sharded tier a fault
// targets one replica address, and the breaker must time the injected
// slowness to eject that replica, not have the fault layer hide above it
// where every sibling would appear slow. Membership follows the registry,
// so lease eviction of a replica or a whole shard re-forms the ring.
func (a *App) ShardedRPC(caller, target string, extra ...transport.Middleware) (*shard.Router, error) {
	instances := a.Registry.Instances(target)
	if len(instances) == 0 {
		return nil, fmt.Errorf("registry: no instances of %q", target)
	}
	var mws []transport.Middleware
	if a.Tracer != nil {
		mws = append(mws, trace.ClientMiddleware(a.Tracer, caller))
	}
	mws = append(mws, a.clientMW...)
	mws = append(mws, extra...)
	opts := []shard.Option{}
	if a.Resilience != nil {
		mws = append(mws, a.Resilience.Stack()...)
		opts = append(opts, shard.WithReplicaInstrument(a.Resilience.InstrumentedBackendFactory()))
	}
	if fmws := a.faultMW(caller); len(fmws) > 0 {
		opts = append(opts, shard.WithReplicaMiddleware(func(string) []transport.Middleware {
			return fmws
		}))
	}
	if len(mws) > 0 {
		opts = append(opts, shard.WithMiddleware(mws...))
	}
	router := shard.NewRouter(a.clientNet(caller), target, opts...)
	router.Sync(instances)
	stop := make(chan struct{})
	go router.FollowRegistry(a.Registry, stop)
	a.track(closerFunc(func() error {
		close(stop)
		return router.Close()
	}))
	return router, nil
}

// REST returns a traced REST client from caller to target (first live
// instance; REST front doors are singletons in the suite's apps).
func (a *App) REST(caller, target string) (*rest.Client, error) {
	addrs, err := a.Registry.MustLookup(target)
	if err != nil {
		return nil, err
	}
	var mws []transport.Middleware
	if a.Tracer != nil {
		mws = append(mws, trace.ClientMiddleware(a.Tracer, caller))
	}
	mws = append(mws, a.clientMW...)
	mws = append(mws, a.faultMW(caller)...)
	var opts []rest.ClientOption
	if len(mws) > 0 {
		opts = append(opts, rest.WithMiddleware(mws...))
	}
	c := rest.NewClient(a.clientNet(caller), target, addrs[0], opts...)
	a.track(c)
	return c, nil
}

// FlushTraces waits for all submitted spans to reach the trace store.
func (a *App) FlushTraces() {
	if a.collector != nil {
		a.collector.Flush()
	}
}

// track remembers a closer for Close.
func (a *App) track(c io.Closer) {
	a.mu.Lock()
	a.closers = append(a.closers, c)
	a.mu.Unlock()
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// OnClose registers fn to run during Close, before the servers and trace
// collector shut down. Deployments register their long-running consumers
// (broker consumer groups) here, so forgetting an explicit deployment
// Close never leaks consume loops past the app they run on; fn must be
// idempotent, since callers may also close the deployment explicitly.
func (a *App) OnClose(fn func()) {
	a.track(closerFunc(func() error { fn(); return nil }))
}

// Close shuts down every client and server started through the app and
// stops trace collection.
func (a *App) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	closers := a.closers
	servers := a.servers
	rests := a.rests
	a.mu.Unlock()

	for _, c := range closers {
		c.Close() //nolint:errcheck // best-effort teardown
	}
	for _, s := range servers {
		s.Close() //nolint:errcheck
	}
	for _, s := range rests {
		s.Close() //nolint:errcheck
	}
	if a.collector != nil {
		a.collector.Close()
	}
	return nil
}
