// Package core is the composition root for live-mode applications: it
// boots microservice servers on a shared transport, registers them for
// discovery, wires load-balanced clients between tiers, and threads the
// distributed tracer through every hop. Each end-to-end application in
// internal/services builds itself on top of an App.
package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dsb/internal/lb"
	"dsb/internal/registry"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/trace"
	"dsb/internal/transport"
)

// App owns the shared infrastructure of one running application: network,
// registry, tracer, and every server and client started through it.
type App struct {
	Name     string
	Net      rpc.Network
	Registry *registry.Registry
	Tracer   *trace.Tracer
	Traces   *trace.Store
	// Resilience, when non-nil, is the tail-tolerance bundle installed on
	// every load-balanced client the app wires (see Options.Resilience).
	Resilience *transport.ResilienceConfig
	// Transport exposes the resilience middleware counters (retries, hedge
	// wins, breaker trips) when Resilience is enabled.
	Transport *transport.Stats

	collector *trace.Collector
	instance  atomic.Uint64
	clientMW  []transport.Middleware
	rpcHook   func(service string, srv *rpc.Server)
	restHook  func(service string, srv *rest.Server)

	mu      sync.Mutex
	closers []io.Closer
	servers []*rpc.Server
	rests   []*rest.Server
	closed  bool
}

// Options configure an App.
type Options struct {
	// Network overrides the transport; nil means a fresh in-memory network.
	Network rpc.Network
	// DisableTracing turns off span collection.
	DisableTracing bool
	// TraceBuffer sizes the collector channel (0 = default).
	TraceBuffer int
	// Resilience, when non-nil, installs the deadline-budget → retry →
	// hedge stack on every load-balanced client the app wires, plus one
	// circuit breaker per backend replica. Use transport.NewResilience()
	// for the all-defaults bundle.
	Resilience *transport.ResilienceConfig
	// ClientMiddleware is appended to every client the app wires, between
	// tracing and the resilience stack (fault injection hooks in here).
	ClientMiddleware []transport.Middleware
	// RPCServerHook, when set, runs for every RPC server instance the app
	// starts — after handlers are registered, before it begins listening.
	// The control plane installs admission control and the load-report
	// endpoint here, so every replica of every tier gets them uniformly.
	RPCServerHook func(service string, srv *rpc.Server)
	// RESTServerHook is RPCServerHook for REST servers.
	RESTServerHook func(service string, srv *rest.Server)
}

// NewApp creates an application named name.
func NewApp(name string, opts Options) *App {
	a := &App{
		Name: name, Net: opts.Network, Registry: registry.New(),
		clientMW: opts.ClientMiddleware,
		rpcHook:  opts.RPCServerHook, restHook: opts.RESTServerHook,
	}
	if a.Net == nil {
		a.Net = rpc.NewMem()
	}
	if !opts.DisableTracing {
		a.Traces = trace.NewStore()
		a.collector = trace.NewCollector(a.Traces, opts.TraceBuffer)
		a.Tracer = trace.NewTracer(a.collector)
	}
	if opts.Resilience != nil {
		a.Resilience = opts.Resilience
		if a.Resilience.Stats == nil {
			a.Resilience.Stats = &transport.Stats{}
		}
		if a.Resilience.Annotate == nil && a.Tracer != nil {
			a.Resilience.Annotate = trace.Annotate
		}
		a.Transport = a.Resilience.Stats
	}
	return a
}

// StartRPC boots one instance of an RPC microservice: register is called to
// install handlers, then the server starts listening and is entered into
// the registry. It returns the instance address.
func (a *App) StartRPC(service string, register func(*rpc.Server)) (string, error) {
	inst, err := a.StartRPCInstance(service, register)
	if err != nil {
		return "", err
	}
	return inst.Addr, nil
}

// Instance is a handle to one running replica started through the app. Stop
// deregisters it (so balancers stop routing to it) and then drains and
// closes the server — the shutdown order the control plane's scale-down
// path depends on.
type Instance struct {
	Service string
	Addr    string

	app  *App
	srv  *rpc.Server
	once sync.Once
}

// Stop removes the replica from discovery, then closes its server, waiting
// for in-flight requests. Safe to call more than once; the app's Close also
// closes the underlying server idempotently.
func (i *Instance) Stop() error {
	var err error
	i.once.Do(func() {
		i.app.Registry.Deregister(i.Service, i.Addr)
		err = i.srv.Close()
	})
	return err
}

// StartRPCInstance is StartRPC returning a handle that can stop the replica
// individually — the Spawner primitive the control plane scales with.
func (a *App) StartRPCInstance(service string, register func(*rpc.Server)) (*Instance, error) {
	srv := rpc.NewServer(service)
	if a.Tracer != nil {
		srv.Use(trace.ServerInterceptor(a.Tracer))
	}
	register(srv)
	if a.rpcHook != nil {
		a.rpcHook(service, srv)
	}
	addr, err := srv.Start(a.Net, a.instanceAddr(service))
	if err != nil {
		return nil, fmt.Errorf("start %s: %w", service, err)
	}
	a.Registry.Register(service, addr)
	a.mu.Lock()
	a.servers = append(a.servers, srv)
	a.mu.Unlock()
	return &Instance{Service: service, Addr: addr, app: a, srv: srv}, nil
}

// StartREST boots one instance of a REST microservice, mirroring StartRPC.
func (a *App) StartREST(service string, register func(*rest.Server)) (string, error) {
	srv := rest.NewServer(service)
	if a.Tracer != nil {
		srv.Use(trace.RESTServerInterceptor(a.Tracer))
	}
	register(srv)
	if a.restHook != nil {
		a.restHook(service, srv)
	}
	addr, err := srv.Start(a.Net, a.instanceAddr(service))
	if err != nil {
		return "", fmt.Errorf("start %s: %w", service, err)
	}
	a.Registry.Register(service, addr)
	a.mu.Lock()
	a.rests = append(a.rests, srv)
	a.mu.Unlock()
	return addr, nil
}

// instanceAddr generates a unique listen address. The in-memory transport
// accepts any string; TCP callers should pass a Network that listens on
// 127.0.0.1 and would instead use port 0 — the Mem convention keeps
// addresses readable in traces and registry dumps.
func (a *App) instanceAddr(service string) string {
	if _, isMem := a.Net.(*rpc.Mem); isMem {
		// host:port shape keeps the address usable inside http URLs.
		return fmt.Sprintf("%s:%d", service, a.instance.Add(1))
	}
	return "127.0.0.1:0"
}

// RPC returns a load-balanced, traced client from caller to every live
// instance of target. The backend set follows registry changes, so scaling
// target out or in redirects traffic without rewiring. The client's
// middleware chain composes, outermost first: tracing, app-wide client
// middleware, extra (per-wire middleware from the service config), and —
// when Options.Resilience is set — the deadline-budget → retry → hedge
// stack, with a circuit breaker per backend replica underneath.
func (a *App) RPC(caller, target string, extra ...transport.Middleware) (*lb.Balanced, error) {
	addrs, err := a.Registry.MustLookup(target)
	if err != nil {
		return nil, err
	}
	var mws []transport.Middleware
	if a.Tracer != nil {
		mws = append(mws, trace.ClientMiddleware(a.Tracer, caller))
	}
	mws = append(mws, a.clientMW...)
	mws = append(mws, extra...)
	opts := []lb.Option{}
	if a.Resilience != nil {
		mws = append(mws, a.Resilience.Stack()...)
		// The instrumented factory is BackendFactory plus a breaker-state
		// probe, so Balanced.Stats reports per-replica ejection state.
		opts = append(opts, lb.WithBackendInstrument(a.Resilience.InstrumentedBackendFactory()))
	}
	if len(mws) > 0 {
		opts = append(opts, lb.WithMiddleware(mws...))
	}
	bal := lb.New(a.Net, target, addrs, &lb.RoundRobin{}, opts...)
	stop := make(chan struct{})
	go a.followRegistry(bal, target, stop)
	a.track(closerFunc(func() error {
		close(stop)
		return bal.Close()
	}))
	return bal, nil
}

func (a *App) followRegistry(bal *lb.Balanced, target string, stop <-chan struct{}) {
	for {
		// Register the watch before reconciling so a change landing between
		// the two is never missed.
		ch := a.Registry.Changed(target)
		want := a.Registry.Lookup(target)
		wantSet := make(map[string]bool, len(want))
		for _, addr := range want {
			wantSet[addr] = true
			bal.AddBackend(addr)
		}
		for _, addr := range bal.Backends() {
			if !wantSet[addr] {
				bal.RemoveBackend(addr)
			}
		}
		select {
		case <-stop:
			return
		case <-ch:
		}
	}
}

// REST returns a traced REST client from caller to target (first live
// instance; REST front doors are singletons in the suite's apps).
func (a *App) REST(caller, target string) (*rest.Client, error) {
	addrs, err := a.Registry.MustLookup(target)
	if err != nil {
		return nil, err
	}
	var mws []transport.Middleware
	if a.Tracer != nil {
		mws = append(mws, trace.ClientMiddleware(a.Tracer, caller))
	}
	mws = append(mws, a.clientMW...)
	var opts []rest.ClientOption
	if len(mws) > 0 {
		opts = append(opts, rest.WithMiddleware(mws...))
	}
	c := rest.NewClient(a.Net, target, addrs[0], opts...)
	a.track(c)
	return c, nil
}

// FlushTraces waits for all submitted spans to reach the trace store.
func (a *App) FlushTraces() {
	if a.collector != nil {
		a.collector.Flush()
	}
}

// track remembers a closer for Close.
func (a *App) track(c io.Closer) {
	a.mu.Lock()
	a.closers = append(a.closers, c)
	a.mu.Unlock()
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// Close shuts down every client and server started through the app and
// stops trace collection.
func (a *App) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	closers := a.closers
	servers := a.servers
	rests := a.rests
	a.mu.Unlock()

	for _, c := range closers {
		c.Close() //nolint:errcheck // best-effort teardown
	}
	for _, s := range servers {
		s.Close() //nolint:errcheck
	}
	for _, s := range rests {
		s.Close() //nolint:errcheck
	}
	if a.collector != nil {
		a.collector.Close()
	}
	return nil
}
