package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// buildTwoTier boots backend (RPC) and frontend (REST) tiers where the
// frontend calls the backend, the canonical shape of every suite app.
func buildTwoTier(t *testing.T) (*App, *rest.Client) {
	t.Helper()
	app := NewApp("test", Options{})
	t.Cleanup(func() { app.Close() })

	if _, err := app.StartRPC("backend", func(s *rpc.Server) {
		s.Handle("Double", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			var n int64
			if err := codec.Unmarshal(payload, &n); err != nil {
				return nil, err
			}
			return codec.Marshal(n * 2)
		})
	}); err != nil {
		t.Fatal(err)
	}

	backend, err := app.RPC("frontend", "backend")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.StartREST("frontend", func(s *rest.Server) {
		s.Handle("POST /double", func(ctx *rest.Ctx, body []byte) (any, error) {
			var req struct {
				N int64 `json:"n"`
			}
			if err := rest.DecodeJSON(body, &req); err != nil {
				return nil, err
			}
			var out int64
			if err := backend.Call(ctx, "Double", req.N, &out); err != nil {
				return nil, err
			}
			return map[string]int64{"result": out}, nil
		})
	}); err != nil {
		t.Fatal(err)
	}

	client, err := app.REST("client", "frontend")
	if err != nil {
		t.Fatal(err)
	}
	return app, client
}

func TestEndToEndTwoTier(t *testing.T) {
	_, client := buildTwoTier(t)
	var resp struct {
		Result int64 `json:"result"`
	}
	if err := client.Do(context.Background(), "POST", "/double", map[string]int64{"n": 21}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result != 42 {
		t.Fatalf("result = %d", resp.Result)
	}
}

func TestTracesSpanRESTAndRPC(t *testing.T) {
	app, client := buildTwoTier(t)
	if err := client.Do(context.Background(), "POST", "/double", map[string]int64{"n": 1}, nil); err != nil {
		t.Fatal(err)
	}
	app.FlushTraces()
	if app.Traces.Len() != 1 {
		t.Fatalf("traces = %d, want 1 end-to-end trace", app.Traces.Len())
	}
	id := app.Traces.TraceIDs()[0]
	spans := app.Traces.Spans(id)
	// client REST client span, frontend REST server span, frontend RPC
	// client span, backend RPC server span.
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4: %+v", len(spans), spans)
	}
	tree := app.Traces.Tree(id)
	depth := 0
	for n := tree; n != nil && len(n.Children) > 0; n = n.Children[0] {
		depth++
	}
	if depth != 3 {
		t.Fatalf("trace depth = %d, want 3", depth)
	}
}

func TestRPCUnknownTarget(t *testing.T) {
	app := NewApp("test", Options{})
	defer app.Close()
	if _, err := app.RPC("x", "missing"); err == nil {
		t.Fatal("want error for unknown target")
	}
	if _, err := app.REST("x", "missing"); err == nil {
		t.Fatal("want error for unknown REST target")
	}
}

func TestScaleOutRedirectsTraffic(t *testing.T) {
	app := NewApp("test", Options{})
	defer app.Close()
	handler := func(name string) func(*rpc.Server) {
		return func(s *rpc.Server) {
			s.Handle("Who", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
				return codec.Marshal(name)
			})
		}
	}
	if _, err := app.StartRPC("svc", handler("one")); err != nil {
		t.Fatal(err)
	}
	cl, err := app.RPC("caller", "svc")
	if err != nil {
		t.Fatal(err)
	}
	// Scale out to a second instance; the balanced client must pick it up
	// via the registry watch.
	if _, err := app.StartRPC("svc", handler("two")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	seen := map[string]bool{}
	for time.Now().Before(deadline) && len(seen) < 2 {
		var who string
		if err := cl.Call(context.Background(), "Who", nil, &who); err != nil {
			t.Fatal(err)
		}
		seen[who] = true
	}
	if len(seen) != 2 {
		t.Fatalf("traffic never reached new instance: %v", seen)
	}
}

func TestTracingDisabled(t *testing.T) {
	app := NewApp("test", Options{DisableTracing: true})
	defer app.Close()
	if _, err := app.StartRPC("svc", func(s *rpc.Server) {
		s.Handle("Ping", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) { return nil, nil })
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := app.RPC("caller", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Call(context.Background(), "Ping", nil, nil); err != nil {
		t.Fatal(err)
	}
	if app.Traces != nil {
		t.Fatal("trace store allocated with tracing disabled")
	}
	app.FlushTraces() // must not panic
}

func TestCloseIdempotent(t *testing.T) {
	app := NewApp("test", Options{})
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceFailureRecovery(t *testing.T) {
	app := NewApp("failover", Options{})
	defer app.Close()
	mk := func(name string) (*rpc.Server, string) {
		var srv *rpc.Server
		addr, err := app.StartRPC("svc", func(s *rpc.Server) {
			srv = s
			s.Handle("Who", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
				return codec.Marshal(name)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, addr
	}
	srv1, addr1 := mk("one")
	mk("two")
	cl, err := app.RPC("caller", "svc")
	if err != nil {
		t.Fatal(err)
	}
	// Kill instance one: close its server and deregister it, as a health
	// checker would.
	srv1.Close()
	app.Registry.Deregister("svc", addr1)
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 50; i++ {
		var who string
		err := cl.Call(context.Background(), "Who", nil, &who)
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("traffic never recovered: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if who != "two" {
			t.Fatalf("routed to dead instance: %q", who)
		}
	}
}

// TestDeadlineBudgetShrinksAcrossTwoHops drives a root→mid→leaf RPC chain
// with the resilience budget enabled and asserts each tier observes a
// strictly tighter deadline than its caller — the per-hop budget propagated
// via the deadline header, end to end.
func TestDeadlineBudgetShrinksAcrossTwoHops(t *testing.T) {
	app := NewApp("budget", Options{
		Resilience: &transport.ResilienceConfig{Budget: &transport.BudgetConfig{Fraction: 0.5}},
	})
	defer app.Close()

	var mu sync.Mutex
	deadlines := map[string]time.Time{}
	record := func(name string, ctx context.Context) {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Errorf("%s: no deadline on handler context", name)
			return
		}
		mu.Lock()
		deadlines[name] = dl
		mu.Unlock()
	}

	if _, err := app.StartRPC("leaf", func(s *rpc.Server) {
		s.Handle("Work", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			record("leaf", ctx)
			return nil, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	leaf, err := app.RPC("mid", "leaf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.StartRPC("mid", func(s *rpc.Server) {
		s.Handle("Work", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			record("mid", ctx)
			return nil, leaf.Call(ctx, "Work", nil, nil)
		})
	}); err != nil {
		t.Fatal(err)
	}
	mid, err := app.RPC("root", "mid")
	if err != nil {
		t.Fatal(err)
	}

	rootDL := time.Now().Add(time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), rootDL)
	defer cancel()
	if err := mid.Call(ctx, "Work", nil, nil); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	midDL, leafDL := deadlines["mid"], deadlines["leaf"]
	if !midDL.Before(rootDL) {
		t.Fatalf("mid deadline %v not tighter than root %v", midDL, rootDL)
	}
	if !leafDL.Before(midDL) {
		t.Fatalf("leaf deadline %v not tighter than mid %v", leafDL, midDL)
	}
	if app.Transport.DeadlineTruncated.Value() < 2 {
		t.Fatalf("DeadlineTruncated = %d, want ≥2 (one per hop)", app.Transport.DeadlineTruncated.Value())
	}
}

// TestResilienceFailsFastOnSpentBudget checks the fail-fast path: a call
// entering the stack with (almost) no budget left is refused locally with
// CodeDeadline, never reaching the wire.
func TestResilienceFailsFastOnSpentBudget(t *testing.T) {
	app := NewApp("spent", Options{Resilience: transport.NewResilience()})
	defer app.Close()

	reached := false
	if _, err := app.StartRPC("leaf", func(s *rpc.Server) {
		s.Handle("Work", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			reached = true
			return nil, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	leaf, err := app.RPC("root", "leaf")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	err = leaf.Call(ctx, "Work", nil, nil)
	if !rpc.IsCode(err, rpc.CodeDeadline) {
		t.Fatalf("err = %v, want CodeDeadline", err)
	}
	if reached {
		t.Fatal("doomed call reached the server")
	}
}

// TestKillEvictsViaLeaseAndReviveReturns drives the crash path end to end:
// a killed replica stops heartbeating, its lease expires, FollowRegistry
// drops it from the balancer within ~2 TTLs, and Revive re-enrolls it.
func TestKillEvictsViaLeaseAndReviveReturns(t *testing.T) {
	const ttl = 60 * time.Millisecond
	app := NewApp("test", Options{LeaseTTL: ttl})
	defer app.Close()

	register := func(s *rpc.Server) {
		s.Handle("Ping", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			return []byte("pong"), nil
		})
	}
	for i := 0; i < 2; i++ {
		if _, err := app.StartRPCInstance("backend", register); err != nil {
			t.Fatal(err)
		}
	}
	bal, err := app.RPC("frontend", "backend")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bal.Backends()); got != 2 {
		t.Fatalf("backends = %d, want 2", got)
	}

	victims := app.Instances("backend")
	if len(victims) != 2 {
		t.Fatalf("Instances = %d, want 2", len(victims))
	}
	victim := victims[1]
	victim.Kill()

	// The registration lingers until lease expiry; the balancer must converge
	// within two TTLs of the crash.
	deadline := time.Now().Add(2*ttl + 50*time.Millisecond)
	for {
		got := bal.Backends()
		if len(got) == 1 && got[0] != victim.Addr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backends = %v two TTLs after kill, want victim %s evicted", got, victim.Addr)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Calls keep succeeding against the survivor.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := bal.Call(ctx, "Ping", nil, nil); err != nil {
		t.Fatalf("call after eviction: %v", err)
	}

	victim.Revive()
	deadline = time.Now().Add(2 * time.Second)
	for len(bal.Backends()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("backends = %v after revive, want 2", bal.Backends())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
