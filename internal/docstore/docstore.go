// Package docstore implements the suite's persistent document database —
// the role MongoDB plays in DeathStarBench backends (posts, profiles,
// orders, reviews, sensor data). Documents carry an opaque body (the
// owning service's codec-encoded struct) plus declared scalar fields that
// the store indexes for equality and range queries, mirroring how the
// suite's services keep queryable metadata next to blob-ish payloads.
//
// Durability is optional: with a write-ahead log attached, every mutation
// is appended to the log before being applied, and Open replays the log on
// startup. The services use in-memory stores in tests and examples, and
// WAL-backed stores in the cmd/ tools.
package docstore

import (
	"fmt"
	"sort"
	"sync"

	"dsb/internal/codec"
	"dsb/internal/rpc"
)

// Doc is one stored document.
type Doc struct {
	// ID is the primary key, unique within a collection.
	ID string
	// Fields are indexed string attributes (equality lookups).
	Fields map[string]string
	// Nums are indexed numeric attributes (equality and range lookups,
	// e.g. timestamps for timeline queries).
	Nums map[string]int64
	// Body is the opaque payload owned by the writing service.
	Body []byte
}

func (d Doc) clone() Doc {
	out := Doc{ID: d.ID}
	if d.Fields != nil {
		out.Fields = make(map[string]string, len(d.Fields))
		for k, v := range d.Fields {
			out.Fields[k] = v
		}
	}
	if d.Nums != nil {
		out.Nums = make(map[string]int64, len(d.Nums))
		for k, v := range d.Nums {
			out.Nums[k] = v
		}
	}
	if d.Body != nil {
		out.Body = append([]byte(nil), d.Body...)
	}
	return out
}

// Store is a set of named collections.
type Store struct {
	mu          sync.Mutex
	collections map[string]*Collection
	wal         *WAL
}

// NewStore creates an in-memory store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it if needed.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		c = newCollection(name, s)
		s.collections[name] = c
	}
	return c
}

// Collections returns collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Collection is one document collection with its indexes.
type Collection struct {
	name  string
	store *Store

	mu     sync.RWMutex
	docs   map[string]Doc
	fields map[string]map[string]map[string]struct{} // field -> value -> ids
	nums   map[string][]numEntry                     // field -> sorted (value, id)

	// mutMu serializes read-modify-write operations (Update, ListPrepend)
	// so concurrent mutators cannot interleave and lose each other's
	// changes. It is acquired before mu and held across the WAL append so
	// the log order matches the apply order.
	mutMu sync.Mutex
}

type numEntry struct {
	val int64
	id  string
}

func newCollection(name string, store *Store) *Collection {
	return &Collection{
		name:   name,
		store:  store,
		docs:   make(map[string]Doc),
		fields: make(map[string]map[string]map[string]struct{}),
		nums:   make(map[string][]numEntry),
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Put inserts or replaces a document by ID.
func (c *Collection) Put(d Doc) error {
	if d.ID == "" {
		return rpc.Errorf(rpc.CodeBadRequest, "docstore: empty document ID")
	}
	if err := c.logOp(opPut, d); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(d.clone())
	return nil
}

func (c *Collection) putLocked(d Doc) {
	if old, exists := c.docs[d.ID]; exists {
		c.unindexLocked(old)
	}
	c.docs[d.ID] = d
	for f, v := range d.Fields {
		byVal, ok := c.fields[f]
		if !ok {
			byVal = make(map[string]map[string]struct{})
			c.fields[f] = byVal
		}
		ids, ok := byVal[v]
		if !ok {
			ids = make(map[string]struct{})
			byVal[v] = ids
		}
		ids[d.ID] = struct{}{}
	}
	for f, v := range d.Nums {
		c.nums[f] = insertNum(c.nums[f], numEntry{v, d.ID})
	}
}

func (c *Collection) unindexLocked(d Doc) {
	for f, v := range d.Fields {
		if byVal, ok := c.fields[f]; ok {
			if ids, ok := byVal[v]; ok {
				delete(ids, d.ID)
				if len(ids) == 0 {
					delete(byVal, v)
				}
			}
		}
	}
	for f, v := range d.Nums {
		c.nums[f] = removeNum(c.nums[f], numEntry{v, d.ID})
	}
}

func insertNum(s []numEntry, e numEntry) []numEntry {
	i := sort.Search(len(s), func(i int) bool {
		return s[i].val > e.val || (s[i].val == e.val && s[i].id >= e.id)
	})
	s = append(s, numEntry{})
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

func removeNum(s []numEntry, e numEntry) []numEntry {
	i := sort.Search(len(s), func(i int) bool {
		return s[i].val > e.val || (s[i].val == e.val && s[i].id >= e.id)
	})
	if i < len(s) && s[i] == e {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// Get returns the document by ID.
func (c *Collection) Get(id string) (Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return Doc{}, false
	}
	return d.clone(), true
}

// Delete removes a document, reporting whether it existed.
func (c *Collection) Delete(id string) (bool, error) {
	if err := c.logOp(opDelete, Doc{ID: id}); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return false, nil
	}
	c.unindexLocked(d)
	delete(c.docs, id)
	return true, nil
}

// Find returns documents whose indexed string field equals value, in ID
// order, up to limit (<=0 means all).
func (c *Collection) Find(field, value string, limit int) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := c.fields[field][value]
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	if limit > 0 && len(sorted) > limit {
		sorted = sorted[:limit]
	}
	out := make([]Doc, 0, len(sorted))
	for _, id := range sorted {
		out = append(out, c.docs[id].clone())
	}
	return out
}

// FindRange returns documents whose numeric field lies in [min, max],
// sorted descending by the field (newest-first for timestamp fields), up to
// limit (<=0 means all).
func (c *Collection) FindRange(field string, min, max int64, limit int) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.nums[field]
	lo := sort.Search(len(s), func(i int) bool { return s[i].val >= min })
	hi := sort.Search(len(s), func(i int) bool { return s[i].val > max })
	out := make([]Doc, 0, hi-lo)
	for i := hi - 1; i >= lo; i-- {
		out = append(out, c.docs[s[i].id].clone())
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Update atomically applies fn to the document: fn receives a copy and
// returns the new version, and no other Update or ListPrepend can
// interleave between the read and the write. Returns NotFound if the
// document does not exist. (Plain Put remains last-writer-wins, matching
// the document stores the suite models.)
func (c *Collection) Update(id string, fn func(Doc) Doc) error {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()

	c.mu.RLock()
	d, ok := c.docs[id]
	if ok {
		d = d.clone()
	}
	c.mu.RUnlock()
	if !ok {
		return rpc.NotFoundf("docstore: %s/%s", c.name, id)
	}
	updated := fn(d)
	updated.ID = id

	// mutMu is held across the log append so WAL order matches apply order
	// for read-modify-write ops; logOp only takes store.mu, so there is no
	// lock-order cycle.
	if err := c.logOp(opPut, updated); err != nil {
		return err
	}
	c.mu.Lock()
	c.putLocked(updated)
	c.mu.Unlock()
	return nil
}

// ListPrepend atomically prepends value to the codec-encoded []string
// stored in the document's body, creating the document if absent, and
// truncating the list to max entries when max > 0. It returns the new list
// length. This is the primitive behind social-graph timeline fan-out: many
// writers push post IDs onto follower timelines concurrently, and a plain
// Get/modify/Put cycle would lose updates under contention.
func (c *Collection) ListPrepend(id, value string, max int) (int, error) {
	return c.listPrepend(id, value, max, false)
}

// ListPrependUnique is ListPrepend that skips the write when value is
// already in the list, returning the unchanged length. It is the
// store-level idempotency backstop for at-least-once delivery pipelines:
// whatever slips past consumer-side dedup — a redelivery consumed by a
// different replica, a crash-window replay — cannot double-prepend here.
func (c *Collection) ListPrependUnique(id, value string, max int) (int, error) {
	return c.listPrepend(id, value, max, true)
}

func (c *Collection) listPrepend(id, value string, max int, unique bool) (int, error) {
	if id == "" {
		return 0, rpc.Errorf(rpc.CodeBadRequest, "docstore: empty document ID")
	}
	c.mutMu.Lock()
	defer c.mutMu.Unlock()

	c.mu.RLock()
	d, ok := c.docs[id]
	if ok {
		d = d.clone()
	}
	c.mu.RUnlock()
	if !ok {
		d = Doc{ID: id}
	}
	var list []string
	if len(d.Body) > 0 {
		if err := codec.Unmarshal(d.Body, &list); err != nil {
			return 0, fmt.Errorf("docstore: %s/%s body is not a list: %w", c.name, id, err)
		}
	}
	if unique {
		for _, v := range list {
			if v == value {
				return len(list), nil
			}
		}
	}
	list = append(list, "")
	copy(list[1:], list)
	list[0] = value
	if max > 0 && len(list) > max {
		list = list[:max]
	}
	body, err := codec.Marshal(list)
	if err != nil {
		return 0, err
	}
	d.Body = body

	if err := c.logOp(opPut, d); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.putLocked(d)
	c.mu.Unlock()
	return len(list), nil
}

// All returns every document, ID-sorted. Intended for tests and small
// administrative scans.
func (c *Collection) All() []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Doc, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.docs[id].clone())
	}
	return out
}

func (c *Collection) logOp(kind byte, d Doc) error {
	c.store.mu.Lock()
	wal := c.store.wal
	c.store.mu.Unlock()
	if wal == nil {
		return nil
	}
	if err := wal.append(kind, c.name, d); err != nil {
		return fmt.Errorf("docstore: wal append: %w", err)
	}
	return nil
}
