package docstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"dsb/internal/codec"
	"dsb/internal/rpc"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	posts := s.Collection("posts")
	d := Doc{ID: "p1", Fields: map[string]string{"author": "alice"}, Nums: map[string]int64{"ts": 100}, Body: []byte("hello")}
	if err := posts.Put(d); err != nil {
		t.Fatal(err)
	}
	got, ok := posts.Get("p1")
	if !ok || string(got.Body) != "hello" || got.Fields["author"] != "alice" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	existed, err := posts.Delete("p1")
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if _, ok := posts.Get("p1"); ok {
		t.Fatal("deleted doc present")
	}
	existed, _ = posts.Delete("p1")
	if existed {
		t.Fatal("double delete reported existed")
	}
}

func TestEmptyIDRejected(t *testing.T) {
	s := NewStore()
	if err := s.Collection("c").Put(Doc{}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("want CodeBadRequest, got %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	c := s.Collection("c")
	c.Put(Doc{ID: "x", Body: []byte("abc"), Fields: map[string]string{"f": "v"}}) //nolint:errcheck
	got, _ := c.Get("x")
	got.Body[0] = 'Z'
	got.Fields["f"] = "mutated"
	again, _ := c.Get("x")
	if string(again.Body) != "abc" || again.Fields["f"] != "v" {
		t.Fatal("Get leaked internal state")
	}
}

func TestFindByField(t *testing.T) {
	s := NewStore()
	c := s.Collection("posts")
	for i := 0; i < 5; i++ {
		author := "alice"
		if i%2 == 1 {
			author = "bob"
		}
		c.Put(Doc{ID: fmt.Sprintf("p%d", i), Fields: map[string]string{"author": author}}) //nolint:errcheck
	}
	alice := c.Find("author", "alice", 0)
	if len(alice) != 3 {
		t.Fatalf("alice posts = %d", len(alice))
	}
	if got := c.Find("author", "alice", 2); len(got) != 2 {
		t.Fatalf("limited find = %d", len(got))
	}
	if got := c.Find("author", "carol", 0); len(got) != 0 {
		t.Fatalf("carol posts = %d", len(got))
	}
	if got := c.Find("nosuchfield", "x", 0); len(got) != 0 {
		t.Fatalf("unknown field = %d", len(got))
	}
}

func TestFindRangeNewestFirst(t *testing.T) {
	s := NewStore()
	c := s.Collection("timeline")
	for i := int64(1); i <= 10; i++ {
		c.Put(Doc{ID: fmt.Sprintf("p%d", i), Nums: map[string]int64{"ts": i * 10}}) //nolint:errcheck
	}
	got := c.FindRange("ts", 25, 75, 0)
	if len(got) != 5 {
		t.Fatalf("range size = %d", len(got))
	}
	// Descending by ts: 70, 60, 50, 40, 30.
	if got[0].Nums["ts"] != 70 || got[4].Nums["ts"] != 30 {
		t.Fatalf("order = %v ... %v", got[0].Nums["ts"], got[4].Nums["ts"])
	}
	if lim := c.FindRange("ts", 0, 1000, 3); len(lim) != 3 || lim[0].Nums["ts"] != 100 {
		t.Fatalf("limit: %v", lim)
	}
}

func TestReindexOnUpdate(t *testing.T) {
	s := NewStore()
	c := s.Collection("c")
	c.Put(Doc{ID: "x", Fields: map[string]string{"state": "open"}, Nums: map[string]int64{"v": 1}})   //nolint:errcheck
	c.Put(Doc{ID: "x", Fields: map[string]string{"state": "closed"}, Nums: map[string]int64{"v": 2}}) //nolint:errcheck
	if got := c.Find("state", "open", 0); len(got) != 0 {
		t.Fatal("stale string index")
	}
	if got := c.Find("state", "closed", 0); len(got) != 1 {
		t.Fatal("missing new string index")
	}
	if got := c.FindRange("v", 1, 1, 0); len(got) != 0 {
		t.Fatal("stale numeric index")
	}
	if got := c.FindRange("v", 2, 2, 0); len(got) != 1 {
		t.Fatal("missing new numeric index")
	}
}

func TestUpdateFn(t *testing.T) {
	s := NewStore()
	c := s.Collection("accounts")
	c.Put(Doc{ID: "a", Nums: map[string]int64{"balance": 100}}) //nolint:errcheck
	err := c.Update("a", func(d Doc) Doc {
		d.Nums["balance"] -= 30
		return d
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get("a")
	if got.Nums["balance"] != 70 {
		t.Fatalf("balance = %d", got.Nums["balance"])
	}
	if err := c.Update("ghost", func(d Doc) Doc { return d }); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("want NotFound, got %v", err)
	}
}

// Regression: Update used to release the collection lock between running
// fn and re-applying the result, so two concurrent Updates could both read
// the same starting state and one increment would vanish. With mutMu
// serializing read-modify-write ops, every increment must land.
func TestUpdateConcurrentAtomic(t *testing.T) {
	s := NewStore()
	c := s.Collection("accounts")
	c.Put(Doc{ID: "a", Nums: map[string]int64{"n": 0}}) //nolint:errcheck
	const workers, incrs = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incrs; i++ {
				err := c.Update("a", func(d Doc) Doc {
					d.Nums["n"]++
					return d
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := c.Get("a")
	if got.Nums["n"] != workers*incrs {
		t.Fatalf("n = %d, want %d (lost updates)", got.Nums["n"], workers*incrs)
	}
}

func TestListPrepend(t *testing.T) {
	s := NewStore()
	c := s.Collection("timelines")
	// Creates the document on first prepend.
	if n, err := c.ListPrepend("tl:u", "p1", 0); err != nil || n != 1 {
		t.Fatalf("ListPrepend = %d, %v", n, err)
	}
	if n, err := c.ListPrepend("tl:u", "p2", 0); err != nil || n != 2 {
		t.Fatalf("ListPrepend = %d, %v", n, err)
	}
	d, _ := c.Get("tl:u")
	var list []string
	if err := codec.Unmarshal(d.Body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0] != "p2" || list[1] != "p1" {
		t.Fatalf("list = %v, want [p2 p1]", list)
	}

	// Cap truncates from the tail (oldest entries fall off).
	for i := 3; i <= 6; i++ {
		if _, err := c.ListPrepend("tl:u", fmt.Sprintf("p%d", i), 4); err != nil {
			t.Fatal(err)
		}
	}
	d, _ = c.Get("tl:u")
	list = nil
	if err := codec.Unmarshal(d.Body, &list); err != nil {
		t.Fatal(err)
	}
	want := []string{"p6", "p5", "p4", "p3"}
	if len(list) != len(want) {
		t.Fatalf("list = %v, want %v", list, want)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("list = %v, want %v", list, want)
		}
	}

	if _, err := c.ListPrepend("", "x", 0); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("want CodeBadRequest, got %v", err)
	}
	// A body that is not a codec []string is an error, not silent data loss.
	c.Put(Doc{ID: "blob", Body: []byte{0xff, 0xff, 0xff}}) //nolint:errcheck
	if _, err := c.ListPrepend("blob", "x", 0); err == nil {
		t.Fatal("prepend onto non-list body succeeded")
	}
}

// Regression: the timeline services used to fan out with an unguarded
// Get/modify/Put cycle, so concurrent pushes onto one follower's timeline
// silently dropped entries. ListPrepend is the atomic replacement; N
// concurrent prepends of distinct values must all survive.
func TestListPrependConcurrentNoLostEntries(t *testing.T) {
	s := NewStore()
	c := s.Collection("timelines")
	const workers, pushes = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				if _, err := c.ListPrepend("tl:hot", fmt.Sprintf("w%d-p%d", w, i), 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d, _ := c.Get("tl:hot")
	var list []string
	if err := codec.Unmarshal(d.Body, &list); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(list))
	for _, v := range list {
		seen[v] = true
	}
	if len(list) != workers*pushes || len(seen) != workers*pushes {
		t.Fatalf("timeline has %d entries (%d distinct), want %d", len(list), len(seen), workers*pushes)
	}
}

// Property: for any operation sequence, Find(field, v) returns exactly the
// live docs whose field equals v, and FindRange agrees with a linear scan.
func TestIndexConsistencyProperty(t *testing.T) {
	type op struct {
		Del bool
		ID  uint8
		Val uint8
		Num int16
	}
	f := func(ops []op) bool {
		s := NewStore()
		c := s.Collection("c")
		live := map[string]Doc{}
		for _, o := range ops {
			id := fmt.Sprintf("d%d", o.ID%24)
			if o.Del {
				c.Delete(id) //nolint:errcheck
				delete(live, id)
				continue
			}
			d := Doc{
				ID:     id,
				Fields: map[string]string{"f": fmt.Sprintf("v%d", o.Val%4)},
				Nums:   map[string]int64{"n": int64(o.Num)},
			}
			if c.Put(d) != nil {
				return false
			}
			live[id] = d
		}
		// Equality via index vs linear scan.
		for v := 0; v < 4; v++ {
			val := fmt.Sprintf("v%d", v)
			got := c.Find("f", val, 0)
			want := 0
			for _, d := range live {
				if d.Fields["f"] == val {
					want++
				}
			}
			if len(got) != want {
				return false
			}
		}
		// Range via index vs linear scan.
		got := c.FindRange("n", -100, 100, 0)
		want := 0
		for _, d := range live {
			if n := d.Nums["n"]; n >= -100 && n <= 100 {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	c := s.Collection("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("d%d", (g*500+i)%64)
				switch i % 3 {
				case 0:
					c.Put(Doc{ID: id, Fields: map[string]string{"g": fmt.Sprint(g)}, Nums: map[string]int64{"i": int64(i)}}) //nolint:errcheck
				case 1:
					c.Get(id)
					c.Find("g", fmt.Sprint(g), 10)
				case 2:
					c.FindRange("i", 0, 250, 5)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestWALPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")

	s, w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Collection("posts")
	for i := 0; i < 10; i++ {
		if err := c.Put(Doc{ID: fmt.Sprintf("p%d", i), Nums: map[string]int64{"ts": int64(i)}, Body: []byte("body")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Delete("p3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("p4", func(d Doc) Doc { d.Body = []byte("updated"); return d }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s2, w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2 := s2.Collection("posts")
	if c2.Len() != 9 {
		t.Fatalf("recovered %d docs, want 9", c2.Len())
	}
	if _, ok := c2.Get("p3"); ok {
		t.Fatal("deleted doc resurrected")
	}
	got, _ := c2.Get("p4")
	if string(got.Body) != "updated" {
		t.Fatalf("update lost: %q", got.Body)
	}
	// Index rebuilt from log.
	if r := c2.FindRange("ts", 5, 9, 0); len(r) != 5 {
		t.Fatalf("recovered range = %d", len(r))
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")
	s, w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Collection("c").Put(Doc{ID: "keep", Body: []byte("x")}) //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{200, 0, 0, 0, 1, 2, 3}) //nolint:errcheck
	f.Close()

	s2, w2, err := Open(path)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer w2.Close()
	if _, ok := s2.Collection("c").Get("keep"); !ok {
		t.Fatal("intact record lost during torn-tail recovery")
	}
	// The store must accept new writes after truncating the tail.
	if err := s2.Collection("c").Put(Doc{ID: "new", Body: []byte("y")}); err != nil {
		t.Fatal(err)
	}
}

func TestRPCService(t *testing.T) {
	n := rpc.NewMem()
	srv := rpc.NewServer("mongodb")
	RegisterService(srv, NewStore())
	addr, err := srv.Start(n, "mongodb:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := rpc.NewClient(n, "mongodb", addr)
	defer cl.Close()
	ctx := context.Background()

	put := PutReq{Collection: "posts", Doc: Doc{ID: "p1", Fields: map[string]string{"author": "a"}, Nums: map[string]int64{"ts": 5}, Body: []byte("b")}}
	if err := cl.Call(ctx, "Put", put, nil); err != nil {
		t.Fatal(err)
	}
	var got GetResp
	if err := cl.Call(ctx, "Get", GetReq{Collection: "posts", ID: "p1"}, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Doc.Body) != "b" {
		t.Fatalf("Get = %+v", got)
	}
	var fr FindResp
	if err := cl.Call(ctx, "Find", FindReq{Collection: "posts", Field: "author", Value: "a"}, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Docs) != 1 {
		t.Fatalf("Find = %d docs", len(fr.Docs))
	}
	if err := cl.Call(ctx, "FindRange", FindRangeReq{Collection: "posts", Field: "ts", Min: 0, Max: 10}, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Docs) != 1 {
		t.Fatalf("FindRange = %d docs", len(fr.Docs))
	}
	var dr DeleteResp
	if err := cl.Call(ctx, "Delete", DeleteReq{Collection: "posts", ID: "p1"}, &dr); err != nil || !dr.Existed {
		t.Fatalf("Delete = %+v, %v", dr, err)
	}
}

func BenchmarkPut(b *testing.B) {
	s := NewStore()
	c := s.Collection("bench")
	body := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(Doc{ //nolint:errcheck
			ID:     fmt.Sprintf("d%d", i%10000),
			Fields: map[string]string{"author": fmt.Sprintf("u%d", i%100)},
			Nums:   map[string]int64{"ts": int64(i)},
			Body:   body,
		})
	}
}

func BenchmarkFindRange(b *testing.B) {
	s := NewStore()
	c := s.Collection("bench")
	for i := 0; i < 10000; i++ {
		c.Put(Doc{ID: fmt.Sprintf("d%d", i), Nums: map[string]int64{"ts": int64(i)}}) //nolint:errcheck
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindRange("ts", int64(i%9000), int64(i%9000+100), 10)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.wal")
	s, w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Collection("posts")
	// Churn: many overwrites and deletes bloat the log.
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			if err := c.Put(Doc{ID: fmt.Sprintf("p%d", j), Nums: map[string]int64{"v": int64(i)}, Body: []byte("body")}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := 5; j < 10; j++ {
		if _, err := c.Delete(fmt.Sprintf("p%d", j)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(s); err != nil {
		t.Fatal(err)
	}
	after, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/10 {
		t.Fatalf("compaction ineffective: %d -> %d bytes", before, after)
	}
	// The log stays appendable post-compaction.
	if err := c.Put(Doc{ID: "new", Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery from the compacted log restores exactly the live state.
	s2, w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2 := s2.Collection("posts")
	if c2.Len() != 6 { // p0..p4 + new
		t.Fatalf("recovered %d docs, want 6", c2.Len())
	}
	got, _ := c2.Get("p3")
	if got.Nums["v"] != 49 {
		t.Fatalf("latest version lost: %+v", got)
	}
	if _, ok := c2.Get("p7"); ok {
		t.Fatal("deleted doc resurrected by compaction")
	}
}
