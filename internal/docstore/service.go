package docstore

import (
	"dsb/internal/codec"
	"dsb/internal/rpc"
)

// Wire messages for the store's RPC interface.

// PutReq stores a document in a collection.
type PutReq struct {
	Collection string
	Doc        Doc
}

// GetReq fetches a document by ID.
type GetReq struct {
	Collection string
	ID         string
}

// GetResp returns the document if found.
type GetResp struct {
	Doc   Doc
	Found bool
}

// FindReq queries an indexed string field.
type FindReq struct {
	Collection string
	Field      string
	Value      string
	Limit      int64
}

// FindRangeReq queries an indexed numeric field.
type FindRangeReq struct {
	Collection string
	Field      string
	Min, Max   int64
	Limit      int64
}

// FindResp returns matching documents.
type FindResp struct{ Docs []Doc }

// DeleteReq removes a document.
type DeleteReq struct {
	Collection string
	ID         string
}

// DeleteResp reports whether the document existed.
type DeleteResp struct{ Existed bool }

// ListPrependReq atomically prepends Value to the []string body of a
// document, creating it if absent and capping the list at Cap entries
// (<=0 means unbounded). The write fan-out path uses this so concurrent
// timeline pushes never lose each other's entries.
type ListPrependReq struct {
	Collection string
	ID         string
	Value      string
	Cap        int64
	// Unique skips the prepend when Value is already present — the
	// idempotency backstop async delivery pipelines write through.
	Unique bool
}

// ListPrependResp returns the list length after the prepend.
type ListPrependResp struct{ Len int64 }

// RegisterService exposes store as an RPC microservice with methods Put,
// Get, Find, FindRange, ListPrepend, and Delete — the "mongodb" tier in
// the application graphs.
func RegisterService(srv *rpc.Server, store *Store) {
	srv.Handle("Put", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req PutReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		return nil, store.Collection(req.Collection).Put(req.Doc)
	})
	srv.Handle("Get", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req GetReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		d, ok := store.Collection(req.Collection).Get(req.ID)
		return codec.Marshal(GetResp{Doc: d, Found: ok})
	})
	srv.Handle("Find", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req FindReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		docs := store.Collection(req.Collection).Find(req.Field, req.Value, int(req.Limit))
		return codec.Marshal(FindResp{Docs: docs})
	})
	srv.Handle("FindRange", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req FindRangeReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		docs := store.Collection(req.Collection).FindRange(req.Field, req.Min, req.Max, int(req.Limit))
		return codec.Marshal(FindResp{Docs: docs})
	})
	srv.Handle("ListPrepend", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req ListPrependReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		n, err := store.Collection(req.Collection).listPrepend(req.ID, req.Value, int(req.Cap), req.Unique)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(ListPrependResp{Len: int64(n)})
	})
	srv.Handle("Delete", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req DeleteReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		existed, err := store.Collection(req.Collection).Delete(req.ID)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(DeleteResp{Existed: existed})
	})
}
