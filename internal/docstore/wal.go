package docstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"dsb/internal/codec"
)

// WAL op kinds.
const (
	opPut    byte = 1
	opDelete byte = 2
)

// WALRecord is the codec-encoded log entry. It is exported so cmd/codecgen
// can emit a fast-path marshaler for it; the wire format is positional and
// unchanged from when the type was unexported.
type WALRecord struct {
	Kind       byte
	Collection string
	Doc        Doc
}

// WAL is an append-only write-ahead log backing a Store.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	buf  []byte // reusable encode scratch, guarded by mu
	path string
}

// Open opens (creating if needed) a WAL-backed store at path, replaying any
// existing log into a fresh store. A torn final record (crash mid-append)
// is tolerated and truncated.
func Open(path string) (*Store, *WAL, error) {
	s := NewStore()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	valid, err := replay(f, s)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("docstore: replay %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, w: bufio.NewWriter(f), path: path}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return s, w, nil
}

// replay applies complete records from f to s and returns the byte offset
// of the last complete record.
func replay(f *os.File, s *Store) (int64, error) {
	r := bufio.NewReader(f)
	var offset int64
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, nil
			}
			return 0, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 64<<20 {
			return offset, nil // corrupt length: treat as torn tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, nil // torn record
			}
			return 0, err
		}
		var rec WALRecord
		if err := codec.Unmarshal(body, &rec); err != nil {
			return offset, nil // corrupt tail
		}
		col := s.Collection(rec.Collection)
		col.mu.Lock()
		switch rec.Kind {
		case opPut:
			col.putLocked(rec.Doc)
		case opDelete:
			if d, ok := col.docs[rec.Doc.ID]; ok {
				col.unindexLocked(d)
				delete(col.docs, rec.Doc.ID)
			}
		}
		col.mu.Unlock()
		offset += int64(4 + n)
	}
}

func (w *WAL) append(kind byte, collection string, d Doc) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("docstore: wal closed")
	}
	// Encode into the WAL's own scratch buffer: appends are serialized by
	// w.mu anyway, so one buffer amortizes across every record instead of a
	// fresh Marshal allocation per append.
	var err error
	w.buf, err = codec.AppendMarshal(w.buf[:0], WALRecord{Kind: kind, Collection: collection, Doc: d})
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(w.buf)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	return w.w.Flush()
}

// Sync flushes buffered records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Compact rewrites the log as a snapshot of the store's current contents,
// dropping superseded records (overwrites and deletes). The store must be
// quiescent for the duration of the call; concurrent mutations during a
// compaction may be lost from the rewritten log.
func (w *WAL) Compact(s *Store) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("docstore: wal closed")
	}
	tmpPath := w.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	writeRec := func(collection string, d Doc) error {
		var err error
		w.buf, err = codec.AppendMarshal(w.buf[:0], WALRecord{Kind: opPut, Collection: collection, Doc: d})
		if err != nil {
			return err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(w.buf)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err = bw.Write(w.buf)
		return err
	}
	for _, name := range s.Collections() {
		for _, d := range s.Collection(name).All() {
			if err := writeRec(name, d); err != nil {
				tmp.Close()
				os.Remove(tmpPath) //nolint:errcheck
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return err
	}
	// Swap the live handle to the compacted file, appending at its end.
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.w.Flush() //nolint:errcheck // old handle is being discarded
	w.f.Close() //nolint:errcheck
	w.f = f
	w.w = bufio.NewWriter(f)
	return nil
}

// Size returns the log's current byte size.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("docstore: wal closed")
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the log. The store remains usable in-memory but
// further mutations fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}
