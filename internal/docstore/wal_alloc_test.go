package docstore

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestWALAppendBufferReuse pins the WAL's pooled encode scratch: appends
// serialize on w.mu and encode into w.buf, so a steady stream of records
// must not allocate a fresh marshal buffer per append. The regression this
// guards against — codec.Marshal per record — allocates at least the
// encoded size (>8 KiB here) every append, which the TotalAlloc budget
// below catches with an order of magnitude to spare.
func TestWALAppendBufferReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alloc.wal")
	_, w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const records = 1000
	doc := Doc{
		ID:     "doc-under-test",
		Fields: map[string]string{"author": "alloc-guard"},
		Nums:   map[string]int64{"ts": 12345},
		Body:   make([]byte, 8<<10),
	}
	// Warm up: first append grows w.buf to the record size; later appends
	// reuse it.
	if err := w.append(opPut, "posts", doc); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < records; i++ {
		if err := w.append(opPut, "posts", doc); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)

	grew := after.TotalAlloc - before.TotalAlloc
	// Re-encoding from scratch would cost records * >8 KiB > 8 MiB; buffer
	// reuse leaves only incidental test-harness noise. 1 MiB splits the two
	// regimes with a wide margin on both sides.
	if grew > 1<<20 {
		t.Fatalf("appending %d records allocated %d bytes; encode scratch is not being reused", records, grew)
	}
}
