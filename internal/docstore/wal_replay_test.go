package docstore

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"dsb/internal/codec"
)

// TestWALReplayMixedOpOrdering pins the replay-order contract for the op
// mix the services actually generate: Update and ListPrepend are
// read-modify-write operations logged as opPut of their *result* under the
// collection's mutation lock, so the log's record order IS the apply
// order. Interleaving them with Delete makes ordering observable — a
// delete replayed out of order either resurrects the doc or erases writes
// that landed after it.
func TestWALReplayMixedOpOrdering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.wal")
	s, w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	posts := s.Collection("posts")
	for i := 0; i < 6; i++ {
		err := posts.Put(Doc{
			ID:     fmt.Sprintf("p%d", i),
			Fields: map[string]string{"author": fmt.Sprintf("u%d", i%2)},
			Nums:   map[string]int64{"ts": int64(100 + i)},
			Body:   []byte(fmt.Sprintf("v0-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Update after Put: replay must apply the updated doc, not the original.
	if err := posts.Update("p1", func(d Doc) Doc {
		d.Body = []byte("v1-1")
		d.Nums["ts"] = 500
		return d
	}); err != nil {
		t.Fatal(err)
	}
	// Delete then re-Put the same ID: a replay that reorders the delete
	// after the second put would erase the resurrected doc.
	if _, err := posts.Delete("p2"); err != nil {
		t.Fatal(err)
	}
	if err := posts.Put(Doc{ID: "p2", Fields: map[string]string{"author": "u9"}, Body: []byte("reborn")}); err != nil {
		t.Fatal(err)
	}
	// Delete with no re-create: must stay gone after replay.
	if _, err := posts.Delete("p3"); err != nil {
		t.Fatal(err)
	}
	// Update of the re-created doc: applies on top of the second Put.
	if err := posts.Update("p2", func(d Doc) Doc {
		d.Body = append(d.Body, []byte("+tail")...)
		return d
	}); err != nil {
		t.Fatal(err)
	}

	// Timeline collection: prepends interleaved with a delete. The delete
	// lands between prepends, so the final list holds only the entries
	// prepended after it — order-sensitive in both directions.
	tl := s.Collection("timelines")
	for _, v := range []string{"a", "b", "c"} {
		if _, err := tl.ListPrepend("bob", v, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tl.Delete("bob"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"d", "e"} {
		if _, err := tl.ListPrepend("bob", v, 10); err != nil {
			t.Fatal(err)
		}
	}
	// A capped list: replaying prepends without the cap (or in the wrong
	// order) yields a different final window.
	for i := 0; i < 8; i++ {
		if _, err := tl.ListPrepend("alice", fmt.Sprintf("e%d", i), 3); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot the live state, then reopen from the log alone. Maps are
	// normalized because the log's codec round-trip turns nil maps into
	// empty ones — lookups cannot tell the difference, so the contract is
	// over contents, not map presence.
	normalize := func(docs []Doc) []Doc {
		out := make([]Doc, len(docs))
		for i, d := range docs {
			if len(d.Fields) == 0 {
				d.Fields = nil
			}
			if len(d.Nums) == 0 {
				d.Nums = nil
			}
			out[i] = d
		}
		return out
	}
	want := make(map[string][]Doc)
	for _, name := range s.Collections() {
		want[name] = normalize(s.Collection(name).All())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s2, w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := make(map[string][]Doc)
	for _, name := range s2.Collections() {
		got[name] = normalize(s2.Collection(name).All())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replayed state diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// Spot-check the order-sensitive outcomes directly.
	if _, ok := s2.Collection("posts").Get("p3"); ok {
		t.Fatal("p3 resurrected by replay")
	}
	d, ok := s2.Collection("posts").Get("p2")
	if !ok || string(d.Body) != "reborn+tail" || d.Fields["author"] != "u9" {
		t.Fatalf("p2 after replay = %+v, %v", d, ok)
	}
	d, ok = s2.Collection("posts").Get("p1")
	if !ok || string(d.Body) != "v1-1" || d.Nums["ts"] != 500 {
		t.Fatalf("p1 after replay = %+v, %v", d, ok)
	}
	var bobList []string
	d, _ = s2.Collection("timelines").Get("bob")
	if err := codec.Unmarshal(d.Body, &bobList); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bobList, []string{"e", "d"}) {
		t.Fatalf("bob's timeline after replay = %v, want [e d]", bobList)
	}
	var aliceList []string
	d, _ = s2.Collection("timelines").Get("alice")
	if err := codec.Unmarshal(d.Body, &aliceList); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aliceList, []string{"e7", "e6", "e5"}) {
		t.Fatalf("alice's capped timeline after replay = %v, want [e7 e6 e5]", aliceList)
	}

	// The indexes must be rebuilt too, not just the documents: the updated
	// timestamp and the re-created author land in the right index buckets.
	byAuthor := s2.Collection("posts").Find("author", "u9", 0)
	if len(byAuthor) != 1 || byAuthor[0].ID != "p2" {
		t.Fatalf("author index after replay = %+v", byAuthor)
	}
	inRange := s2.Collection("posts").FindRange("ts", 500, 500, 0)
	if len(inRange) != 1 || inRange[0].ID != "p1" {
		t.Fatalf("ts index after replay = %+v", inRange)
	}
}
