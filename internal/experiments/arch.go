package experiments

import (
	"fmt"
	"time"

	"dsb/internal/archsim"
	"dsb/internal/graph"
	"dsb/internal/sim"
)

func defaultNet() archsim.Network { return archsim.DefaultNetwork }

func fpgaFactor(avgBytes float64) float64 { return archsim.FPGAAccelFactor(avgBytes) }

// Fig10 reproduces the per-microservice cycle breakdown and IPC for the
// Social Network and E-commerce applications, plus their monolithic
// equivalents — the vTune top-down analysis.
func Fig10() *Report {
	r := &Report{
		ID:     "fig10",
		Title:  "Cycle breakdown (front-end / bad speculation / back-end / retiring) and IPC",
		Header: []string{"app", "service", "front-end", "bad spec", "back-end", "retiring", "IPC"},
	}
	emit := func(appName string, svc string, p graph.Profile) {
		b := archsim.CycleBreakdown(p)
		r.Rows = append(r.Rows, []string{
			appName, svc,
			fmt.Sprintf("%.0f%%", b.FrontendPct),
			fmt.Sprintf("%.0f%%", b.BadSpecPct),
			fmt.Sprintf("%.0f%%", b.BackendPct),
			fmt.Sprintf("%.0f%%", b.RetiringPct),
			f2(b.IPC),
		})
	}
	for _, app := range []*graph.App{graph.SocialNetwork(), graph.Ecommerce()} {
		var retiringSum float64
		var count int
		for _, svc := range app.Services() {
			p := app.Profiles[svc]
			emit(app.Name, svc, p)
			retiringSum += archsim.CycleBreakdown(p).RetiringPct
			count++
		}
		r.Notes = append(r.Notes, fmt.Sprintf("%s mean retiring = %.0f%% (paper: ~21%% for Social Network)", app.Name, retiringSum/float64(count)))
	}
	mono := graph.SocialNetworkMonolith()
	emit(mono.Name, "monolith", mono.Profiles["monolith"])
	r.Notes = append(r.Notes,
		"shape check: front-end stalls dominate; search has the highest IPC, the ML recommender the lowest")
	return r
}

// Fig11 reproduces the per-microservice L1i MPKI bars for Social Network
// and E-commerce, with monolith and backing stores for contrast.
func Fig11() *Report {
	r := &Report{
		ID:     "fig11",
		Title:  "L1 instruction-cache misses per kilo-instruction",
		Header: []string{"app", "service", "L1i MPKI", "code KB"},
	}
	for _, app := range []*graph.App{graph.SocialNetwork(), graph.Ecommerce()} {
		for _, svc := range app.Services() {
			p := app.Profiles[svc]
			r.Rows = append(r.Rows, []string{app.Name, svc, f1(archsim.L1iMPKI(p)), fmt.Sprintf("%.0f", p.CodeKB)})
		}
	}
	mono := graph.SocialNetworkMonolith()
	r.Rows = append(r.Rows, []string{mono.Name, "monolith", f1(archsim.L1iMPKI(mono.Profiles["monolith"])), fmt.Sprintf("%.0f", mono.Profiles["monolith"].CodeKB)})
	r.Notes = append(r.Notes,
		"paper: nginx/memcached/MongoDB and especially monoliths stay i-cache-hungry (40-70 MPKI); small single-concern microservices drop well below",
	)
	return r
}

// Fig14 reproduces the kernel/user/library cycle and instruction breakdown
// per end-to-end service. Instruction shares shift slightly toward user
// code because kernel paths retire fewer instructions per cycle.
func Fig14() *Report {
	r := &Report{
		ID:     "fig14",
		Title:  "Cycles (C) and instructions (I) in kernel / user / libraries",
		Header: []string{"application", "kernel C", "user C", "libs C", "kernel I", "user I", "libs I"},
	}
	apps := append(graph.EndToEndApps(), graph.SwarmEdge())
	for _, app := range apps {
		b := archsim.AppOSBreakdown(app, archsim.DefaultNetwork)
		// Kernel code retires ~30% fewer instructions per cycle than user
		// code, so the instruction view shifts away from the kernel.
		ki := b.KernelPct * 0.7
		scale := (100 - ki) / (b.UserPct + b.LibPct)
		r.Rows = append(r.Rows, []string{
			app.Name,
			fmt.Sprintf("%.0f%%", b.KernelPct), fmt.Sprintf("%.0f%%", b.UserPct), fmt.Sprintf("%.0f%%", b.LibPct),
			fmt.Sprintf("%.0f%%", ki), fmt.Sprintf("%.0f%%", b.UserPct*scale), fmt.Sprintf("%.0f%%", b.LibPct*scale),
		})
	}
	r.Notes = append(r.Notes,
		"paper: Social Network and Media Service are the most kernel-heavy; Swarm spends nearly half its cycles in libraries")
	return r
}

// Fig13 compares saturation throughput under a QoS target across the Xeon
// at nominal frequency, the Xeon clocked to 1.8GHz, and the ThunderX.
func Fig13() *Report {
	r := &Report{
		ID:     "fig13",
		Title:  "Max QPS under QoS: Xeon vs Xeon@1.8 vs ThunderX",
		Header: []string{"application", "xeon", "xeon@1.8", "thunderx", "xeon/thunderx"},
	}
	for _, build := range []func() *graph.App{graph.SocialNetwork, graph.MediaService, graph.Ecommerce, graph.Banking, graph.SwarmCloud} {
		app := build()
		cap := func(plat archsim.Platform) float64 {
			return findCapacity(func() *sim.Deployment {
				d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, Platform: plat, WorkerScale: 0.25, Seed: 13})
				return d
			}, 8, 1500*time.Millisecond, 5)
		}
		x := cap(archsim.XeonPlatform)
		x18 := cap(archsim.XeonLowFreq)
		tx := cap(archsim.ThunderXPlatform)
		ratio := "-"
		if tx > 0 {
			ratio = fmt.Sprintf("%.1fx", x/tx)
		}
		r.Rows = append(r.Rows, []string{app.Name, qpsStr(x), qpsStr(x18), qpsStr(tx), ratio})
	}
	r.Notes = append(r.Notes,
		"paper: all five services saturate much earlier on ThunderX; Xeon at 1.8GHz sits between",
		"Swarm is the least sensitive — it is bound by the cloud-edge link, not compute")
	return r
}

// Fig12 sweeps operating frequency against offered load and reports the
// p99 normalized to each application's QoS target (its low-load p99 ×5),
// reproducing the tail-latency heatmaps.
func Fig12() *Report {
	r := &Report{
		ID:     "fig12",
		Title:  "p99 normalized to QoS across load and frequency (>1.00 violates)",
		Header: []string{"application", "load", "2.4GHz", "2.0GHz", "1.6GHz", "1.2GHz"},
	}
	freqs := []float64{2.4, 2.0, 1.6, 1.2}
	type target struct {
		name  string
		build func() *graph.App
	}
	targets := []target{
		{"nginx", graph.Nginx}, {"memcached", graph.Memcached}, {"mongodb", graph.MongoDB},
		{"xapian", graph.Xapian}, {"recommender", graph.Recommender},
		{"socialNetwork", graph.SocialNetwork}, {"mediaService", graph.MediaService},
		{"ecommerce", graph.Ecommerce}, {"banking", graph.Banking}, {"swarm-cloud", graph.SwarmCloud},
	}
	dur := 1200 * time.Millisecond
	var monoSens, microSens []float64
	for _, tg := range targets {
		app := tg.build()
		// Section 3.8 provisioning: every tier sized to saturate at about
		// the same load (here ~400 QPS at nominal frequency), so frequency
		// loss bites every tier of the chain at once.
		mk := func(freq float64) *sim.Deployment {
			plat := archsim.XeonPlatform
			plat.FreqGHz = freq
			d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, Platform: plat, Seed: 12})
			d.BalanceWorkers(400, 1.3)
			return d
		}
		capQPS := findCapacity(func() *sim.Deployment { return mk(2.4) }, 8, dur, 5)
		// QoS targets are fixed at nominal conditions. The end-to-end
		// budget is 5x the nominal p99; each individual microservice of a
		// multi-tier application additionally carries a much stricter
		// per-tier budget (2x its nominal p99) — Section 4's explanation
		// for why microservices cannot tolerate poor single-thread
		// performance. Single-binary applications only have the end-to-end
		// budget.
		baseline := mk(2.4).RunOpenLoop(8, dur)
		qosE2E := 5 * float64(baseline.E2E.P99)
		qosTier := map[string]float64{}
		if len(app.Profiles) > 1 {
			for svc, snap := range baseline.PerService {
				qosTier[svc] = 2 * float64(snap.P99)
			}
		}
		for _, loadFrac := range []float64{0.3, 0.6, 0.9} {
			row := []string{app.Name, fmt.Sprintf("%.0f%%", loadFrac*100)}
			for _, freq := range freqs {
				res := mk(freq).RunOpenLoop(capQPS*loadFrac, dur)
				norm := float64(res.E2E.P99) / qosE2E
				for svc, snap := range res.PerService {
					if q := qosTier[svc]; q > 0 {
						if tn := float64(snap.P99) / q; tn > norm {
							norm = tn
						}
					}
				}
				row = append(row, f2(norm))
				if freq == 1.2 && loadFrac == 0.6 {
					if len(app.Profiles) <= 1 {
						monoSens = append(monoSens, norm)
					} else {
						microSens = append(microSens, norm)
					}
				}
			}
			r.Rows = append(r.Rows, row)
		}
	}
	monoAvg, microAvg := mean(monoSens), mean(microSens)
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean normalized p99 at 1.2GHz, 60%% load: single-tier %.2f vs end-to-end %.2f", monoAvg, microAvg),
		"paper: end-to-end microservices are more sensitive to frequency than monolithic services; MongoDB is nearly insensitive (I/O-bound)")
	return r
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
