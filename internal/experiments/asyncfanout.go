package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/core"
	"dsb/internal/metrics"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Knobs for the asyncfanout experiment. The timeline store is modeled as a
// fixed-capacity server (afStoreSlots concurrent ListPrepends, each costing
// afStoreRTT), so its saturation point is deterministic:
// afStoreSlots/(afFollowers·afStoreRTT) ≈ 250 posts/s of inline fan-out
// work. The level ladder straddles that point — the async arm is the only
// one whose write path can sustain offered load beyond it, because the
// broker absorbs the backlog and the consumer group works it off at the
// store's own pace. The service time is deliberately coarse (2ms): sleep
// granularity overshoots by ~100µs-1ms depending on the kernel's timer
// resolution, and a coarse base keeps that noise a small fraction of the
// model instead of dominating it.
const (
	afFollowers  = 8
	afStoreSlots = 4
	afStoreRTT   = 2 * time.Millisecond
	afQoS        = 40 * time.Millisecond
	afWarmup     = 200 * time.Millisecond
	afMeasure    = 800 * time.Millisecond
)

// afBrokerRTT models one broker instance's publish service time in the
// partitioned-broker contrast arms: each instance accepts publishes one at
// a time at afBrokerRTT apiece, so a single broker saturates at
// 1/afBrokerRTT = 500 publishes/s and two shards at double that. The model
// rides per-instance semaphores keyed by replica address, exactly like the
// store model, so partitioning the tier is the only way past the ceiling.
const afBrokerRTT = 2 * time.Millisecond

// afLevels is the offered-load ladder (posts/s). The store saturates
// between 180 and 300: every inline arm must fail by 300, while the async
// arm's ack path stays far below QoS through 420.
var afLevels = []float64{30, 60, 120, 180, 300, 420}

// afPartLevels is the ladder for the broker-capacity contrast pair. The
// single capacity-modeled broker saturates at 500 publishes/s, so it holds
// 300 (ρ=0.6) and fails 600 (ρ=1.2); two shards split the same offered
// load to ρ=0.6 each and hold both rungs.
var afPartLevels = []float64{300, 600}

// afPartQoS is the pair's p99 target. It is looser than afQoS because the
// pair's top rung runs at double the trio's: at 600 posts/s the open-loop
// driver's arrival bursts cost tens of ms of store+broker queueing on a
// healthy tier, and single-core scheduler noise can triple that. The gate
// still splits the regimes structurally: an over-capacity single broker
// (ρ=1.2) accumulates backlog for the rung's whole duration, putting a
// ~290ms floor under its p99 regardless of noise, while a partitioned tier
// at ρ=0.6 per shard sits at tens of ms.
const afPartQoS = 250 * time.Millisecond

// afMode selects the write-path layout under test.
type afMode int

const (
	// afSync is the paper's layout: Append walks the follower list
	// sequentially, one store round-trip at a time.
	afSync afMode = iota
	// afPipelined keeps the fan-out inline but pipelines the per-follower
	// prepends — afStoreSlots requests in flight over the multiplexed conn,
	// so the inline cost collapses from F·RTT to ceil(F/slots)·RTT.
	afPipelined
	// afAsync moves the fan-out off the write path entirely: Append
	// prepends the author's own timeline, publishes a FanoutEvent, and
	// returns at broker ack; the fanout consumer group hydrates followers
	// behind the write.
	afAsync
	// afAsyncCapped is afAsync with the broker publish-capacity model
	// applied to its single broker instance: the ack path now queues on
	// the broker itself once offered load passes 1/afBrokerRTT.
	afAsyncCapped
	// afAsyncPart is afAsyncCapped on a two-shard broker tier: the topic
	// partitions by message key across both instances, so the same capacity
	// model yields twice the publish throughput.
	afAsyncPart
)

func (m afMode) String() string {
	switch m {
	case afSync:
		return "sync"
	case afPipelined:
		return "pipelined"
	case afAsyncCapped:
		return "async-1broker"
	case afAsyncPart:
		return "async-2shards"
	default:
		return "async"
	}
}

// afLevelResult is one (arm, offered-load) measurement.
type afLevelResult struct {
	qps        float64
	throughput float64
	p50, p99   time.Duration
	errs       int64
	// good means the level is sustained: every measured Append completed
	// and the p99 met the QoS target.
	good bool
	// delivered/appended is the async arm's completeness probe: after
	// draining the consumer group, the probe follower's stored timeline
	// must hold every post of the run.
	appended, delivered int
	drain               time.Duration
}

// afArmResult is one arm's walk up the ladder.
type afArmResult struct {
	mode      afMode
	levels    []afLevelResult
	sustained float64 // highest offered load with good=true (0 = none)
}

// afRun boots a fresh Social Network in the given layout and offers Append
// traffic open-loop at qps with Poisson arrivals (absolute schedule: sleep
// overshoot becomes a small burst, never a silently lower rate). The store
// capacity model rides the middleware wire: every ListPrepend to
// social.db-timeline — from writeTimeline and from the fanout consumers
// alike — takes one of afStoreSlots service slots for afStoreRTT, so
// inline arms queue on exactly the resource the async arm's write path
// avoids.
func afRun(mode afMode, qps float64) (afLevelResult, error) {
	app := core.NewApp("asyncfanout", core.Options{DisableTracing: true})
	defer app.Close()
	sem := make(chan struct{}, afStoreSlots)
	mw := func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			if call.Target == "social.db-timeline" && call.Method == "ListPrepend" {
				sem <- struct{}{}
				time.Sleep(afStoreRTT)
				<-sem
			}
			return next(ctx, call)
		}
	}
	cfg := socialnetwork.Config{
		SearchShards: 2,
		Middleware:   []transport.Middleware{mw},
	}
	switch mode {
	case afSync:
		cfg.FanoutWorkers = 1
	case afPipelined:
		cfg.FanoutWorkers = afStoreSlots
	case afAsync, afAsyncCapped, afAsyncPart:
		cfg.AsyncFanout = true
		cfg.FanoutConsumers = 2
		cfg.FanoutWorkers = afStoreSlots
	}
	if mode == afAsyncCapped || mode == afAsyncPart {
		// The capacity pair isolates the broker's publish ceiling: keep the
		// consumer tier small so the author's own prepend (on the measured
		// ack path) is not queueing behind a full store's worth of consumer
		// fan-out work — that contention is the *store* model's story, told
		// by the first three arms.
		cfg.FanoutConsumers = 1
		cfg.FanoutWorkers = 2
	}
	if mode == afAsyncCapped || mode == afAsyncPart {
		// Broker publish-capacity model: each broker instance serves
		// publishes one at a time at afBrokerRTT apiece, modeled as a
		// virtual-time FIFO per replica address (the shard router stamps
		// Call.Addr; the single-instance layout's load-balanced wire leaves
		// it empty, which keys its one lane). Virtual time — advance the
		// lane's next-departure clock by exactly afBrokerRTT and sleep until
		// your slot — keeps the modeled capacity exact under scheduler
		// pressure, where a sleep-while-holding-a-semaphore model bleeds
		// capacity through sleep overshoot. Adding shards adds lanes:
		// partitioning is the only way to scale the tier's aggregate
		// publish throughput.
		var bmu sync.Mutex
		lanes := make(map[string]time.Time)
		bmw := func(next transport.Invoker) transport.Invoker {
			return func(ctx context.Context, call *transport.Call) error {
				if call.Target == "social.broker" && call.Method == "Publish" {
					now := time.Now()
					bmu.Lock()
					depart := lanes[call.Addr]
					if depart.Before(now) {
						depart = now
					}
					depart = depart.Add(afBrokerRTT)
					lanes[call.Addr] = depart
					bmu.Unlock()
					time.Sleep(time.Until(depart))
				}
				return next(ctx, call)
			}
		}
		cfg.Middleware = append(cfg.Middleware, bmw)
	}
	if mode == afAsyncPart {
		cfg.BrokerShards = 2
	}
	sn, err := socialnetwork.New(app, cfg)
	if err != nil {
		return afLevelResult{}, err
	}
	defer sn.Close()
	ctx := context.Background()
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "author", Password: "pw"}, nil); err != nil {
		return afLevelResult{}, err
	}
	for i := 0; i < afFollowers; i++ {
		u := fmt.Sprintf("f%d", i)
		if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: u, Password: "pw"}, nil); err != nil {
			return afLevelResult{}, err
		}
		if err := sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: u, Followee: "author"}, nil); err != nil {
			return afLevelResult{}, err
		}
	}
	wt, err := app.RPC("asyncfanout", "social.writeTimeline")
	if err != nil {
		return afLevelResult{}, err
	}

	var done, errs atomic.Int64
	lat := metrics.NewHistogram()
	rng := rand.New(rand.NewPCG(17, 0x5EED))
	start := time.Now()
	var wg sync.WaitGroup
	appended := 0
	var sched time.Duration
	for {
		sched += time.Duration(rng.ExpFloat64() * float64(time.Second) / qps)
		if sched >= afWarmup+afMeasure {
			break
		}
		if d := sched - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		appended++
		req := socialnetwork.AppendTimelineReq{
			Author: "author", PostID: fmt.Sprintf("p%06d", appended), Ts: int64(appended),
		}
		wg.Add(1)
		go func(at time.Duration, measured bool) {
			defer wg.Done()
			// Generous per-call deadline so a queued Append completes and is
			// *measured* slow instead of vanishing into an error.
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err := wt.Call(cctx, "Append", req, nil)
			cancel()
			if measured {
				// Latency from the scheduled arrival, not the actual send:
				// open-loop measurements must charge launch delay to the
				// system, or saturation hides inside the generator.
				lat.RecordDuration(time.Since(start) - at)
				done.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(sched, sched > afWarmup)
	}
	wg.Wait()

	res := afLevelResult{
		qps:        qps,
		throughput: float64(done.Load()) / afMeasure.Seconds(),
		p50:        lat.PercentileDuration(50),
		p99:        lat.PercentileDuration(99),
		errs:       errs.Load(),
		appended:   appended,
	}
	// Completeness probe: drain the consumer group (a no-op for the inline
	// arms) and count the posts that actually reached a probe follower's
	// stored timeline — async must deliver everything it acked, just later.
	t0 := time.Now()
	if err := sn.DrainFanout(30 * time.Second); err != nil {
		return res, err
	}
	res.drain = time.Since(t0)
	dbCaller, err := app.RPC("asyncfanout", "social.db-timeline")
	if err != nil {
		return res, err
	}
	doc, found, err := svcutil.DB{C: dbCaller}.Get(ctx, "timelines", "tl:f0")
	if err != nil {
		return res, err
	}
	if found {
		var ids []string
		if err := codec.Unmarshal(doc.Body, &ids); err != nil {
			return res, err
		}
		res.delivered = len(ids)
	}
	qos := afQoS
	if mode == afAsyncCapped || mode == afAsyncPart {
		qos = afPartQoS
	}
	res.good = res.errs == 0 && res.p99 <= qos && res.delivered >= res.appended
	return res, nil
}

// afLadder walks one arm up the offered-load ladder, stopping at the first
// level it fails to sustain (offered load is monotone; levels above a
// failed one only queue deeper).
func afLadder(mode afMode, levels []float64) (afArmResult, error) {
	arm := afArmResult{mode: mode}
	for _, qps := range levels {
		res, err := afRun(mode, qps)
		if err != nil {
			return arm, err
		}
		arm.levels = append(arm.levels, res)
		if !res.good {
			break
		}
		arm.sustained = qps
	}
	return arm, nil
}

// AsyncFanout contrasts three write-path layouts for the Social Network's
// follower fan-out — the paper's most expensive query class — at a fixed
// p99 QoS target. The sync arm pays F sequential store round-trips inline;
// the pipelined arm overlaps them over the multiplexed conn, cutting inline
// latency ~F/slots-fold but still coupling the write path to the store's
// capacity; the async arm publishes to the broker and returns at ack, so
// offered load beyond the store's saturation point lands as consumer-group
// backlog instead of write-path queueing. The table prints each arm's walk
// up the ladder; the headline number is the highest offered load each arm
// sustains inside QoS.
func AsyncFanout() *Report {
	r := &Report{
		ID:    "asyncfanout",
		Title: "Sync vs pipelined vs broker-backed async fan-out at fixed p99 QoS (live stack)",
		Header: []string{"arm", "offered (posts/s)", "throughput", "p50", "p99",
			"within QoS", "delivered", "drain"},
	}
	var arms []afArmResult
	ladders := []struct {
		mode   afMode
		levels []float64
	}{
		{afSync, afLevels}, {afPipelined, afLevels}, {afAsync, afLevels},
		{afAsyncCapped, afPartLevels}, {afAsyncPart, afPartLevels},
	}
	for _, l := range ladders {
		arm, err := afLadder(l.mode, l.levels)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("asyncfanout %s: %v", l.mode, err))
			continue
		}
		arms = append(arms, arm)
		for _, lv := range arm.levels {
			verdict := "yes"
			if !lv.good {
				verdict = "NO"
			}
			r.Rows = append(r.Rows, []string{
				l.mode.String(), qpsStr(lv.qps), qpsStr(lv.throughput),
				ms(lv.p50), ms(lv.p99), verdict,
				fmt.Sprintf("%d/%d", lv.delivered, lv.appended),
				fmt.Sprintf("%.0fms", float64(lv.drain)/1e6),
			})
		}
	}
	if len(arms) == 5 {
		r.Notes = append(r.Notes,
			fmt.Sprintf("sustained offered load at p99<=%s: sync %s, pipelined %s, async %s posts/s (%d followers, store = %d slots x %s per prepend, saturation ~%.0f posts/s of inline fan-out)",
				ms(afQoS), qpsStr(arms[0].sustained), qpsStr(arms[1].sustained), qpsStr(arms[2].sustained),
				afFollowers, afStoreSlots, us(afStoreRTT),
				float64(afStoreSlots)/(afFollowers*afStoreRTT.Seconds())),
			"async sustains load past store saturation because the ack path is author-prepend + broker publish; the backlog drains at the store's own pace after the burst (drain column), with every acked post delivered",
			"pipelining shares sync's capacity ceiling (same store) but collapses inline p50 ~F/slots-fold: ceil(F/slots) waves of in-flight prepends instead of F sequential round-trips",
			fmt.Sprintf("partitioned broker tier (QoS p99<=%s at its doubled load): with publish modeled at %s per broker instance (capacity %.0f/s), one broker sustains %s posts/s and two shards %s — the topic partitions by message key, so adding shards scales the ack path past one instance's fan-in",
				ms(afPartQoS), ms(afBrokerRTT), 1/afBrokerRTT.Seconds(),
				qpsStr(arms[3].sustained), qpsStr(arms[4].sustained)),
			fmt.Sprintf("sync/pipelined/async ladder QoS is p99<=%s", ms(afQoS)))
	}
	return r
}
