package experiments

import (
	"fmt"
	"testing"
)

// afShapeViolations runs the three asyncfanout arms once and returns the
// directional claims that did not hold. An empty list is a clean pass.
func afShapeViolations() []string {
	var v []string
	arms := make(map[afMode]afArmResult, 5)
	for _, mode := range []afMode{afSync, afPipelined, afAsync} {
		arm, err := afLadder(mode, afLevels)
		if err != nil {
			return []string{fmt.Sprintf("%s arm failed: %v", mode, err)}
		}
		arms[mode] = arm
	}
	for _, mode := range []afMode{afAsyncCapped, afAsyncPart} {
		arm, err := afLadder(mode, afPartLevels)
		if err != nil {
			return []string{fmt.Sprintf("%s arm failed: %v", mode, err)}
		}
		arms[mode] = arm
	}

	// Every arm must be healthy at the bottom rung — the sustained-load
	// comparison is meaningless if even an unloaded write path misses QoS.
	for _, mode := range []afMode{afSync, afPipelined, afAsync} {
		if arms[mode].sustained < afLevels[0] {
			v = append(v, fmt.Sprintf("%s arm did not sustain even the lowest level (%.0f posts/s): %+v",
				mode, afLevels[0], arms[mode].levels))
		}
	}
	if len(v) > 0 {
		return v
	}

	// The acceptance bar: async fan-out sustains strictly higher offered
	// load than sync at the same p99 QoS target, and specifically load past
	// the store's inline saturation point (~250 posts/s), which no inline
	// arm can reach.
	syncQ, pipeQ, asyncQ := arms[afSync].sustained, arms[afPipelined].sustained, arms[afAsync].sustained
	if asyncQ <= syncQ {
		v = append(v, fmt.Sprintf("async sustained %.0f posts/s, sync %.0f — async must be strictly higher", asyncQ, syncQ))
	}
	if asyncQ < 300 {
		v = append(v, fmt.Sprintf("async sustained only %.0f posts/s — it should ride past store saturation (>= 300)", asyncQ))
	}
	if syncQ >= 300 {
		v = append(v, fmt.Sprintf("sync sustained %.0f posts/s beyond store saturation — the capacity model is not binding", syncQ))
	}
	// Pipelining's win is inline latency, not capacity (both arms share the
	// store), so pin it where it is deterministic: at the unloaded bottom
	// rung, ceil(F/slots) pipelined waves must beat F sequential
	// round-trips on the median.
	if pipeP50, syncP50 := arms[afPipelined].levels[0].p50, arms[afSync].levels[0].p50; pipeP50 >= syncP50 {
		v = append(v, fmt.Sprintf("pipelined bottom-rung p50 %v >= sync %v — in-flight prepends should beat sequential round-trips", pipeP50, syncP50))
	}
	_ = pipeQ

	// At-least-once completeness: every level the async arms sustained must
	// have delivered every acked post to the probe follower after drain.
	for _, mode := range []afMode{afAsync, afAsyncCapped, afAsyncPart} {
		for _, lv := range arms[mode].levels {
			if lv.good && lv.delivered < lv.appended {
				v = append(v, fmt.Sprintf("%s at %.0f posts/s delivered %d/%d after drain — acked posts went missing",
					mode, lv.qps, lv.delivered, lv.appended))
			}
		}
	}

	// Partitioning the broker tier is what scales the ack path past one
	// instance's publish capacity (modeled at 1/afBrokerRTT = 500/s): the
	// capped single broker must fail the 600 posts/s rung that two shards
	// sustain.
	cappedQ, partQ := arms[afAsyncCapped].sustained, arms[afAsyncPart].sustained
	if cappedQ >= afPartLevels[len(afPartLevels)-1] {
		v = append(v, fmt.Sprintf("single capacity-capped broker sustained %.0f posts/s — the publish-capacity model is not binding", cappedQ))
	}
	if partQ < afPartLevels[len(afPartLevels)-1] {
		v = append(v, fmt.Sprintf("two-shard broker tier sustained only %.0f posts/s — partitioning should carry the top rung (%.0f)",
			partQ, afPartLevels[len(afPartLevels)-1]))
	}
	if partQ <= cappedQ {
		v = append(v, fmt.Sprintf("partitioned broker sustained %.0f posts/s, single %.0f — partitioning must be strictly higher", partQ, cappedQ))
	}
	return v
}

// TestAsyncFanoutShape asserts the directional claims of the asyncfanout
// experiment: with the timeline store modeled as a fixed-capacity server,
// the broker-backed async write path sustains strictly higher offered load
// at the p99 QoS target than the synchronous fan-out — including load past
// the store's saturation point, which lands as drained-later backlog
// instead of write-path queueing — while pipelining never does worse than
// sequential. All three arms are wall-clock queueing measurements, so the
// shape gets three attempts and passes on the first clean one; a real
// regression fails all three deterministically.
func TestAsyncFanoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live fan-out ladder runs skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = afShapeViolations()
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
