package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dsb/internal/controlplane"
	"dsb/internal/core"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// AutoscaleLive drives a three-tier Social-Network-shaped deployment
// (REST front door → compose tier → text tier) through a load ramp that
// overruns the static capacity of the compose tier, and compares four
// configurations:
//
//	static, no admission  — fixed replicas, bounded workers, unbounded
//	                        queues: the paper's Fig 17 backpressure collapse
//	static + admission    — same replicas guarded by the control plane's
//	                        admission (bounded queue, CoDel, deadline
//	                        budget): goodput capped at capacity but served
//	                        requests stay inside QoS
//	autoscale threshold   — the classic utilization-threshold autoscaler,
//	                        one replica per reconcile pass
//	autoscale latency-aware — the queue/latency-aware policy sizing its jump
//	                        from measured demand and scaling only tiers that
//	                        are locally congested (avoiding Fig 18's
//	                        upstream mis-scale)
//
// Load is open-loop (non-homogeneous Poisson over a linear ramp), so a
// struggling deployment faces the full offered rate rather than a
// self-throttling closed loop. Goodput counts replies inside the QoS
// target, classified by the phase the request was issued in.
func AutoscaleLive() *Report {
	r := &Report{
		ID:    "autoscale-live",
		Title: "Load ramp vs static, admission-controlled, and autoscaled deployments (live stack)",
		Header: []string{"config", "phase", "offered (req/s)", "goodput (req/s)",
			"good/offered", "p99", "compose replicas"},
	}

	configs := []aslConfig{
		{name: "static, no admission"},
		{name: "static + admission", admission: true},
		{name: "autoscale threshold", admission: true,
			policy: controlplane.UtilizationThreshold{Up: 0.75, Down: 0.2}},
		{name: "autoscale latency-aware", admission: true,
			policy: controlplane.LatencyAware{QoS: aslQoS}},
	}
	for _, cfg := range configs {
		res := runAutoscale(cfg)
		for i, ph := range res.phases {
			r.Rows = append(r.Rows, []string{
				cfg.name, aslPhaseNames[i],
				qpsStr(ph.offered), qpsStr(ph.goodput), f2(ph.ratio), ms(ph.p99),
				fmt.Sprintf("%d", ph.composeReplicas),
			})
		}
		r.Notes = append(r.Notes, fmt.Sprintf("%s: compose ended at %d replicas (peak %d), text at %d; %d requests shed at compose",
			cfg.name, res.composeEnd, res.composePeak, res.textEnd, res.composeShed))
	}
	r.Notes = append(r.Notes,
		"no admission: the overloaded tier queues without bound; every queued request times out client-side (Fig 17)",
		"admission: sheds keep served requests inside QoS, so goodput tracks static capacity instead of collapsing",
		"latency-aware: scales compose straight to measured demand on its own congestion signals and leaves the uncongested text tier alone")
	return r
}

const (
	aslQoS     = 60 * time.Millisecond
	aslTimeout = 250 * time.Millisecond // client patience; QoS violations surface as latency, not errors

	aslWarm  = 700 * time.Millisecond
	aslRise  = 600 * time.Millisecond
	aslPeakD = 1000 * time.Millisecond

	aslBaseRate = 500.0 // req/s during warmup
	aslPeakMult = 5.2   // ramps to 2600 req/s, ~1.4× static compose capacity

	composeWorkers = 4
	composeWork    = 3 * time.Millisecond // plus the downstream text call
	textWorkers    = 8
	textWork       = time.Millisecond
)

var aslPhaseNames = [3]string{"warm", "ramp", "overload"}

type aslConfig struct {
	name      string
	admission bool
	policy    controlplane.Policy // nil = static
}

type aslPhaseResult struct {
	offered, goodput, ratio float64
	p99                     time.Duration
	composeReplicas         int // at phase end
}

type aslResult struct {
	phases                  [3]aslPhaseResult
	composeEnd, composePeak int
	textEnd                 int
	composeShed             int64
}

type aslPhaseStats struct {
	issued, good int64
	lat          *metrics.Histogram
}

// runAutoscale boots one configuration and drives the ramp through it.
func runAutoscale(cfg aslConfig) aslResult {
	opts := core.Options{
		DisableTracing: true,
		Resilience: &transport.ResilienceConfig{
			Budget: &transport.BudgetConfig{Fraction: 0.9},
			// Overload sheds are retryable at another replica without
			// consuming the failure budget; real failures still do.
			Retry:   &transport.RetryConfig{Attempts: 3},
			Breaker: &transport.BreakerConfig{Failures: 8, Cooldown: 200 * time.Millisecond},
		},
	}
	var plane *controlplane.Plane
	if cfg.admission {
		plane = controlplane.NewPlane(controlplane.PlaneConfig{
			PerService: map[string]controlplane.AdmissionConfig{
				"asl.compose": {MaxConcurrent: composeWorkers, MaxQueue: 32},
				"asl.text":    {MaxConcurrent: textWorkers, MaxQueue: 64},
			},
		})
		opts.RPCServerHook = plane.HookRPC
		opts.RESTServerHook = plane.HookREST
	}
	app := core.NewApp("autoscale", opts)
	defer app.Close()
	sp := controlplane.NewAppSpawner(app)

	// Without admission the worker bound lives in the server itself, with
	// an unbounded queue in front — the collapse configuration.
	bound := func(s *rpc.Server, n int) {
		if !cfg.admission {
			s.SetConcurrency(n)
		}
	}
	sp.Define("asl.text", func(s *rpc.Server) {
		bound(s, textWorkers)
		s.Handle("Render", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			time.Sleep(textWork)
			return nil, nil
		})
	})
	if _, err := sp.Spawn("asl.text"); err != nil {
		return aslResult{}
	}
	textCl, err := app.RPC("asl.compose", "asl.text")
	if err != nil {
		return aslResult{}
	}
	sp.Define("asl.compose", func(s *rpc.Server) {
		bound(s, composeWorkers)
		s.Handle("Compose", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			time.Sleep(composeWork)
			return nil, textCl.Call(ctx, "Render", nil, nil)
		})
	})
	for i := 0; i < 2; i++ {
		if _, err := sp.Spawn("asl.compose"); err != nil {
			return aslResult{}
		}
	}
	composeCl, err := app.RPC("asl.frontend", "asl.compose")
	if err != nil {
		return aslResult{}
	}
	if _, err := app.StartREST("asl.frontend", func(s *rest.Server) {
		s.Handle("GET /compose", func(ctx *rest.Ctx, body []byte) (any, error) {
			return nil, composeCl.Call(ctx, "Compose", nil, nil)
		})
	}); err != nil {
		return aslResult{}
	}
	front, err := app.REST("client", "asl.frontend")
	if err != nil {
		return aslResult{}
	}

	var ctrl *controlplane.Controller
	if cfg.policy != nil {
		ctrl = controlplane.NewController(controlplane.ControllerConfig{
			Registry: app.Registry,
			Network:  app.Net,
			Spawner:  sp,
			Policy:   cfg.policy,
			Interval: 100 * time.Millisecond,
			Services: []controlplane.ManagedService{
				{Name: "asl.compose", Min: 2, Max: 8},
				{Name: "asl.text", Min: 1, Max: 4},
			},
		})
		ctrl.Start()
		defer ctrl.Stop()
	}

	// Pre-generate the open-loop arrival schedule so issue times follow the
	// absolute ramp clock: a lagging send loop batches catch-up arrivals
	// instead of silently thinning the offered load.
	total := aslWarm + aslRise + aslPeakD
	arr := loadgen.NewNonHomogeneous(aslBaseRate,
		loadgen.Ramp{Start: aslWarm, Rise: aslRise, From: 1, To: aslPeakMult},
		aslPeakMult, 0xA5CA1E)
	sched := loadgen.Schedule(arr, total)
	phaseOf := func(at time.Duration) int {
		switch {
		case at < aslWarm:
			return 0
		case at < aslWarm+aslRise:
			return 1
		default:
			return 2
		}
	}

	var stats [3]aslPhaseStats
	for i := range stats {
		stats[i].lat = metrics.NewHistogram()
	}
	var replicasAtPhaseEnd [3]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	prevPhase := 0
	for _, at := range sched {
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		ph := phaseOf(at)
		if ph != prevPhase {
			replicasAtPhaseEnd[prevPhase] = len(app.Registry.Lookup("asl.compose"))
			prevPhase = ph
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), aslTimeout)
			t0 := time.Now()
			err := front.Do(ctx, "GET", "/compose", nil, nil)
			cancel()
			lat := time.Since(t0)
			mu.Lock()
			st := &stats[ph]
			st.issued++
			if err == nil {
				st.lat.RecordDuration(lat)
				if lat <= aslQoS {
					st.good++
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	replicasAtPhaseEnd[2] = len(app.Registry.Lookup("asl.compose"))
	if ctrl != nil {
		ctrl.Stop()
	}

	res := aslResult{
		composeEnd: replicasAtPhaseEnd[2],
		textEnd:    len(app.Registry.Lookup("asl.text")),
	}
	res.composePeak = res.composeEnd
	if ctrl != nil {
		for _, n := range ctrl.History("asl.compose") {
			if n > res.composePeak {
				res.composePeak = n
			}
		}
	}
	if plane != nil {
		for _, a := range plane.Admissions("asl.compose") {
			res.composeShed += a.Report().Shed
		}
	}
	durs := [3]time.Duration{aslWarm, aslRise, aslPeakD}
	for i := range stats {
		st := &stats[i]
		pr := aslPhaseResult{
			offered:         float64(st.issued) / durs[i].Seconds(),
			goodput:         float64(st.good) / durs[i].Seconds(),
			p99:             st.lat.PercentileDuration(99),
			composeReplicas: replicasAtPhaseEnd[i],
		}
		if st.issued > 0 {
			pr.ratio = float64(st.good) / float64(st.issued)
		}
		res.phases[i] = pr
	}
	return res
}
