package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"dsb/internal/codec"
	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/shard"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Broker-crash experiment: kill a broker instance mid-fanout and measure
// what the durability contract is worth. Both arms run the Social Network's
// async timeline path on a two-shard broker tier under a short health
// lease; the replicated arm gives each shard a mirror (BrokerReplicas=2),
// the unreplicated arm does not. Producers publish with stable keys
// (author/postID) and retry failed Appends — the end-to-end idempotency the
// tier is designed around — and the probe follower's stored timeline is the
// ground truth for delivery. Crash-arm completeness is asserted on that
// *delivered state*, never on a backlog drain: the corpse keeps its local
// queue memory, so cluster-wide lag counts orphaned copies forever.
const (
	bcFollowers  = 8
	bcStoreSlots = 4
	bcStoreRTT   = 2 * time.Millisecond
	// bcRate offers posts above the fan-out drain capacity
	// (bcStoreSlots/(bcFollowers·bcStoreRTT) = 250/s), so a consumer-group
	// backlog is guaranteed to be standing on both shards when the crash
	// lands.
	bcRate  = 420.0
	bcPosts = 300
	// bcLease is the broker tier's health lease: the crash window — during
	// which publishes to the dead shard fail over or stall and its backlog
	// is unreachable — ends when the lease evicts the corpse and the ring
	// re-forms.
	bcLease = 120 * time.Millisecond
	// bcCrashAt fires the kill mid-drive, with backlog standing and
	// messages leased.
	bcCrashAt = 300 * time.Millisecond
	// bcAttempt bounds one Append attempt; a publish stalled on the
	// not-yet-evicted corpse fails fast enough to retry within the run.
	bcAttempt = 400 * time.Millisecond
	// bcAckBudget bounds the per-post retry loop: a post unacked by then
	// counts as shed, not lost.
	bcAckBudget = 5 * time.Second
	// bcConverge bounds the post-drive delivery watch; bcSettled ends it
	// early once the delivered set stops growing.
	bcConverge = 10 * time.Second
	bcSettled  = 2 * time.Second
)

// bcResult is one arm's accounting. All delivery counts are against the
// acked set: acked is the contract (Append returned success), delivered is
// acked posts present on the probe follower's stored timeline, lost is
// acked posts that never arrive — the quantity replication must hold at
// zero.
type bcResult struct {
	replicated bool
	appended   int // unique posts driven
	acked      int // posts whose Append eventually succeeded
	retries    int // failed Append attempts (crash-window stall, quantified)
	delivered  int // acked posts on the probe timeline at settle
	lost       int // acked - delivered
	dups       int // duplicate timeline entries (must stay 0)
	recovered  bool
	recovery   time.Duration // crash → last acked post delivered
	schedule   string
}

// bcRun boots one arm, kills shard 0's primary broker mid-drive, and
// watches the probe follower's timeline until the delivered set settles.
// push switches the fanout consumers from poll to push delivery — the push
// experiment reruns the replicated crash under it to show the durability
// contract carries over to streamed delivery.
func bcRun(replicated, push bool, seed int64) (bcResult, error) {
	inj := fault.NewInjector(seed)
	app := core.NewApp("brokercrash", core.Options{
		DisableTracing: true,
		Network:        inj.Wrap(rpc.NewMem()),
		LeaseTTL:       bcLease,
	})
	defer app.Close()
	sem := make(chan struct{}, bcStoreSlots)
	mw := func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			if call.Target == "social.db-timeline" && call.Method == "ListPrepend" {
				sem <- struct{}{}
				time.Sleep(bcStoreRTT)
				<-sem
			}
			return next(ctx, call)
		}
	}
	cfg := socialnetwork.Config{
		SearchShards:    2,
		Middleware:      []transport.Middleware{mw},
		AsyncFanout:     true,
		FanoutConsumers: 2,
		FanoutWorkers:   bcStoreSlots,
		BrokerShards:    2,
		PushFanout:      push,
	}
	if replicated {
		cfg.BrokerReplicas = 2
	}
	sn, err := socialnetwork.New(app, cfg)
	if err != nil {
		return bcResult{}, err
	}
	defer sn.Close()
	ctx := context.Background()
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "author", Password: "pw"}, nil); err != nil {
		return bcResult{}, err
	}
	for i := 0; i < bcFollowers; i++ {
		u := fmt.Sprintf("f%d", i)
		if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: u, Password: "pw"}, nil); err != nil {
			return bcResult{}, err
		}
		if err := sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: u, Followee: "author"}, nil); err != nil {
			return bcResult{}, err
		}
	}
	wt, err := app.RPC("brokercrash", "social.writeTimeline")
	if err != nil {
		return bcResult{}, err
	}

	// The victim is shard 0's primary: the lowest-addressed replica, the
	// same deterministic rule publishers and consumers route by. In the
	// unreplicated arm that is the shard's only instance — its backlog has
	// no mirror to survive on.
	var victimAddr string
	for _, in := range app.Registry.Instances("social.broker") {
		if in.Meta[shard.MetaShard] != "0" {
			continue
		}
		if victimAddr == "" || in.Addr < victimAddr {
			victimAddr = in.Addr
		}
	}
	var victim *core.Instance
	for _, inst := range app.Instances("social.broker") {
		if inst.Addr == victimAddr {
			victim = inst
		}
	}
	if victim == nil {
		return bcResult{}, fmt.Errorf("brokercrash: no broker instance for shard 0")
	}
	sc := fault.NewScenario(inj)
	sc.At(bcCrashAt, fault.Action("crash(social.broker shard0 primary)", victim.Kill))
	res := bcResult{replicated: replicated, schedule: sc.String()}

	playCtx, stopPlay := context.WithCancel(ctx)
	defer stopPlay()
	start := time.Now()
	played := sc.Play(playCtx)

	// Open-loop keyed Appends on a Poisson clock. Every post retries with
	// the same PostID until acked or its budget lapses: the retry
	// republishes the same broker key, so broker-side publish dedup plus
	// consumer idempotency make the crash-window retries safe end to end.
	var mu sync.Mutex
	ackedSet := make(map[string]struct{}, bcPosts)
	retries := 0
	rng := rand.New(rand.NewPCG(29, 0xC4A5))
	var wg sync.WaitGroup
	var sched time.Duration
	for i := 1; i <= bcPosts; i++ {
		sched += time.Duration(rng.ExpFloat64() * float64(time.Second) / bcRate)
		if d := sched - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		postID := fmt.Sprintf("p%06d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(bcAckBudget)
			req := socialnetwork.AppendTimelineReq{Author: "author", PostID: postID, Ts: 1}
			for {
				cctx, cancel := context.WithTimeout(ctx, bcAttempt)
				err := wt.Call(cctx, "Append", req, nil)
				cancel()
				if err == nil {
					mu.Lock()
					ackedSet[postID] = struct{}{}
					mu.Unlock()
					return
				}
				mu.Lock()
				retries++
				mu.Unlock()
				if time.Now().After(deadline) {
					return // shed, not acked — excluded from the loss account
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	<-played
	crashWall := start.Add(bcCrashAt)
	res.appended = bcPosts
	res.acked = len(ackedSet)
	res.retries = retries

	// Delivery watch on the probe follower's stored timeline: poll until
	// every acked post is present (recovered) or the set stops growing
	// (whatever is still missing is lost). GroupLag is useless here — the
	// corpse's orphaned copies keep cluster-wide lag nonzero forever — so
	// completeness is judged on delivered state alone.
	dbCaller, err := app.RPC("brokercrash", "social.db-timeline")
	if err != nil {
		return res, err
	}
	db := svcutil.DB{C: dbCaller}
	readTimeline := func() []string {
		doc, found, err := db.Get(ctx, "timelines", "tl:f0")
		if err != nil || !found {
			return nil
		}
		var ids []string
		if codec.Unmarshal(doc.Body, &ids) != nil {
			return nil
		}
		return ids
	}
	tally := func(ids []string) (delivered, dups int) {
		seen := make(map[string]int, len(ids))
		for _, id := range ids {
			seen[id]++
		}
		for id, n := range seen {
			if n > 1 {
				dups += n - 1
			}
			if _, ok := ackedSet[id]; ok {
				delivered++
			}
		}
		return delivered, dups
	}
	watchEnd := time.Now().Add(bcConverge)
	lastGrow := time.Now()
	lastLen := -1
	for {
		ids := readTimeline()
		res.delivered, res.dups = tally(ids)
		if res.delivered == res.acked {
			res.recovered = true
			res.recovery = time.Since(crashWall)
			break
		}
		if len(ids) != lastLen {
			lastLen = len(ids)
			lastGrow = time.Now()
		}
		if time.Now().After(watchEnd) || time.Since(lastGrow) > bcSettled {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	res.lost = res.acked - res.delivered
	return res, nil
}

// BrokerCrash contrasts the partitioned broker tier with and without
// per-shard replication under a mid-fanout broker crash. In both arms the
// producer contract is identical — keyed publishes, retries on failure —
// so the arms differ only in what the tier can still serve after the lease
// evicts the corpse: the replicated arm redelivers every acked-but-
// undelivered message from the dead shard's mirror (zero loss, bounded
// recovery), the unreplicated arm loses the dead shard's standing backlog
// outright, quantified in the lost column.
func BrokerCrash() *Report {
	r := &Report{
		ID:    "brokercrash",
		Title: "Broker crash mid-fanout: replicated vs unreplicated partitioned tier (live stack)",
		Header: []string{"arm", "posts", "acked", "retries", "delivered", "lost", "dups",
			"recovered", "recovery"},
	}
	for _, replicated := range []bool{true, false} {
		arm := "unreplicated (2 shards x 1)"
		if replicated {
			arm = "replicated (2 shards x 2)"
		}
		res, err := bcRun(replicated, false, 41)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("brokercrash %s: %v", arm, err))
			continue
		}
		recovered := "yes"
		recovery := fmt.Sprintf("%.0fms", float64(res.recovery)/1e6)
		if !res.recovered {
			recovered, recovery = "NO", "-"
		}
		r.Rows = append(r.Rows, []string{
			arm, fmt.Sprintf("%d", res.appended), fmt.Sprintf("%d", res.acked),
			fmt.Sprintf("%d", res.retries),
			fmt.Sprintf("%d/%d", res.delivered, res.acked),
			fmt.Sprintf("%d", res.lost), fmt.Sprintf("%d", res.dups),
			recovered, recovery,
		})
		if len(r.Notes) == 0 {
			r.Notes = append(r.Notes, fmt.Sprintf("schedule: %s; lease %v evicts the corpse and re-forms the ring",
				strings.TrimSpace(res.schedule), bcLease))
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("offered %s posts/s against %.0f/s of fan-out drain keeps a standing backlog on both shards when the crash lands at %v",
			qpsStr(bcRate), float64(bcStoreSlots)/(bcFollowers*bcStoreRTT.Seconds()), bcCrashAt),
		"acked ⇒ mirrored: the replicated arm's publishes reach every live replica of the owning shard before Append returns, so the mirror redelivers the corpse's queued and leased messages once consumers fail over — exactly-once at the timeline via key dedup and unique prepends",
		"delivery is asserted on the probe follower's stored timeline, not on backlog drain: the dead broker keeps its queue memory, so cluster-wide lag counts orphaned copies forever")
	return r
}
