package experiments

import (
	"fmt"
	"testing"
	"time"
)

// bcRecoveryBound is the shape test's ceiling on the replicated arm's
// crash-to-complete time: eviction (one lease) plus the standing backlog
// draining at the store's pace, with generous slack for scheduler noise.
const bcRecoveryBound = 8 * time.Second

// bcShapeViolations runs both broker-crash arms once and returns the
// durability claims that did not hold. An empty list is a clean pass.
func bcShapeViolations(seed int64) []string {
	var v []string
	repl, err := bcRun(true, false, seed)
	if err != nil {
		return []string{fmt.Sprintf("replicated arm failed: %v", err)}
	}
	unrepl, err := bcRun(false, false, seed)
	if err != nil {
		return []string{fmt.Sprintf("unreplicated arm failed: %v", err)}
	}

	// Both arms must have acked a meaningful share of the drive — the loss
	// contrast says nothing if the producers never got through.
	for _, res := range []bcResult{repl, unrepl} {
		arm := "unreplicated"
		if res.replicated {
			arm = "replicated"
		}
		if res.acked < res.appended/2 {
			v = append(v, fmt.Sprintf("%s arm acked only %d/%d posts — the drive never established the contract under test",
				arm, res.acked, res.appended))
		}
	}
	if len(v) > 0 {
		return v
	}

	// The tentpole claim: with per-shard mirrors, a broker crash mid-fanout
	// loses nothing that was acked — every acked post is redelivered from
	// the mirror and lands exactly once — and recovery is bounded.
	if repl.lost != 0 {
		v = append(v, fmt.Sprintf("replicated arm lost %d acked posts (delivered %d/%d) — acked ⇒ mirrored is broken",
			repl.lost, repl.delivered, repl.acked))
	}
	if repl.dups != 0 {
		v = append(v, fmt.Sprintf("replicated arm delivered %d duplicate timeline entries — redelivery is not idempotent", repl.dups))
	}
	if !repl.recovered {
		v = append(v, "replicated arm never converged: acked posts were still missing when the delivered set settled")
	} else if repl.recovery > bcRecoveryBound {
		v = append(v, fmt.Sprintf("replicated arm recovered in %v — bound is %v", repl.recovery, bcRecoveryBound))
	}

	// The contrast: without mirrors the dead shard's standing backlog is
	// gone — acked-but-undelivered posts must show up as measurable loss.
	if unrepl.lost == 0 {
		v = append(v, fmt.Sprintf("unreplicated arm lost nothing (delivered %d/%d) — the crash missed the backlog, so the contrast shows nothing",
			unrepl.delivered, unrepl.acked))
	}
	if unrepl.dups != 0 {
		v = append(v, fmt.Sprintf("unreplicated arm delivered %d duplicates — unique prepends should hold in both arms", unrepl.dups))
	}
	return v
}

// TestBrokerCrashShape asserts the broker-crash experiment's durability
// contrast: on the partitioned tier with per-shard replication, a broker
// killed mid-fanout loses zero acked posts — the mirror redelivers its
// queued and leased messages exactly once after the lease evicts it — and
// recovery completes within a bound; without replication the same crash
// loses the dead shard's standing backlog. Both arms are wall-clock chaos
// runs, so the shape gets three attempts (distinct seeds) and passes on the
// first clean one; a real regression fails all three deterministically.
func TestBrokerCrashShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live broker-crash runs skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = bcShapeViolations(int64(41 * i))
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
