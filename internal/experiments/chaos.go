package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/loadgen"
	"dsb/internal/rpc"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/transport"
)

// Chaos reproduces the recovery contrast of Fig 20 on the live Social
// Network: a readPost replica crashes mid-run (goes silent without
// deregistering — the registry keeps a corpse), and later the entire
// readTimeline→readPost edge is partitioned at the connection level. Two
// arms face the identical seeded fault schedule:
//
//	unprotected — plain registrations, fail-hard services: the crashed
//	              replica keeps absorbing picks (each one burns the client
//	              deadline) until an operator action deregisters it, and
//	              the partition zeroes goodput for its whole window — the
//	              paper's slow-recovery curve
//	protected   — health leases + resilience stack + graceful degradation:
//	              degraded (stale-cache) responses bridge the lease window,
//	              the lease evicts the corpse within one TTL, and the
//	              partition is served from stale cache — the fast-recovery
//	              curve
//
// Goodput is bucketed on the arrival clock so both arms and both runs of
// the same seed measure the same windows.
func Chaos() *Report {
	r := &Report{
		ID:    "chaos",
		Title: "Replica crash and partition vs leases + degradation (Fig 20 extension, live stack)",
		Header: []string{"config", "phase", "offered (req/s)", "goodput (req/s)",
			"good/offered", "degraded"},
	}
	for _, arm := range []struct {
		name      string
		protected bool
	}{
		{"unprotected", false},
		{"leases+degradation", true},
	} {
		res := runChaos(arm.protected, chaosSeed)
		for _, w := range chaosWindows {
			issued, good, degraded := res.window(w.from, w.until)
			secs := (w.until - w.from).Seconds()
			ratio := 0.0
			if issued > 0 {
				ratio = float64(good) / float64(issued)
			}
			r.Rows = append(r.Rows, []string{
				arm.name, w.name,
				qpsStr(float64(issued) / secs), qpsStr(float64(good) / secs),
				f2(ratio), fmt.Sprintf("%d", degraded),
			})
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: crash at %v, goodput trough %.2f of steady, back to 90%% of steady %v after the crash",
			arm.name, res.crashAt.Round(time.Millisecond), res.trough(), res.recovery().Round(time.Millisecond)))
	}
	r.Notes = append(r.Notes,
		"unprotected: the corpse owns half the picks and every one burns the full client deadline; only the scheduled operator deregistration restores goodput (Fig 20's slow microservice recovery)",
		fmt.Sprintf("protected: degraded stale-cache reads bridge the crash, the lease evicts the corpse within %v, and the partition window is served degraded instead of lost", chaosLease))
	return r
}

const (
	chaosSeed    = 42
	chaosLease   = 120 * time.Millisecond
	chaosRate    = 250.0 // offered readTimeline req/s
	chaosTimeout = 80 * time.Millisecond
	chaosBucket  = 100 * time.Millisecond
	chaosUsers   = 6

	// Fault timeline. The crash lands at a seeded-random instant inside
	// [chaosCrashLo, chaosCrashHi); the windows below exclude that boundary
	// bucket so "steady" and "crash" are clean.
	chaosCrashLo   = 400 * time.Millisecond
	chaosCrashHi   = 500 * time.Millisecond
	chaosManualAt  = 1000 * time.Millisecond // unprotected arm: operator deregisters the corpse
	chaosPartStart = 1300 * time.Millisecond
	chaosPartEnd   = 1600 * time.Millisecond
	chaosTotal     = 1900 * time.Millisecond
)

// chaosWindows are the reporting phases, aligned to the fault timeline.
var chaosWindows = []struct {
	name        string
	from, until time.Duration
}{
	{"steady", 0, chaosCrashLo},
	{"crash", chaosCrashHi, chaosManualAt},
	{"healed", chaosManualAt, chaosPartStart},
	{"partition", chaosPartStart, chaosPartEnd},
	{"final", chaosPartEnd, chaosTotal},
}

type chaosBucket100 struct {
	issued, good, degraded int
}

type chaosResult struct {
	schedule string        // scenario timeline — the reproducibility witness
	crashAt  time.Duration // where the seeded crash landed
	buckets  []chaosBucket100
}

// window sums buckets whose start lies in [from, until).
func (r *chaosResult) window(from, until time.Duration) (issued, good, degraded int) {
	for i, b := range r.buckets {
		at := time.Duration(i) * chaosBucket
		if at >= from && at < until {
			issued += b.issued
			good += b.good
			degraded += b.degraded
		}
	}
	return
}

// ratio returns one bucket's good/issued (1 when the bucket is empty, so
// quiet buckets never read as outages).
func (r *chaosResult) ratio(i int) float64 {
	if i < 0 || i >= len(r.buckets) || r.buckets[i].issued == 0 {
		return 1
	}
	return float64(r.buckets[i].good) / float64(r.buckets[i].issued)
}

// steady is the goodput ratio before the crash.
func (r *chaosResult) steady() float64 {
	issued, good, _ := r.window(0, chaosCrashLo)
	if issued == 0 {
		return 0
	}
	return float64(good) / float64(issued)
}

// trough is the worst bucket ratio in the crash window, relative to steady.
func (r *chaosResult) trough() float64 {
	steady := r.steady()
	if steady == 0 {
		return 0
	}
	min := 1.0
	for i := int(chaosCrashHi / chaosBucket); i < int(chaosManualAt/chaosBucket); i++ {
		if v := r.ratio(i); v < min {
			min = v
		}
	}
	return min / steady
}

// recovery is the delay from the crash until the first bucket back at 90%
// of steady goodput (with every later pre-manual bucket also recovered, so
// a lucky bucket inside an ongoing outage doesn't count).
func (r *chaosResult) recovery() time.Duration {
	steady := r.steady()
	last := int(chaosPartStart / chaosBucket) // stop before the partition phase
	for i := int(r.crashAt / chaosBucket); i < last; i++ {
		ok := true
		for j := i; j < last; j++ {
			if r.ratio(j) < 0.9*steady {
				ok = false
				break
			}
		}
		if ok {
			return time.Duration(i)*chaosBucket + chaosBucket - r.crashAt
		}
	}
	return chaosTotal
}

// chaosScenario builds the fault schedule for one arm. kill and deregister
// are bound late so the schedule can also be built standalone (nil hooks)
// to witness reproducibility. Both arms share the seeded crash instant; the
// operator deregistration step exists only in the unprotected arm, where
// nothing else would ever remove the corpse.
func chaosScenario(inj *fault.Injector, protected bool, kill, deregister func()) *fault.Scenario {
	noop := func() {}
	if kill == nil {
		kill = noop
	}
	if deregister == nil {
		deregister = noop
	}
	sc := fault.NewScenario(inj)
	sc.Between(chaosCrashLo, chaosCrashHi, fault.Action("crash(social.readPost/1)", kill))
	if !protected {
		sc.At(chaosManualAt, fault.Action("deregister(social.readPost/1)", deregister))
	}
	sc.During(chaosPartStart, chaosPartEnd, fault.Partition("social.readTimeline", "social.readPost"))
	return sc
}

// runChaos boots one arm, plays the schedule against it, and buckets
// goodput on the arrival clock.
func runChaos(protected bool, seed int64) chaosResult {
	inj := fault.NewInjector(seed)
	opts := core.Options{
		DisableTracing: true,
		Network:        inj.Wrap(rpc.NewMem()),
	}
	if protected {
		opts.LeaseTTL = chaosLease
		opts.Resilience = &transport.ResilienceConfig{
			Budget:  &transport.BudgetConfig{Fraction: 0.9},
			Retry:   &transport.RetryConfig{Attempts: 2},
			Breaker: &transport.BreakerConfig{Failures: 4, Cooldown: 300 * time.Millisecond},
		}
	}
	app := core.NewApp("chaos", opts)
	defer app.Close()
	sn, err := socialnetwork.New(app, socialnetwork.Config{
		SearchShards:       2,
		Replicas:           map[string]int{"readPost": 2},
		DisableDegradation: !protected,
	})
	if err != nil {
		return chaosResult{}
	}

	// Seed the graph: each user follows the next two, posts twice, and gets
	// one priming read (fills the timeline caches and, in the protected
	// arm, the stale-posts fallback).
	ctx := context.Background()
	users := make([]string, chaosUsers)
	for i := range users {
		users[i] = fmt.Sprintf("chaos%d", i)
		if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: users[i], Password: "pw"}, nil); err != nil {
			return chaosResult{}
		}
	}
	tokens := make([]string, chaosUsers)
	for i, u := range users {
		var lr socialnetwork.LoginResp
		if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: u, Password: "pw"}, &lr); err != nil {
			return chaosResult{}
		}
		tokens[i] = lr.Token
		for d := 1; d <= 2; d++ {
			sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{ //nolint:errcheck
				Follower: u, Followee: users[(i+d)%chaosUsers]}, nil)
		}
	}
	for i, u := range users {
		for p := 0; p < 2; p++ {
			if err := sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
				Token: tokens[i], Text: fmt.Sprintf("post %d from %s", p, u)}, nil); err != nil {
				return chaosResult{}
			}
		}
	}
	for _, u := range users {
		if err := sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: u}, nil); err != nil {
			return chaosResult{}
		}
	}

	// The second readPost replica is the victim. Kill leaves it registered
	// and silently eating requests; only a lease (protected) or the
	// scheduled operator action (unprotected) removes the corpse.
	replicas := app.Instances("social.readPost")
	if len(replicas) < 2 {
		return chaosResult{}
	}
	victim := replicas[1]
	sc := chaosScenario(inj, protected,
		func() { victim.Kill() },
		func() { app.Registry.Deregister("social.readPost", victim.Addr) })

	res := chaosResult{
		schedule: sc.String(),
		buckets:  make([]chaosBucket100, int(chaosTotal/chaosBucket)+1),
	}
	for _, st := range sc.Timeline() {
		if st.Fault.Name == "crash(social.readPost/1)" {
			res.crashAt = st.At
		}
	}

	arrivals := loadgen.Schedule(loadgen.NewPoisson(chaosRate, uint64(seed)), chaosTotal)
	playCtx, stopPlay := context.WithCancel(ctx)
	defer stopPlay()
	played := sc.Play(playCtx)

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range arrivals {
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		user := users[i%chaosUsers]
		bucket := int(at / chaosBucket)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, chaosTimeout)
			defer cancel()
			var resp socialnetwork.ReadTimelineResp
			err := sn.ReadTimeline.Call(rctx, "Read", socialnetwork.ReadTimelineReq{User: user}, &resp)
			mu.Lock()
			b := &res.buckets[bucket]
			b.issued++
			if err == nil {
				b.good++
				if resp.Degraded {
					b.degraded++
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	stopPlay()
	<-played
	return res
}
