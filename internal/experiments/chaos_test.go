package experiments

import (
	"fmt"
	"strings"
	"testing"

	"dsb/internal/fault"
)

// TestChaosScheduleDeterministic builds the chaos fault schedule twice from
// the same seed without booting anything: the timelines must be identical,
// and the seeded crash instant must land inside its declared window.
func TestChaosScheduleDeterministic(t *testing.T) {
	build := func(seed int64) string {
		return chaosScenario(fault.NewInjector(seed), false, nil, nil).String()
	}
	a, b := build(chaosSeed), build(chaosSeed)
	if a != b {
		t.Fatalf("same-seed schedules differ:\n%s\nvs\n%s", a, b)
	}
	if build(chaosSeed+1) == a {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, want := range []string{
		"crash(social.readPost/1)",
		"deregister(social.readPost/1)",
		"partition(social.readTimeline→social.readPost)",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("schedule missing %q:\n%s", want, a)
		}
	}
}

// chaosShapeViolations checks one pair of chaos-arm results and returns
// the directional claims that did not hold; an empty list is a clean pass.
// Schedule determinism and crash-window placement are not wall-clock
// sensitive, so those stay hard failures in the caller.
func chaosShapeViolations(prot, unprot chaosResult) []string {
	var v []string
	// Protected: the trough stays shallow and recovery fits in two TTLs.
	if tr := prot.trough(); tr < 0.5 {
		v = append(v, fmt.Sprintf("protected trough = %.2f of steady, want >= 0.5", tr))
	}
	if rec := prot.recovery(); rec > 2*chaosLease {
		v = append(v, fmt.Sprintf("protected recovery = %v, want <= %v", rec, 2*chaosLease))
	}
	if issued, good, degraded := prot.window(chaosPartStart, chaosPartEnd); issued > 0 {
		if ratio := float64(good) / float64(issued); ratio < 0.8 {
			v = append(v, fmt.Sprintf("protected partition good/offered = %.2f, want >= 0.8 (degraded serves)", ratio))
		}
		if degraded == 0 {
			v = append(v, "protected partition window served no degraded responses")
		}
	}

	// Unprotected: collapse until the operator action, dead partition window.
	if issued, good, _ := unprot.window(chaosCrashHi, chaosManualAt); issued > 0 {
		if ratio := float64(good) / float64(issued); ratio > 0.7 {
			v = append(v, fmt.Sprintf("unprotected crash good/offered = %.2f, want <= 0.7 (corpse eats picks)", ratio))
		}
	}
	if rec, outage := unprot.recovery(), chaosManualAt-unprot.crashAt; rec < outage {
		v = append(v, fmt.Sprintf("unprotected recovered at %v, before the operator deregistration (%v after crash)", rec, outage))
	}
	if issued, good, _ := unprot.window(chaosManualAt, chaosPartStart); issued > 0 {
		if ratio := float64(good) / float64(issued); ratio < 0.9 {
			v = append(v, fmt.Sprintf("unprotected healed good/offered = %.2f, want >= 0.9 after deregistration", ratio))
		}
	}
	if issued, good, _ := unprot.window(chaosPartStart, chaosPartEnd); issued > 0 {
		if ratio := float64(good) / float64(issued); ratio > 0.2 {
			v = append(v, fmt.Sprintf("unprotected partition good/offered = %.2f, want <= 0.2", ratio))
		}
	}
	if tr := prot.trough(); tr <= unprot.trough() && tr < 1 {
		v = append(v, fmt.Sprintf("protected trough %.2f not above unprotected %.2f", tr, unprot.trough()))
	}
	return v
}

// TestChaosRecoveryShape asserts the directional claims of the chaos
// experiment (Fig 20's recovery contrast). Two consecutive protected runs
// must play the identical fault schedule (fixed seed); with leases +
// degradation the post-crash goodput trough stays at or above half of
// steady state and recovers within two lease TTLs, while the unprotected
// arm collapses until the scheduled operator deregistration and loses the
// partition window outright. The goodput claims are wall-clock
// measurements, so — like the other live shape tests in this package —
// they get three attempts and pass on the first clean one; the fixed seed
// means a real regression fails all three identically.
func TestChaosRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		prot := runChaos(true, chaosSeed)
		prot2 := runChaos(true, chaosSeed)
		if prot.schedule == "" || prot.schedule != prot2.schedule {
			t.Fatalf("same-seed runs played different schedules:\n%s\nvs\n%s", prot.schedule, prot2.schedule)
		}
		if prot.crashAt < chaosCrashLo || prot.crashAt >= chaosCrashHi {
			t.Fatalf("crash at %v, want inside [%v, %v)", prot.crashAt, chaosCrashLo, chaosCrashHi)
		}
		unprot := runChaos(false, chaosSeed)
		if unprot.crashAt != prot.crashAt {
			t.Fatalf("arms crashed at different instants: %v vs %v", unprot.crashAt, prot.crashAt)
		}
		last = chaosShapeViolations(prot, unprot)
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
