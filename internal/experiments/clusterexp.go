package experiments

import (
	"fmt"
	"time"

	"dsb/internal/cluster"
	"dsb/internal/graph"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
	"dsb/internal/sim"
)

// twoTier builds the Fig 17 nginx+memcached application.
func twoTier() *graph.App {
	p := map[string]graph.Profile{
		"nginx":     {Language: "C", Cycles: 600e3, CodeKB: 560, KernelFrac: 0.5, LibFrac: 0.2, MsgBytes: 2048, Workers: 4},
		"memcached": {Language: "C", Cycles: 120e3, FixedNs: 20e3, CodeKB: 420, KernelFrac: 0.6, LibFrac: 0.2, MsgBytes: 1024, Workers: 32},
	}
	root := &graph.Node{Service: "nginx", Work: 1, Calls: []graph.Call{
		{Stage: 0, Count: 1, Node: &graph.Node{Service: "memcached", Work: 1}},
	}}
	return &graph.App{Name: "two-tier", Profiles: p, Root: root, WireNs: graph.DatacenterWireNs}
}

// rampOpenLoop injects Poisson arrivals whose rate follows levels: each
// entry holds for stepDur.
func rampOpenLoop(d *sim.Deployment, levels []float64, stepDur time.Duration, seed uint64) {
	arr := loadgen.NewPoisson(1, seed)
	var tick func(idx int, qps float64, until time.Duration)
	tick = func(idx int, qps float64, until time.Duration) {
		if d.Sim.Now() >= until {
			if idx+1 < len(levels) {
				tick(idx+1, levels[idx+1], until+stepDur)
			}
			return
		}
		d.Inject(nil)
		gap := time.Duration(float64(arr.Next()) / qps) // Poisson(1) scaled
		d.Sim.After(gap, func() { tick(idx, qps, until) })
	}
	tick(0, levels[0], stepDur)
	total := stepDur * time.Duration(len(levels))
	d.Sim.Run(total)
	d.Sim.Drain(50_000_000)
}

// Fig17 contrasts the two backpressure cases in the two-tier app.
// Case A: the client ramp saturates nginx's CPU; the utilization
// autoscaler scales nginx out and tail latency recovers.
// Case B: memcached slows down (still CPU-idle thanks to its large pool)
// behind a small connection table; nginx workers block on connections, the
// autoscaler sees only nginx saturated, scales the wrong tier, and the
// tail never recovers.
func Fig17() *Report {
	r := &Report{
		ID:     "fig17",
		Title:  "Two-tier backpressure: autoscaling helps case A, not case B",
		Header: []string{"case", "t", "e2e p99", "nginx util", "memcached util", "nginx instances"},
	}
	run := func(label string, caseB bool) (before, after float64, scaled int) {
		cfg := sim.Config{App: twoTier(), Seed: 17}
		if caseB {
			cfg.ConnsPerInstance = map[string]int{"memcached": 6}
		}
		d, _ := sim.NewDeployment(sim.New(), cfg)
		mon := cluster.NewMonitor(d, time.Second)
		as := cluster.NewAutoscaler(d)
		as.Interval = 2 * time.Second
		as.StartupDelay = 3 * time.Second
		const dur = 60 * time.Second
		mon.Start(dur)
		as.Start(dur)

		var levels []float64
		if caseB {
			// Steady load above the connection-table capacity once
			// memcached slows 10x at t=14s; its 32-worker pool keeps CPU
			// utilization low throughout.
			for i := 0; i < 60; i++ {
				levels = append(levels, 7000)
			}
			d.Sim.After(14*time.Second, func() { d.SetSlow("memcached", 0, 10) }) //nolint:errcheck
		} else {
			// Ramp that exceeds nginx CPU capacity (~9.5k QPS on 4 workers)
			// at t=14s and again at t=35s.
			for i := 0; i < 60; i++ {
				switch {
				case i < 14:
					levels = append(levels, 6000)
				case i < 35:
					levels = append(levels, 11000)
				default:
					levels = append(levels, 16000)
				}
			}
		}
		rampOpenLoop(d, levels, time.Second, 17)

		for _, t := range []time.Duration{5 * time.Second, 20 * time.Second, 40 * time.Second, 58 * time.Second} {
			instances := 1
			for _, e := range as.Events {
				if e.Service == "nginx" && e.At <= t && e.Instances > instances {
					instances = e.Instances
				}
			}
			r.Rows = append(r.Rows, []string{
				label, fmt.Sprintf("%ds", int(t.Seconds())),
				fmt.Sprintf("%.2fms", mon.E2EP99.At(t)),
				f2(mon.Util["nginx"].At(t)),
				f2(mon.Util["memcached"].At(t)),
				fmt.Sprintf("%d", instances),
			})
		}
		nginxScaled := 1
		for _, e := range as.Events {
			if e.Service == "nginx" && e.Instances > nginxScaled {
				nginxScaled = e.Instances
			}
		}
		return mon.E2EP99.At(20 * time.Second), mon.E2EP99.At(58 * time.Second), nginxScaled
	}

	aPeak, aEnd, aScaled := run("A: nginx saturation", false)
	bPeak, bEnd, bScaled := run("B: memcached backpressure", true)
	r.Notes = append(r.Notes,
		fmt.Sprintf("case A: p99 %.2fms at t=20s -> %.2fms at t=58s after scaling nginx to %d (autoscaling works)", aPeak, aEnd, aScaled),
		fmt.Sprintf("case B: p99 %.2fms at t=20s -> %.2fms at t=58s despite scaling nginx to %d (wrong tier; memcached stays CPU-idle)", bPeak, bEnd, bScaled),
		"paper: utilization-driven autoscalers cannot see connection-level backpressure")
	return r
}

// socialAtScale builds a replicated Social Network deployment.
func socialAtScale(replicas int, seed uint64) *sim.Deployment {
	reps := map[string]int{}
	app := graph.SocialNetwork()
	for _, svc := range app.Services() {
		reps[svc] = replicas
	}
	d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, Replicas: reps, WorkerScale: 0.25, Seed: seed})
	return d
}

// propagationTimeline runs a back-end fault and samples per-tier latency
// (normalized to the pre-fault baseline) and utilization over time.
func propagationTimeline(d *sim.Deployment, faultAt, dur time.Duration, qps float64, fault func()) (*cluster.Monitor, map[string]*metrics.Series) {
	mon := cluster.NewMonitor(d, time.Second)
	mon.Start(dur)
	d.Sim.After(faultAt, fault)
	d.RunOpenLoop(qps, dur)
	return mon, mon.Lat
}

// Fig19 reproduces the cascading QoS violation heatmap: a degraded
// back-end (mongodb) drives tail latency up tier by tier toward the
// front-end, while per-tier utilization points at the wrong culprits.
func Fig19() *Report {
	r := &Report{
		ID:     "fig19",
		Title:  "Cascading QoS violations after a back-end slowdown (fault at t=60s)",
		Header: []string{"tier", "baseline p99", "peak p99 after fault", "increase", "first >2x at", "peak util"},
	}
	d := socialAtScale(2, 19)
	const dur = 180 * time.Second
	mon, lat := propagationTimeline(d, 60*time.Second, dur, 420, func() {
		d.SetSlow("mongodb", 0, 25) //nolint:errcheck
		d.SetSlow("mongodb", 1, 25) //nolint:errcheck
	})

	order := []string{"mongodb", "writeGraph", "writeTimeline", "postsStorage", "composePost", "nginx"}
	var firstCross []time.Duration
	for _, tier := range order {
		s := lat[tier]
		if s == nil {
			continue
		}
		base := s.At(55 * time.Second)
		if base <= 0 {
			base = 0.001
		}
		peak := s.Max()
		cross := time.Duration(0)
		for _, p := range s.Points {
			if p.T > 60*time.Second && p.V > 2*base {
				cross = p.T
				break
			}
		}
		firstCross = append(firstCross, cross)
		peakUtil := mon.Util[tier].Max()
		r.Rows = append(r.Rows, []string{
			tier, fmt.Sprintf("%.2fms", base), fmt.Sprintf("%.2fms", peak),
			fmt.Sprintf("%.1fx", peak/base),
			fmt.Sprintf("%ds", int(cross.Seconds())),
			f2(peakUtil),
		})
	}
	backFirst := len(firstCross) >= 2 && firstCross[0] > 0 && firstCross[len(firstCross)-1] >= firstCross[0]
	r.Notes = append(r.Notes,
		fmt.Sprintf("hotspot propagates from back-end toward front-end: %v", backFirst),
		"paper: saturated back-ends drag upstream tiers into violation; utilization alone misleads (blocked tiers look busy or idle regardless of blame)")
	return r
}

// Fig20 compares recovery from the same QoS violation for microservices vs
// the monolith, both under the threshold autoscaler.
func Fig20() *Report {
	r := &Report{
		ID:     "fig20",
		Title:  "Recovery from a QoS violation under autoscaling: microservices vs monolith",
		Header: []string{"architecture", "baseline p99", "peak p99", "degradation", "recovered at", "scale actions"},
	}
	const dur = 300 * time.Second
	const surgeAt = 60 * time.Second
	run := func(app *graph.App) (rowName string, cells []string) {
		d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, Seed: 20})
		// Tightly balanced provisioning for 400 QPS; the surge to 760 QPS
		// violates QoS until the autoscaler has grown the right tiers.
		d.BalanceWorkers(400, 1.15)
		mon := cluster.NewMonitor(d, time.Second)
		as := cluster.NewAutoscaler(d)
		as.Interval = 5 * time.Second
		as.StartupDelay = 15 * time.Second
		as.TopK = 1 // utilization-greedy, budget-limited scaling
		mon.Start(dur)
		as.Start(dur)

		levels := make([]float64, int(dur.Seconds()))
		for i := range levels {
			if time.Duration(i)*time.Second < surgeAt {
				levels[i] = 400
			} else {
				levels[i] = 760
			}
		}
		rampOpenLoop(d, levels, time.Second, 20)

		base := mon.E2EP99.At(55 * time.Second)
		peak := mon.E2EP99.Max()
		q := cluster.QoS{TargetMs: base * 2}
		rec, ok := q.RecoveryAfter(mon.E2EP99, surgeAt+time.Second, 5)
		recStr := "never"
		if ok {
			recStr = fmt.Sprintf("t=%ds (+%ds)", int(rec.Seconds()), int((rec - surgeAt).Seconds()))
		}
		return app.Name, []string{
			fmt.Sprintf("%.2fms", base), fmt.Sprintf("%.2fms", peak),
			fmt.Sprintf("%.1fx", peak/base), recStr, fmt.Sprintf("%d", len(as.Events)),
		}
	}

	microName, micro := run(graph.SocialNetwork())
	monoName, mono := run(graph.SocialNetworkMonolith())
	r.Rows = append(r.Rows, append([]string{microName}, micro...))
	r.Rows = append(r.Rows, append([]string{monoName}, mono...))
	r.Notes = append(r.Notes,
		"paper: one mismanaged dependency degrades Social Network tail by 10.4x; the monolith recovers quickly because new whole-app copies absorb load, while the autoscaler hunts for the culprit tier in the microservice graph")
	return r
}

// Fig22a reproduces the large-scale cascading hotspot: a routing
// misconfiguration at t=260s concentrates composePost and readPost traffic
// on single instances; later the back-end follows; rate limiting at t=500s
// lets queues drain.
func Fig22a() *Report {
	r := &Report{
		ID:     "fig22a",
		Title:  "Large-scale cascade from a routing misconfiguration (fault t=260s, back-end t=400s, rate-limit t=500s)",
		Header: []string{"t", "e2e p99", "composePost p99", "readPost p99", "mongodb p99", "nginx p99"},
	}
	d := socialAtScale(4, 22)
	const dur = 600 * time.Second
	mon := cluster.NewMonitor(d, 2*time.Second)
	mon.Start(dur)

	// Routing misconfiguration: from t=260s, most picks land on instance 0
	// of every replicated service instead of load-balancing.
	d.Sim.After(260*time.Second, func() { d.SetHotFraction(0.9) })
	d.Sim.After(400*time.Second, func() {
		d.SetSlow("mongodb", 0, 10) //nolint:errcheck
	})

	// Open loop with a rate limit kicking in at t=500s.
	arr := loadgen.NewPoisson(520, 22)
	var schedule func()
	schedule = func() {
		if d.Sim.Now() > dur {
			return
		}
		limited := d.Sim.Now() > 500*time.Second
		if !limited || d.Sim.Now()%2 == 0 { // crude 50% admission under limiting
			d.Inject(nil)
		}
		d.Sim.After(arr.Next(), schedule)
	}
	d.Sim.After(0, schedule)
	d.Sim.Run(dur)
	d.Sim.Drain(80_000_000)

	for _, t := range []time.Duration{100 * time.Second, 300 * time.Second, 450 * time.Second, 590 * time.Second} {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%ds", int(t.Seconds())),
			fmt.Sprintf("%.2fms", mon.E2EP99.At(t)),
			fmt.Sprintf("%.2fms", mon.Lat["composePost"].At(t)),
			fmt.Sprintf("%.2fms", mon.Lat["readPost"].At(t)),
			fmt.Sprintf("%.2fms", mon.Lat["mongodb"].At(t)),
			fmt.Sprintf("%.2fms", mon.Lat["nginx"].At(t)),
		})
	}
	r.Notes = append(r.Notes,
		"timeline sparkline (e2e p99): "+mon.E2EP99.Sparkline(60),
		"paper: mid-tier saturation cascades downstream, the later back-end fault re-degrades already-weak tiers, and rate limiting is what finally drains queues")
	return r
}
