package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dsb/internal/controlplane"
	"dsb/internal/core"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/media"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/services/swarm"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// ClusterParity is the suite-scale version of Figs 17-19: all five
// applications boot on ONE registry with their stateful tiers sharded
// 2x2, share a fixed machine budget (every inter-tier hop occupies one of
// a small pool of cores for its service time), and serve a mixed-tenant
// open loop. A flash crowd then multiplies the Social Network's arrival
// rate past the whole machine's capacity while the other four tenants'
// offered load stays constant, and the experiment measures isolation: how
// much of the background tenants' good/offered survives the crowd.
//
// Two arms:
//
//	control plane on  — per-replica admission on every server (the crowd
//	                    tenant's front door gets a hard concurrency slice)
//	                    plus a latency-aware autoscaler on the crowd's hot
//	                    read tier. Excess crowd arrivals are shed at the
//	                    social front door before they can occupy the shared
//	                    machine, so the background tenants keep their slice.
//	control plane off — same apps, same machine, no admission and no
//	                    controller: the crowd's open-loop backlog queues on
//	                    the shared cores and every colocated tenant's tail
//	                    inflates with it (the paper's cascade).
func ClusterParity() *Report {
	r := &Report{
		ID:    "clusterparity",
		Title: "Mixed-tenant cluster: flash crowd on one tenant vs the other four (five live apps, shared machine)",
		Header: []string{"arm", "phase", "tenant", "offered (req/s)",
			"good/offered", "p99"},
	}
	arms := []struct {
		name  string
		plane bool
	}{
		{"control plane on", true},
		{"control plane off", false},
	}
	for _, arm := range arms {
		res, err := cpRun(arm.plane)
		if err != nil {
			r.Notes = append(r.Notes, arm.name+": boot: "+err.Error())
			continue
		}
		for _, ph := range []struct {
			name  string
			stats map[string]cpStat
		}{{"warm", res.warm}, {"flash crowd", res.crowd}} {
			for _, tenant := range cpTenantNames {
				st := ph.stats[tenant]
				r.Rows = append(r.Rows, []string{
					arm.name, ph.name, tenant,
					qpsStr(st.offered), f2(st.ratio), ms(st.p99),
				})
			}
		}
		worst, worstName := res.worstBackgroundRetention()
		note := fmt.Sprintf("%s: worst background-tenant good/offered retention %.2f (%s)",
			arm.name, worst, worstName)
		if arm.plane {
			note += fmt.Sprintf("; %d crowd requests shed at the social front door; readTimeline peaked at %d replicas",
				res.socialShed, res.timelinePeak)
		}
		r.Notes = append(r.Notes, note)
	}
	r.Notes = append(r.Notes,
		"retention = crowd-phase good/offered divided by the same tenant's warm-phase good/offered",
		"paper (Figs 17-19): heterogeneous apps share the cluster; without admission control one tenant's flash crowd queues on the shared machines and drags every colocated tenant's tail with it")
	return r
}

const (
	cpQoS     = 60 * time.Millisecond  // per-request latency target
	cpTimeout = 250 * time.Millisecond // client patience

	cpWarmDur  = 700 * time.Millisecond
	cpCrowdDur = 900 * time.Millisecond

	// Per-tenant offered load. The combined open loop thins arrivals by
	// weight, so during the crowd the background tenants keep this rate
	// while social's multiplies by cpCrowdWeight.
	cpTenantRate  = 36.0
	cpCrowdWeight = 25.0

	// The machine budget: every inter-tier hop of every app occupies one
	// of these cores for cpHopCost. 4 cores / 1ms = 4000 hops/s for the
	// whole cluster; the warm mix uses ~20% of it, the flash crowd alone
	// offers ~1.3x all of it.
	cpMachineCores = 4
	cpHopCost      = time.Millisecond
)

var cpTenantNames = [5]string{"social", "media", "ecommerce", "banking", "swarm"}

// cpMachine models the shared machine budget as a fixed pool of cores:
// each inter-tier hop (it is installed as client-wire middleware on every
// app's Stack) occupies one core for the hop's service time before the
// call proceeds. Queueing for a core is unbounded — exactly the Fig 17
// collapse channel when offered hops exceed capacity — and waiters give
// up when their request deadline expires.
type cpMachine struct{ cores chan struct{} }

func newCPMachine(cores int) *cpMachine {
	m := &cpMachine{cores: make(chan struct{}, cores)}
	for i := 0; i < cores; i++ {
		m.cores <- struct{}{}
	}
	return m
}

func (m *cpMachine) middleware(next transport.Invoker) transport.Invoker {
	return func(ctx context.Context, call *transport.Call) error {
		select {
		case slot := <-m.cores:
			time.Sleep(cpHopCost)
			m.cores <- slot
		case <-ctx.Done():
			return ctx.Err()
		}
		return next(ctx, call)
	}
}

// cpTenant is one application's slice of the mixed workload: its hottest
// read, driven through the app's own front door.
type cpTenant struct {
	name string
	do   func(ctx context.Context) error
}

type cpStat struct {
	offered float64 // issued req/s
	ratio   float64 // good/offered: completed within QoS over issued
	p99     time.Duration
}

type cpArmResult struct {
	warm, crowd  map[string]cpStat
	socialShed   int64 // admission sheds at social.frontend (plane arm)
	timelinePeak int   // social.readTimeline replica peak (plane arm)
}

// worstBackgroundRetention returns the minimum over the four non-crowd
// tenants of crowd-phase good/offered relative to the warm phase.
func (res cpArmResult) worstBackgroundRetention() (float64, string) {
	worst, worstName := 1.0, "none"
	for _, tenant := range cpTenantNames {
		if tenant == "social" {
			continue
		}
		w, c := res.warm[tenant], res.crowd[tenant]
		if w.ratio <= 0 {
			return 0, tenant + " (no warm goodput)"
		}
		if ret := c.ratio / w.ratio; ret < worst {
			worst, worstName = ret, tenant
		}
	}
	return worst, worstName
}

// cpCluster is one booted arm: five apps on one registry plus the
// optional control plane.
type cpCluster struct {
	app     *core.App
	plane   *controlplane.Plane
	ctrl    *controlplane.Controller
	tenants []cpTenant
	closers []func()
}

func (c *cpCluster) Close() {
	if c.ctrl != nil {
		c.ctrl.Stop()
	}
	for i := len(c.closers) - 1; i >= 0; i-- {
		c.closers[i]()
	}
	if c.app != nil {
		c.app.Close()
	}
}

// cpRun boots one arm and drives both phases through it.
func cpRun(withPlane bool) (cpArmResult, error) {
	cl, err := cpBoot(withPlane)
	if err != nil {
		return cpArmResult{}, err
	}
	defer cl.Close()

	var res cpArmResult
	res.warm = cpPhase(cl.tenants, 1, cpWarmDur, 0xC1A5)
	res.crowd = cpPhase(cl.tenants, cpCrowdWeight, cpCrowdDur, 0xC1A7)

	if cl.plane != nil {
		for _, a := range cl.plane.Admissions("social.frontend") {
			res.socialShed += a.Report().Shed
		}
	}
	if cl.ctrl != nil {
		res.timelinePeak = len(cl.app.Registry.Lookup("social.readTimeline"))
		for _, n := range cl.ctrl.History("social.readTimeline") {
			if n > res.timelinePeak {
				res.timelinePeak = n
			}
		}
	}
	return res, nil
}

// cpPhase drives one open-loop mix phase: every tenant at cpTenantRate,
// social scaled by socialWeight. Goodput is classified per tenant against
// cpQoS from the caller's side.
func cpPhase(tenants []cpTenant, socialWeight float64, dur time.Duration, seed uint64) map[string]cpStat {
	type tally struct {
		mu           sync.Mutex
		issued, good int64
		lat          *metrics.Histogram
	}
	tallies := make(map[string]*tally, len(tenants))
	entries := make([]loadgen.MixEntry, 0, len(tenants))
	var combined float64
	for _, tn := range tenants {
		weight := 1.0
		if tn.name == "social" {
			weight = socialWeight
		}
		combined += weight * cpTenantRate
		tl := &tally{lat: metrics.NewHistogram()}
		tallies[tn.name] = tl
		do := tn.do
		entries = append(entries, loadgen.MixEntry{Name: tn.name, Weight: weight,
			Do: func(context.Context) error {
				ctx, cancel := context.WithTimeout(context.Background(), cpTimeout)
				defer cancel()
				t0 := time.Now()
				err := do(ctx)
				lat := time.Since(t0)
				tl.mu.Lock()
				tl.issued++
				if err == nil {
					tl.lat.RecordDuration(lat)
					if lat <= cpQoS {
						tl.good++
					}
				}
				tl.mu.Unlock()
				return err
			}})
	}
	mix := loadgen.NewMix(seed, entries...)
	loadgen.RunOpenLoopMix(context.Background(), loadgen.NewPoisson(combined, seed+1), dur, mix)

	out := make(map[string]cpStat, len(tallies))
	for name, tl := range tallies {
		st := cpStat{offered: float64(tl.issued) / dur.Seconds()}
		if tl.issued > 0 {
			st.ratio = float64(tl.good) / float64(tl.issued)
		}
		st.p99 = tl.lat.PercentileDuration(99)
		out[name] = st
	}
	return out
}

// cpBoot boots all five applications — stateful tiers sharded 2x2 — on
// one app/registry with the shared-machine middleware on every inter-tier
// wire, seeds each tenant's hot read, and (with the plane on) installs
// admission everywhere plus a latency-aware autoscaler on the crowd
// tenant's hot read tier.
func cpBoot(withPlane bool) (*cpCluster, error) {
	opts := core.Options{
		DisableTracing: true,
		Resilience: &transport.ResilienceConfig{
			Budget:  &transport.BudgetConfig{Fraction: 0.9},
			Retry:   &transport.RetryConfig{Attempts: 3},
			Breaker: &transport.BreakerConfig{Failures: 8, Cooldown: 200 * time.Millisecond},
		},
	}
	cl := &cpCluster{}
	if withPlane {
		cl.plane = controlplane.NewPlane(controlplane.PlaneConfig{
			// Every replica of every app gets the default guards (bounded
			// queue, CoDel, deadline budget); the crowd tenant's front
			// door additionally gets a hard concurrency slice of the
			// machine so its overload is shed at the cluster edge.
			PerService: map[string]controlplane.AdmissionConfig{
				"social.frontend":     {MaxConcurrent: 2, MaxQueue: 16},
				"social.readTimeline": {MaxConcurrent: 8, MaxQueue: 64},
			},
		})
		opts.RPCServerHook = cl.plane.HookRPC
		opts.RESTServerHook = cl.plane.HookREST
	}
	name := "clusterparity-static"
	if withPlane {
		name = "clusterparity-plane"
	}
	app := core.NewApp(name, opts)
	cl.app = app
	fail := func(err error) (*cpCluster, error) {
		cl.Close()
		return nil, err
	}

	machine := newCPMachine(cpMachineCores)
	mw := []transport.Middleware{machine.middleware}
	sp := controlplane.NewAppSpawner(app)
	var spawner svcutil.Definer
	if withPlane {
		spawner = sp
	}

	sn, err := socialnetwork.New(app, socialnetwork.Config{
		Shards: 2, ShardReplicas: 2, Middleware: mw, Spawner: spawner,
	})
	if err != nil {
		return fail(fmt.Errorf("social: %w", err))
	}
	md, err := media.New(app, media.Config{
		Shards: 2, ShardReplicas: 2, Middleware: mw, Spawner: spawner,
	})
	if err != nil {
		return fail(fmt.Errorf("media: %w", err))
	}
	ec, err := ecommerce.New(app, ecommerce.Config{
		Shards: 2, ShardReplicas: 2, Middleware: mw, Spawner: spawner,
	})
	if err != nil {
		return fail(fmt.Errorf("ecommerce: %w", err))
	}
	cl.closers = append(cl.closers, ec.Close)
	bk, err := banking.New(app, banking.Config{
		Shards: 2, ShardReplicas: 2, Middleware: mw, Spawner: spawner,
	})
	if err != nil {
		return fail(fmt.Errorf("banking: %w", err))
	}
	sw, err := swarm.New(app, swarm.Config{
		Placement: swarm.Edge, Drones: 1, WorldSize: 24, Seed: 7,
		WifiRTT: 200 * time.Microsecond,
		Shards:  2, ShardReplicas: 2, Middleware: mw, Spawner: spawner,
	})
	if err != nil {
		return fail(fmt.Errorf("swarm: %w", err))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Social: one followed author with a short timeline; the flash crowd
	// reads the follower's home timeline.
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "alice", Password: "pw"}, nil); err != nil {
		return fail(fmt.Errorf("social seed: %w", err))
	}
	var login socialnetwork.LoginResp
	if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: "alice", Password: "pw"}, &login); err != nil {
		return fail(fmt.Errorf("social seed: %w", err))
	}
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "f0", Password: "pw"}, nil); err != nil {
		return fail(fmt.Errorf("social seed: %w", err))
	}
	if err := sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: "f0", Followee: "alice"}, nil); err != nil {
		return fail(fmt.Errorf("social seed: %w", err))
	}
	for i := 0; i < 5; i++ {
		if err := sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
			Token: login.Token, Text: fmt.Sprintf("flash crowd bait %d", i),
		}, nil); err != nil {
			return fail(fmt.Errorf("social seed: %w", err))
		}
	}

	// Media: one movie; the tenant reads its full page.
	if err := md.SeedMovie(media.Movie{ID: "mv-1", Title: "Heat", Year: 1995, Genre: "crime"},
		"a heist crew and a detective circle each other",
		[]media.CastMember{{MovieID: "mv-1", Actor: "A. Actor", Role: "lead"}}, nil); err != nil {
		return fail(fmt.Errorf("media seed: %w", err))
	}

	// E-commerce: one catalogue item; the tenant reads its page.
	if err := ec.SeedItems([]ecommerce.Item{{
		ID: "item-1", Name: "Socks", Tags: []string{"socks"},
		PriceCents: 500, WeightGram: 100, Stock: 100000,
	}}); err != nil {
		return fail(fmt.Errorf("ecommerce seed: %w", err))
	}

	// Banking: one customer; the tenant reads the account summary.
	bankToken, _, err := bk.Onboard("dana", 9_000_000, 120_000)
	if err != nil {
		return fail(fmt.Errorf("banking seed: %w", err))
	}

	// Swarm: the route query to a fixed target (deterministic pick:
	// smallest (Y, X) — map iteration order varies).
	var target swarm.Point
	first := true
	for p := range sw.World.Targets {
		if first || p.Y < target.Y || (p.Y == target.Y && p.X < target.X) {
			target = p
			first = false
		}
	}
	if first {
		return fail(fmt.Errorf("swarm seed: world has no targets"))
	}
	route, err := app.RPC("loadgen", "swarm.constructRoute")
	if err != nil {
		return fail(err)
	}

	cl.tenants = []cpTenant{
		{"social", func(ctx context.Context) error {
			return sn.Frontend.Do(ctx, "GET", "/timeline/f0", nil, nil)
		}},
		{"media", func(ctx context.Context) error {
			return md.Frontend.Do(ctx, "GET", "/movies/Heat", nil, nil)
		}},
		{"ecommerce", func(ctx context.Context) error {
			return ec.Frontend.Do(ctx, "GET", "/catalogue/item-1", nil, nil)
		}},
		{"banking", func(ctx context.Context) error {
			return bk.Frontend.Do(ctx, "GET", "/summary?token="+bankToken, nil, nil)
		}},
		{"swarm", func(ctx context.Context) error {
			return route.Call(ctx, "Construct", swarm.RouteReq{From: swarm.Point{X: 0, Y: 0}, To: target}, &swarm.RouteResp{})
		}},
	}

	if withPlane {
		cl.ctrl = controlplane.NewController(controlplane.ControllerConfig{
			Registry: app.Registry,
			Network:  app.Net,
			Spawner:  sp,
			Policy:   controlplane.LatencyAware{QoS: cpQoS},
			Interval: 100 * time.Millisecond,
			Services: []controlplane.ManagedService{
				{Name: "social.readTimeline", Min: 1, Max: 4},
			},
		})
		cl.ctrl.Start()
	}
	return cl, nil
}
