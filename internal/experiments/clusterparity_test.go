package experiments

import (
	"fmt"
	"testing"
)

// cpShapeViolations runs both cluster-parity arms once and returns the
// directional claims that did not hold. An empty list is a clean pass.
func cpShapeViolations() []string {
	var v []string

	protected, err := cpRun(true)
	if err != nil {
		return []string{"plane arm failed to boot: " + err.Error()}
	}
	unprotected, err := cpRun(false)
	if err != nil {
		return []string{"static arm failed to boot: " + err.Error()}
	}

	// Both arms must have a healthy warm phase for every tenant — the
	// retention ratios below are meaningless otherwise.
	for _, arm := range []struct {
		name string
		res  cpArmResult
	}{{"plane", protected}, {"static", unprotected}} {
		for _, tenant := range cpTenantNames {
			w := arm.res.warm[tenant]
			if w.offered <= 0 || w.ratio < 0.5 {
				v = append(v, fmt.Sprintf("%s arm: tenant %s unhealthy at warm load: offered %.0f req/s, good/offered %.2f",
					arm.name, tenant, w.offered, w.ratio))
			}
		}
	}
	if len(v) > 0 {
		return v
	}

	// The acceptance bar: with the control plane on, the flash crowd costs
	// the four background tenants less than 20% of their good/offered;
	// without it, the hit is materially larger.
	onWorst, onName := protected.worstBackgroundRetention()
	offWorst, offName := unprotected.worstBackgroundRetention()
	if onWorst < 0.8 {
		v = append(v, fmt.Sprintf("plane on: background tenant %s retained only %.2f of its good/offered (want >= 0.8)",
			onName, onWorst))
	}
	if offWorst >= 0.65 {
		v = append(v, fmt.Sprintf("plane off: worst background retention %.2f (%s) — the unprotected crowd should have dragged it below 0.65",
			offWorst, offName))
	}

	// The isolation must come from the mechanism: the plane arm actually
	// shed crowd traffic at the social front door, the static arm cannot
	// (it has no admission to shed with).
	if protected.socialShed == 0 {
		v = append(v, "plane on: zero sheds at social.frontend — admission never engaged, so the isolation is luck")
	}
	if unprotected.socialShed != 0 {
		v = append(v, fmt.Sprintf("plane off: %d sheds recorded without a control plane", unprotected.socialShed))
	}
	return v
}

// TestClusterParityShape asserts the directional claims of the
// mixed-tenant cluster experiment: five live apps share one registry and
// one machine budget; a flash crowd on the Social Network tenant must
// degrade the other four tenants' good/offered by less than 20% with the
// control plane on (admission + autoscaling), and materially more with it
// off. Both arms are wall-clock queueing measurements, so the shape gets
// three attempts and passes on the first clean one; a real regression
// fails all three deterministically.
func TestClusterParityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live mixed-tenant cluster runs skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = cpShapeViolations()
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
