// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver runs its workload (usually on the
// discrete-event simulator, occasionally on the live in-process stack) and
// returns a Report whose rows mirror what the paper plots, with notes
// comparing the measured shape against the paper's claims. bench_test.go
// at the repository root exposes each driver as a benchmark, and
// cmd/dsbench prints any subset from the command line.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"dsb/internal/sim"
)

// Report is a printable experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned ASCII table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, nte := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", nte)
	}
	return b.String()
}

// Experiment pairs an ID with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Report
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Suite composition (services, LoC, protocols)", Table1},
		{"fig3", "Network vs application processing", Fig3},
		{"fig9", "Swarm edge vs cloud throughput-latency", Fig9},
		{"fig10", "Cycle breakdown and IPC per microservice", Fig10},
		{"fig11", "L1i MPKI per microservice", Fig11},
		{"fig12", "Tail latency vs load and frequency", Fig12},
		{"fig13", "Xeon vs ThunderX saturation throughput", Fig13},
		{"fig14", "Kernel/user/library cycle breakdown", Fig14},
		{"fig15", "Network processing share per tier and load", Fig15},
		{"fig16", "FPGA RPC acceleration", Fig16},
		{"fig17", "Two-tier backpressure (nginx+memcached)", Fig17},
		{"fig18", "Microservice dependency-graph shapes", Fig18},
		{"fig19", "Cascading QoS violations", Fig19},
		{"fig20", "Recovery: microservices vs monolith", Fig20},
		{"fig21", "Serverless: EC2 vs Lambda", Fig21},
		{"fig22a", "Large-scale cascading hotspots", Fig22a},
		{"fig22b", "Request skew vs goodput", Fig22b},
		{"fig22c", "Slow servers vs goodput", Fig22c},
		{"querydiv", "Query diversity (Sec 3.8, live stack)", QueryDiversity},
		{"rpcrest", "RPC vs REST microbenchmark (live stack)", RPCvsREST},
		{"resilience", "Slow servers vs goodput with resilience (Fig 22c extension, live stack)", SlowServerResilience},
		{"autoscale-live", "Load ramp vs admission control and autoscaling policies (live stack)", AutoscaleLive},
		{"chaos", "Replica crash and partition vs leases + degradation (Fig 20 extension, live stack)", Chaos},
		{"hotpath", "Miss coalescing and batched write fan-out (live stack)", HotPath},
		{"tailatscale", "Zipf skew and a slow shard vs the sharded stateful tier (live stack)", TailAtScale},
		{"clusterparity", "Flash crowd on one tenant of a five-app shared cluster (live stack)", ClusterParity},
		{"asyncfanout", "Sync vs pipelined vs broker-backed async fan-out at fixed p99 QoS (live stack)", AsyncFanout},
		{"brokercrash", "Broker crash mid-fanout: replicated vs unreplicated partitioned tier (live stack)", BrokerCrash},
		{"push", "Push vs poll consumer delivery: latency and the polling tax (live stack)", Push},
		{"wirespeed", "Serialization share and echo latency: reflect vs generated codec (live stack)", Wirespeed},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ---

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d)/1e6) }
func us(d time.Duration) string { return fmt.Sprintf("%.0fµs", float64(d)/1e3) }
func pct(f float64) string      { return fmt.Sprintf("%.1f%%", f*100) }
func f1(f float64) string       { return fmt.Sprintf("%.1f", f) }
func f2(f float64) string       { return fmt.Sprintf("%.2f", f) }
func qpsStr(f float64) string   { return fmt.Sprintf("%.0f", f) }

// findCapacity doubles offered load until the p99 exceeds degrade× the
// low-load p99 (or requests stop completing inside the run), returning the
// last sustainable QPS.
func findCapacity(build func() *sim.Deployment, startQPS float64, dur time.Duration, degrade float64) float64 {
	base := build().RunOpenLoop(startQPS, dur)
	baseP99 := float64(base.E2E.P99)
	if baseP99 <= 0 {
		return 0
	}
	last := startQPS
	for qps := startQPS * 2; qps <= startQPS*4096; qps *= 2 {
		res := build().RunOpenLoop(qps, dur)
		if float64(res.E2E.P99) > degrade*baseP99 {
			// Refine once between last and qps.
			mid := (last + qps) / 2
			if res := build().RunOpenLoop(mid, dur); float64(res.E2E.P99) <= degrade*baseP99 {
				return mid
			}
			return last
		}
		last = qps
	}
	return last
}
