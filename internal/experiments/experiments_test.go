package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "fig3", "fig9", "fig12", "fig17", "fig21", "fig22c"} {
		if !ids[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	if _, ok := Lookup("fig3"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found ghost")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"wide-cell", "3"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"== x: demo ==", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

// parseFloat pulls a float out of a cell like "36.3%" or "8.0x".
func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimRight(cell, "%xmsµ")
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", cell, err)
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	rep := Fig3()
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	shares := map[string]float64{}
	for _, row := range rep.Rows {
		shares[row[0]] = parseFloat(t, row[2])
	}
	// The paper's ordering: social >> memcached > mongodb, nginx lowest-ish.
	if !(shares["socialNetwork"] > shares["memcached"] && shares["memcached"] > shares["nginx"]) {
		t.Fatalf("network share ordering wrong: %v", shares)
	}
	if shares["socialNetwork"] < 25 || shares["socialNetwork"] > 50 {
		t.Fatalf("social share = %.1f, want near 36.3", shares["socialNetwork"])
	}
}

func TestFig10Fig11Shapes(t *testing.T) {
	f10 := Fig10()
	if len(f10.Rows) < 20 {
		t.Fatalf("fig10 rows = %d", len(f10.Rows))
	}
	for _, row := range f10.Rows {
		sum := parseFloat(t, row[2]) + parseFloat(t, row[3]) + parseFloat(t, row[4]) + parseFloat(t, row[5])
		if sum < 98 || sum > 102 {
			t.Fatalf("breakdown for %s/%s sums to %.1f", row[0], row[1], sum)
		}
	}
	f11 := Fig11()
	var mono, micro float64
	for _, row := range f11.Rows {
		if row[1] == "monolith" {
			mono = parseFloat(t, row[2])
		}
		if row[1] == "uniqueID" {
			micro = parseFloat(t, row[2])
		}
	}
	if mono <= micro || mono < 40 {
		t.Fatalf("MPKI: monolith %.1f vs uniqueID %.1f", mono, micro)
	}
}

func TestFig14Shape(t *testing.T) {
	rep := Fig14()
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		c := parseFloat(t, row[1]) + parseFloat(t, row[2]) + parseFloat(t, row[3])
		if c < 98 || c > 102 {
			t.Fatalf("%s cycles sum %.1f", row[0], c)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	rep := Fig16()
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		accel := parseFloat(t, row[1])
		if accel < 10 || accel > 68 {
			t.Fatalf("%s accel = %.1f", row[0], accel)
		}
		if e2e := parseFloat(t, row[3]); e2e < 1.0 {
			t.Fatalf("%s e2e speedup = %.2f < 1", row[0], e2e)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	rep := Fig18()
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig21Shape(t *testing.T) {
	rep := Fig21()
	if len(rep.Rows) != 15 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestTable1CountsServices(t *testing.T) {
	rep := Table1()
	if len(rep.Rows) != 6 { // 5 apps + total
		t.Fatalf("rows = %d (notes: %v)", len(rep.Rows), rep.Notes)
	}
	total := rep.Rows[5]
	if n := parseFloat(t, total[2]); n < 80 {
		t.Fatalf("total services = %.0f, want 80+", n)
	}
}

func TestHeavyExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment smoke skipped in -short mode")
	}
	for _, id := range []string{"fig9", "fig13", "fig17"} {
		exp, _ := Lookup(id)
		rep := exp.Run()
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// autoscaleLiveViolations runs the autoscale-live experiment once and
// returns the directional claims that did not hold. Structural problems
// (wrong row count, unparsable cells) still fail the test immediately —
// those are deterministic bugs, not timing noise.
func autoscaleLiveViolations(t *testing.T) []string {
	t.Helper()
	rep := AutoscaleLive()
	if len(rep.Rows) != 12 { // 4 configs × 3 phases
		t.Fatalf("rows = %d, want 12:\n%s", len(rep.Rows), rep)
	}
	type phase struct {
		ratio    float64
		p99ms    float64
		replicas float64
	}
	overload := map[string]phase{}
	for _, row := range rep.Rows {
		if row[1] != "overload" {
			continue
		}
		overload[row[0]] = phase{
			ratio:    parseFloat(t, row[4]),
			p99ms:    parseFloat(t, row[5]),
			replicas: parseFloat(t, row[6]),
		}
	}
	noadm := overload["static, no admission"]
	adm := overload["static + admission"]
	latency := overload["autoscale latency-aware"]
	threshold := overload["autoscale threshold"]

	var v []string
	qosMS := float64(aslQoS) / 1e6
	if noadm.ratio >= 0.45 {
		v = append(v, fmt.Sprintf("no-admission overload good/offered = %.2f, want < 0.45 (backpressure collapse)", noadm.ratio))
	}
	if noadm.p99ms <= qosMS {
		v = append(v, fmt.Sprintf("no-admission overload p99 = %.1fms, want > QoS %.0fms", noadm.p99ms, qosMS))
	}
	if adm.ratio < 0.5 {
		v = append(v, fmt.Sprintf("admission overload good/offered = %.2f, want >= 0.5 (sheds protect served requests)", adm.ratio))
	}
	if latency.ratio < 0.75 {
		v = append(v, fmt.Sprintf("latency-aware overload good/offered = %.2f, want >= 0.75", latency.ratio))
	}
	if latency.ratio <= noadm.ratio {
		v = append(v, fmt.Sprintf("latency-aware ratio %.2f not above no-admission %.2f", latency.ratio, noadm.ratio))
	}
	if latency.p99ms > qosMS {
		v = append(v, fmt.Sprintf("latency-aware overload p99 = %.1fms, want <= QoS %.0fms", latency.p99ms, qosMS))
	}
	if latency.replicas <= 2 {
		v = append(v, fmt.Sprintf("latency-aware compose replicas = %.0f, want > 2 (scaled up)", latency.replicas))
	}
	if threshold.replicas <= 2 {
		v = append(v, fmt.Sprintf("threshold compose replicas = %.0f, want > 2 (utilization crossed Up)", threshold.replicas))
	}
	return v
}

// TestAutoscaleLiveShape asserts the directional claims of the
// autoscale-live experiment: without admission control the overload phase
// collapses (Fig 17); admission keeps goodput above half the offered load
// with served requests inside QoS; the latency-aware autoscaler grows the
// compose tier and rides out the ramp near-cleanly. The ramp is a
// wall-clock queueing measurement, so the shape gets three attempts and
// passes on the first clean one; a real regression fails all three.
func TestAutoscaleLiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live autoscale ramp skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = autoscaleLiveViolations(t)
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
