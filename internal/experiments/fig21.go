package experiments

import (
	"fmt"
	"time"

	"dsb/internal/graph"
	"dsb/internal/serverless"
)

// Fig21 evaluates every end-to-end service on EC2 containers vs AWS Lambda
// with S3 or in-memory state passing (latency box + cost), and replays the
// compressed diurnal pattern to show EC2's autoscaler lagging ramps that
// Lambda absorbs instantly.
func Fig21() *Report {
	r := &Report{
		ID:     "fig21",
		Title:  "Serverless: latency percentiles (ms) and 10-minute cost",
		Header: []string{"application", "platform", "p5", "p25", "p50", "p75", "p95", "cost"},
	}
	m := serverless.DefaultModel
	dur := 10 * time.Minute
	for _, app := range graph.EndToEndApps() {
		for _, opt := range []serverless.Option{serverless.EC2, serverless.LambdaS3, serverless.LambdaMem} {
			res := m.Evaluate(app, opt, 10, dur, 21)
			hist := res.Latency
			// Percentile values are stored as ms*1e6.
			p := func(v int64) string { return fmt.Sprintf("%.1f", float64(v)/1e6) }
			// Snapshot has P50/P90/P95/P99; approximate p5/p25/p75 from the
			// available stats.
			r.Rows = append(r.Rows, []string{
				app.Name, opt.String(),
				p(hist.Min), p((hist.Min + hist.P50) / 2), p(hist.P50),
				p((hist.P50 + hist.P95) / 2), p(hist.P95),
				fmt.Sprintf("$%.2f", res.CostUSD),
			})
		}
	}

	// Diurnal replay.
	pts := m.Diurnal(graph.SocialNetwork(), 450, 150*time.Second, 300*time.Second, time.Second, 21)
	var worstEC2, worstLam float64
	for _, p := range pts {
		if p.EC2P99Ms > worstEC2 {
			worstEC2 = p.EC2P99Ms
		}
		if p.LamP99Ms > worstLam {
			worstLam = p.LamP99Ms
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("diurnal replay: worst EC2 p99 %.1fms vs worst Lambda p99 %.1fms — the threshold autoscaler lags ramps that Lambda's per-request allocation absorbs", worstEC2, worstLam),
		"paper: Lambda(S3) has the worst latency (remote state passing), Lambda(mem) approaches EC2, and Lambda costs roughly an order of magnitude less")
	return r
}
