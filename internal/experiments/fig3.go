package experiments

import (
	"fmt"
	"time"

	"dsb/internal/graph"
	"dsb/internal/sim"
)

// Fig3 reproduces the network-vs-application-processing breakdown: three
// monolithic baselines plus the Social Network end-to-end service, each at
// low load. The paper reports network shares of 5.3% (nginx, 1293µs),
// 19.8% (memcached, 186µs), 13.6% (MongoDB, 383µs) and 36.3% for Social
// Network (3827µs).
func Fig3() *Report {
	r := &Report{
		ID:     "fig3",
		Title:  "Network (kernel TCP) vs application processing at low load",
		Header: []string{"application", "latency", "network share", "paper latency", "paper share"},
	}
	cases := []struct {
		app        *graph.App
		paperLat   string
		paperShare string
	}{
		{graph.Nginx(), "1293µs", "5.3%"},
		{graph.Memcached(), "186µs", "19.8%"},
		{graph.MongoDB(), "383µs", "13.6%"},
		{graph.SocialNetwork(), "3827µs", "36.3%"},
	}
	for _, c := range cases {
		d, err := sim.NewDeployment(sim.New(), sim.Config{App: c.app, Seed: 3})
		if err != nil {
			r.Notes = append(r.Notes, err.Error())
			continue
		}
		res := d.RunOpenLoop(30, 2*time.Second)
		r.Rows = append(r.Rows, []string{
			c.app.Name,
			us(time.Duration(res.E2E.P50)),
			pct(res.NetFrac),
			c.paperLat,
			c.paperShare,
		})
	}
	r.Notes = append(r.Notes,
		"shape check: microservices spend several times more of their latency in network processing than single-tier services")
	return r
}

// Fig16 measures the bump-in-the-wire FPGA offload: per application, the
// speedup on network processing alone and on end-to-end tail latency. The
// paper reports 10–68× network speedups and 43%–2.2× end-to-end gains.
func Fig16() *Report {
	r := &Report{
		ID:     "fig16",
		Title:  "FPGA TCP offload: network and end-to-end speedup",
		Header: []string{"application", "accel factor", "net proc speedup", "e2e p99 speedup"},
	}
	apps := []*graph.App{graph.SocialNetwork(), graph.MediaService(), graph.Ecommerce(), graph.Banking(), graph.SwarmCloud()}
	for _, build := range apps {
		app := build
		// Average message size over workflow services weights the accel.
		var sumBytes float64
		var n int
		for _, svc := range app.Services() {
			sumBytes += float64(app.Profiles[svc].MsgBytes)
			n++
		}
		factor := fpgaFactor(sumBytes / float64(n))

		type accelResult struct {
			sim.Result
			KernelNetNsPerReq float64
		}
		run := func(accel bool) accelResult {
			cfg := sim.Config{App: app, Seed: 16}
			if accel {
				cfg.Net = defaultNet().Accelerated(factor)
			}
			d, _ := sim.NewDeployment(sim.New(), cfg)
			res := d.RunOpenLoop(40, 2*time.Second)
			perReq := 0.0
			if d.Completed > 0 {
				perReq = d.NetNs / float64(d.Completed)
			}
			return accelResult{Result: res, KernelNetNsPerReq: perReq}
		}
		native := run(false)
		accel := run(true)
		// Network-processing speedup compares kernel NIC time per request
		// (wire propagation is not offloadable and excluded).
		netSpeedup := native.KernelNetNsPerReq / (accel.KernelNetNsPerReq + 1)
		e2eSpeedup := float64(native.E2E.P99) / float64(accel.E2E.P99)
		r.Rows = append(r.Rows, []string{
			app.Name,
			fmt.Sprintf("%.0fx", factor),
			fmt.Sprintf("%.1fx", netSpeedup),
			fmt.Sprintf("%.2fx", e2eSpeedup),
		})
	}
	r.Notes = append(r.Notes,
		"paper: network processing improves 10-68x; end-to-end tail improves 43% up to 2.2x",
		"wire propagation is not offloadable, so end-to-end gains are bounded by the app-processing share")
	return r
}
