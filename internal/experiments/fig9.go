package experiments

import (
	"fmt"
	"time"

	"dsb/internal/archsim"
	"dsb/internal/graph"
	"dsb/internal/sim"
)

// swarmQuery builds a single-purpose Swarm workflow: sensors → controller
// → one compute tier, matching Fig 9's separation of image-recognition and
// obstacle-avoidance query classes. The cloud placement archives telemetry
// synchronously (Fig 8b); the edge placement batches telemetry off the
// latency path, so its critical path never crosses the wifi hop.
func swarmQuery(kind string, edge bool) *graph.App {
	base := graph.SwarmCloud()
	p := map[string]graph.Profile{
		"droneSensors":    base.Profiles["droneSensors"],
		"cloudController": base.Profiles["cloudController"],
		kind:              base.Profiles[kind],
		"mongodb":         base.Profiles["mongodb"],
	}
	controller := &graph.Node{Service: "cloudController", Work: 1, Calls: []graph.Call{
		{Stage: 0, Count: 1, Node: &graph.Node{Service: kind, Work: 1}},
	}}
	if !edge {
		controller.Calls = append(controller.Calls,
			graph.Call{Stage: 1, Count: 1, Node: &graph.Node{Service: "mongodb", Work: 0.5}})
	}
	root := &graph.Node{Service: "droneSensors", Work: 1, Calls: []graph.Call{
		{Stage: 0, Count: 1, Node: controller},
	}}
	return &graph.App{Name: "swarm-" + kind, Profiles: p, Root: root, WireNs: graph.WifiWireNs}
}

// edgePlatform models the drone's on-board computer: few, slow cores.
var edgePlatform = archsim.Platform{Core: archsim.Xeon, FreqGHz: 0.5, Cores: 4}

// fleetSize matches the paper's 24 Parrot AR2.0 drones.
const fleetSize = 24

func swarmDeployment(kind string, edge bool, seed uint64) *sim.Deployment {
	app := swarmQuery(kind, edge)
	cfg := sim.Config{App: app, Seed: seed, ClientEdge: true}
	if edge {
		// Every tier runs per-drone on the weak on-board computer; the
		// compute tier gets one dedicated core per drone.
		cfg.EdgePlatform = edgePlatform
		cfg.EdgeServices = map[string]bool{"droneSensors": true, "cloudController": true, kind: true}
		cfg.Replicas = map[string]int{"droneSensors": fleetSize, "cloudController": fleetSize, kind: fleetSize}
	} else {
		// Sensors stay per-drone; the back-end cluster pools the compute.
		cfg.Replicas = map[string]int{"droneSensors": fleetSize, "cloudController": 2, kind: 4, "mongodb": 2}
	}
	d, _ := sim.NewDeployment(sim.New(), cfg)
	for _, in := range d.Service("droneSensors").Instances {
		in.Proc.SetWorkers(2)
	}
	if edge {
		for _, svc := range []string{"cloudController", kind} {
			for _, in := range d.Service(svc).Instances {
				in.Proc.SetWorkers(1)
			}
		}
	} else {
		for _, in := range d.Service(kind).Instances {
			in.Proc.SetWorkers(10)
		}
	}
	return d
}

// Fig9 sweeps load for the Swarm service with computation at the edge
// versus the cloud, for both query classes. The paper: cloud achieves
// ≈7.8× the throughput at equal tail latency for image recognition (and
// ≈20× lower latency at equal load), while obstacle avoidance — light and
// latency-critical — is better served at the edge at low load.
func Fig9() *Report {
	r := &Report{
		ID:     "fig9",
		Title:  "Swarm: tail latency vs offered load, edge vs cloud execution",
		Header: []string{"query", "placement", "qps", "p99"},
	}
	dur := 3 * time.Second
	type sweep struct {
		kind string
		qps  []float64
	}
	sweeps := []sweep{
		{"imageRecognition", []float64{1, 4, 16, 64, 128, 256, 512, 1024}},
		{"obstacleAvoidance", []float64{1, 8, 32, 128, 512, 2048, 8192}},
	}
	capAtTail := map[string]map[bool]float64{}
	lowLoadP99 := map[string]map[bool]float64{}
	for _, sw := range sweeps {
		capAtTail[sw.kind] = map[bool]float64{}
		lowLoadP99[sw.kind] = map[bool]float64{}
		for _, edge := range []bool{true, false} {
			placement := "cloud"
			if edge {
				placement = "edge"
			}
			// Shared tail budget for "max throughput at equal tail".
			budget := 400 * time.Millisecond
			best := 0.0
			for _, qps := range sw.qps {
				res := swarmDeployment(sw.kind, edge, 9).RunOpenLoop(qps, dur)
				p99 := time.Duration(res.E2E.P99)
				r.Rows = append(r.Rows, []string{sw.kind, placement, qpsStr(qps), ms(p99)})
				if qps == sw.qps[0] {
					lowLoadP99[sw.kind][edge] = float64(p99)
				}
				if p99 <= budget && qps > best {
					best = qps
				}
			}
			capAtTail[sw.kind][edge] = best
		}
	}
	for _, kind := range []string{"imageRecognition", "obstacleAvoidance"} {
		cloudCap, edgeCap := capAtTail[kind][false], capAtTail[kind][true]
		ratio := "n/a"
		if edgeCap > 0 {
			ratio = fmt.Sprintf("%.1fx", cloudCap/edgeCap)
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: cloud/edge throughput at equal tail = %s; low-load p99 edge=%s cloud=%s",
			kind, ratio,
			ms(time.Duration(lowLoadP99[kind][true])), ms(time.Duration(lowLoadP99[kind][false]))))
	}
	r.Notes = append(r.Notes,
		"paper: cloud ≈7.8x throughput at equal tail for image recognition; obstacle avoidance favors the edge at low load (wifi RTT dominates)")
	return r
}

// Fig15 reports network processing per tier at low and high load for the
// Social Network, and the network share of end-to-end latency for all five
// services — the growing role of TCP processing as NIC queues build.
func Fig15() *Report {
	r := &Report{
		ID:     "fig15",
		Title:  "Time in TCP processing vs application processing",
		Header: []string{"scope", "tier/app", "low net p99", "low total p99", "high net p99", "high total p99"},
	}
	dur := 1500 * time.Millisecond
	mkSocial := func() *sim.Deployment {
		d, _ := sim.NewDeployment(sim.New(), sim.Config{App: graph.SocialNetwork(), WorkerScale: 0.25, Seed: 15})
		return d
	}
	capQPS := findCapacity(mkSocial, 8, dur, 5)
	low := mkSocial()
	lowRes := low.RunOpenLoop(capQPS*0.15, dur)
	high := mkSocial()
	highRes := high.RunOpenLoop(capQPS*0.92, dur)

	for _, svc := range low.Services() {
		ln := time.Duration(low.Service(svc).NetResid.Percentile(99))
		lt := time.Duration(low.Service(svc).Resid.Percentile(99))
		hn := time.Duration(high.Service(svc).NetResid.Percentile(99))
		ht := time.Duration(high.Service(svc).Resid.Percentile(99))
		r.Rows = append(r.Rows, []string{"socialNetwork tier", svc, us(ln), us(lt), us(hn), us(ht)})
	}
	r.Rows = append(r.Rows, []string{"socialNetwork e2e", "ALL", pct(lowRes.NetFrac), ms(time.Duration(lowRes.E2E.P99)), pct(highRes.NetFrac), ms(time.Duration(highRes.E2E.P99))})

	for _, build := range []func() *graph.App{graph.MediaService, graph.Ecommerce, graph.Banking, graph.SwarmCloud} {
		app := build()
		mk := func() *sim.Deployment {
			d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, WorkerScale: 0.25, Seed: 15})
			return d
		}
		c := findCapacity(mk, 4, dur, 5)
		lo := mk().RunOpenLoop(c*0.15, dur)
		hi := mk().RunOpenLoop(c*0.92, dur)
		r.Rows = append(r.Rows, []string{"e2e", app.Name, pct(lo.NetFrac), ms(time.Duration(lo.E2E.P99)), pct(hi.NetFrac), ms(time.Duration(hi.E2E.P99))})
	}
	tailGrowth := float64(highRes.E2E.P99) / float64(lowRes.E2E.P99)
	r.Notes = append(r.Notes,
		fmt.Sprintf("social network p99 grows %.1fx from low to high load (paper: 3.2x as NIC queues build)", tailGrowth),
		"paper: RPC processing is 5-75% per tier at low load and a larger share everywhere at high load")
	return r
}
