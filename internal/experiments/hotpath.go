package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/core"
	"dsb/internal/metrics"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Knobs for the hotpath experiment. The injected store round-trip stands in
// for a real MongoDB network hop: in-process RPC completes in microseconds,
// which would close the miss window before a stampede can form, so the
// db-timeline wire is slowed to a realistic RTT for both arms.
const (
	hotpathWaves     = 8
	hotpathReaders   = 32
	hotpathFollowers = 64
	hotpathAppends   = 20
	hotpathStoreRTT  = 2 * time.Millisecond
	hotpathFanoutRTT = 500 * time.Microsecond
)

type stampedeResult struct {
	dbGets         int64
	waves, readers int
}

// hotpathStampede boots the Social Network, makes one user's timeline the
// hot key, and repeatedly invalidates it in front of a barrier-released
// burst of concurrent readers — the classic cache stampede. It returns how
// many reads actually reached the timeline store. With coalescing each
// wave collapses to ~1 backing fetch; with it disabled every reader in the
// burst fetches independently.
func hotpathStampede(disableCoalescing bool) (stampedeResult, error) {
	app := core.NewApp("hotpath-stampede", core.Options{DisableTracing: true})
	defer app.Close()
	var dbGets atomic.Int64
	mw := func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			if call.Target == "social.db-timeline" && call.Method == "Get" {
				dbGets.Add(1)
				time.Sleep(hotpathStoreRTT)
			}
			return next(ctx, call)
		}
	}
	sn, err := socialnetwork.New(app, socialnetwork.Config{
		SearchShards:      2,
		DisableCoalescing: disableCoalescing,
		Middleware:        []transport.Middleware{mw},
	})
	if err != nil {
		return stampedeResult{}, err
	}
	ctx := context.Background()
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "celeb", Password: "pw"}, nil); err != nil {
		return stampedeResult{}, err
	}
	var login socialnetwork.LoginResp
	if err := sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: "celeb", Password: "pw"}, &login); err != nil {
		return stampedeResult{}, err
	}
	if err := sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{Token: login.Token, Text: "the hot post"}, nil); err != nil {
		return stampedeResult{}, err
	}
	mcCaller, err := app.RPC("hotpath", "social.mc-timeline")
	if err != nil {
		return stampedeResult{}, err
	}
	mc := svcutil.KV{C: mcCaller}

	// Warm once, then count only the stampede traffic.
	if err := sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: "celeb", Limit: 10}, nil); err != nil {
		return stampedeResult{}, err
	}
	dbGets.Store(0)
	for w := 0; w < hotpathWaves; w++ {
		if err := mc.Delete(ctx, "tl:celeb"); err != nil {
			return stampedeResult{}, err
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < hotpathReaders; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: "celeb", Limit: 10}, nil) //nolint:errcheck
			}()
		}
		close(start)
		wg.Wait()
	}
	return stampedeResult{dbGets: dbGets.Load(), waves: hotpathWaves, readers: hotpathReaders}, nil
}

type fanoutResult struct {
	p50, p99  time.Duration
	followers int
	appends   int
	// delivered is the number of post IDs that actually landed on a probe
	// follower's stored timeline — the fan-out correctness check.
	delivered int
}

// hotpathFanout boots the Social Network with an author whose posts fan out
// to hotpathFollowers timelines and measures Append latency under the given
// worker-pool width. workers=1 reproduces the old sequential fan-out; the
// default pool overlaps the per-follower store round-trips.
func hotpathFanout(workers int) (fanoutResult, error) {
	app := core.NewApp("hotpath-fanout", core.Options{DisableTracing: true})
	defer app.Close()
	mw := func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			if call.Target == "social.db-timeline" && call.Method == "ListPrepend" {
				time.Sleep(hotpathFanoutRTT)
			}
			return next(ctx, call)
		}
	}
	sn, err := socialnetwork.New(app, socialnetwork.Config{
		SearchShards:  2,
		FanoutWorkers: workers,
		Middleware:    []transport.Middleware{mw},
	})
	if err != nil {
		return fanoutResult{}, err
	}
	ctx := context.Background()
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "author", Password: "pw"}, nil); err != nil {
		return fanoutResult{}, err
	}
	for i := 0; i < hotpathFollowers; i++ {
		u := fmt.Sprintf("f%d", i)
		if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: u, Password: "pw"}, nil); err != nil {
			return fanoutResult{}, err
		}
		if err := sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: u, Followee: "author"}, nil); err != nil {
			return fanoutResult{}, err
		}
	}
	wt, err := app.RPC("hotpath", "social.writeTimeline")
	if err != nil {
		return fanoutResult{}, err
	}
	lats := make([]int64, 0, hotpathAppends)
	for i := 0; i < hotpathAppends; i++ {
		req := socialnetwork.AppendTimelineReq{Author: "author", PostID: fmt.Sprintf("p%02d", i), Ts: int64(i)}
		t0 := time.Now()
		if err := wt.Call(ctx, "Append", req, nil); err != nil {
			return fanoutResult{}, err
		}
		lats = append(lats, time.Since(t0).Nanoseconds())
	}
	qs := metrics.Quantiles(lats, 50, 99)

	// Correctness probe: every append must be on a follower's stored
	// timeline regardless of fan-out parallelism.
	dbCaller, err := app.RPC("hotpath", "social.db-timeline")
	if err != nil {
		return fanoutResult{}, err
	}
	doc, found, err := svcutil.DB{C: dbCaller}.Get(ctx, "timelines", "tl:f0")
	if err != nil {
		return fanoutResult{}, err
	}
	var ids []string
	if found {
		if err := codec.Unmarshal(doc.Body, &ids); err != nil {
			return fanoutResult{}, err
		}
	}
	return fanoutResult{
		p50:       time.Duration(qs[0]),
		p99:       time.Duration(qs[1]),
		followers: hotpathFollowers,
		appends:   hotpathAppends,
		delivered: len(ids),
	}, nil
}

// HotPath measures the hot-path performance layer on the live stack. The
// stampede arm contrasts miss coalescing against one-fetch-per-reader on a
// hot invalidated timeline key (the paper's memcached tiers exist exactly
// to shield the backing stores from this traffic); the fan-out arm
// contrasts the bounded parallel write fan-out against the old sequential
// walk of a high-follower author's audience — the composePost/repost cost
// the paper singles out as the suite's most expensive query class.
func HotPath() *Report {
	r := &Report{
		ID:     "hotpath",
		Title:  "Miss coalescing and batched write fan-out (live stack)",
		Header: []string{"arm", "config", "store fetches", "append p50", "append p99"},
	}
	fail := func(err error) *Report {
		r.Notes = append(r.Notes, "hotpath: "+err.Error())
		return r
	}

	co, err := hotpathStampede(false)
	if err != nil {
		return fail(err)
	}
	un, err := hotpathStampede(true)
	if err != nil {
		return fail(err)
	}
	stampedeRow := func(label string, s stampedeResult) []string {
		return []string{
			"stampede",
			fmt.Sprintf("%s, %d waves x %d readers", label, s.waves, s.readers),
			fmt.Sprintf("%d (%.1f/wave)", s.dbGets, float64(s.dbGets)/float64(s.waves)),
			"-", "-",
		}
	}
	r.Rows = append(r.Rows, stampedeRow("coalesced", co), stampedeRow("uncoalesced", un))

	pooled, err := hotpathFanout(0) // 0 = the configured default pool
	if err != nil {
		return fail(err)
	}
	seq, err := hotpathFanout(1)
	if err != nil {
		return fail(err)
	}
	fanoutRow := func(label string, f fanoutResult) []string {
		return []string{
			"fanout",
			fmt.Sprintf("%s, %d followers", label, f.followers),
			fmt.Sprintf("%d/%d delivered", f.delivered, f.appends),
			ms(f.p50), ms(f.p99),
		}
	}
	r.Rows = append(r.Rows, fanoutRow("pooled workers", pooled), fanoutRow("sequential", seq))

	if co.dbGets > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"coalescing cut backing-store fetches %.0fx (%d -> %d) across %d concurrent-miss waves",
			float64(un.dbGets)/float64(co.dbGets), un.dbGets, co.dbGets, co.waves))
	}
	if pooled.p50 > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"parallel fan-out cut append p50 %.1fx vs sequential (%s -> %s)",
			float64(seq.p50)/float64(pooled.p50), ms(seq.p50), ms(pooled.p50)))
	}
	return r
}
