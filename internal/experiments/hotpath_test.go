package experiments

import "testing"

// TestHotPathShape asserts the directional claims of the hotpath
// experiment: miss coalescing must cut backing-store fetches by at least an
// order of magnitude under a concurrent-miss stampede, and the bounded
// parallel fan-out must both beat the sequential walk and deliver every
// append.
func TestHotPathShape(t *testing.T) {
	co, err := hotpathStampede(false)
	if err != nil {
		t.Fatal(err)
	}
	un, err := hotpathStampede(true)
	if err != nil {
		t.Fatal(err)
	}
	// Each wave misses at least once: the count cannot be below one fetch
	// per invalidation (that would mean the store was never consulted).
	if co.dbGets < int64(co.waves) {
		t.Fatalf("coalesced fetches = %d, want >= %d (one per wave)", co.dbGets, co.waves)
	}
	if un.dbGets < 10*co.dbGets {
		t.Fatalf("uncoalesced fetches = %d vs coalesced %d: stampede not reduced >= 10x", un.dbGets, co.dbGets)
	}

	pooled, err := hotpathFanout(0)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := hotpathFanout(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []fanoutResult{pooled, seq} {
		if f.delivered != f.appends {
			t.Fatalf("delivered %d of %d appends: fan-out lost entries", f.delivered, f.appends)
		}
	}
	if pooled.p50 >= seq.p50 {
		t.Fatalf("pooled p50 %v not below sequential p50 %v", pooled.p50, seq.p50)
	}
}
