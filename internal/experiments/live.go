package experiments

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/metrics"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/svcutil"
)

// QueryDiversity reproduces the Section 3.8 observations on the live
// in-process stack: composePost latency grows with embedded media, reposts
// are the slowest Social Network query class, and placing an E-commerce
// order costs 1–2 orders of magnitude more than browsing the catalogue.
func QueryDiversity() *Report {
	r := &Report{
		ID:     "querydiv",
		Title:  "Per-query-class latency on the live stack (medians of 30 requests)",
		Header: []string{"application", "query class", "median latency"},
	}
	ctx := context.Background()

	// --- Social Network ---
	app := core.NewApp("qd-social", core.Options{DisableTracing: true})
	defer app.Close()
	sn, err := socialnetwork.New(app, socialnetwork.Config{SearchShards: 2})
	if err != nil {
		r.Notes = append(r.Notes, "social boot: "+err.Error())
		return r
	}
	if err := sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: "alice", Password: "pw"}, nil); err != nil {
		r.Notes = append(r.Notes, err.Error())
		return r
	}
	var login socialnetwork.LoginResp
	sn.User.Call(ctx, "Login", socialnetwork.LoginReq{Username: "alice", Password: "pw"}, &login) //nolint:errcheck
	// Followers so the fan-out path is real.
	for i := 0; i < 8; i++ {
		u := fmt.Sprintf("f%d", i)
		sn.User.Call(ctx, "Register", socialnetwork.RegisterReq{Username: u, Password: "pw"}, nil) //nolint:errcheck
		sn.Graph.Call(ctx, "Follow", socialnetwork.FollowReq{Follower: u, Followee: "alice"}, nil) //nolint:errcheck
	}

	measure := func(n int, fn func(i int) error) time.Duration {
		lats := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := fn(i); err != nil {
				r.Notes = append(r.Notes, "measurement error: "+err.Error())
				return 0
			}
			lats = append(lats, time.Since(t0).Nanoseconds())
		}
		return time.Duration(metrics.Quantiles(lats, 50)[0])
	}

	var lastPost socialnetwork.Post
	textLat := measure(30, func(i int) error {
		var resp socialnetwork.ComposePostResp
		err := sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
			Token: login.Token, Text: fmt.Sprintf("text-only post %d with a few words", i),
		}, &resp)
		lastPost = resp.Post
		return err
	})
	img := make([]byte, 64<<10)
	imageLat := measure(30, func(i int) error {
		return sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
			Token: login.Token, Text: fmt.Sprintf("image post %d", i), Images: [][]byte{img},
		}, nil)
	})
	vid := make([]byte, 2<<20)
	videoLat := measure(10, func(i int) error {
		return sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
			Token: login.Token, Text: fmt.Sprintf("video post %d", i), Videos: [][]byte{vid},
		}, nil)
	})
	repostLat := measure(30, func(i int) error {
		return sn.Compose.Call(ctx, "Compose", socialnetwork.ComposePostReq{
			Token: login.Token, Text: "so true", RepostOf: lastPost.ID,
		}, nil)
	})
	readLat := measure(30, func(i int) error {
		return sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: "f0", Limit: 10}, nil)
	})
	r.Rows = append(r.Rows,
		[]string{"socialNetwork", "readTimeline", fmt.Sprint(readLat)},
		[]string{"socialNetwork", "composePost (text)", fmt.Sprint(textLat)},
		[]string{"socialNetwork", "composePost (image)", fmt.Sprint(imageLat)},
		[]string{"socialNetwork", "composePost (video)", fmt.Sprint(videoLat)},
		[]string{"socialNetwork", "repost", fmt.Sprint(repostLat)},
	)

	// --- E-commerce ---
	app2 := core.NewApp("qd-ecom", core.Options{DisableTracing: true})
	ec, err := ecommerce.New(app2, ecommerce.Config{})
	if err != nil {
		r.Notes = append(r.Notes, "ecom boot: "+err.Error())
		return r
	}
	defer func() { ec.Close(); app2.Close() }()
	ec.SeedItems([]ecommerce.Item{ //nolint:errcheck
		{ID: "item-1", Name: "Socks", Tags: []string{"socks"}, PriceCents: 500, WeightGram: 100, Stock: 100000},
	})
	ec.User.Call(ctx, "Register", ecommerce.RegisterUserReq{Username: "buyer", Password: "pw", BalanceCents: 1 << 40}, nil) //nolint:errcheck
	var elogin ecommerce.LoginResp
	ec.User.Call(ctx, "Login", ecommerce.LoginReq{Username: "buyer", Password: "pw"}, &elogin) //nolint:errcheck

	browseLat := measure(30, func(i int) error {
		return ec.Catalogue.Call(ctx, "List", ecommerce.ListItemsReq{Limit: 20}, &ecommerce.ItemsResp{})
	})
	orderLat := measure(30, func(i int) error {
		if err := ec.Cart.Call(ctx, "Add", ecommerce.CartAddReq{Username: "buyer", ItemID: "item-1", Quantity: 1}, nil); err != nil {
			return err
		}
		return ec.Orders.Call(ctx, "Place", ecommerce.PlaceOrderReq{Token: elogin.Token, Shipping: "standard"}, nil)
	})
	r.Rows = append(r.Rows,
		[]string{"ecommerce", "browse catalogue", fmt.Sprint(browseLat)},
		[]string{"ecommerce", "place order", fmt.Sprint(orderLat)},
	)
	if browseLat > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("order/browse latency ratio = %.1fx (paper: 1-2 orders of magnitude)", float64(orderLat)/float64(browseLat)))
	}
	if textLat > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("repost/text ratio = %.1fx (paper: reposts are the slowest Social Network class)", float64(repostLat)/float64(textLat)))
	}
	return r
}

// RPCvsREST compares the two communication substrates on identical
// payloads over the in-memory transport — Section 7's framework trade-off.
func RPCvsREST() *Report {
	r := &Report{
		ID:     "rpcrest",
		Title:  "RPC vs REST: median round-trip per payload size (live, in-memory transport)",
		Header: []string{"payload", "RPC", "REST", "REST/RPC"},
	}
	ctx := context.Background()
	net := rpc.NewMem()

	type echoMsg struct{ Data []byte }
	rpcSrv := rpc.NewServer("echo")
	svcutil.Handle(rpcSrv, "Echo", func(c *rpc.Ctx, req *echoMsg) (*echoMsg, error) { return req, nil })
	rpcAddr, err := rpcSrv.Start(net, "echo-rpc:0")
	if err != nil {
		r.Notes = append(r.Notes, err.Error())
		return r
	}
	defer rpcSrv.Close()
	rpcClient := rpc.NewClient(net, "echo", rpcAddr)
	defer rpcClient.Close()

	restSrv := rest.NewServer("echo")
	restSrv.Handle("POST /echo", func(c *rest.Ctx, body []byte) (any, error) {
		var req struct {
			Data []byte `json:"data"`
		}
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		return req, nil
	})
	restAddr, err := restSrv.Start(net, "echo-rest:0")
	if err != nil {
		r.Notes = append(r.Notes, err.Error())
		return r
	}
	defer restSrv.Close()
	restClient := rest.NewClient(net, "echo", restAddr)
	defer restClient.Close()

	median := func(n int, fn func() error) time.Duration {
		lats := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0
			}
			lats = append(lats, time.Since(t0).Nanoseconds())
		}
		return time.Duration(metrics.Quantiles(lats, 50)[0])
	}

	for _, size := range []int{64, 1024, 16 << 10, 128 << 10} {
		payload := make([]byte, size)
		req := echoMsg{Data: payload}
		rpcLat := median(200, func() error {
			var out echoMsg
			return rpcClient.Call(ctx, "Echo", req, &out)
		})
		restLat := median(200, func() error {
			var out struct {
				Data []byte `json:"data"`
			}
			return restClient.Do(ctx, "POST", "/echo", map[string][]byte{"data": payload}, &out)
		})
		ratio := "-"
		if rpcLat > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(restLat)/float64(rpcLat))
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%dB", size), fmt.Sprint(rpcLat), fmt.Sprint(restLat), ratio})
	}
	r.Notes = append(r.Notes,
		"paper: RPCs introduce considerably lower latencies than HTTP at low load; both suffer network processing at high load")
	return r
}
