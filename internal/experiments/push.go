package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/mq"
	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// Push experiment: what does retiring the consume poll loop buy? Both arms
// run one consumer group against the same two-shard broker tier at the same
// offered publish rate; the poll arm long-polls Consume (paying a broker
// RPC per sweep, empty or not, plus the per-sweep grace), the push arm
// holds one standing stream per shard primary and the broker sends
// messages as they arrive. Delivery latency is measured from the publish
// timestamp each message carries; the broker tier counts every Consume RPC
// it serves, split into productive and idle (empty) polls — the polling
// tax the run's trailing idle window makes visible. A separate rerun of the
// broker-crash experiment under push mode checks the durability contract
// (acked ⇒ delivered, zero loss with mirrors) survives the delivery-path
// swap.
const (
	pushShards = 2
	pushMsgs   = 150
	// pushRate spaces publishes on a Poisson clock: fast enough to finish
	// inside a test run, slow enough that most poll-arm deliveries wait out
	// part of a sweep.
	pushRate = 300.0
	// pushPollWait is the poll arm's per-sweep wait budget (split across
	// shards by the partitioned client).
	pushPollWait = 50 * time.Millisecond
	// pushIdleWindow keeps consumers running after the last delivery: the
	// window where a poller keeps burning broker RPCs and push sits silent.
	pushIdleWindow = 500 * time.Millisecond
	pushLease      = 30 * time.Second
)

// pushResult is one arm's accounting.
type pushResult struct {
	mode        string
	delivered   int
	p50, p99    time.Duration
	consumeRPCs int // Consume RPCs the broker tier served, total
	idlePolls   int // the subset that returned empty — pure polling tax
}

// pushRig is a bare partitioned broker tier (no app on top): brokers behind
// RPC servers with a Consume-counting interceptor, grouped into shards.
type pushRig struct {
	bus         *mq.Partitioned
	consumeRPCs atomic.Int64
	idlePolls   atomic.Int64
	close       func()
}

func bootPushRig() (*pushRig, error) {
	rig := &pushRig{}
	net := rpc.NewMem()
	reg := registry.New()
	var servers []*rpc.Server
	for s := 0; s < pushShards; s++ {
		b := mq.NewBroker()
		srv := rpc.NewServer("broker")
		srv.Use(func(ctx *rpc.Ctx, payload []byte, next rpc.Handler) ([]byte, error) {
			out, err := next(ctx, payload)
			if ctx.Method == "Consume" {
				rig.consumeRPCs.Add(1)
				var resp mq.ConsumeResp
				if err == nil && codec.Unmarshal(out, &resp) == nil && !resp.OK {
					rig.idlePolls.Add(1)
				}
			}
			return out, err
		})
		mq.RegisterService(srv, b)
		addr, err := srv.Start(net, fmt.Sprintf("broker/s%d", s))
		if err != nil {
			return nil, err
		}
		reg.RegisterInstance("broker", addr, map[string]string{shard.MetaShard: strconv.Itoa(s)})
		servers = append(servers, srv)
	}
	router := shard.NewRouter(net, "broker")
	router.Sync(reg.Instances("broker"))
	rig.bus = mq.NewPartitioned(router)
	rig.close = func() {
		for _, srv := range servers {
			srv.Close()
		}
		router.Close()
	}
	return rig, nil
}

// pushRun drives one arm: a Poisson publisher against one consumer in the
// given mode, then a trailing idle window with the consumer still running.
func pushRun(mode string) (pushResult, error) {
	rig, err := bootPushRig()
	if err != nil {
		return pushResult{}, err
	}
	defer rig.close()
	ctx := context.Background()
	if err := rig.bus.Subscribe(ctx, "t", "g", mq.QueueConfig{}); err != nil {
		return pushResult{}, err
	}

	var mu sync.Mutex
	var lats []time.Duration
	record := func(m mq.ConsumeResp) {
		var sent int64
		if codec.Unmarshal(m.Body, &sent) != nil {
			return
		}
		mu.Lock()
		lats = append(lats, time.Duration(time.Now().UnixNano()-sent))
		mu.Unlock()
		rig.bus.Ack(ctx, "t", "g", m) //nolint:errcheck // one-way settle
	}
	delivered := func() int { mu.Lock(); defer mu.Unlock(); return len(lats) }

	cctx, stop := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	switch mode {
	case "push":
		d, err := rig.bus.Push(cctx, "t", "g", pushLease)
		if err != nil {
			stop()
			return pushResult{}, err
		}
		go func() {
			defer wg.Done()
			defer d.Close()
			for {
				m, err := d.Next()
				if err != nil {
					return // session closed
				}
				record(m)
			}
		}()
	case "poll":
		go func() {
			defer wg.Done()
			for cctx.Err() == nil {
				m, err := rig.bus.Consume(cctx, "t", "g", pushLease, pushPollWait)
				if err != nil || !m.OK {
					continue
				}
				record(m)
			}
		}()
	default:
		stop()
		return pushResult{}, fmt.Errorf("push: unknown mode %q", mode)
	}

	// Poisson publisher: every message carries its send time.
	rng := rand.New(rand.NewPCG(17, 0xD15B))
	start := time.Now()
	var sched time.Duration
	for i := 0; i < pushMsgs; i++ {
		sched += time.Duration(rng.ExpFloat64() * float64(time.Second) / pushRate)
		if d := sched - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		body, _ := codec.Marshal(time.Now().UnixNano())
		if _, err := rig.bus.PublishKey(ctx, "t", fmt.Sprintf("m%d", i), body); err != nil {
			stop()
			wg.Wait()
			return pushResult{}, err
		}
	}
	// Wait for the drain, then hold the consumer through an idle window —
	// where the polling tax keeps accruing and push costs nothing.
	drainEnd := time.Now().Add(10 * time.Second)
	for delivered() < pushMsgs && time.Now().Before(drainEnd) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(pushIdleWindow)
	stop()
	wg.Wait()

	res := pushResult{
		mode:        mode,
		delivered:   delivered(),
		consumeRPCs: int(rig.consumeRPCs.Load()),
		idlePolls:   int(rig.idlePolls.Load()),
	}
	mu.Lock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.p50, res.p99 = lats[n/2], lats[n*99/100]
	}
	mu.Unlock()
	return res, nil
}

// Push contrasts push-based and poll-based consumer delivery at equal
// offered throughput, then reruns the replicated broker-crash arm under
// push to show the at-least-once durability contract is delivery-path
// independent.
func Push() *Report {
	r := &Report{
		ID:    "push",
		Title: "Push vs poll consumer delivery: latency and the polling tax (live stack)",
		Header: []string{"arm", "delivered", "p50", "p99", "consume RPCs", "idle polls"},
	}
	for _, mode := range []string{"push", "poll"} {
		res, err := pushRun(mode)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("push %s arm: %v", mode, err))
			continue
		}
		r.Rows = append(r.Rows, []string{
			res.mode, fmt.Sprintf("%d/%d", res.delivered, pushMsgs),
			ms(res.p50), ms(res.p99),
			fmt.Sprintf("%d", res.consumeRPCs), fmt.Sprintf("%d", res.idlePolls),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%s msgs at %s/s into a %d-shard tier; consumers then idle %v — the window where polling keeps paying a broker RPC per sweep and push pays none",
			fmt.Sprintf("%d", pushMsgs), qpsStr(pushRate), pushShards, pushIdleWindow),
		"push holds one standing stream per shard primary; delivery rides the stream's credit window (backpressure with at most a window leased ahead), settles stay Ack/Nack by key")

	// Crash rerun: the replicated broker-crash arm with push-mode consumers.
	if res, err := bcRun(true, true, 41); err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("push crash rerun: %v", err))
	} else {
		recovery := "-"
		if res.recovered {
			recovery = fmt.Sprintf("%.0fms", float64(res.recovery)/1e6)
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"broker-crash rerun under push (replicated 2x2): %d acked, %d delivered, %d lost, %d dups, recovery %s — streams die with the corpse, consumers reopen against the promoted mirror, and every acked message still arrives",
			res.acked, res.delivered, res.lost, res.dups, recovery))
	}
	return r
}
