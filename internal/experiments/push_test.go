package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// pushShapeViolations runs both delivery arms at equal offered load and
// returns the claims that did not hold. An empty list is a clean pass.
func pushShapeViolations() []string {
	var v []string
	push, err := pushRun("push")
	if err != nil {
		return []string{fmt.Sprintf("push arm failed: %v", err)}
	}
	poll, err := pushRun("poll")
	if err != nil {
		return []string{fmt.Sprintf("poll arm failed: %v", err)}
	}

	// Both arms must drain the drive — a latency contrast between partial
	// deliveries compares nothing.
	for _, res := range []pushResult{push, poll} {
		if res.delivered < pushMsgs {
			v = append(v, fmt.Sprintf("%s arm delivered %d/%d — the drive never drained", res.mode, res.delivered, pushMsgs))
		}
	}
	if len(v) > 0 {
		return v
	}

	// The tentpole claim: push delivery rides the standing stream, so a
	// message never waits out a poll sweep. Poll-arm p50 sits in the sweep
	// cadence; push-arm p50 must beat it outright.
	if push.p50 >= poll.p50 {
		v = append(v, fmt.Sprintf("push p50 %v is not below poll p50 %v — the stream bought no latency", push.p50, poll.p50))
	}
	// The polling tax: push mode issues zero Consume RPCs, ever — delivery
	// and the idle window both ride the stream.
	if push.consumeRPCs != 0 {
		v = append(v, fmt.Sprintf("push arm issued %d Consume RPCs — the poll path is still live under push", push.consumeRPCs))
	}
	// The contrast needs the tax to be visible: the poll arm must have paid
	// idle polls across the trailing window (empty sweeps against both
	// shards).
	if poll.idlePolls == 0 {
		v = append(v, "poll arm paid zero idle polls — the idle window missed the tax, so the contrast shows nothing")
	}
	return v
}

// TestPushShape asserts the push experiment's contrast — push delivery is
// faster than polling at equal throughput and eliminates idle-poll RPCs
// entirely — and then reruns the replicated broker-crash arm with
// push-mode consumers: the durability contract (zero acked-message loss,
// no duplicates, bounded recovery) must be delivery-path independent.
// Standing push streams are the new leak surface, so the whole run sits
// inside a goroutine-leak guard. Latency arms are wall-clock runs, so the
// shape gets three attempts and passes on the first clean one.
func TestPushShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live push/poll runs skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = pushShapeViolations()
		if len(last) == 0 {
			break
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}

	// Crash rerun under push: same seed discipline as the broker-crash shape.
	var res bcResult
	var err error
	for i := 1; i <= attempts; i++ {
		res, err = bcRun(true, true, int64(41*i))
		if err == nil && res.acked >= res.appended/2 && res.lost == 0 && res.dups == 0 && res.recovered {
			break
		}
		t.Logf("crash rerun attempt %d/%d: err=%v acked=%d/%d lost=%d dups=%d recovered=%v",
			i, attempts, err, res.acked, res.appended, res.lost, res.dups, res.recovered)
	}
	if err != nil {
		t.Fatalf("crash rerun under push failed: %v", err)
	}
	if res.lost != 0 {
		t.Errorf("crash under push lost %d acked posts (delivered %d/%d) — acked ⇒ mirrored broke on the stream path",
			res.lost, res.delivered, res.acked)
	}
	if res.dups != 0 {
		t.Errorf("crash under push delivered %d duplicates — stream redelivery is not idempotent", res.dups)
	}
	if !res.recovered {
		t.Error("crash under push never converged: acked posts were still missing when the delivered set settled")
	}

	// Leak guard: every arm tears its stack down; standing streams, push
	// sessions, and reopen loops must all unwind. Allow brief settling and a
	// small slack for runtime background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
