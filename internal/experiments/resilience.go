package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/core"
	"dsb/internal/metrics"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// SlowServerResilience extends Figure 22c onto the live stack: the paper
// shows that once ≥1% of servers are slow, microservice goodput collapses
// to ~0, because a deep service graph almost guarantees every request
// crosses some slow instance. This experiment reproduces the collapse on a
// live multi-tier chain, then turns on the transport resilience layer
// (deadline budgets, retries, hedged requests, per-replica circuit
// breakers) and measures how much of the fault-free goodput it restores:
// hedges rescue the first calls that land on a slow replica, the breaker's
// latency-outlier detection then ejects it so later calls never pay the
// tail at all.
func SlowServerResilience() *Report {
	r := &Report{
		ID:    "resilience",
		Title: "Slow servers vs goodput, with and without the resilience layer (live stack)",
		Header: []string{"config", "slow/tier", "goodput (req/s)", "normalized",
			"p50", "p99", "hedge wins", "breaker trips"},
	}

	const (
		tiers    = 6                     // chain depth; P(clean path) = (3/4)^6 ≈ 0.18
		replicas = 4                     // instances per tier
		qos      = 12 * time.Millisecond // end-to-end QoS target
		slowTime = 20 * time.Millisecond // a slow server blows the whole budget
		// Healthy per-tier service time, busy-spun: the container's sleep
		// granularity (~1ms) is coarser than the RPC round trip (~10µs), so
		// sub-millisecond service times must burn rather than sleep.
		workTime = 20 * time.Microsecond
	)

	baseline := runChain(chainConfig{tiers: tiers, replicas: replicas, qos: qos,
		workTime: workTime, slowTime: slowTime})
	unprotected := runChain(chainConfig{tiers: tiers, replicas: replicas, qos: qos,
		workTime: workTime, slowTime: slowTime, slowPerTier: 1})
	protected := runChain(chainConfig{tiers: tiers, replicas: replicas, qos: qos,
		workTime: workTime, slowTime: slowTime, slowPerTier: 1, protected: true})

	row := func(name string, slow int, res chainResult) {
		norm := 0.0
		if baseline.goodput > 0 {
			norm = res.goodput / baseline.goodput
		}
		r.Rows = append(r.Rows, []string{
			name, fmt.Sprintf("%d/%d", slow, replicas),
			fmt.Sprintf("%.0f", res.goodput), fmt.Sprintf("%.2f", norm),
			ms(res.p50), ms(res.p99),
			fmt.Sprintf("%d", res.hedgeWins), fmt.Sprintf("%d", res.breakerTrips),
		})
	}
	row("fault-free", 0, baseline)
	row("slow, unprotected", 1, unprotected)
	row("slow, resilient", 1, protected)

	r.Notes = append(r.Notes,
		fmt.Sprintf("chain of %d tiers × %d replicas; a clean path misses every slow replica with p=(3/4)^%d ≈ %.2f",
			tiers, replicas, tiers, cleanPathProb(tiers, replicas)),
		"unprotected: one slow replica per tier drives goodput toward 0 (paper Fig 22c)",
		"resilient: hedged requests rescue calls that land on a slow replica; the per-replica breaker's slow-call detection then ejects it, restoring most of the fault-free goodput")
	return r
}

// burn spins for d; handler service times are far below the scheduler's
// sleep granularity, so sleeping would distort them by an order of
// magnitude.
func burn(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func cleanPathProb(tiers, replicas int) float64 {
	p := 1.0
	for i := 0; i < tiers; i++ {
		p *= float64(replicas-1) / float64(replicas)
	}
	return p
}

type chainConfig struct {
	tiers       int
	replicas    int
	slowPerTier int
	protected   bool
	qos         time.Duration
	workTime    time.Duration
	slowTime    time.Duration
}

type chainResult struct {
	goodput      float64 // QoS-compliant requests per second, steady state
	hedgeWins    int64
	breakerTrips int64
	p50, p99     time.Duration // end-to-end latency, measured phase
}

// runChain boots a root→tier1→…→tierN RPC chain on an in-memory network,
// drives it closed-loop, and measures steady-state goodput (requests
// finishing inside the QoS target per second). The first warmup phase is
// excluded, giving the breakers time to find the slow replicas.
func runChain(cfg chainConfig) chainResult {
	opts := core.Options{DisableTracing: true}
	if cfg.protected {
		opts.Resilience = &transport.ResilienceConfig{
			Budget: &transport.BudgetConfig{Fraction: 0.8},
			Retry:  &transport.RetryConfig{Attempts: 2},
			// Budget-scaled delays nest the per-tier hedges: deeper hops hold
			// tighter budgets and hedge sooner, so the rescue closest to a
			// slow server fires first and upstream primaries finish before
			// their own delays do.
			Hedge: &transport.HedgeConfig{Delay: 500 * time.Microsecond, BudgetFraction: 0.6, MaxHedges: 2},
			Breaker: &transport.BreakerConfig{
				Failures: 5,
				Cooldown: 300 * time.Millisecond,
				// Above the healthy end-to-end latency, below the earliest
				// hedge fire time: an attempt canceled because a sibling
				// outran it has necessarily run past this, so the slow
				// replica is charged; healthy replicas in rescued branches
				// are not (the outrun gate, see BreakerConfig).
				SlowThreshold: 2 * time.Millisecond,
				// Spent budgets indict the subtree, not the next hop; let the
				// outrun signal do the attribution.
				NeutralDeadline: true,
				MaxEjected:      1,
			},
		}
	}
	app := core.NewApp("chain", opts)
	defer app.Close()

	// Boot leaf-first so each tier can wire its downstream client.
	var next svcutil.Caller
	for tier := cfg.tiers; tier >= 1; tier-- {
		svc := fmt.Sprintf("chain.tier%d", tier)
		for rep := 0; rep < cfg.replicas; rep++ {
			slow := rep < cfg.slowPerTier
			down := next // capture this tier's downstream client
			_, err := app.StartRPC(svc, func(s *rpc.Server) {
				s.Handle("Work", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
					if slow {
						time.Sleep(cfg.slowTime)
					} else {
						burn(cfg.workTime)
					}
					if down != nil {
						return nil, down.Call(ctx, "Work", nil, nil)
					}
					return nil, nil
				})
			})
			if err != nil {
				return chainResult{}
			}
		}
		cl, err := app.RPC(fmt.Sprintf("chain.tier%d", tier-1), svc)
		if err != nil {
			return chainResult{}
		}
		next = cl
	}
	root := next

	const (
		workers = 4
		warmup  = 700 * time.Millisecond
		measure = 500 * time.Millisecond
	)
	var good atomic.Int64
	lat := metrics.NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				elapsed := time.Since(start)
				if elapsed >= warmup+measure {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), cfg.qos)
				t0 := time.Now()
				err := root.Call(ctx, "Work", nil, nil)
				cancel()
				took := time.Since(t0)
				if time.Since(start) > warmup {
					lat.RecordDuration(took)
					if err == nil && took <= cfg.qos {
						good.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	res := chainResult{
		goodput: float64(good.Load()) / measure.Seconds(),
		p50:     lat.PercentileDuration(50),
		p99:     lat.PercentileDuration(99),
	}
	if app.Transport != nil {
		res.hedgeWins = app.Transport.HedgeWins.Value()
		res.breakerTrips = app.Transport.BreakerOpened.Value()
	}
	return res
}
