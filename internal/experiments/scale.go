package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dsb/internal/cluster"
	"dsb/internal/graph"
	"dsb/internal/sim"
)

// Fig18 summarizes dependency-graph shape: our applications against
// synthetic production-scale graphs with the connectivity the paper's
// Netflix/Twitter/Amazon visualizations show.
func Fig18() *Report {
	r := &Report{
		ID:     "fig18",
		Title:  "Dependency-graph shapes",
		Header: []string{"graph", "services", "edges", "avg out-degree", "depth"},
	}
	for _, app := range graph.EndToEndApps() {
		services := app.Services()
		edges := app.Edges()
		r.Rows = append(r.Rows, []string{
			app.Name,
			fmt.Sprintf("%d", len(services)),
			fmt.Sprintf("%d", len(edges)),
			f2(float64(len(edges)) / float64(len(services))),
			fmt.Sprintf("%d", app.Depth()),
		})
	}
	// Synthetic production graphs: random layered DAGs at reported scales.
	for _, prod := range []struct {
		name     string
		services int
		fanout   float64
	}{
		{"netflix-like", 210, 3.2},
		{"twitter-like", 160, 2.8},
		{"amazon-like", 140, 3.6},
	} {
		rng := rand.New(rand.NewPCG(uint64(prod.services), 18))
		edges := 0
		maxDepth := 0
		layerOf := make([]int, prod.services)
		for i := 1; i < prod.services; i++ {
			layerOf[i] = layerOf[rng.IntN(i)] + 1
			if layerOf[i] > maxDepth {
				maxDepth = layerOf[i]
			}
			edges += 1 + rng.IntN(int(prod.fanout*2))
		}
		r.Rows = append(r.Rows, []string{
			prod.name,
			fmt.Sprintf("%d", prod.services),
			fmt.Sprintf("%d", edges),
			f2(float64(edges) / float64(prod.services)),
			fmt.Sprintf("%d", maxDepth),
		})
	}
	r.Notes = append(r.Notes,
		"paper: production microservice graphs have hundreds of nodes with dense, fast-changing dependencies no operator can describe by hand")
	return r
}

// Fig22b sweeps the request-skew knob: skew% = 100 − u where u% of users
// issue 90% of requests; skewed traffic concentrates on hot instances and
// goodput under QoS collapses.
func Fig22b() *Report {
	r := &Report{
		ID:     "fig22b",
		Title:  "Max goodput under QoS vs request skew (100 instances-class deployment)",
		Header: []string{"skew", "hot-instance share", "max QPS under QoS", "normalized"},
	}
	build := func(hot float64) func() *sim.Deployment {
		return func() *sim.Deployment {
			reps := map[string]int{}
			app := graph.SocialNetwork()
			for _, svc := range app.Services() {
				reps[svc] = 4
			}
			d, _ := sim.NewDeployment(sim.New(), sim.Config{
				App: app, Replicas: reps, WorkerScale: 0.25, HotFraction: hot, Seed: 22,
			})
			return d
		}
	}
	dur := 1200 * time.Millisecond
	base := build(0)().RunOpenLoop(10, dur)
	target := time.Duration(3 * base.E2E.P99)
	var levels []float64
	for q := 50.0; q <= 4200; q *= 1.25 {
		levels = append(levels, q)
	}

	baseline := cluster.MaxGoodput(build(0), levels, dur, target)
	for _, skew := range []float64{0, 20, 40, 60, 80, 90, 99} {
		// Skew s% means (100-s)% of users issue 90% of traffic; with 4
		// instances, the hot instance's share of picks grows toward 1.
		hot := 0.25 + 0.75*(skew/100)
		g := cluster.MaxGoodput(build(hot), levels, dur, target)
		norm := 0.0
		if baseline > 0 {
			norm = g / baseline
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f%%", skew), f2(hot), qpsStr(g), f2(norm),
		})
	}
	r.Notes = append(r.Notes,
		"paper: goodput approaches zero once fewer than 20% of users issue the majority of requests (skew > 80%)")
	return r
}

// Fig22c degrades a fraction of servers (aggressive power management) in
// clusters of growing size and compares goodput for the microservice
// graph vs the monolith, whose instances fail independently.
func Fig22c() *Report {
	r := &Report{
		ID:     "fig22c",
		Title:  "Goodput vs slow servers: microservices vs monolith",
		Header: []string{"architecture", "cluster", "slow servers", "max QPS under QoS", "normalized"},
	}
	dur := 1200 * time.Millisecond
	var levels []float64
	for q := 50.0; q <= 24000; q *= 1.4 {
		levels = append(levels, q)
	}

	type arch struct {
		name string
		app  func() *graph.App
	}
	for _, a := range []arch{{"microservices", graph.SocialNetwork}, {"monolith", graph.SocialNetworkMonolith}} {
		for _, clusterSize := range []int{40, 100, 200} {
			app := a.app()
			services := app.Services()
			perSvc := clusterSize / len(services)
			if perSvc < 1 {
				perSvc = 1
			}
			build := func(slowPct float64) func() *sim.Deployment {
				return func() *sim.Deployment {
					reps := map[string]int{}
					for _, svc := range services {
						reps[svc] = perSvc
					}
					d, _ := sim.NewDeployment(sim.New(), sim.Config{App: app, Replicas: reps, WorkerScale: 0.25, Seed: 23})
					// Degrade slowPct of the cluster's servers (one instance
					// each): a random distinct sample across all tiers.
					rng := rand.New(rand.NewPCG(uint64(clusterSize), 23))
					total := perSvc * len(services)
					nSlow := int(float64(total)*slowPct/100 + 0.5)
					perm := rng.Perm(total)
					for i := 0; i < nSlow && i < total; i++ {
						svc := services[perm[i]/perSvc]
						d.SetSlow(svc, perm[i]%perSvc, 10) //nolint:errcheck
					}
					return d
				}
			}
			base := build(0)()
			base.RunOpenLoop(10, dur)
			// QoS: a request is "good" within 2.5x the healthy low-load
			// p95; goodput counts individually-good requests.
			target := 5 * base.E2E.PercentileDuration(95) / 2
			healthy := cluster.PerRequestGoodput(build(0), levels, dur, target)
			for _, slowPct := range []float64{0, 1, 2, 5} {
				g := cluster.PerRequestGoodput(build(slowPct), levels, dur, target)
				norm := 0.0
				if healthy > 0 {
					norm = g / healthy
				}
				r.Rows = append(r.Rows, []string{
					a.name, fmt.Sprintf("%d", clusterSize),
					fmt.Sprintf("%.0f%%", slowPct), qpsStr(g), f2(norm),
				})
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper: for clusters ≥100 instances, ≥1% slow servers drives microservice goodput to ~0 (some slow instance sits on every critical path); monolith goodput degrades gracefully")
	return r
}
