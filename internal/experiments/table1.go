package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsb/internal/core"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/media"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/services/swarm"
)

// Table1 reproduces the suite-composition table: for each end-to-end
// application, the number of unique microservices (counted by booting the
// live application in-process and reading its service registry), the
// communication protocols in use, and this repository's lines of code for
// the application (the analogue of the paper's per-service LoC columns).
func Table1() *Report {
	r := &Report{
		ID:     "table1",
		Title:  "Suite composition",
		Header: []string{"service", "protocol", "unique microservices", "repo LoC", "paper microservices"},
	}

	type appRow struct {
		name  string
		proto string
		dir   string
		paper string
		count func() (int, error)
	}
	rows := []appRow{
		{"Social Network", "REST+RPC", "socialnetwork", "36", func() (int, error) {
			app := core.NewApp("t1-social", core.Options{DisableTracing: true})
			defer app.Close()
			if _, err := socialnetwork.New(app, socialnetwork.Config{SearchShards: 3}); err != nil {
				return 0, err
			}
			return len(app.Registry.Services()), nil
		}},
		{"Media Service", "REST+RPC", "media", "38", func() (int, error) {
			app := core.NewApp("t1-media", core.Options{DisableTracing: true})
			defer app.Close()
			if _, err := media.New(app, media.Config{}); err != nil {
				return 0, err
			}
			return len(app.Registry.Services()), nil
		}},
		{"E-commerce", "REST+RPC", "ecommerce", "41", func() (int, error) {
			app := core.NewApp("t1-ecom", core.Options{DisableTracing: true})
			ec, err := ecommerce.New(app, ecommerce.Config{})
			if err != nil {
				return 0, err
			}
			defer func() { ec.Close(); app.Close() }()
			return len(app.Registry.Services()), nil
		}},
		{"Banking", "RPC", "banking", "34", func() (int, error) {
			app := core.NewApp("t1-bank", core.Options{DisableTracing: true})
			defer app.Close()
			if _, err := banking.New(app, banking.Config{}); err != nil {
				return 0, err
			}
			return len(app.Registry.Services()), nil
		}},
		{"Swarm (cloud+edge)", "REST+RPC", "swarm", "25/21", func() (int, error) {
			app := core.NewApp("t1-swarm", core.Options{DisableTracing: true})
			defer app.Close()
			if _, err := swarm.New(app, swarm.Config{Drones: 2}); err != nil {
				return 0, err
			}
			return len(app.Registry.Services()), nil
		}},
	}

	servicesRoot := findServicesRoot()
	totalSvcs, totalLoC := 0, 0
	for _, row := range rows {
		count, err := row.count()
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: boot failed: %v", row.name, err))
			continue
		}
		loc := countLoC(filepath.Join(servicesRoot, row.dir))
		totalSvcs += count
		totalLoC += loc
		r.Rows = append(r.Rows, []string{
			row.name, row.proto, fmt.Sprintf("%d", count), fmt.Sprintf("%d", loc), row.paper,
		})
	}
	r.Rows = append(r.Rows, []string{"TOTAL", "", fmt.Sprintf("%d", totalSvcs), fmt.Sprintf("%d", totalLoC), "~195"})
	r.Notes = append(r.Notes,
		"unique microservices counted from the live registry of each booted application",
		"LoC counts this repo's Go implementation (application packages only, excluding shared substrates)")
	return r
}

// findServicesRoot locates internal/services from the working directory,
// walking up to the module root if needed.
func findServicesRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for i := 0; i < 6; i++ {
		candidate := filepath.Join(dir, "internal", "services")
		if st, err := os.Stat(candidate); err == nil && st.IsDir() {
			return candidate
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "."
}

// countLoC counts non-blank lines across the package's .go files.
func countLoC(dir string) int {
	total := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		f.Close()
	}
	return total
}
