package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/kv"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// TailAtScale drives the sharded stateful tier through the paper's two
// tail-at-scale regimes on the live stack. First, request skew (Fig 22b):
// a Zipf-skewed key stream offered at the same open-loop rate against the
// same fixed-capacity store run as 1 shard and as 8 shards — one shard
// absorbs the whole offered load and queues, while consistent hashing
// spreads it so even the shard owning the hottest key stays far from
// saturation and the queueing tail collapses. Second, a slow server
// (Fig 22c): one replica of the shard that owns the hottest key is made
// slow via fault injection. Unprotected, read rotation sends a third of
// the hot shard's reads into the injected latency and closed-loop workers
// stall behind it; protected, the per-replica circuit breaker's slow-call
// detection ejects the replica and read-one routing falls over to its
// healthy siblings, whose combined capacity still covers the hot shard's
// demand — restoring the fault-free goodput.
func TailAtScale() *Report {
	r := &Report{
		ID:    "tailatscale",
		Title: "Zipf skew and a slow shard vs the sharded stateful tier (live stack)",
		Header: []string{"config", "shards×reps", "throughput (req/s)", "goodput (req/s)",
			"normalized", "p50", "p99", "breaker trips"},
	}

	skew1 := tailSkewRun(1)
	skew8 := tailSkewRun(8)
	faultFree := tailSlowRun(false, false)
	unprotected := tailSlowRun(true, false)
	protected := tailSlowRun(true, true)

	row := func(name, topo string, res tailResult, base tailResult) {
		norm := 0.0
		if base.goodput > 0 {
			norm = res.goodput / base.goodput
		}
		r.Rows = append(r.Rows, []string{
			name, topo,
			fmt.Sprintf("%.0f", res.throughput), fmt.Sprintf("%.0f", res.goodput),
			f2(norm), ms(res.p50), ms(res.p99),
			fmt.Sprintf("%d", res.breakerTrips),
		})
	}
	row("zipf skew, 1 shard", "1×1", skew1, skew1)
	row("zipf skew, 8 shards", "8×1", skew8, skew1)
	row("fault-free", "8×3", faultFree, faultFree)
	row("slow replica, unprotected", "8×3", unprotected, faultFree)
	row("slow replica, protected", "8×3", protected, faultFree)

	r.Notes = append(r.Notes,
		fmt.Sprintf("skew: zipf(s=%.1f) over %d keys offered open-loop at %.0f req/s to single-threaded %.0fms-service shards — 8-way sharding cuts p99 from %s to %s (%.2fx)",
			tailZipfS, tailKeys, tailOfferedQPS, float64(tailServiceTime)/1e6, ms(skew1.p99), ms(skew8.p99),
			float64(skew8.p99)/float64(skew1.p99)),
		fmt.Sprintf("slow shard: hot shard's first replica +%dms; unprotected goodput %.2fx of fault-free, protected %.2fx (breaker ejects the replica, reads fall over to its siblings)",
			tailSlowLatency/time.Millisecond,
			unprotected.goodput/faultFree.goodput, protected.goodput/faultFree.goodput),
		"protected routing composes the PR's layers: per-replica breakers (resilience), Addr-targeted faults (chaos), and read-one fallback (shard router)")
	return r
}

const (
	tailKeys        = 256
	tailZipfS       = 1.1
	tailServiceTime = time.Millisecond
	tailQoS         = 10 * time.Millisecond
	tailSlowLatency = 25 * time.Millisecond
	// tailOfferedQPS is the skew arm's open-loop rate: ~80% of one
	// fixed-capacity shard's ~1000 req/s, so a single shard runs deep into
	// queueing while eight shards leave even the hottest far below
	// saturation.
	tailOfferedQPS = 700.0
	// tailHotKey is the Zipf distribution's rank-0 key — the one whose
	// shard carries the most skewed load.
	tailHotKey = "key-0"
)

type tailResult struct {
	throughput   float64 // completed requests per second, measured phase
	goodput      float64 // of which finished inside the QoS target
	p50, p99     time.Duration
	breakerTrips int64
}

// bootTailKV starts the sharded store on app: shards×replicas kv instances
// under one service name, each single-threaded with a fixed service time —
// the fixed-capacity server the paper's queueing figures assume.
func bootTailKV(app *core.App, shards, replicas int) error {
	return svcutil.StartShardReplicas(app, "tail.kv", shards, replicas, func(int, int) func(*rpc.Server) {
		cache := kv.New(16 << 20)
		return func(srv *rpc.Server) {
			kv.RegisterService(srv, cache)
			srv.Use(func(ctx *rpc.Ctx, payload []byte, next rpc.Handler) ([]byte, error) {
				time.Sleep(tailServiceTime)
				return next(ctx, payload)
			})
			srv.SetConcurrency(1)
		}
	})
}

// tailPreload writes the whole key space so every read hits. It runs
// before any fault is injected, so setup cost never pollutes the
// measurement.
func tailPreload(store svcutil.KV) {
	ctx := context.Background()
	for i := 0; i < tailKeys; i++ {
		store.Set(ctx, fmt.Sprintf("key-%d", i), []byte("v"), 0) //nolint:errcheck // preload; read path verifies
	}
}

// tailGet issues one measured read with a generous per-call deadline (so
// slow calls complete and are *measured* slow rather than erroring into
// the fallback path), classifying goodness by the QoS latency target.
func tailGet(store svcutil.KV, key string) (took time.Duration, good bool) {
	callCtx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	t0 := time.Now()
	_, found, err := store.Get(callCtx, key)
	cancel()
	took = time.Since(t0)
	return took, err == nil && found && took <= tailQoS
}

// tailDriveOpen offers Zipf-skewed reads open-loop at qps with Poisson
// arrivals: the generator never waits for responses, so a queueing server
// cannot throttle its own offered load — both skew arms see the identical
// arrival process, which is what "equal offered load" means.
func tailDriveOpen(store svcutil.KV, qps float64, warmup, measure time.Duration) tailResult {
	tailPreload(store)
	zipf := loadgen.NewZipf(tailKeys, tailZipfS, 7)
	rng := rand.New(rand.NewPCG(13, 0x5EED))

	var done, good atomic.Int64
	lat := metrics.NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	// Arrivals follow an absolute Poisson schedule: each request fires at
	// its scheduled offset from start, not a sleep after the previous one —
	// sleep overshoot turns into a small burst instead of silently lowering
	// the offered rate.
	var sched time.Duration
	for {
		sched += time.Duration(rng.ExpFloat64() * float64(time.Second) / qps)
		if sched >= warmup+measure {
			break
		}
		if d := sched - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(measured bool) {
			defer wg.Done()
			took, ok := tailGet(store, fmt.Sprintf("key-%d", zipf.Draw()))
			if measured {
				lat.RecordDuration(took)
				done.Add(1)
				if ok {
					good.Add(1)
				}
			}
		}(sched > warmup)
	}
	wg.Wait()
	return tailResult{
		throughput: float64(done.Load()) / measure.Seconds(),
		goodput:    float64(good.Load()) / measure.Seconds(),
		p50:        lat.PercentileDuration(50),
		p99:        lat.PercentileDuration(99),
	}
}

// tailDriveClosed drives Zipf-skewed reads closed-loop: each worker issues
// its next request only when the last returns, so a slow replica stalls
// the workers stuck behind it — the goodput-collapse mechanism of the
// paper's slow-server figure.
func tailDriveClosed(store svcutil.KV, workers int, warmup, measure time.Duration) tailResult {
	tailPreload(store)
	zipf := loadgen.NewZipf(tailKeys, tailZipfS, 7)

	var done, good atomic.Int64
	lat := metrics.NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if time.Since(start) >= warmup+measure {
					return
				}
				took, ok := tailGet(store, fmt.Sprintf("key-%d", zipf.Draw()))
				if time.Since(start) > warmup {
					lat.RecordDuration(took)
					done.Add(1)
					if ok {
						good.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	return tailResult{
		throughput: float64(done.Load()) / measure.Seconds(),
		goodput:    float64(good.Load()) / measure.Seconds(),
		p50:        lat.PercentileDuration(50),
		p99:        lat.PercentileDuration(99),
	}
}

// tailSkewRun measures the skew arm: the same Zipf stream offered at the
// same open-loop rate against shards fixed-capacity servers. With one
// shard every request queues behind the whole offered load; with eight,
// the hash ring spreads it and the tail collapses.
func tailSkewRun(shards int) tailResult {
	app := core.NewApp("tail", core.Options{DisableTracing: true})
	defer app.Close()
	if err := bootTailKV(app, shards, 1); err != nil {
		return tailResult{}
	}
	router, err := app.ShardedRPC("tail.client", "tail.kv")
	if err != nil {
		return tailResult{}
	}
	return tailDriveOpen(svcutil.KV{Shards: router}, tailOfferedQPS, 300*time.Millisecond, 1500*time.Millisecond)
}

// tailSlowRun measures the slow-shard arm on an 8×3 topology. With slow
// set, one replica of the shard owning the hottest key gets an
// Addr-targeted latency fault far above the QoS target — the worst-placed
// slow server, since skew concentrates reads on exactly that shard. Three
// replicas per shard give the protected arm somewhere to recover to:
// after the breaker ejects the slow replica, the two survivors still have
// the capacity the hot shard's skewed demand needs.
// Protected runs add the per-replica circuit breaker (slow-call
// detection), which the shard router composes *outside* the fault
// middleware, so injected slowness is timed and attributed to the faulty
// replica exactly like real server slowness would be.
func tailSlowRun(slow, protected bool) tailResult {
	inj := fault.NewInjector(11)
	opts := core.Options{DisableTracing: true, Network: inj.Wrap(rpc.NewMem())}
	if protected {
		opts.Resilience = &transport.ResilienceConfig{
			Breaker: &transport.BreakerConfig{
				Failures: 4,
				// Longer than the measurement window: once ejected, the slow
				// replica stays out for the whole run.
				Cooldown: 5 * time.Second,
				// Between the healthy service time (~1ms, plus queueing) and
				// the injected 25ms: real work never trips it, the fault
				// always does.
				SlowThreshold:   6 * time.Millisecond,
				NeutralDeadline: true,
				// Only the slow replica may be ejected: hot-shard queueing on
				// healthy replicas cannot cascade into ejecting the tier.
				MaxEjected: 1,
			},
		}
	}
	app := core.NewApp("tail", opts)
	defer app.Close()
	if err := bootTailKV(app, 8, 3); err != nil {
		return tailResult{}
	}
	router, err := app.ShardedRPC("tail.client", "tail.kv")
	if err != nil {
		return tailResult{}
	}
	store := svcutil.KV{Shards: router}
	tailPreload(store)
	if slow {
		// Slow the first replica of the shard that owns the hottest key —
		// by address, so its siblings and the other shards stay healthy.
		// Stats is sorted by (shard, addr), giving a rotation-independent
		// pick. The fault lands after preload, so only reads pay it.
		hot := router.Owner(tailHotKey)
		for _, st := range router.Stats() {
			if st.Shard == hot {
				defer inj.Add(fault.Rule{To: "tail.kv", Addr: st.Addr, Latency: tailSlowLatency})()
				break
			}
		}
	}
	// Few enough workers that even a fully saturated lone survivor bounds
	// the closed-loop queue under the QoS target: the protected arm's cost
	// is throughput, not violations.
	res := tailDriveClosed(store, 6, 300*time.Millisecond, 700*time.Millisecond)
	if app.Transport != nil {
		res.breakerTrips = app.Transport.BreakerOpened.Value()
	}
	return res
}
