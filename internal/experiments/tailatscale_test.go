package experiments

import (
	"fmt"
	"testing"
)

// tailShapeViolations runs every tail-at-scale arm once and returns the
// list of directional claims that did not hold. An empty list is a clean
// pass.
func tailShapeViolations() []string {
	var v []string

	skew1 := tailSkewRun(1)
	skew8 := tailSkewRun(8)
	switch {
	case skew1.p99 <= 0 || skew8.p99 <= 0:
		v = append(v, fmt.Sprintf("skew arms produced no latency samples: 1-shard p99=%v, 8-shard p99=%v", skew1.p99, skew8.p99))
	case 2*skew8.p99 > skew1.p99:
		v = append(v, fmt.Sprintf("8-shard p99 %v > 0.5x single-shard p99 %v: sharding did not collapse the queueing tail",
			skew8.p99, skew1.p99))
	}
	// Open loop means the arms really saw equal offered load: completed
	// throughput must match within 5% (both run far below aggregate
	// capacity, so neither drops requests).
	if skew1.throughput < 0.95*skew8.throughput || skew8.throughput < 0.95*skew1.throughput {
		v = append(v, fmt.Sprintf("skew arms completed unequal load: %.0f vs %.0f req/s", skew1.throughput, skew8.throughput))
	}

	faultFree := tailSlowRun(false, false)
	if faultFree.goodput <= 0 {
		return append(v, "fault-free arm produced no goodput")
	}
	unprotected := tailSlowRun(true, false)
	protected := tailSlowRun(true, true)
	if protected.goodput < 0.8*faultFree.goodput {
		v = append(v, fmt.Sprintf("protected goodput %.0f < 0.8x fault-free %.0f: ejection + fallback did not restore the tier",
			protected.goodput, faultFree.goodput))
	}
	if unprotected.goodput >= 0.8*faultFree.goodput {
		v = append(v, fmt.Sprintf("unprotected goodput %.0f >= 0.8x fault-free %.0f: the slow replica should have dragged it down",
			unprotected.goodput, faultFree.goodput))
	}
	// The protection mechanism must actually be the breaker, not luck:
	// exactly the slow replica trips (MaxEjected caps it at one), and the
	// unprotected arm has no breaker to trip.
	if protected.breakerTrips != 1 {
		v = append(v, fmt.Sprintf("protected arm tripped %d breakers, want exactly 1 (the slow replica)", protected.breakerTrips))
	}
	if unprotected.breakerTrips != 0 {
		v = append(v, fmt.Sprintf("unprotected arm tripped %d breakers, want 0 (no resilience configured)", unprotected.breakerTrips))
	}
	return v
}

// TestTailAtScaleShape asserts the directional claims of the tail-at-scale
// experiment on the live sharded tier. Skew arm: at equal offered load,
// 8-way sharding must at least halve the single-shard p99 (measured margin
// is ~4x — the bar is the acceptance floor, not the typical result). Slow
// arm: with one replica of the hot shard made slow, protected routing
// (breaker ejection + read fallback) must restore at least 0.8 of the
// fault-free goodput while the unprotected arm must not — the contrast is
// the point, so both directions are pinned.
//
// Every arm is a wall-clock queueing measurement; on a loaded machine (the
// full suite time-slicing one core) a run can be starved into noise, so
// the shape gets three attempts and passes on the first clean one. A real
// regression fails all three deterministically.
func TestTailAtScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live tail-at-scale runs skipped in -short mode")
	}
	const attempts = 3
	var last []string
	for i := 1; i <= attempts; i++ {
		last = tailShapeViolations()
		if len(last) == 0 {
			return
		}
		t.Logf("attempt %d/%d violated the shape: %v", i, attempts, last)
	}
	for _, violation := range last {
		t.Error(violation)
	}
}
