package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dsb/internal/codec"
	"dsb/internal/metrics"
	"dsb/internal/rpc"
	"dsb/internal/services/socialnetwork"
)

// Knobs for the wirespeed experiment: a paced open(ish) loop at just over
// 10k req/s — the load level at which the paper's Figure 16 frames RPC
// processing as a fraction of total cycles — split across a few phased
// workers so pacing survives time.Sleep granularity.
const (
	wirespeedRate     = 10500 // target req/s across all workers
	wirespeedWorkers  = 4
	wirespeedRequests = 6000 // per arm
	wirespeedCalIters = 5000
	wirespeedCalRuns  = 5
)

// wirespeedPost is the benchmark payload: a realistic composed post, the
// hot message type on the Social Network's compose/read path.
func wirespeedPost() socialnetwork.Post {
	return socialnetwork.Post{
		ID:     "post-0123456789abcdef",
		Author: "wirespeed-author",
		Text: "A medium-length post body with enough text to make the string " +
			"copies visible in the codec cost, plus a shortened URL http://s.ly/x1y2z3 " +
			"and a couple of mentions so every field class is populated.",
		Mentions:  []string{"alice", "bob"},
		URLs:      []string{"http://s.ly/x1y2z3"},
		MediaIDs:  []string{"media-42"},
		CreatedAt: 1700000000000000000,
	}
}

// wirespeedServer exposes one echo method per arm; each handler performs
// the arm's decode+encode so a round trip pays the codec at both ends.
func wirespeedServer(n rpc.Network) (*rpc.Server, string, error) {
	s := rpc.NewServer("wirespeed")
	s.Handle("EchoFast", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var p socialnetwork.Post
		if err := codec.Unmarshal(payload, &p); err != nil {
			return nil, err
		}
		return ctx.PooledReply(&p)
	})
	s.Handle("EchoReflect", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var p socialnetwork.Post
		if err := codec.UnmarshalReflect(payload, &p); err != nil {
			return nil, err
		}
		return codec.MarshalReflect(p)
	})
	addr, err := s.Start(n, "wirespeed:0")
	return s, addr, err
}

type wirespeedArmResult struct {
	p50, p99   time.Duration
	meanWall   time.Duration
	codecPerOp time.Duration // marshal+unmarshal of the payload, one end; 0 if unmeasured
}

// codecShare is the fraction of a request's wall time spent in the codec:
// each round trip pays one marshal+unmarshal at the client and one at the
// server.
func (a wirespeedArmResult) codecShare() float64 {
	if a.meanWall <= 0 {
		return 0
	}
	return float64(2*a.codecPerOp) / float64(a.meanWall)
}

// calibrateCodec times one marshal+unmarshal pair in a tight loop. Timing
// inside each request would add two clock reads per touch — comparable to
// the generated marshaler's entire cost on the VM clocks these experiments
// run on — so the per-op cost is measured out of band and scaled. The
// minimum over several rounds is the estimate: a GC cycle collecting the
// paced run's garbage or a scheduler preemption landing inside one round
// inflates that round only, and the best round is the undisturbed cost.
func calibrateCodec(op func()) time.Duration {
	op() // warm caches and grow scratch buffers outside the timed region
	// Collect the paced arm's garbage now, not during a timed round.
	runtime.GC()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < wirespeedCalRuns; r++ {
		t0 := time.Now()
		for i := 0; i < wirespeedCalIters; i++ {
			op()
		}
		if d := time.Since(t0) / wirespeedCalIters; d < best {
			best = d
		}
	}
	return best
}

// wirespeedCalibrate measures the per-op marshal+unmarshal cost of the
// reflect and generated codec paths on the benchmark payload.
func wirespeedCalibrate() (reflectPerOp, fastPerOp time.Duration) {
	post := wirespeedPost()
	reflectPerOp = calibrateCodec(func() {
		payload, _ := codec.MarshalReflect(post) //nolint:errcheck
		var out socialnetwork.Post
		codec.UnmarshalReflect(payload, &out) //nolint:errcheck
	})
	var calBuf []byte
	fastPerOp = calibrateCodec(func() {
		calBuf, _ = codec.AppendMarshal(calBuf[:0], post) //nolint:errcheck
		var out socialnetwork.Post
		codec.Unmarshal(calBuf, &out) //nolint:errcheck
	})
	return reflectPerOp, fastPerOp
}

// runWirespeedArm drives one arm at the paced rate: workers fire requests
// on a fixed schedule (falling behind queues, it never skips), recording
// wall latency per request.
func runWirespeedArm(doCall func() error) (wirespeedArmResult, error) {
	perWorker := wirespeedRequests / wirespeedWorkers
	interval := time.Second * time.Duration(wirespeedWorkers) / time.Duration(wirespeedRate)

	lats := make([][]int64, wirespeedWorkers)
	errs := make([]error, wirespeedWorkers)
	var wg sync.WaitGroup
	for w := 0; w < wirespeedWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Phase-offset the workers so the aggregate arrival stream is
			// even rather than synchronized bursts.
			next := time.Now().Add(interval * time.Duration(w) / time.Duration(wirespeedWorkers))
			for i := 0; i < perWorker; i++ {
				time.Sleep(time.Until(next))
				next = next.Add(interval)
				t0 := time.Now()
				if err := doCall(); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	var all []int64
	var wallNS int64
	for w := range lats {
		if errs[w] != nil {
			return wirespeedArmResult{}, errs[w]
		}
		for _, l := range lats[w] {
			wallNS += l
		}
		all = append(all, lats[w]...)
	}
	qs := metrics.Quantiles(all, 50, 99)
	res := wirespeedArmResult{p50: time.Duration(qs[0]), p99: time.Duration(qs[1])}
	if len(all) > 0 {
		res.meanWall = time.Duration(wallNS / int64(len(all)))
	}
	return res, nil
}

// wirespeedArms runs the three arms against one server and returns
// (reflect, fast, pooled). The reflect and generated arms are symmetric —
// CallRaw with an explicit marshal/unmarshal at the client and a matching
// handler at the server — so the only variable is which codec path runs;
// their per-op codec cost comes from calibrateCodec. The pooled arm is the
// production fast path (typed Call, request encoded at the wire into the
// connection's write segment, pooled buffers end to end); its codec work
// happens inside the transport, so it reports wall latency only.
func wirespeedArms() (reflectRes, fastRes, pooledRes wirespeedArmResult, err error) {
	var fail wirespeedArmResult
	n := rpc.NewMem()
	srv, addr, err := wirespeedServer(n)
	if err != nil {
		return fail, fail, fail, err
	}
	defer srv.Close()
	c := rpc.NewClient(n, "wirespeed", addr)
	defer c.Close()
	ctx := context.Background()
	post := wirespeedPost()

	reflectRes, err = runWirespeedArm(func() error {
		payload, err := codec.MarshalReflect(post)
		if err != nil {
			return err
		}
		reply, err := c.CallRaw(ctx, "EchoReflect", payload)
		if err != nil {
			return err
		}
		var out socialnetwork.Post
		return codec.UnmarshalReflect(reply, &out)
	})
	if err != nil {
		return fail, fail, fail, err
	}
	reflectRes.codecPerOp, _ = wirespeedCalibrate()

	var scratch []byte
	fastRes, err = runWirespeedArm(func() error {
		buf, err := codec.AppendMarshal(scratch[:0], post)
		if err != nil {
			return err
		}
		scratch = buf
		reply, err := c.CallRaw(ctx, "EchoFast", buf)
		if err != nil {
			return err
		}
		var out socialnetwork.Post
		return codec.Unmarshal(reply, &out)
	})
	if err != nil {
		return fail, fail, fail, err
	}
	_, fastRes.codecPerOp = wirespeedCalibrate()

	pooledRes, err = runWirespeedArm(func() error {
		var out socialnetwork.Post
		return c.Call(ctx, "EchoFast", &post, &out)
	})
	if err != nil {
		return fail, fail, fail, err
	}
	return reflectRes, fastRes, pooledRes, nil
}

// Wirespeed measures serialization cost the way the paper's Figure 16
// frames RPC acceleration: what fraction of a request's cycles go to
// marshaling, and what a faster codec path does to latency at 10k+ req/s.
// The reflect arm is the pre-codegen state (reflect plans both ways); the
// generated arm swaps in the registered fast-path marshalers on identical
// bytes; the pooled arm is the full production path with the request
// encoded straight into the connection's write segment.
func Wirespeed() *Report {
	r := &Report{
		ID:     "wirespeed",
		Title:  "Serialization share and echo latency: reflect vs generated codec (live, in-memory transport)",
		Header: []string{"arm", "p50", "p99", "codec/op", "codec share"},
	}
	reflectRes, fastRes, pooledRes, err := wirespeedArms()
	if err != nil {
		r.Notes = append(r.Notes, "wirespeed: "+err.Error())
		return r
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.1fus", float64(d)/1e3) }
	row := func(label string, a wirespeedArmResult, perOp, share string) []string {
		return []string{label, us(a.p50), us(a.p99), perOp, share}
	}
	r.Rows = append(r.Rows,
		row("reflect", reflectRes, us(reflectRes.codecPerOp), pct(reflectRes.codecShare())),
		row("generated", fastRes, us(fastRes.codecPerOp), pct(fastRes.codecShare())),
		row("generated+pooled (typed Call)", pooledRes, "-", "-"),
	)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"load: %d req/s paced across %d workers, %d requests per arm, Post payload; share = 2 x codec/op / mean wall (client + server each pay one marshal+unmarshal)",
		wirespeedRate, wirespeedWorkers, wirespeedRequests))
	if fastRes.codecPerOp > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"generated marshalers cut per-request serialization %.1fx (%s -> %s per marshal+unmarshal) and its share of wall time %s -> %s",
			float64(reflectRes.codecPerOp)/float64(fastRes.codecPerOp),
			us(reflectRes.codecPerOp), us(fastRes.codecPerOp),
			pct(reflectRes.codecShare()), pct(fastRes.codecShare())))
	}
	if pooledRes.p50 > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"p50 echo %s (reflect) -> %s (typed fast path)", us(reflectRes.p50), us(pooledRes.p50)))
	}
	return r
}
