package experiments

import "testing"

// TestWirespeedShape asserts the directional claims of the wirespeed
// experiment: swapping the reflect plans for the generated marshalers must
// visibly shrink serialization's share of request wall time at the same
// paced load, and every arm must produce sane latency quantiles.
func TestWirespeedShape(t *testing.T) {
	reflectRes, fastRes, pooledRes, err := wirespeedArms()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []struct {
		name string
		res  wirespeedArmResult
	}{{"reflect", reflectRes}, {"generated", fastRes}, {"pooled", pooledRes}} {
		if a.res.p50 <= 0 || a.res.p99 < a.res.p50 {
			t.Fatalf("%s arm quantiles p50=%v p99=%v: not sane", a.name, a.res.p50, a.res.p99)
		}
	}
	if reflectRes.codecShare() <= 0 || fastRes.codecShare() <= 0 {
		t.Fatalf("codec shares not measured: reflect=%v fast=%v",
			reflectRes.codecShare(), fastRes.codecShare())
	}
	// The generated marshalers avoid the per-field reflect walk entirely;
	// the calibrated per-op cost (and hence the share at equal wall time)
	// must show it. 1.5x is well below the undisturbed gap on this payload
	// (~2x), but a vCPU steal burst can still flatten one calibration, so
	// re-measure a few times and require the gap to show at least once.
	shown := false
	for i := 0; i < 5 && !shown; i++ {
		r, f := wirespeedCalibrate()
		shown = r >= f*3/2
	}
	if !shown {
		t.Fatalf("codec per-op: reflect=%v generated=%v (and 5 re-measures), never reached reflect >= 1.5x generated",
			reflectRes.codecPerOp, fastRes.codecPerOp)
	}
}
