// Package fault is a deterministic, seedable fault-injection layer for the
// live stack, in the spirit of Gremlin (Heorhiadi et al., ICDCS'16) and the
// lineage-driven fault injection of Molly: failures are injected at the
// transport boundary, scripted by a scenario schedule, and reproducible —
// the same seed and the same scenario construction order yield the same
// fault timeline, so chaos runs can carry directional assertions in tests.
//
// Faults act at two levels. Client-side, an Injector provides a
// transport.Middleware that adds latency, jitter, injected error codes, and
// blackholes to matching calls. Network-side, an Injector wraps an
// rpc.Network so connections between named services can be reset at dial
// time, stalled byte-by-byte, or asymmetrically partitioned (A→B drops
// while B→A flows). Whole-instance crash/restart composes from scenario
// Action steps driving core.Instance handles — the fault layer itself never
// imports core.
package fault

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"

	"dsb/internal/transport"
)

// Rule describes one standing fault between a caller and callee service.
// Empty From/To are wildcards; matching against an unknown side (the server
// end of an accepted connection does not know its peer's name) only
// succeeds for wildcard fields.
type Rule struct {
	// From and To name the caller and callee services ("" = any).
	From, To string

	// Addr narrows call-level faults (Latency, ErrCode, Blackhole) to calls
	// pinned to one replica address — how a single shard replica of a
	// sharded tier is made slow while its siblings stay healthy. Only the
	// shard router stamps transport.Call.Addr, so Addr rules never match
	// load-balanced calls; connection-level faults (Partition, Reset,
	// Stall) ignore Addr. Empty matches any call.
	Addr string

	// Latency delays matching calls; Jitter adds a uniformly distributed
	// extra in [0, Jitter), drawn from the injector's seeded RNG.
	Latency, Jitter time.Duration

	// ErrCode, when nonzero, fails matching calls with this transport code
	// at probability ErrRate (ErrRate 0 means always).
	ErrCode int
	ErrRate float64

	// Blackhole swallows matching calls at the middleware: the call blocks
	// until its context deadline and fails with CodeDeadline, the signature
	// of a peer that silently stopped answering.
	Blackhole bool

	// Partition drops matching traffic at the connection level: writes in
	// the From→To direction pretend success and discard their bytes (the
	// dropped-packet model), reads of From→To traffic on the receiving side
	// stall while the rule is active. One rule is one direction; partition
	// both ways with two rules.
	Partition bool

	// Reset kills new From→To connections at dial time: the dial succeeds
	// and the connection is immediately closed, so first use fails with an
	// EOF/closed-pipe error — a crashed peer whose listener backlog still
	// accepted the handshake.
	Reset bool

	// Stall delays every Read/Write on matching connections — a saturated
	// or lossy link rather than a dead one.
	Stall time.Duration
}

func (r *Rule) matches(from, to string) bool {
	return (r.From == "" || r.From == from) && (r.To == "" || r.To == to)
}

// Injector is the switchboard of active fault rules, shared by the
// middleware and network wrappers. All rule draws (jitter, error
// probability) come from one seeded RNG, so a fixed seed plus a
// deterministic call sequence reproduces the same faults.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[*Rule]struct{}
}

// NewInjector creates an injector whose random draws derive from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15)),
		rules: make(map[*Rule]struct{}),
	}
}

// Add arms a rule and returns its remover. Removing twice is a no-op.
func (inj *Injector) Add(r Rule) func() {
	rp := &r
	inj.mu.Lock()
	inj.rules[rp] = struct{}{}
	inj.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			inj.mu.Lock()
			delete(inj.rules, rp)
			inj.mu.Unlock()
		})
	}
}

// Active returns the number of armed rules.
func (inj *Injector) Active() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.rules)
}

// snapshot copies the rules matching (from, to) under the lock.
func (inj *Injector) snapshot(from, to string) []Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []Rule
	for r := range inj.rules {
		if r.matches(from, to) {
			out = append(out, *r)
		}
	}
	return out
}

// jitter draws a uniform duration in [0, d) from the seeded RNG.
func (inj *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return time.Duration(inj.rng.Int64N(int64(d)))
}

// hit draws an event with probability p (p <= 0 means certain).
func (inj *Injector) hit(p float64) bool {
	if p <= 0 {
		return true
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rng.Float64() < p
}

// partitioned reports whether a partition rule covers the direction.
func (inj *Injector) partitioned(from, to string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for r := range inj.rules {
		if r.Partition && r.matches(from, to) {
			return true
		}
	}
	return false
}

// resetActive reports whether new from→to connections should be reset.
func (inj *Injector) resetActive(from, to string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for r := range inj.rules {
		if r.Reset && r.matches(from, to) {
			return true
		}
	}
	return false
}

// stallFor sums the byte-level stalls covering the direction.
func (inj *Injector) stallFor(from, to string) time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var d time.Duration
	for r := range inj.rules {
		if r.Stall > 0 && r.matches(from, to) {
			d += r.Stall
		}
	}
	return d
}

// Middleware returns the client-side fault middleware for calls issued by
// the named service. It applies, per matching rule: blackhole/partition
// (block until the context deadline), injected latency plus jitter, then
// probabilistic coded errors. core.App installs it automatically for every
// wired client when the app's network is a fault.Network.
func (inj *Injector) Middleware(from string) transport.Middleware {
	return func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			for _, r := range inj.snapshot(from, call.Target) {
				if r.Addr != "" && r.Addr != call.Addr {
					continue
				}
				if r.Blackhole || r.Partition {
					// A silent peer: nothing comes back, ever. Burn the
					// caller's deadline the way a real blackhole would.
					<-ctx.Done()
					return transport.WrapCode(transport.CodeDeadline, ctx.Err(),
						"fault: blackhole %s→%s: %v", from, call.Target, ctx.Err())
				}
				if d := r.Latency + inj.jitter(r.Jitter); d > 0 {
					t := time.NewTimer(d)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return transport.WrapCode(transport.CodeDeadline, ctx.Err(),
							"fault: injected latency %s→%s: %v", from, call.Target, ctx.Err())
					}
				}
				if r.ErrCode != 0 && inj.hit(r.ErrRate) {
					return transport.Errorf(r.ErrCode, "fault: injected error %s→%s", from, call.Target)
				}
			}
			return next(ctx, call)
		}
	}
}
