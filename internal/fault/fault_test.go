package fault

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/transport"
)

func startEcho(t *testing.T, n rpc.Network, addr string) *rpc.Server {
	t.Helper()
	s := rpc.NewServer(ServiceOf(addr))
	s.Handle("Echo", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if _, err := s.Start(n, addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestMiddlewareInjectsErrorsAndLatency(t *testing.T) {
	inj := NewInjector(7)
	terminal := func(ctx context.Context, call *transport.Call) error {
		call.Reply = []byte("ok")
		return nil
	}
	inv := transport.Build(terminal, inj.Middleware("a"))

	// No rules: pass-through.
	call := transport.NewCall("b", "M", nil)
	if err := inv(context.Background(), call); err != nil || string(call.Reply) != "ok" {
		t.Fatalf("clean call: %q, %v", call.Reply, err)
	}

	// Deterministic error injection for the matching pair only.
	remove := inj.Add(Rule{From: "a", To: "b", ErrCode: transport.CodeUnavailable})
	if err := inv(context.Background(), transport.NewCall("b", "M", nil)); !transport.IsCode(err, transport.CodeUnavailable) {
		t.Fatalf("err = %v, want CodeUnavailable", err)
	}
	if err := inv(context.Background(), transport.NewCall("c", "M", nil)); err != nil {
		t.Fatalf("non-matching target hit the fault: %v", err)
	}
	remove()

	// Injected latency is observable and removable.
	remove = inj.Add(Rule{To: "b", Latency: 30 * time.Millisecond})
	startAt := time.Now()
	if err := inv(context.Background(), transport.NewCall("b", "M", nil)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startAt); d < 25*time.Millisecond {
		t.Fatalf("latency rule added only %v", d)
	}
	remove()
}

func TestMiddlewareBlackholeBurnsDeadline(t *testing.T) {
	inj := NewInjector(7)
	inv := transport.Build(func(ctx context.Context, call *transport.Call) error {
		return nil
	}, inj.Middleware("a"))
	defer inj.Add(Rule{From: "a", To: "b", Blackhole: true})()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	startAt := time.Now()
	err := inv(ctx, transport.NewCall("b", "M", nil))
	if !transport.IsCode(err, transport.CodeDeadline) {
		t.Fatalf("err = %v, want CodeDeadline", err)
	}
	if d := time.Since(startAt); d < 25*time.Millisecond {
		t.Fatalf("blackhole returned after only %v, want full deadline", d)
	}
}

func TestResetKillsNewConns(t *testing.T) {
	inj := NewInjector(7)
	net := inj.Wrap(rpc.NewMem())
	startEcho(t, net, "b:1")

	disarm := inj.Add(Rule{From: "a", To: "b", Reset: true})
	c, err := net.Bind("a").Dial("b:1")
	if err != nil {
		t.Fatalf("dial during reset rule: %v (reset must accept, then kill)", err)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on reset conn succeeded")
	}
	disarm()

	// Unmatched dialer identity and post-disarm dials get live conns.
	cl := rpc.NewClient(net.Bind("a"), "b", "b:1")
	defer cl.Close()
	out, err := cl.CallRaw(context.Background(), "Echo", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("after disarm: %q, %v", out, err)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	inj := NewInjector(7)
	net := inj.Wrap(rpc.NewMem())
	startEcho(t, net, "b:1")

	ca := rpc.NewClient(net.Bind("a"), "b", "b:1", rpc.WithPoolSize(1))
	defer ca.Close()
	cc := rpc.NewClient(net.Bind("c"), "b", "b:1", rpc.WithPoolSize(1))
	defer cc.Close()

	// Warm both conns so the partition hits established connections.
	for _, c := range []*rpc.Client{ca, cc} {
		if _, err := c.CallRaw(context.Background(), "Echo", []byte("w")); err != nil {
			t.Fatal(err)
		}
	}

	disarm := inj.Add(Rule{From: "a", To: "b", Partition: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ca.CallRaw(ctx, "Echo", []byte("x")); !rpc.IsCode(err, rpc.CodeDeadline) {
		t.Fatalf("partitioned caller err = %v, want CodeDeadline", err)
	}
	// The partition is asymmetric: c→b is untouched.
	if _, err := cc.CallRaw(context.Background(), "Echo", []byte("y")); err != nil {
		t.Fatalf("unpartitioned caller failed: %v", err)
	}
	disarm()

	// Healed: the same pooled conn works again (dropped frames stay dropped).
	out, err := ca.CallRaw(context.Background(), "Echo", []byte("z"))
	if err != nil || string(out) != "z" {
		t.Fatalf("after heal: %q, %v", out, err)
	}
}

func TestStallDelaysBytes(t *testing.T) {
	inj := NewInjector(7)
	net := inj.Wrap(rpc.NewMem())
	startEcho(t, net, "b:1")
	cl := rpc.NewClient(net.Bind("a"), "b", "b:1", rpc.WithPoolSize(1))
	defer cl.Close()
	if _, err := cl.CallRaw(context.Background(), "Echo", []byte("w")); err != nil {
		t.Fatal(err)
	}

	defer inj.Add(Rule{From: "a", To: "b", Stall: 25 * time.Millisecond})()
	startAt := time.Now()
	if _, err := cl.CallRaw(context.Background(), "Echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startAt); d < 20*time.Millisecond {
		t.Fatalf("stalled call took only %v", d)
	}
}

// Two scenarios built in the same order over same-seed injectors must
// resolve to byte-identical timelines — the reproducibility contract chaos
// assertions rely on.
func TestScenarioDeterministicSchedule(t *testing.T) {
	build := func(seed int64) string {
		inj := NewInjector(seed)
		s := NewScenario(inj)
		s.At(100*time.Millisecond, Blackhole("a", "b"))
		s.Between(200*time.Millisecond, 400*time.Millisecond, Reset("", "b"))
		s.During(50*time.Millisecond, 300*time.Millisecond, Stall("a", "", 5*time.Millisecond))
		s.Between(0, time.Second, Latency("a", "b", time.Millisecond, time.Millisecond))
		s.Between(0, time.Second, Action("crash(b:1)", func() {}))
		return s.String()
	}
	one, two := build(42), build(42)
	if one != two {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", one, two)
	}
	if other := build(43); other == one {
		t.Fatalf("different seeds collided on schedule:\n%s", one)
	}
}

func TestScenarioPlayArmsAndDisarms(t *testing.T) {
	inj := NewInjector(1)
	s := NewScenario(inj)
	var fired atomic.Bool
	s.During(5*time.Millisecond, 60*time.Millisecond, Partition("a", "b"))
	s.At(20*time.Millisecond, Action("mark", func() { fired.Store(true) }))

	done := s.Play(context.Background())
	deadline := time.Now().Add(2 * time.Second)
	for inj.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inj.Active() != 1 {
		t.Fatal("During never armed its rule")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Play never finished")
	}
	if inj.Active() != 0 {
		t.Fatalf("rules left armed after play: %d", inj.Active())
	}
	if !fired.Load() {
		t.Fatal("Action step never ran")
	}
}

func TestScenarioPlayCancelDisarms(t *testing.T) {
	inj := NewInjector(1)
	s := NewScenario(inj)
	s.During(time.Millisecond, time.Hour, Blackhole("a", ""))
	ctx, cancel := context.WithCancel(context.Background())
	done := s.Play(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for inj.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inj.Active() != 1 {
		t.Fatal("rule never armed")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Play never exited after cancel")
	}
	if inj.Active() != 0 {
		t.Fatalf("canceled play left %d rules armed", inj.Active())
	}
}
