package fault

import (
	"net"
	"strings"
	"sync"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// ServiceOf derives the service name from an instance address. The
// in-memory transport names instances "service:N", so stripping the final
// ":N" recovers the service; for TCP addresses this yields the host, which
// only wildcard rules will match — network-level faults are a feature of
// the in-process topology the experiments run on.
func ServiceOf(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Network wraps an rpc.Network with connection-level fault injection. An
// unbound Network (as handed to core.NewApp) dials with an unknown local
// identity; Bind stamps the dialing service's name so directional rules
// (resets, stalls, asymmetric partitions) can tell A→B from B→A. Listeners
// are wrapped too: accepted connections carry the listening service as
// their local identity, so wildcard-peer rules can stall or drop a
// server's outbound bytes.
type Network struct {
	inner rpc.Network
	inj   *Injector
	local string
}

// Wrap returns a fault-injecting view of inner driven by this injector.
func (inj *Injector) Wrap(inner rpc.Network) *Network {
	return &Network{inner: inner, inj: inj}
}

// Bind returns the same network with the local service identity set;
// core.App calls it with the caller's name when wiring clients.
func (n *Network) Bind(service string) rpc.Network {
	return &Network{inner: n.inner, inj: n.inj, local: service}
}

// CallMiddleware exposes the injector's client-side middleware for a given
// caller; core.App consults it so any app built on a fault.Network gets
// call-level faults without extra wiring.
func (n *Network) CallMiddleware(from string) transport.Middleware {
	return n.inj.Middleware(from)
}

// Injector returns the injector driving this network.
func (n *Network) Injector() *Injector { return n.inj }

// Unwrap returns the underlying transport, letting infrastructure that
// special-cases a concrete network type (address generation for rpc.Mem)
// see through the fault layer.
func (n *Network) Unwrap() rpc.Network { return n.inner }

// Dial implements rpc.Network. An active Reset rule for (local → target
// service) closes the connection right after establishment — the listener
// backlog accepted the handshake, the crashed process never will.
func (n *Network) Dial(addr string) (net.Conn, error) {
	remote := ServiceOf(addr)
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	if n.inj.resetActive(n.local, remote) {
		c.Close()
		return c, nil
	}
	return newFaultConn(c, n.inj, n.local, remote), nil
}

// Listen implements rpc.Network; accepted connections are wrapped with the
// listening service as local identity and an unknown peer.
func (n *Network) Listen(addr string) (net.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: l, inj: n.inj, local: ServiceOf(addr)}, nil
}

type faultListener struct {
	net.Listener
	inj   *Injector
	local string
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newFaultConn(c, l.inj, l.local, ""), nil
}

// faultConn applies byte-level rules per direction: writes travel
// local→remote, reads carry remote→local traffic. A partitioned write
// pretends success and discards its bytes — the dropped-packet model, which
// keeps synchronous in-memory pipes from wedging writers — while a
// partitioned read simply stalls until the rule lifts or the conn closes,
// so late replies surface only after the partition heals.
type faultConn struct {
	net.Conn
	inj           *Injector
	local, remote string
	closed        chan struct{}
	once          sync.Once
}

func newFaultConn(c net.Conn, inj *Injector, local, remote string) *faultConn {
	return &faultConn{Conn: c, inj: inj, local: local, remote: remote, closed: make(chan struct{})}
}

func (c *faultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// wait sleeps d unless the connection closes first.
func (c *faultConn) wait(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	if d := c.inj.stallFor(c.local, c.remote); d > 0 {
		if err := c.wait(d); err != nil {
			return 0, err
		}
	}
	if c.inj.partitioned(c.local, c.remote) {
		return len(p), nil // dropped on the floor, as the wire would
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	if d := c.inj.stallFor(c.remote, c.local); d > 0 {
		if err := c.wait(d); err != nil {
			return 0, err
		}
	}
	for c.inj.partitioned(c.remote, c.local) {
		if err := c.wait(time.Millisecond); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}
