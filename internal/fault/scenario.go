package fault

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Fault is one schedulable failure: either a standing Rule (armed when the
// step fires, disarmed by the During end step) or an Action (an arbitrary
// state change — crash an instance, deregister an address — run once).
type Fault struct {
	Name string
	rule *Rule
	do   func()
}

// Latency injects fixed delay plus jitter on from→to calls.
func Latency(from, to string, d, jitter time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("latency(%s→%s,%v+%v)", orAny(from), orAny(to), d, jitter),
		rule: &Rule{From: from, To: to, Latency: d, Jitter: jitter},
	}
}

// ErrorCode fails from→to calls with the given transport code at rate
// (rate 0 = always).
func ErrorCode(from, to string, code int, rate float64) Fault {
	return Fault{
		Name: fmt.Sprintf("error(%s→%s,code=%d,p=%g)", orAny(from), orAny(to), code, rate),
		rule: &Rule{From: from, To: to, ErrCode: code, ErrRate: rate},
	}
}

// Blackhole swallows from→to calls until their deadline.
func Blackhole(from, to string) Fault {
	return Fault{
		Name: fmt.Sprintf("blackhole(%s→%s)", orAny(from), orAny(to)),
		rule: &Rule{From: from, To: to, Blackhole: true},
	}
}

// Partition drops from→to traffic at the connection level (one direction;
// partition both ways with two faults).
func Partition(from, to string) Fault {
	return Fault{
		Name: fmt.Sprintf("partition(%s→%s)", orAny(from), orAny(to)),
		rule: &Rule{From: from, To: to, Partition: true},
	}
}

// Reset kills new from→to connections at dial time.
func Reset(from, to string) Fault {
	return Fault{
		Name: fmt.Sprintf("reset(%s→%s)", orAny(from), orAny(to)),
		rule: &Rule{From: from, To: to, Reset: true},
	}
}

// Stall delays every byte on from→to connections.
func Stall(from, to string, d time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("stall(%s→%s,%v)", orAny(from), orAny(to), d),
		rule: &Rule{From: from, To: to, Stall: d},
	}
}

// Action wraps an arbitrary state change — crashing or restarting a
// core.Instance, deregistering an address — as a schedulable fault.
func Action(name string, do func()) Fault {
	return Fault{Name: name, do: do}
}

func orAny(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// ScheduledFault is one resolved step of a scenario timeline.
type ScheduledFault struct {
	At    time.Duration
	End   time.Duration // zero for open-ended or action faults
	Fault Fault
}

// Scenario is a deterministic fault schedule. Steps are declared relative
// to the start of Play; Between draws its firing time from the injector's
// seeded RNG at declaration time, so two scenarios built in the same order
// over injectors with the same seed have identical timelines (compare
// String outputs to assert reproducibility).
type Scenario struct {
	inj   *Injector
	steps []ScheduledFault
}

// NewScenario creates an empty scenario bound to an injector.
func NewScenario(inj *Injector) *Scenario {
	return &Scenario{inj: inj}
}

// At schedules f at offset t. Rule faults armed by At stay armed for the
// rest of the run.
func (s *Scenario) At(t time.Duration, f Fault) *Scenario {
	s.steps = append(s.steps, ScheduledFault{At: t, Fault: f})
	return s
}

// During arms a rule fault at from and disarms it at until. Action faults
// have nothing to revert; they just run at from.
func (s *Scenario) During(from, until time.Duration, f Fault) *Scenario {
	s.steps = append(s.steps, ScheduledFault{At: from, End: until, Fault: f})
	return s
}

// Between schedules f at a seeded-random offset in [lo, hi), drawn now.
func (s *Scenario) Between(lo, hi time.Duration, f Fault) *Scenario {
	at := lo
	if hi > lo {
		at += s.inj.jitter(hi - lo)
	}
	return s.At(at, f)
}

// Timeline returns the resolved schedule sorted by firing time (stable, so
// same-instant steps keep declaration order).
func (s *Scenario) Timeline() []ScheduledFault {
	out := make([]ScheduledFault, len(s.steps))
	copy(out, s.steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the timeline, one step per line — the reproducibility
// witness tests compare across same-seed runs.
func (s *Scenario) String() string {
	var b strings.Builder
	for _, st := range s.Timeline() {
		if st.End > 0 {
			fmt.Fprintf(&b, "%v..%v %s\n", st.At, st.End, st.Fault.Name)
		} else {
			fmt.Fprintf(&b, "%v %s\n", st.At, st.Fault.Name)
		}
	}
	return b.String()
}

// Play runs the schedule against the scenario's injector, firing each step
// at its offset from now. It returns immediately; the returned channel
// closes when the schedule is exhausted or ctx is canceled. On
// cancellation, rules this play armed are disarmed on the way out (a
// During end that already fired makes its remover a no-op).
func (s *Scenario) Play(ctx context.Context) <-chan struct{} {
	type timed struct {
		at   time.Duration
		fire func(armed *[]func())
	}
	var events []timed
	for _, st := range s.Timeline() {
		st := st
		switch {
		case st.Fault.rule != nil:
			// Arm/disarm pair sharing the remover; both closures run only on
			// the single play goroutine, in at-order.
			var remove func()
			events = append(events, timed{at: st.At, fire: func(armed *[]func()) {
				remove = s.inj.Add(*st.Fault.rule)
				*armed = append(*armed, func() { remove() })
			}})
			if st.End > st.At {
				events = append(events, timed{at: st.End, fire: func(*[]func()) {
					if remove != nil {
						remove()
					}
				}})
			}
		case st.Fault.do != nil:
			events = append(events, timed{at: st.At, fire: func(*[]func()) { st.Fault.do() }})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	done := make(chan struct{})
	go func() {
		defer close(done)
		start := time.Now()
		var armed []func()
		for _, ev := range events {
			if d := time.Until(start.Add(ev.at)); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
				}
			}
			if ctx.Err() != nil {
				for _, disarm := range armed {
					disarm()
				}
				return
			}
			ev.fire(&armed)
		}
	}()
	return done
}
