// Package graph defines the service dependency graphs and per-service cost
// profiles that drive the discrete-event simulator and the architectural
// models. Each application is a workflow tree (who calls whom, how often,
// sequentially or in parallel) plus per-service cost profiles (CPU cycles,
// fixed memory/IO time, code footprint, kernel share, message sizes).
//
// Profiles are the calibrated synthetic stand-in for the paper's vTune
// measurements: absolute values are chosen so the end-to-end services land
// near the latencies the paper reports (e.g. Social Network ≈3.8ms at low
// load, memcached ≈186µs) and so the derived figures reproduce the paper's
// shapes. DESIGN.md documents this substitution.
package graph

import "fmt"

// Profile is the cost model of one microservice.
type Profile struct {
	// Language is informational (Table 1 breakdowns).
	Language string
	// Cycles is the frequency-scalable CPU work per request, in cycles.
	Cycles float64
	// FixedNs is the non-scaling time per request (memory/IO bound), ns.
	FixedNs float64
	// CodeKB is the instruction footprint, driving i-cache models.
	CodeKB float64
	// KernelFrac / LibFrac split cycles for the OS breakdown (Fig 14);
	// the remainder is user code.
	KernelFrac, LibFrac float64
	// MsgBytes is the typical request+response payload.
	MsgBytes int
	// Workers is the per-instance concurrency (thread pool size).
	Workers int
	// Stateless services have lower LLC/TLB pressure (Fig 11 commentary).
	Stateless bool
	// RetireShare overrides the language default for the fraction of
	// non-stalled slots that retire (archsim cycle model); 0 = by language.
	// Search tiers are memory-locality-optimized (high), ML inference low.
	RetireShare float64
}

// Call is one outgoing edge in a workflow node.
type Call struct {
	// Node is the callee subtree.
	Node *Node
	// Count is how many times the call is issued per parent request
	// (e.g. timeline fan-out issues one write per follower).
	Count int
	// Stage groups calls: stages run sequentially, calls within a stage run
	// in parallel, matching the orchestrators in the live applications.
	Stage int
}

// Node is one service invocation in a workflow.
type Node struct {
	// Service names the profile to charge.
	Service string
	// Work scales the service's Cycles for this invocation (a cache GET is
	// cheaper than a SET).
	Work float64
	// Calls are the downstream invocations.
	Calls []Call
}

// App is one end-to-end application topology.
type App struct {
	Name     string
	Profiles map[string]Profile
	// Root is the dominant request workflow, entered at the front-end.
	Root *Node
	// WireNs is the per-hop one-way propagation delay between this app's
	// tiers (datacenter ≈ 20µs; the Swarm edge hop is wifi).
	WireNs float64
}

// Validate checks that every workflow node has a profile.
func (a *App) Validate() error {
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if _, ok := a.Profiles[n.Service]; !ok {
			return fmt.Errorf("graph: %s: no profile for service %q", a.Name, n.Service)
		}
		for _, c := range n.Calls {
			if c.Count < 1 {
				return fmt.Errorf("graph: %s: call count < 1 under %s", a.Name, n.Service)
			}
			if err := walk(c.Node); err != nil {
				return err
			}
		}
		return nil
	}
	if a.Root == nil {
		return fmt.Errorf("graph: %s: nil root", a.Name)
	}
	return walk(a.Root)
}

// Services returns the profile names, sorted deterministically by first
// appearance in a preorder walk, then any profiles not in the workflow.
func (a *App) Services() []string {
	seen := map[string]bool{}
	var order []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if !seen[n.Service] {
			seen[n.Service] = true
			order = append(order, n.Service)
		}
		for _, c := range n.Calls {
			walk(c.Node)
		}
	}
	walk(a.Root)
	return order
}

// Edges returns unique (caller, callee) pairs in the workflow.
func (a *App) Edges() [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Calls {
			e := [2]string{n.Service, c.Node.Service}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
			walk(c.Node)
		}
	}
	walk(a.Root)
	return out
}

// Depth returns the longest caller chain in the workflow.
func (a *App) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		max := 0
		for _, c := range n.Calls {
			if d := walk(c.Node); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(a.Root)
}

// TotalCalls returns the number of service invocations one end-to-end
// request triggers (counting fan-out).
func (a *App) TotalCalls() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		total := 1
		for _, c := range n.Calls {
			total += c.Count * walk(c.Node)
		}
		return total
	}
	return walk(a.Root)
}
