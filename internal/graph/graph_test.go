package graph

import "testing"

func allApps() []*App {
	apps := EndToEndApps()
	apps = append(apps, SingleTierApps()...)
	apps = append(apps, SocialNetworkMonolith(), SwarmEdge())
	return apps
}

func TestAllTopologiesValidate(t *testing.T) {
	for _, app := range allApps() {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
}

func TestValidateCatchesMissingProfile(t *testing.T) {
	app := &App{
		Name:     "broken",
		Profiles: map[string]Profile{"a": {}},
		Root:     n("a", 1, seq(0, n("ghost", 1))),
	}
	if err := app.Validate(); err == nil {
		t.Fatal("missing profile not caught")
	}
	if err := (&App{Name: "nil"}).Validate(); err == nil {
		t.Fatal("nil root not caught")
	}
	bad := &App{Name: "count", Profiles: map[string]Profile{"a": {}},
		Root: &Node{Service: "a", Calls: []Call{{Node: n("a", 1), Count: 0}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero count not caught")
	}
}

func TestSocialNetworkShape(t *testing.T) {
	app := SocialNetwork()
	services := app.Services()
	if len(services) < 12 {
		t.Fatalf("social services = %d, want >= 12", len(services))
	}
	if services[0] != "nginx" {
		t.Fatalf("entry = %s", services[0])
	}
	if d := app.Depth(); d < 4 {
		t.Fatalf("depth = %d", d)
	}
	// Fan-out means more invocations than unique services.
	if app.TotalCalls() <= len(services) {
		t.Fatalf("TotalCalls = %d, services = %d", app.TotalCalls(), len(services))
	}
	if len(app.Edges()) < 12 {
		t.Fatalf("edges = %d", len(app.Edges()))
	}
}

func TestMonolithSimplerThanMicroservices(t *testing.T) {
	micro, mono := SocialNetwork(), SocialNetworkMonolith()
	if len(mono.Services()) >= len(micro.Services()) {
		t.Fatal("monolith should have fewer services")
	}
	if mono.Depth() >= micro.Depth() {
		t.Fatalf("monolith depth %d >= micro depth %d", mono.Depth(), micro.Depth())
	}
	// The monolith's code footprint concentrates in one binary.
	if mono.Profiles["monolith"].CodeKB <= micro.Profiles["nginx"].CodeKB {
		t.Fatal("monolith footprint should exceed any single microservice")
	}
}

func TestSwarmWifiHop(t *testing.T) {
	cloud := SwarmCloud()
	if cloud.WireNs != WifiWireNs {
		t.Fatalf("swarm wire = %f", cloud.WireNs)
	}
	social := SocialNetwork()
	if social.WireNs != DatacenterWireNs {
		t.Fatalf("social wire = %f", social.WireNs)
	}
}

func TestSingleTiersAreLeaves(t *testing.T) {
	for _, app := range SingleTierApps() {
		if len(app.Root.Calls) != 0 {
			t.Errorf("%s: single-tier app has downstream calls", app.Name)
		}
		if app.TotalCalls() != 1 {
			t.Errorf("%s: TotalCalls = %d", app.Name, app.TotalCalls())
		}
	}
}

func TestQueueMasterSerialized(t *testing.T) {
	app := Ecommerce()
	if app.Profiles["queueMaster"].Workers != 1 {
		t.Fatal("queueMaster must be single-worker (the paper's serialization point)")
	}
}

func TestProfilesHaveSaneValues(t *testing.T) {
	for _, app := range allApps() {
		for name, p := range app.Profiles {
			if p.Cycles <= 0 {
				t.Errorf("%s/%s: cycles = %f", app.Name, name, p.Cycles)
			}
			if p.Workers <= 0 {
				t.Errorf("%s/%s: workers = %d", app.Name, name, p.Workers)
			}
			if p.KernelFrac+p.LibFrac >= 1 {
				t.Errorf("%s/%s: kernel+lib = %f", app.Name, name, p.KernelFrac+p.LibFrac)
			}
			if p.MsgBytes <= 0 || p.CodeKB <= 0 {
				t.Errorf("%s/%s: msg/code = %d/%f", app.Name, name, p.MsgBytes, p.CodeKB)
			}
		}
	}
}
