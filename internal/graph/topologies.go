package graph

// Reference platform for profile calibration: cycles are spent at the
// simulated frequency, so a 240k-cycle service takes 100µs at 2.4GHz.
// Values are tuned so end-to-end latencies and network shares land near the
// paper's reported numbers (Fig 3: Social ≈3.8ms / 36% network; memcached
// ≈186µs / 20%; nginx ≈1.3ms / 5%; MongoDB ≈383µs / 14%).

const (
	// DatacenterWireNs is the one-way propagation between tiers on the
	// 10GbE ToR network.
	DatacenterWireNs = 4e3
	// WifiWireNs is the one-way cloud↔drone hop.
	WifiWireNs = 20e6
)

func n(service string, work float64, calls ...Call) *Node {
	return &Node{Service: service, Work: work, Calls: calls}
}

func seq(stage int, node *Node) Call         { return Call{Node: node, Count: 1, Stage: stage} }
func many(stage, count int, node *Node) Call { return Call{Node: node, Count: count, Stage: stage} }

// SocialNetwork returns the Social Network topology (composePost-dominated
// mix, including the timeline fan-out that makes reposts the slowest query
// class).
func SocialNetwork() *App {
	p := map[string]Profile{
		"nginx":         {Language: "C", Cycles: 260e3, CodeKB: 560, KernelFrac: 0.50, LibFrac: 0.22, MsgBytes: 1500, Workers: 32},
		"composePost":   {Language: "C++", Cycles: 300e3, CodeKB: 130, KernelFrac: 0.38, LibFrac: 0.30, MsgBytes: 1200, Workers: 16, Stateless: true},
		"uniqueID":      {Language: "C++", Cycles: 55e3, CodeKB: 35, KernelFrac: 0.35, LibFrac: 0.28, MsgBytes: 128, Workers: 16, Stateless: true},
		"text":          {Language: "C++", Cycles: 330e3, CodeKB: 140, KernelFrac: 0.36, LibFrac: 0.30, MsgBytes: 1024, Workers: 16, Stateless: true},
		"urlShorten":    {Language: "C++", Cycles: 130e3, CodeKB: 60, KernelFrac: 0.36, LibFrac: 0.28, MsgBytes: 256, Workers: 16, Stateless: true},
		"userTag":       {Language: "C++", Cycles: 110e3, CodeKB: 55, KernelFrac: 0.36, LibFrac: 0.28, MsgBytes: 256, Workers: 16, Stateless: true},
		"login":         {Language: "PHP", Cycles: 260e3, CodeKB: 160, KernelFrac: 0.34, LibFrac: 0.33, MsgBytes: 384, Workers: 16},
		"video":         {Language: "node.js", Cycles: 620e3, CodeKB: 180, KernelFrac: 0.33, LibFrac: 0.40, MsgBytes: 65536, Workers: 16, Stateless: true},
		"image":         {Language: "node.js", Cycles: 520e3, CodeKB: 170, KernelFrac: 0.33, LibFrac: 0.40, MsgBytes: 32768, Workers: 16, Stateless: true},
		"postsStorage":  {Language: "Java", Cycles: 240e3, CodeKB: 150, KernelFrac: 0.35, LibFrac: 0.30, MsgBytes: 1500, Workers: 24},
		"writeTimeline": {Language: "Java", Cycles: 270e3, CodeKB: 140, KernelFrac: 0.36, LibFrac: 0.30, MsgBytes: 512, Workers: 24},
		"readPost":      {Language: "Go", Cycles: 160e3, CodeKB: 90, KernelFrac: 0.36, LibFrac: 0.26, MsgBytes: 1500, Workers: 16, Stateless: true},
		"writeGraph":    {Language: "Java", Cycles: 200e3, CodeKB: 120, KernelFrac: 0.36, LibFrac: 0.30, MsgBytes: 512, Workers: 24},
		"search":        {Language: "C++", Cycles: 310e3, CodeKB: 85, KernelFrac: 0.28, LibFrac: 0.22, MsgBytes: 640, Workers: 16, RetireShare: 0.72},
		"recommender":   {Language: "Scala", Cycles: 820e3, CodeKB: 260, KernelFrac: 0.22, LibFrac: 0.38, MsgBytes: 512, Workers: 8, RetireShare: 0.22},
		"memcached":     {Language: "C", Cycles: 90e3, FixedNs: 18e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32},
		"mongodb":       {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("nginx", 1,
		seq(0, n("login", 0.4)),
		seq(1, n("composePost", 1,
			seq(0, n("uniqueID", 1)),
			seq(0, n("text", 1,
				seq(0, n("urlShorten", 1)),
				seq(0, n("userTag", 1)),
			)),
			seq(0, n("image", 0.6)),
			seq(1, n("postsStorage", 1,
				seq(0, n("memcached", 1)),
				seq(0, n("mongodb", 1)),
			)),
			seq(2, n("writeTimeline", 1,
				seq(0, n("writeGraph", 1, seq(0, n("mongodb", 0.8)))),
				many(1, 3, n("mongodb", 0.7)),
				seq(1, n("memcached", 1)),
			)),
			seq(2, n("search", 1)),
		)),
		seq(2, n("readPost", 0.8, seq(0, n("memcached", 0.8)))),
	)
	return &App{Name: "socialNetwork", Profiles: p, Root: root, WireNs: DatacenterWireNs}
}

// SocialNetworkMonolith is the same user-visible functionality in one
// binary plus shared cache/database backends.
func SocialNetworkMonolith() *App {
	p := map[string]Profile{
		"monolith":  {Language: "Java", Cycles: 3.0e6, CodeKB: 2600, KernelFrac: 0.30, LibFrac: 0.28, MsgBytes: 2048, Workers: 64},
		"memcached": {Language: "C", Cycles: 90e3, FixedNs: 18e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32},
		"mongodb":   {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("monolith", 1,
		seq(0, n("memcached", 1)),
		seq(1, n("mongodb", 1)),
		many(2, 3, n("mongodb", 0.7)),
	)
	return &App{Name: "socialNetwork-monolith", Profiles: p, Root: root, WireNs: DatacenterWireNs}
}

// MediaService returns the Media Service topology (composeReview-dominated,
// with the payment/rent path folded into the mix weightings).
func MediaService() *App {
	p := map[string]Profile{
		"nginx":         {Language: "C", Cycles: 260e3, CodeKB: 560, KernelFrac: 0.50, LibFrac: 0.22, MsgBytes: 1500, Workers: 32},
		"composeReview": {Language: "C++", Cycles: 280e3, CodeKB: 120, KernelFrac: 0.37, LibFrac: 0.30, MsgBytes: 1024, Workers: 16, Stateless: true},
		"login":         {Language: "PHP", Cycles: 260e3, CodeKB: 160, KernelFrac: 0.34, LibFrac: 0.33, MsgBytes: 384, Workers: 16},
		"movieID":       {Language: "Java", Cycles: 160e3, CodeKB: 90, KernelFrac: 0.35, LibFrac: 0.30, MsgBytes: 256, Workers: 16, Stateless: true},
		"rating":        {Language: "Go", Cycles: 70e3, CodeKB: 40, KernelFrac: 0.34, LibFrac: 0.25, MsgBytes: 128, Workers: 16, Stateless: true},
		"movieReview":   {Language: "Java", Cycles: 240e3, CodeKB: 130, KernelFrac: 0.35, LibFrac: 0.30, MsgBytes: 1024, Workers: 24},
		"reviewStorage": {Language: "Java", Cycles: 250e3, CodeKB: 140, KernelFrac: 0.36, LibFrac: 0.30, MsgBytes: 1024, Workers: 24},
		"payment":       {Language: "Java", Cycles: 380e3, CodeKB: 170, KernelFrac: 0.30, LibFrac: 0.32, MsgBytes: 384, Workers: 16},
		"videoStream":   {Language: "C", Cycles: 340e3, FixedNs: 120e3, CodeKB: 580, KernelFrac: 0.55, LibFrac: 0.20, MsgBytes: 262144, Workers: 32},
		"mysql":         {Language: "C++", Cycles: 260e3, FixedNs: 180e3, CodeKB: 1100, KernelFrac: 0.44, LibFrac: 0.24, MsgBytes: 2048, Workers: 32},
		"memcached":     {Language: "C", Cycles: 90e3, FixedNs: 18e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32},
		"mongodb":       {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("nginx", 1,
		seq(0, n("composeReview", 1,
			seq(0, n("login", 1, seq(0, n("memcached", 0.8)))),
			seq(1, n("movieID", 1, seq(0, n("mysql", 0.9)))),
			seq(1, n("rating", 1)),
			seq(2, n("movieReview", 1,
				seq(0, n("reviewStorage", 1,
					seq(0, n("memcached", 1)),
					seq(0, n("mongodb", 1)),
				)),
				seq(1, n("mysql", 0.6)),
			)),
		)),
		seq(1, n("payment", 0.3, seq(0, n("mysql", 0.5)))),
		seq(2, n("videoStream", 0.2)),
	)
	return &App{Name: "mediaService", Profiles: p, Root: root, WireNs: DatacenterWireNs}
}

// Ecommerce returns the E-commerce topology (placeOrder-dominated; note
// queueMaster's Workers:1, the serialization the paper calls out).
func Ecommerce() *App {
	p := map[string]Profile{
		"frontend":      {Language: "node.js", Cycles: 480e3, CodeKB: 300, KernelFrac: 0.32, LibFrac: 0.42, MsgBytes: 2048, Workers: 32},
		"orders":        {Language: "Go", Cycles: 420e3, CodeKB: 160, KernelFrac: 0.30, LibFrac: 0.26, MsgBytes: 1024, Workers: 16},
		"accountInfo":   {Language: "Go", Cycles: 230e3, CodeKB: 110, KernelFrac: 0.33, LibFrac: 0.26, MsgBytes: 384, Workers: 16},
		"cart":          {Language: "Java", Cycles: 200e3, CodeKB: 120, KernelFrac: 0.34, LibFrac: 0.31, MsgBytes: 512, Workers: 16},
		"catalogue":     {Language: "Go", Cycles: 280e3, CodeKB: 130, KernelFrac: 0.33, LibFrac: 0.26, MsgBytes: 1024, Workers: 24},
		"shipping":      {Language: "Java", Cycles: 150e3, CodeKB: 90, KernelFrac: 0.33, LibFrac: 0.31, MsgBytes: 256, Workers: 16, Stateless: true},
		"discounts":     {Language: "Java", Cycles: 210e3, CodeKB: 100, KernelFrac: 0.33, LibFrac: 0.31, MsgBytes: 256, Workers: 16, Stateless: true},
		"authorization": {Language: "Go", Cycles: 190e3, CodeKB: 95, KernelFrac: 0.32, LibFrac: 0.26, MsgBytes: 256, Workers: 16, Stateless: true},
		"payment":       {Language: "Go", Cycles: 270e3, CodeKB: 120, KernelFrac: 0.31, LibFrac: 0.26, MsgBytes: 384, Workers: 16},
		"transactionID": {Language: "Java", Cycles: 50e3, CodeKB: 30, KernelFrac: 0.34, LibFrac: 0.30, MsgBytes: 128, Workers: 16, Stateless: true},
		"invoicing":     {Language: "Java", Cycles: 230e3, CodeKB: 120, KernelFrac: 0.33, LibFrac: 0.31, MsgBytes: 768, Workers: 16},
		"queueMaster":   {Language: "Go", Cycles: 300e3, CodeKB: 110, KernelFrac: 0.34, LibFrac: 0.26, MsgBytes: 512, Workers: 1},
		"wishlist":      {Language: "Java", Cycles: 90e3, CodeKB: 28, KernelFrac: 0.33, LibFrac: 0.30, MsgBytes: 256, Workers: 16, Stateless: true, RetireShare: 0.6},
		"recommender":   {Language: "Scala", Cycles: 820e3, CodeKB: 260, KernelFrac: 0.22, LibFrac: 0.38, MsgBytes: 512, Workers: 8, RetireShare: 0.22},
		"search":        {Language: "C++", Cycles: 310e3, CodeKB: 85, KernelFrac: 0.28, LibFrac: 0.22, MsgBytes: 640, Workers: 16, RetireShare: 0.72},
		"memcached":     {Language: "C", Cycles: 90e3, FixedNs: 18e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32},
		"mongodb":       {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("frontend", 1,
		seq(0, n("search", 0.5)),
		seq(0, n("catalogue", 1, seq(0, n("memcached", 1)), seq(1, n("mongodb", 0.4)))),
		seq(1, n("orders", 1,
			seq(0, n("accountInfo", 1, seq(0, n("memcached", 0.7)))),
			seq(1, n("cart", 1, seq(0, n("mongodb", 0.8)))),
			seq(2, n("catalogue", 0.8, seq(0, n("memcached", 1)))),
			seq(2, n("shipping", 1)),
			seq(2, n("discounts", 1)),
			seq(3, n("payment", 1,
				seq(0, n("authorization", 1, seq(0, n("accountInfo", 0.6)))),
				seq(1, n("accountInfo", 0.6, seq(0, n("mongodb", 0.6)))),
			)),
			seq(3, n("transactionID", 1)),
			seq(4, n("invoicing", 1, seq(0, n("mongodb", 0.7)))),
			seq(4, n("queueMaster", 1, seq(0, n("mongodb", 0.9)))),
			seq(5, n("cart", 0.4, seq(0, n("mongodb", 0.5)))),
		)),
		seq(2, n("wishlist", 0.2)),
		seq(2, n("recommender", 0.3)),
	)
	return &App{Name: "ecommerce", Profiles: p, Root: root, WireNs: DatacenterWireNs}
}

// Banking returns the Banking System topology (payment-dominated).
func Banking() *App {
	p := map[string]Profile{
		"frontend":           {Language: "node.js", Cycles: 450e3, CodeKB: 290, KernelFrac: 0.32, LibFrac: 0.42, MsgBytes: 1024, Workers: 32},
		"payments":           {Language: "Java", Cycles: 320e3, CodeKB: 150, KernelFrac: 0.31, LibFrac: 0.33, MsgBytes: 512, Workers: 16},
		"authentication":     {Language: "Java", Cycles: 250e3, CodeKB: 140, KernelFrac: 0.32, LibFrac: 0.33, MsgBytes: 384, Workers: 16},
		"acl":                {Language: "Java", Cycles: 140e3, CodeKB: 80, KernelFrac: 0.33, LibFrac: 0.31, MsgBytes: 256, Workers: 16, Stateless: true},
		"transactionPosting": {Language: "Java", Cycles: 360e3, FixedNs: 90e3, CodeKB: 190, KernelFrac: 0.33, LibFrac: 0.30, MsgBytes: 768, Workers: 8},
		"customerActivity":   {Language: "Javascript", Cycles: 190e3, CodeKB: 110, KernelFrac: 0.32, LibFrac: 0.40, MsgBytes: 512, Workers: 16},
		"customerInfo":       {Language: "Java", Cycles: 210e3, CodeKB: 120, KernelFrac: 0.33, LibFrac: 0.31, MsgBytes: 768, Workers: 16},
		"wealthMgmt":         {Language: "Java", Cycles: 520e3, CodeKB: 200, KernelFrac: 0.27, LibFrac: 0.33, MsgBytes: 1024, Workers: 8},
		"offerBanners":       {Language: "Javascript", Cycles: 90e3, CodeKB: 50, KernelFrac: 0.32, LibFrac: 0.40, MsgBytes: 512, Workers: 16, Stateless: true},
		"bankInfoDB":         {Language: "C++", Cycles: 240e3, FixedNs: 160e3, CodeKB: 1000, KernelFrac: 0.44, LibFrac: 0.24, MsgBytes: 1024, Workers: 32},
		"memcached":          {Language: "C", Cycles: 90e3, FixedNs: 18e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32},
		"mongodb":            {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("frontend", 1,
		seq(0, n("authentication", 1, seq(0, n("memcached", 0.8)))),
		seq(1, n("payments", 1,
			seq(0, n("acl", 1, seq(0, n("mongodb", 0.5)))),
			seq(1, n("transactionPosting", 1, many(0, 2, n("mongodb", 0.8)))),
			seq(2, n("customerActivity", 1, seq(0, n("mongodb", 0.6)))),
		)),
		seq(2, n("customerInfo", 0.5, seq(0, n("memcached", 0.7)))),
		seq(2, n("offerBanners", 0.3)),
		seq(2, n("bankInfoDB", 0.2)),
	)
	return &App{Name: "banking", Profiles: p, Root: root, WireNs: DatacenterWireNs}
}

// SwarmCloud returns the Swarm topology with computation in the cloud: the
// drone ships sensors and frames over wifi; the cloud recognizes, avoids,
// and plans.
func SwarmCloud() *App {
	p := map[string]Profile{
		"droneSensors":      {Language: "Javascript", Cycles: 120e3, CodeKB: 60, KernelFrac: 0.38, LibFrac: 0.45, MsgBytes: 32768, Workers: 4},
		"cloudController":   {Language: "Javascript", Cycles: 240e3, CodeKB: 150, KernelFrac: 0.33, LibFrac: 0.44, MsgBytes: 2048, Workers: 32},
		"imageRecognition":  {Language: "C++", Cycles: 96e6, CodeKB: 340, KernelFrac: 0.18, LibFrac: 0.48, MsgBytes: 32768, Workers: 32},
		"obstacleAvoidance": {Language: "C++", Cycles: 2.2e6, CodeKB: 120, KernelFrac: 0.22, LibFrac: 0.35, MsgBytes: 512, Workers: 32},
		"motionControl":     {Language: "Javascript", Cycles: 1.6e6, CodeKB: 140, KernelFrac: 0.28, LibFrac: 0.45, MsgBytes: 512, Workers: 32},
		"mongodb":           {Language: "C++", Cycles: 200e3, FixedNs: 200e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32},
	}
	root := n("droneSensors", 1,
		seq(0, n("cloudController", 1,
			seq(0, n("imageRecognition", 1)),
			seq(0, n("obstacleAvoidance", 1)),
			seq(1, n("motionControl", 1)),
			many(2, 2, n("mongodb", 0.5)),
		)),
	)
	return &App{Name: "swarm-cloud", Profiles: p, Root: root, WireNs: WifiWireNs}
}

// SwarmEdge returns the Swarm topology with computation on the drones: the
// same work runs on weak edge cores; only route construction and archival
// cross the wifi hop. The simulator marks services on edge machines via
// the deployment's placement hook.
func SwarmEdge() *App {
	app := SwarmCloud()
	app.Name = "swarm-edge"
	// Recognition/avoidance/motion run on-drone: same cycle counts, but the
	// deployment places them on edge-class machines and removes the wifi
	// hop in front of them (see sim.Deployment.EdgeServices).
	return app
}

// Single-tier baseline applications (Fig 3 and the top row of Fig 12).

func singleTier(name string, p Profile, wire float64) *App {
	return &App{
		Name:     name,
		Profiles: map[string]Profile{name: p},
		Root:     n(name, 1),
		WireNs:   wire,
	}
}

// Nginx is the static-content webserver baseline.
func Nginx() *App {
	return singleTier("nginx", Profile{Language: "C", Cycles: 2.8e6, CodeKB: 560, KernelFrac: 0.52, LibFrac: 0.20, MsgBytes: 8192, Workers: 32}, DatacenterWireNs)
}

// Memcached is the in-memory cache baseline.
func Memcached() *App {
	return singleTier("memcached", Profile{Language: "C", Cycles: 280e3, FixedNs: 25e3, CodeKB: 420, KernelFrac: 0.62, LibFrac: 0.18, MsgBytes: 1024, Workers: 32}, DatacenterWireNs)
}

// MongoDB is the persistent-store baseline; FixedNs dominates, making it
// I/O-bound and thus frequency-insensitive (Fig 12).
func MongoDB() *App {
	return singleTier("mongodb", Profile{Language: "C++", Cycles: 260e3, FixedNs: 260e3, CodeKB: 900, KernelFrac: 0.48, LibFrac: 0.22, MsgBytes: 2048, Workers: 32}, DatacenterWireNs)
}

// Xapian is the websearch leaf baseline (high IPC, small footprint).
func Xapian() *App {
	return singleTier("xapian", Profile{Language: "C++", Cycles: 1.4e6, CodeKB: 80, KernelFrac: 0.20, LibFrac: 0.22, MsgBytes: 640, Workers: 16, RetireShare: 0.75}, DatacenterWireNs)
}

// Recommender is the ML-inference baseline (low IPC).
func Recommender() *App {
	return singleTier("recommender", Profile{Language: "Scala", Cycles: 2.2e6, CodeKB: 260, KernelFrac: 0.18, LibFrac: 0.40, MsgBytes: 512, Workers: 8, RetireShare: 0.22}, DatacenterWireNs)
}

// EndToEndApps returns the five end-to-end services in paper order.
func EndToEndApps() []*App {
	return []*App{SocialNetwork(), MediaService(), Ecommerce(), Banking(), SwarmCloud()}
}

// SingleTierApps returns the five single-tier baselines in paper order.
func SingleTierApps() []*App {
	return []*App{Nginx(), Memcached(), MongoDB(), Xapian(), Recommender()}
}
