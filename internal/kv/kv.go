// Package kv implements the suite's in-memory lookaside cache — the role
// memcached plays in every DeathStarBench backend. It is a sharded LRU
// cache with TTL expiry, CAS, counters, and memcached-style statistics, and
// it can be exposed as an RPC microservice (see Service) so cache tiers
// appear in dependency graphs and traces exactly like the paper's
// memcached instances.
package kv

import (
	"runtime"
	"sync"
	"time"
)

// minStripes and maxStripes bound the lock-stripe count. The default scales
// with GOMAXPROCS — a cache serving a 64-way box with the 16 stripes that
// suited a 4-way one serializes on stripe locks long before it saturates
// memory bandwidth — and stays a power of two for cheap masking.
const (
	minStripes = 16
	maxStripes = 256
)

// defaultStripes picks the stripe count for this machine: 4 stripes per
// logical CPU (so uniformly random keys rarely collide on a lock even with
// every core in the cache), clamped to [minStripes, maxStripes].
func defaultStripes() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < minStripes {
		n = minStripes
	}
	if n > maxStripes {
		n = maxStripes
	}
	return n
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// entry is one cached item, a node in its shard's intrusive LRU list.
type entry struct {
	key        string
	value      []byte
	version    uint64
	expires    time.Time // zero = no expiry
	prev, next *entry
}

// Stats mirrors the memcached counters the experiments read.
type Stats struct {
	Hits      int64
	Misses    int64
	Sets      int64
	Evictions int64
	Expired   int64
	Items     int64
	Bytes     int64
}

// Cache is a lock-striped LRU cache bounded by total value bytes. The
// stripe count is fixed at construction: GOMAXPROCS-scaled by default,
// pinned with WithStripes. Statistics counters live per stripe, incremented
// under the stripe lock the operation already holds, so a 64-way box never
// serializes its cache traffic on one shared counter cache line; Stats
// folds them.
type Cache struct {
	shards  []shard
	mask    uint32
	now     func() time.Time
	stripes int // requested via WithStripes; 0 = machine default
}

type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
	maxBytes int64

	// Stats counters for operations that routed to this stripe; plain
	// fields guarded by mu — the lock is already held everywhere they
	// change, so they cost nothing extra and contend with nobody.
	hits, misses, sets, evictions, expired int64
}

// Option configures a Cache.
type Option func(*Cache)

// WithClock injects a clock for TTL handling in tests and simulations.
func WithClock(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// WithStripes pins the lock-stripe count instead of the GOMAXPROCS-scaled
// default — tests that reason about the per-stripe byte budget
// (maxBytes/stripes) pin it so the budget does not move with the machine.
// Rounded up to a power of two and capped at maxStripes; n <= 0 keeps the
// default.
func WithStripes(n int) Option {
	return func(c *Cache) { c.stripes = n }
}

// New creates a cache bounded to maxBytes of value data (split evenly
// across stripes). maxBytes <= 0 means a generous default of 64 MiB.
func New(maxBytes int64, opts ...Option) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{now: time.Now}
	for _, o := range opts {
		o(c)
	}
	n := c.stripes
	if n <= 0 {
		n = defaultStripes()
	}
	n = nextPow2(n)
	if n > maxStripes {
		n = maxStripes
	}
	c.shards = make([]shard, n)
	c.mask = uint32(n - 1)
	for i := range c.shards {
		c.shards[i].items = make(map[string]*entry)
		c.shards[i].maxBytes = maxBytes / int64(n)
	}
	return c
}

// Stripes returns the stripe count the cache was built with.
func (c *Cache) Stripes() int { return len(c.shards) }

// fnv1a hashes the key for shard selection.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value and its CAS version. The returned slice is
// shared; callers must not modify it.
func (c *Cache) Get(key string) (value []byte, version uint64, ok bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.items[key]
	if !exists {
		s.misses++
		return nil, 0, false
	}
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		s.remove(e)
		s.expired++
		s.misses++
		return nil, 0, false
	}
	s.touch(e)
	s.hits++
	return e.value, e.version, true
}

// Set stores value under key with the given TTL (0 = never expires).
// A value larger than its stripe's byte budget (maxBytes/stripes) cannot
// be cached: memcached-style, the set is counted and immediately evicted,
// and any previous value for the key is removed as stale.
func (c *Cache) Set(key string, value []byte, ttl time.Duration) {
	c.set(key, value, ttl, 0, false)
}

// CompareAndSwap stores value only if the entry's current version matches.
// It reports whether the swap happened; a missing key never matches.
func (c *Cache) CompareAndSwap(key string, value []byte, ttl time.Duration, version uint64) bool {
	return c.set(key, value, ttl, version, true)
}

func (c *Cache) set(key string, value []byte, ttl time.Duration, casVersion uint64, cas bool) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.items[key]
	if cas && (!exists || e.version != casVersion) {
		return false
	}
	s.sets++
	// A value larger than the shard budget can never be admitted: the
	// eviction loop below deliberately refuses to evict the entry being
	// written (s.tail != e), so an oversized value would be pinned above
	// maxBytes forever — and would first evict every other entry in the
	// shard trying to make room that cannot exist. Mirror memcached's
	// "object too large" handling: account the set, drop any previous
	// version of the key (it is stale now), and store nothing.
	if int64(len(value)) > s.maxBytes {
		if exists {
			s.remove(e)
		}
		s.evictions++
		return true
	}
	var expires time.Time
	if ttl > 0 {
		expires = c.now().Add(ttl)
	}
	if exists {
		s.bytes += int64(len(value)) - int64(len(e.value))
		e.value = value
		e.version++
		e.expires = expires
		s.touch(e)
	} else {
		e = &entry{key: key, value: value, version: 1, expires: expires}
		s.items[key] = e
		s.bytes += int64(len(value))
		s.pushFront(e)
	}
	for s.bytes > s.maxBytes && s.tail != nil && s.tail != e {
		s.evictions++
		s.remove(s.tail)
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.items[key]
	if !exists {
		return false
	}
	s.remove(e)
	return true
}

// Incr atomically adds delta to the decimal counter stored at key,
// creating it at delta if absent, and returns the new value. The stored
// representation is the decimal string, as in memcached.
func (c *Cache) Incr(key string, delta int64) int64 {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur int64
	e, exists := s.items[key]
	if exists && (e.expires.IsZero() || c.now().Before(e.expires)) {
		cur = parseInt(e.value)
	}
	cur += delta
	val := appendInt(nil, cur)
	if exists {
		s.bytes += int64(len(val)) - int64(len(e.value))
		e.value = val
		e.version++
		s.touch(e)
	} else {
		e = &entry{key: key, value: val, version: 1}
		s.items[key] = e
		s.bytes += int64(len(val))
		s.pushFront(e)
	}
	return cur
}

// Len returns the total number of cached items (including not-yet-reaped
// expired entries).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters, folding the per-stripe
// counters under each stripe's lock.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Sets += s.sets
		st.Evictions += s.evictions
		st.Expired += s.expired
		st.Items += int64(len(s.items))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Flush removes every entry.
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*entry)
		s.head, s.tail, s.bytes = nil, nil, 0
		s.mu.Unlock()
	}
}

// --- intrusive LRU list (shard lock held) ---

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) remove(e *entry) {
	s.unlink(e)
	delete(s.items, e.key)
	s.bytes -= int64(len(e.value))
}

// --- minimal decimal helpers (avoid strconv allocs on the hot path) ---

func parseInt(b []byte) int64 {
	var n int64
	neg := false
	for i, ch := range b {
		if i == 0 && ch == '-' {
			neg = true
			continue
		}
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int64(ch-'0')
	}
	if neg {
		return -n
	}
	return n
}

func appendInt(b []byte, n int64) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
