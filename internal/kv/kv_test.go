package kv

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dsb/internal/rpc"
)

func TestSetGet(t *testing.T) {
	c := New(1 << 20)
	c.Set("k", []byte("v"), 0)
	v, ver, ok := c.Get("k")
	if !ok || string(v) != "v" || ver != 1 {
		t.Fatalf("Get = %q, %d, %v", v, ver, ok)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestOverwriteBumpsVersion(t *testing.T) {
	c := New(1 << 20)
	c.Set("k", []byte("v1"), 0)
	c.Set("k", []byte("v2"), 0)
	v, ver, _ := c.Get("k")
	if string(v) != "v2" || ver != 2 {
		t.Fatalf("Get = %q, %d", v, ver)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(1<<20, WithClock(func() time.Time { return now }))
	c.Set("k", []byte("v"), time.Second)
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("fresh key should be present")
	}
	now = now.Add(2 * time.Second)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("expired key should be gone")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d", st.Expired)
	}
}

func TestDelete(t *testing.T) {
	c := New(1 << 20)
	c.Set("k", []byte("v"), 0)
	if !c.Delete("k") {
		t.Fatal("Delete existing = false")
	}
	if c.Delete("k") {
		t.Fatal("Delete missing = true")
	}
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("deleted key present")
	}
}

func TestCompareAndSwap(t *testing.T) {
	c := New(1 << 20)
	c.Set("k", []byte("v1"), 0)
	_, ver, _ := c.Get("k")
	if !c.CompareAndSwap("k", []byte("v2"), 0, ver) {
		t.Fatal("CAS with correct version failed")
	}
	if c.CompareAndSwap("k", []byte("v3"), 0, ver) {
		t.Fatal("CAS with stale version succeeded")
	}
	if c.CompareAndSwap("missing", []byte("x"), 0, 1) {
		t.Fatal("CAS on missing key succeeded")
	}
	v, _, _ := c.Get("k")
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
}

func TestIncr(t *testing.T) {
	c := New(1 << 20)
	if got := c.Incr("n", 5); got != 5 {
		t.Fatalf("Incr new = %d", got)
	}
	if got := c.Incr("n", -2); got != 3 {
		t.Fatalf("Incr = %d", got)
	}
	v, _, _ := c.Get("n")
	if string(v) != "3" {
		t.Fatalf("stored = %q", v)
	}
}

// testStripes pins the stripe count for tests whose byte-budget math
// depends on maxBytes/stripes; the default scales with GOMAXPROCS.
const testStripes = 16

func TestLRUEviction(t *testing.T) {
	// One shard gets maxBytes/stripes; craft keys for a single shard by
	// brute force so eviction order is observable.
	c := New(testStripes*100, WithStripes(testStripes)) // 100 bytes per shard
	shardOf := func(k string) *shard { return c.shard(k) }
	target := shardOf("seed")
	var keys []string
	for i := 0; len(keys) < 5; i++ {
		k := fmt.Sprintf("key-%d", i)
		if shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	val := make([]byte, 30)
	for _, k := range keys[:3] {
		c.Set(k, val, 0) // 90 bytes: fits
	}
	// Touch keys[0] so keys[1] is LRU.
	c.Get(keys[0])
	c.Set(keys[3], val, 0) // 120 bytes: evicts LRU (keys[1])
	if _, _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestStatsAndFlush(t *testing.T) {
	c := New(1 << 20)
	c.Set("a", []byte("xy"), 0)
	c.Get("a")
	c.Get("b")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Sets != 1 || st.Items != 1 || st.Bytes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	c.Flush()
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Fatal("flush incomplete")
	}
}

// Property: cache byte accounting equals the sum of live values, and never
// exceeds capacity after any operation sequence.
func TestCacheInvariantsProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value []byte
	}
	const perShardCap = 256
	f := func(ops []op) bool {
		c := New(testStripes*perShardCap, WithStripes(testStripes))
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			if len(o.Value) > perShardCap {
				o.Value = o.Value[:perShardCap]
			}
			switch o.Kind % 3 {
			case 0:
				c.Set(key, o.Value, 0)
			case 1:
				c.Get(key)
			case 2:
				c.Delete(key)
			}
			for i := range c.shards {
				s := &c.shards[i]
				s.mu.Lock()
				var sum int64
				count := 0
				for e := s.head; e != nil; e = e.next {
					sum += int64(len(e.value))
					count++
				}
				ok := sum == s.bytes && count == len(s.items) && s.bytes <= s.maxBytes
				s.mu.Unlock()
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", rng.IntN(64))
				switch rng.IntN(4) {
				case 0:
					c.Set(key, []byte("value"), 0)
				case 1:
					c.Get(key)
				case 2:
					c.Delete(key)
				case 3:
					c.Incr("ctr-"+key, 1)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestIncrConcurrentExact(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Incr("n", 1)
			}
		}()
	}
	wg.Wait()
	v, _, _ := c.Get("n")
	if string(v) != "10000" {
		t.Fatalf("counter = %q, want 10000", v)
	}
}

// Regression: a value larger than the shard budget used to be admitted and
// pinned above maxBytes forever — the eviction loop's `s.tail != e` guard
// never evicts the entry being written — after first evicting every other
// resident entry in the shard trying to make room that cannot exist. It
// must be rejected outright, with byte accounting kept honest.
func TestOversizedValueRejected(t *testing.T) {
	c := New(testStripes*100, WithStripes(testStripes)) // 100 bytes per shard
	// Seed the oversized key's shard with a small sibling that must survive.
	target := c.shard("big")
	var sibling string
	for i := 0; ; i++ {
		k := fmt.Sprintf("sib-%d", i)
		if c.shard(k) == target {
			sibling = k
			break
		}
	}
	c.Set(sibling, make([]byte, 10), 0)

	c.Set("big", make([]byte, 101), 0) // exceeds the 100-byte shard budget
	if _, _, ok := c.Get("big"); ok {
		t.Fatal("oversized value was admitted")
	}
	if _, _, ok := c.Get(sibling); !ok {
		t.Fatal("oversized set evicted an unrelated resident entry")
	}
	st := c.Stats()
	if st.Bytes != 10 {
		t.Fatalf("Bytes = %d, want 10", st.Bytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1 (the rejected value)", st.Evictions)
	}

	// Overwriting an existing key with an oversized value drops the stale
	// small version instead of serving it forever.
	c.Set(sibling, make([]byte, 500), 0)
	if _, _, ok := c.Get(sibling); ok {
		t.Fatal("stale value served after oversized overwrite")
	}
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("Bytes = %d, want 0", got)
	}

	// The shard honors its budget for all later traffic.
	for i := 0; i < 32; i++ {
		c.Set(fmt.Sprintf("after-%d", i), make([]byte, 60), 0)
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		over := s.bytes > s.maxBytes
		s.mu.Unlock()
		if over {
			t.Fatalf("shard %d above budget after oversized rejects", i)
		}
	}
}

func TestStripeConfiguration(t *testing.T) {
	// Default scales with GOMAXPROCS, clamped to [16, 256], power of two.
	def := New(1 << 20)
	n := def.Stripes()
	if n < 16 || n > 256 || n&(n-1) != 0 {
		t.Fatalf("default stripes = %d, want power of two in [16, 256]", n)
	}
	// WithStripes rounds up to a power of two and caps at 256.
	for _, tc := range []struct{ req, want int }{
		{16, 16}, {17, 32}, {100, 128}, {256, 256}, {1000, 256},
	} {
		c := New(1<<20, WithStripes(tc.req))
		if got := c.Stripes(); got != tc.want {
			t.Fatalf("WithStripes(%d) = %d stripes, want %d", tc.req, got, tc.want)
		}
	}
	// n <= 0 keeps the default.
	if got := New(1<<20, WithStripes(0)).Stripes(); got != n {
		t.Fatalf("WithStripes(0) = %d stripes, want default %d", got, n)
	}
	// The per-stripe budget splits maxBytes evenly.
	c := New(32<<10, WithStripes(32))
	for i := range c.shards {
		if c.shards[i].maxBytes != 1<<10 {
			t.Fatalf("stripe %d budget = %d, want %d", i, c.shards[i].maxBytes, 1<<10)
		}
	}
}

// The per-stripe counters must fold to exact totals under concurrency —
// each increment happens under the stripe lock, so nothing can be lost.
func TestStatsConcurrentExact(t *testing.T) {
	c := New(64 << 20)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				c.Set(key, []byte("v"), 0)
				c.Get(key)          // hit
				c.Get(key + "-nil") // miss
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	const want = goroutines * perG
	if st.Sets != want || st.Hits != want || st.Misses != want {
		t.Fatalf("stats = %+v, want Sets=Hits=Misses=%d", st, want)
	}
}

func TestRPCService(t *testing.T) {
	n := rpc.NewMem()
	srv := rpc.NewServer("memcached")
	RegisterService(srv, New(1<<20))
	addr, err := srv.Start(n, "memcached:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := rpc.NewClient(n, "memcached", addr)
	defer c.Close()
	ctx := context.Background()

	if err := c.Call(ctx, "Set", SetReq{Key: "k", Value: []byte("v")}, nil); err != nil {
		t.Fatal(err)
	}
	var got GetResp
	if err := c.Call(ctx, "Get", GetReq{Key: "k"}, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Value) != "v" {
		t.Fatalf("Get = %+v", got)
	}
	var ir IncrResp
	if err := c.Call(ctx, "Incr", IncrReq{Key: "c", Delta: 3}, &ir); err != nil || ir.Value != 3 {
		t.Fatalf("Incr = %+v, %v", ir, err)
	}
	var dr DeleteResp
	if err := c.Call(ctx, "Delete", DeleteReq{Key: "k"}, &dr); err != nil || !dr.Existed {
		t.Fatalf("Delete = %+v, %v", dr, err)
	}
	if err := c.Call(ctx, "Get", GetReq{Key: "k"}, &got); err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Fatal("deleted key found over RPC")
	}
}

func BenchmarkCacheGet(b *testing.B) {
	c := New(64 << 20)
	for i := 0; i < 1000; i++ {
		c.Set(fmt.Sprintf("key-%d", i), make([]byte, 128), 0)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(fmt.Sprintf("key-%d", i%1000))
			i++
		}
	})
}

func BenchmarkCacheSet(b *testing.B) {
	c := New(64 << 20)
	val := make([]byte, 128)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Set(fmt.Sprintf("key-%d", i%4096), val, 0)
			i++
		}
	})
}
