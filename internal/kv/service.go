package kv

import (
	"time"

	"dsb/internal/codec"
	"dsb/internal/rpc"
)

// Wire messages for the cache's RPC interface.

// GetReq asks for one key.
type GetReq struct{ Key string }

// GetResp returns the value if found.
type GetResp struct {
	Value   []byte
	Version uint64
	Found   bool
}

// SetReq stores a value with a TTL in nanoseconds (0 = no expiry).
type SetReq struct {
	Key   string
	Value []byte
	TTLNs int64
}

// DeleteReq removes one key.
type DeleteReq struct{ Key string }

// DeleteResp reports whether the key existed.
type DeleteResp struct{ Existed bool }

// MGetReq asks for a batch of keys in one round trip — the timeline
// hydration path reads K post entries at once, and per-key RPCs make the
// cache tier's request rate scale with fan-in rather than with requests.
type MGetReq struct{ Keys []string }

// MGetResp returns parallel arrays: Values[i]/Found[i] answer Keys[i].
type MGetResp struct {
	Values [][]byte
	Found  []bool
}

// IncrReq adjusts a counter.
type IncrReq struct {
	Key   string
	Delta int64
}

// IncrResp returns the new counter value.
type IncrResp struct{ Value int64 }

// RegisterService exposes cache as an RPC microservice on srv with methods
// Get, MGet, Set, Delete, and Incr — the cache tier the application graphs
// call.
func RegisterService(srv *rpc.Server, cache *Cache) {
	srv.Handle("Get", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req GetReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		v, ver, ok := cache.Get(req.Key)
		return codec.Marshal(GetResp{Value: v, Version: ver, Found: ok})
	})
	srv.Handle("MGet", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req MGetReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		resp := MGetResp{
			Values: make([][]byte, len(req.Keys)),
			Found:  make([]bool, len(req.Keys)),
		}
		for i, key := range req.Keys {
			resp.Values[i], _, resp.Found[i] = cache.Get(key)
		}
		return codec.Marshal(resp)
	})
	srv.Handle("Set", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req SetReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		cache.Set(req.Key, req.Value, time.Duration(req.TTLNs))
		return nil, nil
	})
	srv.Handle("Delete", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req DeleteReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		return codec.Marshal(DeleteResp{Existed: cache.Delete(req.Key)})
	})
	srv.Handle("Incr", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req IncrReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		return codec.Marshal(IncrResp{Value: cache.Incr(req.Key, req.Delta)})
	})
}
