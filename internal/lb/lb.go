// Package lb implements client-side load balancing across the instances of
// one microservice — the role the nginx load-balancer tier plays in front
// of the suite's webservers, generalized to every tier-to-tier edge so that
// scaled-out instances share traffic. Policies: round-robin, least
// outstanding connections, and power-of-two-choices.
//
// Balanced is also where the per-target half of the resilience stack lives:
// middleware installed with WithMiddleware (deadline budget, retry, hedge)
// wraps the replica choice, so every retry or hedged attempt re-picks a
// backend and can land on a different instance. Per-replica middleware
// (the circuit breaker) is installed on each backend's client through the
// WithBackendMiddleware factory.
package lb

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/metrics"
	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// Policy selects a backend index given per-backend outstanding counts.
type Policy interface {
	// Pick returns the index of the chosen backend; n is len(outstanding).
	Pick(n int, outstanding func(i int) int64) int
}

// RoundRobin cycles through backends.
type RoundRobin struct{ next atomic.Uint64 }

// Pick implements Policy.
func (p *RoundRobin) Pick(n int, _ func(int) int64) int {
	return int(p.next.Add(1)-1) % n
}

// LeastConn picks the backend with the fewest outstanding requests.
type LeastConn struct{}

// Pick implements Policy.
func (LeastConn) Pick(n int, outstanding func(int) int64) int {
	best, bestV := 0, outstanding(0)
	for i := 1; i < n; i++ {
		if v := outstanding(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// PowerOfTwo samples two random backends and picks the less loaded, the
// classic load-balancing compromise between cost and tail behaviour.
type PowerOfTwo struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewPowerOfTwo returns a seeded power-of-two-choices policy.
func NewPowerOfTwo(seed uint64) *PowerOfTwo {
	return &PowerOfTwo{rng: rand.New(rand.NewPCG(seed, 0x9E37))}
}

// Pick implements Policy.
func (p *PowerOfTwo) Pick(n int, outstanding func(int) int64) int {
	if n == 1 {
		return 0
	}
	p.mu.Lock()
	a := p.rng.IntN(n)
	b := p.rng.IntN(n - 1)
	p.mu.Unlock()
	if b >= a {
		b++
	}
	if outstanding(b) < outstanding(a) {
		return b
	}
	return a
}

// statsWindow is the sliding window over which per-backend latency stats
// are kept; long enough to smooth policy jitter, short enough that a
// controller reading Stats sees the current regime, not history.
const statsWindow = 5 * time.Second

type backend struct {
	addr        string
	client      *rpc.Client
	outstanding atomic.Int64
	requests    atomic.Int64
	failures    atomic.Int64
	latency     *metrics.Windowed
	breaker     func() string // nil when no instrumented breaker installed
}

func (be *backend) invoke(ctx context.Context, call *transport.Call) error {
	be.outstanding.Add(1)
	be.requests.Add(1)
	start := time.Now()
	err := be.client.Invoke(ctx, call)
	be.latency.RecordDuration(time.Since(start))
	be.outstanding.Add(-1)
	if transport.FailureSignal(err) {
		be.failures.Add(1)
	}
	return err
}

// Balanced is a load-balanced RPC client over the instances of one target
// service. Backends can be added and removed at runtime as instances scale
// out and in.
type Balanced struct {
	network    rpc.Network
	target     string
	policy     Policy
	clientOpts []rpc.ClientOption
	mws        []transport.Middleware
	backendMW  func(addr string) []transport.Middleware
	instrument func(addr string) ([]transport.Middleware, func() string)
	invoke     transport.Invoker

	mu       sync.RWMutex
	backends []*backend
}

// Option configures a Balanced client.
type Option func(*Balanced)

// WithClientOptions passes options (pool size, per-client middleware) down
// to every backend's rpc.Client.
func WithClientOptions(opts ...rpc.ClientOption) Option {
	return func(b *Balanced) { b.clientOpts = append(b.clientOpts, opts...) }
}

// WithMiddleware appends per-target middleware around the replica choice:
// each attempt the chain makes (a retry, a hedge) re-picks a backend. This
// is where the deadline-budget → retry → hedge stack installs.
func WithMiddleware(mws ...transport.Middleware) Option {
	return func(b *Balanced) { b.mws = append(b.mws, mws...) }
}

// WithBackendMiddleware installs a factory producing per-replica middleware
// for each backend address as it is added — the circuit breaker installs
// here, one instance per replica, so a slow or dead instance is ejected
// individually and its CodeUnavailable rejections fail over to peers.
func WithBackendMiddleware(f func(addr string) []transport.Middleware) Option {
	return func(b *Balanced) { b.backendMW = f }
}

// WithBackendInstrument is WithBackendMiddleware plus a per-replica health
// probe: the factory also returns a function reporting the replica's breaker
// state ("closed", "open", "half-open"), surfaced through Stats. Use
// transport.ResilienceConfig.InstrumentedBackendFactory to build one. When
// both options are set, this one wins.
func WithBackendInstrument(f func(addr string) ([]transport.Middleware, func() string)) Option {
	return func(b *Balanced) { b.instrument = f }
}

// New creates a balanced client. addrs may be empty initially.
func New(network rpc.Network, target string, addrs []string, policy Policy, opts ...Option) *Balanced {
	if policy == nil {
		policy = &RoundRobin{}
	}
	b := &Balanced{network: network, target: target, policy: policy}
	for _, o := range opts {
		o(b)
	}
	b.invoke = transport.Build(b.invokeOnce, b.mws...)
	for _, a := range addrs {
		b.AddBackend(a)
	}
	return b
}

// Target returns the balanced service name.
func (b *Balanced) Target() string { return b.target }

// AddBackend adds an instance address (idempotent). The backend slice is
// copy-on-write: Call holds snapshots of it outside the lock.
func (b *Balanced) AddBackend(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, be := range b.backends {
		if be.addr == addr {
			return
		}
	}
	opts := b.clientOpts
	var probe func() string
	var mws []transport.Middleware
	if b.instrument != nil {
		mws, probe = b.instrument(addr)
	} else if b.backendMW != nil {
		mws = b.backendMW(addr)
	}
	if len(mws) > 0 {
		opts = append(opts[:len(opts):len(opts)], rpc.WithMiddleware(mws...))
	}
	next := make([]*backend, len(b.backends), len(b.backends)+1)
	copy(next, b.backends)
	b.backends = append(next, &backend{
		addr:    addr,
		client:  rpc.NewClient(b.network, b.target, addr, opts...),
		latency: metrics.NewWindowed(statsWindow, 5, nil),
		breaker: probe,
	})
}

// RemoveBackend drops an instance address, closing its client. In-flight
// calls holding the old snapshot finish against the closed client and fail
// over.
func (b *Balanced) RemoveBackend(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, be := range b.backends {
		if be.addr == addr {
			be.client.Close()
			next := make([]*backend, 0, len(b.backends)-1)
			next = append(next, b.backends[:i]...)
			next = append(next, b.backends[i+1:]...)
			b.backends = next
			return
		}
	}
}

// Backends returns the current backend addresses.
func (b *Balanced) Backends() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, len(b.backends))
	for i, be := range b.backends {
		out[i] = be.addr
	}
	return out
}

// FollowRegistry keeps the backend set synchronized with the registry's
// view of the target service until stop closes. Every membership change —
// scale-out, scale-in, and passive eviction when a crashed replica's health
// lease expires — reconciles the backends, so a dead instance stops
// receiving picks within one lease TTL without any caller-side probing.
// It blocks; run it on its own goroutine.
func (b *Balanced) FollowRegistry(reg *registry.Registry, stop <-chan struct{}) {
	for {
		// Register the watch before reconciling so a change landing between
		// the two is never missed.
		ch := reg.Changed(b.target)
		want := reg.Lookup(b.target)
		wantSet := make(map[string]bool, len(want))
		for _, addr := range want {
			wantSet[addr] = true
			b.AddBackend(addr)
		}
		for _, addr := range b.Backends() {
			if !wantSet[addr] {
				b.RemoveBackend(addr)
			}
		}
		select {
		case <-stop:
			return
		case <-ch:
		}
	}
}

// BackendStats is a point-in-time health snapshot of one backend replica.
type BackendStats struct {
	Addr     string
	InFlight int64 // requests outstanding right now
	Requests int64 // total attempts routed here since AddBackend
	Failures int64 // attempts that ended in a failure signal
	// Breaker is the replica's circuit-breaker state ("closed", "open",
	// "half-open"), or "" when the balancer was built without
	// WithBackendInstrument.
	Breaker string
	// P99 is the recent 99th-percentile attempt latency over the stats
	// window (zero when no recent samples).
	P99 time.Duration
}

// Stats returns a per-backend health snapshot, in backend order — the view
// the control plane and experiments read instead of reaching into balancer
// internals.
func (b *Balanced) Stats() []BackendStats {
	b.mu.RLock()
	backends := b.backends
	b.mu.RUnlock()
	out := make([]BackendStats, len(backends))
	for i, be := range backends {
		s := BackendStats{
			Addr:     be.addr,
			InFlight: be.outstanding.Load(),
			Requests: be.requests.Load(),
			Failures: be.failures.Load(),
			P99:      time.Duration(be.latency.Snapshot().P99),
		}
		if be.breaker != nil {
			s.Breaker = be.breaker()
		}
		out[i] = s
	}
	return out
}

// Call invokes method on a backend chosen by the policy, running the
// balanced middleware chain around the choice. The request travels as a
// typed value (Call.Body) and is marshaled at the wire, straight into the
// connection's write segment — retried and hedged attempts re-encode there,
// which is why req must not be mutated until Call returns.
func (b *Balanced) Call(ctx context.Context, method string, req, resp any) error {
	call := transport.AcquireCall(b.target, method)
	call.Body = req
	err := b.invoke(ctx, call)
	if err == nil && resp != nil {
		if uerr := codec.Unmarshal(call.Reply, resp); uerr != nil {
			err = fmt.Errorf("lb: unmarshal %s.%s reply: %w", b.target, method, uerr)
		}
	}
	transport.ReleaseBuf(call.Reply)
	transport.ReleaseCall(call)
	return err
}

// CallOneWay issues a fire-and-forget call on a policy-picked backend: the
// balanced middleware chain runs with Call.OneWay set and the terminal
// client completes at send without registering a reply waiter. Only
// send-side errors come back; see rpc.Client.CallOneWay for the contract.
func (b *Balanced) CallOneWay(ctx context.Context, method string, req any) error {
	call := transport.AcquireCall(b.target, method)
	call.Body = req
	call.OneWay = true
	err := b.invoke(ctx, call)
	transport.ReleaseCall(call)
	return err
}

// Invoke runs the balanced middleware chain for a caller-built call.
func (b *Balanced) Invoke(ctx context.Context, call *transport.Call) error {
	return b.invoke(ctx, call)
}

// Stream opens a streaming call on a policy-picked backend. The open runs
// through the balanced chain (so a dead instance fails over exactly like a
// unary call); the stream then lives on that backend's connection until
// teardown — it does not re-balance mid-stream.
func (b *Balanced) Stream(ctx context.Context, method string, req any) (*transport.Stream, error) {
	return transport.OpenStream(ctx, b.invoke, b.target, "", method, req)
}

var _ transport.Streamer = (*Balanced)(nil)

// invokeOnce is the terminal invoker under the balanced middleware: pick a
// replica and issue one attempt. Transport-level failures (dial refused,
// connection lost, breaker rejection) fail over once to the next backend,
// so a dead instance doesn't surface to callers while the registry catches
// up; application errors are returned as-is.
func (b *Balanced) invokeOnce(ctx context.Context, call *transport.Call) error {
	b.mu.RLock()
	backends := b.backends
	b.mu.RUnlock()
	if len(backends) == 0 {
		return rpc.Errorf(rpc.CodeUnavailable, "lb: no backends for %q", b.target)
	}
	idx := b.policy.Pick(len(backends), func(i int) int64 {
		return backends[i].outstanding.Load()
	})
	if idx < 0 || idx >= len(backends) {
		return fmt.Errorf("lb: policy picked invalid backend %d/%d", idx, len(backends))
	}
	err := backends[idx].invoke(ctx, call)
	if err == nil || !transport.Retryable(err) || len(backends) < 2 || ctx.Err() != nil {
		return err
	}
	// One failover attempt on the neighboring backend.
	return backends[(idx+1)%len(backends)].invoke(ctx, call)
}

// Close closes all backend clients.
func (b *Balanced) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, be := range b.backends {
		be.client.Close()
	}
	b.backends = nil
	return nil
}
