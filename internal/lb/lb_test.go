package lb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// TestLeaseExpiryEjectsBackend wires FollowRegistry to a registry with
// health leases: when a crashed replica's lease expires, the balancer must
// drop it from rotation within one lease TTL — no probing, no failed calls
// required — while the healthy replica keeps serving.
func TestLeaseExpiryEjectsBackend(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 2)
	reg := registry.New()
	const ttl = 60 * time.Millisecond
	healthy := reg.RegisterLease("svc", addrs[0], ttl)
	crashed := reg.RegisterLease("svc", addrs[1], ttl)

	b := New(net, "svc", reg.Lookup("svc"), &RoundRobin{})
	defer b.Close()
	stop := make(chan struct{})
	defer close(stop)
	go b.FollowRegistry(reg, stop)

	// Heartbeat the healthy replica; let the crashed one's lease lapse.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				healthy.Renew()
			}
		}
	}()

	// Within one TTL of the crash (lease armed at RegisterLease above), the
	// backend set must shrink to the healthy replica.
	deadline := time.Now().Add(ttl + 30*time.Millisecond)
	for {
		got := b.Backends()
		if len(got) == 1 && got[0] == addrs[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backends = %v after a lease TTL, want only %s", got, addrs[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !crashed.Expired() {
		t.Fatal("crashed lease should be expired")
	}

	// Every subsequent pick lands on the survivor.
	for i := 0; i < 10; i++ {
		var resp whoResp
		if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Instance != "inst-0" {
			t.Fatalf("pick %d routed to crashed backend %s", i, resp.Instance)
		}
	}
}

type whoResp struct{ Instance string }

// startInstances boots n echo servers that identify themselves.
func startInstances(t testing.TB, net rpc.Network, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("inst-%d", i)
		s := rpc.NewServer("svc")
		s.Handle("Who", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			return codec.Marshal(whoResp{Instance: name})
		})
		s.Handle("Slow", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			time.Sleep(30 * time.Millisecond)
			return codec.Marshal(whoResp{Instance: name})
		})
		addr, err := s.Start(net, fmt.Sprintf("svc/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = addr
	}
	return addrs
}

func TestRoundRobinSpreads(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 3)
	b := New(net, "svc", addrs, &RoundRobin{})
	defer b.Close()
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		var resp whoResp
		if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatal(err)
		}
		counts[resp.Instance]++
	}
	if len(counts) != 3 {
		t.Fatalf("instances hit = %v", counts)
	}
	for inst, c := range counts {
		if c != 10 {
			t.Fatalf("round robin uneven: %s = %d", inst, c)
		}
	}
}

func TestNoBackends(t *testing.T) {
	b := New(rpc.NewMem(), "svc", nil, &RoundRobin{})
	defer b.Close()
	err := b.Call(context.Background(), "Who", nil, nil)
	if !rpc.IsCode(err, rpc.CodeUnavailable) {
		t.Fatalf("want CodeUnavailable, got %v", err)
	}
}

func TestAddRemoveBackend(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 2)
	b := New(net, "svc", addrs[:1], &RoundRobin{})
	defer b.Close()
	b.AddBackend(addrs[1])
	b.AddBackend(addrs[1]) // idempotent
	if got := b.Backends(); len(got) != 2 {
		t.Fatalf("Backends = %v", got)
	}
	b.RemoveBackend(addrs[0])
	if got := b.Backends(); len(got) != 1 || got[0] != addrs[1] {
		t.Fatalf("after remove = %v", got)
	}
	var resp whoResp
	if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Instance != "inst-1" {
		t.Fatalf("routed to removed backend: %s", resp.Instance)
	}
}

func TestLeastConnAvoidsBusy(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 2)
	b := New(net, "svc", addrs, LeastConn{})
	defer b.Close()

	// Stagger three slow calls so least-conn assigns them 0, 1, 0 (ties go
	// to the lowest index), leaving outstanding = (2, 1). Fast calls issued
	// while they run must all land on the less-loaded backend 1.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp whoResp
			b.Call(context.Background(), "Slow", nil, &resp) //nolint:errcheck
		}()
		time.Sleep(5 * time.Millisecond)
	}
	counts := map[string]int{}
	for i := 0; i < 5; i++ {
		var resp whoResp
		if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatal(err)
		}
		counts[resp.Instance]++
	}
	wg.Wait()
	if counts["inst-1"] != 5 {
		t.Fatalf("least-conn did not prefer idle backend: %v", counts)
	}
}

func TestPowerOfTwoPick(t *testing.T) {
	p := NewPowerOfTwo(42)
	if got := p.Pick(1, func(int) int64 { return 0 }); got != 0 {
		t.Fatalf("single backend pick = %d", got)
	}
	loads := []int64{100, 0, 100, 100}
	hits := make([]int, 4)
	for i := 0; i < 200; i++ {
		idx := p.Pick(4, func(i int) int64 { return loads[i] })
		hits[idx]++
	}
	// The idle backend must win every comparison it appears in (~half of
	// picks in expectation); it must clearly dominate.
	if hits[1] < 60 {
		t.Fatalf("power-of-two ignored idle backend: %v", hits)
	}
}

func TestRoundRobinPolicyCycle(t *testing.T) {
	p := &RoundRobin{}
	got := []int{}
	for i := 0; i < 6; i++ {
		got = append(got, p.Pick(3, nil))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v", got)
		}
	}
}

func TestFailoverOnDeadBackend(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 2)
	b := New(net, "svc", addrs, &RoundRobin{})
	defer b.Close()

	// Register a third, never-listening backend; calls picked for it must
	// fail over to a live neighbor instead of erroring.
	b.AddBackend("dead:0")
	failures := 0
	for i := 0; i < 30; i++ {
		var resp whoResp
		if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
			failures++
		}
	}
	if failures != 0 {
		t.Fatalf("%d calls failed despite failover", failures)
	}
}

func TestNoFailoverOnApplicationError(t *testing.T) {
	net := rpc.NewMem()
	var hits [2]int32
	for i := 0; i < 2; i++ {
		i := i
		s := rpc.NewServer("svc")
		s.Handle("Fail", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
			atomic.AddInt32(&hits[i], 1)
			return nil, rpc.Errorf(rpc.CodeConflict, "app error")
		})
		addr, err := s.Start(net, fmt.Sprintf("svc-fail/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		if i == 0 {
			b := New(net, "svc", []string{addr}, &RoundRobin{})
			t.Cleanup(func() { b.Close() })
		}
	}
	addrs := []string{"svc-fail/0", "svc-fail/1"}
	b := New(net, "svc", addrs, &RoundRobin{})
	defer b.Close()
	if err := b.Call(context.Background(), "Fail", nil, nil); !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("err = %v", err)
	}
	if hits[0]+hits[1] != 1 {
		t.Fatalf("application error was retried: hits=%v", hits)
	}
}

// Stats exposes per-backend health — in-flight, totals, recent p99, breaker
// state — without callers reaching into balancer internals.
func TestBackendStats(t *testing.T) {
	net := rpc.NewMem()
	addrs := startInstances(t, net, 2)
	factory := (&transport.ResilienceConfig{
		Breaker: &transport.BreakerConfig{Failures: 1, Cooldown: time.Minute},
	}).InstrumentedBackendFactory()
	b := New(net, "svc", addrs, &RoundRobin{}, WithBackendInstrument(factory))
	defer b.Close()

	for i := 0; i < 10; i++ {
		var resp whoResp
		if err := b.Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatal(err)
		}
	}
	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d backends, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Requests != 5 {
			t.Fatalf("%s: Requests = %d, want 5 (round-robin split)", s.Addr, s.Requests)
		}
		if s.Failures != 0 || s.InFlight != 0 {
			t.Fatalf("%s: unexpected failures/in-flight: %+v", s.Addr, s)
		}
		if s.Breaker != "closed" {
			t.Fatalf("%s: breaker state = %q, want closed", s.Addr, s.Breaker)
		}
		if s.P99 <= 0 {
			t.Fatalf("%s: P99 = %v, want > 0 after traffic", s.Addr, s.P99)
		}
	}

	// Add a never-listening backend and route traffic: its failures show up
	// in the snapshot and its breaker trips to "open" while the healthy
	// replicas stay "closed".
	b.AddBackend("dead:0")
	for i := 0; i < 9; i++ {
		var resp whoResp
		b.Call(context.Background(), "Who", nil, &resp) //nolint:errcheck
	}
	found := false
	for _, s := range b.Stats() {
		if s.Addr != "dead:0" {
			if s.Breaker != "closed" {
				t.Fatalf("healthy backend %s breaker = %q", s.Addr, s.Breaker)
			}
			continue
		}
		found = true
		if s.Failures == 0 {
			t.Fatalf("dead backend shows no failures: %+v", s)
		}
		if s.Breaker != "open" {
			t.Fatalf("dead backend breaker = %q, want open", s.Breaker)
		}
	}
	if !found {
		t.Fatal("dead backend missing from stats")
	}
}
