// Package loadgen implements the suite's workload generation: open-loop
// arrival processes (Poisson, and non-homogeneous Poisson for diurnal
// patterns), closed-loop clients, and the key/user popularity
// distributions (Zipf, and the "top-u% of users issue 90% of requests"
// skew knob of Figure 22b). All generators are seeded and deterministic.
package loadgen

import (
	"context"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"dsb/internal/metrics"
)

// Arrivals produces inter-arrival gaps for an open-loop generator.
type Arrivals interface {
	// Next returns the gap before the next arrival.
	Next() time.Duration
}

// Source is a seeded, mutex-guarded random source for workload closures.
// The open- and closed-loop runners call the request generator from many
// goroutines at once; sharing one bare *rand.Rand there is a data race.
// Source gives workloads one seeded stream that is safe to draw from
// concurrently, so a fixed seed yields a reproducible request mix.
type Source struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSource returns a concurrency-safe source for the given seed.
func NewSource(seed uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed, 0x50CE))}
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// IntN returns a uniform draw in [0, n).
func (s *Source) IntN(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.IntN(n)
}

// Schedule materializes every arrival of an open-loop process inside the
// horizon as absolute offsets from the run start. Pre-generating the
// schedule makes a run's arrival times a pure function of the seed — the
// chaos experiments depend on that for bit-reproducible fault timing — and
// lets a lagging send loop batch catch-up arrivals instead of silently
// thinning the offered load.
func Schedule(a Arrivals, horizon time.Duration) []time.Duration {
	var out []time.Duration
	for t := a.Next(); t < horizon; t += a.Next() {
		out = append(out, t)
	}
	return out
}

// Poisson is a homogeneous Poisson arrival process at a fixed rate.
type Poisson struct {
	rate float64 // arrivals per second
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process with the given rate (per second).
func NewPoisson(rate float64, seed uint64) *Poisson {
	return &Poisson{rate: rate, rng: rand.New(rand.NewPCG(seed, 0xA11CE))}
}

// Next implements Arrivals: exponential inter-arrival times.
func (p *Poisson) Next() time.Duration {
	if p.rate <= 0 {
		return time.Hour
	}
	gap := p.rng.ExpFloat64() / p.rate
	return time.Duration(gap * float64(time.Second))
}

// ConstantRate spaces arrivals evenly, the deterministic baseline.
type ConstantRate struct{ Gap time.Duration }

// Next implements Arrivals.
func (c ConstantRate) Next() time.Duration { return c.Gap }

// Pattern maps elapsed time to a rate multiplier; Eval must be >= 0.
type Pattern interface {
	Eval(elapsed time.Duration) float64
}

// Diurnal is a day-shaped load curve: a raised cosine with its trough at
// phase 0, scaled so the multiplier swings between min and max. The paper
// compresses a day of Social Network traffic into minutes; Period controls
// that compression.
type Diurnal struct {
	Period   time.Duration
	Min, Max float64
}

// Eval implements Pattern.
func (d Diurnal) Eval(elapsed time.Duration) float64 {
	if d.Period <= 0 {
		return d.Max
	}
	phase := 2 * math.Pi * float64(elapsed%d.Period) / float64(d.Period)
	unit := (1 - math.Cos(phase)) / 2 // 0 at trough, 1 at peak
	return d.Min + (d.Max-d.Min)*unit
}

// Spike is flat at 1.0 with a multiplicative burst in [Start, Start+Width).
type Spike struct {
	Start, Width time.Duration
	Factor       float64
}

// Eval implements Pattern.
func (s Spike) Eval(elapsed time.Duration) float64 {
	if elapsed >= s.Start && elapsed < s.Start+s.Width {
		return s.Factor
	}
	return 1
}

// Ramp rises linearly from From to To across [Start, Start+Rise), holding
// flat before and after — the load-ramp shape the autoscale-live experiment
// drives through a static-vs-autoscaled deployment. A zero Rise is a step.
type Ramp struct {
	Start, Rise time.Duration
	From, To    float64
}

// Eval implements Pattern.
func (r Ramp) Eval(elapsed time.Duration) float64 {
	switch {
	case elapsed < r.Start:
		return r.From
	case elapsed >= r.Start+r.Rise:
		return r.To
	default:
		frac := float64(elapsed-r.Start) / float64(r.Rise)
		return r.From + (r.To-r.From)*frac
	}
}

// NonHomogeneous modulates a base Poisson process by a Pattern via
// thinning: candidate arrivals are generated at the peak rate and kept
// with probability rate(t)/peak.
type NonHomogeneous struct {
	base    *Poisson
	pattern Pattern
	peak    float64
	elapsed time.Duration
	rng     *rand.Rand
}

// NewNonHomogeneous creates a modulated process; baseRate is the rate at
// multiplier 1.0 and peakMultiplier bounds pattern.Eval.
func NewNonHomogeneous(baseRate float64, pattern Pattern, peakMultiplier float64, seed uint64) *NonHomogeneous {
	if peakMultiplier < 1 {
		peakMultiplier = 1
	}
	return &NonHomogeneous{
		base:    NewPoisson(baseRate*peakMultiplier, seed),
		pattern: pattern,
		peak:    peakMultiplier,
		rng:     rand.New(rand.NewPCG(seed, 0xD1A)),
	}
}

// Next implements Arrivals by thinning.
func (n *NonHomogeneous) Next() time.Duration {
	var total time.Duration
	for {
		gap := n.base.Next()
		total += gap
		n.elapsed += gap
		mult := n.pattern.Eval(n.elapsed)
		if mult < 0 {
			mult = 0
		}
		if n.rng.Float64() < mult/n.peak {
			return total
		}
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s, via an inverted CDF table. s=0 degenerates to uniform.
// Draw is safe for concurrent use.
type Zipf struct {
	cdf []float64
	mu  sync.Mutex
	rng *rand.Rand
}

// NewZipf builds the distribution over n items with exponent s >= 0.
func NewZipf(n int, s float64, seed uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewPCG(seed, 0x21F))}
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	z.mu.Lock()
	u := z.rng.Float64()
	z.mu.Unlock()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SkewedUsers models Figure 22b's skew knob: skewPct = 100 - u where u is
// the percentage of users responsible for 90% of requests. skewPct 0 means
// uniform; skewPct 99 means 1% of users issue 90% of the traffic.
// Draw is safe for concurrent use.
type SkewedUsers struct {
	n       int
	hotSize int
	mu      sync.Mutex
	rng     *rand.Rand
}

// NewSkewedUsers builds the distribution over n users at the given skew.
func NewSkewedUsers(n int, skewPct float64, seed uint64) *SkewedUsers {
	if n < 1 {
		n = 1
	}
	if skewPct < 0 {
		skewPct = 0
	}
	if skewPct > 99.9 {
		skewPct = 99.9
	}
	u := 100 - skewPct // % of users issuing 90% of requests
	hot := int(math.Round(float64(n) * u / 100))
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	return &SkewedUsers{n: n, hotSize: hot, rng: rand.New(rand.NewPCG(seed, 0x5EED))}
}

// Draw returns the next user index in [0, n).
func (s *SkewedUsers) Draw() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hotSize >= s.n {
		return s.rng.IntN(s.n)
	}
	if s.rng.Float64() < 0.9 {
		return s.rng.IntN(s.hotSize)
	}
	return s.hotSize + s.rng.IntN(s.n-s.hotSize)
}

// Result summarizes one load-generation run.
type Result struct {
	Issued    int64
	Completed int64
	Errors    int64
	Elapsed   time.Duration
	Latency   metrics.Snapshot
}

// Throughput returns completed requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// RunOpenLoop fires requests following the arrival process for the given
// duration, never waiting for responses before issuing the next request —
// the open-loop methodology the paper uses so that server slowdowns surface
// as queueing rather than reduced offered load. Each request runs in its
// own goroutine; do must be safe for concurrent use.
func RunOpenLoop(ctx context.Context, arrivals Arrivals, duration time.Duration, do func(ctx context.Context) error) Result {
	hist := metrics.NewHistogram()
	var res Result
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	<-timer.C
	defer timer.Stop()
	for {
		elapsed := time.Since(start)
		if elapsed >= duration || ctx.Err() != nil {
			break
		}
		gap := arrivals.Next()
		timer.Reset(gap)
		select {
		case <-ctx.Done():
		case <-timer.C:
		}
		if ctx.Err() != nil || time.Since(start) >= duration {
			break
		}
		mu.Lock()
		res.Issued++
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			err := do(ctx)
			lat := time.Since(t0)
			mu.Lock()
			if err != nil {
				res.Errors++
			} else {
				res.Completed++
				hist.RecordDuration(lat)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Latency = hist.Snapshot()
	return res
}

// RunClosedLoop drives the target with a fixed number of workers, each
// issuing its next request only after the previous one completes — the
// contrast case to open-loop generation.
func RunClosedLoop(ctx context.Context, workers int, duration time.Duration, do func(ctx context.Context) error) Result {
	if workers < 1 {
		workers = 1
	}
	hist := metrics.NewHistogram()
	var res Result
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < duration && ctx.Err() == nil {
				t0 := time.Now()
				err := do(ctx)
				lat := time.Since(t0)
				mu.Lock()
				res.Issued++
				if err != nil {
					res.Errors++
				} else {
					res.Completed++
					hist.RecordDuration(lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Latency = hist.Snapshot()
	return res
}
