package loadgen

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(1000, 42)
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next()
	}
	mean := total.Seconds() / n
	if mean < 0.0009 || mean > 0.0011 {
		t.Fatalf("mean inter-arrival = %f s, want ~0.001", mean)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	p := NewPoisson(0, 1)
	if p.Next() <= 0 {
		t.Fatal("zero-rate process must still make progress")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := NewPoisson(100, 7), NewPoisson(100, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestConstantRate(t *testing.T) {
	c := ConstantRate{Gap: time.Millisecond}
	if c.Next() != time.Millisecond {
		t.Fatal("ConstantRate gap")
	}
}

func TestDiurnalPattern(t *testing.T) {
	d := Diurnal{Period: 24 * time.Hour, Min: 0.2, Max: 1.0}
	if got := d.Eval(0); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("trough = %f", got)
	}
	if got := d.Eval(12 * time.Hour); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("peak = %f", got)
	}
	// Periodicity.
	if math.Abs(d.Eval(6*time.Hour)-d.Eval(30*time.Hour)) > 1e-9 {
		t.Fatal("not periodic")
	}
	zero := Diurnal{Min: 0.5, Max: 2}
	if zero.Eval(time.Hour) != 2 {
		t.Fatal("zero period should pin to max")
	}
}

func TestSpikePattern(t *testing.T) {
	s := Spike{Start: 10 * time.Second, Width: 5 * time.Second, Factor: 4}
	if s.Eval(9*time.Second) != 1 || s.Eval(16*time.Second) != 1 {
		t.Fatal("spike outside window")
	}
	if s.Eval(12*time.Second) != 4 {
		t.Fatal("spike inside window")
	}
}

func TestRampPattern(t *testing.T) {
	r := Ramp{Start: 10 * time.Second, Rise: 4 * time.Second, From: 1, To: 5}
	if got := r.Eval(0); got != 1 {
		t.Fatalf("before ramp = %f", got)
	}
	if got := r.Eval(12 * time.Second); math.Abs(got-3) > 1e-9 {
		t.Fatalf("midpoint = %f, want 3", got)
	}
	if got := r.Eval(14 * time.Second); got != 5 {
		t.Fatalf("plateau start = %f", got)
	}
	if got := r.Eval(time.Hour); got != 5 {
		t.Fatalf("plateau = %f", got)
	}
	// Zero rise degenerates to a step.
	step := Ramp{Start: time.Second, From: 2, To: 8}
	if step.Eval(999*time.Millisecond) != 2 || step.Eval(time.Second) != 8 {
		t.Fatal("zero-rise ramp should step at Start")
	}
}

func TestNonHomogeneousTracksRamp(t *testing.T) {
	// Rate 1000/s ramping 1x→4x across seconds 5..7: the plateau half must
	// carry ~4x the arrivals of the flat half.
	nh := NewNonHomogeneous(1000, Ramp{Start: 5 * time.Second, Rise: 2 * time.Second, From: 1, To: 4}, 4, 17)
	var elapsed time.Duration
	flat, plateau := 0, 0
	for elapsed < 12*time.Second {
		elapsed += nh.Next()
		if elapsed < 5*time.Second {
			flat++
		} else if elapsed >= 7*time.Second && elapsed < 12*time.Second {
			plateau++
		}
	}
	flatRate := float64(flat) / 5
	plateauRate := float64(plateau) / 5
	if ratio := plateauRate / flatRate; ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("ramp plateau ratio = %f (flat=%d plateau=%d), want ~4", ratio, flat, plateau)
	}
}

func TestNonHomogeneousTracksPattern(t *testing.T) {
	// Rate 1000/s modulated by a spike of 3x in the second half. Count
	// arrivals per half over simulated time.
	nh := NewNonHomogeneous(1000, Spike{Start: 5 * time.Second, Width: 5 * time.Second, Factor: 3}, 3, 11)
	var elapsed time.Duration
	first, second := 0, 0
	for elapsed < 10*time.Second {
		elapsed += nh.Next()
		if elapsed < 5*time.Second {
			first++
		} else if elapsed < 10*time.Second {
			second++
		}
	}
	ratio := float64(second) / float64(first)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("spike ratio = %f (first=%d second=%d), want ~3", ratio, first, second)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0, 5)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 should be drawn about n/H(1000) ~ 13% of the time; rank 99
	// about 100x less.
	if counts[0] < n/10 {
		t.Fatalf("rank 0 drawn %d times, want > %d", counts[0], n/10)
	}
	r := float64(counts[0]) / float64(counts[99]+1)
	if r < 50 || r > 200 {
		t.Fatalf("rank0/rank99 ratio = %f, want ~100", r)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0, 6)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("s=0 not uniform: counts[%d] = %d", i, c)
		}
	}
}

// Property: Zipf draws are always in range for any parameters.
func TestZipfRangeProperty(t *testing.T) {
	f := func(n uint16, s uint8, seed uint64) bool {
		size := int(n%500) + 1
		z := NewZipf(size, float64(s%30)/10, seed)
		for i := 0; i < 100; i++ {
			if d := z.Draw(); d < 0 || d >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkewedUsers(t *testing.T) {
	// skew 80% => top 20% of users issue 90% of requests.
	s := NewSkewedUsers(100, 80, 9)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Draw() < 20 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %f, want ~0.9", frac)
	}
	// skew 0 => uniform.
	u := NewSkewedUsers(100, 0, 10)
	hot = 0
	for i := 0; i < n; i++ {
		if u.Draw() < 20 {
			hot++
		}
	}
	frac = float64(hot) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("uniform hot fraction = %f, want ~0.2", frac)
	}
}

func TestSkewedUsersBounds(t *testing.T) {
	for _, skew := range []float64{-5, 0, 50, 99, 200} {
		s := NewSkewedUsers(10, skew, 1)
		for i := 0; i < 1000; i++ {
			if d := s.Draw(); d < 0 || d >= 10 {
				t.Fatalf("skew %f drew %d", skew, d)
			}
		}
	}
}

func TestRunOpenLoop(t *testing.T) {
	var count atomic.Int64
	res := RunOpenLoop(context.Background(), ConstantRate{Gap: time.Millisecond}, 200*time.Millisecond,
		func(ctx context.Context) error {
			time.Sleep(time.Millisecond)
			count.Add(1)
			return nil
		})
	if res.Completed < 100 || res.Completed > 250 {
		t.Fatalf("completed = %d, want ~200", res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Latency.Count != res.Completed {
		t.Fatal("latency samples != completions")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput = 0")
	}
}

func TestRunOpenLoopCountsErrors(t *testing.T) {
	var i atomic.Int64
	res := RunOpenLoop(context.Background(), ConstantRate{Gap: time.Millisecond}, 100*time.Millisecond,
		func(ctx context.Context) error {
			if i.Add(1)%2 == 0 {
				return context.DeadlineExceeded
			}
			return nil
		})
	if res.Errors == 0 || res.Completed == 0 {
		t.Fatalf("errors=%d completed=%d", res.Errors, res.Completed)
	}
	if res.Issued != res.Errors+res.Completed {
		t.Fatalf("issued %d != errors %d + completed %d", res.Issued, res.Errors, res.Completed)
	}
}

func TestRunOpenLoopRespectsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	RunOpenLoop(ctx, ConstantRate{Gap: time.Millisecond}, 10*time.Second,
		func(ctx context.Context) error { return nil })
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancel not honored")
	}
}

func TestRunClosedLoop(t *testing.T) {
	res := RunClosedLoop(context.Background(), 4, 100*time.Millisecond,
		func(ctx context.Context) error {
			time.Sleep(5 * time.Millisecond)
			return nil
		})
	// 4 workers * up to ~20 iterations each; scheduling noise on a loaded
	// machine can slow the workers, so only assert sane bounds.
	if res.Completed < 4 || res.Completed > 200 {
		t.Fatalf("completed = %d, want within [4, 200]", res.Completed)
	}
	if res.Issued != res.Completed {
		t.Fatal("issued != completed for error-free run")
	}
}
