package loadgen

import (
	"context"
	"sync"
	"time"

	"dsb/internal/metrics"
)

// MixEntry is one tenant in a multi-application workload mix: a named
// request generator and its relative weight in the combined arrival stream.
type MixEntry struct {
	// Name labels the tenant in per-app results ("social", "media", ...).
	Name string
	// Weight is the entry's share of arrivals, relative to the sum of all
	// weights. Non-positive weights are dropped from the mix.
	Weight float64
	// Do issues one request for this tenant; it must be safe for concurrent
	// use.
	Do func(ctx context.Context) error
}

// Mix assigns each arrival of one open-loop process to a tenant by weighted
// draw, modelling several applications sharing a cluster: the *combined*
// offered load follows the arrival process, and every tenant sees a
// binomially-thinned slice of it — exactly how co-located services share a
// front door. Pick is safe for concurrent use.
type Mix struct {
	entries []MixEntry
	cdf     []float64
	src     *Source
}

// NewMix builds a weighted mix over the entries (non-positive weights are
// dropped). It panics when no entry has positive weight — a mix with
// nothing to draw is a composition bug, not a runtime condition.
func NewMix(seed uint64, entries ...MixEntry) *Mix {
	m := &Mix{src: NewSource(seed)}
	var sum float64
	for _, e := range entries {
		if e.Weight <= 0 {
			continue
		}
		sum += e.Weight
		m.entries = append(m.entries, e)
		m.cdf = append(m.cdf, sum)
	}
	if len(m.entries) == 0 {
		panic("loadgen: mix has no entry with positive weight")
	}
	for i := range m.cdf {
		m.cdf[i] /= sum
	}
	return m
}

// Pick draws the tenant for the next arrival.
func (m *Mix) Pick() MixEntry {
	u := m.src.Float64()
	lo, hi := 0, len(m.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.entries[lo]
}

// RunOpenLoopMix fires the combined arrival stream open-loop for the given
// duration, routing each arrival to a tenant by weighted draw, and returns
// one Result per tenant name plus the combined Result under "". Like
// RunOpenLoop, requests never wait on each other, so a slowdown in one
// tenant surfaces as queueing there without thinning the others' offered
// load — the property the mixed-tenant cluster experiment measures.
func RunOpenLoopMix(ctx context.Context, arrivals Arrivals, duration time.Duration, mix *Mix) map[string]Result {
	type tally struct {
		res  Result
		hist *metrics.Histogram
	}
	tallies := make(map[string]*tally, len(mix.entries)+1)
	for _, e := range mix.entries {
		tallies[e.Name] = &tally{hist: metrics.NewHistogram()}
	}
	tallies[""] = &tally{hist: metrics.NewHistogram()}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	<-timer.C
	defer timer.Stop()
	for {
		if time.Since(start) >= duration || ctx.Err() != nil {
			break
		}
		timer.Reset(arrivals.Next())
		select {
		case <-ctx.Done():
		case <-timer.C:
		}
		if ctx.Err() != nil || time.Since(start) >= duration {
			break
		}
		entry := mix.Pick()
		mu.Lock()
		tallies[entry.Name].res.Issued++
		tallies[""].res.Issued++
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			err := entry.Do(ctx)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			for _, tl := range []*tally{tallies[entry.Name], tallies[""]} {
				if err != nil {
					tl.res.Errors++
				} else {
					tl.res.Completed++
					tl.hist.RecordDuration(lat)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	out := make(map[string]Result, len(tallies))
	for name, tl := range tallies {
		tl.res.Elapsed = elapsed
		tl.res.Latency = tl.hist.Snapshot()
		out[name] = tl.res
	}
	return out
}
