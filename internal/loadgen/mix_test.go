package loadgen

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestMixPickProportions draws from a 1:2:7 mix and checks each tenant's
// share converges on its weight.
func TestMixPickProportions(t *testing.T) {
	mix := NewMix(42,
		MixEntry{Name: "a", Weight: 1},
		MixEntry{Name: "b", Weight: 2},
		MixEntry{Name: "c", Weight: 7},
	)
	const draws = 10000
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		counts[mix.Pick().Name]++
	}
	want := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.7}
	for name, frac := range want {
		got := float64(counts[name]) / draws
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("tenant %s share = %.3f, want %.3f ± 0.02", name, got, frac)
		}
	}
}

// TestMixDropsNonPositiveWeights checks zero/negative weights never draw
// and an all-dropped mix panics.
func TestMixDropsNonPositiveWeights(t *testing.T) {
	mix := NewMix(7,
		MixEntry{Name: "live", Weight: 1},
		MixEntry{Name: "off", Weight: 0},
		MixEntry{Name: "neg", Weight: -3},
	)
	for i := 0; i < 100; i++ {
		if got := mix.Pick().Name; got != "live" {
			t.Fatalf("drew dropped tenant %q", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix did not panic")
		}
	}()
	NewMix(7, MixEntry{Name: "off", Weight: 0})
}

// TestRunOpenLoopMix runs a two-tenant mix and checks per-tenant and
// combined accounting line up.
func TestRunOpenLoopMix(t *testing.T) {
	var aCalls, bCalls atomic.Int64
	mix := NewMix(11,
		MixEntry{Name: "a", Weight: 3, Do: func(ctx context.Context) error {
			aCalls.Add(1)
			return nil
		}},
		MixEntry{Name: "b", Weight: 1, Do: func(ctx context.Context) error {
			bCalls.Add(1)
			return errors.New("tenant b always fails")
		}},
	)
	results := RunOpenLoopMix(context.Background(), ConstantRate{Gap: 200 * time.Microsecond}, 100*time.Millisecond, mix)

	a, b, all := results["a"], results["b"], results[""]
	if a.Issued == 0 || b.Issued == 0 {
		t.Fatalf("tenants starved: a=%+v b=%+v", a, b)
	}
	if a.Issued+b.Issued != all.Issued {
		t.Fatalf("combined issued %d != %d + %d", all.Issued, a.Issued, b.Issued)
	}
	if a.Issued != aCalls.Load() || b.Issued != bCalls.Load() {
		t.Fatalf("issued (%d, %d) != calls (%d, %d)", a.Issued, b.Issued, aCalls.Load(), bCalls.Load())
	}
	if a.Errors != 0 || a.Completed != a.Issued {
		t.Fatalf("tenant a = %+v, want all completed", a)
	}
	if b.Completed != 0 || b.Errors != b.Issued {
		t.Fatalf("tenant b = %+v, want all errored", b)
	}
	if all.Completed != a.Completed || all.Errors != b.Errors {
		t.Fatalf("combined = %+v", all)
	}
	if a.Issued < 2*b.Issued {
		t.Fatalf("3:1 weights but issued %d vs %d", a.Issued, b.Issued)
	}
}
