package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative for the counter to remain
// monotone; callers own that invariant.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Meter tracks a rate of events over a sliding window of fixed-size slots.
// It is used for per-service request-rate and utilization accounting.
type Meter struct {
	mu       sync.Mutex
	slotDur  time.Duration
	slots    []int64
	slotBase int64 // slot index of slots[0] in absolute slot numbering
	now      func() time.Time
}

// NewMeter creates a meter covering window, divided into n slots.
// now may be nil, in which case time.Now is used; experiments on virtual
// time inject their own clock.
func NewMeter(window time.Duration, n int, now func() time.Time) *Meter {
	if n <= 0 {
		n = 10
	}
	if now == nil {
		now = time.Now
	}
	return &Meter{slotDur: window / time.Duration(n), slots: make([]int64, n), now: now}
}

func (m *Meter) slotOf(t time.Time) int64 {
	return t.UnixNano() / int64(m.slotDur)
}

// advance rotates the window so that slot abs is representable.
func (m *Meter) advance(abs int64) {
	if abs < m.slotBase {
		return // stale event; attribute to the oldest slot below
	}
	maxBase := abs - int64(len(m.slots)) + 1
	if maxBase <= m.slotBase {
		return
	}
	shift := maxBase - m.slotBase
	if shift >= int64(len(m.slots)) {
		for i := range m.slots {
			m.slots[i] = 0
		}
	} else {
		copy(m.slots, m.slots[shift:])
		for i := len(m.slots) - int(shift); i < len(m.slots); i++ {
			m.slots[i] = 0
		}
	}
	m.slotBase = maxBase
}

// Mark records n events at the current time.
func (m *Meter) Mark(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	abs := m.slotOf(m.now())
	m.advance(abs)
	idx := abs - m.slotBase
	if idx < 0 {
		idx = 0
	}
	m.slots[idx] += n
}

// Rate returns events per second over the window ending now.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(m.slotOf(m.now()))
	var total int64
	for _, s := range m.slots {
		total += s
	}
	window := m.slotDur * time.Duration(len(m.slots))
	if window <= 0 {
		return 0
	}
	return float64(total) / window.Seconds()
}

// Registry is a named collection of histograms, used as the per-process
// metrics root. Lookups create on first use.
type Registry struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Names returns the registered histogram names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls fn for every histogram in name order.
func (r *Registry) Each(fn func(name string, h *Histogram)) {
	for _, n := range r.Names() {
		fn(n, r.Histogram(n))
	}
}
