package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("Value = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestMeterRate(t *testing.T) {
	// Inject a controllable clock.
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	m := NewMeter(time.Second, 10, clock)
	for i := 0; i < 100; i++ {
		m.Mark(1)
	}
	got := m.Rate()
	if got < 99 || got > 101 {
		t.Fatalf("Rate = %f, want ~100", got)
	}
	// Advance past the window: rate decays to zero.
	now = now.Add(2 * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after window = %f, want 0", got)
	}
}

func TestMeterRotation(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	m := NewMeter(time.Second, 10, clock)
	m.Mark(10)
	now = now.Add(500 * time.Millisecond)
	m.Mark(10)
	// Both marks inside the 1s window.
	if got := m.Rate(); got < 19 || got > 21 {
		t.Fatalf("Rate = %f, want ~20", got)
	}
	// Slide so only the second mark remains.
	now = now.Add(700 * time.Millisecond)
	got := m.Rate()
	if got < 9 || got > 11 {
		t.Fatalf("Rate after slide = %f, want ~10", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("b")
	h2 := r.Histogram("a")
	if r.Histogram("b") != h1 {
		t.Fatal("Histogram not memoized")
	}
	h1.Record(1)
	h2.Record(2)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	var visited []string
	r.Each(func(name string, h *Histogram) { visited = append(visited, name) })
	if len(visited) != 2 || visited[0] != "a" {
		t.Fatalf("Each visited %v", visited)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("lat")
	if s.Last() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(0, 1)
	s.Add(time.Second, 3)
	s.Add(2*time.Second, 2)
	if got := s.Last(); got != 2 {
		t.Errorf("Last = %f", got)
	}
	if got := s.Max(); got != 3 {
		t.Errorf("Max = %f", got)
	}
	if got := s.Mean(); got != 2 {
		t.Errorf("Mean = %f", got)
	}
	if got := s.At(1500 * time.Millisecond); got != 3 {
		t.Errorf("At(1.5s) = %f, want 3", got)
	}
	if got := s.At(-time.Second); got != 0 {
		t.Errorf("At(-1s) = %f, want 0", got)
	}
	if sl := s.Sparkline(10); len([]rune(sl)) != 10 {
		t.Errorf("Sparkline width = %d", len([]rune(sl)))
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
