// Package metrics provides the measurement primitives used throughout the
// suite: log-bucketed latency histograms with percentile queries, atomic
// counters and gauges, sliding windows for utilization tracking, and time
// series used by the experiment drivers to record timelines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// bucketsPerOctave controls histogram resolution. With 16 sub-buckets per
// power of two the worst-case quantization error is about 6%, comparable to
// HdrHistogram at 2 significant figures, while keeping the bucket array
// small enough to allocate per-service without concern.
const bucketsPerOctave = 16

// maxOctaves covers values from 1ns to ~292 years, i.e. any time.Duration.
const maxOctaves = 64

const numBuckets = maxOctaves * bucketsPerOctave

// Histogram is a log-bucketed histogram of non-negative int64 values,
// typically nanosecond latencies. The zero value is not usable; use
// NewHistogram. All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	counts  []uint32
	count   int64
	sum     int64
	min     int64
	max     int64
	dropped int64 // negative values rejected by Record
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint32, numBuckets),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a value to its bucket. Values 0 and 1 share the first
// octave's first buckets; the mapping is monotone in v.
func bucketIndex(v int64) int {
	if v < 2 {
		return int(v) // 0 -> 0, 1 -> 1
	}
	// The octave is floor(log2(v)); position within the octave comes from
	// the next log2(bucketsPerOctave) bits below the leading bit.
	octave := 63 - leadingZeros64(uint64(v))
	shift := octave - 4 // log2(bucketsPerOctave) == 4
	var sub int64
	if shift > 0 {
		sub = (v >> uint(shift)) & (bucketsPerOctave - 1)
	} else {
		sub = (v << uint(-shift)) & (bucketsPerOctave - 1)
	}
	idx := octave*bucketsPerOctave + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value that maps into bucket idx; it is the
// inverse of bucketIndex on bucket lower bounds.
func bucketLow(idx int) int64 {
	if idx < 2 {
		return int64(idx)
	}
	octave := idx / bucketsPerOctave
	sub := idx % bucketsPerOctave
	shift := octave - 4
	base := int64(1) << uint(octave)
	if shift > 0 {
		return base + int64(sub)<<uint(shift)
	}
	return base + int64(sub)>>uint(-shift)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds a value to the histogram. Negative values are counted as
// dropped rather than recorded, so a buggy caller is visible in Snapshot
// instead of corrupting percentiles.
func (h *Histogram) Record(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v < 0 {
		h.dropped++
		return
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration records a latency sample.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean of recorded values, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the value at quantile p in [0,100]. The result is the
// lower bound of the bucket containing the p-th sample, clamped to the
// recorded min/max so exact values are returned for the extremes. Returns 0
// for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *Histogram) percentileLocked(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += int64(c)
		if seen >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// PercentileDuration is Percentile for latency histograms.
func (h *Histogram) PercentileDuration(p float64) time.Duration {
	return time.Duration(h.Percentile(p))
}

// Merge adds all samples of other into h. other is left unchanged.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	oc := make([]uint32, numBuckets)
	copy(oc, other.counts)
	ocount, osum, omin, omax, odropped := other.count, other.sum, other.min, other.max, other.dropped
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range oc {
		h.counts[i] += c
	}
	h.count += ocount
	h.sum += osum
	h.dropped += odropped
	if ocount > 0 {
		if omin < h.min {
			h.min = omin
		}
		if omax > h.max {
			h.max = omax
		}
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.max, h.dropped = 0, 0, 0, 0
	h.min = math.MaxInt64
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count   int64
	Dropped int64
	Sum     int64
	Min     int64
	Max     int64
	Mean    float64
	P50     int64
	P90     int64
	P95     int64
	P99     int64
	P999    int64
}

// Snapshot returns a consistent point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, Dropped: h.dropped, Sum: h.sum, Max: h.max}
	if h.count > 0 {
		s.Min = h.min
		s.Mean = float64(h.sum) / float64(h.count)
		s.P50 = h.percentileLocked(50)
		s.P90 = h.percentileLocked(90)
		s.P95 = h.percentileLocked(95)
		s.P99 = h.percentileLocked(99)
		s.P999 = h.percentileLocked(99.9)
	}
	return s
}

// String renders the snapshot with durations, the common case.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, time.Duration(s.Mean), time.Duration(s.P50),
		time.Duration(s.P95), time.Duration(s.P99), time.Duration(s.Max))
}

// Quantiles computes exact quantiles over a small sample slice; used by
// tests to validate histogram accuracy and by experiments that keep raw
// samples. ps are in [0,100]. The input is not modified.
func Quantiles(samples []int64, ps ...float64) []int64 {
	out := make([]int64, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}
