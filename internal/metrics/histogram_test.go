package metrics

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if got := h.Percentile(99); got != 0 {
		t.Fatalf("Percentile(99) on empty = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("Mean on empty = %f, want 0", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("Min on empty = %d, want 0", got)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(12345)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got > 12345 || got < 12345*15/16 {
			t.Errorf("Percentile(%v) = %d, want ~12345", p, got)
		}
	}
	if got := h.Min(); got != 12345 {
		t.Errorf("Min = %d, want 12345", got)
	}
	if got := h.Max(); got != 12345 {
		t.Errorf("Max = %d, want 12345", got)
	}
}

func TestHistogramNegativeDropped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	h.Record(10)
	s := h.Snapshot()
	if s.Count != 1 || s.Dropped != 1 {
		t.Fatalf("got count=%d dropped=%d, want 1,1", s.Count, s.Dropped)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	// Exhaustive over small values, then exponentially sampled.
	for v := int64(0); v < 1<<20; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	for v := int64(1 << 20); v > 0 && v < math.MaxInt64/3; v = v*3 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

func TestBucketLowInvertsIndex(t *testing.T) {
	// For any value v, bucketLow(bucketIndex(v)) must be a value <= v that
	// falls in the same bucket. (Not every index is in the image of
	// bucketIndex: octaves below 16 cannot fill all 16 sub-buckets.)
	check := func(v int64) {
		idx := bucketIndex(v)
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(%d) = %d > v = %d", idx, low, v)
		}
		if got := bucketIndex(low); got != idx {
			t.Fatalf("bucketIndex(bucketLow(bucketIndex(%d))) = %d, want %d", v, got, idx)
		}
	}
	for v := int64(0); v < 1<<16; v++ {
		check(v)
	}
	for v := int64(1 << 16); v > 0 && v < math.MaxInt64/3; v = v*3 + 7 {
		check(v)
	}
}

// TestHistogramQuantileAccuracy checks that histogram percentiles are within
// one bucket (6.25% relative error) of exact quantiles for random data.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	h := NewHistogram()
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform values spanning 1us..1s in nanoseconds.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3)
		h.Record(v)
		samples = append(samples, v)
	}
	ps := []float64{50, 90, 95, 99, 99.9}
	exact := Quantiles(samples, ps...)
	for i, p := range ps {
		got := h.Percentile(p)
		lo := float64(exact[i]) * (1 - 1.0/bucketsPerOctave - 0.001)
		hi := float64(exact[i]) * (1 + 1.0/bucketsPerOctave + 0.001)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("P%v = %d, exact %d (allowed [%f, %f])", p, got, exact[i], lo, hi)
		}
	}
}

// Property: percentiles are monotone in p, and bounded by [Min, Max].
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			if cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two histograms preserves count and sum, and the merged
// max/min are the extremes of the parts.
func TestHistogramMergeProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		ha, hb := NewHistogram(), NewHistogram()
		for _, v := range a {
			ha.Record(int64(v))
		}
		for _, v := range b {
			hb.Record(int64(v))
		}
		wantCount := ha.Count() + hb.Count()
		wantSum := ha.Sum() + hb.Sum()
		wantMax := ha.Max()
		if hb.Max() > wantMax {
			wantMax = hb.Max()
		}
		ha.Merge(hb)
		return ha.Count() == wantCount && ha.Sum() == wantSum && ha.Max() == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("Reset did not clear: %+v", h.Snapshot())
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("post-reset record broken: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	s := h.Snapshot().String()
	if s == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestQuantilesExact(t *testing.T) {
	samples := []int64{5, 1, 3, 2, 4}
	got := Quantiles(samples, 0, 50, 100)
	want := []int64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Quantiles modified its input")
	}
	if got := Quantiles(nil, 50); got[0] != 0 {
		t.Errorf("Quantiles(nil) = %d, want 0", got[0])
	}
}
