package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Point is one (time, value) observation in a Series.
type Point struct {
	T time.Duration // offset from the start of the experiment
	V float64
}

// Series is an append-only timeline of observations, used by experiment
// drivers to record e.g. tail latency or utilization over simulated time.
// Series is not safe for concurrent use; experiment drivers are
// single-threaded over virtual time.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Max returns the largest value, or 0 if empty.
func (s *Series) Max() float64 {
	var max float64
	for i, p := range s.Points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the mean value, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// At returns the value of the last point at or before t, or 0 if none.
func (s *Series) At(t time.Duration) float64 {
	var v float64
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Sparkline renders the series as a fixed-width unicode sparkline, which the
// experiment tables use to show timeline shape in terminal output.
func (s *Series) Sparkline(width int) string {
	if len(s.Points) == 0 || width <= 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max := s.Points[0].V, s.Points[0].V
	for _, p := range s.Points {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	span := max - min
	var b strings.Builder
	for i := 0; i < width; i++ {
		idx := i * len(s.Points) / width
		v := s.Points[idx].V
		var level int
		if span > 0 {
			level = int((v - min) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[level])
	}
	return b.String()
}

// String summarizes the series.
func (s *Series) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.2f max=%.2f", s.Name, len(s.Points), s.Mean(), s.Max())
}
