package metrics

import (
	"sync"
	"time"
)

// Windowed is a histogram over a sliding time window: samples land in
// fixed-duration slots and Snapshot merges the live slots, so old samples
// age out as the window rotates. The control plane's load reports use it
// for "recent p99" — a plain Histogram would average a load spike away
// against minutes of idle history, exactly what an autoscaler must not do.
type Windowed struct {
	mu       sync.Mutex
	slotDur  time.Duration
	slots    []*Histogram
	slotBase int64 // slot index of slots[0] in absolute slot numbering
	now      func() time.Time
}

// NewWindowed creates a windowed histogram covering window, divided into n
// slots (coarser slots mean cheaper rotation, at the cost of up to one
// slot's worth of stale samples). now may be nil, in which case time.Now is
// used; tests inject their own clock.
func NewWindowed(window time.Duration, n int, now func() time.Time) *Windowed {
	if n <= 0 {
		n = 4
	}
	if now == nil {
		now = time.Now
	}
	slots := make([]*Histogram, n)
	for i := range slots {
		slots[i] = NewHistogram()
	}
	return &Windowed{slotDur: window / time.Duration(n), slots: slots, now: now}
}

func (w *Windowed) slotOf(t time.Time) int64 {
	return t.UnixNano() / int64(w.slotDur)
}

// advance rotates the window so that slot abs is representable, recycling
// expired slot histograms instead of reallocating them.
func (w *Windowed) advance(abs int64) {
	if abs < w.slotBase {
		return // stale sample; attribute to the oldest slot below
	}
	maxBase := abs - int64(len(w.slots)) + 1
	if maxBase <= w.slotBase {
		return
	}
	shift := maxBase - w.slotBase
	if shift >= int64(len(w.slots)) {
		for _, h := range w.slots {
			h.Reset()
		}
	} else {
		expired := make([]*Histogram, shift)
		copy(expired, w.slots[:shift])
		copy(w.slots, w.slots[shift:])
		for i, h := range expired {
			h.Reset()
			w.slots[len(w.slots)-int(shift)+i] = h
		}
	}
	w.slotBase = maxBase
}

// Record adds a sample at the current time.
func (w *Windowed) Record(v int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	abs := w.slotOf(w.now())
	w.advance(abs)
	idx := abs - w.slotBase
	if idx < 0 {
		idx = 0
	}
	w.slots[idx].Record(v)
}

// RecordDuration records a latency sample.
func (w *Windowed) RecordDuration(d time.Duration) { w.Record(int64(d)) }

// Snapshot merges the live slots into one point-in-time summary of the
// window ending now.
func (w *Windowed) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(w.slotOf(w.now()))
	merged := NewHistogram()
	for _, h := range w.slots {
		merged.Merge(h)
	}
	return merged.Snapshot()
}
