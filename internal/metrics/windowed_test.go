package metrics

import (
	"testing"
	"time"
)

func TestWindowedAgesOutOldSamples(t *testing.T) {
	now := time.Unix(100, 0)
	w := NewWindowed(time.Second, 4, func() time.Time { return now })

	for i := 0; i < 100; i++ {
		w.Record(int64(50 * time.Millisecond))
	}
	s := w.Snapshot()
	if s.Count != 100 || time.Duration(s.P99) != 50*time.Millisecond {
		t.Fatalf("initial snapshot = %+v", s)
	}

	// Half a window later the spike is still visible...
	now = now.Add(500 * time.Millisecond)
	w.Record(int64(time.Millisecond))
	if s := w.Snapshot(); s.Count != 101 {
		t.Fatalf("mid-window count = %d, want 101", s.Count)
	}

	// ...but a full window after the spike only the recent sample remains.
	now = now.Add(600 * time.Millisecond)
	s = w.Snapshot()
	if s.Count != 1 {
		t.Fatalf("post-window count = %d, want 1 (spike aged out)", s.Count)
	}
	if got := time.Duration(s.P99); got > 2*time.Millisecond {
		t.Fatalf("p99 after rotation = %v, still polluted by the old spike", got)
	}
}

func TestWindowedFullRotationResets(t *testing.T) {
	now := time.Unix(0, 0)
	w := NewWindowed(time.Second, 4, func() time.Time { return now })
	w.Record(10)
	now = now.Add(10 * time.Second) // far beyond the window
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("count after full rotation = %d, want 0", s.Count)
	}
	w.Record(7)
	if s := w.Snapshot(); s.Count != 1 || s.Max != 7 {
		t.Fatalf("snapshot after reuse = %+v", s)
	}
}
