package mq

import "sync"

// Cluster is the composition root's white-box handle over the broker tier:
// the local *Broker instances behind the RPC facade, in boot order. Tests
// and drain loops use it where they previously held the single *Broker —
// aggregate lag, DLQ drains — without caring whether the tier is one
// instance or shards×replicas. Instances register at boot (the stack's
// shard-replica factory adds each broker as it is created), so the handle
// can be returned before Boot runs.
type Cluster struct {
	mu      sync.Mutex
	brokers []*Broker
}

// NewCluster builds a handle over the given brokers (more may be added).
func NewCluster(brokers ...*Broker) *Cluster {
	return &Cluster{brokers: brokers}
}

// Add registers a broker instance; called by the stack's boot factory.
func (c *Cluster) Add(b *Broker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.brokers = append(c.brokers, b)
}

// Brokers snapshots the local instances in boot order.
func (c *Cluster) Brokers() []*Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Broker(nil), c.brokers...)
}

// GroupLag sums one group's backlog across every local broker instance.
// Mirror copies count until their settles land, so the sum reaches zero
// exactly when the group's work is done *and* fully retired tier-wide —
// the convergence signal drain loops poll. (A crashed broker's frozen
// backlog never retires; drain loops around crash experiments probe
// delivered work directly instead.)
func (c *Cluster) GroupLag(topic, group string) int64 {
	var sum int64
	for _, b := range c.Brokers() {
		sum += b.Topic(topic).GroupLag(group)
	}
	return sum
}

// QueueLag is GroupLag for a plain named queue.
func (c *Cluster) QueueLag(name string) int64 {
	var sum int64
	for _, b := range c.Brokers() {
		sum += b.Queue(name).Stats().Lag()
	}
	return sum
}

// GroupStats aggregates one group queue's stats across the local instances —
// lifetime counters sum, point-in-time gauges sum, oldest age maxes.
func (c *Cluster) GroupStats(topic, group string) Stats {
	var out Stats
	for _, b := range c.Brokers() {
		s := b.Topic(topic).Subscribe(group).Stats()
		out.Queued += s.Queued
		out.InFlight += s.InFlight
		out.Published += s.Published
		out.Acked += s.Acked
		out.Redelivered += s.Redelivered
		out.DeadLettered += s.DeadLettered
		if s.OldestAge > out.OldestAge {
			out.OldestAge = s.OldestAge
		}
	}
	return out
}
