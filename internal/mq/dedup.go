package mq

import "sync"

// DefaultDedupCap bounds a Dedup's memory when Cap is unset. Matched to the
// broker's tombstone window: a redelivery arriving after eviction is simply
// re-processed, so consumers pair Dedup with an idempotent write (unique
// list prepend, set-semantics index) as the backstop.
const DefaultDedupCap = 4096

// Dedup is a bounded seen-key set (FIFO eviction) — the consumer half of
// idempotent consumption. A consumer checks Has before delivering and calls
// Mark only after a successful delivery, so a redelivered key is settled
// without repeating its side effects while a failed attempt stays
// re-deliverable.
//
// The zero value is ready to use. Keys dedup within one consumer replica
// only; at-least-once delivery across replicas is absorbed by the
// idempotent write behind it.
type Dedup struct {
	// Cap bounds the set (default DefaultDedupCap).
	Cap int

	mu    sync.Mutex
	seen  map[string]struct{}
	order []string
}

// Has reports whether key was already marked processed. Unkeyed messages
// (key == "") have no identity to dedup on and are never "seen".
func (d *Dedup) Has(key string) bool {
	if key == "" {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.seen[key]
	return ok
}

// Mark records key as processed, evicting the oldest entry past Cap.
func (d *Dedup) Mark(key string) {
	if key == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen == nil {
		d.seen = make(map[string]struct{})
	}
	if _, ok := d.seen[key]; ok {
		return
	}
	cap := d.Cap
	if cap <= 0 {
		cap = DefaultDedupCap
	}
	d.seen[key] = struct{}{}
	d.order = append(d.order, key)
	if len(d.order) > cap {
		delete(d.seen, d.order[0])
		d.order = d.order[1:]
	}
}
