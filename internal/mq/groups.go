package mq

import (
	"sort"
	"sync"
)

// Topic is a named pub/sub channel with consumer-group semantics: every
// subscribed group receives each published message exactly once (queue
// semantics within the group — its members share the partition), mirroring
// how Kafka consumer groups or RabbitMQ exchange+queue bindings are used
// behind DeathStarBench's async paths.
//
// Groups must subscribe before the publishes they care about: a publish
// fans out only to the groups subscribed at that moment, and a publish with
// zero subscribers is dropped. Application stacks therefore subscribe their
// groups in the broker's boot hook, before any producer starts.
type Topic struct {
	b    *Broker
	name string

	mu     sync.Mutex
	cfg    QueueConfig
	groups map[string]*Queue
}

// Topic returns the named topic, creating it if needed.
func (b *Broker) Topic(name string) *Topic {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		t = &Topic{b: b, name: name, groups: make(map[string]*Queue)}
		b.topics[name] = t
	}
	return t
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Configure sets the per-group queue bounds; it applies to groups already
// subscribed and to future subscriptions.
func (t *Topic) Configure(cfg QueueConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg = cfg
	for group := range t.groups {
		t.groups[group] = t.b.Configure(t.groupQueueName(group), cfg)
	}
}

// Subscribe registers a consumer group and returns its queue. Subscribing
// twice is idempotent: members of the same group share one queue, which is
// exactly what makes them share the partition.
func (t *Topic) Subscribe(group string) *Queue {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.groups[group]
	if !ok {
		q = t.b.Configure(t.groupQueueName(group), t.cfg)
		t.groups[group] = q
	}
	return q
}

// groupQueueName makes group queues addressable as plain broker queues
// ("timeline@fanout"), which is how the RPC service and stats find them.
func (t *Topic) groupQueueName(group string) string { return t.name + "@" + group }

// Groups returns the subscribed group names, sorted.
func (t *Topic) Groups() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.groups))
	for g := range t.groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// Publish fans the message out to every subscribed group's queue and
// returns the ID assigned by the first group (IDs are per-queue). If any
// group's queue sheds on MaxDepth the error is returned, but groups already
// appended keep the message — at-least-once delivery, never silent loss.
func (t *Topic) Publish(body []byte) (uint64, error) {
	return t.PublishKey("", body)
}

// PublishKey is Publish with a publisher-assigned message key; replicated
// publishes use it so retries against the same broker are idempotent per
// group (see Queue.PublishKey).
func (t *Topic) PublishKey(key string, body []byte) (uint64, error) {
	var first uint64
	for i, q := range t.groupQueues() {
		id, err := q.PublishKey(key, body)
		if err != nil {
			return first, err
		}
		if i == 0 {
			first = id
		}
	}
	return first, nil
}

// Insert mirrors an already-admitted keyed message into every subscribed
// group's queue (see Queue.Insert: idempotent, tombstone-aware, bypasses
// MaxDepth). Reports how many group queues actually accepted a copy.
func (t *Topic) Insert(key string, body []byte) int {
	n := 0
	for _, q := range t.groupQueues() {
		if q.Insert(key, body) {
			n++
		}
	}
	return n
}

func (t *Topic) groupQueues() []*Queue {
	t.mu.Lock()
	defer t.mu.Unlock()
	qs := make([]*Queue, 0, len(t.groups))
	for _, q := range t.groups {
		qs = append(qs, q)
	}
	return qs
}

// GroupLag reports one group's backlog (queued + in-flight): the signal
// lag-driven autoscaling watches.
func (t *Topic) GroupLag(group string) int64 {
	t.mu.Lock()
	q, ok := t.groups[group]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return q.Stats().Lag()
}

// Lag reports the worst backlog across all groups.
func (t *Topic) Lag() int64 {
	t.mu.Lock()
	qs := make([]*Queue, 0, len(t.groups))
	for _, q := range t.groups {
		qs = append(qs, q)
	}
	t.mu.Unlock()
	var max int64
	for _, q := range qs {
		if l := q.Stats().Lag(); l > max {
			max = l
		}
	}
	return max
}
