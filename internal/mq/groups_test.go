package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dsb/internal/rpc"
)

// TestPoisonMessageDeadLetters is the head-of-line regression test: a
// message whose consumer always nacks must stop recycling to the front
// after MaxAttempts and move to the DLQ, letting the messages behind it
// flow.
func TestPoisonMessageDeadLetters(t *testing.T) {
	b := NewBroker()
	q := b.Configure("orders", QueueConfig{MaxAttempts: 3})
	q.Publish([]byte("poison")) //nolint:errcheck
	q.Publish([]byte("good"))   //nolint:errcheck

	// The poison message is delivered and nacked MaxAttempts times...
	for attempt := 1; attempt <= 3; attempt++ {
		msg, ok := q.TryReceive(time.Minute)
		if !ok || string(msg.Body) != "poison" {
			t.Fatalf("attempt %d: got %q, ok=%v", attempt, msg.Body, ok)
		}
		if msg.Attempts != attempt {
			t.Fatalf("attempt %d: Attempts = %d", attempt, msg.Attempts)
		}
		if !q.Nack(msg.ID) {
			t.Fatalf("attempt %d: Nack failed", attempt)
		}
	}
	// ...after which the healthy message behind it is deliverable.
	msg, ok := q.TryReceive(time.Minute)
	if !ok || string(msg.Body) != "good" {
		t.Fatalf("after dead-letter, head of queue = %q, ok=%v — poison still blocking", msg.Body, ok)
	}
	q.Ack(msg.ID)

	dlq := b.Queue("orders" + DeadLetterSuffix)
	dead, ok := dlq.TryReceive(time.Minute)
	if !ok || string(dead.Body) != "poison" {
		t.Fatalf("DLQ head = %q, ok=%v", dead.Body, ok)
	}
	s := q.Stats()
	if s.DeadLettered != 1 {
		t.Fatalf("DeadLettered = %d, want 1", s.DeadLettered)
	}
}

// TestLeaseExpiryDeadLetters covers the other poison path: a consumer that
// crashes (never settles) burns attempts via lease expiry, and the message
// dead-letters instead of recycling forever.
func TestLeaseExpiryDeadLetters(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBroker(WithClock(func() time.Time { return now }))
	q := b.Configure("q", QueueConfig{MaxAttempts: 2})
	q.Publish([]byte("m")) //nolint:errcheck
	for attempt := 1; attempt <= 2; attempt++ {
		msg, ok := q.TryReceive(time.Second)
		if !ok || msg.Attempts != attempt {
			t.Fatalf("attempt %d: %+v ok=%v", attempt, msg, ok)
		}
		now = now.Add(2 * time.Second) // lease expires, consumer never acks
	}
	if _, ok := q.TryReceive(time.Second); ok {
		t.Fatal("exhausted message redelivered instead of dead-lettered")
	}
	if got := b.Queue("q" + DeadLetterSuffix).Len(); got != 1 {
		t.Fatalf("DLQ Len = %d, want 1", got)
	}
}

func TestPublishShedsAtMaxDepth(t *testing.T) {
	b := NewBroker()
	q := b.Configure("q", QueueConfig{MaxDepth: 3})
	for i := 0; i < 3; i++ {
		if _, err := q.Publish([]byte{byte(i)}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	_, err := q.Publish([]byte("over"))
	if rpc.ErrorCode(err) != rpc.CodeOverloaded {
		t.Fatalf("publish beyond MaxDepth = %v, want CodeOverloaded", err)
	}
	// In-flight still counts against depth: lease one out and retry.
	msg, _ := q.TryReceive(time.Minute)
	if _, err := q.Publish([]byte("still-over")); rpc.ErrorCode(err) != rpc.CodeOverloaded {
		t.Fatalf("publish with depth held in-flight = %v, want CodeOverloaded", err)
	}
	// Only an ack (not a mere lease) frees depth for a new publish.
	q.Ack(msg.ID)
	if _, err := q.Publish([]byte("fits")); err != nil {
		t.Fatalf("publish after ack: %v", err)
	}
}

func TestStatsCountsAndOldestAge(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBroker(WithClock(func() time.Time { return now }))
	q := b.Queue("q")
	q.Publish([]byte("a")) //nolint:errcheck
	now = now.Add(3 * time.Second)
	q.Publish([]byte("b")) //nolint:errcheck
	msg, _ := q.TryReceive(time.Minute)
	s := q.Stats()
	if s.Queued != 1 || s.InFlight != 1 || s.Published != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Lag() != 2 {
		t.Fatalf("Lag = %d, want 2 — in-flight must count toward backlog", s.Lag())
	}
	// "b" was published at t+3s and is the only queued item; its age is 0
	// until the clock moves.
	if s.OldestAge != 0 {
		t.Fatalf("OldestAge = %v, want 0", s.OldestAge)
	}
	now = now.Add(5 * time.Second)
	if got := q.Stats().OldestAge; got != 5*time.Second {
		t.Fatalf("OldestAge = %v, want 5s", got)
	}
	q.Nack(msg.ID)
	q2, _ := q.TryReceive(time.Minute)
	q.Ack(q2.ID)
	s = q.Stats()
	if s.Redelivered != 1 || s.Acked != 1 {
		t.Fatalf("Redelivered/Acked = %d/%d, want 1/1", s.Redelivered, s.Acked)
	}
}

// TestEveryGroupGetsEveryMessage pins topic fan-out: each subscribed group
// sees each publish exactly once, and members within a group split the
// stream rather than duplicating it.
func TestEveryGroupGetsEveryMessage(t *testing.T) {
	b := NewBroker()
	topic := b.Topic("events")
	topic.Subscribe("indexer")
	topic.Subscribe("mailer")
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := topic.Publish([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for _, group := range topic.Groups() {
		q := topic.Subscribe(group)
		// Two members of the group drain it concurrently.
		seen := make(map[string]int)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for m := 0; m < 2; m++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					msg, ok := q.TryReceive(time.Minute)
					if !ok {
						return
					}
					mu.Lock()
					seen[string(msg.Body)]++
					mu.Unlock()
					q.Ack(msg.ID)
				}
			}()
		}
		wg.Wait()
		if len(seen) != n {
			t.Fatalf("group %s saw %d distinct messages, want %d", group, len(seen), n)
		}
		for body, count := range seen {
			if count != 1 {
				t.Fatalf("group %s saw %s %d times", group, body, count)
			}
		}
	}
}

func TestPublishWithNoGroupsDrops(t *testing.T) {
	b := NewBroker()
	if _, err := b.Topic("empty").Publish([]byte("x")); err != nil {
		t.Fatalf("publish to subscriber-less topic: %v", err)
	}
	b.Topic("empty").Subscribe("late")
	if _, ok := b.Topic("empty").Subscribe("late").TryReceive(time.Minute); ok {
		t.Fatal("late subscriber received a pre-subscription publish")
	}
}

// TestGroupRedeliveryOnLeaseExpiry is the acceptance test for consumer-group
// at-least-once delivery: a group member that takes a message and dies
// (lease expires, never settles) must see the broker redeliver that message
// to a surviving member of the same group.
func TestGroupRedeliveryOnLeaseExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBroker(WithClock(func() time.Time { return now }))
	topic := b.Topic("orders")
	topic.Subscribe("commit")
	if _, err := topic.Publish([]byte("order-7")); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Member A of group "commit" takes the message and crashes.
	memberA := topic.Subscribe("commit")
	msg, ok := memberA.TryReceive(time.Second)
	if !ok || msg.Attempts != 1 {
		t.Fatalf("member A receive = %+v ok=%v", msg, ok)
	}
	if topic.GroupLag("commit") != 1 {
		t.Fatalf("lag with message in flight = %d, want 1", topic.GroupLag("commit"))
	}

	// Before the lease expires, member B sees nothing: the partition is
	// shared, not duplicated.
	memberB := topic.Subscribe("commit")
	if _, ok := memberB.TryReceive(time.Second); ok {
		t.Fatal("member B received a message member A holds a live lease on")
	}

	now = now.Add(2 * time.Second)
	again, ok := memberB.TryReceive(time.Second)
	if !ok || string(again.Body) != "order-7" || again.Attempts != 2 {
		t.Fatalf("member B redelivery = %+v ok=%v", again, ok)
	}
	if !memberB.Ack(again.ID) {
		t.Fatal("member B ack failed")
	}
	if got := topic.GroupLag("commit"); got != 0 {
		t.Fatalf("lag after settle = %d, want 0", got)
	}
	if s := memberB.Stats(); s.Redelivered != 1 {
		t.Fatalf("Redelivered = %d, want 1", s.Redelivered)
	}
}

func TestTopicConfigureAppliesToGroups(t *testing.T) {
	b := NewBroker()
	topic := b.Topic("t")
	topic.Subscribe("early")
	topic.Configure(QueueConfig{MaxDepth: 1})
	topic.Subscribe("late")
	if _, err := topic.Publish([]byte("one")); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	_, err := topic.Publish([]byte("two"))
	if rpc.ErrorCode(err) != rpc.CodeOverloaded {
		t.Fatalf("publish beyond group MaxDepth = %v, want CodeOverloaded", err)
	}
	var coded *rpc.Error
	if !errors.As(err, &coded) {
		t.Fatalf("error is not an rpc coded error: %v", err)
	}
}

func TestReceiveWait(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	start := time.Now()
	if _, ok := q.ReceiveWait(time.Minute, 30*time.Millisecond); ok {
		t.Fatal("ReceiveWait on empty queue returned a message")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("ReceiveWait returned after %v, did not park", elapsed)
	}
	// A publish during the park wakes the receiver early.
	got := make(chan Message, 1)
	go func() {
		if msg, ok := q.ReceiveWait(time.Minute, 5*time.Second); ok {
			got <- msg
		}
	}()
	time.Sleep(20 * time.Millisecond)
	q.Publish([]byte("wake")) //nolint:errcheck
	select {
	case msg := <-got:
		if string(msg.Body) != "wake" {
			t.Fatalf("got %q", msg.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked ReceiveWait never woke on publish")
	}
}
