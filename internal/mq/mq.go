// Package mq implements the suite's message queue — the role RabbitMQ
// plays as the orderQueue behind queueMaster in the E-commerce service.
// Queues are named, FIFO, and support consumer acknowledgement with
// redelivery: a message dequeued but not acked within its lease returns to
// the front of the queue, so a crashed worker never loses an order. This
// serialization point is exactly the scalability constraint Section 7 of
// the paper attributes to queueMaster.
//
// Beyond plain queues the broker offers topics with consumer groups (see
// groups.go): every subscribed group receives each published message once,
// and members of a group share the partition. A broker can also be served
// over RPC (see service.go) so producer, broker, and consumers run as
// separate tiers, which is how the e-commerce and social-network apps use
// it for async order commit and timeline fan-out.
package mq

import (
	"sync"
	"time"

	"dsb/internal/rpc"
)

// DeadLetterSuffix names the queue that collects messages exhausted by
// MaxAttempts: queue "orders" dead-letters into "orders.dlq".
const DeadLetterSuffix = ".dlq"

// Message is one queued item.
type Message struct {
	// ID is assigned by the broker, monotonically increasing per queue.
	ID uint64
	// Body is the payload.
	Body []byte
	// Attempts counts deliveries, 1 on first receive.
	Attempts int
}

// QueueConfig bounds a queue's retry and depth behavior. The zero value
// means unbounded: no dead-lettering, no depth limit.
type QueueConfig struct {
	// MaxAttempts caps deliveries per message. A message that is nacked or
	// lease-expires after its MaxAttempts'th delivery moves to the
	// dead-letter queue instead of returning to the front — otherwise one
	// poison message would block the head of a FIFO queue forever.
	MaxAttempts int
	// MaxDepth bounds queued+in-flight messages; Publish sheds with
	// CodeOverloaded beyond it. Counting in-flight matters: a queue with
	// 0 queued and 256 leased is not empty, it is saturated.
	MaxDepth int
}

// Stats is a point-in-time snapshot of one queue, the backlog signal the
// control plane's lag-driven autoscaling consumes.
type Stats struct {
	// Queued is the number of deliverable messages (excludes in-flight).
	Queued int
	// InFlight is the number of leased, unacked messages.
	InFlight int
	// Published, Acked, Redelivered, and DeadLettered are lifetime counters.
	Published    int64
	Acked        int64
	Redelivered  int64
	DeadLettered int64
	// OldestAge is the age of the oldest queued message.
	OldestAge time.Duration
}

// Lag is the consumer backlog: messages not yet successfully processed.
func (s Stats) Lag() int64 { return int64(s.Queued + s.InFlight) }

// Broker holds named queues and topics.
type Broker struct {
	mu     sync.Mutex
	queues map[string]*queue
	topics map[string]*Topic
	now    func() time.Time
}

type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	name     string
	items    []*item // FIFO: items[0] is next
	inflight map[uint64]*item
	nextID   uint64
	closed   bool
	now      func() time.Time

	cfg QueueConfig
	dlq *queue // destination when MaxAttempts is exhausted; nil = drop to requeue

	published    int64
	acked        int64
	redelivered  int64
	deadLettered int64
}

type item struct {
	msg      Message
	enqueued time.Time
	leasedAt time.Time
	lease    time.Duration
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock injects a clock for lease expiry in tests.
func WithClock(now func() time.Time) Option {
	return func(b *Broker) { b.now = now }
}

// NewBroker returns an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{queues: make(map[string]*queue), topics: make(map[string]*Topic), now: time.Now}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Queue returns the named queue, creating it if needed.
func (b *Broker) Queue(name string) *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &Queue{q: b.queueLocked(name), name: name}
}

func (b *Broker) queueLocked(name string) *queue {
	q, ok := b.queues[name]
	if !ok {
		q = &queue{name: name, inflight: make(map[uint64]*item), now: b.now}
		q.cond = sync.NewCond(&q.mu)
		b.queues[name] = q
	}
	return q
}

// Configure sets the named queue's retry/depth bounds and returns it. When
// MaxAttempts is positive the companion dead-letter queue (name +
// DeadLetterSuffix) is created to receive exhausted messages.
func (b *Broker) Configure(name string, cfg QueueConfig) *Queue {
	b.mu.Lock()
	qq := b.queueLocked(name)
	var dlq *queue
	if cfg.MaxAttempts > 0 {
		dlq = b.queueLocked(name + DeadLetterSuffix)
	}
	b.mu.Unlock()
	qq.mu.Lock()
	qq.cfg = cfg
	qq.dlq = dlq
	qq.mu.Unlock()
	return &Queue{q: qq, name: name}
}

// Queue is a handle on one named queue.
type Queue struct {
	q    *queue
	name string
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Publish appends a message and returns its ID. When the queue is
// configured with MaxDepth, publishes beyond it fail with CodeOverloaded so
// producers shed instead of growing the backlog without bound.
func (q *Queue) Publish(body []byte) (uint64, error) {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if qq.closed {
		return 0, rpc.Errorf(rpc.CodeUnavailable, "mq: queue %q closed", q.name)
	}
	if qq.cfg.MaxDepth > 0 && len(qq.items)+len(qq.inflight) >= qq.cfg.MaxDepth {
		return 0, rpc.Errorf(rpc.CodeOverloaded, "mq: queue %q full: %d queued + %d in flight >= max depth %d",
			q.name, len(qq.items), len(qq.inflight), qq.cfg.MaxDepth)
	}
	qq.nextID++
	qq.published++
	cp := make([]byte, len(body))
	copy(cp, body)
	qq.items = append(qq.items, &item{msg: Message{ID: qq.nextID, Body: cp}, enqueued: qq.now()})
	qq.cond.Signal()
	return qq.nextID, nil
}

// Receive blocks until a message is available (or the queue closes) and
// leases it to the caller for leaseFor; if not acked in time, the message
// is redelivered. leaseFor <= 0 means a 30s default.
func (q *Queue) Receive(leaseFor time.Duration) (Message, bool) {
	return q.receive(leaseFor, nil)
}

// ReceiveWait is Receive bounded by a wait budget: it returns ok=false once
// wait elapses with nothing deliverable. This is the long-poll primitive the
// networked broker service builds Consume on — consumers park here instead
// of hot-polling, and a publish or lease expiry wakes them early.
func (q *Queue) ReceiveWait(leaseFor, wait time.Duration) (Message, bool) {
	if wait <= 0 {
		return q.TryReceive(leaseFor)
	}
	timedOut := false
	qq := q.q
	// sync.Cond has no timed wait; a timer flips timedOut under the queue
	// lock and broadcasts so the parked receiver re-checks and gives up.
	timer := time.AfterFunc(wait, func() {
		qq.mu.Lock()
		timedOut = true
		qq.cond.Broadcast()
		qq.mu.Unlock()
	})
	defer timer.Stop()
	return q.receive(leaseFor, &timedOut)
}

// TryReceive is Receive without blocking; ok is false when empty.
func (q *Queue) TryReceive(leaseFor time.Duration) (Message, bool) {
	expired := true
	return q.receive(leaseFor, &expired)
}

// receive is the shared dequeue path. timedOut, when non-nil, is read under
// the queue lock: the loop gives up once it is true and nothing is
// deliverable (nil means block until delivery or close).
func (q *Queue) receive(leaseFor time.Duration, timedOut *bool) (Message, bool) {
	if leaseFor <= 0 {
		leaseFor = 30 * time.Second
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	for {
		qq.reclaimExpiredLocked()
		if len(qq.items) > 0 {
			it := qq.items[0]
			qq.items = qq.items[1:]
			it.msg.Attempts++
			it.leasedAt = qq.now()
			it.lease = leaseFor
			qq.inflight[it.msg.ID] = it
			return it.msg, true
		}
		if qq.closed || (timedOut != nil && *timedOut) {
			return Message{}, false
		}
		qq.cond.Wait()
	}
}

// reclaimExpiredLocked returns timed-out in-flight messages to the front of
// the queue, preserving ID order among reclaimed items. Messages that have
// exhausted MaxAttempts divert to the dead-letter queue instead.
func (qq *queue) reclaimExpiredLocked() {
	if len(qq.inflight) == 0 {
		return
	}
	now := qq.now()
	var expired []*item
	for id, it := range qq.inflight {
		if now.Sub(it.leasedAt) >= it.lease {
			delete(qq.inflight, id)
			if qq.deadLetterLocked(it) {
				continue
			}
			qq.redelivered++
			expired = append(expired, it)
		}
	}
	if len(expired) == 0 {
		return
	}
	// Order reclaimed items by ID, then put them ahead of fresh items.
	for i := 1; i < len(expired); i++ {
		for j := i; j > 0 && expired[j].msg.ID < expired[j-1].msg.ID; j-- {
			expired[j], expired[j-1] = expired[j-1], expired[j]
		}
	}
	qq.items = append(expired, qq.items...)
	qq.cond.Broadcast()
}

// deadLetterLocked moves an exhausted message to the DLQ, reporting whether
// it did. Called with qq.mu held; takes the DLQ's lock, which is safe
// because a dead-letter queue never has a DLQ of its own (no cycle).
func (qq *queue) deadLetterLocked(it *item) bool {
	if qq.cfg.MaxAttempts <= 0 || it.msg.Attempts < qq.cfg.MaxAttempts || qq.dlq == nil {
		return false
	}
	qq.deadLettered++
	d := qq.dlq
	d.mu.Lock()
	if !d.closed {
		d.nextID++
		d.published++
		d.items = append(d.items, &item{
			msg:      Message{ID: d.nextID, Body: it.msg.Body, Attempts: it.msg.Attempts},
			enqueued: d.now(),
		})
		d.cond.Signal()
	}
	d.mu.Unlock()
	return true
}

// Ack confirms processing of a leased message; returns false for unknown
// or already-expired leases.
func (q *Queue) Ack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if _, ok := qq.inflight[id]; !ok {
		return false
	}
	delete(qq.inflight, id)
	qq.acked++
	return true
}

// Nack returns a leased message to the front of the queue immediately —
// unless it has exhausted MaxAttempts, in which case it dead-letters so a
// perpetually failing message cannot head-of-line-block the queue.
func (q *Queue) Nack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.inflight[id]
	if !ok {
		return false
	}
	delete(qq.inflight, id)
	if qq.deadLetterLocked(it) {
		return true
	}
	qq.redelivered++
	qq.items = append([]*item{it}, qq.items...)
	qq.cond.Signal()
	return true
}

// Len returns the number of queued (not in-flight) messages. Depth checks
// should use Stats().Lag() instead: a queue with everything leased out
// reports Len 0 while still holding unprocessed work.
func (q *Queue) Len() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.items)
}

// InFlight returns the number of leased, unacked messages.
func (q *Queue) InFlight() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.inflight)
}

// Stats snapshots the queue. Expired leases are reclaimed first so the
// queued/in-flight split reflects reality, not stale leases.
func (q *Queue) Stats() Stats {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	qq.reclaimExpiredLocked()
	s := Stats{
		Queued:       len(qq.items),
		InFlight:     len(qq.inflight),
		Published:    qq.published,
		Acked:        qq.acked,
		Redelivered:  qq.redelivered,
		DeadLettered: qq.deadLettered,
	}
	if len(qq.items) > 0 {
		now := qq.now()
		for _, it := range qq.items {
			if age := now.Sub(it.enqueued); age > s.OldestAge {
				s.OldestAge = age
			}
		}
	}
	return s
}

// Close wakes all blocked receivers; subsequent publishes fail and
// receives drain remaining items then report closed.
func (q *Queue) Close() {
	q.q.mu.Lock()
	q.q.closed = true
	q.q.cond.Broadcast()
	q.q.mu.Unlock()
}
