// Package mq implements the suite's message queue — the role RabbitMQ
// plays as the orderQueue behind queueMaster in the E-commerce service.
// Queues are named, FIFO, and support consumer acknowledgement with
// redelivery: a message dequeued but not acked within its lease returns to
// the front of the queue, so a crashed worker never loses an order. This
// serialization point is exactly the scalability constraint Section 7 of
// the paper attributes to queueMaster.
//
// Beyond plain queues the broker offers topics with consumer groups (see
// groups.go): every subscribed group receives each published message once,
// and members of a group share the partition. A broker can also be served
// over RPC (see service.go) so producer, broker, and consumers run as
// separate tiers, which is how the e-commerce and social-network apps use
// it for async order commit and timeline fan-out.
package mq

import (
	"sync"
	"time"

	"dsb/internal/rpc"
)

// DeadLetterSuffix names the queue that collects messages exhausted by
// MaxAttempts: queue "orders" dead-letters into "orders.dlq".
const DeadLetterSuffix = ".dlq"

// Message is one queued item.
type Message struct {
	// ID is assigned by the broker, monotonically increasing per queue.
	ID uint64
	// Key is the publisher-assigned globally-unique message key, carried by
	// replicated publishes. It is what ties the copies of one message
	// together across broker replicas: publish dedup, mirror insertion,
	// settle-by-key, and consumer-side idempotency all hang off it. Plain
	// single-broker publishes leave it empty.
	Key string
	// Body is the payload.
	Body []byte
	// Attempts counts deliveries, 1 on first receive.
	Attempts int
}

// QueueConfig bounds a queue's retry and depth behavior. The zero value
// means unbounded: no dead-lettering, no depth limit.
type QueueConfig struct {
	// MaxAttempts caps deliveries per message. A message that is nacked or
	// lease-expires after its MaxAttempts'th delivery moves to the
	// dead-letter queue instead of returning to the front — otherwise one
	// poison message would block the head of a FIFO queue forever.
	MaxAttempts int
	// MaxDepth bounds queued+in-flight messages; Publish sheds with
	// CodeOverloaded beyond it. Counting in-flight matters: a queue with
	// 0 queued and 256 leased is not empty, it is saturated.
	MaxDepth int
}

// Stats is a point-in-time snapshot of one queue, the backlog signal the
// control plane's lag-driven autoscaling consumes.
type Stats struct {
	// Queued is the number of deliverable messages (excludes in-flight).
	Queued int
	// InFlight is the number of leased, unacked messages.
	InFlight int
	// Published, Acked, Redelivered, and DeadLettered are lifetime counters.
	Published    int64
	Acked        int64
	Redelivered  int64
	DeadLettered int64
	// OldestAge is the age of the oldest queued message.
	OldestAge time.Duration
}

// Lag is the consumer backlog: messages not yet successfully processed.
func (s Stats) Lag() int64 { return int64(s.Queued + s.InFlight) }

// Broker holds named queues and topics.
type Broker struct {
	mu     sync.Mutex
	queues map[string]*queue
	topics map[string]*Topic
	closed bool
	now    func() time.Time
}

// tombstoneCap bounds each queue's settled-key memory. A tombstone records
// that a keyed message was settled here before its mirror copy arrived —
// the race a replicated ack loses when the consumer settles faster than the
// publisher finishes mirroring — so the late insert is dropped instead of
// resurrecting a processed message. The cap is the broker-side half of the
// "dedup window": a redelivery arriving after the key has been evicted is
// delivered again, which at-least-once consumers already tolerate.
const tombstoneCap = 4096

type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	name     string
	items    []*item // FIFO: items[0] is next
	inflight map[uint64]*item
	index    map[string]*item // key -> live item (queued or in-flight)
	nextID   uint64
	closed   bool
	now      func() time.Time

	cfg QueueConfig
	dlq *queue // destination when MaxAttempts is exhausted; nil = drop to requeue

	tombs     map[string]struct{}
	tombOrder []string // FIFO eviction ring for tombs

	published    int64
	acked        int64
	redelivered  int64
	deadLettered int64
}

type item struct {
	msg      Message
	enqueued time.Time
	leasedAt time.Time
	lease    time.Duration
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock injects a clock for lease expiry in tests.
func WithClock(now func() time.Time) Option {
	return func(b *Broker) { b.now = now }
}

// NewBroker returns an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{queues: make(map[string]*queue), topics: make(map[string]*Topic), now: time.Now}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Queue returns the named queue, creating it if needed.
func (b *Broker) Queue(name string) *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &Queue{q: b.queueLocked(name), name: name}
}

func (b *Broker) queueLocked(name string) *queue {
	q, ok := b.queues[name]
	if !ok {
		q = &queue{
			name: name, inflight: make(map[uint64]*item),
			index: make(map[string]*item), tombs: make(map[string]struct{}),
			now: b.now, closed: b.closed,
		}
		q.cond = sync.NewCond(&q.mu)
		b.queues[name] = q
	}
	return q
}

// Close shuts the whole broker down: every queue closes (waking parked
// receivers so they return promptly instead of burning their wait budget)
// and queues created afterwards are born closed. RegisterService wires this
// to the hosting RPC server's shutdown, so a broker tier never strands
// long-poll handlers past its own Close.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	qs := make([]*queue, 0, len(b.queues))
	for _, q := range b.queues {
		qs = append(qs, q)
	}
	b.mu.Unlock()
	for _, qq := range qs {
		qq.mu.Lock()
		qq.closed = true
		qq.cond.Broadcast()
		qq.mu.Unlock()
	}
}

// Configure sets the named queue's retry/depth bounds and returns it. When
// MaxAttempts is positive the companion dead-letter queue (name +
// DeadLetterSuffix) is created to receive exhausted messages.
func (b *Broker) Configure(name string, cfg QueueConfig) *Queue {
	b.mu.Lock()
	qq := b.queueLocked(name)
	var dlq *queue
	if cfg.MaxAttempts > 0 {
		dlq = b.queueLocked(name + DeadLetterSuffix)
	}
	b.mu.Unlock()
	qq.mu.Lock()
	qq.cfg = cfg
	qq.dlq = dlq
	qq.mu.Unlock()
	return &Queue{q: qq, name: name}
}

// Queue is a handle on one named queue.
type Queue struct {
	q    *queue
	name string
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Publish appends a message and returns its ID. When the queue is
// configured with MaxDepth, publishes beyond it fail with CodeOverloaded so
// producers shed instead of growing the backlog without bound.
func (q *Queue) Publish(body []byte) (uint64, error) {
	return q.PublishKey("", body)
}

// PublishKey is Publish with a publisher-assigned message key. Keyed
// publishes are idempotent within the dedup window: a key already live in
// the queue (a retried or hedged publish) returns the existing ID, and a
// tombstoned key (already settled here) returns without enqueueing — both
// succeed, because the producer's intent is satisfied either way.
func (q *Queue) PublishKey(key string, body []byte) (uint64, error) {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if qq.closed {
		return 0, rpc.Errorf(rpc.CodeUnavailable, "mq: queue %q closed", q.name)
	}
	if key != "" {
		if it, ok := qq.index[key]; ok {
			return it.msg.ID, nil
		}
		if _, dead := qq.tombs[key]; dead {
			return 0, nil
		}
	}
	if qq.cfg.MaxDepth > 0 && len(qq.items)+len(qq.inflight) >= qq.cfg.MaxDepth {
		return 0, rpc.Errorf(rpc.CodeOverloaded, "mq: queue %q full: %d queued + %d in flight >= max depth %d",
			q.name, len(qq.items), len(qq.inflight), qq.cfg.MaxDepth)
	}
	return qq.enqueueLocked(key, body, 0), nil
}

// enqueueLocked appends a fresh item, indexing its key. Callers hold qq.mu.
func (qq *queue) enqueueLocked(key string, body []byte, attempts int) uint64 {
	qq.nextID++
	qq.published++
	cp := make([]byte, len(body))
	copy(cp, body)
	it := &item{msg: Message{ID: qq.nextID, Key: key, Body: cp, Attempts: attempts}, enqueued: qq.now()}
	qq.items = append(qq.items, it)
	if key != "" {
		qq.index[key] = it
	}
	qq.cond.Signal()
	return qq.nextID
}

// Insert is the mirror-enqueue primitive behind broker replication: a
// replica accepting a copy of a message its shard's primary already
// admitted. It is idempotent by key (re-mirrors after a retry are dropped),
// honors tombstones (the copy of an already-settled message is dropped),
// and deliberately bypasses MaxDepth — admission is the primary's call, and
// a mirror that shed an admitted message would silently void the
// replication guarantee. Returns whether a copy was actually added.
func (q *Queue) Insert(key string, body []byte) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if qq.closed || key == "" {
		return false
	}
	if _, ok := qq.index[key]; ok {
		return false
	}
	if _, dead := qq.tombs[key]; dead {
		return false
	}
	qq.enqueueLocked(key, body, 0)
	return true
}

// Remove settles a keyed message wherever it is — queued or in-flight —
// and reports whether a copy was found. It is the replicated ack: consumers
// settle by key on every replica of the owning shard, so mirror copies
// disappear with the primary's. An unknown key leaves a tombstone so the
// mirror copy still on the wire is dropped on arrival instead of being
// redelivered after a failover.
func (q *Queue) Remove(key string) bool {
	if key == "" {
		return false
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.index[key]
	if !ok {
		qq.tombstoneLocked(key)
		return false
	}
	qq.dropLocked(it)
	qq.acked++
	return true
}

// dropLocked unlinks a live item from whichever structure holds it.
func (qq *queue) dropLocked(it *item) {
	if _, inflight := qq.inflight[it.msg.ID]; inflight {
		delete(qq.inflight, it.msg.ID)
	} else {
		for i, cand := range qq.items {
			if cand == it {
				qq.items = append(qq.items[:i], qq.items[i+1:]...)
				break
			}
		}
	}
	if it.msg.Key != "" {
		delete(qq.index, it.msg.Key)
	}
}

// tombstoneLocked records a settled-elsewhere key, evicting FIFO past the cap.
func (qq *queue) tombstoneLocked(key string) {
	if _, ok := qq.tombs[key]; ok {
		return
	}
	qq.tombs[key] = struct{}{}
	qq.tombOrder = append(qq.tombOrder, key)
	if len(qq.tombOrder) > tombstoneCap {
		delete(qq.tombs, qq.tombOrder[0])
		qq.tombOrder = qq.tombOrder[1:]
	}
}

// Receive blocks until a message is available (or the queue closes) and
// leases it to the caller for leaseFor; if not acked in time, the message
// is redelivered. leaseFor <= 0 means a 30s default.
func (q *Queue) Receive(leaseFor time.Duration) (Message, bool) {
	return q.receive(leaseFor, nil)
}

// ReceiveWait is Receive bounded by a wait budget: it returns ok=false once
// wait elapses with nothing deliverable. This is the long-poll primitive the
// networked broker service builds Consume on — consumers park here instead
// of hot-polling, and a publish or lease expiry wakes them early.
func (q *Queue) ReceiveWait(leaseFor, wait time.Duration) (Message, bool) {
	if wait <= 0 {
		return q.TryReceive(leaseFor)
	}
	timedOut := false
	qq := q.q
	// sync.Cond has no timed wait; a timer flips timedOut under the queue
	// lock and broadcasts so the parked receiver re-checks and gives up.
	timer := time.AfterFunc(wait, func() {
		qq.mu.Lock()
		timedOut = true
		qq.cond.Broadcast()
		qq.mu.Unlock()
	})
	defer timer.Stop()
	return q.receive(leaseFor, &timedOut)
}

// TryReceive is Receive without blocking; ok is false when empty.
func (q *Queue) TryReceive(leaseFor time.Duration) (Message, bool) {
	expired := true
	return q.receive(leaseFor, &expired)
}

// receive is the shared dequeue path. timedOut, when non-nil, is read under
// the queue lock: the loop gives up once it is true and nothing is
// deliverable (nil means block until delivery or close).
func (q *Queue) receive(leaseFor time.Duration, timedOut *bool) (Message, bool) {
	if leaseFor <= 0 {
		leaseFor = 30 * time.Second
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	for {
		qq.reclaimExpiredLocked()
		if len(qq.items) > 0 {
			it := qq.items[0]
			qq.items = qq.items[1:]
			it.msg.Attempts++
			it.leasedAt = qq.now()
			it.lease = leaseFor
			qq.inflight[it.msg.ID] = it
			return it.msg, true
		}
		if qq.closed || (timedOut != nil && *timedOut) {
			return Message{}, false
		}
		qq.cond.Wait()
	}
}

// reclaimExpiredLocked returns timed-out in-flight messages to the front of
// the queue, preserving ID order among reclaimed items. Messages that have
// exhausted MaxAttempts divert to the dead-letter queue instead.
func (qq *queue) reclaimExpiredLocked() {
	if len(qq.inflight) == 0 {
		return
	}
	now := qq.now()
	var expired []*item
	for id, it := range qq.inflight {
		if now.Sub(it.leasedAt) >= it.lease {
			delete(qq.inflight, id)
			if qq.deadLetterLocked(it) {
				continue
			}
			qq.redelivered++
			expired = append(expired, it)
		}
	}
	if len(expired) == 0 {
		return
	}
	// Order reclaimed items by ID, then put them ahead of fresh items.
	for i := 1; i < len(expired); i++ {
		for j := i; j > 0 && expired[j].msg.ID < expired[j-1].msg.ID; j-- {
			expired[j], expired[j-1] = expired[j-1], expired[j]
		}
	}
	qq.items = append(expired, qq.items...)
	qq.cond.Broadcast()
}

// deadLetterLocked moves an exhausted message to the DLQ, reporting whether
// it did. Called with qq.mu held; takes the DLQ's lock, which is safe
// because a dead-letter queue never has a DLQ of its own (no cycle). The
// message keeps its Key in the DLQ so an operator Redrive re-enters the
// replicated identity space, and the origin queue tombstones the key so a
// mirror copy cannot resurrect a dead-lettered message.
func (qq *queue) deadLetterLocked(it *item) bool {
	if qq.cfg.MaxAttempts <= 0 || it.msg.Attempts < qq.cfg.MaxAttempts || qq.dlq == nil {
		return false
	}
	qq.deadLettered++
	if it.msg.Key != "" {
		delete(qq.index, it.msg.Key)
		qq.tombstoneLocked(it.msg.Key)
	}
	d := qq.dlq
	d.mu.Lock()
	if !d.closed {
		d.nextID++
		d.published++
		d.items = append(d.items, &item{
			msg:      Message{ID: d.nextID, Key: it.msg.Key, Body: it.msg.Body, Attempts: it.msg.Attempts},
			enqueued: d.now(),
		})
		d.cond.Signal()
	}
	d.mu.Unlock()
	return true
}

// Ack confirms processing of a leased message; returns false for unknown
// or already-expired leases.
func (q *Queue) Ack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.inflight[id]
	if !ok {
		return false
	}
	delete(qq.inflight, id)
	if it.msg.Key != "" {
		delete(qq.index, it.msg.Key)
	}
	qq.acked++
	return true
}

// Nack returns a leased message to the front of the queue immediately —
// unless it has exhausted MaxAttempts, in which case it dead-letters so a
// perpetually failing message cannot head-of-line-block the queue.
func (q *Queue) Nack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.inflight[id]
	if !ok {
		return false
	}
	delete(qq.inflight, id)
	if qq.deadLetterLocked(it) {
		return true
	}
	qq.redelivered++
	qq.items = append([]*item{it}, qq.items...)
	qq.cond.Signal()
	return true
}

// NackKey returns a live keyed message to the front of the queue by key —
// the failover-side settle used when a consumer that leased from a
// now-dead primary reports failure to the surviving replica, where the
// mirror copy may be queued rather than leased. Queued copies move to the
// front; leased copies take the normal Nack path (including MaxAttempts
// dead-lettering). Unknown keys report false without tombstoning: a failed
// attempt must stay redeliverable.
func (q *Queue) NackKey(key string) bool {
	if key == "" {
		return false
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.index[key]
	if !ok {
		return false
	}
	if _, inflight := qq.inflight[it.msg.ID]; inflight {
		delete(qq.inflight, it.msg.ID)
		if qq.deadLetterLocked(it) {
			return true
		}
		qq.redelivered++
		qq.items = append([]*item{it}, qq.items...)
		qq.cond.Signal()
		return true
	}
	for i, cand := range qq.items {
		if cand == it {
			copy(qq.items[1:i+1], qq.items[:i])
			qq.items[0] = it
			qq.cond.Signal()
			return true
		}
	}
	return false
}

// Peek snapshots up to limit queued messages without leasing them — the
// inspection primitive behind DLQ operability (limit <= 0 means all).
// Bodies are copied so callers cannot mutate queued payloads.
func (q *Queue) Peek(limit int) []Message {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	qq.reclaimExpiredLocked()
	n := len(qq.items)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Message, 0, n)
	for _, it := range qq.items[:n] {
		m := it.msg
		m.Body = append([]byte(nil), it.msg.Body...)
		out = append(out, m)
	}
	return out
}

// Redrive drains the named queue's dead-letter companion back into the
// origin queue with attempt counts reset, returning how many messages were
// requeued. Keys are preserved and their origin tombstones cleared — an
// operator redrive is an explicit statement that the message should get a
// fresh at-least-once run, overriding the settled-here memory that
// dead-lettering left behind.
func (b *Broker) Redrive(name string) int {
	b.mu.Lock()
	origin := b.queueLocked(name)
	dlq := b.queueLocked(name + DeadLetterSuffix)
	b.mu.Unlock()

	dlq.mu.Lock()
	drained := dlq.items
	dlq.items = nil
	for _, it := range drained {
		if it.msg.Key != "" {
			delete(dlq.index, it.msg.Key)
		}
		dlq.acked++
	}
	dlq.mu.Unlock()

	origin.mu.Lock()
	for _, it := range drained {
		if key := it.msg.Key; key != "" {
			if _, dead := origin.tombs[key]; dead {
				delete(origin.tombs, key)
				for i, k := range origin.tombOrder {
					if k == key {
						origin.tombOrder = append(origin.tombOrder[:i], origin.tombOrder[i+1:]...)
						break
					}
				}
			}
			if _, live := origin.index[key]; live {
				continue // already back in the queue (e.g. a mirror raced us)
			}
		}
		origin.enqueueLocked(it.msg.Key, it.msg.Body, 0)
	}
	n := len(drained)
	origin.mu.Unlock()
	return n
}

// Closed reports whether the queue (or its broker) has been shut down. The
// Consume RPC handler uses this to distinguish "closed, go away" from
// "empty poll, come back" for parked long-pollers.
func (q *Queue) Closed() bool {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return q.q.closed
}

// Len returns the number of queued (not in-flight) messages. Depth checks
// should use Stats().Lag() instead: a queue with everything leased out
// reports Len 0 while still holding unprocessed work.
func (q *Queue) Len() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.items)
}

// InFlight returns the number of leased, unacked messages.
func (q *Queue) InFlight() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.inflight)
}

// Stats snapshots the queue. Expired leases are reclaimed first so the
// queued/in-flight split reflects reality, not stale leases.
func (q *Queue) Stats() Stats {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	qq.reclaimExpiredLocked()
	s := Stats{
		Queued:       len(qq.items),
		InFlight:     len(qq.inflight),
		Published:    qq.published,
		Acked:        qq.acked,
		Redelivered:  qq.redelivered,
		DeadLettered: qq.deadLettered,
	}
	if len(qq.items) > 0 {
		now := qq.now()
		for _, it := range qq.items {
			if age := now.Sub(it.enqueued); age > s.OldestAge {
				s.OldestAge = age
			}
		}
	}
	return s
}

// Close wakes all blocked receivers; subsequent publishes fail and
// receives drain remaining items then report closed.
func (q *Queue) Close() {
	q.q.mu.Lock()
	q.q.closed = true
	q.q.cond.Broadcast()
	q.q.mu.Unlock()
}
