// Package mq implements the suite's message queue — the role RabbitMQ
// plays as the orderQueue behind queueMaster in the E-commerce service.
// Queues are named, FIFO, and support consumer acknowledgement with
// redelivery: a message dequeued but not acked within its lease returns to
// the front of the queue, so a crashed worker never loses an order. This
// serialization point is exactly the scalability constraint Section 7 of
// the paper attributes to queueMaster.
package mq

import (
	"sync"
	"time"

	"dsb/internal/rpc"
)

// Message is one queued item.
type Message struct {
	// ID is assigned by the broker, monotonically increasing per queue.
	ID uint64
	// Body is the payload.
	Body []byte
	// Attempts counts deliveries, 1 on first receive.
	Attempts int
}

// Broker holds named queues.
type Broker struct {
	mu     sync.Mutex
	queues map[string]*queue
	now    func() time.Time
}

type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*item // FIFO: items[0] is next
	inflight map[uint64]*item
	nextID   uint64
	closed   bool
	now      func() time.Time
}

type item struct {
	msg      Message
	leasedAt time.Time
	lease    time.Duration
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock injects a clock for lease expiry in tests.
func WithClock(now func() time.Time) Option {
	return func(b *Broker) { b.now = now }
}

// NewBroker returns an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{queues: make(map[string]*queue), now: time.Now}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Queue returns the named queue, creating it if needed.
func (b *Broker) Queue(name string) *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		q = &queue{inflight: make(map[uint64]*item), now: b.now}
		q.cond = sync.NewCond(&q.mu)
		b.queues[name] = q
	}
	return &Queue{q: q, name: name}
}

// Queue is a handle on one named queue.
type Queue struct {
	q    *queue
	name string
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Publish appends a message and returns its ID.
func (q *Queue) Publish(body []byte) (uint64, error) {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if qq.closed {
		return 0, rpc.Errorf(rpc.CodeUnavailable, "mq: queue %q closed", q.name)
	}
	qq.nextID++
	cp := make([]byte, len(body))
	copy(cp, body)
	qq.items = append(qq.items, &item{msg: Message{ID: qq.nextID, Body: cp}})
	qq.cond.Signal()
	return qq.nextID, nil
}

// Receive blocks until a message is available (or the queue closes) and
// leases it to the caller for leaseFor; if not acked in time, the message
// is redelivered. leaseFor <= 0 means a 30s default.
func (q *Queue) Receive(leaseFor time.Duration) (Message, bool) {
	if leaseFor <= 0 {
		leaseFor = 30 * time.Second
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	for {
		qq.reclaimExpiredLocked()
		if len(qq.items) > 0 {
			it := qq.items[0]
			qq.items = qq.items[1:]
			it.msg.Attempts++
			it.leasedAt = qq.now()
			it.lease = leaseFor
			qq.inflight[it.msg.ID] = it
			return it.msg, true
		}
		if qq.closed {
			return Message{}, false
		}
		qq.cond.Wait()
	}
}

// TryReceive is Receive without blocking; ok is false when empty.
func (q *Queue) TryReceive(leaseFor time.Duration) (Message, bool) {
	if leaseFor <= 0 {
		leaseFor = 30 * time.Second
	}
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	qq.reclaimExpiredLocked()
	if len(qq.items) == 0 {
		return Message{}, false
	}
	it := qq.items[0]
	qq.items = qq.items[1:]
	it.msg.Attempts++
	it.leasedAt = qq.now()
	it.lease = leaseFor
	qq.inflight[it.msg.ID] = it
	return it.msg, true
}

// reclaimExpiredLocked returns timed-out in-flight messages to the front of
// the queue, preserving ID order among reclaimed items.
func (qq *queue) reclaimExpiredLocked() {
	if len(qq.inflight) == 0 {
		return
	}
	now := qq.now()
	var expired []*item
	for id, it := range qq.inflight {
		if now.Sub(it.leasedAt) >= it.lease {
			expired = append(expired, it)
			delete(qq.inflight, id)
		}
	}
	if len(expired) == 0 {
		return
	}
	// Order reclaimed items by ID, then put them ahead of fresh items.
	for i := 1; i < len(expired); i++ {
		for j := i; j > 0 && expired[j].msg.ID < expired[j-1].msg.ID; j-- {
			expired[j], expired[j-1] = expired[j-1], expired[j]
		}
	}
	qq.items = append(expired, qq.items...)
	qq.cond.Broadcast()
}

// Ack confirms processing of a leased message; returns false for unknown
// or already-expired leases.
func (q *Queue) Ack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	if _, ok := qq.inflight[id]; !ok {
		return false
	}
	delete(qq.inflight, id)
	return true
}

// Nack returns a leased message to the front of the queue immediately.
func (q *Queue) Nack(id uint64) bool {
	qq := q.q
	qq.mu.Lock()
	defer qq.mu.Unlock()
	it, ok := qq.inflight[id]
	if !ok {
		return false
	}
	delete(qq.inflight, id)
	qq.items = append([]*item{it}, qq.items...)
	qq.cond.Signal()
	return true
}

// Len returns the number of queued (not in-flight) messages.
func (q *Queue) Len() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.items)
}

// InFlight returns the number of leased, unacked messages.
func (q *Queue) InFlight() int {
	q.q.mu.Lock()
	defer q.q.mu.Unlock()
	return len(q.q.inflight)
}

// Close wakes all blocked receivers; subsequent publishes fail and
// receives drain remaining items then report closed.
func (q *Queue) Close() {
	q.q.mu.Lock()
	q.q.closed = true
	q.q.cond.Broadcast()
	q.q.mu.Unlock()
}
