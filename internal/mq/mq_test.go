package mq

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPublishReceiveAck(t *testing.T) {
	b := NewBroker()
	q := b.Queue("orders")
	id, err := q.Publish([]byte("order-1"))
	if err != nil || id != 1 {
		t.Fatalf("Publish = %d, %v", id, err)
	}
	msg, ok := q.Receive(time.Minute)
	if !ok || string(msg.Body) != "order-1" || msg.Attempts != 1 {
		t.Fatalf("Receive = %+v, %v", msg, ok)
	}
	if q.InFlight() != 1 {
		t.Fatalf("InFlight = %d", q.InFlight())
	}
	if !q.Ack(msg.ID) {
		t.Fatal("Ack failed")
	}
	if q.Ack(msg.ID) {
		t.Fatal("double Ack succeeded")
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestFIFOOrder(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	for i := 0; i < 10; i++ {
		q.Publish([]byte{byte(i)}) //nolint:errcheck
	}
	for i := 0; i < 10; i++ {
		msg, ok := q.TryReceive(time.Minute)
		if !ok || msg.Body[0] != byte(i) {
			t.Fatalf("out of order at %d: %+v", i, msg)
		}
		q.Ack(msg.ID)
	}
	if _, ok := q.TryReceive(time.Minute); ok {
		t.Fatal("TryReceive on empty queue returned a message")
	}
}

func TestPublishBodyIsCopied(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	body := []byte("orig")
	q.Publish(body) //nolint:errcheck
	body[0] = 'X'
	msg, _ := q.TryReceive(time.Minute)
	if string(msg.Body) != "orig" {
		t.Fatal("publish aliased caller's buffer")
	}
}

func TestLeaseExpiryRedelivers(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBroker(WithClock(func() time.Time { return now }))
	q := b.Queue("q")
	q.Publish([]byte("m")) //nolint:errcheck
	msg, _ := q.TryReceive(time.Second)
	if msg.Attempts != 1 {
		t.Fatalf("attempts = %d", msg.Attempts)
	}
	// Lease not yet expired: nothing to receive.
	if _, ok := q.TryReceive(time.Second); ok {
		t.Fatal("received during active lease")
	}
	now = now.Add(2 * time.Second)
	again, ok := q.TryReceive(time.Second)
	if !ok || again.ID != msg.ID || again.Attempts != 2 {
		t.Fatalf("redelivery = %+v, %v", again, ok)
	}
	// Ack of the expired first lease must fail (it was reclaimed).
	if q.Ack(msg.ID) != true {
		// The second lease is active for the same ID, so Ack succeeds via
		// that lease; this documents at-least-once (not exactly-once)
		// semantics.
		t.Log("ack after redelivery failed; at-least-once still holds")
	}
}

func TestNackReturnsToFront(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	q.Publish([]byte("a")) //nolint:errcheck
	q.Publish([]byte("b")) //nolint:errcheck
	msg, _ := q.TryReceive(time.Minute)
	if !q.Nack(msg.ID) {
		t.Fatal("Nack failed")
	}
	if q.Nack(msg.ID) {
		t.Fatal("double Nack succeeded")
	}
	again, _ := q.TryReceive(time.Minute)
	if string(again.Body) != "a" || again.Attempts != 2 {
		t.Fatalf("nacked message not redelivered first: %+v", again)
	}
}

func TestBlockingReceive(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	got := make(chan Message, 1)
	go func() {
		msg, ok := q.Receive(time.Minute)
		if ok {
			got <- msg
		}
	}()
	time.Sleep(20 * time.Millisecond)
	q.Publish([]byte("wake")) //nolint:errcheck
	select {
	case msg := <-got:
		if string(msg.Body) != "wake" {
			t.Fatalf("got %q", msg.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receive never woke")
	}
}

func TestCloseWakesReceivers(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Receive(time.Minute)
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed receive reported a message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receive did not wake on close")
	}
	if _, err := q.Publish([]byte("x")); err == nil {
		t.Fatal("publish to closed queue succeeded")
	}
}

func TestQueueIdentity(t *testing.T) {
	b := NewBroker()
	q1 := b.Queue("same")
	q2 := b.Queue("same")
	q1.Publish([]byte("x")) //nolint:errcheck
	if q2.Len() != 1 {
		t.Fatal("same-name queues are distinct")
	}
	if b.Queue("other").Len() != 0 {
		t.Fatal("queues share items")
	}
	if q1.Name() != "same" {
		t.Fatalf("Name = %q", q1.Name())
	}
}

// Property: with concurrent producers and acking consumers, every published
// message is consumed exactly once (no loss, no duplication when acks are
// timely) and total counts match.
func TestExactlyOnceUnderAckProperty(t *testing.T) {
	f := func(nMsgs uint8) bool {
		n := int(nMsgs%50) + 1
		b := NewBroker()
		q := b.Queue("q")
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q.Publish([]byte(fmt.Sprintf("m%d", i))) //nolint:errcheck
			}(i)
		}
		seen := make(map[string]int)
		var mu sync.Mutex
		var cg sync.WaitGroup
		for w := 0; w < 4; w++ {
			cg.Add(1)
			go func() {
				defer cg.Done()
				for {
					msg, ok := q.Receive(time.Minute)
					if !ok {
						return
					}
					mu.Lock()
					seen[string(msg.Body)]++
					mu.Unlock()
					q.Ack(msg.ID)
				}
			}()
		}
		wg.Wait()
		// Drain: wait until all consumed, then close.
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			total := len(seen)
			mu.Unlock()
			if total == n || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		q.Close()
		cg.Wait()
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPublishReceiveAck(b *testing.B) {
	br := NewBroker()
	q := br.Queue("bench")
	body := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Publish(body) //nolint:errcheck
		msg, _ := q.TryReceive(time.Minute)
		q.Ack(msg.ID)
	}
}
