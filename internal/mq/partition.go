package mq

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// Bus is the broker surface async producers and consumers program against,
// satisfied by both the single-instance Client and the Partitioned client —
// application tiers never know which broker layout they run on, mirroring
// how svcutil.DB hides the sharded storage layout.
type Bus interface {
	// Publish sends one message to a topic and returns after the broker tier
	// has accepted it for every subscribed group.
	Publish(ctx context.Context, topic string, body []byte) (uint64, error)
	// PublishKey is Publish with a caller-supplied idempotency key: retries
	// of the same logical message must reuse the key, which makes them safe
	// against both broker-side duplication and (on the partitioned tier)
	// replays across a mirror failover.
	PublishKey(ctx context.Context, topic, key string, body []byte) (uint64, error)
	// Subscribe registers a consumer group on a topic with the given bounds.
	Subscribe(ctx context.Context, topic, group string, cfg QueueConfig) error
	// Consume long-polls one message for the group.
	Consume(ctx context.Context, topic, group string, lease, wait time.Duration) (ConsumeResp, error)
	// Ack settles a consumed message as done.
	Ack(ctx context.Context, topic, group string, m ConsumeResp) error
	// Nack returns a consumed message for redelivery (or dead-lettering).
	Nack(ctx context.Context, topic, group string, m ConsumeResp) error
	// Stats snapshots the group's backlog across the whole tier.
	Stats(ctx context.Context, topic, group string) (StatsResp, error)
}

var (
	_ Bus = Client{}
	_ Bus = (*Partitioned)(nil)
)

// partNode hands every Partitioned client in the process a distinct key
// namespace, so concurrently-running publishers never collide.
var partNode atomic.Uint64

// Partitioned is the broker client for the partitioned, replicated tier.
// Topics are partitioned by *message key* across broker shards — every
// broker instance carries a slice of every topic's traffic, the way Kafka
// partitions spread one topic over many brokers — so a single hot topic
// scales past one broker's fan-out capacity. Each shard is a replica set:
//
//   - Publish routes the key to its owning shard, publishes to the primary
//     (the lowest-addressed live replica — a rule every client computes
//     identically from registry state, needing no election), then mirrors
//     to the remaining replicas before returning. An acked publish is
//     therefore on every live replica of its shard: "acked ⇒ mirrored".
//   - Consume polls only shard primaries (mirror copies are insurance, not
//     a second delivery stream), rotating across shards and splitting the
//     wait budget between them.
//   - Ack/Nack settle by key on every replica of the owning shard, so the
//     mirror copies retire with the primary's. Settles that race ahead of a
//     still-propagating mirror are absorbed by the broker's tombstones.
//
// When a health lease evicts a dead broker the router's ring re-forms:
// the surviving replica becomes primary, publishers fail over to it, and
// the mirror copies of everything the corpse held — queued and leased
// alike — are consumed from the survivor. Delivery stays at-least-once
// (a message consumed-but-unacked at the crash redelivers from the
// mirror); consumers stay idempotent by dedup on Message.Key.
type Partitioned struct {
	router *shard.Router
	node   string
	seq    atomic.Uint64
	rr     atomic.Uint64
}

// NewPartitioned wraps a shard router over the broker tier's instances.
func NewPartitioned(router *shard.Router) *Partitioned {
	return &Partitioned{router: router, node: fmt.Sprintf("n%d", partNode.Add(1))}
}

// nextKey mints a process-unique message key for unkeyed publishes.
func (p *Partitioned) nextKey() string {
	return fmt.Sprintf("%s-%d", p.node, p.seq.Add(1))
}

// byAddr re-sorts a rotated replica slice into address order. The router
// rotates read order to spread load, but the broker tier needs a
// *deterministic* primary per shard — every publisher and consumer must
// agree on it from registry state alone — so the tier uses lowest-addr.
func byAddr(reps []*shard.Replica) []*shard.Replica {
	out := append([]*shard.Replica(nil), reps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr() < out[j].Addr() })
	return out
}

// Publish mints a fresh key and publishes. Producers that may retry a
// logical message should use PublishKey with a stable key instead.
func (p *Partitioned) Publish(ctx context.Context, topic string, body []byte) (uint64, error) {
	return p.PublishKey(ctx, topic, p.nextKey(), body)
}

// PublishKey publishes to the key's owning shard: primary first, then a
// synchronous mirror to every sibling replica. Success means all live
// replicas hold a copy; any failure returns an error and the caller
// retries with the same key, which the brokers deduplicate. If the primary
// is unreachable (a corpse the lease hasn't evicted yet) the publish fails
// over down the replica list — the copy lands somewhere live — but still
// reports failure unless every live replica was reached.
func (p *Partitioned) PublishKey(ctx context.Context, topic, key string, body []byte) (uint64, error) {
	if key == "" {
		key = p.nextKey()
	}
	reps := byAddr(p.router.Route(key))
	if len(reps) == 0 {
		return 0, rpc.Errorf(rpc.CodeUnavailable, "mq: no live brokers for topic %q", topic)
	}
	var id uint64
	var firstErr error
	landed := 0
	for i, rep := range reps {
		var err error
		if landed == 0 {
			var resp PublishResp
			err = rep.Call(ctx, "Publish", PublishReq{Topic: topic, Key: key, Body: body}, &resp)
			if err == nil {
				id = resp.ID
			}
		} else {
			var resp MirrorResp
			err = rep.Call(ctx, "Mirror", MirrorReq{Topic: topic, Key: key, Body: body}, &resp)
		}
		if err != nil {
			if i == 0 && rpc.ErrorCode(err) == rpc.CodeOverloaded {
				// The primary shed on MaxDepth: that is admission control, not
				// a failure to fail over around.
				return 0, err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		landed++
	}
	if landed < len(reps) {
		return id, rpc.Errorf(rpc.CodeUnavailable,
			"mq: publish %q reached %d/%d replicas: %v", key, landed, len(reps), firstErr)
	}
	return id, nil
}

// Subscribe registers the group on every broker instance — mirrors
// included, since a mirror only accepts copies for groups it knows about.
func (p *Partitioned) Subscribe(ctx context.Context, topic, group string, cfg QueueConfig) error {
	req := SubscribeReq{Topic: topic, Group: group, MaxAttempts: cfg.MaxAttempts, MaxDepth: cfg.MaxDepth}
	for _, reps := range p.router.Scatter() {
		for _, rep := range reps {
			if err := rep.Call(ctx, "Subscribe", req, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// consumeGrace bounds each per-shard poll past its wait share, so a hung
// primary (a corpse the lease hasn't evicted yet) costs one bounded slice
// of the poll loop instead of the caller's whole deadline.
const consumeGrace = 100 * time.Millisecond

// Consume polls the shard primaries round-robin, splitting the wait budget
// across shards. Dead shards (no live replicas, or a primary that errors)
// are skipped; an empty sweep returns OK=false like a single broker would.
//
// The whole sweep is bounded by wait plus ONE consumeGrace, not one per
// shard: per-shard polls are clamped to the remaining overall budget, so a
// sweep across N hung primaries costs at most wait+grace instead of
// wait+N*grace — the overshoot that used to starve the caller's own
// deadline on wide tiers. The caller's ctx deadline, when earlier, caps the
// budget too.
func (p *Partitioned) Consume(ctx context.Context, topic, group string, lease, wait time.Duration) (ConsumeResp, error) {
	shards := p.router.Shards()
	if len(shards) == 0 {
		return ConsumeResp{}, rpc.Errorf(rpc.CodeUnavailable, "mq: no live brokers for topic %q", topic)
	}
	per := wait / time.Duration(len(shards))
	deadline := time.Now().Add(wait + consumeGrace)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	start := int(p.rr.Add(1))
	var lastErr error
	for i := range shards {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		label := shards[(start+i)%len(shards)]
		reps := byAddr(p.router.GroupReplicas(label))
		if len(reps) == 0 {
			continue
		}
		slice := per + consumeGrace
		if slice > remaining {
			slice = remaining
		}
		pollWait := per
		if pollWait > slice {
			pollWait = slice
		}
		cctx, cancel := context.WithTimeout(ctx, slice)
		var resp ConsumeResp
		err := reps[0].Call(cctx, "Consume", ConsumeReq{
			Topic: topic, Group: group, LeaseNs: int64(lease), WaitNs: int64(pollWait),
		}, &resp)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.OK {
			return resp, nil
		}
	}
	if lastErr != nil {
		return ConsumeResp{}, lastErr
	}
	return ConsumeResp{}, nil
}

// settle sends an Ack or Nack by key to every replica of the owning shard
// in parallel. Success requires reaching at least one replica: a settle
// that reached only the survivor of a crashing pair did its job (the
// corpse's copy dies with it), while a settle that reached no one must
// surface so the consumer knows the redelivery is coming.
func (p *Partitioned) settle(ctx context.Context, method, topic, group, key string) error {
	if key == "" {
		return rpc.Errorf(rpc.CodeBadRequest, "mq: partitioned %s requires a keyed message", method)
	}
	reps := p.router.Route(key)
	if len(reps) == 0 {
		return rpc.Errorf(rpc.CodeUnavailable, "mq: no live brokers for topic %q", topic)
	}
	req := AckReq{Topic: topic, Group: group, Key: key}
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *shard.Replica) {
			defer wg.Done()
			var resp AckResp
			errs[i] = rep.Call(ctx, method, req, &resp)
		}(i, rep)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Ack settles a consumed message on every replica of its owning shard.
func (p *Partitioned) Ack(ctx context.Context, topic, group string, m ConsumeResp) error {
	return p.settle(ctx, "Ack", topic, group, m.Key)
}

// Nack returns a consumed message for redelivery on whichever replicas
// hold a live copy.
func (p *Partitioned) Nack(ctx context.Context, topic, group string, m ConsumeResp) error {
	return p.settle(ctx, "Nack", topic, group, m.Key)
}

// Stats sums the group's backlog across shard primaries — the partition-
// aware lag the control plane's lag probes feed autoscaling. Mirrors are
// excluded: their copies shadow the primaries' and would double-count.
func (p *Partitioned) Stats(ctx context.Context, topic, group string) (StatsResp, error) {
	var out StatsResp
	req := StatsReq{Topic: topic, Group: group}
	for _, label := range p.router.Shards() {
		reps := byAddr(p.router.GroupReplicas(label))
		if len(reps) == 0 {
			continue
		}
		var s StatsResp
		if err := reps[0].Call(ctx, "Stats", req, &s); err != nil {
			return out, err
		}
		out.Queued += s.Queued
		out.InFlight += s.InFlight
		out.Published += s.Published
		out.Acked += s.Acked
		out.Redelivered += s.Redelivered
		out.DeadLettered += s.DeadLettered
		if s.OldestAgeNs > out.OldestAgeNs {
			out.OldestAgeNs = s.OldestAgeNs
		}
	}
	return out, nil
}
