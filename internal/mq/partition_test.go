package mq

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"

	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// partRig is a partitioned broker tier bootstrapped outside svcutil: real
// brokers behind real RPC servers, grouped into replica sets by MetaShard
// labels, with direct handles for white-box assertions and crash injection.
type partRig struct {
	net     rpc.Network
	reg     *registry.Registry
	router  *shard.Router
	cluster *Cluster
	// brokers[s][r] / servers[s][r] / addrs[s][r] index shard s, replica r.
	brokers [][]*Broker
	servers [][]*rpc.Server
	addrs   [][]string
}

func bootPartitioned(t *testing.T, shards, replicas int) (*partRig, *Partitioned) {
	t.Helper()
	rig := &partRig{
		net:     rpc.NewMem(),
		reg:     registry.New(),
		cluster: NewCluster(),
	}
	for s := 0; s < shards; s++ {
		var bs []*Broker
		var srvs []*rpc.Server
		var as []string
		for r := 0; r < replicas; r++ {
			b := NewBroker()
			srv := rpc.NewServer("broker")
			RegisterService(srv, b)
			addr, err := srv.Start(rig.net, fmt.Sprintf("broker/s%d-r%d", s, r))
			if err != nil {
				t.Fatal(err)
			}
			rig.reg.RegisterInstance("broker", addr, map[string]string{shard.MetaShard: strconv.Itoa(s)})
			rig.cluster.Add(b)
			bs, srvs, as = append(bs, b), append(srvs, srv), append(as, addr)
		}
		rig.brokers = append(rig.brokers, bs)
		rig.servers = append(rig.servers, srvs)
		rig.addrs = append(rig.addrs, as)
	}
	t.Cleanup(func() {
		for _, srvs := range rig.servers {
			for _, srv := range srvs {
				srv.Close()
			}
		}
	})
	rig.router = shard.NewRouter(rig.net, "broker")
	t.Cleanup(func() { rig.router.Close() })
	rig.router.Sync(rig.reg.Instances("broker"))
	return rig, NewPartitioned(rig.router)
}

// crash kills shard s replica r: the server goes away (its broker closes
// with it) and the registry eviction propagates to the router — the same
// sequence a health-lease expiry drives in a live app.
func (rig *partRig) crash(s, r int) {
	rig.servers[s][r].Close()
	rig.reg.Deregister("broker", rig.addrs[s][r])
	rig.router.Sync(rig.reg.Instances("broker"))
}

// primary returns the index of shard s's current primary (lowest addr),
// mirroring the deterministic-primary rule clients use.
func (rig *partRig) primary(s int) int {
	p := 0
	for r := 1; r < len(rig.addrs[s]); r++ {
		if rig.addrs[s][r] < rig.addrs[s][p] {
			p = r
		}
	}
	return p
}

// TestPartitionedRoundTrip drives the full partitioned lifecycle: keyed
// publishes spread over shards and mirror to every replica, consumes drain
// every message exactly once across shard primaries, and key-addressed acks
// retire primary and mirror copies alike.
func TestPartitionedRoundTrip(t *testing.T) {
	rig, bus := bootPartitioned(t, 2, 2)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := bus.PublishKey(ctx, "t", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	// Both shards should own a slice of the keyspace, and each copy must be
	// mirrored: every replica of a shard holds its primary's messages.
	for s := 0; s < 2; s++ {
		lens := make([]int, 2)
		for r := 0; r < 2; r++ {
			lens[r] = rig.brokers[s][r].Queue("t@g").Len()
		}
		if lens[0] != lens[1] {
			t.Fatalf("shard %d replicas diverge: %v", s, lens)
		}
		if lens[0] == 0 {
			t.Fatalf("shard %d owns no keys; partitioning is degenerate", s)
		}
	}

	got := make(map[string]string, n)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("drained %d/%d messages", len(got), n)
		}
		msg, err := bus.Consume(ctx, "t", "g", time.Minute, 200*time.Millisecond)
		if err != nil {
			t.Fatalf("consume: %v", err)
		}
		if !msg.OK {
			continue
		}
		if _, dup := got[msg.Key]; dup {
			t.Fatalf("key %q delivered twice", msg.Key)
		}
		got[msg.Key] = string(msg.Body)
		if err := bus.Ack(ctx, "t", "g", msg); err != nil {
			t.Fatalf("ack %q: %v", msg.Key, err)
		}
	}
	for i := 0; i < n; i++ {
		if got[fmt.Sprintf("k%d", i)] != fmt.Sprintf("m%d", i) {
			t.Fatalf("key k%d = %q", i, got[fmt.Sprintf("k%d", i)])
		}
	}
	// Acks settled on every replica: the whole tier — mirrors included — is
	// empty, and the primaries' stats agree.
	if lag := rig.cluster.GroupLag("t", "g"); lag != 0 {
		t.Fatalf("cluster lag after drain = %d", lag)
	}
	s, err := bus.Stats(ctx, "t", "g")
	if err != nil || s.Lag() != 0 || s.Acked != n {
		t.Fatalf("stats = %+v, %v", s, err)
	}
}

// TestPartitionedPublishIdempotent pins broker-side dedup: republishing a
// key (the retry path after a partial mirror failure) neither duplicates
// the message nor changes its ID.
func TestPartitionedPublishIdempotent(t *testing.T) {
	_, bus := bootPartitioned(t, 2, 2)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	id1, err := bus.PublishKey(ctx, "t", "stable", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := bus.PublishKey(ctx, "t", "stable", []byte("x"))
	if err != nil || id2 != id1 {
		t.Fatalf("republish = %d, %v; want %d, nil", id2, err, id1)
	}
	s, err := bus.Stats(ctx, "t", "g")
	if err != nil || s.Queued != 1 {
		t.Fatalf("stats after republish = %+v, %v", s, err)
	}
}

// TestPartitionedCrashRedelivery is the crash-window table: one shard, two
// replicas, one keyed message, and a broker crash seeded at each point of
// the message lifecycle. In every pre-ack timing the message survives on
// the mirror and is redelivered exactly once — never dropped, never
// duplicated — and in the post-ack timing the key-addressed settle has
// already retired the mirror copy, so nothing reappears.
func TestPartitionedCrashRedelivery(t *testing.T) {
	cases := []struct {
		name string
		// crashAt: 0 = before any consume (message queued on both),
		// 1 = after consume, before ack (leased on the dying primary),
		// 2 = after ack (settled everywhere).
		crashAt       int
		wantRedeliver bool
	}{
		{"queued-at-crash", 0, true},
		{"leased-at-crash", 1, true},
		{"acked-at-crash", 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig, bus := bootPartitioned(t, 1, 2)
			ctx := context.Background()
			if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
				t.Fatal(err)
			}
			if _, err := bus.PublishKey(ctx, "t", "k", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			if tc.crashAt >= 1 {
				msg, err := bus.Consume(ctx, "t", "g", time.Minute, 200*time.Millisecond)
				if err != nil || !msg.OK || msg.Key != "k" {
					t.Fatalf("pre-crash consume = %+v, %v", msg, err)
				}
				if tc.crashAt == 2 {
					if err := bus.Ack(ctx, "t", "g", msg); err != nil {
						t.Fatal(err)
					}
				}
			}
			rig.crash(0, rig.primary(0))

			// Survivor is primary now. The mirror copy must redeliver exactly
			// once pre-ack, and must stay gone post-ack.
			redelivered := 0
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && redelivered == 0 {
				msg, err := bus.Consume(ctx, "t", "g", time.Minute, 100*time.Millisecond)
				if err != nil {
					t.Fatalf("post-crash consume: %v", err)
				}
				if !msg.OK {
					if !tc.wantRedeliver {
						break // nothing should come back; empty sweep is the pass
					}
					continue
				}
				if msg.Key != "k" || string(msg.Body) != "payload" {
					t.Fatalf("redelivered %+v", msg)
				}
				redelivered++
				if err := bus.Ack(ctx, "t", "g", msg); err != nil {
					t.Fatalf("ack redelivery: %v", err)
				}
			}
			if tc.wantRedeliver && redelivered != 1 {
				t.Fatalf("redelivered %d times, want 1", redelivered)
			}
			if !tc.wantRedeliver && redelivered != 0 {
				t.Fatalf("acked message reappeared %d times", redelivered)
			}
			// Exactly once: a further sweep is empty either way.
			msg, err := bus.Consume(ctx, "t", "g", time.Minute, 100*time.Millisecond)
			if err != nil || msg.OK {
				t.Fatalf("post-drain consume = %+v, %v", msg, err)
			}
			// The survivor's queue is fully retired. (Cluster.GroupLag would
			// still count the corpse's orphaned copy — dead brokers keep
			// their memory — which is why crash experiments assert on
			// delivered state, not on drain.)
			sq := rig.brokers[0][1-rig.primary(0)].Queue("t@g")
			if sq.Len()+sq.InFlight() != 0 {
				t.Fatalf("survivor lag = %d, want 0", sq.Len()+sq.InFlight())
			}
		})
	}
}

// TestPartitionedPublishFailover pins the producer contract through a crash
// the lease has not yet evicted: the publish fails over to the surviving
// replica (the copy lands), reports the partial mirror as an error, and the
// retry with the same key succeeds idempotently once the ring re-forms —
// one copy, delivered once.
func TestPartitionedPublishFailover(t *testing.T) {
	rig, bus := bootPartitioned(t, 1, 2)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	// Kill the primary's process but leave it in the ring: the lease has not
	// expired yet, so the publisher discovers the corpse by failing over.
	p := rig.primary(0)
	rig.servers[0][p].Close()
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	_, err := bus.PublishKey(cctx, "t", "k", []byte("x"))
	cancel()
	if err == nil {
		t.Fatal("publish through a dead primary reported full success")
	}
	if got := rig.brokers[0][1-p].Queue("t@g").Len(); got != 1 {
		t.Fatalf("survivor holds %d copies after failover, want 1", got)
	}
	// Lease eviction: the ring re-forms around the survivor; the producer
	// retries with the same key and now sees full success without a dup.
	rig.reg.Deregister("broker", rig.addrs[0][p])
	rig.router.Sync(rig.reg.Instances("broker"))
	if _, err := bus.PublishKey(ctx, "t", "k", []byte("x")); err != nil {
		t.Fatalf("retry after eviction: %v", err)
	}
	msg, err := bus.Consume(ctx, "t", "g", time.Minute, 200*time.Millisecond)
	if err != nil || !msg.OK || msg.Key != "k" {
		t.Fatalf("consume = %+v, %v", msg, err)
	}
	if err := bus.Ack(ctx, "t", "g", msg); err != nil {
		t.Fatal(err)
	}
	if again, err := bus.Consume(ctx, "t", "g", time.Minute, 100*time.Millisecond); err != nil || again.OK {
		t.Fatalf("duplicate after retry: %+v, %v", again, err)
	}
}
