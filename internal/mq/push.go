package mq

// Push-based delivery: instead of long-polling Consume in a loop — paying
// an RPC per poll and consumeGrace per hung shard even when the topic is
// idle — a consumer opens one standing Push stream per broker primary and
// the broker sends messages as they become deliverable. Leases, settles,
// and redelivery are unchanged: the broker leases before it sends, the
// consumer still Acks/Nacks by key, and a message in flight on a dying
// stream is nacked back for immediate redelivery. The stream's flow-control
// window is the delivery backpressure: a slow consumer parks the broker's
// sender with at most a window of messages leased ahead.

import (
	"context"
	"sync"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// pushWaitSlice bounds each broker-side queue wait between liveness checks
// of the push stream: a local cond wait, so an idle topic costs no RPCs —
// the whole point versus polling — while teardown is noticed within one
// slice.
const pushWaitSlice = 250 * time.Millisecond

// pushReopenBase and pushReopenMax bound the backoff a push consumer's
// per-shard loop applies between failed stream opens (dead primary, lease
// not yet evicted).
const (
	pushReopenBase = 20 * time.Millisecond
	pushReopenMax  = 250 * time.Millisecond
)

// Deliveries is an open push-delivery session. Next blocks for the next
// leased message; the consumer settles it with the bus's Ack/Nack exactly
// as it would a polled one. Close ends the session and releases its
// streams; messages leased but undelivered at Close are nacked back.
type Deliveries interface {
	// Next returns the next delivered message. An error means this session
	// has stopped delivering — the single-broker session ends when its
	// stream does (the consumer reopens, its failover moment), while the
	// partitioned session fails over internally and errors only when its
	// context ends.
	Next() (ConsumeResp, error)
	// Close tears the session down; a blocked Next wakes with an error.
	Close()
}

// PushBus is the optional Bus extension for push-based delivery. Both
// broker clients implement it; whether a consumer uses push or falls back
// to polling is its own config switch.
type PushBus interface {
	Bus
	// Push opens a push-delivery session for the group on the topic. lease
	// bounds per-message processing time exactly as in Consume.
	Push(ctx context.Context, topic, group string, lease time.Duration) (Deliveries, error)
}

var (
	_ PushBus = Client{}
	_ PushBus = (*Partitioned)(nil)
)

// streamDeliveries is the single-broker session: one stream, no failover —
// Next surfaces the stream's end and the consumer reopens.
type streamDeliveries struct{ st *transport.Stream }

func (d *streamDeliveries) Next() (ConsumeResp, error) {
	var m ConsumeResp
	if err := d.st.Recv(&m); err != nil {
		return ConsumeResp{}, err
	}
	return m, nil
}

func (d *streamDeliveries) Close() { d.st.Cancel() }

// Push opens a push stream on the broker. The underlying transport must
// support streaming (rpc clients, balanced pools, and shard replicas all
// do); callers get a coded error otherwise and fall back to polling.
func (c Client) Push(ctx context.Context, topic, group string, lease time.Duration) (Deliveries, error) {
	sc, ok := c.C.(transport.Streamer)
	if !ok {
		return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: transport does not support push delivery")
	}
	st, err := sc.Stream(ctx, "Push", PushReq{Topic: topic, Group: group, LeaseNs: int64(lease)})
	if err != nil {
		return nil, err
	}
	return &streamDeliveries{st: st}, nil
}

// partDeliveries is the partitioned session: one goroutine per shard keeps
// a push stream open against that shard's primary, re-resolving and
// reopening with backoff when the stream dies — which is exactly what a
// primary crash looks like, so failover to the promoted mirror is just the
// next reopen. Deliveries from all shards merge into one channel.
type partDeliveries struct {
	out    chan ConsumeResp
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (d *partDeliveries) Next() (ConsumeResp, error) {
	select {
	case m := <-d.out:
		return m, nil
	case <-d.ctx.Done():
		return ConsumeResp{}, rpc.Errorf(rpc.CodeUnavailable, "mq: push session closed: %v", d.ctx.Err())
	}
}

func (d *partDeliveries) Close() {
	d.cancel()
	d.wg.Wait()
}

// Push opens one push stream per shard primary and merges their deliveries.
// The session survives broker crashes: a shard whose primary dies reopens
// against the survivor once the health lease re-forms the ring.
func (p *Partitioned) Push(ctx context.Context, topic, group string, lease time.Duration) (Deliveries, error) {
	shards := p.router.Shards()
	if len(shards) == 0 {
		return nil, rpc.Errorf(rpc.CodeUnavailable, "mq: no live brokers for topic %q", topic)
	}
	dctx, cancel := context.WithCancel(ctx)
	d := &partDeliveries{out: make(chan ConsumeResp), ctx: dctx, cancel: cancel}
	for _, label := range shards {
		d.wg.Add(1)
		go p.pushShard(d, label, topic, group, lease)
	}
	return d, nil
}

// pushShard keeps one shard's push stream alive for the session: resolve
// the primary (lowest live addr — the same rule publishers use), stream
// deliveries into the merged channel, and on any stream death back off and
// re-resolve. A message received but not yet handed to the consumer when
// the session closes is nacked back so the redelivery is immediate.
func (p *Partitioned) pushShard(d *partDeliveries, label, topic, group string, lease time.Duration) {
	defer d.wg.Done()
	backoff := pushReopenBase
	for d.ctx.Err() == nil {
		reps := byAddr(p.router.GroupReplicas(label))
		if len(reps) == 0 {
			backoff = pushSleep(d.ctx, backoff)
			continue
		}
		st, err := reps[0].Stream(d.ctx, "Push", PushReq{Topic: topic, Group: group, LeaseNs: int64(lease)})
		if err != nil {
			backoff = pushSleep(d.ctx, backoff)
			continue
		}
		for {
			var m ConsumeResp
			if err := st.Recv(&m); err != nil {
				// Stream over: primary crash, broker shutdown, or session end.
				// Back off and re-resolve; the ring may have a new primary.
				backoff = pushSleep(d.ctx, backoff)
				break
			}
			backoff = pushReopenBase // a delivery proves the stream healthy
			select {
			case d.out <- m:
			case <-d.ctx.Done():
				st.Cancel()
				// Best-effort: return the orphaned lease now rather than at
				// lease expiry.
				nctx, ncancel := context.WithTimeout(context.Background(), 2*time.Second)
				p.Nack(nctx, topic, group, m) //nolint:errcheck
				ncancel()
				return
			}
		}
	}
}

// pushSleep waits out one backoff step (or the session's end) and returns
// the next, doubled up to pushReopenMax.
func pushSleep(ctx context.Context, backoff time.Duration) time.Duration {
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	backoff *= 2
	if backoff > pushReopenMax {
		backoff = pushReopenMax
	}
	return backoff
}
