package mq

// Push-based delivery: standing broker streams replacing the consume poll
// loop, and the wait-budget regression the push work exposed in the
// partitioned poll path.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dsb/internal/rpc"
)

// bootPushBroker boots one broker behind an RPC server and returns a typed
// client over a direct rpc.Client.
func bootPushBroker(t *testing.T) (*Broker, Client) {
	t.Helper()
	n := rpc.NewMem()
	b := NewBroker()
	srv := rpc.NewServer("broker")
	RegisterService(srv, b)
	addr, err := srv.Start(n, "broker:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := rpc.NewClient(n, "broker", addr)
	t.Cleanup(func() { c.Close() })
	return b, Client{C: c}
}

// TestPushDelivery drives the single-broker push path: messages published
// before and after the stream opens are all pushed, leases settle by Ack,
// and the queue drains without a single Consume poll.
func TestPushDelivery(t *testing.T) {
	b, bus := bootPushBroker(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := bus.Publish(ctx, "t", []byte(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d, err := bus.Push(ctx, "t", "g", time.Minute)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	defer d.Close()
	got := map[string]bool{}
	for i := 0; i < 4; i++ {
		m, err := d.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got[string(m.Body)] = true
		if err := bus.Ack(ctx, "t", "g", m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if !got[fmt.Sprintf("pre%d", i)] {
			t.Fatalf("missing pre%d; got %v", i, got)
		}
	}
	// A publish against the standing stream is pushed without any new call.
	if _, err := bus.Publish(ctx, "t", []byte("live")); err != nil {
		t.Fatal(err)
	}
	m, err := d.Next()
	if err != nil || string(m.Body) != "live" {
		t.Fatalf("live delivery = %+v, %v", m, err)
	}
	if err := bus.Ack(ctx, "t", "g", m); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		s := b.Topic("t").Subscribe("g").Stats()
		return s.Queued == 0 && s.InFlight == 0
	})
}

// TestPushNackRedelivers pins at-least-once under push: a nacked delivery
// comes back on the same standing stream.
func TestPushNackRedelivers(t *testing.T) {
	_, bus := bootPushBroker(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Publish(ctx, "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	d, err := bus.Push(ctx, "t", "g", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Nack(ctx, "t", "g", m); err != nil {
		t.Fatal(err)
	}
	again, err := d.Next()
	if err != nil || string(again.Body) != "x" || again.Attempts != 2 {
		t.Fatalf("redelivery = %+v, %v; want attempt 2", again, err)
	}
	if err := bus.Ack(ctx, "t", "g", again); err != nil {
		t.Fatal(err)
	}
}

// TestPushSessionCloseWakesNext closes the session under a blocked Next and
// under a broker shutdown; both must wake promptly.
func TestPushSessionCloseWakesNext(t *testing.T) {
	_, bus := bootPushBroker(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	d, err := bus.Push(ctx, "t", "g", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	woke := make(chan error, 1)
	go func() {
		_, err := d.Next()
		woke <- err
	}()
	time.Sleep(20 * time.Millisecond) // Next is parked on the idle stream
	d.Close()
	select {
	case err := <-woke:
		if err == nil {
			t.Fatal("Next returned a message from an idle closed session")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still parked after Close")
	}
}

// TestPushPartitioned drives push across the sharded replicated tier: every
// keyed message lands exactly once through the merged per-shard streams and
// key-addressed acks retire mirrors as usual.
func TestPushPartitioned(t *testing.T) {
	rig, bus := bootPartitioned(t, 2, 2)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	d, err := bus.Push(ctx, "t", "g", time.Minute)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	defer d.Close()
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := bus.PublishKey(ctx, "t", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	got := map[string]string{}
	for len(got) < n {
		m, err := d.Next()
		if err != nil {
			t.Fatalf("Next after %d/%d: %v", len(got), n, err)
		}
		if _, dup := got[m.Key]; dup {
			t.Fatalf("key %q delivered twice", m.Key)
		}
		got[m.Key] = string(m.Body)
		if err := bus.Ack(ctx, "t", "g", m); err != nil {
			t.Fatalf("ack %q: %v", m.Key, err)
		}
	}
	for i := 0; i < n; i++ {
		if got[fmt.Sprintf("k%d", i)] != fmt.Sprintf("m%d", i) {
			t.Fatalf("key k%d = %q", i, got[fmt.Sprintf("k%d", i)])
		}
	}
	waitUntil(t, func() bool { return rig.cluster.GroupLag("t", "g") == 0 })
}

// TestPushPartitionedFailover crashes a shard primary under a standing push
// session: the per-shard loop reopens against the promoted mirror and the
// unacked message redelivers — at-least-once survives the crash without the
// consumer doing anything.
func TestPushPartitionedFailover(t *testing.T) {
	rig, bus := bootPartitioned(t, 1, 2)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	d, err := bus.Push(ctx, "t", "g", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := bus.PublishKey(ctx, "t", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	m, err := d.Next()
	if err != nil || m.Key != "k" {
		t.Fatalf("first delivery = %+v, %v", m, err)
	}
	// Leased on the primary, unacked. Kill it: the mirror copy must come
	// back through the reopened stream.
	rig.crash(0, rig.primary(0))
	again, err := d.Next()
	if err != nil || again.Key != "k" || string(again.Body) != "payload" {
		t.Fatalf("post-crash redelivery = %+v, %v", again, err)
	}
	if err := bus.Ack(ctx, "t", "g", again); err != nil {
		t.Fatalf("ack: %v", err)
	}
	sq := rig.brokers[0][1-rig.primary(0)].Queue("t@g")
	waitUntil(t, func() bool { return sq.Len()+sq.InFlight() == 0 })
}

// TestPartitionedConsumeWaitBudget is the wait-overshoot regression: with
// every shard primary hung, each per-shard poll used to get its own
// consumeGrace on top of its wait share, so a sweep over N shards burned
// wait + N*grace — 600ms here against a 200ms wait. The whole sweep must be
// bounded by wait plus ONE grace.
func TestPartitionedConsumeWaitBudget(t *testing.T) {
	rig, bus := bootPartitioned(t, 4, 1)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, srvs := range rig.servers {
		srvs[0].Hang() // a corpse the lease has not evicted: consumes all frames, answers none
	}
	const wait = 200 * time.Millisecond
	start := time.Now()
	_, err := bus.Consume(ctx, "t", "g", time.Minute, wait)
	took := time.Since(start)
	if err == nil {
		t.Fatal("consume against all-hung primaries reported success")
	}
	// Budget: wait + one consumeGrace, plus scheduling slack. The pre-fix
	// code took wait + 4*consumeGrace (~600ms).
	if limit := wait + consumeGrace + 150*time.Millisecond; took > limit {
		t.Fatalf("consume sweep took %v, want <= %v (grace must not sum across shards)", took, limit)
	}
}

// waitUntil polls cond until it holds or a 5s deadline trips.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
