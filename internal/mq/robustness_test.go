package mq

import (
	"context"
	"testing"
	"time"

	"dsb/internal/rpc"
)

// TestDLQPeekAndRedrive walks the operator loop for a poison message over
// the wire: it dead-letters after exhausting attempts, PeekDLQ shows it
// without consuming, Redrive drains it back to the origin queue with a
// reset attempt budget, and — once "fixed" — it is delivered and settles.
func TestDLQPeekAndRedrive(t *testing.T) {
	bus, b := bootBrokerService(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{MaxAttempts: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.PublishKey(ctx, "t", "poison", []byte("bad")); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		msg, err := bus.Consume(ctx, "t", "g", time.Minute, time.Second)
		if err != nil || !msg.OK || msg.Attempts != attempt {
			t.Fatalf("attempt %d consume = %+v, %v", attempt, msg, err)
		}
		if err := bus.Nack(ctx, "t", "g", msg); err != nil {
			t.Fatal(err)
		}
	}

	// Dead-lettered: gone from the group queue, visible via PeekDLQ with its
	// key intact, and Peek does not consume (two peeks agree).
	if msg, err := bus.Consume(ctx, "t", "g", time.Minute, 30*time.Millisecond); err != nil || msg.OK {
		t.Fatalf("consume after dead-letter = %+v, %v", msg, err)
	}
	for i := 0; i < 2; i++ {
		dead, err := bus.PeekDLQ(ctx, "t", "g", 10)
		if err != nil || len(dead) != 1 {
			t.Fatalf("PeekDLQ #%d = %+v, %v", i, dead, err)
		}
		if dead[0].Key != "poison" || string(dead[0].Body) != "bad" {
			t.Fatalf("DLQ contents = %+v", dead[0])
		}
	}

	// Redrive: back to the origin with attempts reset, deliverable again.
	n, err := bus.Redrive(ctx, "t", "g")
	if err != nil || n != 1 {
		t.Fatalf("Redrive = %d, %v", n, err)
	}
	if dead, err := bus.PeekDLQ(ctx, "t", "g", 10); err != nil || len(dead) != 0 {
		t.Fatalf("DLQ after redrive = %+v, %v", dead, err)
	}
	msg, err := bus.Consume(ctx, "t", "g", time.Minute, time.Second)
	if err != nil || !msg.OK || msg.Attempts != 1 || msg.Key != "poison" {
		t.Fatalf("redriven consume = %+v, %v", msg, err)
	}
	if err := bus.Ack(ctx, "t", "g", msg); err != nil {
		t.Fatal(err)
	}
	// Ack is one-way (fire-and-forget), so poll until the settle lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := b.Queue("t@g").Len() + b.Queue("t@g").InFlight()
		if got == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("residual backlog = %d after ack settled", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRedriveEmptyDLQ pins the no-op path: redriving a group with nothing
// dead-lettered reports zero without erroring.
func TestRedriveEmptyDLQ(t *testing.T) {
	bus, _ := bootBrokerService(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if n, err := bus.Redrive(ctx, "t", "g"); err != nil || n != 0 {
		t.Fatalf("Redrive = %d, %v", n, err)
	}
}

// TestBrokerCloseWakesReceiveWait is the broker-level shutdown contract: a
// waiter parked in ReceiveWait returns promptly when the broker closes,
// instead of burning the rest of its wait budget.
func TestBrokerCloseWakesReceiveWait(t *testing.T) {
	b := NewBroker()
	q := b.Queue("q")
	done := make(chan bool, 1)
	go func() {
		_, ok := q.ReceiveWait(time.Minute, 30*time.Second)
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	start := time.Now()
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed queue delivered a message")
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("ReceiveWait took %v to notice Close", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReceiveWait still parked after Close; waiter leaked")
	}
}

// TestServerCloseWakesParkedConsume is the wire-level regression: closing
// the broker's server while a Consume long-poll is parked must (a) return
// the server's Close promptly — the parked handler goroutine is woken, not
// leaked — and (b) fail the in-flight client call instead of leaving it to
// the full wait budget. A fresh Consume against the closed broker gets the
// coded Unavailable error consumers key their failover on.
func TestServerCloseWakesParkedConsume(t *testing.T) {
	b := NewBroker()
	srv := rpc.NewServer("broker")
	RegisterService(srv, b)
	n := rpc.NewMem()
	addr, err := srv.Start(n, "broker:0")
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.NewClient(n, "broker", addr)
	defer c.Close()
	bus := Client{C: c}
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatal(err)
	}

	consumeDone := make(chan error, 1)
	go func() {
		_, err := bus.Consume(ctx, "t", "g", time.Minute, 30*time.Second)
		consumeDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the long poll park server-side

	closeDone := make(chan struct{})
	start := time.Now()
	go func() { srv.Close(); close(closeDone) }()
	select {
	case <-closeDone:
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("server Close took %v with a parked consume", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung on the parked consume handler")
	}
	select {
	case err := <-consumeDone:
		if err == nil {
			t.Fatal("parked consume returned success from a closed broker")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked consume never returned after server Close")
	}

	// The closed queue now answers with a coded error, not an empty poll:
	// that is what lets a partitioned consumer fail over instead of
	// spinning its wait budget against a corpse.
	c2 := rpc.NewClient(n, "broker", addr)
	defer c2.Close()
	_, err = Client{C: c2}.Consume(ctx, "t", "g", time.Minute, 50*time.Millisecond)
	if err == nil {
		t.Fatal("consume against closed broker succeeded")
	}
}
