package mq

import (
	"context"
	"time"

	"dsb/internal/codec"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// Wire messages for the broker's RPC interface. Consumers address work by
// (Topic, Group); plain queues (no fan-out) use Topic="" and Queue set.

// PublishReq publishes one message to a topic (fan-out to all subscribed
// groups) or, when Topic is empty, to the named plain queue. Key, when set,
// makes the publish idempotent on this broker (retries and hedges are safe)
// and identifies the message across broker replicas.
type PublishReq struct {
	Topic string
	Queue string
	Key   string
	Body  []byte
}

// MirrorReq inserts a copy of an already-admitted keyed message — the
// replication stream between a shard's primary and its mirrors. Unlike
// Publish it never sheds on MaxDepth and requires a Key.
type MirrorReq struct {
	Topic string
	Queue string
	Key   string
	Body  []byte
}

// MirrorResp reports how many queues accepted a copy (0 = everywhere
// deduplicated or tombstoned, which still counts as mirrored).
type MirrorResp struct{ N int }

// PublishResp acknowledges the publish; the broker has durably enqueued the
// message for every subscribed group by the time this returns.
type PublishResp struct{ ID uint64 }

// SubscribeReq registers a consumer group on a topic and configures the
// group queue's bounds (zero values mean unbounded).
type SubscribeReq struct {
	Topic       string
	Group       string
	MaxAttempts int
	MaxDepth    int
}

// ConsumeReq long-polls one message. LeaseNs bounds processing time before
// redelivery (<=0 means the 30s default); WaitNs bounds the poll.
type ConsumeReq struct {
	Topic   string
	Group   string
	Queue   string
	LeaseNs int64
	WaitNs  int64
}

// ConsumeResp returns the leased message; OK=false means the wait expired
// with nothing deliverable. Key is set for replicated messages and is what
// the settle must route by (the local ID is only meaningful on the broker
// that leased it).
type ConsumeResp struct {
	ID       uint64
	Key      string
	Body     []byte
	Attempts int
	OK       bool
}

// PushReq opens a push-delivery stream: the broker leases messages for the
// group as they become deliverable and streams each as a ConsumeResp item,
// one standing stream replacing the consumer's poll loop. LeaseNs bounds
// per-message processing exactly as in ConsumeReq; settles still travel as
// ordinary Ack/Nack calls.
type PushReq struct {
	Topic   string
	Group   string
	Queue   string
	LeaseNs int64
}

// AckReq settles a lease: acknowledge (done) or negative-acknowledge
// (redeliver, or dead-letter once attempts are exhausted). With Key set the
// settle is by key — valid on any replica holding a copy, which is how
// settles survive the leasing broker's death; otherwise by local lease ID.
type AckReq struct {
	Topic string
	Group string
	Queue string
	ID    uint64
	Key   string
}

// AckResp reports whether the lease was still live.
type AckResp struct{ OK bool }

// StatsReq asks for one group queue's snapshot.
type StatsReq struct {
	Topic string
	Group string
	Queue string
}

// StatsResp mirrors Stats over the wire.
type StatsResp struct {
	Queued       int
	InFlight     int
	Published    int64
	Acked        int64
	Redelivered  int64
	DeadLettered int64
	OldestAgeNs  int64
}

// Lag is the consumer backlog (queued + in-flight).
func (s StatsResp) Lag() int64 { return int64(s.Queued + s.InFlight) }

// PeekReq snapshots queued messages without leasing them. DLQ=true peeks
// the addressed queue's dead-letter companion — the operator's view into
// poisoned work. Limit <= 0 means all.
type PeekReq struct {
	Topic string
	Group string
	Queue string
	DLQ   bool
	Limit int
}

// PeekResp carries the snapshot.
type PeekResp struct{ Msgs []Message }

// RedriveReq drains the addressed queue's dead-letter companion back into
// the origin queue with attempt counts reset.
type RedriveReq struct {
	Topic string
	Group string
	Queue string
}

// RedriveResp reports how many messages were requeued.
type RedriveResp struct{ N int }

// queueFor resolves the queue a request addresses: a topic's group queue,
// or a plain named queue. Consume on a topic implies Subscribe, so a
// consumer that outlives a broker restart re-registers its group on first
// poll; publishes before that first poll still require the boot-time
// Subscribe to be fanned out.
func queueFor(b *Broker, topic, group, queue string) (*Queue, error) {
	if topic != "" {
		if group == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: topic %q requires a group", topic)
		}
		return b.Topic(topic).Subscribe(group), nil
	}
	if queue == "" {
		return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
	}
	return b.Queue(queue), nil
}

// queueNameFor resolves the broker-level queue name a request addresses —
// the string form Peek/Redrive need to reach dead-letter companions.
func queueNameFor(topic, group, queue string) (string, error) {
	if topic != "" {
		if group == "" {
			return "", rpc.Errorf(rpc.CodeBadRequest, "mq: topic %q requires a group", topic)
		}
		return topic + "@" + group, nil
	}
	if queue == "" {
		return "", rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
	}
	return queue, nil
}

// RegisterService exposes broker as an RPC microservice on srv with methods
// Publish, Subscribe, Consume, Ack, Nack, and Stats — the networked broker
// tier the async application paths publish through. Ack and Nack are safe
// to invoke one-way: a lost settle only costs a redelivery, which
// at-least-once consumers already tolerate.
func RegisterService(srv *rpc.Server, broker *Broker) {
	// Server shutdown must wake parked long-pollers: Close runs after the
	// server stops accepting but before it waits on in-flight handlers, so a
	// Consume parked in ReceiveWait returns promptly instead of burning its
	// full wait budget (or wedging Close forever).
	srv.OnClose(broker.Close)
	srv.Handle("Publish", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req PublishReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		if req.Topic != "" {
			id, err := broker.Topic(req.Topic).PublishKey(req.Key, req.Body)
			if err != nil {
				return nil, err
			}
			return codec.Marshal(PublishResp{ID: id})
		}
		if req.Queue == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
		}
		id, err := broker.Queue(req.Queue).PublishKey(req.Key, req.Body)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(PublishResp{ID: id})
	})
	srv.Handle("Mirror", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req MirrorReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		if req.Key == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: mirror requires a key")
		}
		if req.Topic != "" {
			return codec.Marshal(MirrorResp{N: broker.Topic(req.Topic).Insert(req.Key, req.Body)})
		}
		if req.Queue == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
		}
		n := 0
		if broker.Queue(req.Queue).Insert(req.Key, req.Body) {
			n = 1
		}
		return codec.Marshal(MirrorResp{N: n})
	})
	srv.Handle("Subscribe", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req SubscribeReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		if req.Topic == "" || req.Group == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: subscribe requires topic and group")
		}
		t := broker.Topic(req.Topic)
		if req.MaxAttempts != 0 || req.MaxDepth != 0 {
			t.Configure(QueueConfig{MaxAttempts: req.MaxAttempts, MaxDepth: req.MaxDepth})
		}
		t.Subscribe(req.Group)
		return nil, nil
	})
	srv.Handle("Consume", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req ConsumeReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		wait := time.Duration(req.WaitNs)
		// Never park past the caller's deadline: a long-poll that outlives
		// the RPC would pin a server goroutine answering no one.
		if dl, ok := ctx.Deadline(); ok {
			if budget := time.Until(dl) - 10*time.Millisecond; budget < wait {
				wait = budget
			}
		}
		msg, ok := q.ReceiveWait(time.Duration(req.LeaseNs), wait)
		if !ok {
			if q.Closed() {
				// A coded error, not an empty poll: the consumer must fail
				// over to a sibling replica, not come back here.
				return nil, rpc.Errorf(rpc.CodeUnavailable, "mq: queue %q closed", q.Name())
			}
			return codec.Marshal(ConsumeResp{})
		}
		return codec.Marshal(ConsumeResp{ID: msg.ID, Key: msg.Key, Body: msg.Body, Attempts: msg.Attempts, OK: true})
	})
	srv.HandleStream("Push", func(ctx *rpc.Ctx, payload []byte, st *rpc.ServerStream) error {
		var req PushReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return err
		}
		for {
			// Short wait slices — a local cond wait, no RPCs — keep the loop
			// responsive to stream teardown (client gone, conn death, server
			// shutdown) without busy-spinning an idle queue.
			msg, ok := q.ReceiveWait(time.Duration(req.LeaseNs), pushWaitSlice)
			select {
			case <-st.Done():
				if ok {
					// Leased after the client left: hand it straight back so a
					// failed-over consumer gets it now, not at lease expiry.
					q.Nack(msg.ID)
				}
				return nil
			case <-ctx.Done():
				if ok {
					q.Nack(msg.ID)
				}
				return nil
			default:
			}
			if !ok {
				if q.Closed() {
					// Same coded signal the poll path gives: fail over to a
					// sibling replica, don't come back here.
					return rpc.Errorf(rpc.CodeUnavailable, "mq: queue %q closed", q.Name())
				}
				continue
			}
			// Send blocks while the client's window is exhausted — backpressure
			// with the message leased, so a slow consumer throttles delivery
			// without breaking at-least-once.
			err := st.SendMsg(ConsumeResp{ID: msg.ID, Key: msg.Key, Body: msg.Body, Attempts: msg.Attempts, OK: true})
			if err != nil {
				q.Nack(msg.ID) // stream died mid-delivery; redeliver immediately
				return err
			}
		}
	})
	srv.Handle("Ack", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req AckReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		if req.Key != "" {
			return codec.Marshal(AckResp{OK: q.Remove(req.Key)})
		}
		return codec.Marshal(AckResp{OK: q.Ack(req.ID)})
	})
	srv.Handle("Nack", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req AckReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		if req.Key != "" {
			return codec.Marshal(AckResp{OK: q.NackKey(req.Key)})
		}
		return codec.Marshal(AckResp{OK: q.Nack(req.ID)})
	})
	srv.Handle("Peek", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req PeekReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		name, err := queueNameFor(req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		if req.Topic != "" {
			broker.Topic(req.Topic).Subscribe(req.Group) // materialize + configure
		}
		if req.DLQ {
			name += DeadLetterSuffix
		}
		return codec.Marshal(PeekResp{Msgs: broker.Queue(name).Peek(req.Limit)})
	})
	srv.Handle("Redrive", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req RedriveReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		name, err := queueNameFor(req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		if req.Topic != "" {
			broker.Topic(req.Topic).Subscribe(req.Group)
		}
		return codec.Marshal(RedriveResp{N: broker.Redrive(name)})
	})
	srv.Handle("Stats", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req StatsReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		s := q.Stats()
		return codec.Marshal(StatsResp{
			Queued:       s.Queued,
			InFlight:     s.InFlight,
			Published:    s.Published,
			Acked:        s.Acked,
			Redelivered:  s.Redelivered,
			DeadLettered: s.DeadLettered,
			OldestAgeNs:  int64(s.OldestAge),
		})
	})
}

// Client is a typed view of the broker service over any transport.Caller
// (an *lb.Balanced, an *rpc.Client, or a shard router).
type Client struct{ C transport.Caller }

// Publish sends one message to a topic and returns after the broker has
// enqueued it for every subscribed group — the "returns after broker ack"
// contract async producers rely on.
func (c Client) Publish(ctx context.Context, topic string, body []byte) (uint64, error) {
	return c.PublishKey(ctx, topic, "", body)
}

// PublishKey is Publish with a message key, making retries against the
// broker idempotent (see Queue.PublishKey).
func (c Client) PublishKey(ctx context.Context, topic, key string, body []byte) (uint64, error) {
	var resp PublishResp
	if err := c.C.Call(ctx, "Publish", PublishReq{Topic: topic, Key: key, Body: body}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Subscribe registers a consumer group on a topic with the given bounds.
func (c Client) Subscribe(ctx context.Context, topic, group string, cfg QueueConfig) error {
	return c.C.Call(ctx, "Subscribe", SubscribeReq{
		Topic: topic, Group: group, MaxAttempts: cfg.MaxAttempts, MaxDepth: cfg.MaxDepth,
	}, nil)
}

// Consume long-polls one message for the group.
func (c Client) Consume(ctx context.Context, topic, group string, lease, wait time.Duration) (ConsumeResp, error) {
	var resp ConsumeResp
	err := c.C.Call(ctx, "Consume", ConsumeReq{
		Topic: topic, Group: group, LeaseNs: int64(lease), WaitNs: int64(wait),
	}, &resp)
	return resp, err
}

// Ack settles a leased message as done. When the underlying transport
// supports fire-and-forget it goes one-way: a lost ack only costs a
// redelivery, which at-least-once consumers already tolerate, so the
// consumer loop skips the settle round trip on its hot path.
func (c Client) Ack(ctx context.Context, topic, group string, m ConsumeResp) error {
	req := AckReq{Topic: topic, Group: group, ID: m.ID}
	if ow, ok := c.C.(transport.OneWayCaller); ok {
		return ow.CallOneWay(ctx, "Ack", req)
	}
	return c.C.Call(ctx, "Ack", req, nil)
}

// Nack returns a leased message for redelivery (or dead-lettering, once
// attempts are exhausted). Synchronous: a nacking consumer is already off
// its hot path and the caller usually wants to know the settle landed.
func (c Client) Nack(ctx context.Context, topic, group string, m ConsumeResp) error {
	var resp AckResp
	return c.C.Call(ctx, "Nack", AckReq{Topic: topic, Group: group, ID: m.ID}, &resp)
}

// Stats snapshots a group queue.
func (c Client) Stats(ctx context.Context, topic, group string) (StatsResp, error) {
	var resp StatsResp
	err := c.C.Call(ctx, "Stats", StatsReq{Topic: topic, Group: group}, &resp)
	return resp, err
}

// PeekDLQ snapshots a group's dead-letter queue without leasing anything —
// the operator's look at poisoned work (limit <= 0 means all).
func (c Client) PeekDLQ(ctx context.Context, topic, group string, limit int) ([]Message, error) {
	var resp PeekResp
	err := c.C.Call(ctx, "Peek", PeekReq{Topic: topic, Group: group, DLQ: true, Limit: limit}, &resp)
	return resp.Msgs, err
}

// Redrive drains a group's dead-letter queue back into the group queue
// with attempt counts reset, returning how many messages were requeued —
// the "we fixed the bug, run the poison again" operation.
func (c Client) Redrive(ctx context.Context, topic, group string) (int, error) {
	var resp RedriveResp
	err := c.C.Call(ctx, "Redrive", RedriveReq{Topic: topic, Group: group}, &resp)
	return resp.N, err
}
