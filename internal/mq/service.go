package mq

import (
	"context"
	"time"

	"dsb/internal/codec"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// Wire messages for the broker's RPC interface. Consumers address work by
// (Topic, Group); plain queues (no fan-out) use Topic="" and Queue set.

// PublishReq publishes one message to a topic (fan-out to all subscribed
// groups) or, when Topic is empty, to the named plain queue.
type PublishReq struct {
	Topic string
	Queue string
	Body  []byte
}

// PublishResp acknowledges the publish; the broker has durably enqueued the
// message for every subscribed group by the time this returns.
type PublishResp struct{ ID uint64 }

// SubscribeReq registers a consumer group on a topic and configures the
// group queue's bounds (zero values mean unbounded).
type SubscribeReq struct {
	Topic       string
	Group       string
	MaxAttempts int
	MaxDepth    int
}

// ConsumeReq long-polls one message. LeaseNs bounds processing time before
// redelivery (<=0 means the 30s default); WaitNs bounds the poll.
type ConsumeReq struct {
	Topic   string
	Group   string
	Queue   string
	LeaseNs int64
	WaitNs  int64
}

// ConsumeResp returns the leased message; OK=false means the wait expired
// with nothing deliverable.
type ConsumeResp struct {
	ID       uint64
	Body     []byte
	Attempts int
	OK       bool
}

// AckReq settles a lease: acknowledge (done) or negative-acknowledge
// (redeliver, or dead-letter once attempts are exhausted).
type AckReq struct {
	Topic string
	Group string
	Queue string
	ID    uint64
}

// AckResp reports whether the lease was still live.
type AckResp struct{ OK bool }

// StatsReq asks for one group queue's snapshot.
type StatsReq struct {
	Topic string
	Group string
	Queue string
}

// StatsResp mirrors Stats over the wire.
type StatsResp struct {
	Queued       int
	InFlight     int
	Published    int64
	Acked        int64
	Redelivered  int64
	DeadLettered int64
	OldestAgeNs  int64
}

// Lag is the consumer backlog (queued + in-flight).
func (s StatsResp) Lag() int64 { return int64(s.Queued + s.InFlight) }

// queueFor resolves the queue a request addresses: a topic's group queue,
// or a plain named queue. Consume on a topic implies Subscribe, so a
// consumer that outlives a broker restart re-registers its group on first
// poll; publishes before that first poll still require the boot-time
// Subscribe to be fanned out.
func queueFor(b *Broker, topic, group, queue string) (*Queue, error) {
	if topic != "" {
		if group == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: topic %q requires a group", topic)
		}
		return b.Topic(topic).Subscribe(group), nil
	}
	if queue == "" {
		return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
	}
	return b.Queue(queue), nil
}

// RegisterService exposes broker as an RPC microservice on srv with methods
// Publish, Subscribe, Consume, Ack, Nack, and Stats — the networked broker
// tier the async application paths publish through. Ack and Nack are safe
// to invoke one-way: a lost settle only costs a redelivery, which
// at-least-once consumers already tolerate.
func RegisterService(srv *rpc.Server, broker *Broker) {
	srv.Handle("Publish", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req PublishReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		if req.Topic != "" {
			id, err := broker.Topic(req.Topic).Publish(req.Body)
			if err != nil {
				return nil, err
			}
			return codec.Marshal(PublishResp{ID: id})
		}
		if req.Queue == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: no topic or queue named")
		}
		id, err := broker.Queue(req.Queue).Publish(req.Body)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(PublishResp{ID: id})
	})
	srv.Handle("Subscribe", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req SubscribeReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		if req.Topic == "" || req.Group == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mq: subscribe requires topic and group")
		}
		t := broker.Topic(req.Topic)
		if req.MaxAttempts != 0 || req.MaxDepth != 0 {
			t.Configure(QueueConfig{MaxAttempts: req.MaxAttempts, MaxDepth: req.MaxDepth})
		}
		t.Subscribe(req.Group)
		return nil, nil
	})
	srv.Handle("Consume", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req ConsumeReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		wait := time.Duration(req.WaitNs)
		// Never park past the caller's deadline: a long-poll that outlives
		// the RPC would pin a server goroutine answering no one.
		if dl, ok := ctx.Deadline(); ok {
			if budget := time.Until(dl) - 10*time.Millisecond; budget < wait {
				wait = budget
			}
		}
		msg, ok := q.ReceiveWait(time.Duration(req.LeaseNs), wait)
		if !ok {
			return codec.Marshal(ConsumeResp{})
		}
		return codec.Marshal(ConsumeResp{ID: msg.ID, Body: msg.Body, Attempts: msg.Attempts, OK: true})
	})
	srv.Handle("Ack", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req AckReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(AckResp{OK: q.Ack(req.ID)})
	})
	srv.Handle("Nack", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req AckReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(AckResp{OK: q.Nack(req.ID)})
	})
	srv.Handle("Stats", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req StatsReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "decode: %v", err)
		}
		q, err := queueFor(broker, req.Topic, req.Group, req.Queue)
		if err != nil {
			return nil, err
		}
		s := q.Stats()
		return codec.Marshal(StatsResp{
			Queued:       s.Queued,
			InFlight:     s.InFlight,
			Published:    s.Published,
			Acked:        s.Acked,
			Redelivered:  s.Redelivered,
			DeadLettered: s.DeadLettered,
			OldestAgeNs:  int64(s.OldestAge),
		})
	})
}

// Client is a typed view of the broker service over any transport.Caller
// (an *lb.Balanced, an *rpc.Client, or a shard router).
type Client struct{ C transport.Caller }

// Publish sends one message to a topic and returns after the broker has
// enqueued it for every subscribed group — the "returns after broker ack"
// contract async producers rely on.
func (c Client) Publish(ctx context.Context, topic string, body []byte) (uint64, error) {
	var resp PublishResp
	if err := c.C.Call(ctx, "Publish", PublishReq{Topic: topic, Body: body}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Subscribe registers a consumer group on a topic with the given bounds.
func (c Client) Subscribe(ctx context.Context, topic, group string, cfg QueueConfig) error {
	return c.C.Call(ctx, "Subscribe", SubscribeReq{
		Topic: topic, Group: group, MaxAttempts: cfg.MaxAttempts, MaxDepth: cfg.MaxDepth,
	}, nil)
}

// Consume long-polls one message for the group.
func (c Client) Consume(ctx context.Context, topic, group string, lease, wait time.Duration) (ConsumeResp, error) {
	var resp ConsumeResp
	err := c.C.Call(ctx, "Consume", ConsumeReq{
		Topic: topic, Group: group, LeaseNs: int64(lease), WaitNs: int64(wait),
	}, &resp)
	return resp, err
}

// Ack settles a lease as done. When the underlying transport supports
// fire-and-forget it goes one-way: a lost ack only costs a redelivery,
// which at-least-once consumers already tolerate, so the consumer loop
// skips the settle round trip on its hot path.
func (c Client) Ack(ctx context.Context, topic, group string, id uint64) error {
	req := AckReq{Topic: topic, Group: group, ID: id}
	if ow, ok := c.C.(transport.OneWayCaller); ok {
		return ow.CallOneWay(ctx, "Ack", req)
	}
	return c.C.Call(ctx, "Ack", req, nil)
}

// Nack returns a lease for redelivery (or dead-lettering, once attempts are
// exhausted). Synchronous: a nacking consumer is already off its hot path
// and the caller usually wants to know the settle landed.
func (c Client) Nack(ctx context.Context, topic, group string, id uint64) error {
	var resp AckResp
	return c.C.Call(ctx, "Nack", AckReq{Topic: topic, Group: group, ID: id}, &resp)
}

// Stats snapshots a group queue.
func (c Client) Stats(ctx context.Context, topic, group string) (StatsResp, error) {
	var resp StatsResp
	err := c.C.Call(ctx, "Stats", StatsReq{Topic: topic, Group: group}, &resp)
	return resp, err
}
