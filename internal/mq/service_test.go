package mq

import (
	"context"
	"testing"
	"time"

	"dsb/internal/rpc"
)

// bootBrokerService serves a broker over an in-memory network and returns a
// typed client wired through the real RPC stack, plus the broker for
// white-box assertions.
func bootBrokerService(t *testing.T) (Client, *Broker) {
	t.Helper()
	b := NewBroker()
	srv := rpc.NewServer("broker")
	RegisterService(srv, b)
	n := rpc.NewMem()
	addr, err := srv.Start(n, "broker:0")
	if err != nil {
		t.Fatalf("start broker: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	c := rpc.NewClient(n, "broker", addr)
	t.Cleanup(func() { c.Close() })
	return Client{C: c}, b
}

// TestBrokerServiceRoundTrip drives the full networked lifecycle:
// subscribe, publish (ack'd by the broker), long-poll consume, one-way ack,
// and stats — the exact sequence the application tiers run.
func TestBrokerServiceRoundTrip(t *testing.T) {
	bus, _ := bootBrokerService(t)
	ctx := context.Background()

	if err := bus.Subscribe(ctx, "orders", "commit", QueueConfig{MaxAttempts: 4, MaxDepth: 64}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	id, err := bus.Publish(ctx, "orders", []byte("order-1"))
	if err != nil || id == 0 {
		t.Fatalf("Publish = %d, %v", id, err)
	}
	msg, err := bus.Consume(ctx, "orders", "commit", time.Minute, 2*time.Second)
	if err != nil || !msg.OK {
		t.Fatalf("Consume = %+v, %v", msg, err)
	}
	if string(msg.Body) != "order-1" || msg.Attempts != 1 {
		t.Fatalf("consumed %+v", msg)
	}
	if err := bus.Ack(ctx, "orders", "commit", msg); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	// Ack is one-way; poll stats until the settle lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := bus.Stats(ctx, "orders", "commit")
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if s.Acked == 1 && s.Lag() == 0 {
			if s.Published != 1 {
				t.Fatalf("Stats = %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ack never landed: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBrokerServiceConsumeWaits pins the long-poll contract over the wire:
// an empty consume parks for the wait budget and a concurrent publish wakes
// it with the message.
func TestBrokerServiceConsumeWaits(t *testing.T) {
	bus, _ := bootBrokerService(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	start := time.Now()
	msg, err := bus.Consume(ctx, "t", "g", time.Minute, 50*time.Millisecond)
	if err != nil || msg.OK {
		t.Fatalf("empty consume = %+v, %v", msg, err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("consume returned immediately instead of long-polling")
	}

	got := make(chan ConsumeResp, 1)
	go func() {
		if m, err := bus.Consume(ctx, "t", "g", time.Minute, 5*time.Second); err == nil && m.OK {
			got <- m
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := bus.Publish(ctx, "t", []byte("wake")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case m := <-got:
		if string(m.Body) != "wake" {
			t.Fatalf("got %q", m.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked networked consume never woke on publish")
	}
}

// TestBrokerServiceNackRedelivers checks the networked settle path for the
// failure case, including the dead-letter diversion.
func TestBrokerServiceNackRedelivers(t *testing.T) {
	bus, b := bootBrokerService(t)
	ctx := context.Background()
	if err := bus.Subscribe(ctx, "t", "g", QueueConfig{MaxAttempts: 2}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := bus.Publish(ctx, "t", []byte("flaky")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m1, err := bus.Consume(ctx, "t", "g", time.Minute, time.Second)
	if err != nil || !m1.OK {
		t.Fatalf("first consume = %+v, %v", m1, err)
	}
	if err := bus.Nack(ctx, "t", "g", m1); err != nil {
		t.Fatalf("Nack: %v", err)
	}
	m2, err := bus.Consume(ctx, "t", "g", time.Minute, time.Second)
	if err != nil || !m2.OK || m2.Attempts != 2 {
		t.Fatalf("redelivery = %+v, %v", m2, err)
	}
	if err := bus.Nack(ctx, "t", "g", m2); err != nil {
		t.Fatalf("second Nack: %v", err)
	}
	// Attempts exhausted: the message is in the DLQ, not the group queue.
	m3, err := bus.Consume(ctx, "t", "g", time.Minute, 30*time.Millisecond)
	if err != nil || m3.OK {
		t.Fatalf("post-exhaustion consume = %+v, %v", m3, err)
	}
	if got := b.Queue("t@g" + DeadLetterSuffix).Len(); got != 1 {
		t.Fatalf("DLQ Len = %d, want 1", got)
	}
	s, err := bus.Stats(ctx, "t", "g")
	if err != nil || s.DeadLettered != 1 || s.Redelivered != 1 {
		t.Fatalf("Stats = %+v, %v", s, err)
	}
}
