package registry

import (
	"sync"
	"time"
)

// Lease is a registration with a health TTL. The owning instance must call
// Renew before the TTL elapses or the registry evicts the address and
// notifies Changed watchers, exactly as an explicit Deregister would. This
// is what lets crashed replicas actually leave the serving set: a clean
// shutdown calls Release, a crash simply stops heartbeating.
type Lease struct {
	r       *Registry
	service string
	addr    string
	ttl     time.Duration

	mu       sync.Mutex
	deadline time.Time
	timer    *time.Timer
	done     bool
}

// RegisterLease registers the address and arms a TTL. It behaves like
// Register for watchers (notified only when the address is new); eviction on
// expiry behaves like Deregister (notified only when the address was still
// present), so a lease that expires fires Changed exactly once and a lease
// that is renewed fires nothing.
func (r *Registry) RegisterLease(service, addr string, ttl time.Duration) *Lease {
	return r.RegisterLeaseMeta(service, addr, ttl, nil)
}

// RegisterLeaseMeta is RegisterLease with instance metadata attached —
// the leased counterpart of RegisterInstance, used by sharded stateful
// tiers whose replicas carry a shard index.
func (r *Registry) RegisterLeaseMeta(service, addr string, ttl time.Duration, meta map[string]string) *Lease {
	r.RegisterInstance(service, addr, meta)
	l := &Lease{r: r, service: service, addr: addr, ttl: ttl}
	l.deadline = time.Now().Add(ttl)
	l.timer = time.AfterFunc(ttl, l.expire)
	return l
}

// Renew extends the lease by its TTL. It reports false when the lease has
// already expired or been released; a heartbeat loop should stop on false
// rather than silently re-register — the eviction already told balancers the
// replica is gone, and only a deliberate restart should bring it back.
func (l *Lease) Renew() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return false
	}
	l.deadline = time.Now().Add(l.ttl)
	l.timer.Reset(l.ttl)
	return true
}

// Release ends the lease and deregisters the address immediately (clean
// shutdown). Idempotent; safe to call after expiry.
func (l *Lease) Release() {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	l.done = true
	l.timer.Stop()
	l.mu.Unlock()
	l.r.Deregister(l.service, l.addr)
}

// Expired reports whether the lease ended by TTL expiry or Release.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.done
}

// expire runs on the lease timer. A Renew that landed while the timer was
// firing moved the deadline forward; detect that under the lock and re-arm
// for the remainder instead of evicting a healthy replica.
func (l *Lease) expire() {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	if remaining := time.Until(l.deadline); remaining > 0 {
		l.timer.Reset(remaining)
		l.mu.Unlock()
		return
	}
	l.done = true
	l.mu.Unlock()
	l.r.Deregister(l.service, l.addr)
}
