package registry

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestLeaseExpiryEvicts(t *testing.T) {
	r := New()
	ch := r.Changed("svc")
	l := r.RegisterLease("svc", "a:1", 30*time.Millisecond)
	// Registration itself is a membership change.
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on lease registration")
	}
	ch = r.Changed("svc")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on lease expiry")
	}
	if got := r.Lookup("svc"); len(got) != 0 {
		t.Fatalf("after expiry = %v", got)
	}
	if !l.Expired() {
		t.Fatal("lease not marked expired")
	}
	if l.Renew() {
		t.Fatal("Renew after expiry must report false")
	}
}

func TestLeaseRenewKeepsAlive(t *testing.T) {
	r := New()
	l := r.RegisterLease("svc", "a:1", 60*time.Millisecond)
	ch := r.Changed("svc")
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !l.Renew() {
			t.Fatal("Renew failed while heartbeating")
		}
		time.Sleep(15 * time.Millisecond)
	}
	// Several TTLs of heartbeats later the address is still present and no
	// watcher ever fired: renewal is invisible to balancers.
	select {
	case <-ch:
		t.Fatal("renewal notified watchers")
	default:
	}
	if got := r.Lookup("svc"); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("after renewals = %v", got)
	}
	l.Release()
	if got := r.Lookup("svc"); len(got) != 0 {
		t.Fatalf("after release = %v", got)
	}
}

// A crashed replica's lease expiry must notify Changed exactly once: the
// eviction races nothing — a late Release or a second timer fire must not
// re-notify, or balancers would re-resolve the tier twice per crash.
func TestLeaseExpiryNotifiesExactlyOnce(t *testing.T) {
	r := New()
	l := r.RegisterLease("svc", "a:1", 20*time.Millisecond)

	var fires atomic.Int64
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			ch := r.Changed("svc")
			select {
			case <-ch:
				fires.Add(1)
			case <-stop:
				return
			}
		}
	}()

	time.Sleep(120 * time.Millisecond) // several TTLs past expiry
	l.Release()                        // late release after expiry: no second notification
	time.Sleep(40 * time.Millisecond)
	close(stop)
	<-watcherDone

	if got := fires.Load(); got != 1 {
		t.Fatalf("Changed fired %d times for one eviction, want 1", got)
	}
	if got := r.Lookup("svc"); len(got) != 0 {
		t.Fatalf("after expiry = %v", got)
	}
}

func TestLeaseReleaseIdempotent(t *testing.T) {
	r := New()
	l := r.RegisterLease("svc", "a:1", time.Hour)
	ch := r.Changed("svc")
	l.Release()
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on release")
	}
	ch = r.Changed("svc")
	l.Release() // idempotent
	select {
	case <-ch:
		t.Fatal("second Release notified watchers")
	case <-time.After(10 * time.Millisecond):
	}
}
