// Package registry implements service discovery for live-mode
// applications: each microservice instance registers its (service, address)
// pair on startup, and clients resolve a service name to the current set of
// addresses. It plays the role of the auxiliary service-discovery tiers the
// paper mentions for the Media service.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps service names to live instance addresses.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]map[string]struct{}
	watch   map[string][]chan struct{}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		entries: make(map[string]map[string]struct{}),
		watch:   make(map[string][]chan struct{}),
	}
}

// Register adds an instance address for a service. Changed watchers are
// notified only when the address is new: the control plane deregisters and
// re-registers instances as it reconciles, and spurious wakeups would make
// every balancer re-resolve the whole tier on each no-op.
func (r *Registry) Register(service, addr string) {
	r.mu.Lock()
	set, ok := r.entries[service]
	if !ok {
		set = make(map[string]struct{})
		r.entries[service] = set
	}
	_, existed := set[addr]
	set[addr] = struct{}{}
	var watchers []chan struct{}
	if !existed {
		watchers = r.watch[service]
		r.watch[service] = nil
	}
	r.mu.Unlock()
	for _, ch := range watchers {
		close(ch)
	}
}

// Deregister removes an instance address, notifying Changed watchers when
// the address was actually present — scale-down must propagate to balancers
// just as scale-up does, or they keep dialing stopped replicas.
func (r *Registry) Deregister(service, addr string) {
	r.mu.Lock()
	var watchers []chan struct{}
	if set, ok := r.entries[service]; ok {
		if _, present := set[addr]; present {
			delete(set, addr)
			if len(set) == 0 {
				delete(r.entries, service)
			}
			watchers = r.watch[service]
			r.watch[service] = nil
		}
	}
	r.mu.Unlock()
	for _, ch := range watchers {
		close(ch)
	}
}

// Lookup returns the sorted addresses of a service's live instances.
func (r *Registry) Lookup(service string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := r.entries[service]
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// MustLookup returns the addresses or an error naming the missing service,
// the common client-wiring path.
func (r *Registry) MustLookup(service string) ([]string, error) {
	addrs := r.Lookup(service)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("registry: no instances of %q", service)
	}
	return addrs, nil
}

// Services returns all registered service names, sorted.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for s := range r.entries {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Changed returns a channel closed on the next membership change of the
// service; load balancers use it to refresh backend sets.
func (r *Registry) Changed(service string) <-chan struct{} {
	ch := make(chan struct{})
	r.mu.Lock()
	r.watch[service] = append(r.watch[service], ch)
	r.mu.Unlock()
	return ch
}
