// Package registry implements service discovery for live-mode
// applications: each microservice instance registers its (service, address)
// pair on startup, and clients resolve a service name to the current set of
// addresses. It plays the role of the auxiliary service-discovery tiers the
// paper mentions for the Media service.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps service names to live instance addresses, each optionally
// carrying instance metadata (e.g. the shard index of a sharded store
// replica — see shard.MetaShard).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]map[string]map[string]string // service -> addr -> meta (may be nil)
	watch   map[string][]chan struct{}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		entries: make(map[string]map[string]map[string]string),
		watch:   make(map[string][]chan struct{}),
	}
}

// Instance is one registered replica: its address plus the metadata it
// registered with.
type Instance struct {
	Addr string
	Meta map[string]string
}

// Register adds an instance address for a service. Changed watchers are
// notified only when the address is new: the control plane deregisters and
// re-registers instances as it reconciles, and spurious wakeups would make
// every balancer re-resolve the whole tier on each no-op.
func (r *Registry) Register(service, addr string) {
	r.RegisterInstance(service, addr, nil)
}

// RegisterInstance is Register with instance metadata attached. Sharded
// stateful tiers register each replica with its shard index here so
// routing clients can group the service's otherwise indistinguishable
// replicas into replica sets deterministically. Re-registering an existing
// address replaces its metadata without waking watchers.
func (r *Registry) RegisterInstance(service, addr string, meta map[string]string) {
	r.mu.Lock()
	set, ok := r.entries[service]
	if !ok {
		set = make(map[string]map[string]string)
		r.entries[service] = set
	}
	_, existed := set[addr]
	set[addr] = cloneMeta(meta)
	var watchers []chan struct{}
	if !existed {
		watchers = r.watch[service]
		r.watch[service] = nil
	}
	r.mu.Unlock()
	for _, ch := range watchers {
		close(ch)
	}
}

// Deregister removes an instance address, notifying Changed watchers when
// the address was actually present — scale-down must propagate to balancers
// just as scale-up does, or they keep dialing stopped replicas.
func (r *Registry) Deregister(service, addr string) {
	r.mu.Lock()
	var watchers []chan struct{}
	if set, ok := r.entries[service]; ok {
		if _, present := set[addr]; present {
			delete(set, addr)
			if len(set) == 0 {
				delete(r.entries, service)
			}
			watchers = r.watch[service]
			r.watch[service] = nil
		}
	}
	r.mu.Unlock()
	for _, ch := range watchers {
		close(ch)
	}
}

// Lookup returns the sorted addresses of a service's live instances.
func (r *Registry) Lookup(service string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := r.entries[service]
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Instances returns the service's live instances with their metadata,
// sorted by address — the view shard routers group replicas from.
func (r *Registry) Instances(service string) []Instance {
	r.mu.RLock()
	set := r.entries[service]
	out := make([]Instance, 0, len(set))
	for addr, meta := range set {
		out = append(out, Instance{Addr: addr, Meta: cloneMeta(meta)})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Meta returns the metadata an instance registered with (nil when the
// instance is unknown or registered without metadata).
func (r *Registry) Meta(service, addr string) map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return cloneMeta(r.entries[service][addr])
}

func cloneMeta(meta map[string]string) map[string]string {
	if meta == nil {
		return nil
	}
	out := make(map[string]string, len(meta))
	for k, v := range meta {
		out[k] = v
	}
	return out
}

// MustLookup returns the addresses or an error naming the missing service,
// the common client-wiring path.
func (r *Registry) MustLookup(service string) ([]string, error) {
	addrs := r.Lookup(service)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("registry: no instances of %q", service)
	}
	return addrs, nil
}

// Services returns all registered service names, sorted.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for s := range r.entries {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Changed returns a channel closed on the next membership change of the
// service; load balancers use it to refresh backend sets.
func (r *Registry) Changed(service string) <-chan struct{} {
	ch := make(chan struct{})
	r.mu.Lock()
	r.watch[service] = append(r.watch[service], ch)
	r.mu.Unlock()
	return ch
}
