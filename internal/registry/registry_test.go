package registry

import (
	"testing"
	"time"
)

func TestRegisterLookup(t *testing.T) {
	r := New()
	r.Register("svc", "a:1")
	r.Register("svc", "b:2")
	r.Register("svc", "a:1") // idempotent
	got := r.Lookup("svc")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("Lookup = %v", got)
	}
	if got := r.Lookup("ghost"); len(got) != 0 {
		t.Fatalf("ghost = %v", got)
	}
}

func TestDeregister(t *testing.T) {
	r := New()
	r.Register("svc", "a:1")
	r.Deregister("svc", "a:1")
	if got := r.Lookup("svc"); len(got) != 0 {
		t.Fatalf("after deregister = %v", got)
	}
	r.Deregister("svc", "never") // no panic on unknown
	if got := r.Services(); len(got) != 0 {
		t.Fatalf("Services = %v", got)
	}
}

func TestMustLookup(t *testing.T) {
	r := New()
	if _, err := r.MustLookup("nope"); err == nil {
		t.Fatal("want error for missing service")
	}
	r.Register("svc", "a:1")
	addrs, err := r.MustLookup("svc")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("MustLookup = %v, %v", addrs, err)
	}
}

func TestServicesSorted(t *testing.T) {
	r := New()
	r.Register("zeta", "z:1")
	r.Register("alpha", "a:1")
	got := r.Services()
	if len(got) != 2 || got[0] != "alpha" {
		t.Fatalf("Services = %v", got)
	}
}

func TestChangedNotification(t *testing.T) {
	r := New()
	ch := r.Changed("svc")
	select {
	case <-ch:
		t.Fatal("premature notification")
	case <-time.After(10 * time.Millisecond):
	}
	r.Register("svc", "a:1")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on register")
	}
	ch2 := r.Changed("svc")
	r.Deregister("svc", "a:1")
	select {
	case <-ch2:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on deregister")
	}
}

// Watchers fire on real membership changes in both directions — register
// AND deregister — and only on real changes: idempotent re-registration and
// deregistration of an unknown address must not wake balancers, or every
// control-plane reconcile pass would trigger a full backend re-resolve
// across the cluster.
func TestChangedFiresOnlyOnRealChanges(t *testing.T) {
	r := New()
	r.Register("svc", "a:1")

	// No-op register: same address again.
	ch := r.Changed("svc")
	r.Register("svc", "a:1")
	select {
	case <-ch:
		t.Fatal("idempotent Register notified watchers")
	case <-time.After(10 * time.Millisecond):
	}

	// No-op deregister: address was never registered.
	r.Deregister("svc", "ghost:9")
	select {
	case <-ch:
		t.Fatal("Deregister of unknown address notified watchers")
	case <-time.After(10 * time.Millisecond):
	}

	// Real change, scale-up direction.
	r.Register("svc", "b:2")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on new address")
	}

	// Real change, scale-down direction.
	ch = r.Changed("svc")
	r.Deregister("svc", "b:2")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification on removed address")
	}
	if got := r.Lookup("svc"); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("membership after churn = %v", got)
	}
}
