// Package rest implements the suite's JSON-over-HTTP API layer, the role
// REST plays in the E-commerce and Swarm applications. It reuses the rpc
// Network abstraction so REST services run over real TCP or in-memory
// pipes, and it propagates the same header-based trace context as the RPC
// layer, so traces cross RPC/REST boundaries intact.
//
// HTTP/1 semantics matter to the paper's backpressure results: within one
// connection requests are serialized, so a slow backend stalls the
// connection and queues form ahead of the front-end. The client exposes
// MaxConnsPerHost to reproduce that regime.
package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// Ctx is the per-request server context for REST handlers.
type Ctx struct {
	context.Context
	// Service is the serving microservice's name.
	Service string
	// Request is the underlying HTTP request (path params, query).
	Request *http.Request
	// ReplyHeaders are returned as HTTP response headers.
	ReplyHeaders map[string]string
}

// Header returns a request header value.
func (c *Ctx) Header(key string) string { return c.Request.Header.Get(key) }

// PathValue returns a path wildcard value (Go 1.22 mux patterns).
func (c *Ctx) PathValue(name string) string { return c.Request.PathValue(name) }

// Query returns a query parameter.
func (c *Ctx) Query(name string) string { return c.Request.URL.Query().Get(name) }

// SetReplyHeader adds a response header.
func (c *Ctx) SetReplyHeader(key, value string) {
	if c.ReplyHeaders == nil {
		c.ReplyHeaders = make(map[string]string, 4)
	}
	c.ReplyHeaders[key] = value
}

// Handler consumes the decoded request body (raw bytes; most handlers
// unmarshal JSON via DecodeJSON) and returns a value to encode as JSON.
type Handler func(ctx *Ctx, body []byte) (any, error)

// Interceptor wraps server-side handling.
type Interceptor func(ctx *Ctx, body []byte, next Handler) (any, error)

// errorBody is the JSON error envelope.
type errorBody struct {
	Code  int    `json:"code"`
	Error string `json:"error"`
}

// Server is a REST microservice server.
type Server struct {
	service      string
	mux          *http.ServeMux
	hs           *http.Server
	mu           sync.Mutex
	interceptors []Interceptor
	listener     net.Listener
}

// NewServer creates a REST server for the named service.
func NewServer(service string) *Server {
	s := &Server{service: service, mux: http.NewServeMux()}
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// Service returns the service name.
func (s *Server) Service() string { return s.service }

// Use appends a server interceptor. Must be called before Start.
func (s *Server) Use(i Interceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, i)
}

// Handle registers a handler for a mux pattern such as "POST /orders" or
// "GET /catalogue/{id}".
func (s *Server) Handle(pattern string, h Handler) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			writeError(w, rpc.Errorf(rpc.CodeBadRequest, "read body: %v", err))
			return
		}
		ctx := &Ctx{Context: r.Context(), Service: s.service, Request: r}
		if v := r.Header.Get(transport.DeadlineHeader); v != "" {
			if dl, ok := transport.ParseDeadline(v); ok {
				var cancel context.CancelFunc
				ctx.Context, cancel = context.WithDeadline(ctx.Context, dl)
				defer cancel()
			}
		}
		s.mu.Lock()
		chain := s.interceptors
		s.mu.Unlock()
		wrapped := h
		for i := len(chain) - 1; i >= 0; i-- {
			ic, next := chain[i], wrapped
			wrapped = func(ctx *Ctx, body []byte) (any, error) {
				return ic(ctx, body, next)
			}
		}
		out, err := safeServe(wrapped, ctx, body)
		for k, v := range ctx.ReplyHeaders {
			w.Header().Set(k, v)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if out == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		data, err := json.Marshal(out)
		if err != nil {
			writeError(w, rpc.Errorf(rpc.CodeInternal, "encode response: %v", err))
			return
		}
		w.Write(data) //nolint:errcheck // client disconnects are routine
	})
}

func safeServe(h Handler, ctx *Ctx, body []byte) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = rpc.Errorf(rpc.CodeInternal, "panic in %s %s: %v", ctx.Service, ctx.Request.URL.Path, r)
		}
	}()
	return h(ctx, body)
}

func writeError(w http.ResponseWriter, err error) {
	code := rpc.ErrorCode(err)
	status := http.StatusInternalServerError
	switch code {
	case rpc.CodeNotFound:
		status = http.StatusNotFound
	case rpc.CodeBadRequest:
		status = http.StatusBadRequest
	case rpc.CodeUnauthorized:
		status = http.StatusUnauthorized
	case rpc.CodeUnavailable:
		status = http.StatusServiceUnavailable
	case rpc.CodeConflict:
		status = http.StatusConflict
	case rpc.CodeDeadline:
		status = http.StatusGatewayTimeout
	case rpc.CodeOverloaded:
		// Admission-control shed: 429 rather than 503 — the replica is
		// healthy, the client should try elsewhere or back off.
		status = http.StatusTooManyRequests
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := err.Error()
	var e *rpc.Error
	if errors.As(err, &e) {
		msg = e.Msg
	}
	json.NewEncoder(w).Encode(errorBody{Code: code, Error: msg}) //nolint:errcheck
}

// Start listens on addr via network and serves in the background,
// returning the bound address.
func (s *Server) Start(network rpc.Network, addr string) (string, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.hs.Serve(l) //nolint:errcheck // exit is signaled via Close
	return l.Addr().String(), nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error {
	return s.hs.Close()
}

// Client issues REST calls to one service. It runs the same
// transport.Middleware chain as the RPC client — composed once at
// construction — so tracing and the resilience layer instrument both
// protocols identically.
type Client struct {
	target string
	base   string // e.g. "http://addr"
	hc     *http.Client
	mws    []transport.Middleware
	invoke transport.Invoker
}

// ClientOption configures a REST client.
type ClientOption func(*Client)

// WithMiddleware appends client middleware (the same chain type the RPC
// client accepts); mws run in registration order, outermost first.
func WithMiddleware(mws ...transport.Middleware) ClientOption {
	return func(c *Client) { c.mws = append(c.mws, mws...) }
}

// WithMaxConns bounds connections to the host, reproducing HTTP/1
// head-of-line blocking when set to a small number.
func WithMaxConns(n int) ClientOption {
	return func(c *Client) {
		c.hc.Transport.(*http.Transport).MaxConnsPerHost = n
	}
}

// NewClient creates a client for the target service at addr, dialing
// through the given network.
func NewClient(network rpc.Network, target, addr string, opts ...ClientOption) *Client {
	tr := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return network.Dial(addr)
		},
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     time.Minute,
	}
	c := &Client{target: target, base: "http://" + addr, hc: &http.Client{Transport: tr}}
	for _, o := range opts {
		o(c)
	}
	c.invoke = transport.Build(c.exchangeCall, c.mws...)
	return c
}

// Target returns the service name this client talks to.
func (c *Client) Target() string { return c.target }

// Do issues method (e.g. "POST") against path, JSON-encoding req (nil for
// no body) and decoding the JSON response into resp (nil to discard). The
// call flows through the middleware chain as a transport.Call whose Method
// is "VERB /path"; the reply body is decoded after the chain returns, so
// hedged or retried attempts never race on resp.
func (c *Client) Do(ctx context.Context, method, path string, req, resp any) error {
	var payload []byte
	if req != nil {
		var err error
		payload, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("rest: marshal %s %s: %w", method, path, err)
		}
	}
	call := transport.NewCall(c.target, method+" "+path, payload)
	if err := c.invoke(ctx, call); err != nil {
		return err
	}
	if resp != nil && len(call.Reply) > 0 {
		if err := json.Unmarshal(call.Reply, resp); err != nil {
			return fmt.Errorf("rest: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// exchangeCall is the terminal invoker: it stamps the deadline header and
// performs the HTTP exchange, leaving the raw reply body in call.Reply.
func (c *Client) exchangeCall(ctx context.Context, call *transport.Call) error {
	method, path, _ := strings.Cut(call.Method, " ")
	var body io.Reader
	if call.Payload != nil {
		body = bytes.NewReader(call.Payload)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if call.Payload != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		hr.Header.Set(transport.DeadlineHeader, transport.EncodeDeadline(dl))
	}
	for k, v := range call.Headers {
		hr.Header.Set(k, v)
	}
	res, err := c.hc.Do(hr)
	if err != nil {
		if ctx.Err() != nil {
			return transport.WrapCode(transport.CodeDeadline, ctx.Err(), "rest: %s %s: %v", method, c.target+path, ctx.Err())
		}
		return fmt.Errorf("rest: %s %s: %w", method, c.target+path, err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 16<<20))
	if err != nil {
		return err
	}
	if res.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &rpc.Error{Code: eb.Code, Msg: eb.Error}
		}
		return rpc.Errorf(rpc.CodeInternal, "%s %s: HTTP %d", method, path, res.StatusCode)
	}
	if res.StatusCode == http.StatusNoContent {
		call.Reply = nil
		return nil
	}
	call.Reply = data
	return nil
}

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// DecodeJSON decodes a request body into v, returning a coded error on
// malformed input; handlers use it as their first line.
func DecodeJSON(body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return rpc.Errorf(rpc.CodeBadRequest, "bad request body: %v", err)
	}
	return nil
}
