package rest

import (
	"context"
	"sync"
	"testing"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/transport"
)

type item struct {
	ID    string  `json:"id"`
	Name  string  `json:"name"`
	Price float64 `json:"price"`
}

func startCatalogue(t testing.TB, n rpc.Network) (string, *Server) {
	t.Helper()
	s := NewServer("catalogue")
	var mu sync.Mutex
	items := map[string]item{}
	s.Handle("POST /items", func(ctx *Ctx, body []byte) (any, error) {
		var it item
		if err := DecodeJSON(body, &it); err != nil {
			return nil, err
		}
		if it.ID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "missing id")
		}
		mu.Lock()
		items[it.ID] = it
		mu.Unlock()
		return it, nil
	})
	s.Handle("GET /items/{id}", func(ctx *Ctx, body []byte) (any, error) {
		mu.Lock()
		it, ok := items[ctx.PathValue("id")]
		mu.Unlock()
		if !ok {
			return nil, rpc.NotFoundf("no item %s", ctx.PathValue("id"))
		}
		return it, nil
	})
	s.Handle("GET /panic", func(ctx *Ctx, body []byte) (any, error) { panic("rest boom") })
	s.Handle("GET /slow", func(ctx *Ctx, body []byte) (any, error) {
		select {
		case <-time.After(5 * time.Second):
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	s.Handle("GET /headers", func(ctx *Ctx, body []byte) (any, error) {
		ctx.SetReplyHeader("x-reply", "pong")
		return map[string]string{"got": ctx.Header("x-req")}, nil
	})
	addr, err := s.Start(n, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, s
}

func testNetworks(t *testing.T, fn func(t *testing.T, n rpc.Network)) {
	t.Run("mem", func(t *testing.T) { fn(t, rpc.NewMem()) })
	t.Run("tcp", func(t *testing.T) { fn(t, rpc.TCP{}) })
}

func TestCRUD(t *testing.T) {
	testNetworks(t, func(t *testing.T, n rpc.Network) {
		addr, _ := startCatalogue(t, n)
		c := NewClient(n, "catalogue", addr)
		defer c.Close()
		in := item{ID: "sock-1", Name: "wool sock", Price: 9.99}
		var created item
		if err := c.Do(context.Background(), "POST", "/items", in, &created); err != nil {
			t.Fatalf("POST: %v", err)
		}
		if created != in {
			t.Fatalf("created = %+v", created)
		}
		var got item
		if err := c.Do(context.Background(), "GET", "/items/sock-1", nil, &got); err != nil {
			t.Fatalf("GET: %v", err)
		}
		if got != in {
			t.Fatalf("got = %+v", got)
		}
	})
}

func TestNotFoundMapsToCode(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	err := c.Do(context.Background(), "GET", "/items/ghost", nil, nil)
	if !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("want CodeNotFound, got %v", err)
	}
}

func TestBadJSONRejected(t *testing.T) {
	var it item
	if err := DecodeJSON([]byte("{nope"), &it); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("want CodeBadRequest, got %v", err)
	}
}

func TestPanicBecomes500(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	err := c.Do(context.Background(), "GET", "/panic", nil, nil)
	if !rpc.IsCode(err, rpc.CodeInternal) {
		t.Fatalf("want CodeInternal, got %v", err)
	}
	// Server still alive.
	if err := c.Do(context.Background(), "GET", "/items/ghost", nil, nil); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("server dead after panic: %v", err)
	}
}

func TestHeaderPropagation(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr,
		WithMiddleware(func(next transport.Invoker) transport.Invoker {
			return func(ctx context.Context, call *transport.Call) error {
				call.SetHeader("x-req", "ping")
				return next(ctx, call)
			}
		}))
	defer c.Close()
	var out map[string]string
	if err := c.Do(context.Background(), "GET", "/headers", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["got"] != "ping" {
		t.Fatalf("header not propagated: %v", out)
	}
}

func TestContextTimeout(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Do(ctx, "GET", "/slow", nil, nil)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestUnknownRoute(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	if err := c.Do(context.Background(), "GET", "/definitely/not/here", nil, nil); err == nil {
		t.Fatal("want error for unknown route")
	}
}

func TestConcurrentRequests(t *testing.T) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(t, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			it := item{ID: string(rune('a' + i%26)), Name: "x", Price: 1}
			if err := c.Do(context.Background(), "POST", "/items", it, nil); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkRESTCallMem(b *testing.B) {
	n := rpc.NewMem()
	addr, _ := startCatalogue(b, n)
	c := NewClient(n, "catalogue", addr)
	defer c.Close()
	if err := c.Do(context.Background(), "POST", "/items", item{ID: "bench", Name: "n", Price: 2}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var it item
		if err := c.Do(context.Background(), "GET", "/items/bench", nil, &it); err != nil {
			b.Fatal(err)
		}
	}
}
