package rpc

import (
	"context"
	"runtime/debug"
	"testing"

	"dsb/internal/codec"
)

// guardMsg is a minimal registered message so the echo round trip below
// exercises the full fast path — typed request marshaled straight into the
// connection's write segment, pooled reply buffer on the server, pooled
// payload on the client — with a hand-written marshaler standing in for
// codecgen output.
type guardMsg struct {
	N int64
}

func (m *guardMsg) AppendTo(b []byte) ([]byte, error) {
	return codec.AppendInt(b, m.N), nil
}

func (m *guardMsg) DecodeFrom(b []byte) ([]byte, error) {
	var err error
	m.N, b, err = codec.DecInt(b)
	return b, err
}

func init() { codec.Register[guardMsg]() }

func startGuardEcho(t testing.TB) (*Client, func()) {
	t.Helper()
	n := NewMem()
	s := NewServer("allocguard")
	// Raw echo: the reply aliases the pooled request payload, which the
	// dispatcher releases only after the reply frame is written. Keeping the
	// handler body allocation-free isolates the guard below to the RPC
	// runtime itself.
	s.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	// Typed echo: decode + pooled re-encode, the shape every svcutil
	// handler has. The request value escapes into the codec interfaces
	// (one extra allocation per call, paid by the handler, not the
	// runtime); the benchmark uses this to measure the realistic path.
	s.Handle("TypedEcho", func(ctx *Ctx, payload []byte) ([]byte, error) {
		var req guardMsg
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		return ctx.PooledReply(&req)
	})
	addr, err := s.Start(n, "allocguard:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(n, "allocguard", addr, WithPoolSize(1))
	return c, func() { c.Close(); s.Close() }
}

// TestEchoAllocGuard pins the steady-state allocation count of a unary
// echo round trip over the in-memory network at ≤1 allocation per call.
// The one irreducible allocation is the server-side *Ctx: it cannot be
// pooled, because handlers derive child contexts (context.WithTimeout)
// whose timer goroutines may call parent.Done() after the request
// completes — recycling the Ctx under them is a use-after-free. Everything
// else — frames, payload buffers, reply buffers, call structs, waiter
// channels, the request encoding itself — must come from pools.
func TestEchoAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget pinned by the non-race run in make alloc-guard")
	}
	c, stop := startGuardEcho(t)
	defer stop()
	ctx := context.Background()
	req := guardMsg{N: 42}
	var resp guardMsg

	call := func() {
		if err := c.Call(ctx, "Echo", &req, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.N != 42 {
			t.Fatalf("resp = %+v", resp)
		}
	}
	// Warm every pool well past the worker-spawn race: after a reply is
	// written the client can send the next request before the worker
	// re-parks on the task channel, so early iterations occasionally spawn
	// fresh worker goroutines. A long warmup grows the pool to cover that
	// window.
	for i := 0; i < 2000; i++ {
		call()
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Best-of-N: a single AllocsPerRun can still catch a straggler worker
	// spawn or pool refill; the minimum over several runs is the steady
	// state.
	best := 1 << 30
	for i := 0; i < 5; i++ {
		if got := int(testing.AllocsPerRun(200, call)); got < best {
			best = got
		}
	}
	if best > 1 {
		t.Fatalf("echo round trip allocates %d objects per call, want ≤1 (the server Ctx)", best)
	}
}

func BenchmarkEchoFastPath(b *testing.B) {
	c, stop := startGuardEcho(b)
	defer stop()
	ctx := context.Background()
	req := guardMsg{N: 7}
	var resp guardMsg
	for i := 0; i < 100; i++ {
		if err := c.Call(ctx, "Echo", &req, &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call(ctx, "TypedEcho", &req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}
