package rpc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

type sleepReq struct {
	Ms  int64
	Tag string
}

type sleepResp struct{ Tag string }

// startSleeper boots a server whose "Sleep" method waits the requested
// duration before echoing the tag — the tool for forcing replies to arrive
// in a different order than their requests were sent.
func startSleeper(t testing.TB, network Network) string {
	t.Helper()
	s := NewServer("sleeper")
	s.Handle("Sleep", func(ctx *Ctx, payload []byte) ([]byte, error) {
		var req sleepReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, Errorf(CodeBadRequest, "bad payload: %v", err)
		}
		time.Sleep(time.Duration(req.Ms) * time.Millisecond)
		return codec.Marshal(sleepResp{Tag: req.Tag})
	})
	addr, err := s.Start(network, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

// TestPipelinedOutOfOrderReplies pins the wire-level pipelining contract on
// a single connection: a slow request issued first must not block the fast
// requests pipelined behind it, and every out-of-order reply must be
// matched back to its own request by sequence number.
func TestPipelinedOutOfOrderReplies(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr := startSleeper(t, n)
		c := NewClient(n, "sleeper", addr, WithPoolSize(1)) // one conn: all calls share the pipe
		defer c.Close()
		ctx := context.Background()

		var slowResp sleepResp
		slow := c.Go(ctx, "Sleep", sleepReq{Ms: 150, Tag: "slow"}, &slowResp)

		const fast = 8
		fastResps := make([]sleepResp, fast)
		fastPending := make([]*Pending, fast)
		for i := 0; i < fast; i++ {
			fastPending[i] = c.Go(ctx, "Sleep", sleepReq{Ms: 1, Tag: fmt.Sprintf("fast-%d", i)}, &fastResps[i])
		}
		for i, p := range fastPending {
			if err := p.Wait(); err != nil {
				t.Fatalf("fast call %d: %v", i, err)
			}
			if want := fmt.Sprintf("fast-%d", i); fastResps[i].Tag != want {
				t.Fatalf("fast call %d got reply %q, want %q — reply matched to wrong request", i, fastResps[i].Tag, want)
			}
		}
		// All fast replies are in; the slow one — sent FIRST — must still be
		// outstanding, proving the later requests overtook it on one conn.
		select {
		case <-slow.Done():
			t.Fatal("slow call finished before the fast calls pipelined behind it — no out-of-order completion")
		default:
		}
		if err := slow.Wait(); err != nil {
			t.Fatalf("slow call: %v", err)
		}
		if slowResp.Tag != "slow" {
			t.Fatalf("slow reply = %q, want %q", slowResp.Tag, "slow")
		}
	})
}

// TestPipelinedConcurrentSenders interleaves many concurrent senders over a
// single pooled connection and verifies every reply lands on the request
// that issued it. Run under -race this exercises the pending-map and
// flush-coalescing paths the pipelining relies on.
func TestPipelinedConcurrentSenders(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, _ := startEcho(t, n)
		c := NewClient(n, "echo", addr, WithPoolSize(1))
		defer c.Close()
		ctx := context.Background()

		const senders, perSender = 16, 25
		var wg sync.WaitGroup
		errs := make(chan error, senders*perSender)
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				pend := make([]*Pending, perSender)
				resps := make([]echoResp, perSender)
				for i := 0; i < perSender; i++ {
					pend[i] = c.Go(ctx, "Echo", echoReq{Text: fmt.Sprintf("s%d-i%d", s, i)}, &resps[i])
				}
				for i := 0; i < perSender; i++ {
					if err := pend[i].Wait(); err != nil {
						errs <- fmt.Errorf("sender %d call %d: %w", s, i, err)
						return
					}
					if want := fmt.Sprintf("s%d-i%d", s, i); resps[i].Text != want {
						errs <- fmt.Errorf("sender %d call %d got %q, want %q", s, i, resps[i].Text, want)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

// TestOneWaySemantics pins the fire-and-forget contract: CallOneWay returns
// at send, the handler still runs (through the interceptor chain), no reply
// frame is produced, and the connection stays healthy for synchronous calls
// issued afterwards.
func TestOneWaySemantics(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		var handled, intercepted atomic.Int64
		s := NewServer("notify")
		s.Use(func(ctx *Ctx, payload []byte, next Handler) ([]byte, error) {
			intercepted.Add(1)
			return next(ctx, payload)
		})
		s.Handle("Notify", func(ctx *Ctx, payload []byte) ([]byte, error) {
			handled.Add(1)
			return []byte("ignored"), nil
		})
		s.Handle("Ping", func(ctx *Ctx, payload []byte) ([]byte, error) {
			return payload, nil
		})
		addr, err := s.Start(n, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		defer s.Close()

		c := NewClient(n, "notify", addr, WithPoolSize(1))
		defer c.Close()
		ctx := context.Background()

		const calls = 10
		for i := 0; i < calls; i++ {
			if err := c.CallOneWay(ctx, "Notify", echoReq{Text: "fire"}); err != nil {
				t.Fatalf("CallOneWay: %v", err)
			}
		}
		// A sync call on the same connection after the one-way burst: its seq
		// must not collide with any phantom one-way reply.
		out, err := c.CallRaw(ctx, "Ping", []byte("still-alive"))
		if err != nil {
			t.Fatalf("sync call after one-way burst: %v", err)
		}
		if string(out) != "still-alive" {
			t.Fatalf("sync reply = %q", out)
		}
		waitFor(t, func() bool { return handled.Load() == calls })
		if got := intercepted.Load(); got < calls {
			t.Fatalf("interceptor saw %d of %d one-way requests", got, calls)
		}
		if got := s.OneWayErrors(); got != 0 {
			t.Fatalf("OneWayErrors = %d for successful handlers", got)
		}
	})
}

// TestOneWayErrorsSurfaceViaStats pins the other half of the contract:
// post-send failures (a failing handler, an unknown method) never reach the
// caller — CallOneWay stays nil — and are counted in the server's
// OneWayErrors stat instead.
func TestOneWayErrorsSurfaceViaStats(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, srv := startEcho(t, n)
		c := NewClient(n, "echo", addr)
		defer c.Close()
		ctx := context.Background()

		if err := c.CallOneWay(ctx, "Fail", echoReq{}); err != nil {
			t.Fatalf("CallOneWay(Fail) surfaced a post-send error to the caller: %v", err)
		}
		if err := c.CallOneWay(ctx, "NoSuchMethod", echoReq{}); err != nil {
			t.Fatalf("CallOneWay(NoSuchMethod) surfaced a post-send error: %v", err)
		}
		waitFor(t, func() bool { return srv.OneWayErrors() == 2 })
	})
}

// TestOneWayRunsMiddleware pins the transport call option: a one-way call
// flows through the client middleware chain with Call.OneWay set, so stats,
// breakers, and fault injection see the hop.
func TestOneWayRunsMiddleware(t *testing.T) {
	n := NewMem()
	addr, _ := startEcho(t, n)
	var seen, oneway atomic.Int64
	mw := func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			seen.Add(1)
			if call.OneWay {
				oneway.Add(1)
			}
			return next(ctx, call)
		}
	}
	c := NewClient(n, "echo", addr, WithMiddleware(mw))
	defer c.Close()
	ctx := context.Background()

	if err := c.CallOneWay(ctx, "Echo", echoReq{Text: "x"}); err != nil {
		t.Fatalf("CallOneWay: %v", err)
	}
	var resp echoResp
	if err := c.Call(ctx, "Echo", echoReq{Text: "y"}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if seen.Load() != 2 {
		t.Fatalf("middleware saw %d calls, want 2", seen.Load())
	}
	if oneway.Load() != 1 {
		t.Fatalf("middleware saw OneWay on %d calls, want exactly the one-way one", oneway.Load())
	}
}

// waitFor polls cond until it holds or a generous deadline passes — one-way
// completion is asynchronous by design, so assertions on server-side effects
// must wait for the dispatch goroutine.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
