package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
)

// ClientInterceptor wraps an outgoing call. headers may be mutated to
// propagate context (the tracing layer injects span identity this way).
// invoke performs the call; interceptors run in registration order,
// outermost first.
type ClientInterceptor func(ctx context.Context, method string, headers map[string]string, invoke func(context.Context) error) error

// Client issues RPCs to a single target address over a small pool of
// multiplexed connections, mirroring how each DeathStarBench tier keeps
// persistent Thrift connections to its downstream tiers.
type Client struct {
	network      Network
	addr         string
	target       string // service name, for errors and tracing
	interceptors []ClientInterceptor

	mu     sync.Mutex
	conns  []*clientConn
	next   atomic.Uint64
	closed bool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize sets the number of pooled connections (default 2).
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.conns = make([]*clientConn, n)
		}
	}
}

// WithInterceptor appends a client interceptor.
func WithInterceptor(i ClientInterceptor) ClientOption {
	return func(c *Client) { c.interceptors = append(c.interceptors, i) }
}

// NewClient creates a client for the target service at addr. Connections
// are dialed lazily on first use.
func NewClient(network Network, target, addr string, opts ...ClientOption) *Client {
	c := &Client{network: network, addr: addr, target: target, conns: make([]*clientConn, 2)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Target returns the service name this client talks to.
func (c *Client) Target() string { return c.target }

// Call invokes method with req encoded via the wire codec, decoding the
// reply into resp (which may be nil for fire-and-forget-style methods that
// return no body).
func (c *Client) Call(ctx context.Context, method string, req, resp any) error {
	var payload []byte
	if req != nil {
		var err error
		payload, err = codec.Marshal(req)
		if err != nil {
			return fmt.Errorf("rpc: marshal %s.%s: %w", c.target, method, err)
		}
	}
	out, err := c.CallRaw(ctx, method, payload)
	if err != nil {
		return err
	}
	if resp != nil {
		if err := codec.Unmarshal(out, resp); err != nil {
			return fmt.Errorf("rpc: unmarshal %s.%s reply: %w", c.target, method, err)
		}
	}
	return nil
}

// CallRaw invokes method with a pre-encoded payload and returns the raw
// reply payload. Interceptors run around the transport exchange.
func (c *Client) CallRaw(ctx context.Context, method string, payload []byte) ([]byte, error) {
	headers := make(map[string]string, 4)
	if dl, ok := ctx.Deadline(); ok {
		headers[deadlineHeader] = strconv.FormatInt(dl.UnixNano(), 10)
	}
	var reply []byte
	invoke := func(ctx context.Context) error {
		var err error
		reply, err = c.exchange(ctx, method, headers, payload)
		return err
	}
	wrapped := invoke
	for i := len(c.interceptors) - 1; i >= 0; i-- {
		ic, next := c.interceptors[i], wrapped
		m := method
		wrapped = func(ctx context.Context) error {
			return ic(ctx, m, headers, next)
		}
	}
	if err := wrapped(ctx); err != nil {
		return nil, err
	}
	return reply, nil
}

func (c *Client) exchange(ctx context.Context, method string, headers map[string]string, payload []byte) ([]byte, error) {
	cc, err := c.pick()
	if err != nil {
		return nil, err
	}
	f := &frame{kind: kindRequest, method: method, headers: headers, payload: payload}
	ch, seq, err := cc.send(f)
	if err != nil {
		cc.fail(err)
		return nil, fmt.Errorf("rpc: send to %s: %w", c.target, err)
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("rpc: connection to %s lost", c.target)
		}
		if reply.kind == kindError {
			return nil, &Error{Code: int(reply.code), Msg: string(reply.payload)}
		}
		return reply.payload, nil
	case <-ctx.Done():
		cc.abandon(seq)
		return nil, Errorf(CodeDeadline, "call %s.%s: %v", c.target, method, ctx.Err())
	}
}

// pick returns a live pooled connection, dialing if necessary.
func (c *Client) pick() (*clientConn, error) {
	idx := int(c.next.Add(1)) % len(c.conns)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("rpc: client closed")
	}
	cc := c.conns[idx]
	if cc != nil && !cc.dead() {
		return cc, nil
	}
	conn, err := c.network.Dial(c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s (%s): %w", c.target, c.addr, err)
	}
	cc = newClientConn(conn)
	c.conns[idx] = cc
	return cc, nil
}

// Close tears down all pooled connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.fail(errors.New("client closed"))
		}
	}
	return nil
}

// clientConn is one multiplexed connection: writes are serialized, replies
// are dispatched to waiters by sequence number by a reader goroutine.
type clientConn struct {
	conn    interface{ Close() error }
	w       *bufio.Writer
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *frame
	seq     uint64
	err     error
}

func newClientConn(conn interface {
	Close() error
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}) *clientConn {
	cc := &clientConn{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 32<<10),
		pending: make(map[uint64]chan *frame),
	}
	go cc.readLoop(bufio.NewReaderSize(conn, 32<<10))
	return cc
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// send registers a waiter and writes the frame, returning the reply channel.
func (cc *clientConn) send(f *frame) (chan *frame, uint64, error) {
	ch := make(chan *frame, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, 0, err
	}
	cc.seq++
	f.seq = cc.seq
	seq := f.seq
	cc.pending[seq] = ch
	cc.mu.Unlock()

	cc.writeMu.Lock()
	err := writeFrame(cc.w, f, nil)
	cc.writeMu.Unlock()
	if err != nil {
		cc.mu.Lock()
		delete(cc.pending, seq)
		cc.mu.Unlock()
		return nil, 0, err
	}
	return ch, seq, nil
}

// abandon drops the waiter for seq after a local timeout; a late reply for
// the sequence is discarded by the read loop.
func (cc *clientConn) abandon(seq uint64) {
	cc.mu.Lock()
	delete(cc.pending, seq)
	cc.mu.Unlock()
}

// fail marks the connection dead and wakes all waiters with closed channels.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		for seq, ch := range cc.pending {
			close(ch)
			delete(cc.pending, seq)
		}
	}
	cc.mu.Unlock()
	cc.conn.Close()
}

func (cc *clientConn) readLoop(r *bufio.Reader) {
	for {
		f, err := readFrame(r)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.seq]
		if ok {
			delete(cc.pending, f.seq)
		}
		cc.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// DelayInterceptor returns a client interceptor that sleeps for d before
// each call, used in live mode to model a slow link (e.g. the cloud↔edge
// wifi hop in the Swarm application).
func DelayInterceptor(d time.Duration) ClientInterceptor {
	return func(ctx context.Context, method string, headers map[string]string, invoke func(context.Context) error) error {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return invoke(ctx)
	}
}
