package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

// Client issues RPCs to a single target address over a small pool of
// multiplexed connections, mirroring how each DeathStarBench tier keeps
// persistent Thrift connections to its downstream tiers. Outgoing calls
// flow through a transport.Middleware chain — the same chain type the REST
// client accepts — composed once at construction, so an unadorned client
// pays nothing per call for the abstraction.
//
// Requests travel as typed values (transport.Call.Body) all the way to the
// connection writer, which marshals them straight into its write segment —
// through the generated fast path for registered types — so a steady-state
// Call allocates nothing: pooled call descriptor, pooled frames, pooled
// reply buffer, in-place encode. The price of that is a narrow aliasing
// contract: the request value must not be mutated until the call returns,
// including any hedged attempts still in flight (they share the value and
// re-encode it at the wire).
type Client struct {
	network Network
	addr    string
	target  string // service name, for errors and tracing
	mws     []transport.Middleware
	invoke  transport.Invoker // composed chain ending in exchangeCall

	mu     sync.Mutex
	conns  []*clientConn
	next   atomic.Uint64
	closed bool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize sets the number of pooled connections (default 2).
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.conns = make([]*clientConn, n)
		}
	}
}

// WithMiddleware appends client middleware; mws run in registration order,
// outermost first, around the wire exchange.
func WithMiddleware(mws ...transport.Middleware) ClientOption {
	return func(c *Client) { c.mws = append(c.mws, mws...) }
}

// NewClient creates a client for the target service at addr. Connections
// are dialed lazily on first use.
func NewClient(network Network, target, addr string, opts ...ClientOption) *Client {
	c := &Client{network: network, addr: addr, target: target, conns: make([]*clientConn, 2)}
	for _, o := range opts {
		o(c)
	}
	c.invoke = transport.Build(c.exchangeCall, c.mws...)
	return c
}

// Target returns the service name this client talks to.
func (c *Client) Target() string { return c.target }

// Call invokes method with req encoded via the wire codec, decoding the
// reply into resp (which may be nil for fire-and-forget-style methods that
// return no body). req must not be mutated until Call returns (see Client).
func (c *Client) Call(ctx context.Context, method string, req, resp any) error {
	call := transport.AcquireCall(c.target, method)
	call.Body = req
	err := c.invoke(ctx, call)
	if err == nil && resp != nil {
		if uerr := codec.Unmarshal(call.Reply, resp); uerr != nil {
			err = fmt.Errorf("rpc: unmarshal %s.%s reply: %w", c.target, method, uerr)
		}
	}
	// The decode copied everything out (DecodeFrom never aliases), so the
	// pooled reply buffer is dead either way.
	transport.ReleaseBuf(call.Reply)
	transport.ReleaseCall(call)
	return err
}

// CallRaw invokes method with a pre-encoded payload and returns the raw
// reply payload. The middleware chain runs around the transport exchange.
// Ownership of the reply bytes transfers to the caller: they are never
// recycled, so the caller may retain them indefinitely.
func (c *Client) CallRaw(ctx context.Context, method string, payload []byte) ([]byte, error) {
	call := transport.AcquireCall(c.target, method)
	call.Payload = payload
	err := c.invoke(ctx, call)
	reply := call.Reply
	transport.ReleaseCall(call)
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// Invoke runs the client's middleware chain for a caller-built call
// descriptor, storing the reply in call.Reply. Load balancers use it so
// their own middleware stack (retry, hedging) and this client's (tracing,
// breaker) compose around one shared Call.
func (c *Client) Invoke(ctx context.Context, call *transport.Call) error {
	return c.invoke(ctx, call)
}

// CallOneWay issues a fire-and-forget request: it completes once the frame
// is written, the server never sends a reply, and no reply waiter is
// registered, so a one-way burst costs one wire write per call with zero
// round trips. Errors returned here are send-side only (marshal, dial, a
// dead connection); anything that goes wrong after the frame leaves —
// admission shed, handler failure — surfaces in the server's OneWayErrors
// stat, never to this caller. The call still runs the full middleware
// chain with Call.OneWay set, so per-hop stats and fault rules apply.
func (c *Client) CallOneWay(ctx context.Context, method string, req any) error {
	call := transport.AcquireCall(c.target, method)
	call.Body = req
	call.OneWay = true
	err := c.invoke(ctx, call)
	transport.ReleaseCall(call)
	return err
}

// Pending is one in-flight pipelined call issued with Go. Wait blocks until
// the reply (or error) arrives; Done exposes the completion channel for
// select-based collection.
type Pending struct {
	done chan struct{}
	err  error
}

// Done is closed when the call completes.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the call completes and returns its error. The decoded
// response passed to Go is fully written before Wait returns.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Go issues a pipelined call: the request is sent immediately and the
// caller collects the reply later through the returned Pending, so N calls
// issued back-to-back share the multiplexed connection with N requests in
// flight at once and replies matched out of order by sequence number —
// wall-clock cost ~one round trip instead of N. The middleware chain wraps
// each call end-to-end exactly as with Call.
//
// Unlike Call, the request is marshaled eagerly, before Go returns: a
// pipelined caller is free to reuse or mutate req immediately, so the
// typed-body zero-copy path (whose contract forbids that) does not apply.
func (c *Client) Go(ctx context.Context, method string, req, resp any) *Pending {
	p := &Pending{done: make(chan struct{})}
	var payload []byte
	if req != nil {
		var err error
		payload, err = codec.Marshal(req)
		if err != nil {
			p.err = fmt.Errorf("rpc: marshal %s.%s: %w", c.target, method, err)
			close(p.done)
			return p
		}
	}
	go func() {
		defer close(p.done)
		call := transport.AcquireCall(c.target, method)
		call.Payload = payload
		defer transport.ReleaseCall(call)
		if err := c.invoke(ctx, call); err != nil {
			p.err = err
			return
		}
		if resp != nil {
			if err := codec.Unmarshal(call.Reply, resp); err != nil {
				p.err = fmt.Errorf("rpc: unmarshal %s.%s reply: %w", c.target, method, err)
			}
		}
		transport.ReleaseBuf(call.Reply)
	}()
	return p
}

// Stream opens a streaming call: the open runs through the full middleware
// chain (Call.Stream set), and the returned typed stream multiplexes item
// frames on a pooled connection alongside unary traffic. ctx governs the
// stream's whole lifetime — cancellation aborts it, waking parked Sends and
// Recvs on both ends.
func (c *Client) Stream(ctx context.Context, method string, req any) (*transport.Stream, error) {
	return transport.OpenStream(ctx, c.invoke, c.target, "", method, req)
}

var _ transport.Streamer = (*Client)(nil)

// openStream is the terminal invoker's streaming branch: it writes the open
// frame on a pooled conn (with the same one-shot dead-on-arrival redial as
// exchange) and attaches the stream to the call. A watcher goroutine ties
// the stream to ctx — cancellation sends the server a coded End (waking its
// handler) and tears the client side down; it exits with the stream.
func (c *Client) openStream(ctx context.Context, call *transport.Call) error {
	for attempt := 0; ; attempt++ {
		cc, err := c.pick()
		if err != nil {
			return err
		}
		f := getFrame()
		f.kind, f.method, f.headers, f.payload = kindStreamOpen, call.Method, call.Headers, call.Payload
		st, err := cc.openStream(f)
		putFrame(f)
		if err != nil {
			cc.fail(err)
			if attempt == 0 && !cc.delivered() {
				continue // dead-on-arrival pooled conn: one fresh dial
			}
			return transport.WrapCode(transport.CodeUnavailable, err, "rpc: open stream to %s: %v", c.target, err)
		}
		go func() {
			select {
			case <-ctx.Done():
				st.cancelWith(CodeDeadline, "stream context done: "+ctx.Err().Error())
			case <-st.done:
			}
		}()
		call.StreamBody = &clientStream{core: st}
		return nil
	}
}

// exchangeCall is the terminal invoker: it stamps the deadline header from
// the (possibly budget-shrunken) context and performs the wire exchange.
func (c *Client) exchangeCall(ctx context.Context, call *transport.Call) error {
	if dl, ok := ctx.Deadline(); ok {
		call.SetHeader(transport.DeadlineHeader, transport.EncodeDeadline(dl))
	}
	if call.OneWay {
		return c.sendOneWay(call)
	}
	if call.Stream {
		return c.openStream(ctx, call)
	}
	return c.exchange(ctx, call)
}

// sendOneWay writes a one-way frame and returns at send: no waiter, no
// reply. Like exchange, a dead-on-arrival pooled connection gets one
// transparent redial — the frame never left, so the retry is free.
func (c *Client) sendOneWay(call *transport.Call) error {
	for attempt := 0; ; attempt++ {
		cc, err := c.pick()
		if err != nil {
			return err
		}
		f := getFrame()
		f.kind, f.method, f.headers, f.payload, f.body = kindOneWay, call.Method, call.Headers, call.Payload, call.Body
		err = cc.sendNoReply(f)
		putFrame(f)
		if err != nil {
			if errors.Is(err, errEncode) {
				// The body would not serialize; the connection is fine.
				return fmt.Errorf("rpc: marshal %s.%s: %w", c.target, call.Method, err)
			}
			cc.fail(err)
			if attempt == 0 && !cc.delivered() {
				continue
			}
			return fmt.Errorf("rpc: send to %s: %w", c.target, err)
		}
		return nil
	}
}

// exchange performs the unary wire round trip for call, setting call.Reply
// (a pooled buffer — the caller that owns the Call decides when to release
// it) on success.
func (c *Client) exchange(ctx context.Context, call *transport.Call) error {
	// A pooled connection to a peer that crashed since the last call fails
	// immediately (io.EOF / ECONNRESET) without ever having served a reply.
	// That is a property of the stale pool slot, not of the request, so it is
	// redialed once right here — below the retry middleware, where it charges
	// nothing to the retry token budget. Connections that have delivered
	// replies and die mid-call are left to the retry layer, which does pay.
	for attempt := 0; ; attempt++ {
		cc, err := c.pick()
		if err != nil {
			return err
		}
		f := getFrame()
		f.kind, f.method, f.headers, f.payload, f.body = kindRequest, call.Method, call.Headers, call.Payload, call.Body
		ch, seq, err := cc.send(f)
		putFrame(f) // cw.write is synchronous: encoded (or rolled back) by now
		if err != nil {
			if errors.Is(err, errEncode) {
				// Serialization failure, not a transport failure: the frame was
				// rolled back and the connection is healthy. Report it like the
				// eager-marshal path used to, without burning the connection.
				return fmt.Errorf("rpc: marshal %s.%s: %w", c.target, call.Method, err)
			}
			cc.fail(err)
			if attempt == 0 && !cc.delivered() {
				continue // dead-on-arrival pooled conn: one fresh dial
			}
			return fmt.Errorf("rpc: send to %s: %w", c.target, err)
		}
		select {
		case reply, ok := <-ch:
			if !ok {
				// The conn died with this request outstanding. The frame was
				// delivered (the send succeeded), so resending transparently
				// here could execute it twice — and against a parked long-poll
				// handler would re-park until the deadline. Fail fast with a
				// coded retryable error instead: every pipelined call parked in
				// the pending map unblocks at once, and the retry middleware
				// (which owns the is-it-safe-to-retry budget) decides what to
				// reissue.
				return transport.Errorf(transport.CodeUnavailable,
					"rpc: connection to %s lost with %s.%s in flight", c.target, c.target, call.Method)
			}
			cc.putWaiter(ch) // happy receive: the channel is drained and reusable
			if reply.kind == kindError {
				err := &Error{Code: int(reply.code), Msg: string(reply.payload)}
				transport.ReleaseBuf(reply.payload)
				putFrame(reply)
				return err
			}
			call.Reply = reply.payload // ownership moves to the call's owner
			putFrame(reply)
			return nil
		case <-ctx.Done():
			cc.abandon(seq)
			return transport.WrapCode(CodeDeadline, ctx.Err(), "call %s.%s: %v", c.target, call.Method, ctx.Err())
		}
	}
}

// pick returns a live pooled connection, dialing if necessary. The dial
// happens outside the client lock — a slow or hung dial must not serialize
// every other caller on the pool — with a re-check under the lock
// afterwards so concurrent pickers of the same slot don't leak connections.
func (c *Client) pick() (*clientConn, error) {
	idx := int(c.next.Add(1)) % len(c.conns)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("rpc: client closed")
	}
	cc := c.conns[idx]
	c.mu.Unlock()
	if cc != nil && !cc.dead() {
		return cc, nil
	}

	conn, err := c.network.Dial(c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s (%s): %w", c.target, c.addr, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, errors.New("rpc: client closed")
	}
	if existing := c.conns[idx]; existing != nil && !existing.dead() {
		// A concurrent caller re-dialed this slot first; use theirs.
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	cc = newClientConn(conn)
	c.conns[idx] = cc
	c.mu.Unlock()
	return cc, nil
}

// Close tears down all pooled connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.conns {
		if cc != nil {
			cc.fail(errors.New("client closed"))
		}
	}
	return nil
}

// waiterPool recycles reply-waiter channels. A channel is only returned to
// the pool on a happy receive: a closed channel (conn failure) can never be
// reused, and an abandoned one (local timeout) may still receive a late
// reply frame, so both fall to the garbage collector instead.
var waiterPool = sync.Pool{New: func() any { return make(chan *frame, 1) }}

// clientConn is one multiplexed connection: writes are serialized (and
// flush-coalesced across concurrent senders) by a connWriter, replies are
// dispatched to waiters by sequence number by a reader goroutine.
type clientConn struct {
	conn interface{ Close() error }
	cw   *connWriter

	mu      sync.Mutex
	pending map[uint64]chan *frame
	streams map[uint64]*streamCore
	seq     uint64
	err     error

	// gotReply records that at least one reply frame arrived; a conn that
	// dies without it was dead on arrival (peer crashed while the conn sat
	// in the pool) and is safe to redial transparently.
	gotReply atomic.Bool
}

func newClientConn(conn interface {
	Close() error
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}) *clientConn {
	cc := &clientConn{
		conn:    conn,
		cw:      newConnWriter(conn),
		pending: make(map[uint64]chan *frame),
		streams: make(map[uint64]*streamCore),
	}
	go cc.readLoop(newFrameReader(conn))
	return cc
}

// delivered reports whether this connection ever carried a reply.
func (cc *clientConn) delivered() bool { return cc.gotReply.Load() }

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// putWaiter recycles a drained, still-open waiter channel.
func (cc *clientConn) putWaiter(ch chan *frame) { waiterPool.Put(ch) }

// send registers a waiter and writes the frame, returning the reply channel.
func (cc *clientConn) send(f *frame) (chan *frame, uint64, error) {
	ch := waiterPool.Get().(chan *frame)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		waiterPool.Put(ch)
		return nil, 0, err
	}
	cc.seq++
	f.seq = cc.seq
	seq := f.seq
	cc.pending[seq] = ch
	cc.mu.Unlock()

	if err := cc.cw.write(f); err != nil {
		cc.mu.Lock()
		_, registered := cc.pending[seq]
		delete(cc.pending, seq)
		cc.mu.Unlock()
		if registered {
			// Still ours, never written to: safe to reuse. (If fail() raced us
			// it closed the channel and removed it; leave that one to the GC.)
			waiterPool.Put(ch)
		}
		return nil, 0, err
	}
	return ch, seq, nil
}

// sendNoReply assigns a sequence number and writes the frame without
// registering a reply waiter — the one-way wire path.
func (cc *clientConn) sendNoReply(f *frame) error {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.seq++
	f.seq = cc.seq
	cc.mu.Unlock()
	return cc.cw.write(f)
}

// abandon drops the waiter for seq after a local timeout; a late reply for
// the sequence is discarded by the read loop.
func (cc *clientConn) abandon(seq uint64) {
	cc.mu.Lock()
	delete(cc.pending, seq)
	cc.mu.Unlock()
}

// fail marks the connection dead and wakes all waiters with closed channels.
// Open streams are torn down outside the lock (their unregister hooks
// re-enter the conn), with a coded retryable error so stream consumers fail
// over the way unary callers do.
func (cc *clientConn) fail(err error) {
	var streams []*streamCore
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		for seq, ch := range cc.pending {
			close(ch)
			delete(cc.pending, seq)
		}
		streams = make([]*streamCore, 0, len(cc.streams))
		for seq, st := range cc.streams {
			streams = append(streams, st)
			delete(cc.streams, seq)
		}
	}
	cc.mu.Unlock()
	for _, st := range streams {
		st.teardown(transport.WrapCode(transport.CodeUnavailable, err, "rpc: stream conn lost: %v", err))
	}
	cc.conn.Close()
}

// openStream registers a stream for the open frame's sequence number and
// writes it. The returned core is routed item/credit/end frames by the read
// loop until teardown unregisters it.
func (cc *clientConn) openStream(f *frame) (*streamCore, error) {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.seq++
	f.seq = cc.seq
	seq := f.seq
	st := newStreamCore(seq, cc.cw)
	st.onTeardown = func() { cc.dropStream(seq) }
	cc.streams[seq] = st
	cc.mu.Unlock()

	if err := cc.cw.write(f); err != nil {
		cc.dropStream(seq)
		return nil, err
	}
	return st, nil
}

func (cc *clientConn) dropStream(seq uint64) {
	cc.mu.Lock()
	delete(cc.streams, seq)
	cc.mu.Unlock()
}

func (cc *clientConn) readLoop(fr *frameReader) {
	for {
		f, err := fr.read()
		if err != nil {
			cc.fail(err)
			return
		}
		cc.gotReply.Store(true)
		switch f.kind {
		case kindStreamItem, kindStreamEnd, kindStreamCredit:
			cc.mu.Lock()
			st := cc.streams[f.seq]
			cc.mu.Unlock()
			if st != nil {
				switch f.kind {
				case kindStreamItem:
					st.deliver(f.payload)
				case kindStreamEnd:
					// Any server End is terminal client-side: the handler
					// returned, so sends have no one to reach.
					st.peerEnd(f.code, f.payload, true)
				case kindStreamCredit:
					st.peerCredit(int(f.code))
				}
			}
			// Stream payloads are plain allocations retained by the stream
			// core (or dropped, for a torn-down stream); only the frame
			// struct recycles.
			putFrame(f)
			continue
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.seq]
		if ok {
			delete(cc.pending, f.seq)
		}
		cc.mu.Unlock()
		if ok {
			ch <- f
		} else {
			// Late reply for an abandoned call: nobody will read it.
			transport.ReleaseBuf(f.payload)
			putFrame(f)
		}
	}
}
