package rpc

// Death and recovery of pooled client connections: late replies for
// abandoned calls, sends racing connection failure, and pool re-dial after
// the peer goes away. All of these run under -race in `make check`.

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

// startEchoAt boots a minimal echo server on a fixed address, so a
// replacement can come up at the same place after a kill.
func startEchoAt(t testing.TB, network Network, addr string) *Server {
	t.Helper()
	s := NewServer("echo")
	s.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if _, err := s.Start(network, addr); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustMarshal(t testing.TB, v any) []byte {
	t.Helper()
	data, err := codec.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLateReplyAfterAbandonDiscarded abandons a call at its deadline while
// the server is still working; the late reply must be discarded — not
// delivered to the next call multiplexed on the same connection.
func TestLateReplyAfterAbandonDiscarded(t *testing.T) {
	n := NewMem()
	s := NewServer("slow")
	release := make(chan struct{})
	s.Handle("Slow", func(ctx *Ctx, payload []byte) ([]byte, error) {
		<-release
		return []byte("stale"), nil
	})
	s.Handle("Fast", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return []byte("fresh"), nil
	})
	addr, err := s.Start(n, "slow:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(n, "slow", addr, WithPoolSize(1))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.CallRaw(ctx, "Slow", nil)
	if !IsCode(err, CodeDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want CodeDeadline wrapping DeadlineExceeded", err)
	}
	close(release) // the stale reply now lands on the shared connection

	out, err := c.CallRaw(context.Background(), "Fast", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "fresh" {
		t.Fatalf("reply = %q; the abandoned call's late reply leaked", out)
	}
}

// TestConcurrentFailAndSend races sends against a connection failure; every
// in-flight waiter must resolve (error or closed channel) and the pending
// map must drain.
func TestConcurrentFailAndSend(t *testing.T) {
	client, server := net.Pipe()
	go io.Copy(io.Discard, server) //nolint:errcheck // sink so writes complete
	cc := newClientConn(client)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ch, _, err := cc.send(&frame{kind: kindRequest, method: "M"})
				if err != nil {
					return // connection already failed
				}
				select {
				case _, ok := <-ch:
					if ok {
						t.Error("got a reply from a server that never replies")
					}
				case <-time.After(5 * time.Second):
					t.Error("waiter never resolved after fail")
					return
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	cc.fail(errors.New("injected"))
	wg.Wait()

	if !cc.dead() {
		t.Fatal("conn should be dead")
	}
	cc.mu.Lock()
	pending := len(cc.pending)
	cc.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending = %d after fail, want 0", pending)
	}
	server.Close()
}

// countingNetwork counts dials, to observe re-dial behaviour.
type countingNetwork struct {
	Network
	dials atomic.Int64
}

func (n *countingNetwork) Dial(addr string) (net.Conn, error) {
	n.dials.Add(1)
	return n.Network.Dial(addr)
}

// TestPoolRedialAfterConnDeath kills the server out from under a pooled
// connection and brings a replacement up on the same address; the pool must
// notice the dead connection and re-dial.
func TestPoolRedialAfterConnDeath(t *testing.T) {
	mem := NewMem()
	n := &countingNetwork{Network: mem}
	s1 := startEchoAt(t, mem, "echo:0")
	c := NewClient(n, "echo", "echo:0", WithPoolSize(1))
	defer c.Close()

	if _, err := c.CallRaw(context.Background(), "Echo", mustMarshal(t, echoReq{Text: "a", N: 1})); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	startEchoAt(t, mem, "echo:0")

	// The pooled conn dies asynchronously; calls racing the death may fail
	// once, but the pool must converge on the new server.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.CallRaw(context.Background(), "Echo", mustMarshal(t, echoReq{Text: "b", N: 1}))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %v", err)
		}
	}
	if n.dials.Load() < 2 {
		t.Fatalf("dials = %d, want ≥2 (one per server generation)", n.dials.Load())
	}
}

// TestConcurrentRedialKeepsOneConn hammers a single-conn pool from many
// goroutines right after its connection dies; every call must eventually
// succeed and racing re-dials must not wedge the pool (losers close their
// extra connection and adopt the winner's).
func TestConcurrentRedialKeepsOneConn(t *testing.T) {
	mem := NewMem()
	n := &countingNetwork{Network: mem}
	s1 := startEchoAt(t, mem, "echo:0")
	c := NewClient(n, "echo", "echo:0", WithPoolSize(1))
	defer c.Close()

	if _, err := c.CallRaw(context.Background(), "Echo", mustMarshal(t, echoReq{Text: "warm", N: 1})); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	startEchoAt(t, mem, "echo:0")

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(5 * time.Second)
			for {
				_, err := c.CallRaw(context.Background(), "Echo", mustMarshal(t, echoReq{Text: "x", N: 1}))
				if err == nil {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("call never recovered: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDeadPooledConnRedialTransparent models a peer that crashed with the
// conn still pooled: the listener accepts the first conn and immediately
// closes it. The pool must notice the immediate EOF, redial once below the
// retry middleware, and succeed — without charging the retry token budget.
func TestDeadPooledConnRedialTransparent(t *testing.T) {
	mem := NewMem()
	l, err := mem.Listen("echo:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer("echo")
	srv.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Close() // crashed peer: accepted, then reset
		srv.Serve(l) //nolint:errcheck // replacement generation
	}()
	t.Cleanup(func() { srv.Close(); l.Close() })

	n := &countingNetwork{Network: mem}
	var stats transport.Stats
	c := NewClient(n, "echo", "echo:0", WithPoolSize(1),
		WithMiddleware(transport.Retry(transport.RetryConfig{Stats: &stats})))
	defer c.Close()

	out, err := c.CallRaw(context.Background(), "Echo", []byte("hi"))
	if err != nil {
		t.Fatalf("call through dead pooled conn: %v", err)
	}
	if string(out) != "hi" {
		t.Fatalf("reply = %q, want %q", out, "hi")
	}
	if got := n.dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2 (dead conn + one transparent redial)", got)
	}
	if got := stats.Retries.Value(); got != 0 {
		t.Fatalf("middleware retries = %d, want 0 (pool redial must not charge the budget)", got)
	}
}

// TestDeadPooledConnRedialsOnlyOnce: against a peer that resets every conn,
// the transparent redial is bounded to a single fresh dial — the coded error
// then surfaces to the retry layer, which does pay the budget.
func TestDeadPooledConnRedialsOnlyOnce(t *testing.T) {
	mem := NewMem()
	l, err := mem.Listen("echo:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { l.Close(); <-done })
	go func() {
		defer close(done)
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	n := &countingNetwork{Network: mem}
	c := NewClient(n, "echo", "echo:0", WithPoolSize(1))
	defer c.Close()
	if _, err := c.CallRaw(context.Background(), "Echo", []byte("hi")); err == nil {
		t.Fatal("call to always-resetting peer succeeded")
	}
	if got := n.dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2 (original + exactly one redial)", got)
	}
}

// TestHungServerDropsRequests: a hung server reads frames but never answers,
// so callers burn their deadline (the crashed-but-connected failure mode the
// chaos experiment relies on); Resume restores dispatch on the same conns.
func TestHungServerDropsRequests(t *testing.T) {
	n := NewMem()
	s := startEchoAt(t, n, "echo:9")
	c := NewClient(n, "echo", "echo:9", WithPoolSize(1))
	defer c.Close()

	if _, err := c.CallRaw(context.Background(), "Echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Hang()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.CallRaw(ctx, "Echo", []byte("b")); !IsCode(err, CodeDeadline) {
		t.Fatalf("call to hung server err = %v, want CodeDeadline", err)
	}
	s.Resume()
	out, err := c.CallRaw(context.Background(), "Echo", []byte("c"))
	if err != nil || string(out) != "c" {
		t.Fatalf("after resume: %q, %v", out, err)
	}
}

// TestInvokeSharesComposedChain checks the chain is composed once at
// construction: the same middleware state serves CallRaw and Invoke.
func TestInvokeSharesComposedChain(t *testing.T) {
	n := NewMem()
	s := startEchoAt(t, n, "echo:1")
	defer s.Close()

	var seen atomic.Int64
	c := NewClient(n, "echo", "echo:1", WithMiddleware(func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			seen.Add(1)
			return next(ctx, call)
		}
	}))
	defer c.Close()

	if _, err := c.CallRaw(context.Background(), "Echo", mustMarshal(t, echoReq{Text: "a", N: 1})); err != nil {
		t.Fatal(err)
	}
	call := transport.NewCall("echo", "Echo", mustMarshal(t, echoReq{Text: "b", N: 2}))
	if err := c.Invoke(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	if len(call.Reply) == 0 {
		t.Fatal("Invoke left no reply")
	}
	if seen.Load() != 2 {
		t.Fatalf("middleware ran %d times, want 2", seen.Load())
	}
}
