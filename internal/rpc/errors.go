package rpc

import (
	"errors"
	"fmt"
)

// Well-known application error codes, mirroring the small set of RPC
// failure classes the suite's services distinguish.
const (
	CodeInternal     = 1
	CodeNotFound     = 2
	CodeBadRequest   = 3
	CodeUnauthorized = 4
	CodeUnavailable  = 5 // overload / rate limited
	CodeConflict     = 6
	CodeDeadline     = 7
)

// Error is an application-level error carried across the wire with a code.
type Error struct {
	Code int
	Msg  string
}

// Errorf constructs a coded error.
func Errorf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Msg) }

// ErrorCode extracts the application code from err, or CodeInternal when
// err is not an *Error.
func ErrorCode(err error) int {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// IsCode reports whether err carries the given application code.
func IsCode(err error, code int) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// NotFoundf is shorthand for the most common coded error in the services.
func NotFoundf(format string, args ...any) *Error {
	return Errorf(CodeNotFound, format, args...)
}
