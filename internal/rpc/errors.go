package rpc

import "dsb/internal/transport"

// The coded error model lives in internal/transport so the shared
// middleware stack can classify failures without importing a protocol
// package; the rpc package aliases it for the services, which historically
// speak rpc.Errorf / rpc.IsCode.

// Well-known application error codes, mirroring the small set of RPC
// failure classes the suite's services distinguish.
const (
	CodeInternal     = transport.CodeInternal
	CodeNotFound     = transport.CodeNotFound
	CodeBadRequest   = transport.CodeBadRequest
	CodeUnauthorized = transport.CodeUnauthorized
	CodeUnavailable  = transport.CodeUnavailable
	CodeConflict     = transport.CodeConflict
	CodeDeadline     = transport.CodeDeadline
	CodeOverloaded   = transport.CodeOverloaded
)

// Error is an application-level error carried across the wire with a code.
type Error = transport.Error

// Errorf constructs a coded error.
func Errorf(code int, format string, args ...any) *Error {
	return transport.Errorf(code, format, args...)
}

// ErrorCode extracts the application code from err, or CodeInternal when
// err is not an *Error.
func ErrorCode(err error) int { return transport.ErrorCode(err) }

// IsCode reports whether err carries the given application code.
func IsCode(err error, code int) bool { return transport.IsCode(err, code) }

// NotFoundf is shorthand for the most common coded error in the services.
func NotFoundf(format string, args ...any) *Error {
	return transport.NotFoundf(format, args...)
}
