package rpc

import (
	"encoding/binary"
	"fmt"
)

// Frame kinds. A request carries a method; a reply or error carries the
// originating sequence number only. A one-way frame is a request the server
// never answers: the client completes at send and registers no reply waiter.
//
// The stream kinds multiplex open streams on the same connection, keyed by
// the opening frame's sequence number: StreamOpen is a request that starts
// a stream instead of a unary exchange, StreamItem carries one data frame
// in either direction, StreamEnd half-closes a direction (code 0 = clean,
// nonzero = the coded error that ended it), and StreamCredit grants the
// peer `code` more item frames of send window (flow control).
const (
	kindRequest      = 0
	kindReply        = 1
	kindError        = 2
	kindOneWay       = 3
	kindStreamOpen   = 4
	kindStreamItem   = 5
	kindStreamEnd    = 6
	kindStreamCredit = 7
)

// maxFrameSize bounds a single frame; movie "video" payloads in the suite
// stay within a few MB, mirroring production post-size limits.
const maxFrameSize = 16 << 20

// frame is one protocol message. Frames on the hot path come from framePool
// (getFrame/putFrame in wire.go); zero-value frames remain valid for
// test and cold-path use.
type frame struct {
	kind    byte
	seq     uint64
	method  string            // request-shaped frames only
	code    int64             // error, stream-end, and stream-credit frames
	headers map[string]string // requests and replies (trace context)
	payload []byte
	// body, when non-nil, is a typed request or reply value that the
	// connWriter marshals directly into its write segment in place of
	// payload — the zero-copy leg of transport.Call.Body. Only outgoing
	// frames carry it; parsed frames always materialize payload bytes.
	body any
}

// hasMethod reports whether kind carries a method name on the wire.
func hasMethod(kind byte) bool {
	return kind == kindRequest || kind == kindOneWay || kind == kindStreamOpen
}

// hasCode reports whether kind carries a code varint on the wire: the error
// code for kindError/kindStreamEnd, the credit grant for kindStreamCredit.
func hasCode(kind byte) bool {
	return kind == kindError || kind == kindStreamEnd || kind == kindStreamCredit
}

// appendFrame serializes f (excluding the outer length prefix) into buf.
func appendFrame(buf []byte, f *frame) []byte {
	buf = append(buf, f.kind)
	buf = binary.AppendUvarint(buf, f.seq)
	if hasMethod(f.kind) {
		buf = appendString(buf, f.method)
	}
	if hasCode(f.kind) {
		buf = binary.AppendVarint(buf, f.code)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.headers)))
	// Header maps are tiny (trace context, deadline); ordering on the wire
	// does not matter for correctness so we skip sorting here.
	for k, v := range f.headers {
		buf = appendString(buf, k)
		buf = appendString(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.payload)))
	return append(buf, f.payload...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// parseFrame decodes a frame body (excluding the outer length prefix). The
// returned frame's payload and header values alias or copy out of body as
// noted: strings are copied, payload aliases body (frameReader.read copies
// it out before the buffer is reused).
func parseFrame(body []byte) (*frame, error) {
	f := &frame{}
	if len(body) < 1 {
		return nil, fmt.Errorf("rpc: empty frame")
	}
	f.kind = body[0]
	rest := body[1:]
	var err error
	if f.seq, rest, err = readUvarint(rest); err != nil {
		return nil, err
	}
	if hasMethod(f.kind) {
		if f.method, rest, err = readString(rest); err != nil {
			return nil, err
		}
	}
	if hasCode(f.kind) {
		if f.code, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
	}
	var nh uint64
	if nh, rest, err = readUvarint64(rest); err != nil {
		return nil, err
	}
	if nh > 1024 {
		return nil, fmt.Errorf("rpc: too many headers: %d", nh)
	}
	if nh > 0 {
		f.headers = make(map[string]string, nh)
		for i := uint64(0); i < nh; i++ {
			var k, v string
			if k, rest, err = readString(rest); err != nil {
				return nil, err
			}
			if v, rest, err = readString(rest); err != nil {
				return nil, err
			}
			f.headers[k] = v
		}
	}
	var np uint64
	if np, rest, err = readUvarint64(rest); err != nil {
		return nil, err
	}
	if np > uint64(len(rest)) {
		return nil, fmt.Errorf("rpc: payload length %d exceeds frame", np)
	}
	f.payload = rest[:np]
	return f, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	return readUvarint64(b)
}

func readUvarint64(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("rpc: bad uvarint")
	}
	return x, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	x, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("rpc: bad varint")
	}
	return x, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint64(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("rpc: string length %d exceeds frame", n)
	}
	return string(rest[:n]), rest[n:], nil
}
