// Package rpc implements the suite's RPC framework — the role Apache Thrift
// and gRPC play in DeathStarBench. It provides a framed binary protocol over
// persistent connections with request multiplexing, client connection pools,
// deadline propagation, application error codes, and client/server
// interceptor chains used by the tracing and metrics layers.
//
// Two transports implement the Network interface: TCP (real sockets, used by
// the cmd/ tools and latency-sensitive benchmarks) and Mem (in-process
// pipes, used by tests and examples so an entire application boots in one
// process with no ports).
package rpc

import (
	"fmt"
	"net"
	"sync"
)

// Network abstracts the transport so the same client/server code runs over
// real sockets or in-memory pipes.
type Network interface {
	// Listen creates a listener on addr. For TCP, addr may have port 0 to
	// pick a free port; the chosen address is available from the listener.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener created by Listen.
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-socket transport.
type TCP struct{}

// Listen implements Network.
func (TCP) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Network.
func (TCP) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Mem is an in-process transport: listeners are registered in a name space
// held by the Mem value, and Dial creates a synchronous pipe to the
// listener. A Mem value must be shared by all parties that want to talk to
// each other; distinct Mem values are isolated networks.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Network.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("mem: address %s already in use", addr)
	}
	l := &memListener{addr: addr, accept: make(chan net.Conn), closed: make(chan struct{}), net: m}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (m *Mem) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mem: connection refused: %s", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("mem: connection refused: %s", addr)
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memListener struct {
	addr      string
	accept    chan net.Conn
	closed    chan struct{}
	closeOnce sync.Once
	net       *Mem
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
