//go:build !race

package rpc

const raceEnabled = false
