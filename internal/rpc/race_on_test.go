//go:build race

package rpc

// raceEnabled reports whether the race detector is instrumenting this
// build; its allocation overhead invalidates pinned alloc budgets.
const raceEnabled = true
