package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

type echoReq struct {
	Text string
	N    int64
}

type echoResp struct {
	Text  string
	Calls int64
}

// startEcho boots an echo server on the given network and returns its
// address and a cleanup func.
func startEcho(t testing.TB, network Network) (string, *Server) {
	t.Helper()
	var calls atomic.Int64
	s := NewServer("echo")
	s.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		var req echoReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, Errorf(CodeBadRequest, "bad payload: %v", err)
		}
		return codec.Marshal(echoResp{Text: req.Text, Calls: calls.Add(1)})
	})
	s.Handle("Fail", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return nil, Errorf(CodeUnauthorized, "nope")
	})
	s.Handle("Panic", func(ctx *Ctx, payload []byte) ([]byte, error) {
		panic("boom")
	})
	s.Handle("Slow", func(ctx *Ctx, payload []byte) ([]byte, error) {
		select {
		case <-time.After(5 * time.Second):
			return nil, nil
		case <-ctx.Done():
			return nil, Errorf(CodeDeadline, "server saw cancel")
		}
	})
	addr, err := s.Start(network, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, s
}

func testNetworks(t *testing.T, fn func(t *testing.T, n Network)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("tcp", func(t *testing.T) { fn(t, TCP{}) })
}

func TestCallRoundTrip(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, _ := startEcho(t, n)
		c := NewClient(n, "echo", addr)
		defer c.Close()
		var resp echoResp
		if err := c.Call(context.Background(), "Echo", echoReq{Text: "hi", N: 1}, &resp); err != nil {
			t.Fatalf("Call: %v", err)
		}
		if resp.Text != "hi" || resp.Calls != 1 {
			t.Fatalf("resp = %+v", resp)
		}
	})
}

func TestApplicationError(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, _ := startEcho(t, n)
		c := NewClient(n, "echo", addr)
		defer c.Close()
		err := c.Call(context.Background(), "Fail", echoReq{}, nil)
		if !IsCode(err, CodeUnauthorized) {
			t.Fatalf("want CodeUnauthorized, got %v", err)
		}
	})
}

func TestUnknownMethod(t *testing.T) {
	n := NewMem()
	addr, _ := startEcho(t, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	err := c.Call(context.Background(), "Missing", echoReq{}, nil)
	if !IsCode(err, CodeNotFound) {
		t.Fatalf("want CodeNotFound, got %v", err)
	}
}

func TestPanicRecovered(t *testing.T) {
	n := NewMem()
	addr, _ := startEcho(t, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	err := c.Call(context.Background(), "Panic", echoReq{}, nil)
	if !IsCode(err, CodeInternal) {
		t.Fatalf("want CodeInternal, got %v", err)
	}
	// Server must still work after a handler panic.
	var resp echoResp
	if err := c.Call(context.Background(), "Echo", echoReq{Text: "alive"}, &resp); err != nil {
		t.Fatalf("post-panic call: %v", err)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	n := NewMem()
	addr, _ := startEcho(t, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Call(ctx, "Slow", echoReq{}, nil)
	if !IsCode(err, CodeDeadline) {
		t.Fatalf("want CodeDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline not honored: took %v", elapsed)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, _ := startEcho(t, n)
		c := NewClient(n, "echo", addr, WithPoolSize(2))
		defer c.Close()
		const workers, per = 8, 50
		var wg sync.WaitGroup
		errs := make(chan error, workers*per)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					var resp echoResp
					text := fmt.Sprintf("w%d-%d", w, i)
					if err := c.Call(context.Background(), "Echo", echoReq{Text: text}, &resp); err != nil {
						errs <- err
						return
					}
					if resp.Text != text {
						errs <- fmt.Errorf("cross-talk: sent %q got %q", text, resp.Text)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	})
}

func TestServerCloseFailsInflight(t *testing.T) {
	n := NewMem()
	addr, srv := startEcho(t, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		done <- c.Call(ctx, "Slow", echoReq{}, nil)
	}()
	time.Sleep(50 * time.Millisecond)
	go srv.Close() // Close waits for handlers; Slow exits via ctx cancel on conn close or deadline
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not fail after server close")
	}
}

func TestDialError(t *testing.T) {
	n := NewMem()
	c := NewClient(n, "ghost", "nowhere:1")
	defer c.Close()
	if err := c.Call(context.Background(), "X", echoReq{}, nil); err == nil {
		t.Fatal("want dial error")
	}
}

func TestClientReconnects(t *testing.T) {
	n := NewMem()
	addr, srv := startEcho(t, n)
	c := NewClient(n, "echo", addr, WithPoolSize(1))
	defer c.Close()
	var resp echoResp
	if err := c.Call(context.Background(), "Echo", echoReq{Text: "a"}, &resp); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Restart on the same address.
	_, srv2 := func() (string, *Server) {
		s := NewServer("echo")
		s.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) { return payload, nil })
		if _, err := s.Start(n, addr); err != nil {
			t.Fatalf("restart: %v", err)
		}
		return addr, s
	}()
	defer srv2.Close()
	// The pooled conn is dead; the client must redial. Allow one failure
	// while the failure is detected.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := c.Call(context.Background(), "Echo", echoReq{Text: "b"}, &echoResp{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client did not recover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInterceptorsOrderAndHeaders(t *testing.T) {
	n := NewMem()
	var order []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}

	s := NewServer("svc")
	s.Use(func(ctx *Ctx, payload []byte, next Handler) ([]byte, error) {
		record("srv1-pre")
		resp, err := next(ctx, payload)
		record("srv1-post")
		return resp, err
	})
	s.Use(func(ctx *Ctx, payload []byte, next Handler) ([]byte, error) {
		record("srv2-pre")
		if ctx.Header("tag") != "v" {
			return nil, Errorf(CodeBadRequest, "missing header")
		}
		ctx.SetReplyHeader("echoed", ctx.Header("tag"))
		return next(ctx, payload)
	})
	s.Handle("M", func(ctx *Ctx, payload []byte) ([]byte, error) {
		record("handler")
		return nil, nil
	})
	addr, err := s.Start(n, "svc:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(n, "svc", addr,
		WithMiddleware(func(next transport.Invoker) transport.Invoker {
			return func(ctx context.Context, call *transport.Call) error {
				record("cli1-pre")
				call.SetHeader("tag", "v")
				err := next(ctx, call)
				record("cli1-post")
				return err
			}
		}))
	defer c.Close()
	if err := c.Call(context.Background(), "M", nil, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"cli1-pre", "srv1-pre", "srv2-pre", "handler", "srv1-post", "cli1-post"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestConcurrencyLimit(t *testing.T) {
	n := NewMem()
	var inflight, peak atomic.Int64
	s := NewServer("limited")
	s.SetConcurrency(2)
	s.Handle("Work", func(ctx *Ctx, payload []byte) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inflight.Add(-1)
		return nil, nil
	})
	addr, err := s.Start(n, "limited:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(n, "limited", addr, WithPoolSize(4))
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Call(context.Background(), "Work", nil, nil) //nolint:errcheck
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds limit 2", p)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	s := NewServer("dup")
	s.Handle("M", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate handler")
		}
	}()
	s.Handle("M", func(ctx *Ctx, payload []byte) ([]byte, error) { return nil, nil })
}

func TestMemNetworkIsolation(t *testing.T) {
	n1, n2 := NewMem(), NewMem()
	l, err := n1.Listen("svc:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n2.Dial("svc:0"); err == nil {
		t.Fatal("networks are not isolated")
	}
	if _, err := n1.Listen("svc:0"); err == nil {
		t.Fatal("duplicate listen allowed")
	}
	if l.Addr().Network() != "mem" || l.Addr().String() != "svc:0" {
		t.Fatalf("addr = %v/%v", l.Addr().Network(), l.Addr().String())
	}
	// After close, dialing fails and the address is reusable.
	l.Close()
	if _, err := n1.Dial("svc:0"); err == nil {
		t.Fatal("dial after close succeeded")
	}
	l2, err := n1.Listen("svc:0")
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	l2.Close()
}

func TestErrorHelpers(t *testing.T) {
	err := NotFoundf("user %d", 7)
	if ErrorCode(err) != CodeNotFound {
		t.Fatal("NotFoundf code")
	}
	if !IsCode(err, CodeNotFound) || IsCode(err, CodeInternal) {
		t.Fatal("IsCode")
	}
	if ErrorCode(errors.New("plain")) != CodeInternal {
		t.Fatal("plain error should map to internal")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := &frame{
		kind:    kindRequest,
		seq:     77,
		method:  "Compose",
		headers: map[string]string{"trace": "abc", "span": "1"},
		payload: []byte{1, 2, 3},
	}
	body := appendFrame(nil, in)
	out, err := parseFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.seq != 77 || out.method != "Compose" || out.headers["trace"] != "abc" || len(out.payload) != 3 {
		t.Fatalf("parsed %+v", out)
	}
	// Error frame carries a code.
	ein := &frame{kind: kindError, seq: 9, code: -42, payload: []byte("msg")}
	eout, err := parseFrame(appendFrame(nil, ein))
	if err != nil {
		t.Fatal(err)
	}
	if eout.code != -42 || string(eout.payload) != "msg" {
		t.Fatalf("error frame %+v", eout)
	}
}

func TestParseFrameCorrupt(t *testing.T) {
	good := appendFrame(nil, &frame{kind: kindRequest, seq: 1, method: "M", payload: []byte("xyz")})
	for i := 0; i < len(good); i++ {
		if _, err := parseFrame(good[:i]); err == nil && i < len(good)-3 {
			// Some prefixes legitimately parse as smaller frames only when
			// truncation falls after the payload length; the payload length
			// check catches the rest.
			_ = err
		}
	}
	if _, err := parseFrame(nil); err == nil {
		t.Fatal("empty frame parsed")
	}
}

func BenchmarkCallMem(b *testing.B) {
	n := NewMem()
	addr, _ := startEcho(b, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	req := echoReq{Text: "benchmark payload of moderate size", N: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp echoResp
		if err := c.Call(context.Background(), "Echo", req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallTCP(b *testing.B) {
	n := TCP{}
	addr, _ := startEcho(b, n)
	c := NewClient(n, "echo", addr)
	defer c.Close()
	req := echoReq{Text: "benchmark payload of moderate size", N: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp echoResp
		if err := c.Call(context.Background(), "Echo", req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}
