package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

// deadlineHeader carries the absolute call deadline (unix nanoseconds) so
// downstream tiers stop working on requests the client has abandoned.
const deadlineHeader = transport.DeadlineHeader

// Ctx is the per-request server context. It embeds a context.Context whose
// deadline reflects the propagated client deadline.
//
// The Ctx itself is freshly allocated per request — handlers routinely
// derive child contexts from it (context.WithTimeout and friends) whose
// timer goroutines can outlive the request, so recycling it would be a
// use-after-free; it is the one per-request allocation the unary hot path
// keeps. The request payload, by contrast, IS pooled: a handler must not
// retain the payload slice past its return — copy out anything that needs
// to live longer. Returning it (or a sub-slice) as the response is fine;
// the dispatcher writes the reply before recycling the request.
type Ctx struct {
	context.Context
	// Method is the invoked method name, e.g. "ComposePost".
	Method string
	// Service is the name the server was created with; tracing uses it to
	// attribute spans to microservices.
	Service string
	// Headers are the request headers (trace context, deadline).
	Headers map[string]string
	// ReplyHeaders, if populated by the handler or an interceptor, are sent
	// back with the response.
	ReplyHeaders map[string]string

	// replyBuf is the pooled buffer handed out by PooledReply, recycled by
	// the dispatcher once the reply frame is written.
	replyBuf []byte
}

// Header returns a request header value, or "".
func (c *Ctx) Header(key string) string { return c.Headers[key] }

// SetReplyHeader adds a response header.
func (c *Ctx) SetReplyHeader(key, value string) {
	if c.ReplyHeaders == nil {
		c.ReplyHeaders = make(map[string]string, 4)
	}
	c.ReplyHeaders[key] = value
}

// PooledReply encodes v into a pooled buffer and returns it for use as the
// handler's reply payload. The dispatcher recycles the buffer after the
// reply frame is written, so a steady stream of typed replies allocates
// nothing. Only the reply payload of this request may use it — do not retain
// the returned slice past the handler's return.
func (c *Ctx) PooledReply(v any) ([]byte, error) {
	buf := transport.AcquireBuf(0)
	out, err := codec.AppendMarshal(buf, v)
	if err != nil {
		transport.ReleaseBuf(buf)
		return nil, err
	}
	c.replyBuf = out
	return out, nil
}

// Handler processes a raw request payload and returns the raw response.
// The payload is pooled: do not retain it past return; returning it (or a
// sub-slice) as the response is fine — the dispatcher writes the reply
// before recycling the request.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// ServerInterceptor wraps request handling; interceptors run in
// registration order, outermost first.
type ServerInterceptor func(ctx *Ctx, payload []byte, next Handler) ([]byte, error)

// task is one unary request handed from a connection read loop to the
// worker pool.
type task struct {
	conn net.Conn
	cw   *connWriter
	f    *frame
}

// Server serves RPC requests for one microservice instance.
//
// Unary dispatch runs on a demand-grown worker pool: the read loop hands a
// request to a parked worker when one is ready instantly, and spawns a new
// worker (which parks itself afterwards) when none is — so concurrency stays
// unlimited, parked long-polls cannot starve anyone, and a steady serial
// load reuses one goroutine instead of spawning per request.
type Server struct {
	service      string
	mu           sync.Mutex
	handlers     map[string]Handler
	streams      map[string]StreamHandler
	interceptors []ServerInterceptor
	composed     map[string]Handler // per-method interceptor chain, built lazily
	listeners    []net.Listener
	conns        map[net.Conn]struct{}
	closed       bool
	wg           sync.WaitGroup
	sem          chan struct{} // nil = unlimited concurrency
	hung         atomic.Bool
	onClose      []func()
	tasks        chan task

	// methodNames holds a map[string]string of registered method (and
	// stream-method) names to themselves; frame readers intern incoming
	// method strings against it instead of copying per frame.
	methodNames atomic.Value

	// onewayErrs counts one-way requests whose handler (or an interceptor)
	// failed. There is no reply frame to carry the error back, so this
	// counter is where post-send failures surface — the stats half of the
	// fire-and-forget contract.
	onewayErrs atomic.Int64
}

// NewServer creates a server for the named service.
func NewServer(service string) *Server {
	return &Server{
		service:  service,
		handlers: make(map[string]Handler),
		streams:  make(map[string]StreamHandler),
		composed: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
		tasks:    make(chan task),
	}
}

// Service returns the service name.
func (s *Server) Service() string { return s.service }

// Use appends a server interceptor. Must be called before Serve.
func (s *Server) Use(i ServerInterceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, i)
	clear(s.composed) // cached chains are stale now
}

// SetConcurrency bounds the number of requests processed simultaneously.
// Zero or negative means unlimited. Used by the backpressure experiments to
// model a tier with fixed worker capacity.
func (s *Server) SetConcurrency(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		s.sem = nil
		return
	}
	s.sem = make(chan struct{}, n)
}

// Hang switches the server into the failure mode of a crashed-but-connected
// peer: it keeps accepting connections and reading request frames but drops
// them without dispatching or replying, so callers burn their full deadline
// instead of failing fast on a refused dial. Frames are still consumed —
// in-memory pipes are synchronous, and a reader that stops draining would
// wedge client writers instead of modeling a silent peer. The fault layer
// uses this to simulate crashes that only lease expiry can detect.
func (s *Server) Hang() { s.hung.Store(true) }

// Resume returns a hung server to normal dispatch (a restarted replica).
func (s *Server) Resume() { s.hung.Store(false) }

// Hung reports whether the server is currently dropping requests.
func (s *Server) Hung() bool { return s.hung.Load() }

// OneWayErrors returns how many one-way requests failed server-side. The
// caller of a one-way RPC only sees send failures; everything after the
// frame is on the wire — admission sheds, missing methods, handler errors —
// lands here instead of in a reply.
func (s *Server) OneWayErrors() int64 { return s.onewayErrs.Load() }

// OnClose registers a hook that runs during Close, after the server stops
// accepting but before it waits for in-flight handlers. Hooks are how
// long-poll services wake parked handlers at shutdown — without one, Close
// would block on handlers waiting out their full poll budget (and, on a
// hung server, forever).
func (s *Server) OnClose(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose = append(s.onClose, fn)
}

// internMethod republishes the method-name intern table. Caller holds s.mu.
func (s *Server) internMethodLocked(method string) {
	old, _ := s.methodNames.Load().(map[string]string)
	next := make(map[string]string, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[method] = method
	s.methodNames.Store(next)
}

// Handle registers a raw handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %s.%s", s.service, method))
	}
	if _, dup := s.streams[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %s.%s", s.service, method))
	}
	s.handlers[method] = h
	s.internMethodLocked(method)
}

// HandleStream registers a stream handler for method. Unary and stream
// methods share one namespace — a streaming open of a unary method (or vice
// versa) fails with CodeNotFound.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %s.%s", s.service, method))
	}
	if _, dup := s.streams[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %s.%s", s.service, method))
	}
	s.streams[method] = h
	s.internMethodLocked(method)
}

// Serve accepts connections on l until the listener or server is closed.
// It returns after the accept loop exits; in-flight requests drain in the
// background and are waited on by Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close raced ahead of us and never saw this listener; shut it
		// down here or dials to its address would block forever.
		l.Close()
		return errors.New("rpc: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Start listens on addr on the given network and serves in a background
// goroutine, returning the bound address (useful with TCP port 0).
func (s *Server) Start(network Network, addr string) (string, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return "", err
	}
	go s.Serve(l) //nolint:errcheck // accept-loop exit is signaled via Close
	return l.Addr().String(), nil
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := s.listeners
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	hooks := s.onClose
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, fn := range hooks {
		fn()
	}
	s.wg.Wait()
	// All read loops have exited and all dispatches drained, so nothing can
	// enqueue anymore; closing the channel retires the parked workers.
	close(s.tasks)
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	streams := newConnStreams()
	defer func() {
		// Conn teardown (peer death or Server.Close closing the conn) fails
		// every open stream: parked stream senders and receivers wake, their
		// handlers unwind, and Close's wg.Wait completes instead of
		// deadlocking on a stream parked mid-window.
		streams.failAll(Errorf(CodeUnavailable, "%s: connection closed", s.service))
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	fr := newFrameReader(conn)
	fr.methods = &s.methodNames
	cw := newConnWriter(conn)
	for {
		f, err := fr.read()
		if err != nil {
			return
		}
		if s.hung.Load() {
			// Crashed peer: consume every frame, never answer.
			transport.ReleaseBuf(f.payload)
			putFrame(f)
			continue
		}
		switch f.kind {
		case kindRequest, kindOneWay:
			s.wg.Add(1)
			t := task{conn: conn, cw: cw, f: f}
			select {
			case s.tasks <- t: // a parked worker takes it immediately
			default:
				go s.worker(t) // none parked: grow the pool
			}
		case kindStreamOpen:
			// Register the stream here, in the read loop, before the handler
			// goroutine exists: the client's first item can be one frame
			// behind the open, and a stream registered only once its handler
			// gets scheduled would silently drop it. The open frame is
			// retained by the handler goroutine, so it is not recycled.
			base, cancel := context.WithCancel(context.Background())
			if v, ok := f.headers[deadlineHeader]; ok {
				if dl, ok := transport.ParseDeadline(v); ok {
					inner := cancel
					var cancelDL context.CancelFunc
					base, cancelDL = context.WithDeadline(base, dl)
					cancel = func() { cancelDL(); inner() }
				}
			}
			st := &ServerStream{core: newStreamCore(f.seq, cw), cancel: cancel}
			if !streams.add(f.seq, st) {
				cancel()
				continue // conn torn down (or seq reuse)
			}
			s.wg.Add(1)
			go func(f *frame) {
				defer s.wg.Done()
				s.dispatchStream(streams, st, base, cancel, f)
			}(f)
		case kindStreamItem:
			if st := streams.get(f.seq); st != nil {
				st.core.deliver(f.payload)
			}
			putFrame(f) // payload (plain alloc) is retained by the inbox
		case kindStreamEnd:
			if st := streams.get(f.seq); st != nil {
				// Clean End = client half-close (handler's Recv drains to
				// io.EOF, sends continue); coded End = client abort, which
				// also cancels the handler's ctx.
				st.core.peerEnd(f.code, f.payload, f.code != 0)
				if f.code != 0 && st.cancel != nil {
					st.cancel()
				}
			}
			putFrame(f)
		case kindStreamCredit:
			if st := streams.get(f.seq); st != nil {
				st.core.peerCredit(int(f.code))
			}
			putFrame(f)
		default:
			putFrame(f) // ignore stray frames
		}
	}
}

// worker runs one task, then parks on the task channel to serve more until
// the server closes it.
func (s *Server) worker(t task) {
	s.runTask(t)
	for t := range s.tasks {
		s.runTask(t)
	}
}

func (s *Server) runTask(t task) {
	defer s.wg.Done()
	s.dispatch(t.conn, t.cw, t.f)
}

// composedHandler returns the interceptor-wrapped handler for method, or nil
// if no handler is registered. Chains are composed once per method and
// cached; an interceptor-free server dispatches the raw handler directly.
func (s *Server) composedHandler(method string) Handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.handlers[method]
	if h == nil || len(s.interceptors) == 0 {
		return h
	}
	if w, ok := s.composed[method]; ok {
		return w
	}
	w := composeChain(h, s.interceptors)
	s.composed[method] = w
	return w
}

// composeChain wraps h in chain, chain[0] outermost.
func composeChain(h Handler, chain []ServerInterceptor) Handler {
	wrapped := h
	for i := len(chain) - 1; i >= 0; i-- {
		ic, next := chain[i], wrapped
		wrapped = func(ctx *Ctx, payload []byte) ([]byte, error) {
			return ic(ctx, payload, next)
		}
	}
	return wrapped
}

// dispatchStream runs one stream handler to completion; the stream is
// already registered on the conn (items arriving before the handler is
// scheduled buffer into the inbox). The unary interceptor chain wraps the
// stream's whole lifetime with the opening payload — admission control
// parks or sheds the open, tracing spans the stream — and the handler's
// return value goes back as the End frame.
func (s *Server) dispatchStream(streams *connStreams, st *ServerStream, base context.Context, cancel context.CancelFunc, f *frame) {
	defer cancel()
	defer streams.remove(f.seq)
	if s.sem != nil {
		// A stream holds one concurrency slot for its lifetime, like the
		// long-poll request it replaces.
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	ctx := &Ctx{Context: base, Method: f.method, Service: s.service, Headers: f.headers}

	s.mu.Lock()
	h := s.streams[f.method]
	chain := s.interceptors
	s.mu.Unlock()

	var err error
	if h == nil {
		err = Errorf(CodeNotFound, "%s: no such stream method %q", s.service, f.method)
	} else {
		wrapped := composeChain(func(ctx *Ctx, payload []byte) ([]byte, error) {
			return nil, h(ctx, payload, st)
		}, chain)
		_, err = safeCall(wrapped, ctx, f.payload)
	}
	st.finish(err)
}

// dispatch runs one unary (or one-way) request: handler chain, reply frame,
// and recycling of every pooled resource once the reply is on the wire. It
// owns f and f.payload from the moment it is called.
func (s *Server) dispatch(conn net.Conn, cw *connWriter, f *frame) {
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	ctx := &Ctx{Context: context.Background(), Method: f.method, Service: s.service, Headers: f.headers}
	if v, ok := f.headers[deadlineHeader]; ok {
		if dl, ok := transport.ParseDeadline(v); ok {
			var cancel context.CancelFunc
			ctx.Context, cancel = context.WithDeadline(ctx.Context, dl)
			defer cancel()
		}
	}

	var resp []byte
	var err error
	if h := s.composedHandler(f.method); h == nil {
		err = Errorf(CodeNotFound, "%s: no such method %q", s.service, f.method)
	} else {
		resp, err = safeCall(h, ctx, f.payload)
	}

	if f.kind == kindOneWay {
		// Fire-and-forget: the full interceptor chain and handler ran, but
		// nothing goes back on the wire. Failures are counted, not replied.
		if err != nil {
			s.onewayErrs.Add(1)
		}
		s.recycle(ctx, f, nil)
		return
	}

	out := getFrame()
	out.seq, out.headers = f.seq, ctx.ReplyHeaders
	if err != nil {
		out.kind = kindError
		out.code = int64(ErrorCode(err))
		var e *Error
		if errors.As(err, &e) {
			out.payload = []byte(e.Msg)
		} else {
			out.payload = []byte(err.Error())
		}
	} else {
		out.kind = kindReply
		out.payload = resp
	}
	if werr := cw.write(out); werr != nil {
		conn.Close()
	}
	// The reply is on the wire (or the conn is dead); the request payload —
	// which the reply may alias (an echo handler returns its input) — and
	// any pooled reply buffer are dead now, and only now.
	s.recycle(ctx, f, out)
}

// recycle returns a dispatch's pooled resources: request payload and frame,
// reply frame, and any PooledReply buffer. (The Ctx itself is not pooled —
// see the Ctx doc comment.)
func (s *Server) recycle(ctx *Ctx, f, out *frame) {
	transport.ReleaseBuf(f.payload)
	putFrame(f)
	if out != nil {
		putFrame(out)
	}
	if ctx.replyBuf != nil {
		transport.ReleaseBuf(ctx.replyBuf)
	}
}

// safeCall converts a handler panic into a coded error so one bad request
// cannot take down a microservice instance.
func safeCall(h Handler, ctx *Ctx, payload []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Errorf(CodeInternal, "panic in %s.%s: %v", ctx.Service, ctx.Method, r)
		}
	}()
	return h(ctx, payload)
}
