package rpc

import (
	"context"
	"errors"
	"io"
	"sync"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

// Streaming: a stream is opened by a kindStreamOpen request and then
// carries kindStreamItem frames in either direction on the same multiplexed
// connection as unary, one-way, and pipelined traffic, keyed by the opening
// sequence number. Flow control is credit-based: each direction starts with
// streamWindow item frames of send window, and the receiver grants credit
// back (kindStreamCredit) as its application consumes items, so a slow
// consumer parks the sender instead of ballooning the receiver's inbox —
// the per-stream bound the broker's push delivery leans on for
// backpressure. A kindStreamEnd half-closes a direction: the client's clean
// End means "no more requests" (the server keeps sending), the server's End
// means the handler returned and the whole stream is over, and a nonzero
// code from either side aborts everything.
//
// Teardown matrix (who wakes whom):
//   - conn death: both endpoints' read loops fail every stream on the conn —
//     parked senders (awaiting credit) and receivers (awaiting items) wake
//     with a coded retryable error.
//   - Server.Close: closes conns, which is conn death as above; Close's
//     wg.Wait then observes every stream handler unwind.
//   - context cancellation (client): sends a coded End to the server —
//     canceling the handler's ctx — and tears the client side down.
//   - handler return (server): sends End (clean or coded) and tears down;
//     the client drains buffered items, then sees io.EOF or the error.
const streamWindow = 32

// creditBatch is how many consumed items a receiver accumulates before
// granting them back as send window: one credit frame per half window on a
// healthy stream, instead of one per item.
const creditBatch = streamWindow / 2

// errSendClosed reports a Send after CloseSend.
var errSendClosed = errors.New("rpc: stream send side closed")

// errStreamEnded reports a Send after the peer ended the stream cleanly.
var errStreamEnded = errors.New("rpc: stream ended by peer")

// streamCore is one endpoint's half of an open stream: the send window, the
// receive inbox, and the teardown latch, shared by the client and server
// stream types. The wire writer is the conn's shared flush-coalescing
// writer, so stream frames interleave with unary traffic.
type streamCore struct {
	seq uint64
	cw  *connWriter

	mu     sync.Mutex
	sendCv *sync.Cond // senders park here awaiting credit
	recvCv *sync.Cond // receivers park here awaiting items

	credit     int   // item frames we may still send
	sendErr    error // set: no more sends (half-close, end, teardown)
	sendClosed bool  // we sent our clean End

	inbox    [][]byte // received, unconsumed items (bounded by the window)
	consumed int      // items consumed since the last credit grant
	recvErr  error    // set: inbox is final; drained recvs return this

	torn       bool
	done       chan struct{} // closed at teardown
	onTeardown func()        // unregister hook; run once, outside mu
}

func newStreamCore(seq uint64, cw *connWriter) *streamCore {
	sc := &streamCore{seq: seq, cw: cw, credit: streamWindow, done: make(chan struct{})}
	sc.sendCv = sync.NewCond(&sc.mu)
	sc.recvCv = sync.NewCond(&sc.mu)
	return sc
}

// send writes one item frame, parking while the peer's window is exhausted.
func (sc *streamCore) send(b []byte) error {
	sc.mu.Lock()
	for sc.sendErr == nil && sc.credit <= 0 {
		sc.sendCv.Wait()
	}
	if sc.sendErr != nil {
		err := sc.sendErr
		sc.mu.Unlock()
		return err
	}
	sc.credit--
	sc.mu.Unlock()
	if err := sc.cw.write(&frame{kind: kindStreamItem, seq: sc.seq, payload: b}); err != nil {
		// The conn is broken; its read loop will fail every stream on it, but
		// tear this one down now so the caller's error is immediate.
		sc.teardown(transport.WrapCode(transport.CodeUnavailable, err, "rpc: stream conn lost: %v", err))
		return sc.sendErrLocked()
	}
	return nil
}

func (sc *streamCore) sendErrLocked() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.sendErr
}

// closeSend half-closes the send side: a clean End goes out and further
// sends fail with errSendClosed. Receiving stays open.
func (sc *streamCore) closeSend() error {
	sc.mu.Lock()
	if sc.torn || sc.sendClosed {
		sc.mu.Unlock()
		return nil
	}
	sc.sendClosed = true
	if sc.sendErr == nil {
		sc.sendErr = errSendClosed
	}
	sc.sendCv.Broadcast()
	sc.mu.Unlock()
	return sc.cw.write(&frame{kind: kindStreamEnd, seq: sc.seq})
}

// recv returns the next item. Buffered items always drain before an end
// condition (io.EOF, peer error, teardown) is reported, and consuming
// refills the peer's send window in creditBatch-sized grants.
func (sc *streamCore) recv() ([]byte, error) {
	sc.mu.Lock()
	for len(sc.inbox) == 0 && sc.recvErr == nil {
		sc.recvCv.Wait()
	}
	if len(sc.inbox) == 0 {
		err := sc.recvErr
		sc.mu.Unlock()
		return nil, err
	}
	b := sc.inbox[0]
	sc.inbox[0] = nil
	sc.inbox = sc.inbox[1:]
	if len(sc.inbox) == 0 {
		sc.inbox = nil
	}
	sc.consumed++
	grant := 0
	if sc.consumed >= creditBatch && !sc.torn {
		grant, sc.consumed = sc.consumed, 0
	}
	sc.mu.Unlock()
	if grant > 0 {
		// Best-effort: a failed credit write means the conn is dying and its
		// read loop is about to tear the stream down anyway.
		sc.cw.write(&frame{kind: kindStreamCredit, seq: sc.seq, code: int64(grant)}) //nolint:errcheck
	}
	return b, nil
}

// deliver enqueues an item from the peer (called by the conn read loop,
// never blocking it). Items past teardown or a flow-control violation are
// dropped; the window bound keeps the inbox finite against a law-abiding
// peer and the 2× cap guards against a broken one.
func (sc *streamCore) deliver(b []byte) {
	sc.mu.Lock()
	if sc.recvErr != nil || len(sc.inbox) >= 2*streamWindow {
		sc.mu.Unlock()
		return
	}
	sc.inbox = append(sc.inbox, b)
	sc.recvCv.Signal()
	sc.mu.Unlock()
}

// peerCredit refills the send window from a credit frame.
func (sc *streamCore) peerCredit(n int) {
	if n <= 0 {
		return
	}
	sc.mu.Lock()
	sc.credit += n
	if sc.credit > 2*streamWindow {
		sc.credit = 2 * streamWindow
	}
	sc.sendCv.Broadcast()
	sc.mu.Unlock()
}

// peerEnd handles an End frame from the peer. A clean non-terminal End is a
// half-close: recv drains to io.EOF, sending continues (the server's view
// of a client CloseSend). terminal — the client's view of any server End,
// or either side's view of a coded abort — tears the whole stream down.
func (sc *streamCore) peerEnd(code int64, msg []byte, terminal bool) {
	var rerr error
	if code == 0 {
		rerr = io.EOF
	} else {
		rerr = &Error{Code: int(code), Msg: string(msg)}
	}
	sc.mu.Lock()
	if sc.recvErr == nil {
		sc.recvErr = rerr
	}
	sc.recvCv.Broadcast()
	sc.mu.Unlock()
	if terminal || code != 0 {
		if code == 0 {
			sc.teardown(errStreamEnded)
		} else {
			sc.teardown(rerr)
		}
	}
}

// cancelWith aborts the stream from this side: best-effort coded End to the
// peer, then local teardown.
func (sc *streamCore) cancelWith(code int, msg string) {
	sc.mu.Lock()
	torn := sc.torn
	sc.mu.Unlock()
	if !torn {
		sc.cw.write(&frame{kind: kindStreamEnd, seq: sc.seq, code: int64(code), payload: []byte(msg)}) //nolint:errcheck
	}
	sc.teardown(&Error{Code: code, Msg: msg})
}

// teardown finalizes both directions (keeping any earlier, more specific
// per-direction error), wakes every parked sender and receiver, closes
// done, and runs the unregister hook. Buffered inbox items still drain
// through recv afterwards. Idempotent.
func (sc *streamCore) teardown(err error) {
	sc.mu.Lock()
	if sc.torn {
		sc.mu.Unlock()
		return
	}
	sc.torn = true
	if sc.sendErr == nil {
		sc.sendErr = err
	}
	if sc.recvErr == nil {
		sc.recvErr = err
	}
	hook := sc.onTeardown
	sc.onTeardown = nil
	sc.sendCv.Broadcast()
	sc.recvCv.Broadcast()
	close(sc.done)
	sc.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// clientStream is the client endpoint; it satisfies transport.StreamConn
// and is handed to callers wrapped in a typed transport.Stream.
type clientStream struct {
	core *streamCore
}

var _ transport.StreamConn = (*clientStream)(nil)

func (st *clientStream) Send(payload []byte) error { return st.core.send(payload) }
func (st *clientStream) CloseSend() error          { return st.core.closeSend() }
func (st *clientStream) Recv() ([]byte, error)     { return st.core.recv() }
func (st *clientStream) Cancel() {
	st.core.cancelWith(CodeDeadline, "stream canceled by caller")
}

// ServerStream is the handler's half of one open stream: Send pushes
// response items to the client under the flow-control window, Recv reads
// client items (io.EOF after the client's CloseSend). The handler returning
// ends the stream — nil sends a clean End, an error sends its code.
type ServerStream struct {
	core   *streamCore
	cancel context.CancelFunc // cancels the handler ctx on client abort
}

// Send writes one response item, blocking while the client's receive
// window is exhausted — the per-stream backpressure bound. It fails once
// the stream is torn down (client cancel, conn death, server shutdown).
func (st *ServerStream) Send(payload []byte) error { return st.core.send(payload) }

// SendMsg encodes v with the wire codec and sends it.
func (st *ServerStream) SendMsg(v any) error {
	payload, err := codec.Marshal(v)
	if err != nil {
		return err
	}
	return st.core.send(payload)
}

// Recv returns the next client item, io.EOF after the client half-closed.
func (st *ServerStream) Recv() ([]byte, error) { return st.core.recv() }

// RecvMsg decodes the next client item into v.
func (st *ServerStream) RecvMsg(v any) error {
	payload, err := st.core.recv()
	if err != nil {
		return err
	}
	return codec.Unmarshal(payload, v)
}

// Done is closed when the stream is torn down (client cancel, conn death,
// server shutdown) — the liveness signal long-running push handlers poll
// between waits.
func (st *ServerStream) Done() <-chan struct{} { return st.core.done }

// finish ends the stream after the handler returns: an End frame (clean or
// carrying the handler's error code) goes to the client unless teardown
// already happened, then the local side is torn down.
func (st *ServerStream) finish(err error) {
	out := &frame{kind: kindStreamEnd, seq: st.core.seq}
	if err != nil {
		out.code = int64(ErrorCode(err))
		var e *Error
		if errors.As(err, &e) {
			out.payload = []byte(e.Msg)
		} else {
			out.payload = []byte(err.Error())
		}
	}
	st.core.mu.Lock()
	torn := st.core.torn
	st.core.mu.Unlock()
	if !torn {
		st.core.cw.write(out) //nolint:errcheck // conn death tears down anyway
	}
	if err == nil {
		err = errStreamEnded
	}
	st.core.teardown(err)
}

// StreamHandler processes one open stream: payload is the opening request
// body, st the stream. Returning nil sends the client a clean end; an error
// sends its code. The full interceptor chain runs around the stream's
// lifetime with the opening payload, so admission control and tracing see
// streaming calls like unary ones.
type StreamHandler func(ctx *Ctx, payload []byte, st *ServerStream) error

// connStreams tracks the open streams of one server connection, so the
// read loop can route item/credit/end frames and conn teardown can fail
// every stream at once — the wake-up that keeps Server.Close from
// deadlocking on a parked stream sender.
type connStreams struct {
	mu   sync.Mutex
	m    map[uint64]*ServerStream
	dead bool
}

func newConnStreams() *connStreams {
	return &connStreams{m: make(map[uint64]*ServerStream)}
}

// add registers an open stream; false means the conn is already torn down
// (or the seq is in use) and the stream must not start.
func (cs *connStreams) add(seq uint64, st *ServerStream) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.dead {
		return false
	}
	if _, dup := cs.m[seq]; dup {
		return false
	}
	cs.m[seq] = st
	return true
}

func (cs *connStreams) get(seq uint64) *ServerStream {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.m[seq]
}

func (cs *connStreams) remove(seq uint64) {
	cs.mu.Lock()
	delete(cs.m, seq)
	cs.mu.Unlock()
}

// failAll tears down every open stream on the conn: parked senders and
// receivers wake, stream handlers unwind, and the conn's wg entries drain.
func (cs *connStreams) failAll(err error) {
	cs.mu.Lock()
	cs.dead = true
	streams := make([]*ServerStream, 0, len(cs.m))
	for seq, st := range cs.m {
		streams = append(streams, st)
		delete(cs.m, seq)
	}
	cs.mu.Unlock()
	for _, st := range streams {
		st.core.teardown(err)
		if st.cancel != nil {
			st.cancel()
		}
	}
}
