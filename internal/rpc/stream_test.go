package rpc

// Streaming RPC: round-trips, flow control, half-close, cancellation, and
// the teardown matrix — conn death, Server.Close, and context expiry must
// all wake parked stream senders and receivers. Runs under -race in
// `make check`.

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

type streamItem struct {
	Seq int64
	Msg string
}

// startStreamServer boots a server with a family of stream handlers used
// across the streaming tests.
func startStreamServer(t testing.TB, network Network) (string, *Server) {
	t.Helper()
	s := NewServer("stream")
	// Countdown: server pushes N items then returns cleanly.
	s.HandleStream("Countdown", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		var req echoReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return Errorf(CodeBadRequest, "bad payload: %v", err)
		}
		for i := int64(0); i < req.N; i++ {
			if err := st.SendMsg(streamItem{Seq: i, Msg: req.Text}); err != nil {
				return err
			}
		}
		return nil
	})
	// EchoStream: server echoes every client item back until half-close.
	s.HandleStream("EchoStream", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		for {
			var item streamItem
			if err := st.RecvMsg(&item); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
			if err := st.SendMsg(item); err != nil {
				return err
			}
		}
	})
	// Firehose: server sends until its stream dies; used to exercise window
	// exhaustion and teardown while parked on credit.
	s.HandleStream("Firehose", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		for i := int64(0); ; i++ {
			if err := st.SendMsg(streamItem{Seq: i}); err != nil {
				return err
			}
		}
	})
	// Fails: coded handler error after one item.
	s.HandleStream("Fails", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		if err := st.SendMsg(streamItem{Seq: 0}); err != nil {
			return err
		}
		return Errorf(CodeConflict, "handler gave up")
	})
	// Parked: receiver parked on an empty inbox until teardown wakes it.
	s.HandleStream("Parked", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		var item streamItem
		return st.RecvMsg(&item)
	})
	addr, err := s.Start(network, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, s
}

func TestStreamServerPush(t *testing.T) {
	testNetworks(t, func(t *testing.T, n Network) {
		addr, _ := startStreamServer(t, n)
		c := NewClient(n, "stream", addr)
		defer c.Close()

		st, err := c.Stream(context.Background(), "Countdown", echoReq{Text: "x", N: 100})
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		for i := int64(0); i < 100; i++ {
			var item streamItem
			if err := st.Recv(&item); err != nil {
				t.Fatalf("Recv #%d: %v", i, err)
			}
			if item.Seq != i || item.Msg != "x" {
				t.Fatalf("item = %+v, want seq %d", item, i)
			}
		}
		var item streamItem
		if err := st.Recv(&item); !transport.IsStreamEnd(err) {
			t.Fatalf("after last item err = %v, want clean stream end", err)
		}
	})
}

func TestStreamBidirectionalEcho(t *testing.T) {
	n := NewMem()
	addr, _ := startStreamServer(t, n)
	c := NewClient(n, "stream", addr)
	defer c.Close()

	st, err := c.Stream(context.Background(), "EchoStream", echoReq{})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	// More items than one window, so credit has to flow both ways.
	const total = 3 * streamWindow
	for i := 0; i < total; i++ {
		if err := st.Send(streamItem{Seq: int64(i), Msg: "ping"}); err != nil {
			t.Fatalf("Send #%d: %v", i, err)
		}
		var got streamItem
		if err := st.Recv(&got); err != nil {
			t.Fatalf("Recv #%d: %v", i, err)
		}
		if got.Seq != int64(i) {
			t.Fatalf("echoed seq = %d, want %d", got.Seq, i)
		}
	}
	// Half-close: the server drains to io.EOF, returns nil, and we see the
	// clean end.
	if err := st.CloseSend(); err != nil {
		t.Fatalf("CloseSend: %v", err)
	}
	var got streamItem
	if err := st.Recv(&got); !transport.IsStreamEnd(err) {
		t.Fatalf("after CloseSend err = %v, want clean stream end", err)
	}
	// Sending after CloseSend fails locally.
	if err := st.Send(streamItem{}); err == nil {
		t.Fatal("Send after CloseSend succeeded")
	}
}

// TestStreamFlowControlParksSender proves the window actually bounds the
// sender: with the client not consuming, the firehose handler must stall at
// the window instead of running away, then resume once the client drains.
func TestStreamFlowControlParksSender(t *testing.T) {
	n := NewMem()
	s := NewServer("stream")
	var sent atomic.Int64
	s.HandleStream("Firehose", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		for i := int64(0); ; i++ {
			if err := st.SendMsg(streamItem{Seq: i}); err != nil {
				return err
			}
			sent.Store(i + 1)
		}
	})
	addr, err := s.Start(n, "stream:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(n, "stream", addr)
	defer c.Close()

	st, err := c.Stream(context.Background(), "Firehose", echoReq{})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	// Let the sender run without a consumer: it must park at the window.
	waitFor(t, func() bool { return sent.Load() >= streamWindow })
	time.Sleep(50 * time.Millisecond)
	if got := sent.Load(); got > 2*streamWindow {
		t.Fatalf("sender pushed %d items with no consumer; window does not bound it", got)
	}
	stalled := sent.Load()
	// Drain a full window: credit flows back and the sender resumes.
	for i := 0; i < streamWindow; i++ {
		var item streamItem
		if err := st.Recv(&item); err != nil {
			t.Fatalf("Recv: %v", err)
		}
	}
	waitFor(t, func() bool { return sent.Load() > stalled })
	st.Cancel()
}

func TestStreamHandlerError(t *testing.T) {
	n := NewMem()
	addr, _ := startStreamServer(t, n)
	c := NewClient(n, "stream", addr)
	defer c.Close()

	st, err := c.Stream(context.Background(), "Fails", echoReq{})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var item streamItem
	if err := st.Recv(&item); err != nil {
		t.Fatalf("first Recv: %v", err)
	}
	if err := st.Recv(&item); !IsCode(err, CodeConflict) {
		t.Fatalf("err = %v, want CodeConflict from handler", err)
	}
	// The handler's error also poisons the send side.
	if err := st.Send(streamItem{}); err == nil {
		t.Fatal("Send after server error succeeded")
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	n := NewMem()
	addr, _ := startStreamServer(t, n)
	c := NewClient(n, "stream", addr)
	defer c.Close()

	st, err := c.Stream(context.Background(), "Missing", echoReq{})
	if err != nil {
		t.Fatalf("Stream open: %v", err) // open is async; the error lands on Recv
	}
	var item streamItem
	if err := st.Recv(&item); !IsCode(err, CodeNotFound) {
		t.Fatalf("err = %v, want CodeNotFound", err)
	}
}

// TestStreamClientCancel cancels the client context mid-stream: the client
// side tears down promptly and the server handler's ctx fires so the
// firehose unwinds instead of leaking.
func TestStreamClientCancel(t *testing.T) {
	n := NewMem()
	s := NewServer("stream")
	handlerDone := make(chan struct{})
	s.HandleStream("Firehose", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		defer close(handlerDone)
		for i := int64(0); ; i++ {
			if err := st.SendMsg(streamItem{Seq: i}); err != nil {
				return err
			}
		}
	})
	addr, err := s.Start(n, "stream:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(n, "stream", addr)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.Stream(ctx, "Firehose", echoReq{})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var item streamItem
	if err := st.Recv(&item); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	cancel()

	// Client side: recv drains buffered items, then reports the abort.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := st.Recv(&item); err != nil {
			if !IsCode(err, CodeDeadline) {
				t.Fatalf("post-cancel err = %v, want CodeDeadline", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Recv never saw the cancellation")
		}
	}
	// Server side: the handler unwinds.
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler still running after client cancel")
	}
}

// TestStreamConnDeathFailsBothEnds kills the transport under an open stream;
// a client parked in Recv and the server handler parked in Send must both
// wake with coded retryable errors.
func TestStreamConnDeathFailsBothEnds(t *testing.T) {
	mem := NewMem()
	n := &connGrabber{Network: mem}
	addr, _ := startStreamServer(t, mem)
	c := NewClient(n, "stream", addr, WithPoolSize(1))
	defer c.Close()

	st, err := c.Stream(context.Background(), "Firehose", echoReq{})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var item streamItem
	if err := st.Recv(&item); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	n.closeAll()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := st.Recv(&item); err != nil {
			if !IsCode(err, CodeUnavailable) || !transport.Retryable(err) {
				t.Fatalf("post-death err = %v, want retryable CodeUnavailable", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Recv never observed conn death")
		}
	}
	if err := st.Send(streamItem{}); err == nil {
		t.Fatal("Send on dead stream succeeded")
	}
}

// TestStreamsMultiplexWithUnary runs streams, unary calls, and one-way
// notifications concurrently over a single pooled connection.
func TestStreamsMultiplexWithUnary(t *testing.T) {
	n := NewMem()
	s := NewServer("mux")
	var oneways atomic.Int64
	s.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	s.Handle("Note", func(ctx *Ctx, payload []byte) ([]byte, error) {
		oneways.Add(1)
		return nil, nil
	})
	s.HandleStream("Countdown", func(ctx *Ctx, payload []byte, st *ServerStream) error {
		var req echoReq
		if err := codec.Unmarshal(payload, &req); err != nil {
			return err
		}
		for i := int64(0); i < req.N; i++ {
			if err := st.SendMsg(streamItem{Seq: i}); err != nil {
				return err
			}
		}
		return nil
	})
	addr, err := s.Start(n, "mux:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(n, "mux", addr, WithPoolSize(1))
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := c.Stream(context.Background(), "Countdown", echoReq{N: 64})
			if err != nil {
				errs <- err
				return
			}
			for i := int64(0); i < 64; i++ {
				var item streamItem
				if err := st.Recv(&item); err != nil {
					errs <- fmt.Errorf("stream %d item %d: %w", g, i, err)
					return
				}
				if item.Seq != i {
					errs <- fmt.Errorf("stream %d: seq %d want %d", g, item.Seq, i)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				msg := fmt.Sprintf("u%d-%d", g, i)
				out, err := c.CallRaw(context.Background(), "Echo", []byte(msg))
				if err != nil {
					errs <- err
					return
				}
				if string(out) != msg {
					errs <- fmt.Errorf("unary echo = %q want %q", out, msg)
					return
				}
				if err := c.CallOneWay(context.Background(), "Note", nil); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitFor(t, func() bool { return oneways.Load() == 4*32 })
}

// TestServerCloseWakesParkedStreams is the shutdown-regression test:
// Server.Close must wake a handler parked in Send on an exhausted window
// and one parked in Recv on an empty inbox — mirroring the long-poll
// shutdown fix, Close may not hang on them and the client must see a coded
// error.
func TestServerCloseWakesParkedStreams(t *testing.T) {
	n := NewMem()
	addr, s := startStreamServer(t, n)
	c := NewClient(n, "stream", addr)
	defer c.Close()

	// Parked sender: firehose with a client that never consumes.
	sendSt, err := c.Stream(context.Background(), "Firehose", echoReq{})
	if err != nil {
		t.Fatalf("Stream(Firehose): %v", err)
	}
	// Parked receiver: handler blocked in Recv with no client items.
	recvSt, err := c.Stream(context.Background(), "Parked", echoReq{})
	if err != nil {
		t.Fatalf("Stream(Parked): %v", err)
	}
	var item streamItem
	if err := sendSt.Recv(&item); err != nil { // stream is live
		t.Fatalf("Recv: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let the firehose hit the window

	closed := make(chan struct{})
	go func() {
		s.Close() // must not hang on the parked handlers
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on parked stream handlers")
	}

	for _, st := range []*transport.Stream{sendSt, recvSt} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := st.Recv(&item); err != nil {
				if transport.IsStreamEnd(err) || IsCode(err, CodeUnavailable) {
					break
				}
				t.Fatalf("post-Close err = %v, want stream end or CodeUnavailable", err)
			}
			if time.Now().After(deadline) {
				t.Fatal("client stream never observed server shutdown")
			}
		}
	}
}

// connGrabber records every conn it hands out so a test can sever them all
// while the listener stays up — conn death without server death.
type connGrabber struct {
	Network
	mu    sync.Mutex
	conns []interface{ Close() error }
}

func (g *connGrabber) Dial(addr string) (conn net.Conn, err error) {
	conn, err = g.Network.Dial(addr)
	if err == nil {
		g.mu.Lock()
		g.conns = append(g.conns, conn)
		g.mu.Unlock()
	}
	return conn, err
}

func (g *connGrabber) closeAll() {
	g.mu.Lock()
	conns := g.conns
	g.conns = nil
	g.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
}

// TestPipelinedCallsFailFastOnConnDeath is the pipelining regression test:
// Go() calls parked in the pending map must resolve with a coded retryable
// error as soon as the conn dies — not hang until their deadlines, and not
// be transparently resent (the request may have executed).
func TestPipelinedCallsFailFastOnConnDeath(t *testing.T) {
	mem := NewMem()
	n := &connGrabber{Network: mem}
	s := NewServer("park")
	release := make(chan struct{})
	s.Handle("Park", func(ctx *Ctx, payload []byte) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	addr, err := s.Start(mem, "park:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(release)

	c := NewClient(n, "park", addr, WithPoolSize(1))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var pendings []*Pending
	for i := 0; i < 8; i++ {
		pendings = append(pendings, c.Go(ctx, "Park", nil, nil))
	}
	time.Sleep(10 * time.Millisecond) // let the requests reach the server
	n.closeAll()

	start := time.Now()
	for i, p := range pendings {
		err := p.Wait()
		if err == nil {
			t.Fatalf("call #%d succeeded against a severed conn", i)
		}
		if !IsCode(err, CodeUnavailable) || !transport.Retryable(err) {
			t.Fatalf("call #%d err = %v, want retryable CodeUnavailable", i, err)
		}
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("pending calls took %v to fail after conn death; they hung", took)
	}
}
