package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// maxRetainedBuffer bounds the scratch buffers a connection keeps across
// frames (encode scratch, read envelope) so one oversized frame does not
// pin megabytes on an otherwise idle connection.
const maxRetainedBuffer = 64 << 10

// connWriter serializes frame writes from concurrent senders onto one
// shared buffered connection. It carries the two hot-path optimizations of
// the write side:
//
//   - scratch reuse: the frame encode buffer lives with the writer and is
//     reused across calls (writes are serialized under mu, so no pool or
//     synchronization is needed), instead of allocating per frame;
//   - flush coalescing: a sender that can see another sender already queued
//     behind it leaves its bytes in the bufio.Writer and lets the last
//     queued sender flush, so K concurrent callers multiplexed on one
//     connection pay ~1 flush (the syscall-shaped cost on a real socket),
//     not K. A lone sender still flushes immediately — latency is never
//     traded for batching.
type connWriter struct {
	// queued counts senders that have entered write and not yet performed
	// their buffered write; the sender that decrements it to zero is the
	// last of the burst and owns the flush.
	queued atomic.Int32

	mu      sync.Mutex
	w       *bufio.Writer
	scratch []byte
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{w: bufio.NewWriterSize(w, 32<<10)}
}

// write appends the length-prefixed frame to the connection, flushing
// unless a queued sender behind this one is guaranteed to flush later.
func (cw *connWriter) write(f *frame) error {
	cw.queued.Add(1)
	cw.mu.Lock()
	defer cw.mu.Unlock()
	last := cw.queued.Add(-1) == 0
	body := appendFrame(cw.scratch[:0], f)
	if cap(body) <= maxRetainedBuffer {
		cw.scratch = body
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("rpc: frame size %d exceeds limit", len(body))
	}
	// The uvarint length prefix goes out via WriteByte: handing a
	// stack-array slice to the writer would force it to escape and cost an
	// allocation per frame.
	x := uint64(len(body))
	for x >= 0x80 {
		if err := cw.w.WriteByte(byte(x) | 0x80); err != nil {
			return err
		}
		x >>= 7
	}
	if err := cw.w.WriteByte(byte(x)); err != nil {
		return err
	}
	if _, err := cw.w.Write(body); err != nil {
		return err
	}
	if last {
		return cw.w.Flush()
	}
	// A sender is queued behind us: it either flushes or fails the
	// connection, so our bytes are never stranded in the buffer.
	return nil
}

// frameReader reads length-prefixed frames from a connection, reusing one
// envelope buffer across frames. Only the payload is copied out into an
// exactly-sized allocation (handlers and callers retain it beyond the next
// read); the envelope bytes — kind, seq, method, headers, length prefixes —
// are parsed in place and never escape, so a steady stream of frames
// allocates the frame struct and its payload, nothing else.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 32<<10)}
}

// read returns the next frame. The returned frame owns its payload.
func (fr *frameReader) read() (*frame, error) {
	size, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, err
	}
	if size > maxFrameSize {
		return nil, fmt.Errorf("rpc: frame size %d exceeds limit", size)
	}
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	body := fr.buf[:size]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, err
	}
	f, err := parseFrame(body)
	if err != nil {
		return nil, err
	}
	if len(f.payload) > 0 {
		f.payload = append([]byte(nil), f.payload...)
	} else {
		f.payload = nil
	}
	if cap(fr.buf) > maxRetainedBuffer {
		fr.buf = nil
	}
	return f, nil
}
