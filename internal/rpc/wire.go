package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"dsb/internal/codec"
	"dsb/internal/transport"
)

// maxRetainedBuffer bounds the scratch buffers a connection keeps across
// frames (encode segments, read envelope) so one oversized frame does not
// pin megabytes on an otherwise idle connection.
const maxRetainedBuffer = 64 << 10

// segSize is the target size of one write segment. A segment that grows past
// it is sealed and a fresh one opened, so a coalesced burst becomes a short
// chain of segments flushed in one vectored write instead of one ever-growing
// contiguous buffer that would have to be copied to grow.
const segSize = 32 << 10

// maxFreeSegs bounds the recycled-segment freelist per connection.
const maxFreeSegs = 8

// errEncode marks a failure to serialize the frame's typed body. The
// connection itself is untouched — the half-written frame was rolled back —
// so callers must report it to the application instead of failing the
// connection or redialing.
var errEncode = errors.New("rpc: encode request")

// connWriter serializes frame writes from concurrent senders onto one shared
// connection. It carries the hot-path optimizations of the write side:
//
//   - in-place encode: frames are appended directly into a connection-owned
//     segment under the writer lock — a frame carrying a typed body is
//     marshaled straight into that segment through the codec fast path, so
//     no per-call encode buffer ever exists;
//   - flush coalescing: a sender that can see another sender already queued
//     behind it leaves its bytes in the open segment and lets the last
//     queued sender flush, so K concurrent callers multiplexed on one
//     connection pay ~1 flush (the syscall-shaped cost on a real socket),
//     not K. A lone sender still flushes immediately — latency is never
//     traded for batching;
//   - vectored flush: a burst that spilled across segments goes out in one
//     net.Buffers writev instead of segment-by-segment writes (or a copy
//     into one contiguous buffer).
type connWriter struct {
	// queued counts senders that have entered write and not yet performed
	// their buffered write; the sender that decrements it to zero is the
	// last of the burst and owns the flush.
	queued atomic.Int32

	mu   sync.Mutex
	w    io.Writer
	err  error    // sticky: first write failure; the conn is dead
	cur  []byte   // open segment, frames append here
	bufs [][]byte // sealed segments awaiting flush, in write order
	free [][]byte // recycled segments
	iov  net.Buffers
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{w: w}
}

// write appends the length-prefixed frame to the connection, flushing unless
// a queued sender behind this one is guaranteed to flush later. An errEncode
// failure rolls the frame back and leaves the connection usable; any other
// error is sticky.
func (cw *connWriter) write(f *frame) error {
	cw.queued.Add(1)
	cw.mu.Lock()
	defer cw.mu.Unlock()
	last := cw.queued.Add(-1) == 0
	if cw.err != nil {
		return cw.err
	}
	encErr := cw.encodeLocked(f)
	if len(cw.cur) >= segSize {
		cw.sealLocked()
	}
	if last {
		// Flush even when this frame's encode failed: earlier senders of the
		// burst left their (complete) frames behind and counted on the last
		// sender to push them out.
		if ferr := cw.flushLocked(); ferr != nil && encErr == nil {
			return ferr
		}
	}
	// Not last: a sender is queued behind us — it either flushes or fails
	// the connection, so our bytes are never stranded in the segment.
	return encErr
}

// encodeLocked appends f to the open segment. The outer length prefix (and,
// for typed bodies, the payload length prefix) is reserved as a fixed-width
// padded uvarint and patched once the final size is known, so the body is
// marshaled exactly once, directly into the segment. On error the segment is
// rolled back to its pre-frame length.
func (cw *connWriter) encodeLocked(f *frame) error {
	mark := len(cw.cur)
	buf := append(cw.cur, 0, 0, 0, 0) // outer length, patched below
	start := len(buf)
	buf = append(buf, f.kind)
	buf = binary.AppendUvarint(buf, f.seq)
	if hasMethod(f.kind) {
		buf = appendString(buf, f.method)
	}
	if hasCode(f.kind) {
		buf = binary.AppendVarint(buf, f.code)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.headers)))
	// Header maps are tiny (trace context, deadline); ordering on the wire
	// does not matter for correctness so we skip sorting here.
	for k, v := range f.headers {
		buf = appendString(buf, k)
		buf = appendString(buf, v)
	}
	if f.body != nil {
		buf = append(buf, 0, 0, 0, 0) // payload length, patched below
		pstart := len(buf)
		out, err := codec.AppendMarshal(buf, f.body)
		if err != nil {
			cw.cur = buf[:mark]
			return fmt.Errorf("%w: %v", errEncode, err)
		}
		buf = out
		putPadded(buf[pstart-4:], uint64(len(buf)-pstart))
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(f.payload)))
		buf = append(buf, f.payload...)
	}
	size := len(buf) - start
	if size > maxFrameSize {
		cw.cur = buf[:mark]
		return fmt.Errorf("%w: frame size %d exceeds limit", errEncode, size)
	}
	putPadded(buf[start-4:], uint64(size))
	cw.cur = buf
	return nil
}

// putPadded writes x into dst[:4] as a fixed-width uvarint: the low three
// byte groups carry continuation bits even when zero, which standard uvarint
// readers accept. Fixing the width lets the writer reserve the prefix before
// the length is known. Valid for x < 1<<28; maxFrameSize is far below that.
func putPadded(dst []byte, x uint64) {
	dst[0] = byte(x) | 0x80
	dst[1] = byte(x>>7) | 0x80
	dst[2] = byte(x>>14) | 0x80
	dst[3] = byte(x >> 21)
}

// sealLocked closes the open segment onto the flush chain and opens a fresh
// one (recycled when possible).
func (cw *connWriter) sealLocked() {
	if len(cw.cur) == 0 {
		return
	}
	cw.bufs = append(cw.bufs, cw.cur)
	if n := len(cw.free); n > 0 {
		cw.cur = cw.free[n-1]
		cw.free[n-1] = nil
		cw.free = cw.free[:n-1]
	} else {
		cw.cur = make([]byte, 0, segSize)
	}
}

// flushLocked writes every sealed segment plus the open one to the
// connection — one plain Write for the common single-segment case, one
// vectored net.Buffers write when a burst spilled across segments — and
// recycles the segments. Write errors are sticky.
func (cw *connWriter) flushLocked() error {
	var err error
	if len(cw.bufs) == 0 {
		if len(cw.cur) == 0 {
			return nil
		}
		_, err = cw.w.Write(cw.cur)
	} else {
		// net.Buffers.WriteTo consumes its receiver, so hand it a scratch
		// copy of the slice headers and keep the originals for recycling.
		iov := cw.iov[:0]
		for _, b := range cw.bufs {
			iov = append(iov, b)
		}
		if len(cw.cur) > 0 {
			iov = append(iov, cw.cur)
		}
		cw.iov = iov
		nb := iov
		_, err = nb.WriteTo(cw.w)
		for i, b := range cw.bufs {
			if cap(b) <= maxRetainedBuffer && len(cw.free) < maxFreeSegs {
				cw.free = append(cw.free, b[:0])
			}
			cw.bufs[i] = nil
		}
		cw.bufs = cw.bufs[:0]
	}
	cw.cur = cw.cur[:0]
	if cap(cw.cur) > maxRetainedBuffer {
		cw.cur = nil
	}
	if err != nil {
		cw.err = err
	}
	return err
}

// framePool recycles frame structs across reads and writes; see getFrame.
var framePool = sync.Pool{New: func() any { return new(frame) }}

// getFrame returns a zeroed frame. Pair with putFrame once every field the
// holder cares about has been detached.
func getFrame() *frame { return framePool.Get().(*frame) }

// putFrame recycles f. The caller must have detached (or released) the
// payload first — putFrame only drops the references.
func putFrame(f *frame) {
	*f = frame{}
	framePool.Put(f)
}

// frameReader reads length-prefixed frames from a connection, reusing one
// envelope buffer across frames. Frame structs come from a pool, method
// names are interned against the server's handler table when one is
// attached, and unary payloads are copied into pooled buffers — so a steady
// stream of frames recirculates a fixed working set instead of allocating
// per message.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
	// methods, when set (server side), holds a map[string]string whose keys
	// and values are the registered method names; looking an incoming method
	// up through it makes the name a shared string instead of a per-frame
	// copy.
	methods *atomic.Value
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 32<<10)}
}

// read returns the next frame from the pool. The returned frame owns its
// payload: unary kinds carry a pooled buffer (release with
// transport.ReleaseBuf once dead), stream kinds a plain allocation (stream
// inboxes retain payloads indefinitely, so they must not recycle underneath
// a consumer). Recycle the frame itself with putFrame.
func (fr *frameReader) read() (*frame, error) {
	size, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, err
	}
	if size > maxFrameSize {
		return nil, fmt.Errorf("rpc: frame size %d exceeds limit", size)
	}
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	body := fr.buf[:size]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, err
	}
	f := getFrame()
	if err := fr.parseInto(f, body); err != nil {
		putFrame(f)
		return nil, err
	}
	if cap(fr.buf) > maxRetainedBuffer {
		fr.buf = nil
	}
	return f, nil
}

// parseInto decodes a frame body (excluding the outer length prefix) into f,
// copying the payload out of the shared envelope buffer per the ownership
// rules documented on read.
func (fr *frameReader) parseInto(f *frame, body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("rpc: empty frame")
	}
	f.kind = body[0]
	rest := body[1:]
	var err error
	if f.seq, rest, err = readUvarint(rest); err != nil {
		return err
	}
	if hasMethod(f.kind) {
		var mn uint64
		if mn, rest, err = readUvarint64(rest); err != nil {
			return err
		}
		if mn > uint64(len(rest)) {
			return fmt.Errorf("rpc: string length %d exceeds frame", mn)
		}
		mb := rest[:mn]
		rest = rest[mn:]
		f.method = ""
		if fr.methods != nil {
			if m, _ := fr.methods.Load().(map[string]string); m != nil {
				// Map lookup keyed by string(mb) does not allocate; a hit
				// yields the handler table's own interned name.
				f.method = m[string(mb)]
			}
		}
		if f.method == "" && mn > 0 {
			f.method = string(mb)
		}
	}
	if hasCode(f.kind) {
		if f.code, rest, err = readVarint(rest); err != nil {
			return err
		}
	}
	var nh uint64
	if nh, rest, err = readUvarint64(rest); err != nil {
		return err
	}
	if nh > 1024 {
		return fmt.Errorf("rpc: too many headers: %d", nh)
	}
	if nh > 0 {
		f.headers = make(map[string]string, nh)
		for i := uint64(0); i < nh; i++ {
			var k, v string
			if k, rest, err = readString(rest); err != nil {
				return err
			}
			if v, rest, err = readString(rest); err != nil {
				return err
			}
			f.headers[k] = v
		}
	}
	var np uint64
	if np, rest, err = readUvarint64(rest); err != nil {
		return err
	}
	if np > uint64(len(rest)) {
		return fmt.Errorf("rpc: payload length %d exceeds frame", np)
	}
	if np == 0 {
		f.payload = nil
		return nil
	}
	switch f.kind {
	case kindRequest, kindOneWay, kindReply, kindError:
		// Unary payloads live until the handler replies (server) or the
		// caller decodes (client); both release back to the pool.
		f.payload = append(transport.AcquireBuf(int(np)), rest[:np]...)
	default:
		// Stream payloads are retained by stream inboxes with no release
		// point, so they get plain garbage-collected allocations.
		f.payload = append([]byte(nil), rest[:np]...)
	}
	return nil
}
