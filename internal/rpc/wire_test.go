package rpc

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

// encodeWire renders f as its on-the-wire bytes.
func encodeWire(t *testing.T, f *frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := newConnWriter(&buf)
	if err := cw.write(f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestFrameAllocGuard pins the frame path's allocation behavior so hot-path
// regressions fail loudly:
//
//   - encode is allocation-free: the scratch buffer lives with the
//     connWriter and is reused across frames (the seed code allocated a
//     fresh encode buffer per call);
//   - decode allocates only the frame struct plus, when present, the
//     payload copy and header map — the envelope buffer is reused across
//     frames (the seed code allocated the whole frame body per message).
func TestFrameAllocGuard(t *testing.T) {
	req := &frame{
		kind:    kindRequest,
		seq:     7,
		method:  "ReadTimeline",
		headers: map[string]string{"dsb-deadline": "1722470400000000000"},
		payload: bytes.Repeat([]byte("x"), 256),
	}
	cw := newConnWriter(bytes.NewBuffer(make([]byte, 0, 1<<20)))
	if err := cw.write(req); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := cw.write(req); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("encode allocs/op = %.1f, want 0 (scratch buffer must be reused)", allocs)
	}

	// A bodyless reply (fire-and-forget ack) decodes with a single
	// allocation: the frame struct.
	ackWire := encodeWire(t, &frame{kind: kindReply, seq: 9})
	src := bytes.NewReader(ackWire)
	fr := newFrameReader(src)
	readOne := func() *frame {
		f, err := fr.read()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	readOne()
	if allocs := testing.AllocsPerRun(200, func() {
		src.Reset(ackWire)
		fr.r.Reset(src)
		readOne()
	}); allocs > 1 {
		t.Errorf("bodyless decode allocs/op = %.1f, want <= 1 (envelope buffer must be reused)", allocs)
	}

	// A reply carrying a payload adds exactly the payload copy.
	replyWire := encodeWire(t, &frame{kind: kindReply, seq: 9, payload: bytes.Repeat([]byte("y"), 512)})
	src2 := bytes.NewReader(replyWire)
	fr2 := newFrameReader(src2)
	fr2.read() //nolint:errcheck
	if allocs := testing.AllocsPerRun(200, func() {
		src2.Reset(replyWire)
		fr2.r.Reset(src2)
		if f, err := fr2.read(); err != nil || len(f.payload) != 512 {
			t.Fatalf("decode: %v", err)
		}
	}); allocs > 2 {
		t.Errorf("payload decode allocs/op = %.1f, want <= 2 (frame + payload copy only)", allocs)
	}
}

// TestFlushCoalescing verifies the mechanism directly: a sender that sees
// another sender queued behind it leaves its bytes buffered, and the last
// sender of the burst flushes everything.
func TestFlushCoalescing(t *testing.T) {
	var buf bytes.Buffer
	cw := newConnWriter(&buf)

	f1 := &frame{kind: kindRequest, seq: 1, method: "A", payload: []byte("one")}
	f2 := &frame{kind: kindRequest, seq: 2, method: "B", payload: []byte("two")}

	// Simulate a second sender already queued: the first write must not
	// flush.
	cw.queued.Add(1)
	if err := cw.write(f1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("first write flushed %d bytes despite a queued sender", buf.Len())
	}
	// The queued sender arrives: it is last, so it flushes both frames.
	cw.queued.Add(-1)
	if err := cw.write(f2); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("last sender did not flush")
	}

	fr := newFrameReader(bytes.NewReader(buf.Bytes()))
	for i, want := range []*frame{f1, f2} {
		got, err := fr.read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.seq != want.seq || got.method != want.method || string(got.payload) != string(want.payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
}

// TestConcurrentSendersOneConn hammers a single pooled connection with
// concurrent callers; every reply must match its request (flush coalescing
// and buffer reuse must not corrupt or misdeliver frames).
func TestConcurrentSendersOneConn(t *testing.T) {
	n := NewMem()
	srv := NewServer("echo")
	srv.Handle("Echo", func(ctx *Ctx, payload []byte) ([]byte, error) {
		return payload, nil
	})
	addr, err := srv.Start(n, "echo:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(n, "echo", addr, WithPoolSize(1))
	defer c.Close()
	ctx := context.Background()

	const workers, calls = 16, 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("w%d-c%d", w, i)
				out, err := c.CallRaw(ctx, "Echo", []byte(msg))
				if err != nil {
					errs <- fmt.Errorf("call %s: %w", msg, err)
					return
				}
				if string(out) != msg {
					errs <- fmt.Errorf("echo %q returned %q", msg, out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
