// Package serverless models running the suite's applications on
// traditional containers (EC2 instances) versus a serverless framework
// (AWS Lambda), reproducing Figure 21's mechanics: Lambda with S3 state
// passing pays a remote-storage round trip on every inter-function edge;
// Lambda with in-memory state passing removes most of that but keeps
// placement-induced variability and cold starts; EC2 has the lowest and
// tightest latency but costs roughly an order of magnitude more, and its
// threshold autoscaler lags diurnal ramps while Lambda's capacity tracks
// demand instantaneously.
package serverless

import (
	"math/rand/v2"
	"time"

	"dsb/internal/archsim"
	"dsb/internal/graph"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
)

// Option is the execution platform.
type Option int

// Platforms.
const (
	EC2 Option = iota
	LambdaS3
	LambdaMem
)

func (o Option) String() string {
	switch o {
	case LambdaS3:
		return "lambda-s3"
	case LambdaMem:
		return "lambda-mem"
	default:
		return "ec2"
	}
}

// Model captures the per-platform latency and cost mechanics.
type Model struct {
	// S3RoundTripMs is the persistent-store write+read between dependent
	// functions (rate-limited remote storage).
	S3RoundTripMs float64
	// MemPassMs is the remote-memory state pass.
	MemPassMs float64
	// ColdStartMs and ColdStartProb model function cold starts.
	ColdStartMs   float64
	ColdStartProb float64
	// PlacementJitterMs is the per-request stddev of Lambda placement and
	// co-tenancy interference.
	PlacementJitterMs float64
	// EC2JitterMs is the (much smaller) dedicated-instance jitter.
	EC2JitterMs float64

	// EC2HourlyUSD is the m5.12xlarge on-demand price; EC2Instances is the
	// fleet the paper used per app (20–64).
	EC2HourlyUSD float64
	EC2Instances int
	// LambdaPerInvokeUSD and LambdaGBsUSD price invocations;
	// S3PerRequestUSD prices state passing; MemInstances are the four
	// extra EC2 boxes the in-memory variant keeps.
	LambdaPerInvokeUSD float64
	LambdaGBsUSD       float64
	S3PerRequestUSD    float64
	MemInstances       int
}

// DefaultModel matches the paper's setup and 2019 list prices.
var DefaultModel = Model{
	S3RoundTripMs:      24,
	MemPassMs:          1.1,
	ColdStartMs:        180,
	ColdStartProb:      0.015,
	PlacementJitterMs:  6,
	EC2JitterMs:        0.8,
	EC2HourlyUSD:       2.304,
	EC2Instances:       24,
	LambdaPerInvokeUSD: 2e-7,
	LambdaGBsUSD:       1.66667e-5,
	S3PerRequestUSD:    5e-7,
	MemInstances:       4,
}

// baseLatencyMs is the app's unloaded end-to-end latency from the
// analytic walk of its workflow (critical path through stages).
func baseLatencyMs(app *graph.App) float64 {
	var walk func(n *graph.Node) float64
	walk = func(n *graph.Node) float64 {
		p := app.Profiles[n.Service]
		own := archsim.ServiceTimeNs(p, n.Work, archsim.XeonPlatform)
		hop := 2*archsim.DefaultNetwork.ProcNs(p.MsgBytes, archsim.XeonPlatform.FreqGHz)*2 + 2*app.WireNs
		stageMax := map[int]float64{}
		for _, c := range n.Calls {
			t := walk(c.Node) * float64(c.Count)
			if t > stageMax[c.Stage] {
				stageMax[c.Stage] = t
			}
		}
		var children float64
		for _, t := range stageMax {
			children += t
		}
		return own + hop + children
	}
	return walk(app.Root) / 1e6
}

// edges counts inter-function state-passing edges per request.
func edges(app *graph.App) int {
	var walk func(n *graph.Node) int
	walk = func(n *graph.Node) int {
		total := 0
		for _, c := range n.Calls {
			total += c.Count * (1 + walk(c.Node))
		}
		return total
	}
	return walk(app.Root)
}

// Result is one platform evaluation.
type Result struct {
	Option  Option
	Latency metrics.Snapshot // milliseconds ×1e6 (stored as ns for the histogram)
	CostUSD float64
}

// Evaluate models running app on the platform for dur at qps, returning
// the request latency distribution and the total cost.
func (m Model) Evaluate(app *graph.App, opt Option, qps float64, dur time.Duration, seed uint64) Result {
	rng := rand.New(rand.NewPCG(seed, uint64(opt)+0xF00D))
	base := baseLatencyMs(app)
	nEdges := edges(app)
	nFuncs := nEdges + 1
	hist := metrics.NewHistogram()
	requests := int(qps * dur.Seconds())
	if requests < 1 {
		requests = 1
	}
	for i := 0; i < requests; i++ {
		lat := base
		switch opt {
		case EC2:
			lat += absNorm(rng, m.EC2JitterMs)
		case LambdaS3:
			// Each dependent edge serializes through S3, with rate-limit
			// spikes on a small fraction of accesses.
			for e := 0; e < nEdges; e++ {
				rt := m.S3RoundTripMs * (0.7 + 0.6*rng.Float64())
				if rng.Float64() < 0.02 {
					rt *= 6 // throttled access
				}
				lat += rt
			}
			lat += m.coldAndJitter(rng)
		case LambdaMem:
			lat += float64(nEdges) * m.MemPassMs * (0.7 + 0.6*rng.Float64())
			lat += m.coldAndJitter(rng)
		}
		hist.Record(int64(lat * 1e6)) // store ms as ns-scaled integer
	}

	hours := dur.Hours()
	var cost float64
	switch opt {
	case EC2:
		cost = m.EC2HourlyUSD * float64(m.EC2Instances) * hours
	case LambdaS3:
		invokes := float64(requests) * float64(nFuncs)
		gbs := float64(requests) * base / 1000 * 1.5 // 1.5GB functions
		cost = invokes*m.LambdaPerInvokeUSD + gbs*m.LambdaGBsUSD +
			float64(requests)*float64(nEdges)*2*m.S3PerRequestUSD
	case LambdaMem:
		invokes := float64(requests) * float64(nFuncs)
		gbs := float64(requests) * base / 1000 * 1.5
		cost = invokes*m.LambdaPerInvokeUSD + gbs*m.LambdaGBsUSD +
			m.EC2HourlyUSD*float64(m.MemInstances)*hours
	}
	return Result{Option: opt, Latency: hist.Snapshot(), CostUSD: cost}
}

func (m Model) coldAndJitter(rng *rand.Rand) float64 {
	lat := absNorm(rng, m.PlacementJitterMs)
	if rng.Float64() < m.ColdStartProb {
		lat += m.ColdStartMs * (0.7 + 0.6*rng.Float64())
	}
	return lat
}

func absNorm(rng *rand.Rand, std float64) float64 {
	v := rng.NormFloat64() * std
	if v < 0 {
		v = -v
	}
	return v
}

// DiurnalPoint is one timeline sample of the diurnal comparison.
type DiurnalPoint struct {
	T        time.Duration
	QPS      float64
	EC2P99Ms float64
	LamP99Ms float64
}

// Diurnal replays a compressed diurnal load pattern and models both
// platforms' tail latency over time: EC2 capacity follows a threshold
// autoscaler with reaction lag, so ramps overload it until instances
// arrive; Lambda allocates per-request, so its latency stays flat (plus
// its constant overhead).
func (m Model) Diurnal(app *graph.App, peakQPS float64, period, dur, step time.Duration, seed uint64) []DiurnalPoint {
	rng := rand.New(rand.NewPCG(seed, 0xD1A1))
	pattern := loadgen.Diurnal{Period: period, Min: 0.15, Max: 1.0}
	base := baseLatencyMs(app)
	lambdaOverhead := float64(edges(app)) * m.MemPassMs

	// EC2: capacity in QPS; autoscaler adds 25% capacity 20s after
	// utilization exceeds 70%, removes it when below 30%.
	capacity := peakQPS * 0.35
	var pendingAt time.Duration = -1
	var out []DiurnalPoint
	for t := time.Duration(0); t <= dur; t += step {
		qps := peakQPS * pattern.Eval(t)
		util := qps / capacity
		if util > 0.70 {
			if pendingAt < 0 {
				pendingAt = t + 20*time.Second
			}
		}
		if pendingAt >= 0 && t >= pendingAt {
			capacity *= 1.3
			pendingAt = -1
		}
		if util < 0.30 && capacity > peakQPS*0.35 {
			capacity /= 1.15
		}

		// M/M/1-flavored inflation as utilization approaches 1.
		inflate := 1.0
		if util < 1 {
			inflate = 1 / (1 - minF(util, 0.97))
		} else {
			inflate = 40 + 20*(util-1)
		}
		ec2 := base*inflate + absNorm(rng, m.EC2JitterMs)*3
		lam := base + lambdaOverhead + absNorm(rng, m.PlacementJitterMs)*2.3
		out = append(out, DiurnalPoint{T: t, QPS: qps, EC2P99Ms: ec2, LamP99Ms: lam})
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
