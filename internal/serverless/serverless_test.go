package serverless

import (
	"testing"
	"time"

	"dsb/internal/graph"
)

func TestLatencyOrdering(t *testing.T) {
	// Fig 21 top: Lambda(S3) ≫ Lambda(mem) > EC2 in latency.
	app := graph.SocialNetwork()
	m := DefaultModel
	dur := 10 * time.Minute
	ec2 := m.Evaluate(app, EC2, 10, dur, 1)
	s3 := m.Evaluate(app, LambdaS3, 10, dur, 1)
	mem := m.Evaluate(app, LambdaMem, 10, dur, 1)
	if !(s3.Latency.P50 > mem.Latency.P50 && mem.Latency.P50 > ec2.Latency.P50) {
		t.Fatalf("p50 ordering: s3=%d mem=%d ec2=%d", s3.Latency.P50, mem.Latency.P50, ec2.Latency.P50)
	}
	// S3 should be dominated by storage passes: several times EC2.
	if float64(s3.Latency.P50) < 3*float64(ec2.Latency.P50) {
		t.Fatalf("s3 overhead too small: %d vs %d", s3.Latency.P50, ec2.Latency.P50)
	}
	// Lambda variability (absolute p95−p50 spread) exceeds EC2's.
	spread := func(s Result) int64 { return s.Latency.P95 - s.Latency.P50 }
	if spread(mem) <= spread(ec2) {
		t.Fatalf("lambda spread %d <= ec2 spread %d", spread(mem), spread(ec2))
	}
}

func TestCostOrdering(t *testing.T) {
	// Fig 21: Lambda costs roughly an order of magnitude less than EC2 at
	// the paper's request rates; S3 cheapest.
	app := graph.Ecommerce()
	m := DefaultModel
	dur := 10 * time.Minute
	ec2 := m.Evaluate(app, EC2, 10, dur, 2)
	s3 := m.Evaluate(app, LambdaS3, 10, dur, 2)
	mem := m.Evaluate(app, LambdaMem, 10, dur, 2)
	if !(ec2.CostUSD > mem.CostUSD && mem.CostUSD > s3.CostUSD) {
		t.Fatalf("cost ordering: ec2=%f mem=%f s3=%f", ec2.CostUSD, mem.CostUSD, s3.CostUSD)
	}
	if ec2.CostUSD < 4*s3.CostUSD {
		t.Fatalf("ec2/s3 cost ratio too small: %f / %f", ec2.CostUSD, s3.CostUSD)
	}
}

func TestAllAppsEvaluate(t *testing.T) {
	m := DefaultModel
	for _, app := range graph.EndToEndApps() {
		for _, opt := range []Option{EC2, LambdaS3, LambdaMem} {
			r := m.Evaluate(app, opt, 5, time.Minute, 3)
			if r.Latency.Count == 0 || r.Latency.P50 <= 0 {
				t.Fatalf("%s/%s: empty result", app.Name, opt)
			}
			if r.CostUSD <= 0 {
				t.Fatalf("%s/%s: zero cost", app.Name, opt)
			}
		}
	}
}

func TestDiurnalEC2LagsRamp(t *testing.T) {
	app := graph.SocialNetwork()
	pts := DefaultModel.Diurnal(app, 400, 4*time.Minute, 4*time.Minute, time.Second, 4)
	if len(pts) < 100 {
		t.Fatalf("points = %d", len(pts))
	}
	// During the ramp (load rising through mid-period), EC2 must spike
	// well above Lambda at some point.
	spiked := false
	for _, p := range pts {
		if p.EC2P99Ms > 3*p.LamP99Ms && p.QPS > 150 {
			spiked = true
			break
		}
	}
	if !spiked {
		t.Fatal("EC2 never lagged the ramp")
	}
	// At the trough, EC2 beats Lambda (paper: EC2 lower tail at low load).
	troughEC2, troughLam := pts[0].EC2P99Ms, pts[0].LamP99Ms
	if troughEC2 >= troughLam {
		t.Fatalf("trough: ec2=%f lambda=%f", troughEC2, troughLam)
	}
	// QPS follows the pattern: peak mid-period.
	if pts[len(pts)/2].QPS <= pts[0].QPS {
		t.Fatal("diurnal pattern missing")
	}
}

func TestDeterministicEvaluation(t *testing.T) {
	app := graph.Banking()
	a := DefaultModel.Evaluate(app, LambdaS3, 8, time.Minute, 7)
	b := DefaultModel.Evaluate(app, LambdaS3, 8, time.Minute, 7)
	if a.Latency != b.Latency || a.CostUSD != b.CostUSD {
		t.Fatal("evaluation not deterministic")
	}
}
