package banking

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// CustomerReq identifies a customer.
type CustomerReq struct{ Username string }

// CustomerResp returns the profile.
type CustomerResp struct {
	Customer Customer
	Found    bool
}

// PutCustomerReq stores a profile.
type PutCustomerReq struct{ Customer Customer }

const customerCacheTTL = 5 * time.Minute

// registerCustomerInfo installs the customerInfo service. Profile lookups —
// the hottest read in the app, on the path of every lending, card, and
// summary request — run through the shared cache-aside ReadPath: cached
// under "cust:<username>" (invalidated by Put), with concurrent misses on
// one customer coalesced into a single backing Get.
func registerCustomerInfo(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, noCoalesce bool) {
	svcutil.Handle(srv, "Put", func(ctx *rpc.Ctx, req *PutCustomerReq) (*struct{}, error) {
		c := req.Customer
		if c.Username == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "customerInfo: username required")
		}
		body, err := codec.Marshal(c)
		if err != nil {
			return nil, err
		}
		if err := db.Put(ctx, "customers", docstore.Doc{ID: c.Username, Fields: map[string]string{"segment": c.Segment}, Body: body}); err != nil {
			return nil, err
		}
		mc.Delete(ctx, "cust:"+c.Username) //nolint:errcheck
		return nil, nil
	})
	custPath := &svcutil.ReadPath[Customer]{
		MC:         mc,
		TTL:        customerCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) (Customer, error) {
			var c Customer
			err := codec.Unmarshal(b, &c)
			return c, err
		},
		Fetch: func(ctx context.Context, key string) (Customer, []byte, bool, error) {
			username := strings.TrimPrefix(key, "cust:")
			doc, found, err := db.Get(ctx, "customers", username)
			if err != nil || !found {
				return Customer{}, nil, false, err
			}
			var c Customer
			if err := codec.Unmarshal(doc.Body, &c); err != nil {
				return Customer{}, nil, false, fmt.Errorf("customerInfo: corrupt customer %s: %w", username, err)
			}
			return c, doc.Body, true, nil
		},
	}
	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *CustomerReq) (*CustomerResp, error) {
		c, found, err := custPath.Get(ctx, "cust:"+req.Username)
		if err != nil {
			return nil, err
		}
		return &CustomerResp{Customer: c, Found: found}, nil
	})
}

// OpenAccountReq opens a deposit or investment account.
type OpenAccountReq struct {
	Owner        string
	Kind         string
	InitialCents int64
}

// OpenAccountResp returns the new account.
type OpenAccountResp struct{ Account Account }

// AccountReq identifies an account.
type AccountReq struct{ ID string }

// AccountResp returns the account.
type AccountResp struct {
	Account Account
	Found   bool
}

// AccountsByOwnerReq lists a customer's accounts.
type AccountsByOwnerReq struct{ Owner string }

// AccountsResp returns accounts.
type AccountsResp struct{ Accounts []Account }

// TransferReq moves money between two accounts atomically.
type TransferReq struct {
	From, To    string
	AmountCents int64
	Description string
}

// TransferResp returns the posted transaction ID.
type TransferResp struct{ TxnID string }

// LedgerReq lists an account's ledger entries.
type LedgerReq struct {
	AccountID string
	Limit     int64
}

// LedgerResp returns entries, newest first.
type LedgerResp struct{ Entries []LedgerEntry }

// registerTransactionPosting installs the account/ledger service: it owns
// deposit and investment accounts and is the single writer of balances, so
// transfers serialize through its posting lock — double-entry legs either
// both post or neither does.
func registerTransactionPosting(srv *rpc.Server, db svcutil.DB, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	var seq atomic.Uint64
	var postMu sync.Mutex // serializes balance mutations (single writer)

	loadAccount := func(ctx *rpc.Ctx, id string) (Account, bool, error) {
		doc, found, err := db.Get(ctx, "accounts", id)
		if err != nil || !found {
			return Account{}, false, err
		}
		var a Account
		if err := codec.Unmarshal(doc.Body, &a); err != nil {
			return Account{}, false, fmt.Errorf("transactionPosting: corrupt account %s: %w", id, err)
		}
		return a, true, nil
	}
	storeAccount := func(ctx *rpc.Ctx, a Account) error {
		body, err := codec.Marshal(a)
		if err != nil {
			return err
		}
		return db.Put(ctx, "accounts", docstore.Doc{ID: a.ID, Fields: map[string]string{"owner": a.Owner, "kind": a.Kind}, Body: body})
	}

	svcutil.Handle(srv, "Open", func(ctx *rpc.Ctx, req *OpenAccountReq) (*OpenAccountResp, error) {
		if req.Owner == "" || (req.Kind != KindDeposit && req.Kind != KindInvestment) {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "transactionPosting: bad open request")
		}
		if req.InitialCents < 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "transactionPosting: negative opening balance")
		}
		postMu.Lock()
		defer postMu.Unlock()
		a := Account{
			ID:           fmt.Sprintf("acct-%s-%06d", req.Kind, seq.Add(1)),
			Owner:        req.Owner,
			Kind:         req.Kind,
			BalanceCents: req.InitialCents,
		}
		if err := storeAccount(ctx, a); err != nil {
			return nil, err
		}
		return &OpenAccountResp{Account: a}, nil
	})

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *AccountReq) (*AccountResp, error) {
		a, found, err := loadAccount(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return &AccountResp{Account: a, Found: found}, nil
	})

	svcutil.Handle(srv, "ByOwner", func(ctx *rpc.Ctx, req *AccountsByOwnerReq) (*AccountsResp, error) {
		docs, err := db.Find(ctx, "accounts", "owner", req.Owner, 0)
		if err != nil {
			return nil, err
		}
		out := make([]Account, 0, len(docs))
		for _, d := range docs {
			var a Account
			if codec.Unmarshal(d.Body, &a) == nil {
				out = append(out, a)
			}
		}
		return &AccountsResp{Accounts: out}, nil
	})

	svcutil.Handle(srv, "Transfer", func(ctx *rpc.Ctx, req *TransferReq) (*TransferResp, error) {
		if req.AmountCents <= 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "transactionPosting: non-positive amount")
		}
		if req.From == req.To {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "transactionPosting: self transfer")
		}
		postMu.Lock()
		defer postMu.Unlock()
		from, foundFrom, err := loadAccount(ctx, req.From)
		if err != nil {
			return nil, err
		}
		to, foundTo, err := loadAccount(ctx, req.To)
		if err != nil {
			return nil, err
		}
		if !foundFrom || !foundTo {
			return nil, rpc.NotFoundf("transactionPosting: missing account")
		}
		if from.BalanceCents < req.AmountCents {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "transactionPosting: insufficient funds in %s", req.From)
		}
		txn := fmt.Sprintf("txn-%d-%06d", now().UnixMilli(), seq.Add(1))
		from.BalanceCents -= req.AmountCents
		to.BalanceCents += req.AmountCents
		if err := storeAccount(ctx, from); err != nil {
			return nil, err
		}
		if err := storeAccount(ctx, to); err != nil {
			// Roll the debit back so the invariant holds even on storage
			// failure of the credit leg.
			from.BalanceCents += req.AmountCents
			storeAccount(ctx, from) //nolint:errcheck
			return nil, err
		}
		at := now().UnixNano()
		for i, leg := range []LedgerEntry{
			{TxnID: txn, AccountID: req.From, DeltaCents: -req.AmountCents, PostedAt: at, Description: req.Description},
			{TxnID: txn, AccountID: req.To, DeltaCents: req.AmountCents, PostedAt: at, Description: req.Description},
		} {
			body, err := codec.Marshal(leg)
			if err != nil {
				return nil, err
			}
			doc := docstore.Doc{
				ID:     fmt.Sprintf("%s-%d", txn, i),
				Fields: map[string]string{"account": leg.AccountID},
				Nums:   map[string]int64{"ts": at},
				Body:   body,
			}
			if err := db.Put(ctx, "ledger", doc); err != nil {
				return nil, err
			}
		}
		return &TransferResp{TxnID: txn}, nil
	})

	svcutil.Handle(srv, "Ledger", func(ctx *rpc.Ctx, req *LedgerReq) (*LedgerResp, error) {
		docs, err := db.Find(ctx, "ledger", "account", req.AccountID, 0)
		if err != nil {
			return nil, err
		}
		out := make([]LedgerEntry, 0, len(docs))
		for _, d := range docs {
			var e LedgerEntry
			if codec.Unmarshal(d.Body, &e) == nil {
				out = append(out, e)
			}
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if req.Limit > 0 && int64(len(out)) > req.Limit {
			out = out[:req.Limit]
		}
		return &LedgerResp{Entries: out}, nil
	})
}
