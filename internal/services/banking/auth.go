package banking

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"time"

	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// EnrollReq creates login credentials for a customer.
type EnrollReq struct{ Username, Password string }

// LoginReq authenticates.
type LoginReq struct{ Username, Password string }

// LoginResp returns a session token.
type LoginResp struct{ Token string }

// VerifyTokenReq validates a token.
type VerifyTokenReq struct{ Token string }

// VerifyTokenResp identifies the session user.
type VerifyTokenResp struct {
	Username string
	Valid    bool
}

// registerAuthentication installs the authentication service.
func registerAuthentication(srv *rpc.Server, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Enroll", func(ctx *rpc.Ctx, req *EnrollReq) (*struct{}, error) {
		if req.Username == "" || req.Password == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "authentication: username and password required")
		}
		if _, found, err := db.Get(ctx, "credentials", req.Username); err != nil {
			return nil, err
		} else if found {
			return nil, rpc.Errorf(rpc.CodeConflict, "authentication: %q enrolled", req.Username)
		}
		salt := bankRandomHex(8)
		return nil, db.Put(ctx, "credentials", docstore.Doc{
			ID:     req.Username,
			Fields: map[string]string{"salt": salt, "hash": bankHash(req.Password, salt)},
		})
	})
	svcutil.Handle(srv, "Login", func(ctx *rpc.Ctx, req *LoginReq) (*LoginResp, error) {
		doc, found, err := db.Get(ctx, "credentials", req.Username)
		if err != nil {
			return nil, err
		}
		if !found || bankHash(req.Password, doc.Fields["salt"]) != doc.Fields["hash"] {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "authentication: bad credentials")
		}
		token := bankRandomHex(16)
		if err := mc.Set(ctx, "tok:"+token, []byte(req.Username), 30*time.Minute); err != nil {
			return nil, err
		}
		return &LoginResp{Token: token}, nil
	})
	svcutil.Handle(srv, "Verify", func(ctx *rpc.Ctx, req *VerifyTokenReq) (*VerifyTokenResp, error) {
		v, found, err := mc.Get(ctx, "tok:"+req.Token)
		if err != nil {
			return nil, err
		}
		if !found {
			return &VerifyTokenResp{}, nil
		}
		return &VerifyTokenResp{Username: string(v), Valid: true}, nil
	})
}

func bankHash(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + "|" + password))
	return hex.EncodeToString(sum[:])
}

func bankRandomHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) //nolint:errcheck
	return hex.EncodeToString(b)
}

// ACLCheckReq asks whether user may act on an account.
type ACLCheckReq struct {
	Username  string
	AccountID string
	Action    string // "debit" | "read"
}

// ACLCheckResp reports the decision.
type ACLCheckResp struct {
	Allowed bool
	Reason  string
}

// registerACL installs the ACL service: debits require ownership of the
// source account; reads require ownership too (no cross-customer
// statements). Mismanaging this dependency is exactly the kind of
// single-edge failure Section 6 of the paper studies.
func registerACL(srv *rpc.Server, posting svcutil.Caller) {
	svcutil.Handle(srv, "Check", func(ctx *rpc.Ctx, req *ACLCheckReq) (*ACLCheckResp, error) {
		var acct AccountResp
		if err := posting.Call(ctx, "Get", AccountReq{ID: req.AccountID}, &acct); err != nil {
			return nil, err
		}
		if !acct.Found {
			return &ACLCheckResp{Allowed: false, Reason: "no such account"}, nil
		}
		if acct.Account.Owner != req.Username {
			return &ACLCheckResp{Allowed: false, Reason: "not the account owner"}, nil
		}
		return &ACLCheckResp{Allowed: true}, nil
	})
}

// PreferencesReq reads or writes user preferences.
type PreferencesReq struct {
	Username string
	Set      map[string]string // nil = read-only
}

// PreferencesResp returns the current preferences.
type PreferencesResp struct{ Prefs map[string]string }

// registerUserPreferences installs the userPreferences service.
func registerUserPreferences(srv *rpc.Server, db svcutil.DB) {
	svcutil.Handle(srv, "Access", func(ctx *rpc.Ctx, req *PreferencesReq) (*PreferencesResp, error) {
		if req.Username == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "userPreferences: username required")
		}
		doc, found, err := db.Get(ctx, "preferences", req.Username)
		if err != nil {
			return nil, err
		}
		prefs := map[string]string{}
		if found {
			prefs = doc.Fields
		}
		if req.Set != nil {
			for k, v := range req.Set {
				prefs[k] = v
			}
			if err := db.Put(ctx, "preferences", docstore.Doc{ID: req.Username, Fields: prefs}); err != nil {
				return nil, err
			}
		}
		return &PreferencesResp{Prefs: prefs}, nil
	})
}
