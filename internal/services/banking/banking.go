package banking

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// SettlementAccount receives credit-card payments; it is opened at boot.
const settlementOwner = "__bank__"

// Config sizes the deployment.
type Config struct {
	Clock func() time.Time
}

// Banking is a running Banking System deployment.
type Banking struct {
	App      *core.App
	Frontend *rest.Client

	Auth     svcutil.Caller
	Customer svcutil.Caller
	Posting  svcutil.Caller
	Payments svcutil.Caller
	Cards    svcutil.Caller

	// SettlementAccountID is the bank-owned account card payments land in.
	SettlementAccountID string
}

// New boots the Banking System.
func New(app *core.App, cfg Config) (*Banking, error) {
	for _, name := range []string{"db-customers", "db-accounts", "db-credentials", "db-activity", "db-cards", "db-portfolios", "db-preferences"} {
		store := docstore.NewStore()
		if _, err := app.StartRPC("bank."+name, func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"mc-customers", "mc-sessions"} {
		cache := kv.New(0)
		if _, err := app.StartRPC("bank."+name, func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return nil, err
		}
	}
	infoDB, err := newBankInfoDB()
	if err != nil {
		return nil, err
	}

	cl := func(caller, target string) (svcutil.Caller, error) {
		return app.RPC("bank."+caller, "bank."+target)
	}
	must := func(c svcutil.Caller, err error) svcutil.Caller {
		if err != nil {
			panic(err)
		}
		return c
	}

	b := &Banking{App: app}

	type stage struct {
		name     string
		register func(*rpc.Server)
	}
	stages := []stage{
		{"customerInfo", func(s *rpc.Server) {
			registerCustomerInfo(s, svcutil.DB{C: must(cl("customerInfo", "db-customers"))}, svcutil.KV{C: must(cl("customerInfo", "mc-customers"))})
		}},
		{"authentication", func(s *rpc.Server) {
			registerAuthentication(s, svcutil.DB{C: must(cl("authentication", "db-credentials"))}, svcutil.KV{C: must(cl("authentication", "mc-sessions"))})
		}},
		{"transactionPosting", func(s *rpc.Server) {
			registerTransactionPosting(s, svcutil.DB{C: must(cl("transactionPosting", "db-accounts"))}, cfg.Clock)
		}},
		{"acl", func(s *rpc.Server) {
			registerACL(s, must(cl("acl", "transactionPosting")))
		}},
		{"customerActivity", func(s *rpc.Server) {
			registerCustomerActivity(s, svcutil.DB{C: must(cl("customerActivity", "db-activity"))}, cfg.Clock)
		}},
		{"payments", func(s *rpc.Server) {
			registerPayments(s, paymentsDeps{
				auth:     must(cl("payments", "authentication")),
				acl:      must(cl("payments", "acl")),
				posting:  must(cl("payments", "transactionPosting")),
				activity: must(cl("payments", "customerActivity")),
			})
		}},
		{"personalLending", func(s *rpc.Server) {
			registerPersonalLending(s, must(cl("personalLending", "authentication")), must(cl("personalLending", "customerInfo")))
		}},
		{"businessLending", func(s *rpc.Server) {
			registerBusinessLending(s, must(cl("businessLending", "authentication")))
		}},
		{"mortgages", func(s *rpc.Server) {
			registerMortgages(s, must(cl("mortgages", "authentication")), must(cl("mortgages", "customerInfo")))
		}},
		{"wealthMgmt", func(s *rpc.Server) {
			registerWealthMgmt(s, must(cl("wealthMgmt", "authentication")), svcutil.DB{C: must(cl("wealthMgmt", "db-portfolios"))})
		}},
		{"offerBanners", func(s *rpc.Server) { registerOfferBanners(s, nil) }},
		{"bankInfo", func(s *rpc.Server) { registerBankInfo(s, infoDB) }},
		{"userPreferences", func(s *rpc.Server) {
			registerUserPreferences(s, svcutil.DB{C: must(cl("userPreferences", "db-preferences"))})
		}},
	}
	for _, st := range stages {
		if _, err := app.StartRPC("bank."+st.name, st.register); err != nil {
			return nil, fmt.Errorf("banking: start %s: %w", st.name, err)
		}
	}

	// Open the settlement account before the card service needs it.
	posting, err := app.RPC("boot", "bank.transactionPosting")
	if err != nil {
		return nil, err
	}
	var settle OpenAccountResp
	if err := posting.Call(context.Background(), "Open", OpenAccountReq{Owner: settlementOwner, Kind: KindDeposit}, &settle); err != nil {
		return nil, err
	}
	b.SettlementAccountID = settle.Account.ID

	if _, err := app.StartRPC("bank.creditCard", func(s *rpc.Server) {
		registerCreditCard(s,
			must(cl("creditCard", "authentication")),
			must(cl("creditCard", "customerInfo")),
			must(cl("creditCard", "transactionPosting")),
			must(cl("creditCard", "acl")),
			svcutil.DB{C: must(cl("creditCard", "db-cards"))},
			b.SettlementAccountID)
	}); err != nil {
		return nil, err
	}

	if _, err := app.StartREST("bank.frontend", func(s *rest.Server) {
		registerFrontend(s, bankFrontendDeps{
			auth:      must(cl("frontend", "authentication")),
			customer:  must(cl("frontend", "customerInfo")),
			posting:   must(cl("frontend", "transactionPosting")),
			payments:  must(cl("frontend", "payments")),
			personal:  must(cl("frontend", "personalLending")),
			business:  must(cl("frontend", "businessLending")),
			mortgages: must(cl("frontend", "mortgages")),
			cards:     must(cl("frontend", "creditCard")),
			wealth:    must(cl("frontend", "wealthMgmt")),
			offers:    must(cl("frontend", "offerBanners")),
			info:      must(cl("frontend", "bankInfo")),
			activity:  must(cl("frontend", "customerActivity")),
		})
	}); err != nil {
		return nil, err
	}

	if b.Frontend, err = app.REST("client", "bank.frontend"); err != nil {
		return nil, err
	}
	if b.Auth, err = app.RPC("client", "bank.authentication"); err != nil {
		return nil, err
	}
	if b.Customer, err = app.RPC("client", "bank.customerInfo"); err != nil {
		return nil, err
	}
	if b.Posting, err = app.RPC("client", "bank.transactionPosting"); err != nil {
		return nil, err
	}
	if b.Payments, err = app.RPC("client", "bank.payments"); err != nil {
		return nil, err
	}
	if b.Cards, err = app.RPC("client", "bank.creditCard"); err != nil {
		return nil, err
	}
	return b, nil
}

// Onboard enrolls a customer with credentials, profile, and a deposit
// account, returning (token, accountID).
func (b *Banking) Onboard(username string, incomeCents, openingCents int64) (string, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Auth.Call(ctx, "Enroll", EnrollReq{Username: username, Password: "pw-" + username}, nil); err != nil {
		return "", "", err
	}
	if err := b.Customer.Call(ctx, "Put", PutCustomerReq{Customer: Customer{
		Username: username, FullName: username, AnnualIncomeCents: incomeCents, Segment: "retail",
	}}, nil); err != nil {
		return "", "", err
	}
	var login LoginResp
	if err := b.Auth.Call(ctx, "Login", LoginReq{Username: username, Password: "pw-" + username}, &login); err != nil {
		return "", "", err
	}
	var acct OpenAccountResp
	if err := b.Posting.Call(ctx, "Open", OpenAccountReq{Owner: username, Kind: KindDeposit, InitialCents: openingCents}, &acct); err != nil {
		return "", "", err
	}
	return login.Token, acct.Account.ID, nil
}

func rpcUnauthorized() error { return rpc.Errorf(rpc.CodeUnauthorized, "invalid token") }
