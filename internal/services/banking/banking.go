package banking

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// SettlementAccount receives credit-card payments; it is opened at boot.
const settlementOwner = "__bank__"

// Config sizes the deployment.
type Config struct {
	// Shards partitions every db/mc storage tier into this many
	// consistent-hash shards (default 1 = single-instance layout); with
	// Shards > 1 or ShardReplicas > 1 the tiers boot through
	// svcutil.StartShardReplicas and services reach them via shard routers.
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	ShardReplicas int
	// CacheBytes bounds each cache tier (0 = unbounded).
	CacheBytes int64
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire.
	Middleware []transport.Middleware
	// Replicas scales replicable logic tiers out at boot, keyed by tier name.
	Replicas map[string]int
	// DisableDegradation makes the account summary fail hard when the
	// wealthMgmt tier is unreachable instead of omitting the portfolio.
	DisableDegradation bool
	// DisableCoalescing turns off miss coalescing on the customer-profile
	// read path.
	DisableCoalescing bool
	// Spawner, when set, receives replicable tier boots so the control plane
	// can autoscale them.
	Spawner svcutil.Definer
}

// replicable names the logic tiers safe to run multi-instance: their state
// lives in the db/mc tiers or is static. transactionPosting stays
// single-instance (it is the single writer of balances and derives account
// and txn IDs from a per-process sequence), as do customerActivity and
// creditCard (per-process ID sequences).
var replicable = map[string]bool{
	"customerInfo": true, "authentication": true, "acl": true,
	"payments": true, "personalLending": true, "businessLending": true,
	"mortgages": true, "wealthMgmt": true, "offerBanners": true,
	"bankInfo": true, "userPreferences": true,
}

// Banking is a running Banking System deployment.
type Banking struct {
	App      *core.App
	Frontend *rest.Client

	Auth     svcutil.Caller
	Customer svcutil.Caller
	Posting  svcutil.Caller
	Payments svcutil.Caller
	Cards    svcutil.Caller

	// SettlementAccountID is the bank-owned account card payments land in.
	SettlementAccountID string
}

// New boots the Banking System.
func New(app *core.App, cfg Config) (*Banking, error) {
	stack := &svcutil.Stack{
		App:           app,
		Prefix:        "bank.",
		Shards:        cfg.Shards,
		ShardReplicas: cfg.ShardReplicas,
		CacheBytes:    cfg.CacheBytes,
		Middleware:    cfg.Middleware,
		Replicable:    replicable,
		Replicas:      cfg.Replicas,
		Spawner:       cfg.Spawner,
	}
	if err := stack.StartStores("db-customers", "db-accounts", "db-credentials", "db-activity", "db-cards", "db-portfolios", "db-preferences"); err != nil {
		return nil, err
	}
	if err := stack.StartCaches("mc-customers", "mc-sessions"); err != nil {
		return nil, err
	}
	infoDB, err := newBankInfoDB()
	if err != nil {
		return nil, err
	}

	degrade := !cfg.DisableDegradation
	cl, db, mc, start := stack.Caller, stack.DB, stack.KV, stack.Start

	start("customerInfo", func(s *rpc.Server) {
		registerCustomerInfo(s, db("customerInfo", "db-customers"), mc("customerInfo", "mc-customers"), cfg.DisableCoalescing)
	})
	start("authentication", func(s *rpc.Server) {
		registerAuthentication(s, db("authentication", "db-credentials"), mc("authentication", "mc-sessions"))
	})
	start("transactionPosting", func(s *rpc.Server) {
		registerTransactionPosting(s, db("transactionPosting", "db-accounts"), cfg.Clock)
	})
	start("acl", func(s *rpc.Server) {
		registerACL(s, cl("acl", "transactionPosting"))
	})
	start("customerActivity", func(s *rpc.Server) {
		registerCustomerActivity(s, db("customerActivity", "db-activity"), cfg.Clock)
	})
	start("payments", func(s *rpc.Server) {
		registerPayments(s, paymentsDeps{
			auth:     cl("payments", "authentication"),
			acl:      cl("payments", "acl"),
			posting:  cl("payments", "transactionPosting"),
			activity: cl("payments", "customerActivity"),
		})
	})
	start("personalLending", func(s *rpc.Server) {
		registerPersonalLending(s, cl("personalLending", "authentication"), cl("personalLending", "customerInfo"))
	})
	start("businessLending", func(s *rpc.Server) {
		registerBusinessLending(s, cl("businessLending", "authentication"))
	})
	start("mortgages", func(s *rpc.Server) {
		registerMortgages(s, cl("mortgages", "authentication"), cl("mortgages", "customerInfo"))
	})
	start("wealthMgmt", func(s *rpc.Server) {
		registerWealthMgmt(s, cl("wealthMgmt", "authentication"), db("wealthMgmt", "db-portfolios"))
	})
	start("offerBanners", func(s *rpc.Server) { registerOfferBanners(s, nil) })
	start("bankInfo", func(s *rpc.Server) { registerBankInfo(s, infoDB) })
	start("userPreferences", func(s *rpc.Server) {
		registerUserPreferences(s, db("userPreferences", "db-preferences"))
	})
	if err := stack.Boot(); err != nil {
		return nil, fmt.Errorf("banking: boot: %w", err)
	}

	b := &Banking{App: app}

	// Open the settlement account before the card service needs it.
	posting, err := app.RPC("boot", "bank.transactionPosting")
	if err != nil {
		return nil, err
	}
	var settle OpenAccountResp
	if err := posting.Call(context.Background(), "Open", OpenAccountReq{Owner: settlementOwner, Kind: KindDeposit}, &settle); err != nil {
		return nil, err
	}
	b.SettlementAccountID = settle.Account.ID

	start("creditCard", func(s *rpc.Server) {
		registerCreditCard(s,
			cl("creditCard", "authentication"),
			cl("creditCard", "customerInfo"),
			cl("creditCard", "transactionPosting"),
			cl("creditCard", "acl"),
			db("creditCard", "db-cards"),
			b.SettlementAccountID)
	})
	if err := stack.Boot(); err != nil {
		return nil, fmt.Errorf("banking: boot creditCard: %w", err)
	}

	if _, err := app.StartREST("bank.frontend", func(s *rest.Server) {
		registerFrontend(s, bankFrontendDeps{
			auth:      cl("frontend", "authentication"),
			customer:  cl("frontend", "customerInfo"),
			posting:   cl("frontend", "transactionPosting"),
			payments:  cl("frontend", "payments"),
			personal:  cl("frontend", "personalLending"),
			business:  cl("frontend", "businessLending"),
			mortgages: cl("frontend", "mortgages"),
			cards:     cl("frontend", "creditCard"),
			wealth:    cl("frontend", "wealthMgmt"),
			offers:    cl("frontend", "offerBanners"),
			info:      cl("frontend", "bankInfo"),
			activity:  cl("frontend", "customerActivity"),
		}, degrade)
	}); err != nil {
		return nil, err
	}

	if b.Frontend, err = app.REST("client", "bank.frontend"); err != nil {
		return nil, err
	}
	if b.Auth, err = app.RPC("client", "bank.authentication"); err != nil {
		return nil, err
	}
	if b.Customer, err = app.RPC("client", "bank.customerInfo"); err != nil {
		return nil, err
	}
	if b.Posting, err = app.RPC("client", "bank.transactionPosting"); err != nil {
		return nil, err
	}
	if b.Payments, err = app.RPC("client", "bank.payments"); err != nil {
		return nil, err
	}
	if b.Cards, err = app.RPC("client", "bank.creditCard"); err != nil {
		return nil, err
	}
	return b, nil
}

// Onboard enrolls a customer with credentials, profile, and a deposit
// account, returning (token, accountID).
func (b *Banking) Onboard(username string, incomeCents, openingCents int64) (string, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Auth.Call(ctx, "Enroll", EnrollReq{Username: username, Password: "pw-" + username}, nil); err != nil {
		return "", "", err
	}
	if err := b.Customer.Call(ctx, "Put", PutCustomerReq{Customer: Customer{
		Username: username, FullName: username, AnnualIncomeCents: incomeCents, Segment: "retail",
	}}, nil); err != nil {
		return "", "", err
	}
	var login LoginResp
	if err := b.Auth.Call(ctx, "Login", LoginReq{Username: username, Password: "pw-" + username}, &login); err != nil {
		return "", "", err
	}
	var acct OpenAccountResp
	if err := b.Posting.Call(ctx, "Open", OpenAccountReq{Owner: username, Kind: KindDeposit, InitialCents: openingCents}, &acct); err != nil {
		return "", "", err
	}
	return login.Token, acct.Account.ID, nil
}

func rpcUnauthorized() error { return rpc.Errorf(rpc.CodeUnauthorized, "invalid token") }
