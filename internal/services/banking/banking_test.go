package banking

import (
	"context"
	"sync"
	"testing"

	"dsb/internal/core"
	"dsb/internal/rpc"
)

func bootBank(t *testing.T) *Banking {
	t.Helper()
	app := core.NewApp("bank-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	b, err := New(app, Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return b
}

func totalBalance(t *testing.T, b *Banking, accountIDs []string) int64 {
	t.Helper()
	ctx := context.Background()
	var total int64
	for _, id := range accountIDs {
		var resp AccountResp
		if err := b.Posting.Call(ctx, "Get", AccountReq{ID: id}, &resp); err != nil || !resp.Found {
			t.Fatalf("account %s: %v", id, err)
		}
		total += resp.Account.BalanceCents
	}
	return total
}

func TestPaymentMovesMoneyAndLogs(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	tokenA, acctA, err := b.Onboard("alice", 60000_00, 1000_00)
	if err != nil {
		t.Fatal(err)
	}
	_, acctB, err := b.Onboard("bob", 50000_00, 500_00)
	if err != nil {
		t.Fatal(err)
	}

	var pay PaymentResp
	if err := b.Payments.Call(ctx, "Pay", PaymentReq{
		Token: tokenA, From: acctA, To: acctB, AmountCents: 250_00, Description: "rent",
	}, &pay); err != nil {
		t.Fatal(err)
	}
	if pay.TxnID == "" {
		t.Fatal("no txn id")
	}
	var a, bb AccountResp
	b.Posting.Call(ctx, "Get", AccountReq{ID: acctA}, &a)  //nolint:errcheck
	b.Posting.Call(ctx, "Get", AccountReq{ID: acctB}, &bb) //nolint:errcheck
	if a.Account.BalanceCents != 750_00 || bb.Account.BalanceCents != 750_00 {
		t.Fatalf("balances = %d, %d", a.Account.BalanceCents, bb.Account.BalanceCents)
	}

	// Ledger has both legs.
	var ledger LedgerResp
	if err := b.Posting.Call(ctx, "Ledger", LedgerReq{AccountID: acctA}, &ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger.Entries) != 1 || ledger.Entries[0].DeltaCents != -250_00 {
		t.Fatalf("ledger = %+v", ledger.Entries)
	}
	// Activity logged.
	activity, err := b.App.RPC("test", "bank.customerActivity")
	if err != nil {
		t.Fatal(err)
	}
	var acts ActivityListResp
	if err := activity.Call(ctx, "List", ActivityListReq{Username: "alice"}, &acts); err != nil {
		t.Fatal(err)
	}
	if len(acts.Activities) != 1 || acts.Activities[0].Kind != "payment" {
		t.Fatalf("activity = %+v", acts.Activities)
	}
}

func TestPaymentACLRejectsNonOwner(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	_, acctA, _ := b.Onboard("alice", 60000_00, 1000_00)
	tokenB, acctB, _ := b.Onboard("bob", 50000_00, 500_00)

	// Bob tries to drain Alice's account.
	err := b.Payments.Call(ctx, "Pay", PaymentReq{Token: tokenB, From: acctA, To: acctB, AmountCents: 100_00}, nil)
	if !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("acl bypass: %v", err)
	}
	if got := totalBalance(t, b, []string{acctA}); got != 1000_00 {
		t.Fatalf("alice balance = %d", got)
	}
}

func TestInsufficientFundsAndSelfTransfer(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, acct, _ := b.Onboard("alice", 60000_00, 100_00)
	_, acct2, _ := b.Onboard("bob", 50000_00, 0)
	if err := b.Payments.Call(ctx, "Pay", PaymentReq{Token: token, From: acct, To: acct2, AmountCents: 200_00}, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("overdraft: %v", err)
	}
	if err := b.Payments.Call(ctx, "Pay", PaymentReq{Token: token, From: acct, To: acct, AmountCents: 50}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("self transfer: %v", err)
	}
}

// TestMoneyConservationUnderConcurrency is the system invariant: arbitrary
// concurrent transfers never create or destroy money.
func TestMoneyConservationUnderConcurrency(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	users := []string{"u1", "u2", "u3", "u4"}
	tokens := make([]string, len(users))
	accounts := make([]string, len(users))
	for i, u := range users {
		var err error
		tokens[i], accounts[i], err = b.Onboard(u, 40000_00, 1000_00)
		if err != nil {
			t.Fatal(err)
		}
	}
	before := totalBalance(t, b, accounts)

	var wg sync.WaitGroup
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				to := accounts[(i+1+n)%len(accounts)]
				if to == accounts[i] {
					continue
				}
				// Some of these fail for funds; that's fine — conservation
				// must hold regardless.
				b.Payments.Call(ctx, "Pay", PaymentReq{ //nolint:errcheck
					Token: tokens[i], From: accounts[i], To: to, AmountCents: int64(1 + n%37)},
					nil)
			}
		}(i)
	}
	wg.Wait()
	if after := totalBalance(t, b, accounts); after != before {
		t.Fatalf("money not conserved: before=%d after=%d", before, after)
	}
}

func TestPersonalLendingDecision(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, _, _ := b.Onboard("earner", 60000_00, 0) // 5000/mo income
	lend, err := b.App.RPC("test", "bank.personalLending")
	if err != nil {
		t.Fatal(err)
	}
	// Small loan: approved.
	var resp LoanApplicationResp
	if err := lend.Call(ctx, "Apply", LoanApplicationReq{Token: token, AmountCents: 10000_00, TermMonths: 36}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Approved || resp.Decision.MonthlyCents <= 0 {
		t.Fatalf("small loan = %+v", resp.Decision)
	}
	// Monthly payment must amortize to roughly principal*(1+rate/2*term).
	if resp.Decision.MonthlyCents < 10000_00/36 {
		t.Fatalf("payment below interest-free floor: %d", resp.Decision.MonthlyCents)
	}
	// Huge loan with big existing debt: rejected on DTI.
	if err := lend.Call(ctx, "Apply", LoanApplicationReq{Token: token, AmountCents: 100000_00, TermMonths: 36, MonthlyDebtCents: 1500_00}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Decision.Approved {
		t.Fatalf("huge loan approved: %+v", resp.Decision)
	}
}

func TestBusinessLendingRules(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, _, _ := b.Onboard("founder", 0, 0)
	lend, err := b.App.RPC("test", "bank.businessLending")
	if err != nil {
		t.Fatal(err)
	}
	var resp LoanApplicationResp
	// Too young a business.
	if err := lend.Call(ctx, "Apply", LoanApplicationReq{Token: token, AmountCents: 50000_00, TermMonths: 60, AnnualRevenueCents: 1000000_00, YearsInBusiness: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Decision.Approved {
		t.Fatal("young business approved")
	}
	// Established with strong revenue: approved.
	if err := lend.Call(ctx, "Apply", LoanApplicationReq{Token: token, AmountCents: 50000_00, TermMonths: 60, AnnualRevenueCents: 1000000_00, YearsInBusiness: 5}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Approved {
		t.Fatalf("strong business rejected: %+v", resp.Decision)
	}
}

func TestMortgageAmortization(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, _, _ := b.Onboard("buyer", 180000_00, 0) // 15000/mo
	mort, err := b.App.RPC("test", "bank.mortgages")
	if err != nil {
		t.Fatal(err)
	}
	var resp MortgageQuoteResp
	if err := mort.Call(ctx, "Quote", MortgageQuoteReq{
		Token: token, PriceCents: 400000_00, DownCents: 100000_00, TermMonths: 360,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	d := resp.Decision
	if !d.Approved {
		t.Fatalf("mortgage rejected: %+v", d)
	}
	// 300k at 5.80% (75% LTV, 30y) ≈ $1760/mo.
	if d.MonthlyCents < 1600_00 || d.MonthlyCents > 1900_00 {
		t.Fatalf("monthly = %d", d.MonthlyCents)
	}
	// Amortization: each month principal+interest = payment; interest
	// decreases, principal increases.
	if len(resp.SchedulePrincipal) != 12 {
		t.Fatalf("schedule rows = %d", len(resp.SchedulePrincipal))
	}
	for i := 0; i < 12; i++ {
		if resp.SchedulePrincipal[i]+resp.ScheduleInterest[i] != d.MonthlyCents {
			t.Fatalf("month %d split %d+%d != %d", i, resp.SchedulePrincipal[i], resp.ScheduleInterest[i], d.MonthlyCents)
		}
		if i > 0 && resp.ScheduleInterest[i] > resp.ScheduleInterest[i-1] {
			t.Fatal("interest not decreasing")
		}
	}
	// High LTV pays a higher rate.
	var hi MortgageQuoteResp
	if err := mort.Call(ctx, "Quote", MortgageQuoteReq{Token: token, PriceCents: 400000_00, DownCents: 20000_00, TermMonths: 360}, &hi); err != nil {
		t.Fatal(err)
	}
	if hi.Decision.RateBps <= d.RateBps {
		t.Fatalf("ltv pricing: %d vs %d", hi.Decision.RateBps, d.RateBps)
	}
}

func TestCreditCardLifecycle(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, acct, _ := b.Onboard("carduser", 100000_00, 500_00)

	var card CardResp
	if err := b.Cards.Call(ctx, "Open", OpenCardReq{Token: token}, &card); err != nil {
		t.Fatal(err)
	}
	if card.Card.LimitCents != 20000_00 {
		t.Fatalf("limit = %d", card.Card.LimitCents)
	}
	// Charge within limit.
	if err := b.Cards.Call(ctx, "Charge", ChargeCardReq{Token: token, Number: card.Card.Number, AmountCents: 300_00}, &card); err != nil {
		t.Fatal(err)
	}
	if card.Card.BalanceCents != 300_00 {
		t.Fatalf("owed = %d", card.Card.BalanceCents)
	}
	// Over-limit charge rejected.
	if err := b.Cards.Call(ctx, "Charge", ChargeCardReq{Token: token, Number: card.Card.Number, AmountCents: 25000_00}, nil); !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("over limit: %v", err)
	}
	// Pay the card from the deposit account; money lands in settlement.
	if err := b.Cards.Call(ctx, "Pay", PayCardReq{Token: token, Number: card.Card.Number, FromAccount: acct, AmountCents: 300_00}, &card); err != nil {
		t.Fatal(err)
	}
	if card.Card.BalanceCents != 0 {
		t.Fatalf("owed after pay = %d", card.Card.BalanceCents)
	}
	var depo AccountResp
	b.Posting.Call(ctx, "Get", AccountReq{ID: acct}, &depo) //nolint:errcheck
	if depo.Account.BalanceCents != 200_00 {
		t.Fatalf("deposit = %d", depo.Account.BalanceCents)
	}
	var settle AccountResp
	b.Posting.Call(ctx, "Get", AccountReq{ID: b.SettlementAccountID}, &settle) //nolint:errcheck
	if settle.Account.BalanceCents != 300_00 {
		t.Fatalf("settlement = %d", settle.Account.BalanceCents)
	}
	// Someone else's token cannot use the card.
	token2, _, _ := b.Onboard("mallory", 100000_00, 0)
	if err := b.Cards.Call(ctx, "Charge", ChargeCardReq{Token: token2, Number: card.Card.Number, AmountCents: 100}, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("cross-user charge: %v", err)
	}
}

func TestWealthAndOffersAndBranches(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	token, _, _ := b.Onboard("investor", 100000_00, 0)

	wealth, err := b.App.RPC("test", "bank.wealthMgmt")
	if err != nil {
		t.Fatal(err)
	}
	var pf PortfolioResp
	if err := wealth.Call(ctx, "Portfolio", PortfolioReq{Token: token, Buy: []Holding{{Symbol: "VTI", Shares: 10}, {Symbol: "BND", Shares: 20}}}, &pf); err != nil {
		t.Fatal(err)
	}
	want := int64(10*26150 + 20*7230)
	if pf.ValueCents != want {
		t.Fatalf("portfolio value = %d, want %d", pf.ValueCents, want)
	}
	if err := wealth.Call(ctx, "Portfolio", PortfolioReq{Token: token, Buy: []Holding{{Symbol: "NOPE", Shares: 1}}}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("unknown symbol: %v", err)
	}

	var offer OfferResp
	if err := b.Frontend.Do(ctx, "GET", "/offers?segment=retail", nil, &offer); err != nil {
		t.Fatal(err)
	}
	if !offer.Found || offer.Offer.Segment != "retail" {
		t.Fatalf("offer = %+v", offer)
	}
	var branches []Branch
	if err := b.Frontend.Do(ctx, "GET", "/branches?city=ithaca", nil, &branches); err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches = %+v", branches)
	}
}

func TestFrontendPaymentFlow(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	_, acctA, _ := b.Onboard("weba", 60000_00, 800_00)
	_, acctB, _ := b.Onboard("webb", 60000_00, 0)

	var login LoginResp
	if err := b.Frontend.Do(ctx, "POST", "/login", CredentialsBody{Username: "weba", Password: "pw-weba"}, &login); err != nil {
		t.Fatal(err)
	}
	var pay PaymentResp
	if err := b.Frontend.Do(ctx, "POST", "/payments", PaymentBody{
		Token: login.Token, From: acctA, To: acctB, AmountCents: 100_00, Description: "web transfer",
	}, &pay); err != nil {
		t.Fatal(err)
	}
	var accounts []Account
	if err := b.Frontend.Do(ctx, "GET", "/accounts?token="+login.Token, nil, &accounts); err != nil {
		t.Fatal(err)
	}
	if len(accounts) != 1 || accounts[0].BalanceCents != 700_00 {
		t.Fatalf("accounts = %+v", accounts)
	}
	var acts []Activity
	if err := b.Frontend.Do(ctx, "GET", "/activity?token="+login.Token, nil, &acts); err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 {
		t.Fatalf("activity = %+v", acts)
	}
}

func TestMonthlyPaymentMath(t *testing.T) {
	// Zero rate: straight division, rounded up.
	if got := monthlyPayment(1200, 0, 12); got != 100 {
		t.Fatalf("zero-rate = %d", got)
	}
	// Known value: $100k at 6% for 360 months ≈ $599.55.
	got := monthlyPayment(100000_00, 600, 360)
	if got < 599_00 || got > 600_00 {
		t.Fatalf("amortized = %d", got)
	}
	// Degenerate term.
	if got := monthlyPayment(500, 600, 0); got != 500 {
		t.Fatalf("zero-term = %d", got)
	}
}

func TestUserPreferences(t *testing.T) {
	b := bootBank(t)
	ctx := context.Background()
	prefs, err := b.App.RPC("test", "bank.userPreferences")
	if err != nil {
		t.Fatal(err)
	}
	var resp PreferencesResp
	if err := prefs.Call(ctx, "Access", PreferencesReq{Username: "u", Set: map[string]string{"lang": "en", "alerts": "on"}}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Prefs["lang"] != "en" {
		t.Fatalf("prefs = %v", resp.Prefs)
	}
	// Read-only access returns the stored set; partial update merges.
	if err := prefs.Call(ctx, "Access", PreferencesReq{Username: "u", Set: map[string]string{"lang": "de"}}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Prefs["lang"] != "de" || resp.Prefs["alerts"] != "on" {
		t.Fatalf("merged prefs = %v", resp.Prefs)
	}
	if err := prefs.Call(ctx, "Access", PreferencesReq{Username: ""}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("empty user: %v", err)
	}
}
