package banking

import (
	"dsb/internal/rest"
	"dsb/internal/svcutil"
)

// REST bodies for the node.js-style front-end.

// CredentialsBody enrolls or logs in.
type CredentialsBody struct {
	Username string `json:"username"`
	Password string `json:"password"`
}

// PaymentBody submits a transfer.
type PaymentBody struct {
	Token       string `json:"token"`
	From        string `json:"from"`
	To          string `json:"to"`
	AmountCents int64  `json:"amount_cents"`
	Description string `json:"description"`
}

// LoanBody applies for a loan.
type LoanBody struct {
	Token              string `json:"token"`
	AmountCents        int64  `json:"amount_cents"`
	TermMonths         int64  `json:"term_months"`
	MonthlyDebtCents   int64  `json:"monthly_debt_cents"`
	AnnualRevenueCents int64  `json:"annual_revenue_cents"`
	YearsInBusiness    int64  `json:"years_in_business"`
}

// MortgageBody quotes a mortgage.
type MortgageBody struct {
	Token            string `json:"token"`
	PriceCents       int64  `json:"price_cents"`
	DownCents        int64  `json:"down_cents"`
	TermMonths       int64  `json:"term_months"`
	MonthlyDebtCents int64  `json:"monthly_debt_cents"`
}

// CardActionBody opens/charges/pays a card.
type CardActionBody struct {
	Token       string `json:"token"`
	Number      string `json:"number"`
	AmountCents int64  `json:"amount_cents"`
	FromAccount string `json:"from_account"`
}

type bankFrontendDeps struct {
	auth      svcutil.Caller
	customer  svcutil.Caller
	posting   svcutil.Caller
	payments  svcutil.Caller
	personal  svcutil.Caller
	business  svcutil.Caller
	mortgages svcutil.Caller
	cards     svcutil.Caller
	wealth    svcutil.Caller
	offers    svcutil.Caller
	info      svcutil.Caller
	activity  svcutil.Caller
}

// SummaryBody is the GET /summary response: the customer's accounts and
// total balance (critical), plus the wealth-management portfolio value.
// Degraded marks a summary served without the portfolio because the
// wealthMgmt tier was unreachable — the non-critical hop the front door
// sacrifices rather than failing the whole page.
type SummaryBody struct {
	Accounts     []Account `json:"accounts"`
	BalanceCents int64     `json:"balance_cents"`
	WealthCents  int64     `json:"wealth_cents"`
	Holdings     []Holding `json:"holdings,omitempty"`
	Degraded     bool      `json:"degraded,omitempty"`
}

// registerFrontend installs the Banking REST front door. With degrade on,
// the wealth-management hop of GET /summary is non-critical: a failure
// there omits the portfolio and marks the response Degraded instead of
// erroring.
func registerFrontend(srv *rest.Server, d bankFrontendDeps, degrade bool) {
	srv.Handle("POST /login", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp LoginResp
		if err := d.auth.Call(ctx, "Login", LoginReq{Username: req.Username, Password: req.Password}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("POST /payments", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req PaymentBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp PaymentResp
		if err := d.payments.Call(ctx, "Pay", PaymentReq{
			Token: req.Token, From: req.From, To: req.To,
			AmountCents: req.AmountCents, Description: req.Description,
		}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("GET /accounts", func(ctx *rest.Ctx, body []byte) (any, error) {
		var auth VerifyTokenResp
		if err := d.auth.Call(ctx, "Verify", VerifyTokenReq{Token: ctx.Query("token")}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, errUnauthorizedBank
		}
		var resp AccountsResp
		if err := d.posting.Call(ctx, "ByOwner", AccountsByOwnerReq{Owner: auth.Username}, &resp); err != nil {
			return nil, err
		}
		return resp.Accounts, nil
	})

	srv.Handle("GET /summary", func(ctx *rest.Ctx, body []byte) (any, error) {
		token := ctx.Query("token")
		var auth VerifyTokenResp
		if err := d.auth.Call(ctx, "Verify", VerifyTokenReq{Token: token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, errUnauthorizedBank
		}
		var accounts AccountsResp
		if err := d.posting.Call(ctx, "ByOwner", AccountsByOwnerReq{Owner: auth.Username}, &accounts); err != nil {
			return nil, err
		}
		out := SummaryBody{Accounts: accounts.Accounts}
		for _, a := range accounts.Accounts {
			out.BalanceCents += a.BalanceCents
		}
		var portfolio PortfolioResp
		if err := svcutil.CallBounded(ctx, degrade, d.wealth, "Portfolio", PortfolioReq{Token: token}, &portfolio); err != nil {
			if !degrade {
				return nil, err
			}
			out.Degraded = true
			return out, nil
		}
		out.WealthCents = portfolio.ValueCents
		out.Holdings = portfolio.Holdings
		return out, nil
	})

	srv.Handle("POST /loans/personal", func(ctx *rest.Ctx, body []byte) (any, error) {
		return loanHandler(ctx, body, d.personal)
	})
	srv.Handle("POST /loans/business", func(ctx *rest.Ctx, body []byte) (any, error) {
		return loanHandler(ctx, body, d.business)
	})

	srv.Handle("POST /mortgages/quote", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req MortgageBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp MortgageQuoteResp
		if err := d.mortgages.Call(ctx, "Quote", MortgageQuoteReq{
			Token: req.Token, PriceCents: req.PriceCents, DownCents: req.DownCents,
			TermMonths: req.TermMonths, MonthlyDebtCents: req.MonthlyDebtCents,
		}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("POST /cards", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CardActionBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp CardResp
		if err := d.cards.Call(ctx, "Open", OpenCardReq{Token: req.Token}, &resp); err != nil {
			return nil, err
		}
		return resp.Card, nil
	})
	srv.Handle("POST /cards/charge", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CardActionBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp CardResp
		if err := d.cards.Call(ctx, "Charge", ChargeCardReq{Token: req.Token, Number: req.Number, AmountCents: req.AmountCents}, &resp); err != nil {
			return nil, err
		}
		return resp.Card, nil
	})
	srv.Handle("POST /cards/pay", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CardActionBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp CardResp
		if err := d.cards.Call(ctx, "Pay", PayCardReq{Token: req.Token, Number: req.Number, FromAccount: req.FromAccount, AmountCents: req.AmountCents}, &resp); err != nil {
			return nil, err
		}
		return resp.Card, nil
	})

	srv.Handle("GET /offers", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp OfferResp
		if err := d.offers.Call(ctx, "For", OfferReq{Segment: ctx.Query("segment")}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})
	srv.Handle("GET /branches", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp BranchResp
		if err := d.info.Call(ctx, "Branches", BranchReq{City: ctx.Query("city")}, &resp); err != nil {
			return nil, err
		}
		return resp.Branches, nil
	})
	srv.Handle("GET /activity", func(ctx *rest.Ctx, body []byte) (any, error) {
		var auth VerifyTokenResp
		if err := d.auth.Call(ctx, "Verify", VerifyTokenReq{Token: ctx.Query("token")}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, errUnauthorizedBank
		}
		var resp ActivityListResp
		if err := d.activity.Call(ctx, "List", ActivityListReq{Username: auth.Username, Limit: 20}, &resp); err != nil {
			return nil, err
		}
		return resp.Activities, nil
	})
}

func loanHandler(ctx *rest.Ctx, body []byte, svc svcutil.Caller) (any, error) {
	var req LoanBody
	if err := rest.DecodeJSON(body, &req); err != nil {
		return nil, err
	}
	var resp LoanApplicationResp
	if err := svc.Call(ctx, "Apply", LoanApplicationReq{
		Token: req.Token, AmountCents: req.AmountCents, TermMonths: req.TermMonths,
		MonthlyDebtCents: req.MonthlyDebtCents, AnnualRevenueCents: req.AnnualRevenueCents,
		YearsInBusiness: req.YearsInBusiness,
	}, &resp); err != nil {
		return nil, err
	}
	return resp.Decision, nil
}

var errUnauthorizedBank = rpcUnauthorized()
